/**
 * @file
 * Example: writing a custom workload against the public API.
 *
 * Implements a producer-consumer pipeline: producer thread blocks
 * push work items into per-CU queues under locally scoped locks;
 * consumer thread blocks drain them; a global fetch-add counter
 * tracks completion. Demonstrates the Workload interface, coroutine
 * memory operations, scoped synchronization, and functional checks.
 */

#include <iostream>
#include <numeric>

#include "core/system.hh"
#include "workloads/sync_primitives.hh"

using namespace nosync;

namespace
{

class ProducerConsumer : public Workload
{
  public:
    static constexpr unsigned kItemsPerProducer = 40;

    std::string name() const override { return "producer-consumer"; }

    void
    init(WorkloadEnv &env) override
    {
        _numCus = env.numCus();
        for (unsigned cu = 0; cu < _numCus; ++cu) {
            // Per-CU queue: ring of 64 items plus head/tail/lock.
            _queues.push_back(env.alloc((64 + 4) * kWordBytes));
            MutexAddrs lock;
            lock.lock = env.alloc(kLineBytes);
            lock.serving = lock.lock + kWordBytes;
            _locks.push_back(lock);
        }
        _consumedSum = env.alloc(kLineBytes);
        _doneCount = env.alloc(kLineBytes);
    }

    KernelInfo kernelInfo(unsigned) const override
    {
        // One producer and one consumer TB per CU.
        return {2 * _numCus};
    }

    SimTask
    tbMain(TbContext &ctx) override
    {
        bool producer = ctx.tbOnCu() == 0;
        unsigned cu = ctx.cu();
        Addr queue = _queues[cu];
        Addr head = queue + 64 * kWordBytes;
        Addr tail = head + kWordBytes;
        MutexAddrs lock = _locks[cu];

        if (producer) {
            for (unsigned i = 0; i < kItemsPerProducer; ++i) {
                std::uint32_t item = cu * 1000 + i + 1;
                while (true) {
                    MutexTicket t;
                    co_await mutexLock(ctx, lock, MutexKind::Spin,
                                       Scope::Local, t);
                    std::uint32_t h = co_await ctx.load(head);
                    std::uint32_t tl = co_await ctx.load(tail);
                    bool pushed = false;
                    if (tl - h < 64) {
                        co_await ctx.store(
                            queue + (tl % 64) * kWordBytes, item);
                        co_await ctx.store(tail, tl + 1);
                        pushed = true;
                    }
                    co_await mutexUnlock(ctx, lock, MutexKind::Spin,
                                         Scope::Local, t);
                    if (pushed)
                        break;
                    co_await ctx.wait(50);
                }
            }
            // Signal completion globally.
            co_await ctx.atomic(ctx.fetchAdd(_doneCount, 1,
                                             Scope::Global));
            co_return;
        }

        // Consumer: drain until the producer finished and the queue
        // is empty.
        std::uint32_t local_sum = 0;
        while (true) {
            std::uint32_t item = 0;
            MutexTicket t;
            co_await mutexLock(ctx, lock, MutexKind::Spin,
                               Scope::Local, t);
            std::uint32_t h = co_await ctx.load(head);
            std::uint32_t tl = co_await ctx.load(tail);
            if (h != tl) {
                item = co_await ctx.load(queue +
                                         (h % 64) * kWordBytes);
                co_await ctx.store(head, h + 1);
            }
            co_await mutexUnlock(ctx, lock, MutexKind::Spin,
                                 Scope::Local, t);

            if (item != 0) {
                local_sum += item;
                continue;
            }
            std::uint32_t done = co_await ctx.atomic(
                ctx.atomicLoad(_doneCount, Scope::Global));
            if (done >= _numCus) {
                // Producer done; one more check that the queue
                // really is empty.
                std::uint32_t h2 = co_await ctx.load(head);
                std::uint32_t t2 = co_await ctx.load(tail);
                if (h2 == t2)
                    break;
            }
            co_await ctx.wait(50);
        }
        co_await ctx.atomic(ctx.fetchAdd(_consumedSum, local_sum,
                                         Scope::Global));
    }

    std::vector<std::string>
    check(WorkloadEnv &env) override
    {
        std::uint64_t expected = 0;
        for (unsigned cu = 0; cu < _numCus; ++cu) {
            for (unsigned i = 0; i < kItemsPerProducer; ++i)
                expected += cu * 1000 + i + 1;
        }
        std::uint32_t got = env.debugRead(_consumedSum);
        if (got != static_cast<std::uint32_t>(expected)) {
            return {"consumed sum " + std::to_string(got) +
                    " != expected " + std::to_string(expected)};
        }
        return {};
    }

  private:
    unsigned _numCus = 0;
    std::vector<Addr> _queues;
    std::vector<MutexAddrs> _locks;
    Addr _consumedSum = 0, _doneCount = 0;
};

} // namespace

int
main()
{
    for (const ProtocolConfig &proto :
         {ProtocolConfig::gh(), ProtocolConfig::dd()}) {
        ProducerConsumer workload;
        SystemConfig config;
        config.protocol = proto;
        System system(config);
        RunResult result = system.run(workload);
        std::cout << workload.name() << " on " << result.config
                  << ": " << result.cycles << " cycles, "
                  << result.trafficTotal << " flit-crossings, "
                  << (result.ok() ? "check OK" : "CHECK FAILED")
                  << "\n";
        if (!result.ok()) {
            for (const auto &failure : result.checkFailures)
                std::cout << "  " << failure << "\n";
            return 1;
        }
    }
    return 0;
}
