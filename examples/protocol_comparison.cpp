/**
 * @file
 * Example: compare all five configurations on one workload and show
 * where time, energy, and traffic go — the paper's core methodology
 * in ~100 lines of the public API.
 *
 * Usage: protocol_comparison [workload] [scale-percent]
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/system.hh"
#include "workloads/registry.hh"

using namespace nosync;

int
main(int argc, char **argv)
{
    std::string name = argc > 1 ? argv[1] : "UTS";
    unsigned scale = argc > 2
                         ? static_cast<unsigned>(std::atoi(argv[2]))
                         : 25;

    std::printf("Comparing configurations on %s (scale %u%%)\n\n",
                name.c_str(), scale);
    std::printf("%-7s %-12s %-12s %-12s %-10s %-10s\n", "config",
                "cycles", "energy(uJ)", "flits", "ld-hit%",
                "sync-hit%");

    RunResult baseline;
    for (const ProtocolConfig &proto :
         {ProtocolConfig::gd(), ProtocolConfig::gh(),
          ProtocolConfig::dd(), ProtocolConfig::ddro(),
          ProtocolConfig::dh()}) {
        auto workload = makeScaled(name, scale);
        SystemConfig config;
        config.protocol = proto;
        System system(config);
        RunResult result = system.run(*workload);
        if (!result.ok()) {
            std::fprintf(stderr, "%s failed its functional check on "
                         "%s\n", name.c_str(),
                         result.config.c_str());
            return 1;
        }

        double hits = 0, misses = 0, shits = 0, smisses = 0;
        for (unsigned cu = 0; cu < system.numCus(); ++cu) {
            std::string prefix = "l1." + std::to_string(cu);
            hits += system.stats().find(prefix + ".load_hits")->value();
            misses += system.stats().find(prefix + ".load_misses")->value();
            shits += system.stats().find(prefix + ".sync_hits")->value();
            smisses += system.stats().find(prefix + ".sync_misses")->value();
        }
        auto pct = [](double a, double b) {
            return a + b > 0 ? 100.0 * a / (a + b) : 0.0;
        };
        std::printf("%-7s %-12llu %-12.2f %-12.0f %-10.1f %-10.1f\n",
                    result.config.c_str(),
                    static_cast<unsigned long long>(result.cycles),
                    result.energyTotal / 1e6, result.trafficTotal,
                    pct(hits, misses), pct(shits, smisses));
        if (baseline.cycles == 0)
            baseline = result;
    }

    std::printf("\nReading the table: DeNovo turns repeated "
                "synchronization into L1 hits\n"
                "(sync-hit%%) and keeps written data cached across "
                "synchronization\n"
                "boundaries (ld-hit%%), which is where its time, "
                "energy, and traffic\n"
                "advantages come from.\n");
    return 0;
}
