/**
 * @file
 * Example: catching a mis-scoped synchronization bug with the
 * happens-before race detector (--race-check in the harnesses,
 * SystemConfig::raceCheckEnabled here).
 *
 * The workload is message passing with a scope bug: the producer
 * publishes a flag with a *locally* scoped release, but the consumer
 * runs on a different CU and acquires with global scope. Under an
 * HRF configuration (GH/DH) local-scope ordering stops at the L1, so
 * the consumer's data read is not ordered after the producer's store
 * — a scope race. Under a DRF configuration (GD/DD) the same
 * annotations are sound because every sync op is globally effective.
 *
 * The detector reports exactly that asymmetry: a "scope race" on the
 * data line under GH, nothing under GD.
 */

#include <iostream>

#include "analysis/race_detector.hh"
#include "core/system.hh"

using namespace nosync;

namespace
{

class MisScopedMp : public Workload
{
  public:
    std::string name() const override { return "misscoped-mp"; }

    void
    init(WorkloadEnv &env) override
    {
        _data = env.alloc(kLineBytes);
        _flag = env.alloc(kLineBytes);
    }

    KernelInfo kernelInfo(unsigned) const override
    {
        return {2}; // TB0 -> CU0 (producer), TB1 -> CU1 (consumer).
    }

    SimTask
    tbMain(TbContext &ctx) override
    {
        if (ctx.tbGlobal() == 0) {
            co_await ctx.store(_data, 41);
            // BUG: Scope::Local, but the consumer is on another CU.
            co_await ctx.atomic(
                ctx.atomicStore(_flag, 1, Scope::Local));
            co_return;
        }
        // Consumer: give the producer time, then acquire and read.
        // (A real consumer would spin on _flag; under the mis-scoped
        // release the flag may never become visible cross-CU, which
        // is exactly the hang this detector exists to explain.)
        co_await ctx.wait(50000);
        co_await ctx.atomic(ctx.atomicLoad(_flag, Scope::Global));
        co_await ctx.load(_data);
    }

  private:
    Addr _data = 0, _flag = 0;
};

} // namespace

int
main()
{
    bool ok = true;
    for (const ProtocolConfig &proto :
         {ProtocolConfig::gh(), ProtocolConfig::gd()}) {
        MisScopedMp workload;
        SystemConfig config;
        config.protocol = proto;
        config.checking.raceCheckEnabled = true;
        System system(config);
        RunResult result = system.run(workload);

        std::cout << "=== " << workload.name() << " on "
                  << result.config << " ===\n";
        if (result.races.racesDetected != 0)
            std::cout << analysis::renderRaceReport(result.races);
        else
            std::cout << "race-free ("
                      << result.races.dataAccesses
                      << " data accesses, " << result.races.hbEdges
                      << " HB edges checked)\n";
        std::cout << "\n";

        // The bug is HRF-specific: flagged under GH, clean under GD.
        bool hrf = proto.shortName() == "GH";
        if (hrf != (result.races.failureCount() != 0))
            ok = false;
    }
    if (!ok) {
        std::cerr << "unexpected detector verdict\n";
        return 1;
    }
    return 0;
}
