/**
 * @file
 * General benchmark runner: run any Table 4 workload on any
 * configuration, optionally dumping the full statistics report.
 *
 * Usage: run_benchmark <workload> <GD|GH|DD|DD+RO|DH|DD+SE|DD+PR>
 *                      [scale-percent] [--stats] [--progress]
 */

#include <cstdlib>
#include <cstring>
#include <iostream>

#include "core/system.hh"
#include "workloads/registry.hh"

using namespace nosync;

namespace
{

ProtocolConfig
parseConfig(const std::string &name)
{
    if (name == "GD")
        return ProtocolConfig::gd();
    if (name == "GH")
        return ProtocolConfig::gh();
    if (name == "DD")
        return ProtocolConfig::dd();
    if (name == "DD+RO")
        return ProtocolConfig::ddro();
    if (name == "DH")
        return ProtocolConfig::dh();
    if (name == "DD+SE")
        return ProtocolConfig::ddse();
    if (name == "DD+PR")
        return ProtocolConfig::ddpr();
    std::cerr << "unknown config " << name
              << " (want GD, GH, DD, DD+RO, DH, DD+SE, or DD+PR)\n";
    std::exit(2);
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 3) {
        std::cerr << "usage: " << argv[0]
                  << " <workload> <config> [scale%] [--stats]"
                  << " [--progress]\n";
        return 2;
    }
    std::string workload_name = argv[1];
    ProtocolConfig proto = parseConfig(argv[2]);
    unsigned scale = 100;
    bool dump_stats = false;
    bool progress = false;
    Tick watchdog = 0;
    for (int i = 3; i < argc; ++i) {
        if (std::strcmp(argv[i], "--stats") == 0)
            dump_stats = true;
        else if (std::strcmp(argv[i], "--progress") == 0)
            progress = true;
        else if (std::strncmp(argv[i], "--watchdog=", 11) == 0)
            watchdog = std::strtoull(argv[i] + 11, nullptr, 10);
        else
            scale = static_cast<unsigned>(std::atoi(argv[i]));
    }

    auto workload = makeScaled(workload_name, scale);
    SystemConfig config;
    config.protocol = proto;
    if (watchdog != 0)
        config.execution.maxCycles = watchdog;
    System system(config);

    if (progress) {
        // Periodic heartbeat so hangs are visible.
        std::function<void()> beat = [&] {
            std::cerr << "  tick " << system.eventQueue().now()
                      << " events "
                      << system.eventQueue().executed() << "\n";
            system.eventQueue().scheduleIn(100000, beat);
        };
        system.eventQueue().scheduleIn(100000, beat);
    }

    RunResult result = system.run(*workload);

    std::cout << result.workload << " on " << result.config << "\n"
              << "  cycles:          " << result.cycles << "\n"
              << "  energy (pJ):     " << result.energyTotal << "\n";
    for (std::size_t c = 0; c < kNumEnergyComponents; ++c) {
        std::cout << "    " << energyComponentNames()[c] << ": "
                  << result.energy[c] << "\n";
    }
    std::cout << "  flit-crossings:  " << result.trafficTotal << "\n";
    for (std::size_t c = 0; c < kNumTrafficClasses; ++c) {
        std::cout << "    " << trafficClassNames()[c] << ": "
                  << result.traffic[c] << "\n";
    }
    if (dump_stats)
        std::cout << system.stats().dump();

    if (!result.ok()) {
        std::cout << "CHECK FAILURES:\n";
        for (const auto &failure : result.checkFailures)
            std::cout << "  " << failure << "\n";
        return 1;
    }
    std::cout << "check: OK\n";
    return 0;
}
