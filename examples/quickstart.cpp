/**
 * @file
 * Quickstart: build a system, run one benchmark on two
 * configurations, print the three metrics the paper reports.
 *
 * Usage: quickstart [workload] [scale-percent]
 */

#include <cstdlib>
#include <iostream>

#include "core/system.hh"
#include "workloads/registry.hh"

using namespace nosync;

int
main(int argc, char **argv)
{
    std::string name = argc > 1 ? argv[1] : "SPM_G";
    unsigned scale = argc > 2
                         ? static_cast<unsigned>(std::atoi(argv[2]))
                         : 30;

    SystemConfig base;
    for (const ProtocolConfig &proto :
         {ProtocolConfig::gd(), ProtocolConfig::gh(),
          ProtocolConfig::dd(), ProtocolConfig::ddro(),
          ProtocolConfig::dh()}) {
        auto workload = makeScaled(name, scale);
        System system(base.with(proto));
        RunResult result = system.run(*workload);

        std::cout << name << " on " << result.config << ": "
                  << result.cycles << " cycles, "
                  << result.energyTotal / 1e6 << " uJ, "
                  << result.trafficTotal << " flit-crossings"
                  << (result.ok() ? "" : "  [CHECK FAILED]")
                  << "\n";
        for (const auto &failure : result.checkFailures)
            std::cout << "    " << failure << "\n";
        if (!result.ok())
            return 1;
    }
    return 0;
}
