#!/usr/bin/env python3
"""Validate simulator Chrome-trace JSON against the checked-in schema.

Usage: validate_trace.py TRACE.json [TRACE2.json ...]

Parses each trace with the stdlib json module (so a malformed file
fails loudly, unlike the in-tree structural check) and validates it
against tools/trace_schema.json. Only the JSON-Schema subset that
schema actually uses is implemented -- type, required, properties,
enum, items, minimum -- to keep this dependency-free.

Beyond the schema, enforces the cross-field rules Chrome's trace-event
format requires but vanilla JSON Schema cannot express here:

  * "ph":"X" (duration) events must carry "dur";
  * "ph":"i" (instant) events must carry a scope "s";
  * instant events must be sorted by "ts" (the exporter walks the
    ring buffer oldest-first; duration events precede them in
    transaction-completion order, whose begin ticks may interleave);
  * otherData's recorded-minus-dropped count must match the actual
    number of instant events retained in the file.

Exits 0 if every file validates, 1 otherwise.
"""

import json
import os
import sys

SCHEMA_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "trace_schema.json")

_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "integer": int,
    "number": (int, float),
    "boolean": bool,
}


def check(value, schema, path, errors):
    """Recursively validate value against the schema subset."""
    expected = schema.get("type")
    if expected is not None:
        python_type = _TYPES[expected]
        # bool is a subclass of int; "integer" must not accept it.
        if isinstance(value, bool) and expected != "boolean":
            errors.append(f"{path}: expected {expected}, got boolean")
            return
        if not isinstance(value, python_type):
            errors.append(
                f"{path}: expected {expected},"
                f" got {type(value).__name__}")
            return

    if "enum" in schema and value not in schema["enum"]:
        errors.append(f"{path}: {value!r} not in {schema['enum']}")

    if "minimum" in schema and isinstance(value, (int, float)):
        if value < schema["minimum"]:
            errors.append(
                f"{path}: {value} below minimum {schema['minimum']}")

    if isinstance(value, dict):
        for key in schema.get("required", []):
            if key not in value:
                errors.append(f"{path}: missing required key {key!r}")
        for key, subschema in schema.get("properties", {}).items():
            if key in value:
                check(value[key], subschema, f"{path}.{key}", errors)

    if isinstance(value, list) and "items" in schema:
        for i, item in enumerate(value):
            check(item, schema["items"], f"{path}[{i}]", errors)


def check_event_rules(trace, errors):
    """Cross-field rules the schema subset cannot express."""
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return
    last_ts = None
    instants = 0
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            continue
        path = f"$.traceEvents[{i}]"
        ph = ev.get("ph")
        if ph == "X" and "dur" not in ev:
            errors.append(f"{path}: duration event missing 'dur'")
        if ph == "i":
            instants += 1
            if "s" not in ev:
                errors.append(f"{path}: instant event missing 's'")
            ts = ev.get("ts")
            if isinstance(ts, int):
                if last_ts is not None and ts < last_ts:
                    errors.append(f"{path}: instant ts {ts} out of"
                                  f" order (prev {last_ts})")
                last_ts = ts

    other = trace.get("otherData")
    if isinstance(other, dict):
        recorded = other.get("events_recorded")
        dropped = other.get("events_dropped", 0)
        if isinstance(recorded, int) and isinstance(dropped, int):
            retained = recorded - dropped
            if instants != retained:
                errors.append(
                    f"$.traceEvents: {instants} instant events but"
                    f" otherData says {retained} retained"
                    f" ({recorded} recorded - {dropped} dropped)")


def validate_file(path, schema):
    errors = []
    try:
        with open(path, encoding="utf-8") as f:
            trace = json.load(f)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"FAIL {path}: {exc}")
        return False
    check(trace, schema, "$", errors)
    check_event_rules(trace, errors)
    if errors:
        print(f"FAIL {path}:")
        for err in errors[:20]:
            print(f"  {err}")
        if len(errors) > 20:
            print(f"  ... and {len(errors) - 20} more")
        return False
    n = len(trace["traceEvents"])
    print(f"OK   {path}: {n} events")
    return True


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip().splitlines()[2])
        return 2
    with open(SCHEMA_PATH, encoding="utf-8") as f:
        schema = json.load(f)
    ok = all([validate_file(p, schema) for p in argv[1:]])
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
