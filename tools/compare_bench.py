#!/usr/bin/env python3
"""Compare BENCH_*.json sweep records against a checked-in baseline.

Usage:
    compare_bench.py [options] BASELINE CURRENT [BASELINE CURRENT]...

Each (BASELINE, CURRENT) pair is matched cell by cell on
(workload, config, scale_percent). Simulated metrics are gated:

  * cycles     -- exact by default (the simulator is deterministic,
                  so any drift is a real behavior change), or within
                  --rel-tol-cycles if nonzero.
  * energy/traffic totals -- same tolerance as cycles.

Host-side timings (host_ms, events_per_sec, wall_ms) are reported but
never gated by default: CI machines vary, so wall-clock comparisons
across runs are noise. Opt in with --check-host to flag cells whose
host_ms regressed by more than --rel-tol-host (useful only when both
records came from the same machine).

Every baseline cell must be present in the current record, and every
current cell must pass its functional checks (ok == true). Cells new
in the current record are listed but don't fail the gate.

--require-speedup=METRIC:FACTOR turns the host-timing report into a
speedup gate: every matched cell (optionally narrowed with
--speedup-cells) must satisfy baseline METRIC / current METRIC >=
FACTOR. Use it to hold a parallelism claim — e.g. a serial record as
BASELINE and a --sim-threads=4 record as CURRENT with
--require-speedup=host_ms:3.0 — while the exact sim-metric gate in
the same invocation proves the two runs simulated the same thing.
Only meaningful when both records came from the same machine.

Exit status: 0 all gates pass, 1 regression/mismatch, 2 usage error.
Standard library only.
"""

import argparse
import json
import sys

SIM_METRICS = ("cycles", "energy_total", "traffic_total")


def cell_key(cell):
    return (cell["workload"], cell["config"], cell.get("scale_percent"))


def key_str(key):
    return "%s/%s@%s%%" % key


def load_record(path):
    try:
        with open(path, "r", encoding="utf-8") as fh:
            record = json.load(fh)
    except (OSError, ValueError) as err:
        sys.exit("error: cannot read %s: %s" % (path, err))
    if "cells" not in record:
        sys.exit("error: %s is not a BENCH sweep record (no cells)"
                 % path)
    return record


def index_cells(record, path):
    cells = {}
    for cell in record["cells"]:
        key = cell_key(cell)
        if key in cells:
            sys.exit("error: %s has duplicate cell %s"
                     % (path, key_str(key)))
        cells[key] = cell
    return cells


def within(baseline, current, rel_tol):
    if baseline == current:
        return True
    if rel_tol <= 0:
        return False
    scale = max(abs(baseline), abs(current), 1e-12)
    return abs(current - baseline) <= rel_tol * scale


def compare_pair(base_path, cur_path, args):
    base = index_cells(load_record(base_path), base_path)
    cur = index_cells(load_record(cur_path), cur_path)
    label = "%s vs %s" % (base_path, cur_path)
    failures = []

    for key, cur_cell in sorted(cur.items()):
        if not cur_cell.get("ok", False):
            failures.append("%s: %s failed its functional checks"
                            % (label, key_str(key)))

    for key, base_cell in sorted(base.items()):
        cur_cell = cur.get(key)
        if cur_cell is None:
            failures.append("%s: cell %s missing from current record"
                            % (label, key_str(key)))
            continue
        for metric in SIM_METRICS:
            b, c = base_cell.get(metric), cur_cell.get(metric)
            if b is None or c is None:
                continue
            if not within(b, c, args.rel_tol_cycles):
                failures.append(
                    "%s: %s %s changed %s -> %s (tol %.3g)"
                    % (label, key_str(key), metric, b, c,
                       args.rel_tol_cycles))
        if args.check_host:
            b = base_cell.get("host_ms")
            c = cur_cell.get("host_ms")
            if b and c and c > b * (1.0 + args.rel_tol_host):
                failures.append(
                    "%s: %s host_ms regressed %.1f -> %.1f "
                    "(>%.0f%% tolerance)"
                    % (label, key_str(key), b, c,
                       args.rel_tol_host * 100.0))

    if args.require_speedup:
        metric, factor = args.require_speedup
        gated = 0
        for key in sorted(set(base) & set(cur)):
            name = "%s/%s" % (key[0], key[1])
            if args.speedup_cells and not any(
                    pat in name for pat in args.speedup_cells):
                continue
            gated += 1
            b = base[key].get(metric)
            c = cur[key].get(metric)
            if not b or not c:
                failures.append("%s: %s has no %s to gate speedup on"
                                % (label, key_str(key), metric))
                continue
            speedup = b / c
            print("%s: %s %s speedup %.2fx (need >= %.2fx)"
                  % (label, key_str(key), metric, speedup, factor))
            if speedup < factor:
                failures.append(
                    "%s: %s %s speedup %.2fx below required %.2fx "
                    "(%.1f -> %.1f)"
                    % (label, key_str(key), metric, speedup, factor,
                       b, c))
        if gated == 0:
            failures.append(
                "%s: --require-speedup matched no cells (filter %r)"
                % (label, args.speedup_cells))

    new_cells = sorted(set(cur) - set(base))
    for key in new_cells:
        print("note: %s: new cell %s (not in baseline)"
              % (label, key_str(key)))
    matched = len(set(base) & set(cur))
    print("%s: %d cells matched, %d new, %d failures"
          % (label, matched, len(new_cells), len(failures)))
    return failures


def main(argv):
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("pairs", nargs="+", metavar="JSON",
                        help="alternating BASELINE CURRENT paths")
    parser.add_argument("--rel-tol-cycles", type=float, default=0.0,
                        help="relative tolerance for simulated metrics"
                             " (default 0: exact, the simulator is"
                             " deterministic)")
    parser.add_argument("--check-host", action="store_true",
                        help="also gate host_ms (same-machine records"
                             " only)")
    parser.add_argument("--rel-tol-host", type=float, default=0.25,
                        help="relative host_ms tolerance with"
                             " --check-host (default 0.25)")
    parser.add_argument("--require-speedup", metavar="METRIC:FACTOR",
                        default=None,
                        help="require baseline METRIC / current METRIC"
                             " >= FACTOR on every gated cell (e.g."
                             " host_ms:3.0; same-machine records only)")
    parser.add_argument("--speedup-cells", metavar="SUBSTR[,SUBSTR...]",
                        default=None,
                        help="gate --require-speedup only on cells"
                             " whose workload/config contains one of"
                             " the substrings")
    args = parser.parse_args(argv)

    if args.require_speedup is not None:
        metric, sep, factor = args.require_speedup.partition(":")
        try:
            factor = float(factor)
        except ValueError:
            factor = 0.0
        if not metric or not sep or factor <= 0.0:
            parser.error("--require-speedup expects METRIC:FACTOR "
                         "with a positive FACTOR, got %r"
                         % args.require_speedup)
        args.require_speedup = (metric, factor)
    args.speedup_cells = ([s for s in args.speedup_cells.split(",") if s]
                          if args.speedup_cells else None)

    if len(args.pairs) % 2 != 0:
        parser.error("expected BASELINE CURRENT pairs, got an odd "
                     "number of paths")

    failures = []
    for i in range(0, len(args.pairs), 2):
        failures += compare_pair(args.pairs[i], args.pairs[i + 1],
                                 args)

    for failure in failures:
        print("FAIL: %s" % failure, file=sys.stderr)
    if failures:
        return 1
    print("perf gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
