#!/usr/bin/env python3
"""Validate litmus-axiom JSON reports against the schema.

Usage: validate_axiom.py [--require-clean] REPORT.json [REPORT2.json ...]

Parses each report with the stdlib json module and validates it
against tools/axiom_schema.json, reusing the same dependency-free
JSON-Schema subset as validate_trace.py (type, required, properties,
enum, items, minimum).

Beyond the schema, enforces the cross-field rules the axiomatic
checker guarantees but vanilla JSON Schema cannot express here:

  * summary verdict counts (race_free/scope_race/data_race) match the
    per-cell verdicts and sum to summary.cells == len(cells);
  * summary cross-check counts match the per-cell cross_check blocks,
    and all_ok is true exactly when every cell is oracle-clean and
    every performed cross-check passed;
  * verdict consistency per cell: "race-free" iff no race pairs of
    either kind; "data-race" iff data_race_pairs > 0 (a data race
    outranks a scope race); racy_executions is positive iff any race
    pairs exist, and never exceeds executions;
  * the model name matches the config column: HRF configs (GH, DH)
    carry "hrf-scoped", DD+SE carries "sc-drf-engine", the remaining
    DRF configs carry "sc-drf";
  * outcomes are sorted by outcome string (the deterministic order
    reports are diffed under), and a cell with a disallowed outcome
    must have oracle_ok false;
  * a cross_check block with diffs must have ok false, and vice
    versa a checked, diff-free block must have ok true.

With --require-clean, additionally fails any report whose all_ok is
not true or whose cells were not all cross-checked -- the mode CI
runs, where a static-only pass must not stand in for the proven
three-way agreement.

Exits 0 if every file validates, 1 otherwise.
"""

import json
import os
import sys

from validate_trace import check

SCHEMA_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "axiom_schema.json")

MODEL_FOR_CONFIG = {
    "GD": "sc-drf",
    "DD": "sc-drf",
    "DD+RO": "sc-drf",
    "DD+PR": "sc-drf",
    "DD+SE": "sc-drf-engine",
    "GH": "hrf-scoped",
    "DH": "hrf-scoped",
}


def check_cell_rules(i, cell, errors):
    path = f"$.cells[{i}]"
    verdict = cell.get("verdict")
    data_pairs = cell.get("data_race_pairs", 0)
    scope_pairs = cell.get("scope_race_pairs", 0)
    racy = cell.get("racy_executions", 0)
    executions = cell.get("executions", 0)

    if isinstance(data_pairs, int) and isinstance(scope_pairs, int):
        if verdict == "race-free" and data_pairs + scope_pairs > 0:
            errors.append(
                f"{path}: verdict 'race-free' with "
                f"{data_pairs + scope_pairs} race pair(s)")
        if verdict == "data-race" and data_pairs == 0:
            errors.append(
                f"{path}: verdict 'data-race' with no data race "
                f"pairs")
        if verdict == "scope-race" and \
                (scope_pairs == 0 or data_pairs > 0):
            errors.append(
                f"{path}: verdict 'scope-race' needs scope pairs "
                f"and no data pairs (got {scope_pairs}/{data_pairs})")
        if isinstance(racy, int):
            if (racy > 0) != (data_pairs + scope_pairs > 0):
                errors.append(
                    f"{path}: {racy} racy execution(s) inconsistent "
                    f"with {data_pairs + scope_pairs} race pair(s)")
    if isinstance(racy, int) and isinstance(executions, int) and \
            racy > executions:
        errors.append(
            f"{path}: racy_executions {racy} > executions "
            f"{executions}")

    config = cell.get("config")
    model = cell.get("model")
    expected = MODEL_FOR_CONFIG.get(config)
    if expected is not None and isinstance(model, str) and \
            model != expected:
        errors.append(
            f"{path}: config {config!r} must carry model "
            f"{expected!r}, got {model!r}")

    outcomes = cell.get("outcomes", [])
    oracle_ok = cell.get("oracle_ok")
    if isinstance(outcomes, list):
        last = None
        any_disallowed = False
        for j, entry in enumerate(outcomes):
            if not isinstance(entry, dict):
                continue
            name = entry.get("outcome")
            if isinstance(name, str):
                if last is not None and name <= last:
                    errors.append(
                        f"{path}.outcomes[{j}]: {name!r} out of "
                        f"sorted order after {last!r}")
                last = name
            if entry.get("allowed") is False:
                any_disallowed = True
        if any_disallowed and oracle_ok is True:
            errors.append(
                f"{path}: disallowed outcome but oracle_ok=true")

    cross = cell.get("cross_check")
    if isinstance(cross, dict):
        diffs = cross.get("diffs")
        ok = cross.get("ok")
        checked = cross.get("checked")
        if isinstance(diffs, list):
            if diffs and ok is True:
                errors.append(
                    f"{path}.cross_check: ok=true with "
                    f"{len(diffs)} diff(s)")
            if checked is True and not diffs and ok is False:
                errors.append(
                    f"{path}.cross_check: checked and diff-free "
                    f"but ok=false")


def check_axiom_rules(report, errors):
    """Cross-field rules the schema subset cannot express."""
    summary = report.get("summary")
    cells = report.get("cells")
    if not isinstance(summary, dict) or not isinstance(cells, list):
        return

    counts = {"race-free": 0, "scope-race": 0, "data-race": 0}
    checked = 0
    check_failed = 0
    all_ok = True
    for i, cell in enumerate(cells):
        if not isinstance(cell, dict):
            continue
        verdict = cell.get("verdict")
        if verdict in counts:
            counts[verdict] += 1
        cross = cell.get("cross_check")
        if isinstance(cross, dict):
            if cross.get("checked") is True:
                checked += 1
            if cross.get("ok") is not True:
                check_failed += 1
                if cross.get("checked") is True:
                    all_ok = False
        if cell.get("oracle_ok") is not True:
            all_ok = False
        check_cell_rules(i, cell, errors)

    declared = summary.get("cells")
    if isinstance(declared, int) and declared != len(cells):
        errors.append(
            f"$.summary.cells {declared} != {len(cells)} cell "
            f"records")
    for field, key in (("race_free", "race-free"),
                       ("scope_race", "scope-race"),
                       ("data_race", "data-race")):
        value = summary.get(field)
        if isinstance(value, int) and value != counts[key]:
            errors.append(
                f"$.summary.{field} {value} != {counts[key]} cells "
                f"with verdict {key!r}")
    declared_checked = summary.get("cross_checked")
    if isinstance(declared_checked, int) and \
            declared_checked != checked:
        errors.append(
            f"$.summary.cross_checked {declared_checked} != "
            f"{checked} checked cells")
    # The emitter counts a not-performed cross-check as not failed;
    # only compare when every cell was actually checked.
    declared_failed = summary.get("cross_check_failed")
    if checked == len(cells) and \
            isinstance(declared_failed, int) and \
            declared_failed != check_failed:
        errors.append(
            f"$.summary.cross_check_failed {declared_failed} != "
            f"{check_failed} failing cross-checks")
    declared_all_ok = summary.get("all_ok")
    # all_ok also requires every *attempted* cross-check slot to be
    # coherent; the recomputation here is a lower bound, so only a
    # true claim contradicted by the cells is an error.
    if declared_all_ok is True and not all_ok:
        errors.append(
            "$.summary.all_ok=true but a cell has oracle_ok=false "
            "or a failed cross-check")


def validate_file(path, schema, require_clean):
    errors = []
    try:
        with open(path, encoding="utf-8") as f:
            report = json.load(f)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"FAIL {path}: {exc}")
        return False
    check(report, schema, "$", errors)
    check_axiom_rules(report, errors)

    summary = report.get("summary", {})
    if require_clean:
        if summary.get("all_ok") is not True:
            errors.append(
                "$.summary: all_ok is not true but --require-clean "
                "was given")
        cells = summary.get("cells")
        checked = summary.get("cross_checked")
        if isinstance(cells, int) and isinstance(checked, int) and \
                checked != cells:
            errors.append(
                f"$.summary: only {checked}/{cells} cells "
                f"cross-checked but --require-clean demands the "
                f"proven three-way agreement")

    if errors:
        print(f"FAIL {path}:")
        for err in errors[:20]:
            print(f"  {err}")
        if len(errors) > 20:
            print(f"  ... and {len(errors) - 20} more")
        return False
    print(f"OK   {path}: {summary.get('cells', 0)} cells"
          f" ({summary.get('race_free', 0)} race-free,"
          f" {summary.get('scope_race', 0)} scope-race,"
          f" {summary.get('data_race', 0)} data-race,"
          f" {summary.get('cross_checked', 0)} cross-checked)")
    return True


def main(argv):
    args = argv[1:]
    require_clean = "--require-clean" in args
    paths = [a for a in args if a != "--require-clean"]
    if not paths:
        print(__doc__.strip().splitlines()[2])
        return 2
    with open(SCHEMA_PATH, encoding="utf-8") as f:
        schema = json.load(f)
    ok = all([validate_file(p, schema, require_clean) for p in paths])
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
