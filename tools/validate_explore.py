#!/usr/bin/env python3
"""Validate litmus-exploration JSON reports against the schema.

Usage: validate_explore.py [--require-pass] REPORT.json [REPORT2.json ...]

Parses each report with the stdlib json module and validates it
against tools/explore_schema.json, reusing the same dependency-free
JSON-Schema subset as validate_trace.py (type, required, properties,
enum, items, minimum).

Beyond the schema, enforces the cross-field rules the explorer
guarantees but vanilla JSON Schema cannot express here:

  * summary verdict counts (passed/failed/budget_exhausted) match the
    per-cell verdicts and sum to summary.cells == len(cells);
  * summary.schedules_explored is the sum over cells;
  * all_pass is true exactly when every cell's verdict is "pass";
  * verdict consistency per cell: "fail" iff violations_total > 0;
    a violation-free cell with frontier_remaining > 0 must carry
    "budget-exhausted" (coverage gaps are never silent); "pass"
    requires an empty frontier and no violations;
  * violations carries at most violations_total entries (the array is
    capped, the counter is not);
  * outcome counts are >= 1, sum to at most schedules_explored, and
    outcomes are sorted by outcome string -- the deterministic order
    that makes --jobs=N reports byte-identical to serial;
  * race-expectation coherence on "pass" cells: a cell expecting a
    scope race has no clean schedule, a cell expecting none has no
    racy schedule, and clean + racy == schedules_explored.

With --require-pass, additionally fails any report whose all_pass is
not true -- the mode CI runs, where a budget-exhausted exploration
must not slip through as success.

Exits 0 if every file validates, 1 otherwise.
"""

import json
import os
import sys

from validate_trace import check

SCHEMA_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "explore_schema.json")


def check_cell_rules(i, cell, errors):
    path = f"$.cells[{i}]"
    verdict = cell.get("verdict")
    violations_total = cell.get("violations_total", 0)
    violations = cell.get("violations", [])
    frontier = cell.get("frontier_remaining", 0)
    explored = cell.get("schedules_explored", 0)

    if isinstance(violations, list) and \
            isinstance(violations_total, int) and \
            len(violations) > violations_total:
        errors.append(
            f"{path}: {len(violations)} violation strings but "
            f"violations_total={violations_total}")

    if verdict == "fail" and violations_total == 0:
        errors.append(f"{path}: verdict 'fail' with no violations")
    if verdict != "fail" and violations_total > 0:
        errors.append(
            f"{path}: {violations_total} violation(s) but verdict "
            f"{verdict!r}")
    if verdict == "pass" and frontier > 0:
        errors.append(
            f"{path}: verdict 'pass' with {frontier} frontier "
            f"schedule(s) unexplored")
    if verdict == "budget-exhausted" and violations_total > 0:
        errors.append(
            f"{path}: verdict 'budget-exhausted' must yield to "
            f"'fail' when violations exist")

    outcomes = cell.get("outcomes", [])
    if isinstance(outcomes, list):
        total = 0
        last = None
        for j, entry in enumerate(outcomes):
            if not isinstance(entry, dict):
                continue
            total += entry.get("count", 0)
            name = entry.get("outcome")
            if isinstance(name, str):
                if last is not None and name <= last:
                    errors.append(
                        f"{path}.outcomes[{j}]: {name!r} out of "
                        f"sorted order after {last!r}")
                last = name
            if not entry.get("allowed") and verdict != "fail":
                errors.append(
                    f"{path}.outcomes[{j}]: disallowed outcome "
                    f"{name!r} but verdict {verdict!r}")
        if isinstance(explored, int) and total > explored:
            errors.append(
                f"{path}: outcome counts sum to {total} > "
                f"{explored} schedules explored")

    clean = cell.get("clean_schedules")
    racy = cell.get("racy_schedules")
    expect = cell.get("expect_scope_race")
    if verdict == "pass" and isinstance(clean, int) and \
            isinstance(racy, int) and isinstance(explored, int):
        if clean + racy != explored:
            errors.append(
                f"{path}: clean {clean} + racy {racy} != explored "
                f"{explored} on a passing cell")
        if expect is True and clean != 0:
            errors.append(
                f"{path}: expects a scope race but {clean} clean "
                f"schedule(s) passed")
        if expect is False and racy != 0:
            errors.append(
                f"{path}: expects no race but {racy} racy "
                f"schedule(s) passed")


def check_explore_rules(report, errors):
    """Cross-field rules the schema subset cannot express."""
    summary = report.get("summary")
    cells = report.get("cells")
    if not isinstance(summary, dict) or not isinstance(cells, list):
        return

    counts = {"pass": 0, "fail": 0, "budget-exhausted": 0}
    explored_sum = 0
    for i, cell in enumerate(cells):
        if not isinstance(cell, dict):
            continue
        verdict = cell.get("verdict")
        if verdict in counts:
            counts[verdict] += 1
        explored = cell.get("schedules_explored")
        if isinstance(explored, int):
            explored_sum += explored
        check_cell_rules(i, cell, errors)

    declared = summary.get("cells")
    if isinstance(declared, int) and declared != len(cells):
        errors.append(
            f"$.summary.cells {declared} != {len(cells)} cell "
            f"records")
    for field, key in (("passed", "pass"), ("failed", "fail"),
                       ("budget_exhausted", "budget-exhausted")):
        value = summary.get(field)
        if isinstance(value, int) and value != counts[key]:
            errors.append(
                f"$.summary.{field} {value} != {counts[key]} cells "
                f"with verdict {key!r}")
    total = summary.get("schedules_explored")
    if isinstance(total, int) and total != explored_sum:
        errors.append(
            f"$.summary.schedules_explored {total} != per-cell sum "
            f"{explored_sum}")
    all_pass = summary.get("all_pass")
    if isinstance(all_pass, bool) and \
            all_pass != (counts["pass"] == len(cells)):
        errors.append(
            f"$.summary.all_pass={all_pass} inconsistent with "
            f"{counts['pass']}/{len(cells)} passing cells")


def validate_file(path, schema, require_pass):
    errors = []
    try:
        with open(path, encoding="utf-8") as f:
            report = json.load(f)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"FAIL {path}: {exc}")
        return False
    check(report, schema, "$", errors)
    check_explore_rules(report, errors)

    summary = report.get("summary", {})
    if require_pass and summary.get("all_pass") is not True:
        errors.append(
            "$.summary: all_pass is not true but --require-pass was "
            "given (a budget-exhausted exploration is not a pass)")

    if errors:
        print(f"FAIL {path}:")
        for err in errors[:20]:
            print(f"  {err}")
        if len(errors) > 20:
            print(f"  ... and {len(errors) - 20} more")
        return False
    print(f"OK   {path}: {summary.get('cells', 0)} cells,"
          f" {summary.get('schedules_explored', 0)} schedules"
          f" ({summary.get('passed', 0)} pass,"
          f" {summary.get('failed', 0)} fail,"
          f" {summary.get('budget_exhausted', 0)} budget-exhausted)")
    return True


def main(argv):
    args = argv[1:]
    require_pass = "--require-pass" in args
    paths = [a for a in args if a != "--require-pass"]
    if not paths:
        print(__doc__.strip().splitlines()[2])
        return 2
    with open(SCHEMA_PATH, encoding="utf-8") as f:
        schema = json.load(f)
    ok = all([validate_file(p, schema, require_pass) for p in paths])
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
