#!/usr/bin/env python3
"""Validate race-detector JSON reports against the checked-in schema.

Usage: validate_races.py [--require-clean] RACES.json [RACES2.json ...]

Parses each report with the stdlib json module and validates it
against tools/race_schema.json, reusing the same dependency-free
JSON-Schema subset as validate_trace.py (type, required, properties,
enum, items, minimum).

Beyond the schema, enforces the cross-field rules the race detector
guarantees but vanilla JSON Schema cannot express here:

  * races_detected == len(races) + records_dropped (every unique
    racing pair is either carried in full or counted as dropped);
  * races_suppressed == number of races with "suppressed": true, and
    every suppressed race carries a non-empty suppress_reason;
  * races are sorted by (second.tick, addr) — the deterministic order
    that makes --race-check --jobs=N reports identical to serial;
  * truncated is true exactly when records_dropped > 0;
  * addr parses as hexadecimal ("0x...").

With --require-clean, additionally fails any report whose unsuppressed
race count (races_detected - races_suppressed) is non-zero — the mode
CI runs against the paper workloads, which must all be race-free —
and any truncated report: dropped records were never classified, so a
truncated report cannot prove cleanliness (re-run with a higher
--race-cap=N instead).

Exits 0 if every file validates, 1 otherwise.
"""

import json
import os
import sys

from validate_trace import check

SCHEMA_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "race_schema.json")


def check_race_rules(report, errors):
    """Cross-field rules the schema subset cannot express."""
    summary = report.get("summary")
    races = report.get("races")
    if not isinstance(summary, dict) or not isinstance(races, list):
        return

    detected = summary.get("races_detected")
    dropped = summary.get("records_dropped", 0)
    if isinstance(detected, int) and isinstance(dropped, int):
        if detected != len(races) + dropped:
            errors.append(
                f"$.summary: races_detected {detected} != "
                f"{len(races)} records + {dropped} dropped")

    truncated = summary.get("truncated")
    if isinstance(dropped, int) and isinstance(truncated, bool):
        if truncated != (dropped > 0):
            errors.append(
                f"$.summary: truncated={truncated} inconsistent with "
                f"records_dropped={dropped}")

    suppressed = sum(1 for r in races
                     if isinstance(r, dict) and r.get("suppressed"))
    declared = summary.get("races_suppressed")
    if isinstance(declared, int) and declared != suppressed:
        errors.append(
            f"$.summary: races_suppressed {declared} but "
            f"{suppressed} races carry suppressed=true")

    last_key = None
    for i, race in enumerate(races):
        if not isinstance(race, dict):
            continue
        path = f"$.races[{i}]"
        if race.get("suppressed") and not race.get("suppress_reason"):
            errors.append(f"{path}: suppressed without a reason")
        addr = race.get("addr")
        addr_val = None
        if isinstance(addr, str):
            try:
                addr_val = int(addr, 16)
            except ValueError:
                errors.append(f"{path}.addr: {addr!r} not hex")
        second = race.get("second")
        tick = second.get("tick") if isinstance(second, dict) else None
        if isinstance(tick, int) and addr_val is not None:
            key = (tick, addr_val)
            if last_key is not None and key < last_key:
                errors.append(
                    f"{path}: out of (tick, addr) order "
                    f"{key} after {last_key}")
            last_key = key


def validate_file(path, schema, require_clean):
    errors = []
    try:
        with open(path, encoding="utf-8") as f:
            report = json.load(f)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"FAIL {path}: {exc}")
        return False
    check(report, schema, "$", errors)
    check_race_rules(report, errors)

    summary = report.get("summary", {})
    detected = summary.get("races_detected", 0)
    suppressed = summary.get("races_suppressed", 0)
    if require_clean and isinstance(detected, int) and \
            isinstance(suppressed, int) and detected - suppressed > 0:
        errors.append(
            f"$.summary: {detected - suppressed} unsuppressed race(s)"
            f" but --require-clean was given")
    if require_clean and summary.get("truncated"):
        # A truncated report cannot prove cleanliness: the dropped
        # records were never classified or suppressed.
        errors.append(
            "$.summary: report truncated (records dropped past the "
            "cap) but --require-clean was given")

    if errors:
        print(f"FAIL {path}:")
        for err in errors[:20]:
            print(f"  {err}")
        if len(errors) > 20:
            print(f"  ... and {len(errors) - 20} more")
        return False
    print(f"OK   {path}: {summary.get('data_accesses', 0)} accesses,"
          f" {summary.get('hb_edges', 0)} HB edges,"
          f" {detected} race(s) ({suppressed} suppressed)")
    return True


def main(argv):
    args = argv[1:]
    require_clean = "--require-clean" in args
    paths = [a for a in args if a != "--require-clean"]
    if not paths:
        print(__doc__.strip().splitlines()[2])
        return 2
    with open(SCHEMA_PATH, encoding="utf-8") as f:
        schema = json.load(f)
    ok = all([validate_file(p, schema, require_clean) for p in paths])
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
