/**
 * @file
 * Tables 1-5: the paper's qualitative tables, regenerated from the
 * implementation's protocol traits, configuration, and workload
 * registry.
 */

#include <cstdio>
#include <string>

#include "bench_util.hh"
#include "core/features.hh"
#include "core/system_config.hh"
#include "workloads/registry.hh"

using namespace nosync;

namespace
{

const char *
supportStr(FeatureSet::Support s)
{
    switch (s) {
      case FeatureSet::Support::Yes:
        return "yes";
      case FeatureSet::Support::No:
        return "no";
      case FeatureSet::Support::IfLocalScope:
        return "if local";
    }
    return "?";
}

void
printFeatureRow(const std::string &label, const FeatureSet &fs)
{
    std::printf("%-24s %-10s %-10s %-10s %-10s %-10s %-10s %-10s\n",
                label.c_str(), supportStr(fs.reuseWrittenData),
                supportStr(fs.reuseValidData),
                supportStr(fs.noBurstyTraffic),
                supportStr(fs.noInvalidationsAcks),
                supportStr(fs.decoupledGranularity),
                supportStr(fs.reuseSynchronization),
                supportStr(fs.dynamicSharing));
}

void
printFeatureHeader()
{
    std::printf("%-24s %-10s %-10s %-10s %-10s %-10s %-10s %-10s\n",
                "", "WrReuse", "RdReuse", "NoBursty", "NoInvAck",
                "Decoupled", "SyncReuse", "DynShare");
}

} // namespace

int
main(int argc, char **argv)
{
    // No simulations here; parse only so a typo'd option fails
    // loudly instead of silently printing the default tables.
    bench::Options::parse(argc, argv);

    std::printf("=== Table 1: classification of coherence protocols "
                "===\n");
    std::printf("%-10s %-10s %-14s %-14s %-8s\n", "Class", "Example",
                "Invalidation", "UpToDate", "Scopes?");
    for (const auto &row : protocolClassification()) {
        std::printf("%-10s %-10s %-14s %-14s %-8s\n",
                    row.category.c_str(), row.example.c_str(),
                    row.invalidationInitiator.c_str(),
                    row.upToDateTracking.c_str(),
                    row.supportsScopes ? "yes" : "no");
    }

    std::printf("\n=== Table 2: studied configurations ===\n");
    printFeatureHeader();
    printFeatureRow("GD", featuresOf(ProtocolConfig::gd()));
    printFeatureRow("GH", featuresOf(ProtocolConfig::gh()));
    printFeatureRow("DD", featuresOf(ProtocolConfig::dd()));
    printFeatureRow("DD+RO", featuresOf(ProtocolConfig::ddro()));
    printFeatureRow("DH", featuresOf(ProtocolConfig::dh()));

    SystemConfig config;
    std::printf("\n=== Table 3: simulated system parameters ===\n");
    std::printf("GPU CUs                    %u\n", config.numCus());
    std::printf("Mesh                       %ux%u, %llu cycles/hop\n",
                config.topology.mesh.width, config.topology.mesh.height,
                static_cast<unsigned long long>(
                    config.topology.mesh.hopLatency));
    std::printf("L1 size / assoc            %zu KB / %u-way\n",
                config.geometry.l1Bytes / 1024,
                config.geometry.l1Assoc);
    std::printf("L2 (16 banks, NUCA)        %zu MB total\n",
                config.geometry.l2BankBytes * 16 / (1024 * 1024));
    std::printf("Store buffer               %zu entries\n",
                config.geometry.storeBufferEntries);
    std::printf("L1 hit latency             %llu cycle(s)\n",
                static_cast<unsigned long long>(
                    config.timings.l1Hit));
    std::printf("L2 access latency          %llu cycles\n",
                static_cast<unsigned long long>(
                    config.timings.l2Access));
    std::printf("Memory latency (past L2)   %llu cycles\n",
                static_cast<unsigned long long>(
                    config.timings.dramLatency));

    std::printf("\n=== Table 4: benchmarks and inputs (scaled) ===\n");
    for (const char *group :
         {"no-sync", "global-sync", "local-sync"}) {
        std::printf("  -- %s --\n", group);
        for (const auto *desc : workloadsInGroup(group)) {
            std::printf("  %-10s %s\n", desc->name.c_str(),
                        desc->input.c_str());
        }
    }

    std::printf("\n=== Table 5: DD vs related GPU coherence schemes "
                "===\n");
    printFeatureHeader();
    for (const auto &row : relatedWorkComparison())
        printFeatureRow(row.scheme, row.features);
    return 0;
}
