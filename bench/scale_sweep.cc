/**
 * @file
 * Weak-scaling sweep: the five studied configurations on growing
 * meshes — 4x4 (15 CUs + CPU), 6x6 (35 CUs + CPU), 8x8 (63 CUs +
 * CPU), and 12x12 (143 CUs + CPU) — with one L2 bank per mesh node
 * so the registry scales with the machine. The 12x12 tier crosses
 * the old int8_t owner-id limit of 127 nodes; CacheLine now packs
 * owners as int16_t precisely so this sweep can keep growing.
 *
 * The paper's question at scale: do the scoped (H*) configurations'
 * advantages grow with the machine, or does DeNovo's word-granularity
 * registration keep pace without scopes? Each mesh size runs a
 * representative global-sync + local-sync workload mix under all five
 * configs; per-scale figures are normalized to GD at that scale, so
 * the tables answer the question scale by scale.
 *
 * Workloads size themselves from env.numCus(), so the same names run
 * proportionally more work on bigger meshes (weak scaling). With
 * `--json=PATH` the harness writes one BENCH record per scale —
 * stem.4x4.json, stem.6x6.json, stem.8x8.json — keeping cells from
 * different machines in different records for the perf gate.
 */

#include "bench_util.hh"

using namespace nosync;
using namespace nosync::bench;

namespace
{

struct ScalePoint
{
    unsigned dim;
    const char *label;
};

constexpr ScalePoint kScales[] = {
    {4, "4x4"},
    {6, "6x6"},
    {8, "8x8"},
    {12, "12x12"},
};

/** Per-scale JSON filename: stem.<label>.json. */
std::string
scaleJsonPath(const std::string &base, const char *label)
{
    std::string::size_type dot = base.rfind('.');
    std::string::size_type slash = base.rfind('/');
    std::string stem = base;
    std::string ext = ".json";
    if (dot != std::string::npos &&
        (slash == std::string::npos || dot > slash)) {
        stem = base.substr(0, dot);
        ext = base.substr(dot);
    }
    return stem + "." + label + ext;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts = Options::parse(argc, argv);

    // A global-sync and a local-sync representative per sync flavor:
    // fine-grained atomic mutation (FAM), work sharing through a
    // concurrent stack (SS), and producer/consumer flags (SPM).
    const std::vector<std::string> workloads = {"FAM_G", "SPM_G",
                                                "FAM_L", "SS_L"};
    const std::vector<ProtocolConfig> configs =
        standardConfigs(opts);

    for (const auto &scale : kScales) {
        WallTimer timer;
        unsigned num_cus = scale.dim * scale.dim - 1;
        auto results =
            runMatrix(workloads, configs, opts,
                      [&](SystemConfig &config) {
                          config.topology.mesh.width = scale.dim;
                          config.topology.mesh.height = scale.dim;
                          config.topology.cusPerDevice = num_cus;
                      });

        std::cout << "=== Weak scaling " << scale.label << " ("
                  << num_cus
                  << " CUs + CPU, one L2 bank per node): "
                     "normalized to GD ===\n\n";
        emitFigure(results, 0,
                   std::string("Scale-") + scale.label, opts);

        if (!opts.jsonPath.empty()) {
            SweepRecord record;
            record.harness =
                std::string("scale_sweep/") + scale.label;
            record.jobs = opts.jobs;
            for (const auto &wr : results) {
                for (const auto &run : wr.runs)
                    record.add(run, opts.scalePercent);
            }
            record.wallMillis = timer.millis();
            std::string path =
                scaleJsonPath(opts.jsonPath, scale.label);
            if (!record.writeJson(path)) {
                std::cerr << "error: cannot write " << path << "\n";
                return 1;
            }
            std::cerr << "wrote " << path << " ("
                      << record.cells.size() << " cells)\n";
        }
    }
    return 0;
}
