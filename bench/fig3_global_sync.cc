/**
 * @file
 * Figure 3: microbenchmarks with globally scoped fine-grained
 * synchronization, G* vs D*, normalized to G*.
 *
 * Scopes are irrelevant here (all synchronization is global), so
 * GD=GH and DD=DD+RO=DH, exactly as the paper plots them.
 */

#include "bench_util.hh"

using namespace nosync;
using namespace nosync::bench;

int
main(int argc, char **argv)
{
    WallTimer timer;
    Options opts = Options::parse(argc, argv);
    std::vector<std::string> names;
    for (const auto *desc : workloadsInGroup("global-sync"))
        names.push_back(desc->name);

    auto results = runMatrix(
        names, {ProtocolConfig::gd(), ProtocolConfig::dd()}, opts);
    std::cout << "=== Figure 3: globally scoped synchronization "
                 "microbenchmarks, G* vs D* (normalized to G*) "
                 "===\n\n";
    emitFigure(results, 0, "Fig3", opts);

    // Headline: average D* improvement over G*.
    double time = averageNormalized(results, 0, 1, 0);
    double energy = averageNormalized(results, 1, 1, 0);
    double traffic = averageNormalized(results, 2, 1, 0);
    std::printf("D* vs G* average: %.0f%% lower execution time, "
                "%.0f%% lower energy, %.0f%% lower traffic\n",
                (1.0 - time) * 100.0, (1.0 - energy) * 100.0,
                (1.0 - traffic) * 100.0);
    std::printf("(paper: 28%% lower execution time, 51%% lower "
                "energy, 81%% lower traffic)\n");
    maybeWriteJson(opts, "fig3_global_sync", results, timer);
    return 0;
}
