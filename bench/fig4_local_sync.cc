/**
 * @file
 * Figure 4: benchmarks with mostly locally scoped / hybrid
 * synchronization; all five configurations, normalized to GD.
 */

#include "bench_util.hh"

using namespace nosync;
using namespace nosync::bench;

int
main(int argc, char **argv)
{
    WallTimer timer;
    Options opts = Options::parse(argc, argv);
    std::vector<std::string> names;
    for (const auto *desc : workloadsInGroup("local-sync"))
        names.push_back(desc->name);

    auto results = runMatrix(
        names,
        {ProtocolConfig::gd(), ProtocolConfig::gh(),
         ProtocolConfig::dd(), ProtocolConfig::ddro(),
         ProtocolConfig::dh()},
        opts);
    std::cout << "=== Figure 4: locally scoped / hybrid "
                 "synchronization benchmarks (normalized to GD) "
                 "===\n\n";
    emitFigure(results, 0, "Fig4", opts);

    // Headline comparisons from Section 6.
    auto avg = [&](int metric, std::size_t cfg, std::size_t base) {
        return averageNormalized(results, metric, cfg, base);
    };
    std::printf("GH vs GD:    %.0f%% lower execution time, %.0f%% "
                "lower energy (paper: 46%%, 42%%)\n",
                (1.0 - avg(0, 1, 0)) * 100.0,
                (1.0 - avg(1, 1, 0)) * 100.0);
    std::printf("GH vs DD:    %.0f%% lower execution time, %.0f%% "
                "lower energy (paper: 6%%, 4%%)\n",
                (1.0 - avg(0, 1, 2)) * 100.0,
                (1.0 - avg(1, 1, 2)) * 100.0);
    std::printf("GH vs DD+RO: %.0f%% lower execution time, %.0f%% "
                "lower energy (paper: ~0%%, ~0%%)\n",
                (1.0 - avg(0, 1, 3)) * 100.0,
                (1.0 - avg(1, 1, 3)) * 100.0);
    std::printf("DH vs GH:    %.0f%% lower execution time, %.0f%% "
                "lower energy (paper: DH best overall)\n",
                (1.0 - avg(0, 4, 1)) * 100.0,
                (1.0 - avg(1, 4, 1)) * 100.0);
    maybeWriteJson(opts, "fig4_local_sync", results, timer);
    return 0;
}
