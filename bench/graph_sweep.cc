/**
 * @file
 * Graph-analytics sweep: the graph workload family (BFS, PageRank,
 * SSSP; push and pull; power-law and mesh) across all seven protocol
 * columns — the paper's five, DD+SE, and the per-region DD+PR column
 * this family was built to exercise.
 *
 * Pull variants declare their frontier-style double buffers as
 * streaming regions, so DD+PR writes them through to the home L2
 * instead of migrating ownership to a one-shot writer; the CSR arrays
 * are read-only regions valid across kernel boundaries. The sweep
 * asserts the headline result — DD+PR strictly beats both pure DD and
 * pure GD in cycles on at least one pull (frontier-heavy) cell — in
 * addition to the usual functional checks, unless --no-win-check is
 * given (reduced scales may reorder close columns).
 *
 * Usage: graph_sweep [common flags] [--no-win-check]
 */

#include <cstring>

#include "bench_util.hh"

using namespace nosync;
using namespace nosync::bench;

int
main(int argc, char **argv)
{
    WallTimer timer;
    bool win_check = true;
    Options opts = Options::parse(
        argc, argv,
        [&](const char *arg) {
            if (std::strcmp(arg, "--no-win-check") == 0) {
                win_check = false;
                return true;
            }
            return false;
        },
        " [--no-win-check]");

    std::vector<std::string> names;
    for (const auto *desc : workloadsInGroup("graph"))
        names.push_back(desc->name);

    // All seven columns, DD+SE included unconditionally: this sweep
    // exists to compare region specialization against every other
    // point in the design space.
    const std::vector<ProtocolConfig> configs = {
        ProtocolConfig::gd(),   ProtocolConfig::gh(),
        ProtocolConfig::dd(),   ProtocolConfig::ddro(),
        ProtocolConfig::dh(),   ProtocolConfig::ddse(),
        ProtocolConfig::ddpr()};

    auto results = runMatrix(names, configs, opts);
    std::cout << "=== Graph sweep: BFS/PageRank/SSSP x push/pull x "
                 "power-law/mesh, all configs (normalized to DD) "
                 "===\n\n";
    emitFigure(results, 2, "GraphSweep", opts);

    // Headline check: region specialization must pay off on at least
    // one frontier-heavy (pull) cell against both baselines.
    std::size_t gd_col = 0, dd_col = 2, ddpr_col = configs.size() - 1;
    unsigned wins = 0;
    for (const auto &wr : results) {
        if (wr.workload.find("_PULL") == std::string::npos)
            continue;
        Tick gd = wr.runs[gd_col].cycles;
        Tick dd = wr.runs[dd_col].cycles;
        Tick ddpr = wr.runs[ddpr_col].cycles;
        if (ddpr < dd && ddpr < gd)
            ++wins;
    }
    std::cout << "DD+PR beats both DD and GD on " << wins
              << " pull cells\n";
    if (win_check && wins == 0) {
        std::cerr << "GRAPH SWEEP FAILURE: DD+PR beat neither DD nor "
                     "GD on any pull cell\n";
        return 1;
    }
    maybeWriteJson(opts, "graph_sweep", results, timer);
    return 0;
}
