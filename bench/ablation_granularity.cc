/**
 * @file
 * Ablation: transfer-granularity and protocol-feature accounting.
 *
 * Table 2 credits DeNovo with "decoupled granularity - only transfer
 * useful data". This harness reports, per configuration, how many
 * data flits each protocol moved per useful word for a strided
 * workload (NN touches every word once; LAVA rereads neighbors), and
 * how much reuse ownership bought (L1 hit rates).
 */

#include "bench_util.hh"

using namespace nosync;
using namespace nosync::bench;

int
main(int argc, char **argv)
{
    WallTimer timer;
    Options opts = Options::parse(argc, argv);

    struct Cell
    {
        const char *name;
        ProtocolConfig proto;
    };
    std::vector<Cell> cells;
    for (const char *name : {"NN", "LAVA", "SPM_G", "UTS"}) {
        for (const auto &proto :
             {ProtocolConfig::gd(), ProtocolConfig::gh(),
              ProtocolConfig::dd(), ProtocolConfig::dh()})
            cells.push_back(Cell{name, proto});
    }

    struct CellResult
    {
        RunResult run;
        double hits = 0.0, misses = 0.0, shits = 0.0, smisses = 0.0;
    };
    SweepRunner runner(opts.jobs);
    auto results = runner.map(cells.size(), [&](std::size_t i) {
        auto workload = makeScaled(cells[i].name, opts.scalePercent);
        SystemConfig config;
        config.protocol = cells[i].proto;
        System system(config);
        CellResult cell;
        cell.run = system.run(*workload);
        for (unsigned cu = 0; cu < system.numCus(); ++cu) {
            std::string prefix = "l1." + std::to_string(cu);
            cell.hits += system.stats().find(prefix + ".load_hits")->value();
            cell.misses +=
                system.stats().find(prefix + ".load_misses")->value();
            cell.shits += system.stats().find(prefix + ".sync_hits")->value();
            cell.smisses +=
                system.stats().find(prefix + ".sync_misses")->value();
        }
        return cell;
    });

    std::printf("=== Ablation: traffic per benchmark, by class "
                "===\n");
    std::printf("%-8s %-8s %-12s %-12s %-12s %-12s %-10s %-10s\n",
                "bench", "config", "Read", "Regist", "WB_WT",
                "Atomics", "ld hit%", "sync hit%");
    SweepRecord record;
    record.harness = "ablation_granularity";
    record.jobs = opts.jobs;
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const CellResult &cell = results[i];
        const RunResult &result = cell.run;
        if (!result.ok()) {
            std::fprintf(stderr, "check failed: %s on %s\n",
                         cells[i].name, result.config.c_str());
            return 1;
        }
        record.add(result, opts.scalePercent);
        auto pct = [](double a, double b) {
            return a + b > 0.0 ? 100.0 * a / (a + b) : 0.0;
        };
        std::printf("%-8s %-8s %-12.0f %-12.0f %-12.0f %-12.0f "
                    "%-10.1f %-10.1f\n",
                    cells[i].name, result.config.c_str(),
                    result.traffic[0], result.traffic[1],
                    result.traffic[2], result.traffic[3],
                    pct(cell.hits, cell.misses),
                    pct(cell.shits, cell.smisses));
    }
    if (!opts.jsonPath.empty()) {
        record.wallMillis = timer.millis();
        record.writeJson(opts.jsonPath);
    }
    return 0;
}
