/**
 * @file
 * Ablation: transfer-granularity and protocol-feature accounting.
 *
 * Table 2 credits DeNovo with "decoupled granularity - only transfer
 * useful data". This harness reports, per configuration, how many
 * data flits each protocol moved per useful word for a strided
 * workload (NN touches every word once; LAVA rereads neighbors), and
 * how much reuse ownership bought (L1 hit rates).
 */

#include "bench_util.hh"

using namespace nosync;
using namespace nosync::bench;

int
main(int argc, char **argv)
{
    Options opts = Options::parse(argc, argv);
    std::printf("=== Ablation: traffic per benchmark, by class "
                "===\n");
    std::printf("%-8s %-8s %-12s %-12s %-12s %-12s %-10s %-10s\n",
                "bench", "config", "Read", "Regist", "WB_WT",
                "Atomics", "ld hit%", "sync hit%");

    for (const char *name : {"NN", "LAVA", "SPM_G", "UTS"}) {
        for (const auto &proto :
             {ProtocolConfig::gd(), ProtocolConfig::gh(),
              ProtocolConfig::dd(), ProtocolConfig::dh()}) {
            auto workload = makeScaled(name, opts.scalePercent);
            SystemConfig config;
            config.protocol = proto;
            System system(config);
            RunResult result = system.run(*workload);
            if (!result.ok()) {
                std::fprintf(stderr, "check failed: %s on %s\n",
                             name, result.config.c_str());
                return 1;
            }
            double hits = 0.0, misses = 0.0, shits = 0.0,
                   smisses = 0.0;
            for (unsigned cu = 0; cu < system.numCus(); ++cu) {
                std::string prefix = "l1." + std::to_string(cu);
                hits += system.stats().get(prefix + ".load_hits");
                misses +=
                    system.stats().get(prefix + ".load_misses");
                shits += system.stats().get(prefix + ".sync_hits");
                smisses +=
                    system.stats().get(prefix + ".sync_misses");
            }
            auto pct = [](double a, double b) {
                return a + b > 0.0 ? 100.0 * a / (a + b) : 0.0;
            };
            std::printf(
                "%-8s %-8s %-12.0f %-12.0f %-12.0f %-12.0f "
                "%-10.1f %-10.1f\n",
                name, result.config.c_str(), result.traffic[0],
                result.traffic[1], result.traffic[2],
                result.traffic[3], pct(hits, misses),
                pct(shits, smisses));
        }
    }
    return 0;
}
