/**
 * @file
 * Ablation: store-buffer size sweep.
 *
 * Section 6.2.1 attributes LavaMD's GPU* traffic blow-up to store
 * buffer overflow (lost coalescing), and Section 6.2.3 notes the same
 * effect for TB_LG/TBEX_LG at global releases. This harness sweeps
 * the buffer size to expose the crossover: DeNovo's ownership makes
 * it largely insensitive, GPU coherence degrades as the buffer
 * shrinks.
 */

#include "bench_util.hh"

using namespace nosync;
using namespace nosync::bench;

int
main(int argc, char **argv)
{
    Options opts = Options::parse(argc, argv);

    std::printf("=== Ablation: store buffer size (workload LAVA) "
                "===\n");
    std::printf("%-10s %-12s %-14s %-14s %-14s\n", "entries",
                "config", "cycles", "WB/WT flits", "overflow drains");
    for (std::size_t entries : {32u, 64u, 128u, 256u, 512u}) {
        for (const auto &proto :
             {ProtocolConfig::gd(), ProtocolConfig::dd()}) {
            auto workload = makeScaled("LAVA", opts.scalePercent);
            SystemConfig config;
            config.protocol = proto;
            config.geometry.storeBufferEntries = entries;
            System system(config);
            RunResult result = system.run(*workload);
            if (!result.ok()) {
                std::fprintf(stderr, "check failed\n");
                return 1;
            }
            double drains = 0.0;
            for (unsigned cu = 0; cu < system.numCus(); ++cu) {
                drains += system.stats().get(
                    "l1." + std::to_string(cu) +
                    ".sb_overflow_drains");
            }
            std::printf("%-10zu %-12s %-14llu %-14.0f %-14.0f\n",
                        entries, result.config.c_str(),
                        static_cast<unsigned long long>(
                            result.cycles),
                        result.traffic[static_cast<std::size_t>(
                            TrafficClass::WriteBack)],
                        drains);
        }
    }
    return 0;
}
