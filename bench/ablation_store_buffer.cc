/**
 * @file
 * Ablation: store-buffer size sweep.
 *
 * Section 6.2.1 attributes LavaMD's GPU* traffic blow-up to store
 * buffer overflow (lost coalescing), and Section 6.2.3 notes the same
 * effect for TB_LG/TBEX_LG at global releases. This harness sweeps
 * the buffer size to expose the crossover: DeNovo's ownership makes
 * it largely insensitive, GPU coherence degrades as the buffer
 * shrinks.
 */

#include "bench_util.hh"

using namespace nosync;
using namespace nosync::bench;

int
main(int argc, char **argv)
{
    WallTimer timer;
    Options opts = Options::parse(argc, argv);

    struct Cell
    {
        std::size_t entries;
        ProtocolConfig proto;
    };
    std::vector<Cell> cells;
    for (std::size_t entries : {32u, 64u, 128u, 256u, 512u}) {
        for (const auto &proto :
             {ProtocolConfig::gd(), ProtocolConfig::dd()})
            cells.push_back(Cell{entries, proto});
    }

    struct CellResult
    {
        RunResult run;
        double drains = 0.0;
    };
    SweepRunner runner(opts.jobs);
    auto results = runner.map(cells.size(), [&](std::size_t i) {
        auto workload = makeScaled("LAVA", opts.scalePercent);
        SystemConfig config;
        config.protocol = cells[i].proto;
        config.geometry.storeBufferEntries = cells[i].entries;
        System system(config);
        CellResult cell;
        cell.run = system.run(*workload);
        for (unsigned cu = 0; cu < system.numCus(); ++cu) {
            cell.drains +=
                system.stats()
                    .find("l1." + std::to_string(cu) +
                          ".sb_overflow_drains")
                    ->value();
        }
        return cell;
    });

    std::printf("=== Ablation: store buffer size (workload LAVA) "
                "===\n");
    std::printf("%-10s %-12s %-14s %-14s %-14s\n", "entries",
                "config", "cycles", "WB/WT flits", "overflow drains");
    SweepRecord record;
    record.harness = "ablation_store_buffer";
    record.jobs = opts.jobs;
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const RunResult &result = results[i].run;
        if (!result.ok()) {
            std::fprintf(stderr, "check failed\n");
            return 1;
        }
        record.add(result, opts.scalePercent);
        std::printf("%-10zu %-12s %-14llu %-14.0f %-14.0f\n",
                    cells[i].entries, result.config.c_str(),
                    static_cast<unsigned long long>(result.cycles),
                    result.traffic[static_cast<std::size_t>(
                        TrafficClass::WriteBack)],
                    results[i].drains);
    }
    if (!opts.jsonPath.empty()) {
        record.wallMillis = timer.millis();
        record.writeJson(opts.jsonPath);
    }
    return 0;
}
