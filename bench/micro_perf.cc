/**
 * @file
 * google-benchmark microbenchmarks of the simulator's own hot paths
 * (event queue, cache array, mesh routing, protocol end-to-end) —
 * useful when optimizing the simulator itself.
 */

#include <benchmark/benchmark.h>

#include "core/system.hh"
#include "mem/cache_array.hh"
#include "noc/mesh.hh"
#include "sim/event_queue.hh"
#include "workloads/registry.hh"

using namespace nosync;

static void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    for (auto _ : state) {
        EventQueue eq;
        int sink = 0;
        for (int i = 0; i < 1000; ++i)
            eq.schedule(i, [&sink] { ++sink; });
        eq.run();
        benchmark::DoNotOptimize(sink);
    }
}
BENCHMARK(BM_EventQueueScheduleRun);

static void
BM_CacheArrayLookup(benchmark::State &state)
{
    CacheArray array(32 * 1024, 8);
    for (Addr line = 0; line < 64; ++line) {
        CacheLine *victim = array.findVictim(line * kLineBytes);
        array.install(*victim, line * kLineBytes);
    }
    Addr addr = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(array.lookup(addr));
        addr = (addr + kLineBytes) % (64 * kLineBytes);
    }
}
BENCHMARK(BM_CacheArrayLookup);

static void
BM_MeshSend(benchmark::State &state)
{
    EventQueue eq;
    stats::StatSet stats;
    Mesh mesh(eq, stats);
    for (auto _ : state) {
        mesh.send(0, 15, 5, TrafficClass::Read, [] {});
        eq.run();
    }
}
BENCHMARK(BM_MeshSend);

static void
BM_EndToEndNN(benchmark::State &state)
{
    for (auto _ : state) {
        auto workload = makeScaled("NN", 100);
        SystemConfig config;
        System system(config);
        RunResult result = system.run(*workload);
        benchmark::DoNotOptimize(result.cycles);
    }
    state.SetLabel("full NN run on DD");
}
BENCHMARK(BM_EndToEndNN)->Unit(benchmark::kMillisecond);

static void
BM_EndToEndSpinMutex(benchmark::State &state)
{
    for (auto _ : state) {
        auto workload = makeScaled("SPM_L", 10);
        SystemConfig config;
        config.protocol = ProtocolConfig::dh();
        System system(config);
        RunResult result = system.run(*workload);
        benchmark::DoNotOptimize(result.cycles);
    }
    state.SetLabel("SPM_L at 10% scale on DH");
}
BENCHMARK(BM_EndToEndSpinMutex)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
