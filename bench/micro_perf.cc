/**
 * @file
 * google-benchmark microbenchmarks of the simulator's own hot paths
 * (event queue, cache array, mesh routing, protocol end-to-end) —
 * useful when optimizing the simulator itself.
 */

#include <benchmark/benchmark.h>

#include "coherence/region_map.hh"
#include "core/system.hh"
#include "mem/cache_array.hh"
#include "mem/mshr.hh"
#include "noc/mesh.hh"
#include "sim/event_queue.hh"
#include "sim/pdes.hh"
#include "workloads/registry.hh"

using namespace nosync;

static void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    for (auto _ : state) {
        EventQueue eq;
        int sink = 0;
        for (int i = 0; i < 1000; ++i)
            eq.schedule(i, [&sink] { ++sink; });
        eq.run();
        benchmark::DoNotOptimize(sink);
    }
}
BENCHMARK(BM_EventQueueScheduleRun);

static void
BM_CacheArrayLookup(benchmark::State &state)
{
    CacheArray array(32 * 1024, 8);
    for (Addr line = 0; line < 64; ++line) {
        CacheLine *victim = array.findVictim(line * kLineBytes);
        array.install(*victim, line * kLineBytes);
    }
    Addr addr = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(array.lookup(addr));
        addr = (addr + kLineBytes) % (64 * kLineBytes);
    }
}
BENCHMARK(BM_CacheArrayLookup);

static void
BM_MeshSend(benchmark::State &state)
{
    EventQueue eq;
    stats::StatSet stats;
    Mesh mesh(eq, stats);
    for (auto _ : state) {
        mesh.send(0, 15, 5, TrafficClass::Read, [] {});
        eq.run();
    }
}
BENCHMARK(BM_MeshSend);

static void
BM_MeshSend8x8(benchmark::State &state)
{
    EventQueue eq;
    stats::StatSet stats;
    MeshParams params;
    params.width = 8;
    params.height = 8;
    Mesh mesh(eq, stats, params);
    for (auto _ : state) {
        mesh.send(0, 63, 5, TrafficClass::Read, [] {});
        eq.run();
    }
}
BENCHMARK(BM_MeshSend8x8);

static void
BM_MshrChurn(benchmark::State &state)
{
    // Steady-state L1/L2 MSHR traffic: allocate a batch of lines,
    // re-find each (the handler pattern: callbacks re-find() after
    // resuming coroutines), then deallocate. Payload sized like the
    // L2 fetch entry.
    struct Payload
    {
        std::vector<int> waiters;
        bool flag = false;
    };
    MshrTable<Payload> table(64);
    Addr next = 0;
    int sink = 0;
    for (auto _ : state) {
        for (Addr i = 0; i < 48; ++i)
            table.allocate((next + i) * kLineBytes);
        for (Addr i = 0; i < 48; ++i)
            sink += table.find((next + i) * kLineBytes) != nullptr;
        for (Addr i = 0; i < 48; ++i)
            table.deallocate((next + i) * kLineBytes);
        next += 48;
    }
    benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_MshrChurn);

static void
BM_RegionMapProbe(benchmark::State &state)
{
    // DD+RO fill-time probe: one isReadOnly per installed word.
    RegionMap map;
    for (Addr r = 0; r < 16; ++r)
        map.addReadOnly(0x10000 + r * 0x1000, 0x800);
    Addr addr = 0;
    int sink = 0;
    for (auto _ : state) {
        sink += map.isReadOnly(0x10000 + (addr & 0xffff));
        addr = addr * 6364136223846793005ull + 1442695040888963407ull;
    }
    benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_RegionMapProbe);

static void
BM_RegionMapLineMask(benchmark::State &state)
{
    RegionMap map;
    for (Addr r = 0; r < 16; ++r)
        map.addReadOnly(0x10000 + r * 0x1000, 0x800);
    Addr line = 0;
    WordMask sink = 0;
    for (auto _ : state) {
        sink ^= map.readOnlyMask(0x10000 + (line & 0xffc0));
        line += kLineBytes;
    }
    benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_RegionMapLineMask);

static void
BM_WindowBarrier(benchmark::State &state)
{
    // One PDES window round-trip — publish, run every shard, rejoin —
    // with 64 busy domains packed onto state.range(0) threads. This is
    // the per-window fixed cost the engine amortizes against the
    // events each window retires.
    const unsigned threads = static_cast<unsigned>(state.range(0));
    EventQueue coordinator;
    PdesEngine engine(64, threads, 4, coordinator);
    int sink = 0;
    // Self-rescheduling tick per domain: every window retires exactly
    // one event per shard and leaves the next one pending.
    struct Ticker
    {
        PdesEngine *engine;
        unsigned d;
        int *sink;
        void
        operator()() const
        {
            ++*sink;
            EventQueue &shard = engine->shard(d);
            shard.schedule(shard.now() + 4, Ticker{engine, d, sink});
        }
    };
    for (unsigned d = 0; d < 64; ++d)
        engine.shard(d).schedule(2, Ticker{&engine, d, &sink});
    Tick end = 4;
    for (auto _ : state) {
        engine.benchWindow(end);
        end += 4;
    }
    benchmark::DoNotOptimize(sink);
    state.SetLabel("64 domains, " + std::to_string(threads) +
                   " thread(s)");
}
BENCHMARK(BM_WindowBarrier)->Arg(1)->Arg(2)->Arg(4);

static void
BM_DomainFifo(benchmark::State &state)
{
    // Cross-domain send deposit + canonical collection: 16 domains
    // each push 8 sends per window, then the barrier merges them in
    // (tick, domain, sequence) order — the engine's per-window
    // cross-domain bookkeeping cost.
    EventQueue coordinator;
    PdesEngine engine(16, 1, 8, coordinator);
    std::size_t sink = 0;
    for (auto _ : state) {
        for (unsigned d = 0; d < 16; ++d) {
            PdesEngine::DomainScope scope(static_cast<int>(d));
            for (unsigned i = 0; i < 8; ++i) {
                PdesEngine::MeshSend send;
                send.src = static_cast<NodeId>(d);
                send.dst = static_cast<NodeId>((d + 1) % 16);
                send.flits = 5;
                send.sent = i;
                engine.pushSend(std::move(send));
            }
        }
        std::vector<PdesEngine::MeshSend> &sends =
            engine.collectSends();
        sink += sends.size();
        sends.clear();
    }
    benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_DomainFifo);

static void
BM_EndToEndNN(benchmark::State &state)
{
    for (auto _ : state) {
        auto workload = makeScaled("NN", 100);
        SystemConfig config;
        System system(config);
        RunResult result = system.run(*workload);
        benchmark::DoNotOptimize(result.cycles);
    }
    state.SetLabel("full NN run on DD");
}
BENCHMARK(BM_EndToEndNN)->Unit(benchmark::kMillisecond);

static void
BM_EndToEndSpinMutex(benchmark::State &state)
{
    for (auto _ : state) {
        auto workload = makeScaled("SPM_L", 10);
        SystemConfig config;
        config.protocol = ProtocolConfig::dh();
        System system(config);
        RunResult result = system.run(*workload);
        benchmark::DoNotOptimize(result.cycles);
    }
    state.SetLabel("SPM_L at 10% scale on DH");
}
BENCHMARK(BM_EndToEndSpinMutex)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
