/**
 * @file
 * Litmus-suite correctness gate with three modes:
 *
 *   --mode=explore     (default) stateless model checking:
 *                      exhaustively explore thread-block
 *                      interleavings and message delivery orders for
 *                      each litmus program under the six studied
 *                      configurations, with DPOR-style pruning
 *                      (src/explore/).
 *   --mode=axiom       static analysis only: evaluate each program
 *                      against its configuration's declarative axiom
 *                      set (src/axiom/) — allowed outcome sets and
 *                      race/scope-race verdicts without running a
 *                      single simulated cycle.
 *   --mode=cross-check both, then prove they agree cell by cell:
 *                      axiomatic outcome set == DPOR-explored
 *                      outcome set, static race verdict == the
 *                      dynamic detector's per-schedule verdicts. Any
 *                      disagreement is a named diff (program, config,
 *                      divergent outcome) and a failing exit.
 *
 * Every explored terminal state is checked against the program's
 * allowed outcomes and its race expectation (the mis-scoped program
 * must flag a scope race on GH/DH and be clean on GD/DD/DD+RO/DD+SE).
 * Exit codes are distinct and never silently degrade:
 *
 *   0  every cell explored to an empty frontier, all verdicts pass
 *      (and, under cross-check, all three layers agree)
 *   1  a violation: forbidden outcome, race mismatch, hang, replay
 *      divergence, or a static/operational disagreement
 *   2  usage error
 *   3  a schedule or wall budget expired before the frontier
 *      drained (the report carries explored/pruned/remaining
 *      coverage counts)
 *
 * The report JSON (--report=PATH, validated by
 * tools/validate_explore.py; --axiom-json=PATH, validated by
 * tools/validate_axiom.py) carries no wall-clock, host, or job-count
 * fields, so a --jobs=N run is byte-identical to serial — CI diffs
 * the two.
 */

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "axiom/checker.hh"
#include "bench_util.hh"
#include "explore/explorer.hh"
#include "explore/litmus.hh"

using namespace nosync;

namespace
{

/** Harness-local options, filled by the FlagSpec table below. */
struct LitmusOptions
{
    explore::ExploreBudget budget;
    std::string mode = "explore";
    std::string reportPath;
    std::string axiomJsonPath;
    std::string onlyProgram;
    std::string onlyConfig;
};

/**
 * The harness-specific flag table, same typed FlagSpec rows as the
 * common option set: strict parsing, validated ranges, exit 2 on
 * garbage. Rows capture the LitmusOptions instance and ignore the
 * bench::Options argument.
 */
std::vector<bench::FlagSpec>
litmusFlags(LitmusOptions &local)
{
    using bench::FlagSpec;
    using bench::Options;
    using ull = unsigned long long;
    return {
        {"--mode", FlagSpec::Kind::String, 0, 0, "",
         [&local](Options &, ull, const char *text) {
             local.mode = text;
         }},
        {"--schedules", FlagSpec::Kind::Number, 1, ~0ull,
         "a positive count",
         [&local](Options &, ull num, const char *) {
             local.budget.maxSchedules = num;
         }},
        // 0 is meaningful: TB interleavings only.
        {"--deliver-depth", FlagSpec::Kind::Number, 0, ~0ull,
         "a count",
         [&local](Options &, ull num, const char *) {
             local.budget.deliverDepth =
                 static_cast<unsigned>(num);
         }},
        {"--no-dpor", FlagSpec::Kind::Toggle, 0, 0, "",
         [&local](Options &, ull, const char *) {
             local.budget.dpor = false;
         }},
        {"--wall-budget", FlagSpec::Kind::Real, 0, 0,
         "positive seconds",
         [&local](Options &, ull, const char *text) {
             local.budget.maxWallSeconds = std::atof(text);
         }},
        {"--report", FlagSpec::Kind::String, 0, 0, "",
         [&local](Options &, ull, const char *text) {
             local.reportPath = text;
         }},
        {"--axiom-json", FlagSpec::Kind::String, 0, 0, "",
         [&local](Options &, ull, const char *text) {
             local.axiomJsonPath = text;
         }},
        {"--program", FlagSpec::Kind::String, 0, 0, "",
         [&local](Options &, ull, const char *text) {
             local.onlyProgram = text;
         }},
        {"--config", FlagSpec::Kind::String, 0, 0, "",
         [&local](Options &, ull, const char *text) {
             local.onlyConfig = text;
         }},
    };
}

int
runExplore(const explore::ExploreReport &report)
{
    std::uint64_t failed = report.countVerdict("fail");
    std::uint64_t exhausted = report.countVerdict("budget-exhausted");
    if (failed != 0) {
        std::cout << "\nFAIL: " << failed
                  << " cell(s) with violations\n";
    }
    if (exhausted != 0) {
        // Coverage report, loud and distinct: a budget-limited
        // exploration must never read as a clean pass.
        std::uint64_t frontier = 0;
        for (const explore::CellReport &cell : report.cells)
            frontier += cell.frontierRemaining;
        std::cout << "\nBUDGET EXHAUSTED: " << exhausted
                  << " cell(s) incomplete, " << frontier
                  << " frontier schedule(s) unexplored (raise "
                     "--schedules / --wall-budget)\n";
    }
    if (failed == 0 && exhausted == 0) {
        std::cout << "\nall cells explored to an empty frontier\n";
    }
    return report.exitCode();
}

} // namespace

int
main(int argc, char **argv)
{
    LitmusOptions local;
    const std::vector<bench::FlagSpec> flags = litmusFlags(local);

    bench::Options opts = bench::Options::parse(
        argc, argv,
        [&](const char *arg) -> bool {
            // Same typed matcher as the common table; the dummy
            // Options satisfies the row signature, every row writes
            // into `local`.
            bench::Options dummy;
            for (const bench::FlagSpec &spec : flags)
                if (spec.match(arg, dummy))
                    return true;
            return false;
        },
        " [--mode=explore|axiom|cross-check] [--schedules=N]"
        " [--deliver-depth=N] [--no-dpor] [--wall-budget=SECONDS]"
        " [--program=NAME] [--config=NAME] [--report=PATH]"
        " [--axiom-json=PATH]");
    if (opts.maxCycles != 0)
        local.budget.maxCyclesPerSchedule = opts.maxCycles;

    if (local.mode != "explore" && local.mode != "axiom" &&
        local.mode != "cross-check") {
        std::cerr << "error: --mode expects explore, axiom, or "
                     "cross-check, got '"
                  << local.mode << "'\n";
        return 2;
    }
    bool want_explore = local.mode != "axiom";
    bool want_axiom = local.mode != "explore";

    std::vector<std::string> programs;
    for (const std::string &name : explore::litmusSuite()) {
        if (local.onlyProgram.empty() || local.onlyProgram == name)
            programs.push_back(name);
    }
    if (programs.empty()) {
        std::cerr << "error: unknown litmus program '"
                  << local.onlyProgram << "'\n";
        return 2;
    }

    const std::vector<ProtocolConfig> all_configs = {
        ProtocolConfig::gd(),   ProtocolConfig::gh(),
        ProtocolConfig::dd(),   ProtocolConfig::ddro(),
        ProtocolConfig::dh(),   ProtocolConfig::ddse(),
        ProtocolConfig::ddpr()};
    std::vector<ProtocolConfig> configs;
    for (const ProtocolConfig &proto : all_configs) {
        if (local.onlyConfig.empty() ||
            local.onlyConfig == proto.shortName())
            configs.push_back(proto);
    }
    if (configs.empty()) {
        std::cerr << "error: unknown config '" << local.onlyConfig
                  << "' (GD, GH, DD, DD+RO, DH, DD+SE, DD+PR)\n";
        return 2;
    }

    // Static pass first: it is milliseconds per cell and its verdicts
    // stand alone in --mode=axiom.
    axiom::AxiomReport axiom_report;
    if (want_axiom) {
        for (const std::string &program : programs) {
            std::unique_ptr<explore::LitmusWorkload> workload =
                explore::makeLitmus(program);
            for (const ProtocolConfig &proto : configs) {
                axiom_report.cells.push_back(
                    axiom::checkCell(*workload, proto,
                                     opts.devices));
            }
        }
    }

    explore::ExploreReport explore_report;
    explore_report.budget = local.budget;
    if (want_explore) {
        SweepRunner runner(opts.jobs);
        explore::Explorer explorer(local.budget, runner);
        for (const std::string &program : programs) {
            for (const ProtocolConfig &proto : configs) {
                SweepRunner::log("  exploring " + program + " on " +
                                 proto.shortName() + "...");
                explore_report.cells.push_back(
                    explorer.exploreCell(program, proto));
            }
        }
    }

    if (local.mode == "cross-check") {
        for (std::size_t i = 0; i < axiom_report.cells.size(); ++i)
            axiom_report.crossChecks.push_back(axiom::crossCheck(
                axiom_report.cells[i], explore_report.cells[i]));
    }

    int exit_code = 0;
    if (want_axiom) {
        std::cout << "== litmus axiomatic check"
                  << (local.mode == "cross-check"
                          ? " (cross-checked against DPOR + dynamic "
                            "race detector)"
                          : "")
                  << " ==\n";
        axiom::renderAxiomReport(axiom_report, std::cout);
        if (axiom_report.allOk()) {
            std::cout << "\nall axiomatic cells consistent\n";
        } else {
            std::cout << "\nFAIL: static/operational disagreement "
                         "or oracle violation (see DIFF/BAD lines)\n";
        }
        exit_code = std::max(exit_code, axiom_report.exitCode());
    }
    if (want_explore) {
        std::cout << (want_axiom ? "\n" : "")
                  << "== litmus exploration ("
                  << (local.budget.dpor ? "DPOR" : "full enumeration")
                  << ", deliver depth " << local.budget.deliverDepth
                  << ") ==\n";
        explore::renderExploreReport(explore_report, std::cout);
        int explore_exit = runExplore(explore_report);
        // A violation (1) outranks budget exhaustion (3) outranks
        // a static-only failure already recorded above.
        if (explore_exit == 1)
            exit_code = 1;
        else if (explore_exit == 3 && exit_code == 0)
            exit_code = 3;
    }

    if (want_explore && !local.reportPath.empty()) {
        if (!explore::writeExploreJsonFile(explore_report,
                                           local.reportPath)) {
            std::cerr << "error: cannot write " << local.reportPath
                      << "\n";
            return 1;
        }
        std::cerr << "wrote " << local.reportPath << " ("
                  << explore_report.cells.size() << " cells)\n";
    }
    if (want_axiom && !local.axiomJsonPath.empty()) {
        if (!axiom::writeAxiomJsonFile(axiom_report,
                                       local.axiomJsonPath)) {
            std::cerr << "error: cannot write "
                      << local.axiomJsonPath << "\n";
            return 1;
        }
        std::cerr << "wrote " << local.axiomJsonPath << " ("
                  << axiom_report.cells.size() << " cells)\n";
    }
    return exit_code;
}
