/**
 * @file
 * Stateless model checking of the litmus suite: exhaustively explore
 * thread-block interleavings and message delivery orders for each
 * litmus program under the five studied configurations, with
 * DPOR-style pruning (src/explore/).
 *
 * Every terminal state is checked against the program's allowed
 * outcomes and its race expectation (the mis-scoped program must
 * flag a scope race on GH/DH and be clean on GD/DD/DD+RO). Exit
 * codes are distinct and never silently degrade:
 *
 *   0  every cell explored to an empty frontier, all verdicts pass
 *   1  a violation: forbidden outcome, race mismatch, hang, or
 *      replay divergence
 *   2  usage error
 *   3  a schedule or wall budget expired before the frontier
 *      drained (the report carries explored/pruned/remaining
 *      coverage counts)
 *
 * The report JSON (--report=PATH, validated by
 * tools/validate_explore.py) carries no wall-clock, host, or
 * job-count fields, so a --jobs=N run is byte-identical to serial —
 * CI diffs the two.
 */

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "bench_util.hh"
#include "explore/explorer.hh"
#include "explore/litmus.hh"

using namespace nosync;

namespace
{

/** Strict unsigned parse; exits 2 on garbage (cf. --max-cycles). */
unsigned long long
parseCount(const char *flag, const char *value, bool allow_zero)
{
    char *end = nullptr;
    errno = 0;
    unsigned long long parsed = std::strtoull(value, &end, 10);
    if (*value == '\0' || end == nullptr || *end != '\0' ||
        errno == ERANGE || (!allow_zero && parsed == 0)) {
        std::cerr << "error: " << flag << " expects a "
                  << (allow_zero ? "count" : "positive count")
                  << ", got '" << value << "'\n";
        std::exit(2);
    }
    return parsed;
}

} // namespace

int
main(int argc, char **argv)
{
    explore::ExploreBudget budget;
    std::string report_path;
    std::string only_program;
    std::string only_config;

    auto extra = [&](const char *arg) -> bool {
        if (std::strncmp(arg, "--schedules=", 12) == 0) {
            budget.maxSchedules =
                parseCount("--schedules", arg + 12, false);
            return true;
        }
        if (std::strncmp(arg, "--deliver-depth=", 16) == 0) {
            // 0 is meaningful: TB interleavings only.
            budget.deliverDepth = static_cast<unsigned>(
                parseCount("--deliver-depth", arg + 16, true));
            return true;
        }
        if (std::strcmp(arg, "--no-dpor") == 0) {
            budget.dpor = false;
            return true;
        }
        if (std::strncmp(arg, "--wall-budget=", 14) == 0) {
            const char *value = arg + 14;
            char *end = nullptr;
            errno = 0;
            double seconds = std::strtod(value, &end);
            if (*value == '\0' || end == nullptr || *end != '\0' ||
                errno == ERANGE || seconds <= 0.0) {
                std::cerr << "error: --wall-budget expects positive "
                             "seconds, got '"
                          << value << "'\n";
                std::exit(2);
            }
            budget.maxWallSeconds = seconds;
            return true;
        }
        if (std::strncmp(arg, "--report=", 9) == 0) {
            report_path = arg + 9;
            return true;
        }
        if (std::strncmp(arg, "--program=", 10) == 0) {
            only_program = arg + 10;
            return true;
        }
        if (std::strncmp(arg, "--config=", 9) == 0) {
            only_config = arg + 9;
            return true;
        }
        return false;
    };

    bench::Options opts = bench::Options::parse(
        argc, argv, extra,
        " [--schedules=N] [--deliver-depth=N] [--no-dpor]"
        " [--wall-budget=SECONDS] [--program=NAME] [--config=NAME]"
        " [--report=PATH]");
    if (opts.maxCycles != 0)
        budget.maxCyclesPerSchedule = opts.maxCycles;

    std::vector<std::string> programs;
    for (const std::string &name : explore::litmusSuite()) {
        if (only_program.empty() || only_program == name)
            programs.push_back(name);
    }
    if (programs.empty()) {
        std::cerr << "error: unknown litmus program '" << only_program
                  << "'\n";
        return 2;
    }

    const std::vector<ProtocolConfig> all_configs = {
        ProtocolConfig::gd(), ProtocolConfig::gh(),
        ProtocolConfig::dd(), ProtocolConfig::ddro(),
        ProtocolConfig::dh()};
    std::vector<ProtocolConfig> configs;
    for (const ProtocolConfig &proto : all_configs) {
        if (only_config.empty() || only_config == proto.shortName())
            configs.push_back(proto);
    }
    if (configs.empty()) {
        std::cerr << "error: unknown config '" << only_config
                  << "' (GD, GH, DD, DD+RO, DH)\n";
        return 2;
    }

    SweepRunner runner(opts.jobs);
    explore::Explorer explorer(budget, runner);

    explore::ExploreReport report;
    report.budget = budget;
    for (const std::string &program : programs) {
        for (const ProtocolConfig &proto : configs) {
            SweepRunner::log("  exploring " + program + " on " +
                             proto.shortName() + "...");
            report.cells.push_back(
                explorer.exploreCell(program, proto));
        }
    }

    std::cout << "== litmus exploration ("
              << (budget.dpor ? "DPOR" : "full enumeration")
              << ", deliver depth " << budget.deliverDepth
              << ") ==\n";
    explore::renderExploreReport(report, std::cout);

    std::uint64_t failed = report.countVerdict("fail");
    std::uint64_t exhausted =
        report.countVerdict("budget-exhausted");
    if (failed != 0) {
        std::cout << "\nFAIL: " << failed
                  << " cell(s) with violations\n";
    }
    if (exhausted != 0) {
        // Coverage report, loud and distinct: a budget-limited
        // exploration must never read as a clean pass.
        std::uint64_t frontier = 0;
        for (const explore::CellReport &cell : report.cells)
            frontier += cell.frontierRemaining;
        std::cout << "\nBUDGET EXHAUSTED: " << exhausted
                  << " cell(s) incomplete, " << frontier
                  << " frontier schedule(s) unexplored (raise "
                     "--schedules / --wall-budget)\n";
    }
    if (failed == 0 && exhausted == 0) {
        std::cout << "\nall cells explored to an empty frontier\n";
    }

    if (!report_path.empty()) {
        if (!explore::writeExploreJsonFile(report, report_path)) {
            std::cerr << "error: cannot write " << report_path
                      << "\n";
            return 1;
        }
        std::cerr << "wrote " << report_path << " ("
                  << report.cells.size() << " cells)\n";
    }
    return report.exitCode();
}
