/**
 * @file
 * Figure 2: applications without intra-kernel synchronization,
 * G* (GPU coherence) vs D* (DeNovo), normalized to D*.
 *
 * HRF does not affect these codes (no local synchronization), so as
 * in the paper one bar represents GD=GH and one DD=DH.
 */

#include "bench_util.hh"

using namespace nosync;
using namespace nosync::bench;

int
main(int argc, char **argv)
{
    WallTimer timer;
    Options opts = Options::parse(argc, argv);
    std::vector<std::string> names;
    for (const auto *desc : workloadsInGroup("no-sync"))
        names.push_back(desc->name);

    // Column order G*, D*; normalized to D* (baseline index 1).
    auto results = runMatrix(
        names, {ProtocolConfig::gd(), ProtocolConfig::dd()}, opts);
    std::cout << "=== Figure 2: no-synchronization applications, "
                 "G* vs D* (normalized to D*) ===\n\n";
    emitFigure(results, 1, "Fig2", opts);
    maybeWriteJson(opts, "fig2_apps", results, timer);
    return 0;
}
