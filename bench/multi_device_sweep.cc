/**
 * @file
 * Multi-device sweep: 2- and 4-device machines (one 4x4 mesh, 15 CUs
 * + gateway per device) under all six configurations — the paper's
 * five columns plus the DD+SE memory-side sync engine, which this
 * harness always includes. The workload mix spans the scope
 * hierarchy: global mutexes whose traffic crosses the inter-device
 * link every acquire, device-scope mutexes that stay inside their
 * device (the new middle scope), and CU-local mutexes untouched by
 * the topology.
 *
 * The multi-device question the paper's scope argument raises: when
 * the machine grows another level of hierarchy, do scoped fences earn
 * their complexity, or does DeNovo registration (and bank-side sync
 * execution) keep pace with scope-oblivious annotations? Figures are
 * normalized to GD at each device count.
 *
 * Tracing is forced on (without trace-file output) so every BENCH
 * cell carries per-scope sync-latency blocks: sync_*_local,
 * sync_*_device, and sync_* (global) classes summarize separately.
 * With `--json=PATH` one record per device count is written —
 * stem.2dev.json, stem.4dev.json — keeping different machines in
 * different records for the perf gate.
 */

#include "bench_util.hh"

using namespace nosync;
using namespace nosync::bench;

namespace
{

constexpr unsigned kDeviceCounts[] = {2, 4};

/** Per-device-count JSON filename: stem.<D>dev.json. */
std::string
deviceJsonPath(const std::string &base, unsigned devices)
{
    std::string label = std::to_string(devices) + "dev";
    std::string::size_type dot = base.rfind('.');
    std::string::size_type slash = base.rfind('/');
    std::string stem = base;
    std::string ext = ".json";
    if (dot != std::string::npos &&
        (slash == std::string::npos || dot > slash)) {
        stem = base.substr(0, dot);
        ext = base.substr(dot);
    }
    return stem + "." + label + ext;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts = Options::parse(argc, argv);

    // One representative per scope tier: global mutexes (every
    // acquire crosses the link), device-scope mutexes (the new middle
    // scope), and CU-local mutexes (topology-independent control).
    const std::vector<std::string> workloads = {
        "FAM_G", "SPM_G", "FAM_D", "SPM_D", "FAM_L"};

    // The sync engine is the sixth column of this sweep by
    // construction, independent of --sync-engine.
    std::vector<ProtocolConfig> configs = standardConfigs(opts);
    if (!opts.syncEngine)
        configs.push_back(ProtocolConfig::ddse());

    for (unsigned devices : kDeviceCounts) {
        WallTimer timer;
        auto results = runMatrix(
            workloads, configs, opts, [&](SystemConfig &config) {
                config.topology.devices = devices;
                // Sync-latency summaries for the BENCH record; no
                // trace files unless --trace was given.
                config.observability.traceEnabled = true;
            });

        std::cout << "=== Multi-device " << devices << "x("
                  << "4x4 mesh, 15 CUs + gateway) over the "
                     "inter-device link: normalized to GD ===\n\n";
        emitFigure(results, 0,
                   std::to_string(devices) + "-device", opts);

        if (!opts.jsonPath.empty()) {
            SweepRecord record;
            record.harness = "multi_device_sweep/" +
                             std::to_string(devices) + "dev";
            record.jobs = opts.jobs;
            for (const auto &wr : results) {
                for (const auto &run : wr.runs)
                    record.add(run, opts.scalePercent);
            }
            record.wallMillis = timer.millis();
            std::string path =
                deviceJsonPath(opts.jsonPath, devices);
            if (!record.writeJson(path)) {
                std::cerr << "error: cannot write " << path << "\n";
                return 1;
            }
            std::cerr << "wrote " << path << " ("
                      << record.cells.size() << " cells)\n";
        }
    }
    return 0;
}
