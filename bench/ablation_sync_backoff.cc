/**
 * @file
 * Ablation: DeNovoSync read backoff.
 *
 * Section 3 of the paper: "DeNovoSync optimizes DeNovoSync0 by
 * incorporating a backoff mechanism on registered reads when there is
 * too much read-read contention. We do not explore it for
 * simplicity." This harness explores it: DD+BO throttles the
 * re-registration of spinning synchronization reads that keep
 * observing an unchanged value, which matters most for the
 * read-spinning mutexes (FAM's now-serving spin, SLM's lock polls).
 */

#include "bench_util.hh"

using namespace nosync;
using namespace nosync::bench;

int
main(int argc, char **argv)
{
    WallTimer timer;
    Options opts = Options::parse(argc, argv);

    struct Cell
    {
        const char *name;
        ProtocolConfig proto;
    };
    std::vector<Cell> cells;
    for (const char *name :
         {"FAM_G", "SLM_G", "SPM_G", "SPMBO_G", "UTS"}) {
        for (const auto &proto :
             {ProtocolConfig::gd(), ProtocolConfig::dd(),
              ProtocolConfig::ddbo()})
            cells.push_back(Cell{name, proto});
    }

    struct CellResult
    {
        RunResult run;
        double syncMisses = 0.0;
    };
    SweepRunner runner(opts.jobs);
    auto results = runner.map(cells.size(), [&](std::size_t i) {
        auto workload = makeScaled(cells[i].name, opts.scalePercent);
        SystemConfig config;
        config.protocol = cells[i].proto;
        System system(config);
        CellResult cell;
        cell.run = system.run(*workload);
        for (unsigned cu = 0; cu < system.numCus(); ++cu) {
            cell.syncMisses +=
                system.stats()
                    .find("l1." + std::to_string(cu) +
                          ".sync_misses")
                    ->value();
        }
        return cell;
    });

    std::printf("=== Ablation: DeNovoSync read backoff (DD vs DD+BO) "
                "===\n");
    std::printf("%-10s %-8s %-12s %-14s %-14s\n", "bench", "config",
                "cycles", "atomic flits", "sync misses");
    SweepRecord record;
    record.harness = "ablation_sync_backoff";
    record.jobs = opts.jobs;
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const RunResult &result = results[i].run;
        if (!result.ok()) {
            std::fprintf(stderr, "check failed: %s on %s\n",
                         cells[i].name, result.config.c_str());
            return 1;
        }
        record.add(result, opts.scalePercent);
        std::printf("%-10s %-8s %-12llu %-14.0f %-14.0f\n",
                    cells[i].name, result.config.c_str(),
                    static_cast<unsigned long long>(result.cycles),
                    result.traffic[static_cast<std::size_t>(
                        TrafficClass::Atomic)],
                    results[i].syncMisses);
    }
    if (!opts.jsonPath.empty()) {
        record.wallMillis = timer.millis();
        record.writeJson(opts.jsonPath);
    }
    return 0;
}
