/**
 * @file
 * Ablation: DeNovoSync read backoff.
 *
 * Section 3 of the paper: "DeNovoSync optimizes DeNovoSync0 by
 * incorporating a backoff mechanism on registered reads when there is
 * too much read-read contention. We do not explore it for
 * simplicity." This harness explores it: DD+BO throttles the
 * re-registration of spinning synchronization reads that keep
 * observing an unchanged value, which matters most for the
 * read-spinning mutexes (FAM's now-serving spin, SLM's lock polls).
 */

#include "bench_util.hh"

using namespace nosync;
using namespace nosync::bench;

int
main(int argc, char **argv)
{
    Options opts = Options::parse(argc, argv);

    std::printf("=== Ablation: DeNovoSync read backoff (DD vs DD+BO) "
                "===\n");
    std::printf("%-10s %-8s %-12s %-14s %-14s\n", "bench", "config",
                "cycles", "atomic flits", "sync misses");

    for (const char *name :
         {"FAM_G", "SLM_G", "SPM_G", "SPMBO_G", "UTS"}) {
        for (const auto &proto :
             {ProtocolConfig::gd(), ProtocolConfig::dd(),
              ProtocolConfig::ddbo()}) {
            auto workload = makeScaled(name, opts.scalePercent);
            SystemConfig config;
            config.protocol = proto;
            System system(config);
            RunResult result = system.run(*workload);
            if (!result.ok()) {
                std::fprintf(stderr, "check failed: %s on %s\n",
                             name, result.config.c_str());
                return 1;
            }
            double sync_misses = 0.0;
            for (unsigned cu = 0; cu < system.numCus(); ++cu) {
                sync_misses += system.stats().get(
                    "l1." + std::to_string(cu) + ".sync_misses");
            }
            std::printf("%-10s %-8s %-12llu %-14.0f %-14.0f\n", name,
                        result.config.c_str(),
                        static_cast<unsigned long long>(
                            result.cycles),
                        result.traffic[static_cast<std::size_t>(
                            TrafficClass::Atomic)],
                        sync_misses);
        }
    }
    return 0;
}
