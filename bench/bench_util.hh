/**
 * @file
 * Shared helpers for the figure-regeneration harnesses.
 */

#ifndef BENCH_BENCH_UTIL_HH
#define BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "core/report.hh"
#include "core/system.hh"
#include "workloads/registry.hh"

namespace nosync::bench
{

/** Command-line options common to every harness. */
struct Options
{
    unsigned scalePercent = 100;
    bool breakdowns = true;

    static Options
    parse(int argc, char **argv)
    {
        Options opts;
        for (int i = 1; i < argc; ++i) {
            if (std::strncmp(argv[i], "--scale=", 8) == 0)
                opts.scalePercent = static_cast<unsigned>(
                    std::atoi(argv[i] + 8));
            else if (std::strcmp(argv[i], "--no-breakdowns") == 0)
                opts.breakdowns = false;
            else
                std::cerr << "ignoring unknown option " << argv[i]
                          << "\n";
        }
        return opts;
    }
};

/** Run one workload on one configuration. */
inline RunResult
runOne(const std::string &workload_name, const ProtocolConfig &proto,
       const Options &opts)
{
    auto workload = makeScaled(workload_name, opts.scalePercent);
    SystemConfig config;
    config.protocol = proto;
    System system(config);
    RunResult result = system.run(*workload);
    if (!result.ok()) {
        std::cerr << "CHECK FAILED: " << workload_name << " on "
                  << result.config << "\n";
        for (const auto &failure : result.checkFailures)
            std::cerr << "  " << failure << "\n";
        std::exit(1);
    }
    return result;
}

/** Run a workload group across configurations. */
inline std::vector<WorkloadResults>
runMatrix(const std::vector<std::string> &workloads,
          const std::vector<ProtocolConfig> &configs,
          const Options &opts)
{
    std::vector<WorkloadResults> results;
    for (const auto &name : workloads) {
        WorkloadResults wr;
        wr.workload = name;
        for (const auto &proto : configs) {
            std::cerr << "  running " << name << " on "
                      << proto.shortName() << "...\n";
            wr.runs.push_back(runOne(name, proto, opts));
        }
        results.push_back(std::move(wr));
    }
    return results;
}

/** Emit the three figure parts in the paper's format. */
inline void
emitFigure(const std::vector<WorkloadResults> &results,
           std::size_t baseline, const std::string &figure,
           const Options &opts)
{
    std::cout << renderFigure(results, 0, baseline,
                              figure + "a: execution time (normalized)")
              << "\n";
    std::cout << renderFigure(results, 1, baseline,
                              figure + "b: dynamic energy (normalized)")
              << "\n";
    std::cout << renderFigure(results, 2, baseline,
                              figure +
                                  "c: network traffic (flit "
                                  "crossings, normalized)")
              << "\n";
    if (opts.breakdowns) {
        std::cout << "== " << figure
                  << "b breakdown (energy by component, % of "
                     "baseline total) ==\n"
                  << renderEnergyBreakdown(results, baseline) << "\n";
        std::cout << "== " << figure
                  << "c breakdown (traffic by class, % of baseline "
                     "total) ==\n"
                  << renderTrafficBreakdown(results, baseline) << "\n";
    }
}

} // namespace nosync::bench

#endif // BENCH_BENCH_UTIL_HH
