/**
 * @file
 * Shared helpers for the figure-regeneration harnesses.
 *
 * All harnesses accept a common option set (--scale, --jobs, --json,
 * --no-breakdowns) and run their (workload x config) matrices through
 * the SweepRunner, so `--jobs=N` parallelizes any harness across host
 * threads while keeping the printed tables bitwise identical to a
 * serial run. `--json=PATH` additionally emits the full result matrix
 * as a machine-readable BENCH_*.json record.
 */

#ifndef BENCH_BENCH_UTIL_HH
#define BENCH_BENCH_UTIL_HH

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "core/report.hh"
#include "core/system.hh"
#include "runner/bench_json.hh"
#include "runner/sweep_runner.hh"
#include "workloads/registry.hh"

namespace nosync::bench
{

/** Command-line options common to every harness. */
struct Options
{
    unsigned scalePercent = 100;
    bool breakdowns = true;
    /** Worker threads for sweeps; 0 = one per hardware thread. */
    unsigned jobs = 1;
    /** Emit the result matrix as JSON to this path ("" = don't). */
    std::string jsonPath;
    /**
     * Enable transaction tracing and write per-cell Chrome trace
     * JSON derived from this path ("" = tracing off). Each cell gets
     * its own file — stem.<workload>.<config>.json — so parallel
     * sweeps (--jobs=N) never contend for one output file.
     */
    std::string tracePath;
    /** Happens-before race checking on every cell. */
    bool raceCheck = false;
    /**
     * Write per-cell race reports as JSON derived from this path
     * ("" = don't). Implies --race-check. Cells split files the same
     * way --trace does, so --jobs=N never contends for one file.
     */
    std::string raceJsonPath;
    /**
     * Override SystemConfig::maxCycles, the simulated-cycle hang
     * cutoff (0 = keep the config default). Long weak-scaling sweeps
     * raise it; smoke runs lower it to fail fast.
     */
    Tick maxCycles = 0;
    /**
     * Override the race detector's detailed-record cap (0 = keep the
     * detector default). Implies --race-check: the cap is meaningless
     * without the detector.
     */
    std::size_t raceCap = 0;
    /**
     * In-run parallel simulation (SystemConfig::simThreads): 0 keeps
     * the serial single-queue path; N >= 1 runs every cell on the
     * PDES engine with N threads. Engine output is bitwise identical
     * for every N, so any value is safe for figure regeneration.
     */
    unsigned simThreads = 0;
    /**
     * Devices in the machine (MachineTopology::devices): each device
     * gets its own mesh + L2 banks + CUs, joined by the inter-device
     * link. 1 (the default) reproduces the single-device machine
     * bitwise.
     */
    unsigned devices = 1;
    /**
     * Override the inter-device link latency in cycles (0 = keep the
     * topology default). Only meaningful with --devices >= 2.
     */
    Cycles linkLatency = 0;
    /**
     * Add the DD+SE (memory-side sync engine) column to the harness's
     * config matrix.
     */
    bool syncEngine = false;

    /**
     * Harness-specific option hook: return true if @p arg was
     * consumed. Unknown options are an error (exit 2) — a typo'd
     * sweep flag must not silently run the wrong experiment.
     */
    using ExtraHandler = std::function<bool(const char *)>;

    static Options parse(int argc, char **argv,
                         const ExtraHandler &extra,
                         const char *extra_usage, Options defaults);
    static Options parse(int argc, char **argv,
                         const ExtraHandler &extra = {},
                         const char *extra_usage = "");
};

inline Options
Options::parse(int argc, char **argv, const ExtraHandler &extra,
               const char *extra_usage)
{
    return parse(argc, argv, extra, extra_usage, Options());
}

/**
 * One typed command-line flag. Every harness option — boolean
 * toggles, path strings, lenient legacy counts, and strictly
 * validated numeric ranges — is one row in a single table, so a new
 * flag gets parsing, validation, and usage text on every harness by
 * construction instead of another hand-rolled strncmp branch.
 */
struct FlagSpec
{
    enum class Kind : std::uint8_t
    {
        Toggle,  ///< bare flag, no value
        String,  ///< --name=TEXT, taken verbatim
        Lenient, ///< --name=N, legacy atoi (no validation)
        Number,  ///< --name=N, strict parse + [min, max] check
        Real,    ///< --name=X, strict positive-double parse
    };

    const char *name; ///< flag name including leading dashes
    Kind kind;
    /** Inclusive numeric range (Kind::Number only). */
    unsigned long long min = 0;
    unsigned long long max = ~0ull;
    /** Error-message noun phrase, e.g. "a positive cycle count". */
    const char *expects = "";
    /** Store the parsed value (num for numeric kinds, text else). */
    std::function<void(Options &, unsigned long long num,
                       const char *text)>
        apply;

    /** Usage fragment: " [--name]", " [--name=N]", " [--name=PATH]". */
    std::string
    usage() const
    {
        switch (kind) {
          case Kind::Toggle: return std::string(" [") + name + "]";
          case Kind::String:
            return std::string(" [") + name + "=PATH]";
          case Kind::Real: return std::string(" [") + name + "=X]";
          default: return std::string(" [") + name + "=N]";
        }
    }

    /** Try to consume @p arg; exits(2) on a malformed value. */
    bool
    match(const char *arg, Options &opts) const
    {
        std::size_t len = std::strlen(name);
        if (kind == Kind::Toggle) {
            if (std::strcmp(arg, name) != 0)
                return false;
            apply(opts, 0, "");
            return true;
        }
        if (std::strncmp(arg, name, len) != 0 || arg[len] != '=')
            return false;
        const char *value = arg + len + 1;
        switch (kind) {
          case Kind::String:
            apply(opts, 0, value);
            return true;
          case Kind::Lenient:
            apply(opts, static_cast<unsigned long long>(
                            std::atoi(value)),
                  value);
            return true;
          case Kind::Real: {
            // Strict: the validated text is re-read by apply, so the
            // double survives the integer-shaped apply signature.
            char *end = nullptr;
            errno = 0;
            double parsed = std::strtod(value, &end);
            if (*value == '\0' || end == nullptr || *end != '\0' ||
                errno == ERANGE || parsed <= 0.0) {
                std::cerr << "error: " << name << " expects "
                          << expects << ", got '" << value << "'\n";
                std::exit(2);
            }
            apply(opts, 0, value);
            return true;
          }
          default:
            break;
        }
        // Strict parse: a garbled count must not silently fall back
        // to a default and masquerade as the requested experiment.
        char *end = nullptr;
        errno = 0;
        unsigned long long num = std::strtoull(value, &end, 10);
        if (*value == '\0' || end == nullptr || *end != '\0' ||
            errno == ERANGE || num < min || num > max) {
            std::cerr << "error: " << name << " expects " << expects
                      << ", got '" << value << "'\n";
            std::exit(2);
        }
        apply(opts, num, value);
        return true;
    }
};

/** The table behind Options::parse — one row per common flag. */
inline const std::vector<FlagSpec> &
commonFlags()
{
    using ull = unsigned long long;
    static const std::vector<FlagSpec> specs = {
        {"--scale", FlagSpec::Kind::Lenient, 0, 0, "",
         [](Options &o, ull num, const char *) {
             o.scalePercent = static_cast<unsigned>(num);
         }},
        {"--jobs", FlagSpec::Kind::Lenient, 0, 0, "",
         [](Options &o, ull num, const char *) {
             o.jobs = SweepRunner::resolveJobs(
                 static_cast<unsigned>(num));
         }},
        {"--json", FlagSpec::Kind::String, 0, 0, "",
         [](Options &o, ull, const char *text) {
             o.jsonPath = text;
         }},
        {"--trace", FlagSpec::Kind::String, 0, 0, "",
         [](Options &o, ull, const char *text) {
             o.tracePath = text;
         }},
        {"--race-check", FlagSpec::Kind::Toggle, 0, 0, "",
         [](Options &o, ull, const char *) { o.raceCheck = true; }},
        {"--race-json", FlagSpec::Kind::String, 0, 0, "",
         [](Options &o, ull, const char *text) {
             o.raceJsonPath = text;
             o.raceCheck = true;
         }},
        {"--race-cap", FlagSpec::Kind::Number, 1, ~0ull,
         "a positive record count",
         [](Options &o, ull num, const char *) {
             o.raceCap = static_cast<std::size_t>(num);
             o.raceCheck = true;
         }},
        {"--max-cycles", FlagSpec::Kind::Number, 1, ~0ull,
         "a positive cycle count",
         [](Options &o, ull num, const char *) {
             o.maxCycles = static_cast<Tick>(num);
         }},
        {"--sim-threads", FlagSpec::Kind::Number, 1, 1024,
         "a thread count in [1, 1024]",
         [](Options &o, ull num, const char *) {
             o.simThreads = static_cast<unsigned>(num);
         }},
        {"--devices", FlagSpec::Kind::Number, 1, 64,
         "a device count in [1, 64]",
         [](Options &o, ull num, const char *) {
             o.devices = static_cast<unsigned>(num);
         }},
        {"--link-latency", FlagSpec::Kind::Number, 1, ~0ull,
         "a positive cycle count",
         [](Options &o, ull num, const char *) {
             o.linkLatency = static_cast<Cycles>(num);
         }},
        {"--sync-engine", FlagSpec::Kind::Toggle, 0, 0, "",
         [](Options &o, ull, const char *) { o.syncEngine = true; }},
        {"--no-breakdowns", FlagSpec::Kind::Toggle, 0, 0, "",
         [](Options &o, ull, const char *) { o.breakdowns = false; }},
    };
    return specs;
}

inline Options
Options::parse(int argc, char **argv, const ExtraHandler &extra,
               const char *extra_usage, Options defaults)
{
    Options opts = defaults;
    const std::vector<FlagSpec> &specs = commonFlags();
    for (int i = 1; i < argc; ++i) {
        bool consumed = false;
        for (const FlagSpec &spec : specs) {
            if (spec.match(argv[i], opts)) {
                consumed = true;
                break;
            }
        }
        if (consumed || (extra && extra(argv[i])))
            continue;
        std::cerr << "error: unknown option " << argv[i]
                  << "\nusage: " << argv[0];
        for (const FlagSpec &spec : specs)
            std::cerr << spec.usage();
        std::cerr << extra_usage << "\n";
        std::exit(2);
    }
    return opts;
}

/** Wall-clock stopwatch for the harness-level JSON header. */
class WallTimer
{
  public:
    double
    millis() const
    {
        return std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - _start)
            .count();
    }

  private:
    std::chrono::steady_clock::time_point _start =
        std::chrono::steady_clock::now();
};

/** Per-cell trace filename: stem.<workload>.<config>.json. */
inline std::string
traceCellPath(const std::string &base, const std::string &workload,
              const std::string &config)
{
    std::string::size_type dot = base.rfind('.');
    std::string::size_type slash = base.rfind('/');
    std::string stem = base;
    std::string ext = ".json";
    if (dot != std::string::npos &&
        (slash == std::string::npos || dot > slash)) {
        stem = base.substr(0, dot);
        ext = base.substr(dot);
    }
    return stem + "." + workload + "." + config + ext;
}

/**
 * Run one simulation cell: @p workload_name on @p proto, with an
 * optional SystemConfig tweak (ablation sweeps). Thread-safe: builds
 * a fresh System per call; under --trace each cell writes its own
 * trace file.
 */
inline RunResult
runCell(const std::string &workload_name, const ProtocolConfig &proto,
        const Options &opts,
        const std::function<void(SystemConfig &)> &tweak = {})
{
    auto workload = makeScaled(workload_name, opts.scalePercent);
    SystemConfig config;
    config.protocol = proto;
    config.topology.devices = opts.devices;
    if (opts.linkLatency != 0)
        config.topology.link.latency = opts.linkLatency;
    config.observability.traceEnabled = !opts.tracePath.empty();
    config.checking.raceCheckEnabled = opts.raceCheck;
    config.checking.raceRecordCap = opts.raceCap;
    config.execution.simThreads = opts.simThreads;
    if (opts.maxCycles != 0)
        config.execution.maxCycles = opts.maxCycles;
    if (tweak)
        tweak(config);
    System system(config);
    RunResult result = system.run(*workload);
    // A tweak may enable tracing just for the sync-latency summaries
    // (BENCH latency blocks); only --trace=PATH writes trace files.
    if (system.trace() && !opts.tracePath.empty()) {
        std::string path = traceCellPath(opts.tracePath, workload_name,
                                         proto.shortName());
        if (!system.trace()->writeChromeJson(path)) {
            std::cerr << "error: cannot write trace " << path << "\n";
            std::exit(1);
        }
    }
    if (!opts.raceJsonPath.empty() && result.races.enabled) {
        std::string path = traceCellPath(
            opts.raceJsonPath, workload_name, proto.shortName());
        if (!analysis::writeRaceJson(result.races, path)) {
            std::cerr << "error: cannot write race report " << path
                      << "\n";
            std::exit(1);
        }
    }
    return result;
}

/**
 * The paper's five-config comparison column set, plus the DD+SE
 * memory-side sync engine as a sixth column under --sync-engine.
 */
inline std::vector<ProtocolConfig>
standardConfigs(const Options &opts)
{
    std::vector<ProtocolConfig> configs = {
        ProtocolConfig::gd(), ProtocolConfig::gh(),
        ProtocolConfig::dd(), ProtocolConfig::ddro(),
        ProtocolConfig::dh()};
    if (opts.syncEngine)
        configs.push_back(ProtocolConfig::ddse());
    return configs;
}

/** Print diagnostics and exit(1) if any run failed its checks. */
inline void
requireAllOk(const std::vector<RunResult> &results)
{
    bool failed = false;
    for (const auto &result : results) {
        if (result.ok())
            continue;
        failed = true;
        std::cerr << "CHECK FAILED: " << result.workload << " on "
                  << result.config << "\n";
        for (const auto &failure : result.checkFailures)
            std::cerr << "  " << failure << "\n";
        if (result.hang)
            std::cerr << renderHangReport(*result.hang);
        if (result.races.enabled && result.races.racesDetected != 0)
            std::cerr << analysis::renderRaceReport(result.races);
    }
    if (failed)
        std::exit(1);
}

/**
 * Run a workload group across configurations, fanned out over
 * opts.jobs threads. Cells are aggregated in (workload, config)
 * order, so every downstream table is bitwise identical regardless
 * of the thread count.
 */
inline std::vector<WorkloadResults>
runMatrix(const std::vector<std::string> &workloads,
          const std::vector<ProtocolConfig> &configs,
          const Options &opts,
          const std::function<void(SystemConfig &)> &tweak = {})
{
    struct CellSpec
    {
        const std::string *workload;
        const ProtocolConfig *proto;
    };
    std::vector<CellSpec> cells;
    cells.reserve(workloads.size() * configs.size());
    for (const auto &name : workloads) {
        for (const auto &proto : configs)
            cells.push_back(CellSpec{&name, &proto});
    }

    SweepRunner runner(opts.jobs);
    std::vector<RunResult> flat =
        runner.map(cells.size(), [&](std::size_t i) {
            SweepRunner::log("  running " + *cells[i].workload +
                             " on " + cells[i].proto->shortName() +
                             "...");
            return runCell(*cells[i].workload, *cells[i].proto, opts,
                           tweak);
        });
    requireAllOk(flat);

    std::vector<WorkloadResults> results;
    results.reserve(workloads.size());
    std::size_t i = 0;
    for (const auto &name : workloads) {
        WorkloadResults wr;
        wr.workload = name;
        for (std::size_t c = 0; c < configs.size(); ++c)
            wr.runs.push_back(std::move(flat[i++]));
        results.push_back(std::move(wr));
    }
    return results;
}

/**
 * Emit the harness's result matrix as a BENCH_*.json record when
 * --json=PATH was given. Call once, at the end, with every matrix
 * the harness ran.
 */
inline void
maybeWriteJson(const Options &opts, const std::string &harness,
               const std::vector<WorkloadResults> &results,
               const WallTimer &timer)
{
    if (opts.jsonPath.empty())
        return;
    SweepRecord record;
    record.harness = harness;
    record.jobs = opts.jobs;
    for (const auto &wr : results) {
        for (const auto &run : wr.runs)
            record.add(run, opts.scalePercent);
    }
    record.wallMillis = timer.millis();
    if (!record.writeJson(opts.jsonPath)) {
        std::cerr << "error: cannot write " << opts.jsonPath << "\n";
        std::exit(1);
    }
    std::cerr << "wrote " << opts.jsonPath << " (" << record.cells.size()
              << " cells)\n";
}

/** Emit the three figure parts in the paper's format. */
inline void
emitFigure(const std::vector<WorkloadResults> &results,
           std::size_t baseline, const std::string &figure,
           const Options &opts)
{
    std::cout << renderFigure(results, 0, baseline,
                              figure + "a: execution time (normalized)")
              << "\n";
    std::cout << renderFigure(results, 1, baseline,
                              figure + "b: dynamic energy (normalized)")
              << "\n";
    std::cout << renderFigure(results, 2, baseline,
                              figure +
                                  "c: network traffic (flit "
                                  "crossings, normalized)")
              << "\n";
    if (opts.breakdowns) {
        std::cout << "== " << figure
                  << "b breakdown (energy by component, % of "
                     "baseline total) ==\n"
                  << renderEnergyBreakdown(results, baseline) << "\n";
        std::cout << "== " << figure
                  << "c breakdown (traffic by class, % of baseline "
                     "total) ==\n"
                  << renderTrafficBreakdown(results, baseline) << "\n";
    }
}

} // namespace nosync::bench

#endif // BENCH_BENCH_UTIL_HH
