/**
 * @file
 * Shared helpers for the figure-regeneration harnesses.
 *
 * All harnesses accept a common option set (--scale, --jobs, --json,
 * --no-breakdowns) and run their (workload x config) matrices through
 * the SweepRunner, so `--jobs=N` parallelizes any harness across host
 * threads while keeping the printed tables bitwise identical to a
 * serial run. `--json=PATH` additionally emits the full result matrix
 * as a machine-readable BENCH_*.json record.
 */

#ifndef BENCH_BENCH_UTIL_HH
#define BENCH_BENCH_UTIL_HH

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "core/report.hh"
#include "core/system.hh"
#include "runner/bench_json.hh"
#include "runner/sweep_runner.hh"
#include "workloads/registry.hh"

namespace nosync::bench
{

/** Command-line options common to every harness. */
struct Options
{
    unsigned scalePercent = 100;
    bool breakdowns = true;
    /** Worker threads for sweeps; 0 = one per hardware thread. */
    unsigned jobs = 1;
    /** Emit the result matrix as JSON to this path ("" = don't). */
    std::string jsonPath;
    /**
     * Enable transaction tracing and write per-cell Chrome trace
     * JSON derived from this path ("" = tracing off). Each cell gets
     * its own file — stem.<workload>.<config>.json — so parallel
     * sweeps (--jobs=N) never contend for one output file.
     */
    std::string tracePath;
    /** Happens-before race checking on every cell. */
    bool raceCheck = false;
    /**
     * Write per-cell race reports as JSON derived from this path
     * ("" = don't). Implies --race-check. Cells split files the same
     * way --trace does, so --jobs=N never contends for one file.
     */
    std::string raceJsonPath;
    /**
     * Override SystemConfig::maxCycles, the simulated-cycle hang
     * cutoff (0 = keep the config default). Long weak-scaling sweeps
     * raise it; smoke runs lower it to fail fast.
     */
    Tick maxCycles = 0;
    /**
     * Override the race detector's detailed-record cap (0 = keep the
     * detector default). Implies --race-check: the cap is meaningless
     * without the detector.
     */
    std::size_t raceCap = 0;
    /**
     * In-run parallel simulation (SystemConfig::simThreads): 0 keeps
     * the serial single-queue path; N >= 1 runs every cell on the
     * PDES engine with N threads. Engine output is bitwise identical
     * for every N, so any value is safe for figure regeneration.
     */
    unsigned simThreads = 0;

    /**
     * Harness-specific option hook: return true if @p arg was
     * consumed. Unknown options are an error (exit 2) — a typo'd
     * sweep flag must not silently run the wrong experiment.
     */
    using ExtraHandler = std::function<bool(const char *)>;

    static Options parse(int argc, char **argv,
                         const ExtraHandler &extra,
                         const char *extra_usage, Options defaults);
    static Options parse(int argc, char **argv,
                         const ExtraHandler &extra = {},
                         const char *extra_usage = "");
};

inline Options
Options::parse(int argc, char **argv, const ExtraHandler &extra,
               const char *extra_usage)
{
    return parse(argc, argv, extra, extra_usage, Options());
}

inline Options
Options::parse(int argc, char **argv, const ExtraHandler &extra,
               const char *extra_usage, Options defaults)
{
    Options opts = defaults;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--scale=", 8) == 0) {
            opts.scalePercent =
                static_cast<unsigned>(std::atoi(argv[i] + 8));
        } else if (std::strcmp(argv[i], "--no-breakdowns") == 0) {
            opts.breakdowns = false;
        } else if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
            opts.jobs = SweepRunner::resolveJobs(
                static_cast<unsigned>(std::atoi(argv[i] + 7)));
        } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
            opts.jsonPath = argv[i] + 7;
        } else if (std::strncmp(argv[i], "--trace=", 8) == 0) {
            opts.tracePath = argv[i] + 8;
        } else if (std::strcmp(argv[i], "--race-check") == 0) {
            opts.raceCheck = true;
        } else if (std::strncmp(argv[i], "--race-json=", 12) == 0) {
            opts.raceJsonPath = argv[i] + 12;
            opts.raceCheck = true;
        } else if (std::strncmp(argv[i], "--max-cycles=", 13) == 0) {
            // Strict parse: a garbled cycle budget must not silently
            // run with the default and masquerade as a clean sweep.
            const char *value = argv[i] + 13;
            char *end = nullptr;
            errno = 0;
            unsigned long long cycles = std::strtoull(value, &end, 10);
            if (*value == '\0' || end == nullptr || *end != '\0' ||
                errno == ERANGE || cycles == 0) {
                std::cerr << "error: --max-cycles expects a positive "
                             "cycle count, got '"
                          << value << "'\n";
                std::exit(2);
            }
            opts.maxCycles = static_cast<Tick>(cycles);
        } else if (std::strncmp(argv[i], "--sim-threads=", 14) == 0) {
            // Strict parse: a garbled thread count must not silently
            // fall back to the serial path and report engine numbers.
            const char *value = argv[i] + 14;
            char *end = nullptr;
            errno = 0;
            unsigned long long threads = std::strtoull(value, &end, 10);
            if (*value == '\0' || end == nullptr || *end != '\0' ||
                errno == ERANGE || threads == 0 || threads > 1024) {
                std::cerr << "error: --sim-threads expects a thread "
                             "count in [1, 1024], got '"
                          << value << "'\n";
                std::exit(2);
            }
            opts.simThreads = static_cast<unsigned>(threads);
        } else if (std::strncmp(argv[i], "--race-cap=", 11) == 0) {
            // Strict parse: a garbled cap must not silently truncate
            // at the default and pass a gate it should have failed.
            const char *value = argv[i] + 11;
            char *end = nullptr;
            errno = 0;
            unsigned long long cap = std::strtoull(value, &end, 10);
            if (*value == '\0' || end == nullptr || *end != '\0' ||
                errno == ERANGE || cap == 0) {
                std::cerr << "error: --race-cap expects a positive "
                             "record count, got '"
                          << value << "'\n";
                std::exit(2);
            }
            opts.raceCap = static_cast<std::size_t>(cap);
            opts.raceCheck = true;
        } else if (!extra || !extra(argv[i])) {
            std::cerr << "error: unknown option " << argv[i]
                      << "\nusage: " << argv[0]
                      << " [--scale=N] [--jobs=N] [--json=PATH]"
                         " [--trace=PATH] [--race-check]"
                         " [--race-json=PATH] [--race-cap=N]"
                         " [--max-cycles=N] [--sim-threads=N]"
                         " [--no-breakdowns]"
                      << extra_usage << "\n";
            std::exit(2);
        }
    }
    return opts;
}

/** Wall-clock stopwatch for the harness-level JSON header. */
class WallTimer
{
  public:
    double
    millis() const
    {
        return std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - _start)
            .count();
    }

  private:
    std::chrono::steady_clock::time_point _start =
        std::chrono::steady_clock::now();
};

/** Per-cell trace filename: stem.<workload>.<config>.json. */
inline std::string
traceCellPath(const std::string &base, const std::string &workload,
              const std::string &config)
{
    std::string::size_type dot = base.rfind('.');
    std::string::size_type slash = base.rfind('/');
    std::string stem = base;
    std::string ext = ".json";
    if (dot != std::string::npos &&
        (slash == std::string::npos || dot > slash)) {
        stem = base.substr(0, dot);
        ext = base.substr(dot);
    }
    return stem + "." + workload + "." + config + ext;
}

/**
 * Run one simulation cell: @p workload_name on @p proto, with an
 * optional SystemConfig tweak (ablation sweeps). Thread-safe: builds
 * a fresh System per call; under --trace each cell writes its own
 * trace file.
 */
inline RunResult
runCell(const std::string &workload_name, const ProtocolConfig &proto,
        const Options &opts,
        const std::function<void(SystemConfig &)> &tweak = {})
{
    auto workload = makeScaled(workload_name, opts.scalePercent);
    SystemConfig config;
    config.protocol = proto;
    config.traceEnabled = !opts.tracePath.empty();
    config.raceCheckEnabled = opts.raceCheck;
    config.raceRecordCap = opts.raceCap;
    config.simThreads = opts.simThreads;
    if (opts.maxCycles != 0)
        config.maxCycles = opts.maxCycles;
    if (tweak)
        tweak(config);
    System system(config);
    RunResult result = system.run(*workload);
    if (system.trace()) {
        std::string path = traceCellPath(opts.tracePath, workload_name,
                                         proto.shortName());
        if (!system.trace()->writeChromeJson(path)) {
            std::cerr << "error: cannot write trace " << path << "\n";
            std::exit(1);
        }
    }
    if (!opts.raceJsonPath.empty() && result.races.enabled) {
        std::string path = traceCellPath(
            opts.raceJsonPath, workload_name, proto.shortName());
        if (!analysis::writeRaceJson(result.races, path)) {
            std::cerr << "error: cannot write race report " << path
                      << "\n";
            std::exit(1);
        }
    }
    return result;
}

/** Print diagnostics and exit(1) if any run failed its checks. */
inline void
requireAllOk(const std::vector<RunResult> &results)
{
    bool failed = false;
    for (const auto &result : results) {
        if (result.ok())
            continue;
        failed = true;
        std::cerr << "CHECK FAILED: " << result.workload << " on "
                  << result.config << "\n";
        for (const auto &failure : result.checkFailures)
            std::cerr << "  " << failure << "\n";
        if (result.hang)
            std::cerr << renderHangReport(*result.hang);
        if (result.races.enabled && result.races.racesDetected != 0)
            std::cerr << analysis::renderRaceReport(result.races);
    }
    if (failed)
        std::exit(1);
}

/**
 * Run a workload group across configurations, fanned out over
 * opts.jobs threads. Cells are aggregated in (workload, config)
 * order, so every downstream table is bitwise identical regardless
 * of the thread count.
 */
inline std::vector<WorkloadResults>
runMatrix(const std::vector<std::string> &workloads,
          const std::vector<ProtocolConfig> &configs,
          const Options &opts,
          const std::function<void(SystemConfig &)> &tweak = {})
{
    struct CellSpec
    {
        const std::string *workload;
        const ProtocolConfig *proto;
    };
    std::vector<CellSpec> cells;
    cells.reserve(workloads.size() * configs.size());
    for (const auto &name : workloads) {
        for (const auto &proto : configs)
            cells.push_back(CellSpec{&name, &proto});
    }

    SweepRunner runner(opts.jobs);
    std::vector<RunResult> flat =
        runner.map(cells.size(), [&](std::size_t i) {
            SweepRunner::log("  running " + *cells[i].workload +
                             " on " + cells[i].proto->shortName() +
                             "...");
            return runCell(*cells[i].workload, *cells[i].proto, opts,
                           tweak);
        });
    requireAllOk(flat);

    std::vector<WorkloadResults> results;
    results.reserve(workloads.size());
    std::size_t i = 0;
    for (const auto &name : workloads) {
        WorkloadResults wr;
        wr.workload = name;
        for (std::size_t c = 0; c < configs.size(); ++c)
            wr.runs.push_back(std::move(flat[i++]));
        results.push_back(std::move(wr));
    }
    return results;
}

/**
 * Emit the harness's result matrix as a BENCH_*.json record when
 * --json=PATH was given. Call once, at the end, with every matrix
 * the harness ran.
 */
inline void
maybeWriteJson(const Options &opts, const std::string &harness,
               const std::vector<WorkloadResults> &results,
               const WallTimer &timer)
{
    if (opts.jsonPath.empty())
        return;
    SweepRecord record;
    record.harness = harness;
    record.jobs = opts.jobs;
    for (const auto &wr : results) {
        for (const auto &run : wr.runs)
            record.add(run, opts.scalePercent);
    }
    record.wallMillis = timer.millis();
    if (!record.writeJson(opts.jsonPath)) {
        std::cerr << "error: cannot write " << opts.jsonPath << "\n";
        std::exit(1);
    }
    std::cerr << "wrote " << opts.jsonPath << " (" << record.cells.size()
              << " cells)\n";
}

/** Emit the three figure parts in the paper's format. */
inline void
emitFigure(const std::vector<WorkloadResults> &results,
           std::size_t baseline, const std::string &figure,
           const Options &opts)
{
    std::cout << renderFigure(results, 0, baseline,
                              figure + "a: execution time (normalized)")
              << "\n";
    std::cout << renderFigure(results, 1, baseline,
                              figure + "b: dynamic energy (normalized)")
              << "\n";
    std::cout << renderFigure(results, 2, baseline,
                              figure +
                                  "c: network traffic (flit "
                                  "crossings, normalized)")
              << "\n";
    if (opts.breakdowns) {
        std::cout << "== " << figure
                  << "b breakdown (energy by component, % of "
                     "baseline total) ==\n"
                  << renderEnergyBreakdown(results, baseline) << "\n";
        std::cout << "== " << figure
                  << "c breakdown (traffic by class, % of baseline "
                     "total) ==\n"
                  << renderTrafficBreakdown(results, baseline) << "\n";
    }
}

} // namespace nosync::bench

#endif // BENCH_BENCH_UTIL_HH
