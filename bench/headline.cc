/**
 * @file
 * Headline reproduction: every quantitative claim from the paper's
 * abstract and Section 6, measured on this implementation, printed
 * as paper-vs-measured rows (the source for EXPERIMENTS.md).
 */

#include "bench_util.hh"

using namespace nosync;
using namespace nosync::bench;

int
main(int argc, char **argv)
{
    WallTimer timer;
    Options opts = Options::parse(argc, argv);
    opts.breakdowns = false;

    auto names_of = [](const std::string &group) {
        std::vector<std::string> names;
        for (const auto *desc : workloadsInGroup(group))
            names.push_back(desc->name);
        return names;
    };

    std::vector<WorkloadResults> all;
    auto keep = [&](const std::vector<WorkloadResults> &res) {
        all.insert(all.end(), res.begin(), res.end());
    };

    std::cout << "=== Headline claims: paper vs this reproduction "
                 "===\n\n";

    // Claim 1 (Fig 2): no-sync apps, DeNovo comparable to GPU.
    {
        auto res = runMatrix(names_of("no-sync"),
                             {ProtocolConfig::gd(),
                              ProtocolConfig::dd()},
                             opts);
        keep(res);
        double time = averageNormalized(res, 0, 1, 0);
        double traffic = averageNormalized(res, 2, 1, 0);
        std::printf("[no-sync apps]   paper: D* within ~0.5%% of G* "
                    "time, -5%% traffic | measured: %+.1f%% time, "
                    "%+.1f%% traffic\n",
                    (time - 1.0) * 100.0, (traffic - 1.0) * 100.0);
    }

    // Claim 2 (Fig 3): global sync, DD wins big.
    {
        auto res = runMatrix(names_of("global-sync"),
                             {ProtocolConfig::gd(),
                              ProtocolConfig::dd()},
                             opts);
        keep(res);
        std::printf("[global sync]    paper: D* -28%% time, -51%% "
                    "energy, -81%% traffic vs G* | measured: "
                    "%+.0f%% time, %+.0f%% energy, %+.0f%% traffic\n",
                    (averageNormalized(res, 0, 1, 0) - 1.0) * 100.0,
                    (averageNormalized(res, 1, 1, 0) - 1.0) * 100.0,
                    (averageNormalized(res, 2, 1, 0) - 1.0) * 100.0);
    }

    // Claims 3-5 (Fig 4): local sync orderings.
    {
        auto res = runMatrix(names_of("local-sync"),
                             {ProtocolConfig::gd(),
                              ProtocolConfig::gh(),
                              ProtocolConfig::dd(),
                              ProtocolConfig::ddro(),
                              ProtocolConfig::dh()},
                             opts);
        keep(res);
        std::printf("[local sync]     paper: GH -46%% time vs GD | "
                    "measured: %+.0f%%\n",
                    (averageNormalized(res, 0, 1, 0) - 1.0) * 100.0);
        std::printf("[local sync]     paper: GH -6%% time vs DD "
                    "(max -13%%) | measured avg: %+.0f%%\n",
                    (averageNormalized(res, 0, 1, 2) - 1.0) * 100.0);
        std::printf("[local sync]     paper: DD+RO ~= GH | measured "
                    "GH vs DD+RO: %+.0f%% time\n",
                    (averageNormalized(res, 0, 1, 3) - 1.0) * 100.0);
        std::printf("[local sync]     paper: DH best protocol | "
                    "measured DH vs GH: %+.0f%% time, DH vs DD: "
                    "%+.0f%% time\n",
                    (averageNormalized(res, 0, 4, 1) - 1.0) * 100.0,
                    (averageNormalized(res, 0, 4, 2) - 1.0) * 100.0);
    }

    maybeWriteJson(opts, "headline", all, timer);
    return 0;
}
