/**
 * @file
 * Chaos sweep: fault-injection robustness harness.
 *
 * Runs a set of synchronization-heavy workloads across the five
 * studied configurations, each under several fault-injection seeds
 * (message latency jitter, cross-pair reordering, duplicated
 * idempotent requests). For every run it demands:
 *
 *  - the workload completes (no hang, no watchdog),
 *  - the functional check and the quiesced invariant sweep are clean,
 *  - for timing-independent workloads, the final memory image matches
 *    a fault-free golden execution word for word,
 *  - re-running the same seed reproduces the exact cycle count,
 *    energy, and traffic (determinism of the injected faults).
 *
 * Any violation prints full diagnostics (including the structured
 * hang report when the run hung) and exits non-zero.
 *
 * The parallel unit is one (workload, config) cell: the fault-free
 * golden execution is computed exactly once per cell and shared by
 * every fault seed's memory compare, and each cell runs on its own
 * thread under --jobs=N.
 *
 * Usage: chaos_sweep [--scale=N] [--jobs=N] [--json=PATH]
 *                    [--seeds=N] [--check-period=N]
 */

#include <cstring>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "core/protocol_checker.hh"
#include "core/report.hh"
#include "core/system.hh"
#include "workloads/registry.hh"

using namespace nosync;
using namespace nosync::bench;

namespace
{

SystemConfig
makeConfig(const ProtocolConfig &proto, Tick check_period,
           std::uint64_t fault_seed)
{
    SystemConfig config;
    config.protocol = proto;
    config.checking.checkPeriod = check_period;
    if (fault_seed != 0) {
        config.execution.faults.enabled = true;
        config.execution.faults.seed = fault_seed;
    }
    return config;
}

/** Everything one (workload, config) cell produced. */
struct CellOutcome
{
    unsigned runs = 0;
    std::size_t faultsInjected = 0;
    /** Failure diagnostics; empty = cell clean. */
    std::string failure;
    /** Per-run results (golden first) for the JSON record. */
    std::vector<SweepCell> cells;
};

} // namespace

int
main(int argc, char **argv)
{
    WallTimer timer;
    unsigned num_seeds = 5;
    Tick check_period = 2000;
    // Harness-specific flags as FlagSpec rows, so they get the same
    // strict parsing and error text as the common table instead of a
    // hand-rolled strncmp/atoi branch.
    const std::vector<FlagSpec> chaos_flags = {
        {"--seeds", FlagSpec::Kind::Number, 1, 1000,
         "a seed count in [1, 1000]",
         [&num_seeds](Options &, unsigned long long num,
                      const char *) {
             num_seeds = static_cast<unsigned>(num);
         }},
        {"--check-period", FlagSpec::Kind::Number, 1, ~0ull,
         "a positive cycle count",
         [&check_period](Options &, unsigned long long num,
                         const char *) {
             check_period = static_cast<Tick>(num);
         }},
    };
    Options opts = Options::parse(
        argc, argv,
        [&](const char *arg) {
            Options dummy;
            for (const FlagSpec &spec : chaos_flags)
                if (spec.match(arg, dummy))
                    return true;
            return false;
        },
        " [--seeds=N] [--check-period=N]",
        [] {
            Options defaults;
            defaults.scalePercent = 30; // chaos default: fast sweeps
            return defaults;
        }());

    const std::vector<std::string> workloads = {
        "FAM_G",  // decoupled fetch-add mutex, global scope
        "SS_L",   // sleeping semaphore, local scope
        "TB_LG",  // tree barrier, mixed scope
    };
    const std::vector<ProtocolConfig> configs = {
        ProtocolConfig::gd(),   ProtocolConfig::gh(),
        ProtocolConfig::dd(),   ProtocolConfig::ddro(),
        ProtocolConfig::dh(),
    };

    struct CellSpec
    {
        const std::string *workload;
        const ProtocolConfig *proto;
    };
    std::vector<CellSpec> specs;
    for (const auto &name : workloads) {
        for (const auto &proto : configs)
            specs.push_back(CellSpec{&name, &proto});
    }

    // One cell = golden + all seeds + replay for one
    // (workload, config); diagnostics are collected, not printed, so
    // failures emerge in deterministic cell order after aggregation.
    auto run_cell = [&](const CellSpec &spec) {
        const std::string &name = *spec.workload;
        const ProtocolConfig &proto = *spec.proto;
        CellOutcome out;
        std::ostringstream err;

        auto run_one = [&](std::uint64_t fault_seed,
                           RunResult &result_out) {
            auto workload = makeScaled(name, opts.scalePercent);
            auto system = std::make_unique<System>(
                makeConfig(proto, check_period, fault_seed));
            result_out = system->run(*workload);
            ++out.runs;
            out.cells.push_back(SweepCell{});
            out.cells.back().scalePercent = opts.scalePercent;
            out.cells.back().faultSeed = fault_seed;
            out.cells.back().result = result_out;
            if (!result_out.ok()) {
                err << "CHAOS FAILURE: " << name << " on "
                    << proto.shortName()
                    << " fault-seed=" << fault_seed << "\n";
                for (const auto &failure : result_out.checkFailures)
                    err << "  " << failure << "\n";
                if (result_out.hang)
                    err << renderHangReport(*result_out.hang);
                system.reset();
            }
            return system;
        };

        bool deterministic =
            makeScaled(name, opts.scalePercent)
                ->deterministicOutput();

        // Golden: fault-free reference execution, computed once per
        // cell and reused by every seed's memory compare.
        RunResult golden_result;
        auto golden = run_one(0, golden_result);
        if (!golden) {
            out.failure = err.str();
            return out;
        }

        for (unsigned s = 1; s <= num_seeds; ++s) {
            std::uint64_t seed = 0xc0ffee + 977 * s;
            SweepRunner::log("  " + name + " on " +
                             proto.shortName() + " fault-seed " +
                             std::to_string(seed) + "...");
            RunResult result;
            auto system = run_one(seed, result);
            if (!system) {
                out.failure = err.str();
                return out;
            }
            if (const FaultInjector *f = system->faults()) {
                out.faultsInjected += f->jittered() + f->delayed() +
                                      f->duplicated();
            }

            if (deterministic) {
                auto diffs =
                    ProtocolChecker::compareMemory(*system, *golden);
                if (!diffs.empty()) {
                    err << "CHAOS FAILURE: " << name << " on "
                        << proto.shortName() << " fault-seed=" << seed
                        << " diverged from the golden run:\n";
                    for (const auto &d : diffs)
                        err << "  " << d << "\n";
                    out.failure = err.str();
                    return out;
                }
            }

            if (s == 1) {
                // Reproducibility: the same seed must replay to the
                // exact same cycle count, energy, and traffic.
                RunResult replay;
                auto replay_sys = run_one(seed, replay);
                if (!replay_sys) {
                    out.failure = err.str();
                    return out;
                }
                if (replay.cycles != result.cycles ||
                    replay.energyTotal != result.energyTotal ||
                    replay.trafficTotal != result.trafficTotal) {
                    err << "CHAOS FAILURE: " << name << " on "
                        << proto.shortName() << " fault-seed=" << seed
                        << " is not reproducible: " << result.cycles
                        << " vs " << replay.cycles << " cycles, "
                        << result.trafficTotal << " vs "
                        << replay.trafficTotal << " flits\n";
                    out.failure = err.str();
                    return out;
                }
                auto diffs = ProtocolChecker::compareMemory(
                    *replay_sys, *system);
                if (!diffs.empty()) {
                    err << "CHAOS FAILURE: " << name << " on "
                        << proto.shortName() << " fault-seed=" << seed
                        << " replay memory diverged\n";
                    out.failure = err.str();
                    return out;
                }
            }
        }
        return out;
    };

    SweepRunner runner(opts.jobs);
    auto outcomes = runner.map(
        specs.size(),
        [&](std::size_t i) { return run_cell(specs[i]); });

    unsigned runs = 0;
    std::size_t faults_injected = 0;
    SweepRecord record;
    record.harness = "chaos_sweep";
    record.jobs = opts.jobs;
    for (const auto &out : outcomes) {
        runs += out.runs;
        faults_injected += out.faultsInjected;
        for (const auto &cell : out.cells)
            record.cells.push_back(cell);
        if (!out.failure.empty()) {
            std::cerr << out.failure;
            return 1;
        }
    }

    if (!opts.jsonPath.empty()) {
        record.wallMillis = timer.millis();
        record.writeJson(opts.jsonPath);
    }

    std::cout << "chaos sweep clean: " << runs << " runs ("
              << workloads.size() << " workloads x " << configs.size()
              << " configs x " << num_seeds
              << " fault seeds + goldens/replays), "
              << faults_injected << " faults injected, zero invariant "
              << "violations, zero hangs\n";
    return 0;
}
