/**
 * @file
 * Chaos sweep: fault-injection robustness harness.
 *
 * Runs a set of synchronization-heavy workloads across the five
 * studied configurations, each under several fault-injection seeds
 * (message latency jitter, cross-pair reordering, duplicated
 * idempotent requests). For every run it demands:
 *
 *  - the workload completes (no hang, no watchdog),
 *  - the functional check and the quiesced invariant sweep are clean,
 *  - for timing-independent workloads, the final memory image matches
 *    a fault-free golden execution word for word,
 *  - re-running the same seed reproduces the exact cycle count,
 *    energy, and traffic (determinism of the injected faults).
 *
 * Any violation prints full diagnostics (including the structured
 * hang report when the run hung) and exits non-zero.
 *
 * Usage: chaos_sweep [--scale=N] [--seeds=N] [--check-period=N]
 */

#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/protocol_checker.hh"
#include "core/report.hh"
#include "core/system.hh"
#include "workloads/registry.hh"

using namespace nosync;

namespace
{

struct ChaosOptions
{
    unsigned scalePercent = 30;
    unsigned numSeeds = 5;
    Tick checkPeriod = 2000;
};

ChaosOptions
parseOptions(int argc, char **argv)
{
    ChaosOptions opts;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--scale=", 8) == 0)
            opts.scalePercent =
                static_cast<unsigned>(std::atoi(argv[i] + 8));
        else if (std::strncmp(argv[i], "--seeds=", 8) == 0)
            opts.numSeeds =
                static_cast<unsigned>(std::atoi(argv[i] + 8));
        else if (std::strncmp(argv[i], "--check-period=", 15) == 0)
            opts.checkPeriod =
                static_cast<Tick>(std::atoll(argv[i] + 15));
        else
            std::cerr << "ignoring unknown option " << argv[i] << "\n";
    }
    return opts;
}

SystemConfig
makeConfig(const ProtocolConfig &proto, const ChaosOptions &opts,
           std::uint64_t fault_seed)
{
    SystemConfig config;
    config.protocol = proto;
    config.checkPeriod = opts.checkPeriod;
    if (fault_seed != 0) {
        config.faults.enabled = true;
        config.faults.seed = fault_seed;
    }
    return config;
}

/** One simulation; exits the process on any check failure. */
std::unique_ptr<System>
runOrDie(const std::string &workload_name, const ProtocolConfig &proto,
         const ChaosOptions &opts, std::uint64_t fault_seed,
         RunResult &result_out)
{
    auto workload = makeScaled(workload_name, opts.scalePercent);
    auto system =
        std::make_unique<System>(makeConfig(proto, opts, fault_seed));
    result_out = system->run(*workload);
    if (!result_out.ok()) {
        std::cerr << "CHAOS FAILURE: " << workload_name << " on "
                  << proto.shortName() << " fault-seed=" << fault_seed
                  << "\n";
        for (const auto &failure : result_out.checkFailures)
            std::cerr << "  " << failure << "\n";
        if (result_out.hang)
            std::cerr << renderHangReport(*result_out.hang);
        std::exit(1);
    }
    return system;
}

} // namespace

int
main(int argc, char **argv)
{
    ChaosOptions opts = parseOptions(argc, argv);

    const std::vector<std::string> workloads = {
        "FAM_G",  // decoupled fetch-add mutex, global scope
        "SS_L",   // sleeping semaphore, local scope
        "TB_LG",  // tree barrier, mixed scope
    };
    const std::vector<ProtocolConfig> configs = {
        ProtocolConfig::gd(),   ProtocolConfig::gh(),
        ProtocolConfig::dd(),   ProtocolConfig::ddro(),
        ProtocolConfig::dh(),
    };

    unsigned runs = 0;
    std::size_t faults_injected = 0;

    for (const auto &name : workloads) {
        bool deterministic =
            makeScaled(name, opts.scalePercent)->deterministicOutput();

        for (const auto &proto : configs) {
            // Golden: fault-free reference execution of the same
            // (workload, config). Kept alive for the memory compare.
            RunResult golden_result;
            auto golden =
                runOrDie(name, proto, opts, 0, golden_result);
            ++runs;

            for (unsigned s = 1; s <= opts.numSeeds; ++s, ++runs) {
                std::uint64_t seed = 0xc0ffee + 977 * s;
                std::cerr << "  " << name << " on "
                          << proto.shortName() << " fault-seed "
                          << seed << "...\n";
                RunResult result;
                auto system =
                    runOrDie(name, proto, opts, seed, result);
                if (const FaultInjector *f = system->faults()) {
                    faults_injected += f->jittered() + f->delayed() +
                                       f->duplicated();
                }

                if (deterministic) {
                    auto diffs = ProtocolChecker::compareMemory(
                        *system, *golden);
                    if (!diffs.empty()) {
                        std::cerr << "CHAOS FAILURE: " << name
                                  << " on " << proto.shortName()
                                  << " fault-seed=" << seed
                                  << " diverged from the golden "
                                     "run:\n";
                        for (const auto &d : diffs)
                            std::cerr << "  " << d << "\n";
                        return 1;
                    }
                }

                if (s == 1) {
                    // Reproducibility: the same seed must replay to
                    // the exact same cycle count, energy, and
                    // traffic.
                    RunResult replay;
                    auto replay_sys =
                        runOrDie(name, proto, opts, seed, replay);
                    ++runs;
                    if (replay.cycles != result.cycles ||
                        replay.energyTotal != result.energyTotal ||
                        replay.trafficTotal != result.trafficTotal) {
                        std::cerr
                            << "CHAOS FAILURE: " << name << " on "
                            << proto.shortName() << " fault-seed="
                            << seed << " is not reproducible: "
                            << result.cycles << " vs "
                            << replay.cycles << " cycles, "
                            << result.trafficTotal << " vs "
                            << replay.trafficTotal << " flits\n";
                        return 1;
                    }
                    auto diffs = ProtocolChecker::compareMemory(
                        *replay_sys, *system);
                    if (!diffs.empty()) {
                        std::cerr << "CHAOS FAILURE: " << name
                                  << " on " << proto.shortName()
                                  << " fault-seed=" << seed
                                  << " replay memory diverged\n";
                        return 1;
                    }
                }
            }
        }
    }

    std::cout << "chaos sweep clean: " << runs << " runs ("
              << workloads.size() << " workloads x " << configs.size()
              << " configs x " << opts.numSeeds
              << " fault seeds + goldens/replays), "
              << faults_injected << " faults injected, zero invariant "
              << "violations, zero hangs\n";
    return 0;
}
