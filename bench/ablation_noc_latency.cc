/**
 * @file
 * Ablation: interconnect latency sensitivity.
 *
 * EXPERIMENTS.md (note N1) attributes part of the gap between our
 * global-sync speedups and the paper's to the cost of DeNovo's
 * distributed registration queue, which serializes lock handoffs
 * across mesh hops. This harness sweeps the per-hop link latency:
 * GPU coherence (sync at the L2) and DeNovo (ownership chains across
 * L1s) respond very differently, and the crossover illustrates when
 * each design wins.
 */

#include "bench_util.hh"

using namespace nosync;
using namespace nosync::bench;

int
main(int argc, char **argv)
{
    WallTimer timer;
    Options opts = Options::parse(argc, argv);

    struct Cell
    {
        const char *name;
        Cycles hop;
        ProtocolConfig proto;
    };
    std::vector<Cell> cells;
    for (const char *name : {"SPM_G", "FAM_G"}) {
        for (Cycles hop : {1u, 3u, 6u, 12u}) {
            for (const auto &proto :
                 {ProtocolConfig::gd(), ProtocolConfig::dd()})
                cells.push_back(Cell{name, hop, proto});
        }
    }

    SweepRunner runner(opts.jobs);
    auto results = runner.map(cells.size(), [&](std::size_t i) {
        auto workload = makeScaled(
            cells[i].name, std::min(opts.scalePercent, 50u));
        SystemConfig config;
        config.protocol = cells[i].proto;
        config.topology.mesh.hopLatency = cells[i].hop;
        System system(config);
        return system.run(*workload);
    });

    std::printf("=== Ablation: mesh hop latency (SPM_G and FAM_G) "
                "===\n");
    std::printf("%-8s %-10s %-8s %-12s %-14s\n", "bench", "hop(cyc)",
                "config", "cycles", "atomic flits");
    SweepRecord record;
    record.harness = "ablation_noc_latency";
    record.jobs = opts.jobs;
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const RunResult &result = results[i];
        if (!result.ok()) {
            std::fprintf(stderr, "check failed: %s\n", cells[i].name);
            return 1;
        }
        record.add(result, std::min(opts.scalePercent, 50u));
        std::printf("%-8s %-10llu %-8s %-12llu %-14.0f\n",
                    cells[i].name,
                    static_cast<unsigned long long>(cells[i].hop),
                    result.config.c_str(),
                    static_cast<unsigned long long>(result.cycles),
                    result.traffic[static_cast<std::size_t>(
                        TrafficClass::Atomic)]);
    }
    if (!opts.jsonPath.empty()) {
        record.wallMillis = timer.millis();
        record.writeJson(opts.jsonPath);
    }
    std::printf("\nReading the table: GD's spin herd pays the herd's "
                "round trips to one L2 bank,\nwhile DD's handoffs "
                "walk owner-to-owner; higher hop latency stretches "
                "DD's\nregistration chains faster than GD's bank "
                "queue, and vice versa.\n");
    return 0;
}
