/**
 * @file
 * Ablation: interconnect latency sensitivity.
 *
 * EXPERIMENTS.md (note N1) attributes part of the gap between our
 * global-sync speedups and the paper's to the cost of DeNovo's
 * distributed registration queue, which serializes lock handoffs
 * across mesh hops. This harness sweeps the per-hop link latency:
 * GPU coherence (sync at the L2) and DeNovo (ownership chains across
 * L1s) respond very differently, and the crossover illustrates when
 * each design wins.
 */

#include "bench_util.hh"

using namespace nosync;
using namespace nosync::bench;

int
main(int argc, char **argv)
{
    Options opts = Options::parse(argc, argv);

    std::printf("=== Ablation: mesh hop latency (SPM_G and FAM_G) "
                "===\n");
    std::printf("%-8s %-10s %-8s %-12s %-14s\n", "bench", "hop(cyc)",
                "config", "cycles", "atomic flits");

    for (const char *name : {"SPM_G", "FAM_G"}) {
        for (Cycles hop : {1u, 3u, 6u, 12u}) {
            for (const auto &proto :
                 {ProtocolConfig::gd(), ProtocolConfig::dd()}) {
                auto workload = makeScaled(
                    name, std::min(opts.scalePercent, 50u));
                SystemConfig config;
                config.protocol = proto;
                config.mesh.hopLatency = hop;
                System system(config);
                RunResult result = system.run(*workload);
                if (!result.ok()) {
                    std::fprintf(stderr, "check failed: %s\n", name);
                    return 1;
                }
                std::printf(
                    "%-8s %-10llu %-8s %-12llu %-14.0f\n", name,
                    static_cast<unsigned long long>(hop),
                    result.config.c_str(),
                    static_cast<unsigned long long>(result.cycles),
                    result.traffic[static_cast<std::size_t>(
                        TrafficClass::Atomic)]);
            }
        }
    }
    std::printf("\nReading the table: GD's spin herd pays the herd's "
                "round trips to one L2 bank,\nwhile DD's handoffs "
                "walk owner-to-owner; higher hop latency stretches "
                "DD's\nregistration chains faster than GD's bank "
                "queue, and vice versa.\n");
    return 0;
}
