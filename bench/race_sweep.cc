/**
 * @file
 * Race-detection sweep: fifteen workloads (three from each of the
 * paper's groups, two device-scope mutexes, and four graph-analytics
 * push/pull cells) under all studied configurations — the standard
 * columns plus DD+PR — with the happens-before detector enabled.
 * This is the CI race gate — every cell must finish with zero
 * unsuppressed races, and `--race-json=PATH` emits one report per
 * cell for tools/validate_races.py --require-clean.
 *
 * With `--devices=2` the device-scope cells become genuinely
 * middle-scoped (device < global): well-scoped by construction, they
 * must stay clean on the HRF configs where a mis-scoped fence would
 * race. At the default one device they degenerate to global scope.
 *
 * Unlike the figure harnesses, the detector is always on here (the
 * sweep is pointless without it); --race-json remains optional.
 */

#include "bench_util.hh"

using namespace nosync;
using namespace nosync::bench;

int
main(int argc, char **argv)
{
    WallTimer timer;
    Options opts = Options::parse(argc, argv);
    opts.raceCheck = true;

    // Three workloads per group so every sync idiom (none, global
    // scope, local/hybrid scope, device scope, graph push/pull) is
    // exercised under every config, including the HRF ones where
    // scope races are possible.
    const std::vector<std::string> names = {
        "ST",    "SGEMM", "LUD",    // no-sync
        "UTS",   "FAM_G", "SPM_G",  // global-sync
        "FAM_L", "SS_L",  "TB_LG",  // local-sync
        "FAM_D", "SPM_D",           // device-sync
        "BFS_PUSH_PL", "BFS_PULL_PL",
        "PR_PULL_M", "SSSP_PUSH_M", // graph
    };

    // The per-region column joins the gate unconditionally: streaming
    // write-throughs must be just as race-clean as registrations.
    auto configs = standardConfigs(opts);
    configs.push_back(ProtocolConfig::ddpr());

    auto results = runMatrix(names, configs, opts);
    std::cout << "=== Race sweep: happens-before detection, fifteen "
                 "workloads x all configs ===\n\n";
    emitFigure(results, 0, "RaceSweep", opts);

    std::size_t accesses = 0, edges = 0;
    for (const auto &wr : results)
        for (const auto &run : wr.runs) {
            accesses += run.races.dataAccesses;
            edges += run.races.hbEdges;
        }
    std::printf("checked %zu data accesses across %zu HB edges; "
                "all cells race-free\n",
                accesses, edges);
    maybeWriteJson(opts, "race_sweep", results, timer);
    return 0;
}
