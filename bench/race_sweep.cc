/**
 * @file
 * Race-detection sweep: eleven paper workloads (three from each of
 * the paper's groups, plus two device-scope mutexes) under all
 * studied configurations with the happens-before detector enabled.
 * This is the CI race gate — every cell must finish with zero
 * unsuppressed races, and `--race-json=PATH` emits one report per
 * cell for tools/validate_races.py --require-clean.
 *
 * With `--devices=2` the device-scope cells become genuinely
 * middle-scoped (device < global): well-scoped by construction, they
 * must stay clean on the HRF configs where a mis-scoped fence would
 * race. At the default one device they degenerate to global scope.
 *
 * Unlike the figure harnesses, the detector is always on here (the
 * sweep is pointless without it); --race-json remains optional.
 */

#include "bench_util.hh"

using namespace nosync;
using namespace nosync::bench;

int
main(int argc, char **argv)
{
    WallTimer timer;
    Options opts = Options::parse(argc, argv);
    opts.raceCheck = true;

    // Three workloads per group so every sync idiom (none, global
    // scope, local/hybrid scope, device scope) is exercised under
    // every config, including the HRF ones where scope races are
    // possible.
    const std::vector<std::string> names = {
        "ST",    "SGEMM", "LUD",    // no-sync
        "UTS",   "FAM_G", "SPM_G",  // global-sync
        "FAM_L", "SS_L",  "TB_LG",  // local-sync
        "FAM_D", "SPM_D",           // device-sync
    };

    auto results = runMatrix(names, standardConfigs(opts), opts);
    std::cout << "=== Race sweep: happens-before detection, eleven "
                 "workloads x all configs ===\n\n";
    emitFigure(results, 0, "RaceSweep", opts);

    std::size_t accesses = 0, edges = 0;
    for (const auto &wr : results)
        for (const auto &run : wr.runs) {
            accesses += run.races.dataAccesses;
            edges += run.races.hbEdges;
        }
    std::printf("checked %zu data accesses across %zu HB edges; "
                "all cells race-free\n",
                accesses, edges);
    maybeWriteJson(opts, "race_sweep", results, timer);
    return 0;
}
