/**
 * @file
 * Regression tests for protocol race windows.
 *
 * Each of these scenarios was a real bug found during development by
 * the property-based tests; they are pinned here as small,
 * deterministic reproducers:
 *  - a fill installing the registry's stale copy over a value still
 *    buffered locally (SB / pending registration / pending WT),
 *  - a store to a freshly registered word leaving an older SB entry
 *    shadowing the frame,
 *  - re-registration racing an in-flight writeback at the registry,
 *  - eviction writebacks still in flight when results are inspected,
 *  - the DeNovoSync0 batch rule (queued remote transfers must not
 *    starve, and must not be served before already-queued locals).
 */

#include <gtest/gtest.h>

#include "test_util.hh"

using namespace nosync;
using namespace nosync::test;

namespace
{

constexpr Addr kLine = 0x30000;
constexpr Addr kOther = 0x30004; // second word, same line
constexpr Addr kLock = 0x40000;

SystemConfig
dd()
{
    SystemConfig config;
    config.protocol = ProtocolConfig::dd();
    return config;
}

SystemConfig
gd()
{
    SystemConfig config;
    config.protocol = ProtocolConfig::gd();
    return config;
}

} // namespace

TEST(ProtocolRaces, FillMustNotShadowBufferedStoreDenovo)
{
    System sys(dd());
    sys.writeInit(kLine, 111); // stale value at the L2

    // Buffer a store, then force a fill of the same line via a load
    // of a different word while the store is still in the SB.
    bool stored = false;
    sys.l1(0).store(kLine, 222, [&] { stored = true; });
    std::uint32_t other = doLoad(sys, 0, kOther);
    EXPECT_EQ(other, 0u);
    while (!stored && sys.eventQueue().step()) {
    }
    // The fill of the line must not have resurrected the stale 111.
    EXPECT_EQ(doLoad(sys, 0, kLine), 222u);
}

TEST(ProtocolRaces, FillMustNotShadowBufferedStoreGpu)
{
    System sys(gd());
    sys.writeInit(kLine, 111);
    bool stored = false;
    sys.l1(0).store(kLine, 222, [&] { stored = true; });
    doLoad(sys, 0, kOther);
    while (!stored && sys.eventQueue().step()) {
    }
    EXPECT_EQ(doLoad(sys, 0, kLine), 222u);
}

TEST(ProtocolRaces, DrainedStoreStaysVisibleUntilRegistered)
{
    System sys(dd());
    // Store, start the drain, and read back at every step until the
    // registration completes: the value must never flicker.
    bool stored = false;
    sys.l1(0).store(kLine, 77, [&] { stored = true; });
    while (!stored && sys.eventQueue().step()) {
    }
    bool drained = false;
    sys.l1(0).drainWrites(Scope::Global, [&] { drained = true; });
    while (!drained) {
        std::uint32_t v = 0;
        ASSERT_TRUE(as<DenovoL1Cache>(sys.l1(0))->peekWord(kLine, v));
        ASSERT_EQ(v, 77u);
        if (!sys.eventQueue().step())
            break;
    }
    EXPECT_TRUE(drained);
    EXPECT_EQ(doLoad(sys, 0, kLine), 77u);
}

TEST(ProtocolRaces, DrainedStoreStaysVisibleGpu)
{
    System sys(gd());
    bool stored = false;
    sys.l1(0).store(kLine, 88, [&] { stored = true; });
    while (!stored && sys.eventQueue().step()) {
    }
    bool drained = false;
    sys.l1(0).drainWrites(Scope::Global, [&] { drained = true; });
    // Read mid-drain (writethrough in flight): must still see 88.
    EXPECT_EQ(doLoad(sys, 0, kLine), 88u);
    while (!drained && sys.eventQueue().step()) {
    }
    EXPECT_TRUE(drained);
    EXPECT_EQ(doLoad(sys, 0, kLine), 88u);
}

TEST(ProtocolRaces, StoreToFreshlyRegisteredWordClearsSbShadow)
{
    System sys(dd());
    // Gen 1: buffer a store and drain it (word becomes registered).
    doStore(sys, 0, kLine, 1);
    // Gen 2: buffer another store before draining...
    doStore(sys, 0, kLine, 2);
    doDrain(sys, 0);
    // ...then store again: the word is now registered, so this store
    // completes in the L1. An older SB entry must not shadow it.
    doStore(sys, 0, kLine, 3);
    EXPECT_EQ(doLoad(sys, 0, kLine), 3u);
    doDrain(sys, 0);
    EXPECT_EQ(sys.debugRead(kLine), 3u);
}

TEST(ProtocolRaces, EvictionThenRewriteKeepsLatestValue)
{
    // Repeated write -> evict -> rewrite cycles of the same word:
    // the stale-writeback filter and the wb-ack-ordered registration
    // must always leave the newest value visible.
    SystemConfig config = dd();
    config.geometry.l1Bytes = 256; // tiny L1: constant eviction
    config.geometry.l1Assoc = 2;
    System sys(config);

    for (std::uint32_t gen = 1; gen <= 8; ++gen) {
        doStore(sys, 0, kLine, gen * 10);
        doDrain(sys, 0);
        // March conflicting lines through the set to evict.
        for (unsigned i = 1; i <= 4; ++i)
            doLoad(sys, 0, kLine + i * 0x100);
        drainEvents(sys);
        ASSERT_EQ(sys.debugRead(kLine), gen * 10)
            << "generation " << gen;
    }
}

TEST(ProtocolRaces, QuiesceLandsInFlightWritebacks)
{
    // After a run completes, eviction writebacks triggered by the
    // final drain must have landed before results are read.
    SystemConfig config = dd();
    config.geometry.l1Bytes = 256;
    config.geometry.l1Assoc = 2;
    System sys(config);
    for (unsigned i = 0; i < 10; ++i)
        doStore(sys, 0, kLine + i * 0x100, 1000 + i);
    doDrain(sys, 0);
    drainEvents(sys);
    for (unsigned i = 0; i < 10; ++i)
        EXPECT_EQ(sys.debugRead(kLine + i * 0x100), 1000 + i);
}

TEST(ProtocolRaces, RemoteTransferDoesNotStarveUnderLocalSpinning)
{
    // DeNovoSync0 batch rule: CU 0 spins on the lock while CU 1 needs
    // one atomic on the same word. CU 1's transfer must be served
    // after the locals queued at grant time - not starved forever.
    System sys(dd());

    // CU 0 acquires ownership and keeps spinning (exchange of 1 into
    // a word that stays 1: every attempt "fails").
    sys.writeInit(kLock, 1);
    unsigned cu0_spins = 0;
    std::function<void()> spin = [&] {
        if (cu0_spins >= 2000)
            return; // bounded for the test
        ++cu0_spins;
        sys.l1(0).sync(makeSync(AtomicFunc::Exchange, kLock, 1),
                       [&](std::uint32_t) { spin(); });
    };
    spin();
    // Let CU 0 get going.
    for (int i = 0; i < 200; ++i)
        sys.eventQueue().step();

    bool cu1_done = false;
    sys.l1(1).sync(makeSync(AtomicFunc::Store, kLock, 0, 0,
                            Scope::Global, SyncSemantics::Release),
                   [&](std::uint32_t) { cu1_done = true; });
    Tick start = sys.eventQueue().now();
    while (!cu1_done && sys.eventQueue().step()) {
        ASSERT_LT(sys.eventQueue().now(), start + 200000)
            << "remote sync starved by local spinning";
    }
    EXPECT_TRUE(cu1_done);
}

TEST(ProtocolRaces, ReadForwardServedFromWritebackBuffer)
{
    // CU 0 owns a word, evicts it (writeback in flight), and CU 1's
    // read is forwarded to CU 0 by the registry before the writeback
    // arrives: CU 0 must serve it from the writeback buffer.
    SystemConfig config = dd();
    config.geometry.l1Bytes = 256;
    config.geometry.l1Assoc = 2;
    System sys(config);

    doStore(sys, 0, kLine, 909);
    doDrain(sys, 0);
    ASSERT_TRUE(as<DenovoL1Cache>(sys.l1(0))->ownsWord(kLine));
    // Trigger the eviction but do NOT wait for the writeback to
    // land; immediately read from CU 1.
    bool evicted = false;
    sys.l1(0).load(kLine + 0x100, [&](std::uint32_t) {});
    sys.l1(0).load(kLine + 0x200, [&](std::uint32_t) {});
    sys.l1(0).load(kLine + 0x300, [&](std::uint32_t) {});
    sys.l1(0).load(kLine + 0x400, [&](std::uint32_t) {
        evicted = true;
    });
    while (!evicted && sys.eventQueue().step()) {
    }
    EXPECT_EQ(doLoad(sys, 1, kLine), 909u);
}

TEST(ProtocolRaces, RegistrationWaitsForWritebackAck)
{
    // Evict a registered word and immediately rewrite it: the
    // re-registration must order after the writeback at the
    // registry, or the stale writeback would clobber the new value.
    SystemConfig config = dd();
    config.geometry.l1Bytes = 256;
    config.geometry.l1Assoc = 2;
    System sys(config);

    for (std::uint32_t round = 0; round < 6; ++round) {
        doStore(sys, 0, kLine, 100 + round);
        doDrain(sys, 0);
        // Evict (writeback leaves), then without waiting store the
        // next value and drain again.
        sys.l1(0).load(kLine + 0x100, [](std::uint32_t) {});
        sys.l1(0).load(kLine + 0x200, [](std::uint32_t) {});
        sys.l1(0).load(kLine + 0x300, [](std::uint32_t) {});
        sys.l1(0).load(kLine + 0x400, [](std::uint32_t) {});
        doStore(sys, 0, kLine, 200 + round);
        doDrain(sys, 0);
        drainEvents(sys);
        ASSERT_EQ(sys.debugRead(kLine), 200 + round)
            << "round " << round;
    }
}

TEST(ProtocolRaces, EpochPreciseFillServing)
{
    // A fill requested before an acquire may satisfy loads issued
    // before that acquire, but loads issued after must refetch.
    System sys(dd());
    sys.writeInit(kLine, 1);

    // Issue a load (fill in flight)...
    std::uint32_t first = 0xdead;
    sys.l1(0).load(kLine, [&](std::uint32_t v) { first = v; });
    // ...meanwhile CU 1 updates the word and releases...
    doStore(sys, 1, kLine + 0x1000, 0); // unrelated warmup
    // ...and CU 0 performs an acquire before the fill lands.
    bool acq = false;
    sys.l1(0).sync(makeSync(AtomicFunc::Load, kLock, 0, 0,
                            Scope::Global, SyncSemantics::Acquire),
                   [&](std::uint32_t) { acq = true; });
    while (!acq && sys.eventQueue().step()) {
    }
    // A post-acquire load must complete (no starvation) and see a
    // value at least as new as the pre-acquire one.
    std::uint32_t second = doLoad(sys, 0, kLine);
    drainEvents(sys);
    EXPECT_EQ(first, 1u);
    EXPECT_EQ(second, 1u);
}

TEST(ProtocolRaces, PartialLineDrainPiecesMerge)
{
    // Two drains registering different words of one line: both
    // grants must land without clobbering each other.
    System sys(dd());
    doStore(sys, 0, kLine, 5);
    doDrain(sys, 0);
    doStore(sys, 0, kOther, 6);
    doDrain(sys, 0);
    EXPECT_EQ(sys.debugRead(kLine), 5u);
    EXPECT_EQ(sys.debugRead(kOther), 6u);
    EXPECT_TRUE(as<DenovoL1Cache>(sys.l1(0))->ownsWord(kLine));
    EXPECT_TRUE(as<DenovoL1Cache>(sys.l1(0))->ownsWord(kOther));
}

TEST(ProtocolRaces, ConcurrentDrainAndRemoteReadKeepsCoherence)
{
    System sys(dd());
    // CU 0 buffers several stores across lines; CU 1 reads them
    // concurrently with the drain. Every read must return either 0
    // (old) or the stored value - never garbage.
    for (unsigned i = 0; i < 8; ++i)
        doStore(sys, 0, kLine + i * kLineBytes, 40 + i);
    bool drained = false;
    sys.l1(0).drainWrites(Scope::Global, [&] { drained = true; });
    std::vector<std::uint32_t> got(8, 0xdead);
    unsigned done = 0;
    for (unsigned i = 0; i < 8; ++i) {
        sys.l1(1).load(kLine + i * kLineBytes,
                       [&, i](std::uint32_t v) {
                           got[i] = v;
                           ++done;
                       });
    }
    while ((!drained || done < 8) && sys.eventQueue().step()) {
    }
    for (unsigned i = 0; i < 8; ++i)
        EXPECT_TRUE(got[i] == 0 || got[i] == 40 + i) << got[i];
    for (unsigned i = 0; i < 8; ++i)
        EXPECT_EQ(sys.debugRead(kLine + i * kLineBytes), 40 + i);
}
