/**
 * @file
 * Happens-before race detector tests: vector-clock unit tests driven
 * directly through the RaceDetector API, litmus-style racy/race-free
 * workload pairs run through the full System on every configuration,
 * and the bitwise-identity guarantee that race checking off changes
 * nothing.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "analysis/race_detector.hh"
#include "test_util.hh"
#include "workloads/registry.hh"

using namespace nosync;
using namespace nosync::analysis;
using namespace nosync::test;

namespace
{

SyncOp
releaseOp(Addr addr, unsigned slot, Scope scope = Scope::Global)
{
    SyncOp op;
    op.func = AtomicFunc::Store;
    op.addr = addr;
    op.operand = 1;
    op.scope = scope;
    op.sem = SyncSemantics::Release;
    op.tb = slot;
    return op;
}

SyncOp
acquireOp(Addr addr, unsigned slot, Scope scope = Scope::Global)
{
    SyncOp op;
    op.func = AtomicFunc::Load;
    op.addr = addr;
    op.scope = scope;
    op.sem = SyncSemantics::Acquire;
    op.tb = slot;
    return op;
}

// ---------------------------------------------------------------------
// Unit tests: the clock engine, driven directly
// ---------------------------------------------------------------------

TEST(RaceDetectorUnit, MessagePassingWithFenceIsRaceFree)
{
    RaceDetector det(ProtocolConfig::gd());
    unsigned prod = det.tbStarted(0, 0, 0);
    unsigned cons = det.tbStarted(0, 1, 1);

    det.dataWrite(prod, 0x100, 10);
    det.syncPerformed(releaseOp(0x200, prod), 20);
    det.syncPerformed(acquireOp(0x200, cons), 30);
    det.dataRead(cons, 0x100, 40);

    RaceReport report = det.finalize("unit-mp", "GD");
    EXPECT_EQ(report.racesDetected, 0u);
    EXPECT_GT(report.hbEdges, 0u);
    EXPECT_EQ(report.dataAccesses, 2u);
    EXPECT_EQ(report.syncPerforms, 2u);
}

TEST(RaceDetectorUnit, MessagePassingWithoutFenceRaces)
{
    RaceDetector det(ProtocolConfig::gd());
    unsigned prod = det.tbStarted(0, 0, 0);
    unsigned cons = det.tbStarted(0, 1, 1);

    det.dataWrite(prod, 0x100, 10);
    det.dataRead(cons, 0x100, 40);

    RaceReport report = det.finalize("unit-mp-nofence", "GD");
    ASSERT_EQ(report.racesDetected, 1u);
    ASSERT_EQ(report.races.size(), 1u);
    const RaceRecord &race = report.races.front();
    EXPECT_EQ(race.kind, RaceKind::Data);
    EXPECT_EQ(race.addr, 0x100u);
    EXPECT_EQ(race.first.tb, 0u);
    EXPECT_EQ(race.first.kind, AccessKind::Store);
    EXPECT_EQ(race.second.tb, 1u);
    EXPECT_EQ(race.second.kind, AccessKind::Load);
    EXPECT_EQ(report.failureCount(), 1u);
}

TEST(RaceDetectorUnit, ReleaseOpensFreshEpoch)
{
    RaceDetector det(ProtocolConfig::gd());
    unsigned prod = det.tbStarted(0, 0, 0);
    unsigned cons = det.tbStarted(0, 1, 1);

    det.syncPerformed(releaseOp(0x200, prod), 10);
    det.syncPerformed(acquireOp(0x200, cons), 20);
    // Written only after the release: the acquire must not cover it.
    det.dataWrite(prod, 0x100, 30);
    det.dataRead(cons, 0x100, 40);

    RaceReport report = det.finalize("unit-epoch", "GD");
    EXPECT_EQ(report.racesDetected, 1u);
}

TEST(RaceDetectorUnit, SyncSyncConflictsNeverRace)
{
    RaceDetector det(ProtocolConfig::gd());
    unsigned a = det.tbStarted(0, 0, 0);
    unsigned b = det.tbStarted(0, 1, 1);

    // Two TBs hammer one flag word with unordered atomics: that is
    // what synchronization is for, not a race.
    det.syncPerformed(releaseOp(0x200, a), 10);
    det.syncPerformed(releaseOp(0x200, b), 11);
    det.syncPerformed(acquireOp(0x200, a), 12);
    det.syncPerformed(acquireOp(0x200, b), 13);

    RaceReport report = det.finalize("unit-syncsync", "GD");
    EXPECT_EQ(report.racesDetected, 0u);
}

TEST(RaceDetectorUnit, MixedSyncDataConflictRaces)
{
    RaceDetector det(ProtocolConfig::gd());
    unsigned a = det.tbStarted(0, 0, 0);
    unsigned b = det.tbStarted(0, 1, 1);

    // One TB treats the word as a flag, the other as plain data.
    det.syncPerformed(releaseOp(0x200, a), 10);
    det.dataRead(b, 0x200, 20);

    RaceReport report = det.finalize("unit-mixed", "GD");
    ASSERT_EQ(report.racesDetected, 1u);
    EXPECT_TRUE(report.races.front().first.sync());
    EXPECT_FALSE(report.races.front().second.sync());
}

TEST(RaceDetectorUnit, LocalScopeEdgeOnlyReachesSameCu)
{
    // Under HRF, a local release on CU 0 orders a same-CU acquire but
    // not a cross-CU one; the cross-CU pair is a *scope* race since
    // the shadow all-global clocks do order it.
    RaceDetector det(ProtocolConfig::gh());
    unsigned prod = det.tbStarted(0, 0, 0);
    unsigned same = det.tbStarted(0, 1, 0);
    unsigned cross = det.tbStarted(0, 2, 1);

    det.dataWrite(prod, 0x100, 10);
    det.syncPerformed(releaseOp(0x200, prod, Scope::Local), 20);
    det.syncPerformed(acquireOp(0x200, same, Scope::Local), 30);
    det.dataRead(same, 0x100, 40);

    RaceReport clean = det.finalize("unit-local-samecu", "GH");
    EXPECT_EQ(clean.racesDetected, 0u);

    RaceDetector det2(ProtocolConfig::gh());
    prod = det2.tbStarted(0, 0, 0);
    cross = det2.tbStarted(0, 1, 1);
    det2.dataWrite(prod, 0x100, 10);
    det2.syncPerformed(releaseOp(0x200, prod, Scope::Local), 20);
    det2.syncPerformed(acquireOp(0x200, cross, Scope::Global), 30);
    det2.dataRead(cross, 0x100, 40);

    RaceReport report = det2.finalize("unit-local-crosscu", "GH");
    ASSERT_EQ(report.racesDetected, 1u);
    EXPECT_EQ(report.races.front().kind, RaceKind::Scope);
}

TEST(RaceDetectorUnit, ScopeAnnotationsIgnoredUnderDrf)
{
    // The same mis-scoped stream is race-free under GD: DRF promotes
    // every sync to global scope (ProtocolConfig::effectiveScope).
    RaceDetector det(ProtocolConfig::gd());
    unsigned prod = det.tbStarted(0, 0, 0);
    unsigned cross = det.tbStarted(0, 1, 1);

    det.dataWrite(prod, 0x100, 10);
    det.syncPerformed(releaseOp(0x200, prod, Scope::Local), 20);
    det.syncPerformed(acquireOp(0x200, cross, Scope::Global), 30);
    det.dataRead(cross, 0x100, 40);

    RaceReport report = det.finalize("unit-drf-scopes", "GD");
    EXPECT_EQ(report.racesDetected, 0u);
}

TEST(RaceDetectorUnit, HrfIndirectTransitivityThroughRelay)
{
    // data -> local release -> same-CU relay -> global release ->
    // cross-CU acquire: the HRF-Indirect chain orders the far read.
    RaceDetector det(ProtocolConfig::dh());
    unsigned prod = det.tbStarted(0, 0, 0);
    unsigned relay = det.tbStarted(0, 1, 0);
    unsigned obs = det.tbStarted(0, 2, 1);

    det.dataWrite(prod, 0x100, 10);
    det.syncPerformed(releaseOp(0x200, prod, Scope::Local), 20);
    det.syncPerformed(acquireOp(0x200, relay, Scope::Local), 30);
    det.syncPerformed(releaseOp(0x300, relay, Scope::Global), 40);
    det.syncPerformed(acquireOp(0x300, obs, Scope::Global), 50);
    det.dataRead(obs, 0x100, 60);

    RaceReport report = det.finalize("unit-transitive", "DH");
    EXPECT_EQ(report.racesDetected, 0u);
}

TEST(RaceDetectorUnit, KernelBoundaryOrdersAcrossKernels)
{
    RaceDetector det(ProtocolConfig::gd());
    unsigned k0 = det.tbStarted(0, 0, 0);
    det.dataWrite(k0, 0x100, 10);
    det.tbFinished(k0);

    unsigned k1 = det.tbStarted(1, 0, 1);
    det.dataRead(k1, 0x100, 1000);

    RaceReport report = det.finalize("unit-kernel", "GD");
    EXPECT_EQ(report.racesDetected, 0u);
}

TEST(RaceDetectorUnit, WriteWriteConflictRaces)
{
    RaceDetector det(ProtocolConfig::dd());
    unsigned a = det.tbStarted(0, 0, 0);
    unsigned b = det.tbStarted(0, 1, 1);
    det.dataWrite(a, 0x100, 10);
    det.dataWrite(b, 0x100, 20);

    RaceReport report = det.finalize("unit-ww", "DD");
    EXPECT_EQ(report.racesDetected, 1u);
}

TEST(RaceDetectorUnit, DuplicatePairsReportedOnce)
{
    RaceDetector det(ProtocolConfig::gd());
    unsigned a = det.tbStarted(0, 0, 0);
    unsigned b = det.tbStarted(0, 1, 1);
    det.dataWrite(a, 0x100, 10);
    for (Tick t = 20; t < 30; ++t)
        det.dataRead(b, 0x100, t);

    RaceReport report = det.finalize("unit-dedup", "GD");
    EXPECT_EQ(report.racesDetected, 1u);
}

TEST(RaceDetectorUnit, SuppressionsExcludeRangesFromFailures)
{
    RaceDetector det(ProtocolConfig::gd());
    det.setSuppressions({{0x100, 8, "intentionally racy scratch"}});
    unsigned a = det.tbStarted(0, 0, 0);
    unsigned b = det.tbStarted(0, 1, 1);
    det.dataWrite(a, 0x100, 10);
    det.dataRead(b, 0x100, 20);
    det.dataWrite(a, 0x180, 30);
    det.dataRead(b, 0x180, 40);

    RaceReport report = det.finalize("unit-suppress", "GD");
    EXPECT_EQ(report.racesDetected, 2u);
    EXPECT_EQ(report.racesSuppressed, 1u);
    EXPECT_EQ(report.failureCount(), 1u);
    EXPECT_TRUE(report.races.front().suppressed);
    EXPECT_EQ(report.races.front().suppressReason,
              "intentionally racy scratch");
    EXPECT_FALSE(report.races.back().suppressed);
}

TEST(RaceDetectorUnit, RecordsSortedByTickThenAddress)
{
    RaceDetector det(ProtocolConfig::gd());
    unsigned a = det.tbStarted(0, 0, 0);
    unsigned b = det.tbStarted(0, 1, 1);
    det.dataWrite(a, 0x300, 10);
    det.dataWrite(a, 0x100, 11);
    det.dataWrite(a, 0x200, 12);
    det.dataRead(b, 0x300, 50);
    det.dataRead(b, 0x200, 50);
    det.dataRead(b, 0x100, 60);

    RaceReport report = det.finalize("unit-sort", "GD");
    ASSERT_EQ(report.races.size(), 3u);
    EXPECT_EQ(report.races[0].addr, 0x200u);
    EXPECT_EQ(report.races[1].addr, 0x300u);
    EXPECT_EQ(report.races[2].addr, 0x100u);
}

TEST(RaceDetectorUnit, JsonEmissionWrites)
{
    RaceDetector det(ProtocolConfig::gh());
    unsigned a = det.tbStarted(0, 0, 0);
    unsigned b = det.tbStarted(0, 1, 1);
    det.dataWrite(a, 0x100, 10);
    det.dataRead(b, 0x100, 20);
    RaceReport report = det.finalize("unit-json", "GH");

    std::string path = ::testing::TempDir() + "race_unit.json";
    ASSERT_TRUE(writeRaceJson(report, path));
    std::ifstream in(path);
    std::stringstream buf;
    buf << in.rdbuf();
    std::string text = buf.str();
    EXPECT_NE(text.find("\"schema_version\""), std::string::npos);
    EXPECT_NE(text.find("\"unit-json\""), std::string::npos);
    EXPECT_NE(text.find("\"races_detected\":1"), std::string::npos);
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// Litmus workloads run through the full System
// ---------------------------------------------------------------------

/**
 * Message passing with a configurable fence: TB0 (CU 0) writes data
 * and releases a flag at @p rel scope; TB1 (CU 1) waits long enough
 * for the release to have performed, acquires the flag at @p acq
 * scope, and reads the data. With the fence elided there is no HB
 * path at all; with a local-scope release and a cross-CU reader the
 * path exists only under the all-global shadow — a scope race.
 *
 * The consumer deliberately delays instead of spinning: a mis-scoped
 * flag is not guaranteed to ever become visible cross-CU, and the
 * detector's verdict must not depend on the racy value read.
 */
class MpLitmus : public Workload
{
  public:
    MpLitmus(bool fenced, Scope rel, Scope acq)
        : _fenced(fenced), _rel(rel), _acq(acq)
    {}

    std::string name() const override { return "litmus-race-mp"; }

    void
    init(WorkloadEnv &env) override
    {
        _data = env.alloc(kLineBytes);
        _flag = env.alloc(kLineBytes);
    }

    KernelInfo kernelInfo(unsigned) const override { return {2}; }

    SimTask
    tbMain(TbContext &ctx) override
    {
        if (ctx.tbGlobal() == 0) {
            co_await ctx.store(_data, 41);
            if (_fenced)
                co_await ctx.atomic(ctx.atomicStore(_flag, 1, _rel));
            co_return;
        }
        co_await ctx.wait(50000);
        if (_fenced)
            co_await ctx.atomic(ctx.atomicLoad(_flag, _acq));
        co_await ctx.load(_data);
    }

  private:
    bool _fenced;
    Scope _rel, _acq;
    Addr _data = 0, _flag = 0;
};

/** MpLitmus without the fence, with the race suppressed. */
class SuppressedMpLitmus : public MpLitmus
{
  public:
    SuppressedMpLitmus() : MpLitmus(false, Scope::Global, Scope::Global)
    {}

    void
    init(WorkloadEnv &env) override
    {
        _base = env.alloc(kLineBytes);
        MpLitmus::init(env);
    }

    std::vector<RaceSuppression>
    raceSuppressions() const override
    {
        // The racy word is the first one MpLitmus::init allocates,
        // one line above our marker allocation.
        return {{_base + kLineBytes, kLineBytes,
                 "deliberately racy litmus data"}};
    }

  private:
    Addr _base = 0;
};

RunResult
runRaceChecked(Workload &workload, const ProtocolConfig &proto)
{
    SystemConfig config;
    config.protocol = proto;
    config.checking.raceCheckEnabled = true;
    System system(config);
    return system.run(workload);
}

class RaceLitmusTest : public ::testing::TestWithParam<ProtocolConfig>
{
};

TEST_P(RaceLitmusTest, FencedMessagePassingIsRaceFree)
{
    MpLitmus workload(true, Scope::Global, Scope::Global);
    RunResult result = runRaceChecked(workload, GetParam());
    EXPECT_TRUE(result.ok());
    ASSERT_TRUE(result.races.enabled);
    EXPECT_EQ(result.races.racesDetected, 0u);
    EXPECT_GT(result.races.hbEdges, 0u);
}

TEST_P(RaceLitmusTest, UnfencedMessagePassingRaces)
{
    MpLitmus workload(false, Scope::Global, Scope::Global);
    RunResult result = runRaceChecked(workload, GetParam());
    EXPECT_FALSE(result.ok());
    ASSERT_TRUE(result.races.enabled);
    ASSERT_EQ(result.races.racesDetected, 1u);
    EXPECT_EQ(result.races.races.front().kind, RaceKind::Data);
    EXPECT_EQ(result.races.races.front().second.kind,
              AccessKind::Load);
}

TEST_P(RaceLitmusTest, SuppressedRaceDoesNotFailTheRun)
{
    SuppressedMpLitmus workload;
    RunResult result = runRaceChecked(workload, GetParam());
    EXPECT_TRUE(result.ok());
    ASSERT_TRUE(result.races.enabled);
    EXPECT_EQ(result.races.racesDetected, 1u);
    EXPECT_EQ(result.races.racesSuppressed, 1u);
    EXPECT_EQ(result.races.failureCount(), 0u);
}

INSTANTIATE_TEST_SUITE_P(AllConfigs, RaceLitmusTest,
                         ::testing::ValuesIn(test::allConfigs()),
                         test::ConfigName{});

TEST(RaceScopeLitmus, MisScopedReleaseFlaggedUnderHrf)
{
    for (const ProtocolConfig &proto :
         {ProtocolConfig::gh(), ProtocolConfig::dh()}) {
        MpLitmus workload(true, Scope::Local, Scope::Global);
        RunResult result = runRaceChecked(workload, proto);
        EXPECT_FALSE(result.ok()) << proto.shortName();
        ASSERT_EQ(result.races.racesDetected, 1u)
            << proto.shortName();
        EXPECT_EQ(result.races.races.front().kind, RaceKind::Scope)
            << proto.shortName();
    }
}

TEST(RaceScopeLitmus, MisScopedReleaseCleanUnderDrf)
{
    // The identical workload is DRF-correct when scopes are ignored:
    // GD/DD/DD+RO promote the local release to global.
    for (const ProtocolConfig &proto :
         {ProtocolConfig::gd(), ProtocolConfig::dd(),
          ProtocolConfig::ddro()}) {
        MpLitmus workload(true, Scope::Local, Scope::Global);
        RunResult result = runRaceChecked(workload, proto);
        EXPECT_TRUE(result.ok()) << proto.shortName();
        EXPECT_EQ(result.races.racesDetected, 0u)
            << proto.shortName();
    }
}

// ---------------------------------------------------------------------
// Bitwise identity and determinism
// ---------------------------------------------------------------------

TEST(RaceCheckIdentity, DisabledDetectorChangesNothing)
{
    for (const ProtocolConfig &proto : test::allConfigs()) {
        auto reference = makeScaled("FAM_G", 10);
        SystemConfig config;
        config.protocol = proto;
        System base_system(config);
        RunResult base = base_system.run(*reference);

        auto checked_wl = makeScaled("FAM_G", 10);
        config.checking.raceCheckEnabled = true;
        System checked_system(config);
        RunResult checked = checked_system.run(*checked_wl);

        EXPECT_TRUE(checked.ok()) << proto.shortName();
        EXPECT_EQ(base.cycles, checked.cycles) << proto.shortName();
        EXPECT_EQ(base.energyTotal, checked.energyTotal)
            << proto.shortName();
        EXPECT_EQ(base.trafficTotal, checked.trafficTotal)
            << proto.shortName();
        EXPECT_EQ(base.energy, checked.energy) << proto.shortName();
        EXPECT_EQ(base.traffic, checked.traffic) << proto.shortName();
    }
}

TEST(RaceCheckIdentity, ReportsAreDeterministic)
{
    // Two fresh Systems over the same racy workload must render the
    // same report — the property that makes --race-check --jobs=N
    // reports identical to serial runs.
    auto render = [] {
        MpLitmus workload(true, Scope::Local, Scope::Global);
        RunResult result =
            runRaceChecked(workload, ProtocolConfig::gh());
        return renderRaceReport(result.races);
    };
    std::string first = render();
    std::string second = render();
    EXPECT_FALSE(first.empty());
    EXPECT_EQ(first, second);
}

} // namespace
