#!/usr/bin/env python3
"""Unit tests for the stdlib-only JSON report validators in tools/.

Each validator (validate_trace, validate_races, validate_explore,
validate_axiom) is exercised on canonical good fixture documents and
on targeted mutations of them: every mutation breaks exactly one
schema or cross-field rule, and the test asserts both the failing
exit code and that the diagnostic names the broken rule. The good
fixtures are built in code so the tests document the minimal valid
shape of each report.

Run directly (python3 tests/tools/test_validators.py) or via ctest /
CI as the tools_validators test.
"""

import contextlib
import copy
import io
import json
import os
import sys
import tempfile
import unittest

TOOLS_DIR = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "..", "tools")
sys.path.insert(0, TOOLS_DIR)

import validate_axiom    # noqa: E402
import validate_explore  # noqa: E402
import validate_races    # noqa: E402
import validate_trace    # noqa: E402


GOOD_TRACE = {
    "displayTimeUnit": "ns",
    "otherData": {
        "tool": "nosync-sim",
        "time_unit": "cycle",
        "events_recorded": 2,
        "events_dropped": 0,
        "txns_dropped": 0,
    },
    "traceEvents": [
        {"name": "tb0 load", "ph": "X", "ts": 5, "dur": 12,
         "pid": 0, "tid": 0, "args": {"addr": 64, "txn": 1}},
        {"name": "l2 perform", "ph": "i", "ts": 7, "s": "p",
         "pid": 0, "tid": 0, "args": {"addr": 64, "txn": 1}},
        {"name": "l1 fill", "ph": "i", "ts": 9, "s": "p",
         "pid": 0, "tid": 0, "args": {"addr": 64, "txn": 1}},
    ],
}

GOOD_RACES = {
    "schema_version": 1,
    "workload": "misscoped",
    "config": "GH",
    "summary": {
        "data_accesses": 10,
        "sync_performs": 2,
        "hb_edges": 1,
        "words_tracked": 2,
        "races_detected": 1,
        "races_suppressed": 1,
        "records_dropped": 0,
        "truncated": False,
    },
    "races": [
        {
            "kind": "scope",
            "addr": "0x1000",
            "suppressed": True,
            "suppress_reason": "expected by litmus oracle",
            "first": {"kernel": 0, "tb": 0, "cu": 0, "tick": 10,
                      "access": "store", "sync": False},
            "second": {"kernel": 0, "tb": 1, "cu": 1, "tick": 90,
                       "access": "load", "sync": False},
        },
    ],
}

GOOD_EXPLORE = {
    "schema_version": 1,
    "harness": "litmus_explore",
    "budget": {
        "max_schedules": 4096,
        "max_cycles_per_schedule": 2000000,
        "deliver_depth": 1,
        "dpor": True,
    },
    "summary": {
        "cells": 1,
        "passed": 1,
        "failed": 0,
        "budget_exhausted": 0,
        "schedules_explored": 3,
        "all_pass": True,
    },
    "cells": [
        {
            "program": "mp",
            "config": "GD",
            "verdict": "pass",
            "expect_scope_race": False,
            "schedules_explored": 3,
            "schedules_pruned": 1,
            "frontier_remaining": 0,
            "choice_points": 6,
            "max_depth": 2,
            "clean_schedules": 3,
            "racy_schedules": 0,
            "outcomes": [
                {"outcome": "f=0", "count": 2, "allowed": True},
                {"outcome": "f=1 d=41", "count": 1, "allowed": True},
            ],
            "violations": [],
            "violations_total": 0,
        },
    ],
}

GOOD_AXIOM = {
    "schema_version": 1,
    "harness": "litmus_axiom",
    "summary": {
        "cells": 2,
        "race_free": 1,
        "scope_race": 1,
        "data_race": 0,
        "cross_checked": 2,
        "cross_check_failed": 0,
        "all_ok": True,
    },
    "cells": [
        {
            "program": "mp",
            "config": "GD",
            "model": "sc-drf",
            "verdict": "race-free",
            "oracle_ok": True,
            "interleavings": 3,
            "executions": 3,
            "rf_pruned": 2,
            "racy_executions": 0,
            "data_race_pairs": 0,
            "scope_race_pairs": 0,
            "outcomes": [
                {"outcome": "f=0", "allowed": True},
                {"outcome": "f=1 d=41", "allowed": True},
            ],
            "races": [],
            "cross_check": {"checked": True, "ok": True, "diffs": []},
        },
        {
            "program": "misscoped",
            "config": "GH",
            "model": "hrf-scoped",
            "verdict": "scope-race",
            "oracle_ok": True,
            "interleavings": 1,
            "executions": 1,
            "rf_pruned": 0,
            "racy_executions": 1,
            "data_race_pairs": 0,
            "scope_race_pairs": 1,
            "outcomes": [{"outcome": "f=0 d=0", "allowed": True}],
            "races": ["scope race on data: t0 write vs t1 load"],
            "cross_check": {"checked": True, "ok": True, "diffs": []},
        },
    ],
}


class ValidatorCase(unittest.TestCase):
    """Shared machinery: write a fixture, run a validator's main()."""

    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.addCleanup(self._tmp.cleanup)

    def write(self, doc, name="report.json"):
        path = os.path.join(self._tmp.name, name)
        with open(path, "w", encoding="utf-8") as f:
            json.dump(doc, f)
        return path

    def run_validator(self, module, doc, flags=()):
        path = self.write(doc)
        out = io.StringIO()
        with contextlib.redirect_stdout(out):
            code = module.main(["prog", *flags, path])
        return code, out.getvalue()

    def assert_ok(self, module, doc, flags=()):
        code, out = self.run_validator(module, doc, flags)
        self.assertEqual(code, 0, f"expected OK, got:\n{out}")

    def assert_fail(self, module, doc, needle, flags=()):
        code, out = self.run_validator(module, doc, flags)
        self.assertEqual(code, 1, f"expected FAIL, got:\n{out}")
        self.assertIn(needle, out)


class TestValidateTrace(ValidatorCase):
    def test_good(self):
        self.assert_ok(validate_trace, GOOD_TRACE)

    def test_rejects_malformed_json(self):
        path = os.path.join(self._tmp.name, "bad.json")
        with open(path, "w", encoding="utf-8") as f:
            f.write("{not json")
        out = io.StringIO()
        with contextlib.redirect_stdout(out):
            code = validate_trace.main(["prog", path])
        self.assertEqual(code, 1)

    def test_rejects_missing_required_key(self):
        doc = copy.deepcopy(GOOD_TRACE)
        del doc["otherData"]["tool"]
        self.assert_fail(validate_trace, doc, "tool")

    def test_rejects_duration_without_dur(self):
        doc = copy.deepcopy(GOOD_TRACE)
        del doc["traceEvents"][0]["dur"]
        self.assert_fail(validate_trace, doc, "dur")

    def test_rejects_instant_without_scope(self):
        doc = copy.deepcopy(GOOD_TRACE)
        del doc["traceEvents"][1]["s"]
        self.assert_fail(validate_trace, doc, "missing 's'")

    def test_rejects_unsorted_instants(self):
        doc = copy.deepcopy(GOOD_TRACE)
        doc["traceEvents"][1]["ts"] = 99
        self.assert_fail(validate_trace, doc, "out of order")

    def test_rejects_event_count_mismatch(self):
        doc = copy.deepcopy(GOOD_TRACE)
        doc["otherData"]["events_recorded"] = 7
        self.assert_fail(validate_trace, doc, "retained")


class TestValidateRaces(ValidatorCase):
    def test_good(self):
        self.assert_ok(validate_races, GOOD_RACES)

    def test_good_passes_require_clean_when_suppressed(self):
        self.assert_ok(validate_races, GOOD_RACES,
                       flags=("--require-clean",))

    def test_rejects_bad_config_enum(self):
        doc = copy.deepcopy(GOOD_RACES)
        doc["config"] = "XX"
        self.assert_fail(validate_races, doc, "config")

    def test_rejects_detected_count_mismatch(self):
        doc = copy.deepcopy(GOOD_RACES)
        doc["summary"]["races_detected"] = 5
        self.assert_fail(validate_races, doc, "races_detected")

    def test_rejects_suppressed_without_reason(self):
        doc = copy.deepcopy(GOOD_RACES)
        del doc["races"][0]["suppress_reason"]
        self.assert_fail(validate_races, doc, "suppressed without a reason")

    def test_rejects_truncated_flag_mismatch(self):
        doc = copy.deepcopy(GOOD_RACES)
        doc["summary"]["truncated"] = True
        self.assert_fail(validate_races, doc, "truncated")

    def test_require_clean_rejects_unsuppressed_race(self):
        doc = copy.deepcopy(GOOD_RACES)
        doc["races"][0]["suppressed"] = False
        del doc["races"][0]["suppress_reason"]
        doc["summary"]["races_suppressed"] = 0
        self.assert_fail(validate_races, doc, "--require-clean",
                         flags=("--require-clean",))


class TestValidateExplore(ValidatorCase):
    def test_good(self):
        self.assert_ok(validate_explore, GOOD_EXPLORE)

    def test_good_passes_require_pass(self):
        self.assert_ok(validate_explore, GOOD_EXPLORE,
                       flags=("--require-pass",))

    def test_rejects_unknown_program(self):
        doc = copy.deepcopy(GOOD_EXPLORE)
        doc["cells"][0]["program"] = "mp_typo"
        self.assert_fail(validate_explore, doc, "program")

    def test_accepts_sixth_config_and_mp_dev(self):
        doc = copy.deepcopy(GOOD_EXPLORE)
        doc["cells"][0]["program"] = "mp_dev"
        doc["cells"][0]["config"] = "DD+SE"
        self.assert_ok(validate_explore, doc)

    def test_rejects_fail_verdict_without_violations(self):
        doc = copy.deepcopy(GOOD_EXPLORE)
        doc["cells"][0]["verdict"] = "fail"
        doc["summary"]["passed"] = 0
        doc["summary"]["failed"] = 1
        doc["summary"]["all_pass"] = False
        self.assert_fail(validate_explore, doc, "no violations")

    def test_rejects_silent_coverage_gap(self):
        doc = copy.deepcopy(GOOD_EXPLORE)
        doc["cells"][0]["frontier_remaining"] = 4
        self.assert_fail(validate_explore, doc, "frontier")

    def test_rejects_outcome_counts_exceeding_explored(self):
        doc = copy.deepcopy(GOOD_EXPLORE)
        doc["cells"][0]["outcomes"][0]["count"] = 100
        self.assert_fail(validate_explore, doc, "outcome counts")

    def test_rejects_unsorted_outcomes(self):
        doc = copy.deepcopy(GOOD_EXPLORE)
        doc["cells"][0]["outcomes"].reverse()
        self.assert_fail(validate_explore, doc, "sorted")

    def test_rejects_summary_count_mismatch(self):
        doc = copy.deepcopy(GOOD_EXPLORE)
        doc["summary"]["schedules_explored"] = 99
        self.assert_fail(validate_explore, doc,
                         "schedules_explored")

    def test_require_pass_rejects_budget_exhausted(self):
        doc = copy.deepcopy(GOOD_EXPLORE)
        doc["cells"][0]["verdict"] = "budget-exhausted"
        doc["cells"][0]["frontier_remaining"] = 2
        doc["summary"]["passed"] = 0
        doc["summary"]["budget_exhausted"] = 1
        doc["summary"]["all_pass"] = False
        self.assert_fail(validate_explore, doc, "--require-pass",
                         flags=("--require-pass",))


class TestValidateAxiom(ValidatorCase):
    def test_good(self):
        self.assert_ok(validate_axiom, GOOD_AXIOM)

    def test_good_passes_require_clean(self):
        self.assert_ok(validate_axiom, GOOD_AXIOM,
                       flags=("--require-clean",))

    def test_rejects_unknown_model(self):
        doc = copy.deepcopy(GOOD_AXIOM)
        doc["cells"][0]["model"] = "tso"
        self.assert_fail(validate_axiom, doc, "model")

    def test_rejects_model_config_mismatch(self):
        doc = copy.deepcopy(GOOD_AXIOM)
        doc["cells"][1]["model"] = "sc-drf"
        self.assert_fail(validate_axiom, doc, "hrf-scoped")

    def test_rejects_race_free_verdict_with_pairs(self):
        doc = copy.deepcopy(GOOD_AXIOM)
        doc["cells"][1]["verdict"] = "race-free"
        doc["summary"]["race_free"] = 2
        doc["summary"]["scope_race"] = 0
        self.assert_fail(validate_axiom, doc, "race-free")

    def test_rejects_scope_race_verdict_with_data_pairs(self):
        doc = copy.deepcopy(GOOD_AXIOM)
        doc["cells"][1]["data_race_pairs"] = 1
        self.assert_fail(validate_axiom, doc, "scope-race")

    def test_rejects_racy_exceeding_executions(self):
        doc = copy.deepcopy(GOOD_AXIOM)
        doc["cells"][1]["racy_executions"] = 5
        self.assert_fail(validate_axiom, doc, "racy_executions")

    def test_rejects_unsorted_outcomes(self):
        doc = copy.deepcopy(GOOD_AXIOM)
        doc["cells"][0]["outcomes"].reverse()
        self.assert_fail(validate_axiom, doc, "sorted")

    def test_rejects_disallowed_outcome_with_clean_oracle(self):
        doc = copy.deepcopy(GOOD_AXIOM)
        doc["cells"][0]["outcomes"][0]["allowed"] = False
        self.assert_fail(validate_axiom, doc, "oracle_ok")

    def test_rejects_ok_cross_check_with_diffs(self):
        doc = copy.deepcopy(GOOD_AXIOM)
        doc["cells"][0]["cross_check"]["diffs"] = [
            "mp on GD: axiomatic outcome 'f=9' was never observed "
            "operationally"]
        self.assert_fail(validate_axiom, doc, "diff")

    def test_rejects_summary_verdict_mismatch(self):
        doc = copy.deepcopy(GOOD_AXIOM)
        doc["summary"]["scope_race"] = 0
        doc["summary"]["data_race"] = 1
        self.assert_fail(validate_axiom, doc, "scope_race")

    def test_rejects_all_ok_contradicted_by_cells(self):
        doc = copy.deepcopy(GOOD_AXIOM)
        doc["cells"][0]["cross_check"]["ok"] = False
        doc["cells"][0]["cross_check"]["diffs"] = ["mp on GD: diff"]
        self.assert_fail(validate_axiom, doc, "all_ok")

    def test_require_clean_rejects_unchecked_cells(self):
        doc = copy.deepcopy(GOOD_AXIOM)
        for cell in doc["cells"]:
            cell["cross_check"] = {"checked": False, "ok": False,
                                   "diffs": []}
        doc["summary"]["cross_checked"] = 0
        self.assert_ok(validate_axiom, doc)
        self.assert_fail(validate_axiom, doc, "cross-checked",
                         flags=("--require-clean",))


if __name__ == "__main__":
    unittest.main(verbosity=2)
