/**
 * @file
 * Protocol-level tests for DeNovo coherence: registration, ownership
 * transfers, remote-L1 reads, the DeNovoSync0 distributed queue,
 * selective invalidation, writeback races, and registry recall.
 */

#include <gtest/gtest.h>

#include "test_util.hh"

using namespace nosync;
using namespace nosync::test;

namespace
{

SystemConfig
ddConfig()
{
    SystemConfig config;
    config.protocol = ProtocolConfig::dd();
    return config;
}

SystemConfig
ddroConfig()
{
    SystemConfig config;
    config.protocol = ProtocolConfig::ddro();
    return config;
}

SystemConfig
dhConfig()
{
    SystemConfig config;
    config.protocol = ProtocolConfig::dh();
    return config;
}

constexpr Addr kData = 0x10000;
constexpr Addr kLock = 0x20000;

unsigned
bankOf(Addr addr)
{
    return (lineAlign(addr) / kLineBytes) % 16;
}

} // namespace

TEST(DenovoProtocol, LoadMissReturnsMemoryValue)
{
    System sys(ddConfig());
    sys.writeInit(kData, 4321);
    EXPECT_EQ(doLoad(sys, 0, kData), 4321u);
}

TEST(DenovoProtocol, DrainRegistersWrittenWords)
{
    System sys(ddConfig());
    doStore(sys, 0, kData, 5);
    EXPECT_FALSE(as<DenovoL1Cache>(sys.l1(0))->ownsWord(kData));
    doDrain(sys, 0);
    EXPECT_TRUE(as<DenovoL1Cache>(sys.l1(0))->ownsWord(kData));
    EXPECT_EQ(as<DenovoL2Bank>(sys.l2Bank(bankOf(kData)))->ownerOf(kData), 0);
}

TEST(DenovoProtocol, RegisteredStoreSkipsStoreBuffer)
{
    System sys(ddConfig());
    doStore(sys, 0, kData, 5);
    doDrain(sys, 0);
    double buffered = sys.stats().find("l1.0.store_buffered")->value();
    doStore(sys, 0, kData, 6);
    // The second store completed in the L1 without a buffer slot.
    EXPECT_EQ(sys.stats().find("l1.0.store_buffered")->value(), buffered);
    EXPECT_GE(sys.stats().find("l1.0.store_hits")->value(), 1.0);
    EXPECT_EQ(doLoad(sys, 0, kData), 6u);
}

TEST(DenovoProtocol, RemoteL1ReadForwarded)
{
    System sys(ddConfig());
    doStore(sys, 0, kData, 88);
    doDrain(sys, 0);
    // CU 1's read is forwarded to CU 0, which keeps ownership.
    EXPECT_EQ(doLoad(sys, 1, kData), 88u);
    EXPECT_TRUE(as<DenovoL1Cache>(sys.l1(0))->ownsWord(kData));
    EXPECT_FALSE(as<DenovoL1Cache>(sys.l1(1))->ownsWord(kData));
    EXPECT_GE(sys.stats().find("l1.0.remote_reads_served")->value(), 1.0);
}

TEST(DenovoProtocol, OwnershipMovesWithRemoteWrite)
{
    System sys(ddConfig());
    doStore(sys, 0, kData, 1);
    doDrain(sys, 0);
    doStore(sys, 1, kData, 2);
    doDrain(sys, 1);
    EXPECT_TRUE(as<DenovoL1Cache>(sys.l1(1))->ownsWord(kData));
    EXPECT_FALSE(as<DenovoL1Cache>(sys.l1(0))->ownsWord(kData));
    EXPECT_EQ(sys.debugRead(kData), 2u);
    EXPECT_GE(sys.stats().find("l1.0.ownership_transfers")->value(), 1.0);
}

TEST(DenovoProtocol, SyncRegistersAndHitsLocally)
{
    System sys(ddConfig());
    EXPECT_EQ(doSync(sys, 0, makeSync(AtomicFunc::FetchAdd, kLock, 1)),
              0u);
    EXPECT_TRUE(as<DenovoL1Cache>(sys.l1(0))->ownsWord(kLock));
    double hits_before = sys.stats().find("l1.0.sync_hits")->value();
    EXPECT_EQ(doSync(sys, 0, makeSync(AtomicFunc::FetchAdd, kLock, 1)),
              1u);
    EXPECT_GT(sys.stats().find("l1.0.sync_hits")->value(), hits_before);
}

TEST(DenovoProtocol, SyncOwnershipChainsAcrossCus)
{
    System sys(ddConfig());
    for (std::uint32_t i = 0; i < 30; ++i) {
        std::uint32_t old_val = doSync(
            sys, i % 15, makeSync(AtomicFunc::FetchAdd, kLock, 1));
        EXPECT_EQ(old_val, i);
    }
    EXPECT_EQ(sys.debugRead(kLock), 30u);
}

TEST(DenovoProtocol, AcquireKeepsRegisteredInvalidatesValid)
{
    System sys(ddConfig());
    sys.writeInit(kData + 4, 9);
    doStore(sys, 0, kData, 1); // word 0: will be registered
    doDrain(sys, 0);
    doLoad(sys, 0, kData + 4); // word 1: Valid only
    EXPECT_EQ(as<DenovoL1Cache>(sys.l1(0))->wordState(kData),
              WordState::Registered);
    EXPECT_EQ(as<DenovoL1Cache>(sys.l1(0))->wordState(kData + 4),
              WordState::Valid);

    doSync(sys, 0,
           makeSync(AtomicFunc::Load, kLock, 0, 0, Scope::Global,
                    SyncSemantics::Acquire));
    EXPECT_EQ(as<DenovoL1Cache>(sys.l1(0))->wordState(kData),
              WordState::Registered);
    EXPECT_EQ(as<DenovoL1Cache>(sys.l1(0))->wordState(kData + 4),
              WordState::Invalid);
}

TEST(DenovoProtocol, ReadOnlyRegionSurvivesAcquire)
{
    System sys(ddroConfig());
    sys.declareReadOnly(kData, kLineBytes);
    sys.writeInit(kData, 17);
    doLoad(sys, 0, kData);
    doSync(sys, 0,
           makeSync(AtomicFunc::Load, kLock, 0, 0, Scope::Global,
                    SyncSemantics::Acquire));
    EXPECT_EQ(as<DenovoL1Cache>(sys.l1(0))->wordState(kData), WordState::Valid);
    double misses = sys.stats().find("l1.0.load_misses")->value();
    EXPECT_EQ(doLoad(sys, 0, kData), 17u);
    EXPECT_EQ(sys.stats().find("l1.0.load_misses")->value(), misses);
}

TEST(DenovoProtocol, PlainDdRefetchesReadOnlyAfterAcquire)
{
    System sys(ddConfig());
    sys.declareReadOnly(kData, kLineBytes); // ignored without +RO
    sys.writeInit(kData, 17);
    doLoad(sys, 0, kData);
    doSync(sys, 0,
           makeSync(AtomicFunc::Load, kLock, 0, 0, Scope::Global,
                    SyncSemantics::Acquire));
    double misses = sys.stats().find("l1.0.load_misses")->value();
    EXPECT_EQ(doLoad(sys, 0, kData), 17u);
    EXPECT_GT(sys.stats().find("l1.0.load_misses")->value(), misses);
}

TEST(DenovoProtocol, MessagePassingBetweenCus)
{
    System sys(ddConfig());
    doStore(sys, 0, kData, 777);
    doSync(sys, 0,
           makeSync(AtomicFunc::Store, kLock, 1, 0, Scope::Global,
                    SyncSemantics::Release));
    std::uint32_t flag = doSync(
        sys, 1, makeSync(AtomicFunc::Load, kLock, 0, 0, Scope::Global,
                         SyncSemantics::Acquire));
    EXPECT_EQ(flag, 1u);
    EXPECT_EQ(doLoad(sys, 1, kData), 777u);
}

TEST(DenovoProtocol, WrittenDataReusedAcrossAcquires)
{
    System sys(ddConfig());
    doStore(sys, 0, kData, 5);
    doDrain(sys, 0);
    doSync(sys, 0,
           makeSync(AtomicFunc::Load, kLock, 0, 0, Scope::Global,
                    SyncSemantics::Acquire));
    double misses = sys.stats().find("l1.0.load_misses")->value();
    // Registered data survives the acquire: no miss.
    EXPECT_EQ(doLoad(sys, 0, kData), 5u);
    EXPECT_EQ(sys.stats().find("l1.0.load_misses")->value(), misses);
}

TEST(DenovoProtocol, EvictionWritesRegisteredWordsBack)
{
    SystemConfig config = ddConfig();
    config.geometry.l1Bytes = 256; // 2 sets x 2 ways
    config.geometry.l1Assoc = 2;
    System sys(config);
    doStore(sys, 0, kData, 64);
    doDrain(sys, 0);
    EXPECT_TRUE(as<DenovoL1Cache>(sys.l1(0))->ownsWord(kData));
    // March conflicting lines through the set.
    for (unsigned i = 1; i <= 8; ++i)
        doLoad(sys, 0, kData + i * 0x100);
    drainEvents(sys);
    // Ownership returned to the registry with the data.
    EXPECT_FALSE(as<DenovoL1Cache>(sys.l1(0))->ownsWord(kData));
    EXPECT_EQ(sys.debugRead(kData), 64u);
    // A remote reader sees the value from the L2.
    EXPECT_EQ(doLoad(sys, 1, kData), 64u);
}

TEST(DenovoProtocol, RegistryRecallOnL2Eviction)
{
    SystemConfig config = ddConfig();
    config.geometry.l2BankBytes = 1024; // 1 set x 16 ways per bank
    config.geometry.l2Assoc = 16;
    System sys(config);

    // Register one word in each of 16 lines mapping to bank 0 (every
    // 16th line with 16 banks), then touch a 17th to force a recall.
    Addr base = 0x40000;
    Addr stride = 16 * kLineBytes; // same bank, consecutive sets/ways
    for (unsigned i = 0; i < 16; ++i) {
        doStore(sys, i % 4, base + i * stride, 100 + i);
        doDrain(sys, i % 4);
    }
    EXPECT_EQ(doLoad(sys, 5, base + 16 * stride), 0u);
    drainEvents(sys);
    EXPECT_GE(sys.stats().find("l2b0.recalls")->value(), 1.0);
    // Every registered value survives whatever was recalled.
    for (unsigned i = 0; i < 16; ++i)
        EXPECT_EQ(sys.debugRead(base + i * stride), 100 + i);
}

TEST(DenovoProtocol, DhLocalSyncDelaysOwnership)
{
    System sys(dhConfig());
    std::uint32_t old_val = doSync(
        sys, 0, makeSync(AtomicFunc::FetchAdd, kLock, 1, 0,
                         Scope::Local));
    EXPECT_EQ(old_val, 0u);
    // Lazily owned: not registered yet.
    EXPECT_FALSE(as<DenovoL1Cache>(sys.l1(0))->ownsWord(kLock));
    EXPECT_EQ(as<DenovoL2Bank>(sys.l2Bank(bankOf(kLock)))->ownerOf(kLock), kNoNode);
    // A second local sync sees the first (same L1).
    EXPECT_EQ(doSync(sys, 0,
                     makeSync(AtomicFunc::FetchAdd, kLock, 1, 0,
                              Scope::Local)),
              1u);
    // A global release registers the lazily-owned word.
    doDrain(sys, 0);
    EXPECT_TRUE(as<DenovoL1Cache>(sys.l1(0))->ownsWord(kLock));
    EXPECT_EQ(sys.debugRead(kLock), 2u);
}

TEST(DenovoProtocol, DhLocalReleaseSkipsDrain)
{
    System sys(dhConfig());
    doStore(sys, 0, kData, 9);
    bool done = false;
    sys.l1(0).drainWrites(Scope::Local, [&] { done = true; });
    while (!done && sys.eventQueue().step()) {
    }
    ASSERT_TRUE(done);
    // Still unregistered: local releases delay obtaining ownership.
    EXPECT_FALSE(as<DenovoL1Cache>(sys.l1(0))->ownsWord(kData));
}

TEST(DenovoProtocol, ConcurrentAtomicsFromAllCusSumCorrectly)
{
    System sys(ddConfig());
    // Fire 15 concurrent fetch-adds (one per CU) without waiting in
    // between: exercises the distributed registration queue.
    unsigned done = 0;
    for (unsigned cu = 0; cu < 15; ++cu) {
        sys.l1(cu).sync(makeSync(AtomicFunc::FetchAdd, kLock, 1),
                        [&](std::uint32_t) { ++done; });
    }
    while (done < 15 && sys.eventQueue().step()) {
    }
    EXPECT_EQ(done, 15u);
    EXPECT_EQ(sys.debugRead(kLock), 15u);
}

TEST(DenovoProtocol, ConcurrentMixedReadersAndWriter)
{
    System sys(ddConfig());
    sys.writeInit(kData, 5);
    // CU 0 owns the word.
    doStore(sys, 0, kData, 6);
    doDrain(sys, 0);
    // Concurrent remote reads and one remote write.
    unsigned done = 0;
    std::vector<std::uint32_t> read_values(4, 0);
    for (unsigned i = 0; i < 4; ++i) {
        sys.l1(1 + i).load(kData, [&, i](std::uint32_t v) {
            read_values[i] = v;
            ++done;
        });
    }
    sys.l1(7).store(kData, 9, [&] { ++done; });
    bool drained = false;
    sys.l1(7).drainWrites(Scope::Global, [&] { drained = true; });
    while ((done < 5 || !drained) && sys.eventQueue().step()) {
    }
    EXPECT_EQ(done, 5u);
    // Readers saw either the old or the new value (racy but must be
    // one of the two legal values).
    for (std::uint32_t v : read_values)
        EXPECT_TRUE(v == 6u || v == 9u) << "got " << v;
    EXPECT_EQ(sys.debugRead(kData), 9u);
}

TEST(DenovoProtocol, PartialLineOwnershipSplitsAcrossCus)
{
    System sys(ddConfig());
    // Different CUs own different words of the same line.
    doStore(sys, 0, kData, 10);
    doDrain(sys, 0);
    doStore(sys, 1, kData + 4, 11);
    doDrain(sys, 1);
    doStore(sys, 2, kData + 8, 12);
    doDrain(sys, 2);
    EXPECT_TRUE(as<DenovoL1Cache>(sys.l1(0))->ownsWord(kData));
    EXPECT_TRUE(as<DenovoL1Cache>(sys.l1(1))->ownsWord(kData + 4));
    EXPECT_TRUE(as<DenovoL1Cache>(sys.l1(2))->ownsWord(kData + 8));
    // A fourth CU reads all three: forwards from three owners.
    EXPECT_EQ(doLoad(sys, 3, kData), 10u);
    EXPECT_EQ(doLoad(sys, 3, kData + 4), 11u);
    EXPECT_EQ(doLoad(sys, 3, kData + 8), 12u);
}

TEST(DenovoProtocol, DebugReadFindsOwnedWords)
{
    System sys(ddConfig());
    doStore(sys, 3, kData, 1212);
    doDrain(sys, 3);
    EXPECT_EQ(sys.debugRead(kData), 1212u);
}
