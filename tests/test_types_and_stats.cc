/**
 * @file
 * Unit tests for address helpers, the statistics package, and the
 * deterministic RNG.
 */

#include <gtest/gtest.h>

#include "sim/rng.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

using namespace nosync;

TEST(Types, LineAndWordAlignment)
{
    EXPECT_EQ(lineAlign(0x1000), 0x1000u);
    EXPECT_EQ(lineAlign(0x103f), 0x1000u);
    EXPECT_EQ(lineAlign(0x1040), 0x1040u);
    EXPECT_EQ(wordAlign(0x1003), 0x1000u);
    EXPECT_EQ(wordAlign(0x1004), 0x1004u);
}

TEST(Types, WordInLine)
{
    EXPECT_EQ(wordInLine(0x1000), 0u);
    EXPECT_EQ(wordInLine(0x1004), 1u);
    EXPECT_EQ(wordInLine(0x103c), 15u);
}

TEST(Types, WordMaskOf)
{
    EXPECT_EQ(wordMaskOf(0x1000), 0x0001u);
    EXPECT_EQ(wordMaskOf(0x103c), 0x8000u);
}

TEST(Types, Popcount)
{
    EXPECT_EQ(popcount(0), 0u);
    EXPECT_EQ(popcount(kFullLineMask), 16u);
    EXPECT_EQ(popcount(0x5555), 8u);
}

TEST(Stats, ScalarAccumulates)
{
    stats::StatSet set;
    stats::Scalar &s = set.scalar("x", "a scalar");
    s += 2.5;
    ++s;
    ASSERT_NE(set.find("x"), nullptr);
    EXPECT_DOUBLE_EQ(set.find("x")->value(), 3.5);
}

TEST(Stats, ScalarReregistrationReturnsSame)
{
    stats::StatSet set;
    stats::Scalar &a = set.scalar("x", "a");
    stats::Scalar &b = set.scalar("x", "a");
    EXPECT_EQ(&a, &b);
}

TEST(Stats, VectorSubnamesAndTotal)
{
    stats::StatSet set;
    stats::Vector &v = set.vector("v", "a vector", {"a", "b", "c"});
    v.add(0, 1.0);
    v.add(2, 4.0);
    const stats::Vector *found = set.findVector("v");
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->indexOf("a"), 0);
    EXPECT_EQ(found->indexOf("nope"), -1);
    EXPECT_DOUBLE_EQ(found->value(0), 1.0);
    EXPECT_DOUBLE_EQ(found->value(1), 0.0);
    EXPECT_DOUBLE_EQ(found->value(2), 4.0);
    EXPECT_DOUBLE_EQ(v.total(), 5.0);
}

TEST(Stats, FindDistinguishesAbsentFromZero)
{
    stats::StatSet set;
    set.scalar("zero", "registered but never bumped");
    EXPECT_NE(set.find("zero"), nullptr);
    EXPECT_DOUBLE_EQ(set.find("zero")->value(), 0.0);
    EXPECT_EQ(set.find("nope"), nullptr);
    EXPECT_EQ(set.findVector("nope"), nullptr);
    EXPECT_EQ(set.findDistribution("nope"), nullptr);
}

TEST(Stats, ResetAllZeroes)
{
    stats::StatSet set;
    set.scalar("x", "a") += 7;
    set.vector("v", "b", {"p"}).add(0, 3);
    set.registerDistribution("d", "c")->sample(8.0);
    set.resetAll();
    EXPECT_DOUBLE_EQ(set.find("x")->value(), 0.0);
    EXPECT_DOUBLE_EQ(set.findVector("v")->value(0), 0.0);
    EXPECT_EQ(set.findDistribution("d")->count(), 0u);
}

TEST(Stats, DumpContainsNamesAndValues)
{
    stats::StatSet set;
    set.scalar("alpha", "desc of alpha") += 42;
    std::string dump = set.dump();
    EXPECT_NE(dump.find("alpha"), std::string::npos);
    EXPECT_NE(dump.find("42"), std::string::npos);
    EXPECT_NE(dump.find("desc of alpha"), std::string::npos);
}

TEST(Stats, TypedHandlesUpdateTheRegisteredStat)
{
    stats::StatSet set;
    stats::Handle<stats::Scalar> h = set.registerScalar("s", "d");
    ASSERT_TRUE(static_cast<bool>(h));
    ++h;
    h += 4.0;
    EXPECT_DOUBLE_EQ(set.find("s")->value(), 5.0);

    // Re-registration hands back a handle to the same statistic.
    stats::Handle<stats::Scalar> again = set.registerScalar("s", "d");
    ++again;
    EXPECT_DOUBLE_EQ(h->value(), 6.0);

    stats::Handle<stats::Vector> v =
        set.registerVector("v", "d", {"a", "b"});
    v->add(1, 2.0);
    EXPECT_DOUBLE_EQ(set.findVector("v")->value(1), 2.0);

    stats::Handle<stats::Distribution> dist =
        set.registerDistribution("dist", "d");
    dist->sample(3.0);
    EXPECT_EQ(set.findDistribution("dist")->count(), 1u);

    // Default-constructed handles are empty and test false.
    stats::Handle<stats::Scalar> empty;
    EXPECT_FALSE(static_cast<bool>(empty));
}

TEST(Stats, DistributionMoments)
{
    stats::Distribution d("lat", "latency");
    EXPECT_EQ(d.count(), 0u);
    EXPECT_DOUBLE_EQ(d.mean(), 0.0);
    EXPECT_DOUBLE_EQ(d.percentile(0.5), 0.0);

    for (double v : {4.0, 8.0, 100.0})
        d.sample(v);
    EXPECT_EQ(d.count(), 3u);
    EXPECT_DOUBLE_EQ(d.sum(), 112.0);
    EXPECT_DOUBLE_EQ(d.min(), 4.0);
    EXPECT_DOUBLE_EQ(d.max(), 100.0);
    EXPECT_DOUBLE_EQ(d.mean(), 112.0 / 3.0);
}

TEST(Stats, DistributionPercentilesBracketTheSamples)
{
    stats::Distribution d("lat", "latency");
    // 1000 samples spread uniformly over [1, 1000].
    for (int i = 1; i <= 1000; ++i)
        d.sample(static_cast<double>(i));

    double p50 = d.percentile(0.50);
    double p95 = d.percentile(0.95);
    // Log2 buckets give coarse estimates; they must stay within the
    // containing power-of-two bracket of the true quantile.
    EXPECT_GE(p50, 256.0);
    EXPECT_LE(p50, 1000.0);
    EXPECT_GE(p95, 512.0);
    EXPECT_LE(p95, 1000.0);
    EXPECT_GE(p95, p50);
    // Extremes clamp to the observed range exactly.
    EXPECT_DOUBLE_EQ(d.percentile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(d.percentile(1.0), 1000.0);
}

TEST(Stats, DistributionSingleSampleReportsItEverywhere)
{
    stats::Distribution d("lat", "latency");
    d.sample(37.0);
    EXPECT_DOUBLE_EQ(d.percentile(0.0), 37.0);
    EXPECT_DOUBLE_EQ(d.percentile(0.5), 37.0);
    EXPECT_DOUBLE_EQ(d.percentile(1.0), 37.0);
}

TEST(Stats, DistributionAppearsInDump)
{
    stats::StatSet set;
    set.registerDistribution("trace.latency.load", "load latency")
        ->sample(12.0);
    std::string dump = set.dump();
    EXPECT_NE(dump.find("trace.latency.load"), std::string::npos);
    EXPECT_NE(dump.find("count=1"), std::string::npos);
}

TEST(Rng, DeterministicForSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    bool any_diff = false;
    for (int i = 0; i < 16; ++i)
        any_diff |= (a.next() != b.next());
    EXPECT_TRUE(any_diff);
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.below(13), 13u);
}

TEST(Rng, RangeIsInclusive)
{
    Rng rng(9);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        auto v = rng.range(3, 5);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 5u);
        saw_lo |= (v == 3);
        saw_hi |= (v == 5);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, ChanceIsRoughlyCalibrated)
{
    Rng rng(11);
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += rng.chance(0.3) ? 1 : 0;
    EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}
