/**
 * @file
 * Unit tests for address helpers, the statistics package, and the
 * deterministic RNG.
 */

#include <gtest/gtest.h>

#include "sim/rng.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

using namespace nosync;

TEST(Types, LineAndWordAlignment)
{
    EXPECT_EQ(lineAlign(0x1000), 0x1000u);
    EXPECT_EQ(lineAlign(0x103f), 0x1000u);
    EXPECT_EQ(lineAlign(0x1040), 0x1040u);
    EXPECT_EQ(wordAlign(0x1003), 0x1000u);
    EXPECT_EQ(wordAlign(0x1004), 0x1004u);
}

TEST(Types, WordInLine)
{
    EXPECT_EQ(wordInLine(0x1000), 0u);
    EXPECT_EQ(wordInLine(0x1004), 1u);
    EXPECT_EQ(wordInLine(0x103c), 15u);
}

TEST(Types, WordMaskOf)
{
    EXPECT_EQ(wordMaskOf(0x1000), 0x0001u);
    EXPECT_EQ(wordMaskOf(0x103c), 0x8000u);
}

TEST(Types, Popcount)
{
    EXPECT_EQ(popcount(0), 0u);
    EXPECT_EQ(popcount(kFullLineMask), 16u);
    EXPECT_EQ(popcount(0x5555), 8u);
}

TEST(Stats, ScalarAccumulates)
{
    stats::StatSet set;
    stats::Scalar &s = set.scalar("x", "a scalar");
    s += 2.5;
    ++s;
    EXPECT_DOUBLE_EQ(set.get("x"), 3.5);
}

TEST(Stats, ScalarReregistrationReturnsSame)
{
    stats::StatSet set;
    stats::Scalar &a = set.scalar("x", "a");
    stats::Scalar &b = set.scalar("x", "a");
    EXPECT_EQ(&a, &b);
}

TEST(Stats, VectorSubnamesAndTotal)
{
    stats::StatSet set;
    stats::Vector &v = set.vector("v", "a vector", {"a", "b", "c"});
    v.add(0, 1.0);
    v.add(2, 4.0);
    EXPECT_DOUBLE_EQ(set.getVec("v", "a"), 1.0);
    EXPECT_DOUBLE_EQ(set.getVec("v", "b"), 0.0);
    EXPECT_DOUBLE_EQ(set.getVec("v", "c"), 4.0);
    EXPECT_DOUBLE_EQ(v.total(), 5.0);
}

TEST(Stats, MissingLookupsReturnZero)
{
    stats::StatSet set;
    EXPECT_DOUBLE_EQ(set.get("nope"), 0.0);
    EXPECT_DOUBLE_EQ(set.getVec("nope", "x"), 0.0);
}

TEST(Stats, ResetAllZeroes)
{
    stats::StatSet set;
    set.scalar("x", "a") += 7;
    set.vector("v", "b", {"p"}).add(0, 3);
    set.resetAll();
    EXPECT_DOUBLE_EQ(set.get("x"), 0.0);
    EXPECT_DOUBLE_EQ(set.getVec("v", "p"), 0.0);
}

TEST(Stats, DumpContainsNamesAndValues)
{
    stats::StatSet set;
    set.scalar("alpha", "desc of alpha") += 42;
    std::string dump = set.dump();
    EXPECT_NE(dump.find("alpha"), std::string::npos);
    EXPECT_NE(dump.find("42"), std::string::npos);
    EXPECT_NE(dump.find("desc of alpha"), std::string::npos);
}

TEST(Rng, DeterministicForSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    bool any_diff = false;
    for (int i = 0; i < 16; ++i)
        any_diff |= (a.next() != b.next());
    EXPECT_TRUE(any_diff);
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.below(13), 13u);
}

TEST(Rng, RangeIsInclusive)
{
    Rng rng(9);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        auto v = rng.range(3, 5);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 5u);
        saw_lo |= (v == 3);
        saw_hi |= (v == 5);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, ChanceIsRoughlyCalibrated)
{
    Rng rng(11);
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += rng.chance(0.3) ? 1 : 0;
    EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}
