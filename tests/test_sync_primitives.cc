/**
 * @file
 * Synchronization primitive tests: each Stuart-Owens primitive is
 * exercised at small scale on every configuration, with the
 * benchmark-embedded invariants (mutual exclusion, reader-writer
 * exclusion, barrier epochs) doing the checking.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "test_util.hh"
#include "workloads/microbench.hh"
#include "workloads/sync_primitives.hh"

using namespace nosync;
using namespace nosync::test;

namespace
{

MicrobenchParams
tinyParams()
{
    MicrobenchParams params;
    params.iterations = 5;
    params.workWords = 4;
    params.threads = 8;
    return params;
}

class SyncPrimitives : public ::testing::TestWithParam<ProtocolConfig>
{
  protected:
    RunResult
    runOn(Workload &workload)
    {
        SystemConfig config;
        config.protocol = GetParam();
        config.execution.maxCycles = 100'000'000ull;
        System system(config);
        return system.run(workload);
    }
};

} // namespace

TEST_P(SyncPrimitives, FetchAddMutexGlobal)
{
    MutexBench bench(MutexKind::FetchAdd, Scope::Global, tinyParams());
    RunResult r = runOn(bench);
    EXPECT_TRUE(r.ok()) << r.checkFailures.front();
}

TEST_P(SyncPrimitives, SleepMutexGlobal)
{
    MutexBench bench(MutexKind::Sleep, Scope::Global, tinyParams());
    RunResult r = runOn(bench);
    EXPECT_TRUE(r.ok()) << r.checkFailures.front();
}

TEST_P(SyncPrimitives, SpinMutexGlobal)
{
    MutexBench bench(MutexKind::Spin, Scope::Global, tinyParams());
    RunResult r = runOn(bench);
    EXPECT_TRUE(r.ok()) << r.checkFailures.front();
}

TEST_P(SyncPrimitives, SpinBackoffMutexLocal)
{
    MutexBench bench(MutexKind::SpinBackoff, Scope::Local, tinyParams());
    RunResult r = runOn(bench);
    EXPECT_TRUE(r.ok()) << r.checkFailures.front();
}

TEST_P(SyncPrimitives, SpinMutexLocal)
{
    MutexBench bench(MutexKind::Spin, Scope::Local, tinyParams());
    RunResult r = runOn(bench);
    EXPECT_TRUE(r.ok()) << r.checkFailures.front();
}

TEST_P(SyncPrimitives, ReaderWriterSemaphore)
{
    MicrobenchParams params = tinyParams();
    params.iterations = 6;
    SemaphoreBench bench(false, params);
    RunResult r = runOn(bench);
    EXPECT_TRUE(r.ok()) << r.checkFailures.front();
}

TEST_P(SyncPrimitives, ReaderWriterSemaphoreBackoff)
{
    MicrobenchParams params = tinyParams();
    params.iterations = 6;
    SemaphoreBench bench(true, params);
    RunResult r = runOn(bench);
    EXPECT_TRUE(r.ok()) << r.checkFailures.front();
}

TEST_P(SyncPrimitives, TreeBarrier)
{
    TreeBarrierBench bench(false, tinyParams());
    RunResult r = runOn(bench);
    EXPECT_TRUE(r.ok()) << r.checkFailures.front();
}

TEST_P(SyncPrimitives, TreeBarrierWithLocalExchange)
{
    TreeBarrierBench bench(true, tinyParams());
    RunResult r = runOn(bench);
    EXPECT_TRUE(r.ok()) << r.checkFailures.front();
}

INSTANTIATE_TEST_SUITE_P(AllConfigs, SyncPrimitives,
                         ::testing::ValuesIn(test::allConfigs()),
                         test::ConfigName{});
