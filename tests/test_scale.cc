/**
 * @file
 * Weak-scaling smoke tests: the simulator must build and run
 * correctly on meshes beyond the paper's 4x4 machine — up to 8x8
 * (63 CUs + CPU, one L2 bank per node) — deterministically, and
 * identically under the parallel sweep runner.
 */

#include <gtest/gtest.h>

#include "runner/sweep_runner.hh"
#include "test_util.hh"
#include "workloads/registry.hh"

using namespace nosync;

namespace
{

SystemConfig
scaledConfig(unsigned dim)
{
    SystemConfig config;
    config.protocol = ProtocolConfig::dd();
    config.topology.mesh.width = dim;
    config.topology.mesh.height = dim;
    config.topology.cusPerDevice = dim * dim - 1;
    return config;
}

RunResult
runScaled(unsigned dim)
{
    auto workload = makeScaled("FAM_L", 10);
    System system(scaledConfig(dim));
    return system.run(*workload);
}

/** The simulated metrics that must be identical across runs. */
void
expectSimIdentical(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.energyTotal, b.energyTotal);
    EXPECT_EQ(a.trafficTotal, b.trafficTotal);
    EXPECT_EQ(a.energy, b.energy);
    EXPECT_EQ(a.traffic, b.traffic);
}

} // namespace

TEST(Scale, EightByEightBuildsFullMachine)
{
    System system(scaledConfig(8));
    EXPECT_EQ(system.numCus(), 63u);
    EXPECT_EQ(system.mesh().numNodes(), 64u);
    EXPECT_EQ(system.numL2Banks(), 64u);
    // One L1 per CU; the CPU node (63) has none.
    EXPECT_NO_THROW(system.l1(62));
    EXPECT_THROW(system.l1(63), std::out_of_range);
}

TEST(Scale, WorkloadCompletesAtFourAndEightByEight)
{
    RunResult small = runScaled(4);
    RunResult large = runScaled(8);
    EXPECT_TRUE(small.ok()) << small.checkFailures.size()
                            << " check failures";
    EXPECT_TRUE(large.ok()) << large.checkFailures.size()
                            << " check failures";
    // Weak scaling: the workload sizes itself from numCus(), so the
    // big machine does strictly more work and moves more traffic.
    EXPECT_GT(large.trafficTotal, small.trafficTotal);
}

TEST(Scale, EightByEightRunIsDeterministic)
{
    RunResult first = runScaled(8);
    RunResult second = runScaled(8);
    expectSimIdentical(first, second);
}

TEST(Scale, ParallelSweepMatchesSerialAtScale)
{
    // The same 4x4 + 8x8 cells through the sweep runner, serial and
    // with two workers: simulated results must be identical (host
    // timings are expected to differ).
    const unsigned dims[] = {4, 8};
    auto sweep = [&](unsigned jobs) {
        SweepRunner runner(jobs);
        return runner.map(2, [&](std::size_t i) {
            return runScaled(dims[i]);
        });
    };
    std::vector<RunResult> serial = sweep(1);
    std::vector<RunResult> parallel = sweep(2);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i)
        expectSimIdentical(serial[i], parallel[i]);
}

TEST(Scale, TwelveByTwelveBuildsFullMachine)
{
    // 144 nodes used to exceed the old int8_t owner width; with
    // int16_t owners the 12x12 tier builds like any other.
    System system(scaledConfig(12));
    EXPECT_EQ(system.numCus(), 143u);
    EXPECT_EQ(system.mesh().numNodes(), 144u);
    EXPECT_EQ(system.numL2Banks(), 144u);
}

TEST(ScaleDeathTest, MeshBeyondOwnerWidthIsFatal)
{
    // CacheLine stores per-word owners as int16_t; a 182x182 mesh
    // (33124 nodes) would overflow NodeId 32766 and must be rejected
    // up front, before any per-node structure is sized.
    EXPECT_DEATH(System system(scaledConfig(182)), "int16_t");
}
