/**
 * @file
 * Protocol-level tests for conventional GPU coherence (GD and GH):
 * writethrough visibility, flash invalidation, HRF per-word dirty
 * bits, local vs global atomics, and store-buffer behaviour.
 */

#include <gtest/gtest.h>

#include "test_util.hh"

using namespace nosync;
using namespace nosync::test;

namespace
{

SystemConfig
gdConfig()
{
    SystemConfig config;
    config.protocol = ProtocolConfig::gd();
    return config;
}

SystemConfig
ghConfig()
{
    SystemConfig config;
    config.protocol = ProtocolConfig::gh();
    return config;
}

constexpr Addr kData = 0x10000;
constexpr Addr kFlag = 0x20000;

} // namespace

TEST(GpuProtocol, LoadMissReturnsMemoryValue)
{
    System sys(gdConfig());
    sys.writeInit(kData, 1234);
    EXPECT_EQ(doLoad(sys, 0, kData), 1234u);
}

TEST(GpuProtocol, SecondLoadHitsInL1)
{
    System sys(gdConfig());
    sys.writeInit(kData, 7);
    doLoad(sys, 0, kData);
    double misses_before =
        sys.stats().find("l1.0.load_misses")->value();
    EXPECT_EQ(doLoad(sys, 0, kData + 4), 0u); // same line, word 1
    EXPECT_EQ(sys.stats().find("l1.0.load_misses")->value(), misses_before);
}

TEST(GpuProtocol, StoreForwardsLocallyBeforeWritethrough)
{
    System sys(gdConfig());
    doStore(sys, 0, kData, 55);
    // Locally visible immediately...
    EXPECT_EQ(doLoad(sys, 0, kData), 55u);
    // ...but not yet at the shared L2 (no release yet).
    unsigned bank = (kData / kLineBytes) % 16;
    EXPECT_EQ(as<GpuL2Bank>(sys.l2Bank(bank))->peekWord(kData), 0u);
}

TEST(GpuProtocol, DrainWritesThroughToL2)
{
    System sys(gdConfig());
    doStore(sys, 0, kData, 55);
    doDrain(sys, 0);
    unsigned bank = (kData / kLineBytes) % 16;
    EXPECT_EQ(as<GpuL2Bank>(sys.l2Bank(bank))->peekWord(kData), 55u);
    EXPECT_EQ(as<GpuL1Cache>(sys.l1(0))->storeBufferSize(), 0u);
}

TEST(GpuProtocol, KernelEndDrains)
{
    System sys(gdConfig());
    doStore(sys, 0, kData, 99);
    bool done = false;
    sys.l1(0).kernelEnd([&] { done = true; });
    while (!done && sys.eventQueue().step()) {
    }
    ASSERT_TRUE(done);
    unsigned bank = (kData / kLineBytes) % 16;
    EXPECT_EQ(as<GpuL2Bank>(sys.l2Bank(bank))->peekWord(kData), 99u);
}

TEST(GpuProtocol, GlobalAcquireFlashInvalidates)
{
    System sys(gdConfig());
    sys.writeInit(kData, 3);
    doLoad(sys, 0, kData);
    EXPECT_TRUE(as<GpuL1Cache>(sys.l1(0))->wordValid(kData));
    doSync(sys, 0,
           makeSync(AtomicFunc::Load, kFlag, 0, 0, Scope::Global,
                    SyncSemantics::Acquire));
    EXPECT_FALSE(as<GpuL1Cache>(sys.l1(0))->wordValid(kData));
}

TEST(GpuProtocol, HrfKeepsDirtyWordsAcrossGlobalAcquire)
{
    System sys(ghConfig());
    doStore(sys, 0, kData, 42);
    doSync(sys, 0,
           makeSync(AtomicFunc::Load, kFlag, 0, 0, Scope::Global,
                    SyncSemantics::Acquire));
    // The CU's own partial write survives (per-word dirty bit).
    EXPECT_TRUE(as<GpuL1Cache>(sys.l1(0))->wordValid(kData));
    EXPECT_EQ(doLoad(sys, 0, kData), 42u);
}

TEST(GpuProtocol, GlobalAtomicExecutesAtL2)
{
    System sys(gdConfig());
    sys.writeInit(kFlag, 10);
    std::uint32_t old_val =
        doSync(sys, 0, makeSync(AtomicFunc::FetchAdd, kFlag, 5));
    EXPECT_EQ(old_val, 10u);
    unsigned bank = (kFlag / kLineBytes) % 16;
    EXPECT_EQ(as<GpuL2Bank>(sys.l2Bank(bank))->peekWord(kFlag), 15u);
    EXPECT_GE(sys.stats().find("l1.0.sync_misses")->value(), 1.0);
}

TEST(GpuProtocol, HrfLocalAtomicExecutesAtL1)
{
    System sys(ghConfig());
    sys.writeInit(kFlag, 1);
    std::uint32_t old_val = doSync(
        sys, 0, makeSync(AtomicFunc::FetchAdd, kFlag, 1, 0,
                         Scope::Local));
    EXPECT_EQ(old_val, 1u);
    // Performed locally: the L2 copy is untouched until a global
    // release flushes dirty words.
    unsigned bank = (kFlag / kLineBytes) % 16;
    EXPECT_EQ(as<GpuL2Bank>(sys.l2Bank(bank))->peekWord(kFlag), 1u);
    doDrain(sys, 0);
    EXPECT_EQ(as<GpuL2Bank>(sys.l2Bank(bank))->peekWord(kFlag), 2u);
}

TEST(GpuProtocol, MessagePassingBetweenCus)
{
    System sys(gdConfig());
    // Producer on CU 0.
    doStore(sys, 0, kData, 777);
    doSync(sys, 0,
           makeSync(AtomicFunc::Store, kFlag, 1, 0, Scope::Global,
                    SyncSemantics::Release));
    // Consumer on CU 1: acquire sees the flag, then the data.
    std::uint32_t flag = doSync(
        sys, 1, makeSync(AtomicFunc::Load, kFlag, 0, 0, Scope::Global,
                         SyncSemantics::Acquire));
    EXPECT_EQ(flag, 1u);
    EXPECT_EQ(doLoad(sys, 1, kData), 777u);
}

TEST(GpuProtocol, StaleCopyInvalidatedByAcquire)
{
    System sys(gdConfig());
    sys.writeInit(kData, 1);
    // CU 1 caches the old value.
    EXPECT_EQ(doLoad(sys, 1, kData), 1u);
    // CU 0 updates and releases.
    doStore(sys, 0, kData, 2);
    doSync(sys, 0,
           makeSync(AtomicFunc::Store, kFlag, 1, 0, Scope::Global,
                    SyncSemantics::Release));
    // Without an acquire CU 1 may still see 1; after an acquire it
    // must see 2.
    doSync(sys, 1,
           makeSync(AtomicFunc::Load, kFlag, 0, 0, Scope::Global,
                    SyncSemantics::Acquire));
    EXPECT_EQ(doLoad(sys, 1, kData), 2u);
}

TEST(GpuProtocol, StoreBufferOverflowForcesDrain)
{
    SystemConfig config = gdConfig();
    config.geometry.storeBufferEntries = 4;
    System sys(config);
    // Five distinct words: the fifth store must force a drain.
    for (unsigned i = 0; i < 5; ++i)
        doStore(sys, 0, kData + i * kWordBytes, i + 1);
    EXPECT_GE(sys.stats().find("l1.0.sb_overflow_drains")->value(), 1.0);
    // All values remain visible.
    for (unsigned i = 0; i < 5; ++i)
        EXPECT_EQ(doLoad(sys, 0, kData + i * kWordBytes), i + 1);
}

TEST(GpuProtocol, EvictionPreservesPendingWrites)
{
    // Tiny L1 (2 sets x 2 ways) so fills evict aggressively.
    SystemConfig config = gdConfig();
    config.geometry.l1Bytes = 256;
    config.geometry.l1Assoc = 2;
    System sys(config);
    doStore(sys, 0, kData, 123);
    // March loads through enough lines to evict everything.
    for (unsigned i = 1; i <= 8; ++i)
        doLoad(sys, 0, kData + i * 0x100);
    EXPECT_EQ(doLoad(sys, 0, kData), 123u);
    doDrain(sys, 0);
    EXPECT_EQ(sys.debugRead(kData), 123u);
}

TEST(GpuProtocol, HrfDirtyWordFlushedOnEviction)
{
    SystemConfig config = ghConfig();
    config.geometry.l1Bytes = 256;
    config.geometry.l1Assoc = 2;
    System sys(config);
    doStore(sys, 0, kData, 31);
    for (unsigned i = 1; i <= 8; ++i)
        doLoad(sys, 0, kData + i * 0x100);
    drainEvents(sys);
    // The dirty word was written through when its frame was reused.
    EXPECT_EQ(sys.debugRead(kData), 31u);
}

TEST(GpuProtocol, AtomicReturnValueChains)
{
    System sys(gdConfig());
    for (std::uint32_t i = 0; i < 10; ++i) {
        std::uint32_t old_val = doSync(
            sys, i % 4, makeSync(AtomicFunc::FetchAdd, kFlag, 1));
        EXPECT_EQ(old_val, i);
    }
    EXPECT_EQ(sys.debugRead(kFlag), 10u);
}

TEST(GpuProtocol, CompareSwapMutualExclusionAtL2)
{
    System sys(gdConfig());
    std::uint32_t a = doSync(
        sys, 0, makeSync(AtomicFunc::CompareSwap, kFlag, 1, 0));
    std::uint32_t b = doSync(
        sys, 1, makeSync(AtomicFunc::CompareSwap, kFlag, 1, 0));
    EXPECT_EQ(a, 0u); // first wins
    EXPECT_EQ(b, 1u); // second observes the lock taken
}
