/**
 * @file
 * Unit tests for the discrete-event scheduler.
 */

#include <gtest/gtest.h>

#include <array>
#include <cstdint>

#include "sim/event_queue.hh"

using namespace nosync;

TEST(EventQueue, StartsAtTickZero)
{
    EventQueue eq;
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, RunsEventsInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, SameTickIsFifo)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        eq.schedule(5, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, PriorityBreaksTies)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(5, [&] { order.push_back(1); },
                EventPriority::CuIssue);
    eq.schedule(5, [&] { order.push_back(0); },
                EventPriority::NetworkDelivery);
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1}));
}

TEST(EventQueue, EventsMayScheduleEvents)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1, [&] {
        ++fired;
        eq.scheduleIn(4, [&] { ++fired; });
    });
    eq.run();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.now(), 5u);
}

TEST(EventQueue, RunHonorsLimit)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.schedule(100, [&] { ++fired; });
    eq.run(50);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.now(), 50u);
    eq.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, StepExecutesOneEvent)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1, [&] { ++fired; });
    eq.schedule(2, [&] { ++fired; });
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(fired, 1);
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(fired, 2);
    EXPECT_FALSE(eq.step());
}

TEST(EventQueue, CountsExecutedEvents)
{
    EventQueue eq;
    for (int i = 0; i < 5; ++i)
        eq.schedule(i, [] {});
    eq.run();
    EXPECT_EQ(eq.executed(), 5u);
}

// Regression tests for the slab-recycled callback storage: freed
// callback slots are reused by later schedules, and the FIFO sequence
// numbering must survive that recycling.

TEST(EventQueue, SameTickFifoSurvivesSlotRecycling)
{
    EventQueue eq;
    std::vector<int> order;
    // Phase 1 populates and frees a batch of slots.
    for (int i = 0; i < 16; ++i)
        eq.schedule(1, [&order, i] { order.push_back(i); });
    eq.run();
    order.clear();
    // Phase 2 reuses the freed slots; FIFO order must be by schedule
    // time, not by slot index.
    for (int i = 15; i >= 0; --i)
        eq.schedule(10, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(order[i], 15 - i);
}

TEST(EventQueue, EventsScheduledFromCallbacksKeepFifoOrder)
{
    EventQueue eq;
    std::vector<int> order;
    // The callback schedules more same-tick work while its own slot
    // has already been freed for reuse.
    eq.schedule(5, [&] {
        order.push_back(0);
        eq.schedule(5, [&] { order.push_back(2); });
        eq.schedule(5, [&] { order.push_back(3); });
    });
    eq.schedule(5, [&] { order.push_back(1); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(EventQueue, PriorityStillBeatsFifoAfterRecycling)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 4; ++i)
        eq.schedule(1, [] {});
    eq.run();
    eq.schedule(9, [&] { order.push_back(2); },
                EventPriority::Stats);
    eq.schedule(9, [&] { order.push_back(1); });
    eq.schedule(9, [&] { order.push_back(0); },
                EventPriority::NetworkDelivery);
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EventQueue, LargeCapturesBeyondInlineBufferWork)
{
    EventQueue eq;
    // An 80-byte capture exceeds the EventFn inline buffer and takes
    // the heap-fallback path; it must still run and destroy cleanly.
    std::array<std::uint64_t, 10> payload{};
    for (std::size_t i = 0; i < payload.size(); ++i)
        payload[i] = i + 1;
    std::uint64_t sum = 0;
    eq.schedule(1, [payload, &sum] {
        for (auto v : payload)
            sum += v;
    });
    eq.run();
    EXPECT_EQ(sum, 55u);
}

TEST(EventQueueDeathTest, SchedulingInThePastPanics)
{
    EventQueue eq;
    eq.schedule(10, [] {});
    eq.run();
    EXPECT_DEATH(eq.schedule(5, [] {}), "past");
}
