/**
 * @file
 * End-to-end workload tests: every Table 4 benchmark runs its own
 * functional check on every configuration (reduced scale), and the
 * registry metadata is complete.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "test_util.hh"
#include "workloads/registry.hh"

using namespace nosync;
using namespace nosync::test;

TEST(Registry, HasAllTable4Benchmarks)
{
    EXPECT_EQ(workloadRegistry().size(), 37u);
    EXPECT_EQ(workloadsInGroup("no-sync").size(), 10u);
    EXPECT_EQ(workloadsInGroup("global-sync").size(), 4u);
    EXPECT_EQ(workloadsInGroup("local-sync").size(), 9u);
    EXPECT_EQ(workloadsInGroup("device-sync").size(), 2u);
    EXPECT_EQ(workloadsInGroup("graph").size(), 12u);
}

TEST(Registry, LookupByName)
{
    ASSERT_NE(findWorkload("UTS"), nullptr);
    EXPECT_EQ(findWorkload("UTS")->group, "local-sync");
    EXPECT_EQ(findWorkload("nope"), nullptr);
}

TEST(Registry, FactoriesProduceMatchingNames)
{
    for (const auto &desc : workloadRegistry()) {
        auto workload = desc.make();
        EXPECT_EQ(workload->name(), desc.name);
    }
}

namespace
{

using WorkloadParam = std::tuple<std::string, ProtocolConfig>;

class WorkloadRun : public ::testing::TestWithParam<WorkloadParam>
{
};

std::vector<WorkloadParam>
allRuns(const std::string &group, unsigned stride = 1)
{
    std::vector<WorkloadParam> params;
    unsigned i = 0;
    for (const auto *desc : workloadsInGroup(group)) {
        for (const auto &config : test::allConfigs()) {
            if (i++ % stride == 0)
                params.emplace_back(desc->name, config);
        }
    }
    return params;
}

struct RunName
{
    std::string
    operator()(const ::testing::TestParamInfo<WorkloadParam> &info)
        const
    {
        std::string name = std::get<0>(info.param) + "_" +
                           std::get<1>(info.param).shortName();
        for (auto &c : name) {
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return name;
    }
};

} // namespace

TEST_P(WorkloadRun, FunctionalCheckPasses)
{
    const auto &[name, proto] = GetParam();
    auto workload = makeScaled(name, 10);
    SystemConfig config;
    config.protocol = proto;
    config.execution.maxCycles = 200'000'000ull;
    System system(config);
    RunResult result = system.run(*workload);
    ASSERT_TRUE(result.ok())
        << name << " on " << result.config << ": "
        << result.checkFailures.front();
    EXPECT_GT(result.cycles, 0u);
    EXPECT_GT(result.energyTotal, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Apps, WorkloadRun,
                         ::testing::ValuesIn(allRuns("no-sync")),
                         RunName{});
INSTANTIATE_TEST_SUITE_P(GlobalSync, WorkloadRun,
                         ::testing::ValuesIn(allRuns("global-sync")),
                         RunName{});
INSTANTIATE_TEST_SUITE_P(LocalSync, WorkloadRun,
                         ::testing::ValuesIn(allRuns("local-sync")),
                         RunName{});
INSTANTIATE_TEST_SUITE_P(Graph, WorkloadRun,
                         ::testing::ValuesIn(allRuns("graph")),
                         RunName{});
