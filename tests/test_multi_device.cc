/**
 * @file
 * Multi-device machines: topology validation, the inter-device link
 * (latency, bandwidth, FIFO ordering, fault injection), device-scope
 * synchronization (well-scoped vs mis-scoped litmus), the DD+SE
 * memory-side sync engine, and engine-mode determinism at D >= 2.
 */

#include <gtest/gtest.h>

#include "analysis/race_detector.hh"
#include "coherence/denovo_l2.hh"
#include "noc/mesh.hh"
#include "noc/topology.hh"
#include "sim/stats.hh"
#include "test_util.hh"
#include "workloads/registry.hh"

using namespace nosync;
using namespace nosync::test;

namespace
{

/** Two small 2x2-mesh devices joined by a 10-cycle, 2-cycle/flit
 *  link: big enough to route across, small enough to reason about. */
MachineTopology
twoSmallDevices()
{
    MachineTopology topo;
    topo.devices = 2;
    topo.mesh.width = 2;
    topo.mesh.height = 2;
    topo.cusPerDevice = 3;
    topo.link.latency = 10;
    topo.link.cyclesPerFlit = 2;
    return topo;
}

/** Join a run's failure strings for assertion messages. */
std::string
failures(const RunResult &result)
{
    std::string out;
    for (const auto &f : result.checkFailures)
        out += f + "\n";
    if (result.hang)
        out += "hang\n";
    return out;
}

SystemConfig
smallMachine(const ProtocolConfig &proto)
{
    SystemConfig config;
    config.protocol = proto;
    config.topology = twoSmallDevices();
    return config;
}

} // namespace

// ---------------------------------------------------------------------
// Topology / config validation
// ---------------------------------------------------------------------

TEST(TopologyValidation, DefaultIsValid)
{
    EXPECT_EQ(SystemConfig{}.validate(), "");
    EXPECT_EQ(smallMachine(ProtocolConfig::dd()).validate(), "");
}

TEST(TopologyValidation, RejectsBadDeviceCounts)
{
    SystemConfig config;
    config.topology.devices = 0;
    EXPECT_NE(config.validate(), "");
    config.topology.devices = 65;
    EXPECT_NE(config.validate(), "");
    config.topology.devices = 64;
    EXPECT_EQ(config.validate(), "");
}

TEST(TopologyValidation, RejectsMeshWithoutGatewayRoom)
{
    SystemConfig config;
    config.topology.cusPerDevice = 0;
    EXPECT_NE(config.validate(), "");
    // Every node a CU leaves no room for the CPU/gateway core.
    config.topology.cusPerDevice = 16;
    EXPECT_NE(config.validate(), "");
    config.topology.cusPerDevice = 15;
    EXPECT_EQ(config.validate(), "");
}

TEST(TopologyValidation, RejectsOwnerIdOverflow)
{
    // 64 devices x 24x24 nodes = 36864 > 32766 (int16_t owner ids).
    SystemConfig config;
    config.topology.devices = 64;
    config.topology.mesh.width = 24;
    config.topology.mesh.height = 24;
    config.topology.cusPerDevice = 1;
    EXPECT_NE(config.validate(), "");
}

TEST(TopologyValidation, RejectsLinkFasterThanMeshHop)
{
    SystemConfig config = smallMachine(ProtocolConfig::dd());
    config.topology.link.latency = 2; // hopLatency is 3
    EXPECT_NE(config.validate(), "");
    config.topology.link.latency = 3;
    EXPECT_EQ(config.validate(), "");
    config.topology.link.cyclesPerFlit = 0;
    EXPECT_NE(config.validate(), "");
}

TEST(TopologyValidation, SingleDeviceIgnoresLinkRules)
{
    // The link is unused at D=1, so its parameters can't invalidate.
    SystemConfig config;
    config.topology.link.latency = 0;
    config.topology.link.cyclesPerFlit = 0;
    EXPECT_EQ(config.validate(), "");
}

TEST(TopologyValidation, NodeMapIsDeviceMajor)
{
    MachineTopology topo = twoSmallDevices();
    EXPECT_EQ(topo.numNodes(), 8u);
    EXPECT_EQ(topo.totalCus(), 6u);
    EXPECT_EQ(topo.gatewayNode(0), 3);
    EXPECT_EQ(topo.gatewayNode(1), 7);
    EXPECT_EQ(topo.nodeOfCu(0), 0);
    EXPECT_EQ(topo.nodeOfCu(2), 2);
    EXPECT_EQ(topo.nodeOfCu(3), 4); // device 1's first CU
    EXPECT_EQ(topo.deviceOf(3), 0u);
    EXPECT_EQ(topo.deviceOf(4), 1u);
    EXPECT_EQ(topo.deviceOfCu(5), 1u);
}

// ---------------------------------------------------------------------
// Inter-device link
// ---------------------------------------------------------------------

namespace
{

struct LinkFixture : public ::testing::Test
{
    EventQueue eq;
    stats::StatSet stats;
    Mesh mesh{eq, stats, twoSmallDevices()};
};

} // namespace

TEST_F(LinkFixture, CrossDeviceLatencyMatchesDelivery)
{
    Tick arrival = 0;
    mesh.send(0, 4, 2, TrafficClass::Read, [&] { arrival = eq.now(); });
    eq.run();
    EXPECT_EQ(arrival, mesh.uncontendedLatency(0, 4, 2));
}

TEST_F(LinkFixture, CrossDeviceRouteIsLocalPlusLinkPlusLocal)
{
    // Node 0 -> gateway 3, the pair link, gateway 7 -> node 4. The
    // link leg costs latency + flits * cyclesPerFlit = 10 + 2f.
    for (unsigned flits = 1; flits <= 5; ++flits) {
        EXPECT_EQ(mesh.uncontendedLatency(0, 4, flits),
                  mesh.uncontendedLatency(0, 3, flits) +
                      (10 + 2 * static_cast<Tick>(flits)) +
                      mesh.uncontendedLatency(7, 4, flits));
    }
}

TEST_F(LinkFixture, IntraDeviceRoutesMirrorEachOther)
{
    // Device 1's local mesh is a copy of device 0's.
    EXPECT_EQ(mesh.uncontendedLatency(4, 7, 3),
              mesh.uncontendedLatency(0, 3, 3));
    EXPECT_EQ(mesh.hops(4, 7), mesh.hops(0, 3));
}

TEST_F(LinkFixture, LinkSerializesAtCyclesPerFlit)
{
    // Two 4-flit messages over the same pair link: the second waits
    // for the first to clear the link at 2 cycles/flit.
    Tick first = 0, second = 0;
    mesh.send(0, 4, 4, TrafficClass::Read, [&] { first = eq.now(); });
    mesh.send(0, 4, 4, TrafficClass::Read, [&] { second = eq.now(); });
    eq.run();
    EXPECT_GE(second - first, static_cast<Tick>(4 * 2));
}

TEST_F(LinkFixture, CrossDeviceFifoOrderingHolds)
{
    // Same-src/same-dst FIFO must hold across the link too, even for
    // mixed message sizes (large then small).
    std::vector<int> order;
    for (int i = 0; i < 10; ++i) {
        mesh.send(0, 4, 5, TrafficClass::Read,
                  [&order, i] { order.push_back(2 * i); });
        mesh.send(0, 4, 1, TrafficClass::Atomic,
                  [&order, i] { order.push_back(2 * i + 1); });
    }
    eq.run();
    ASSERT_EQ(order.size(), 20u);
    for (int i = 0; i < 20; ++i)
        EXPECT_EQ(order[i], i);
}

TEST_F(LinkFixture, DevicesDoNotContendInternally)
{
    // Local traffic inside device 0 and device 1 uses disjoint links.
    Tick a = 0, b = 0;
    mesh.send(0, 1, 1, TrafficClass::Read, [&] { a = eq.now(); });
    mesh.send(4, 5, 1, TrafficClass::Read, [&] { b = eq.now(); });
    eq.run();
    EXPECT_EQ(a, b);
}

TEST_F(LinkFixture, DirectionsAreIndependentLinks)
{
    // 0->1 and 1->0 device pair links are distinct; opposite-direction
    // crossings do not serialize against each other.
    Tick fwd = 0, rev = 0;
    mesh.send(0, 4, 4, TrafficClass::Read, [&] { fwd = eq.now(); });
    mesh.send(4, 0, 4, TrafficClass::Read, [&] { rev = eq.now(); });
    eq.run();
    EXPECT_EQ(fwd, rev);
}

// ---------------------------------------------------------------------
// Device-addressed component access
// ---------------------------------------------------------------------

TEST(DeviceView, AddressesPerDeviceSlices)
{
    SystemConfig config = smallMachine(ProtocolConfig::dd());
    System sys(config);
    ASSERT_EQ(sys.numDevices(), 2u);
    ASSERT_EQ(sys.numCus(), 6u);
    for (unsigned d = 0; d < 2; ++d) {
        System::DeviceView dev = sys.device(d);
        EXPECT_EQ(dev.index(), d);
        EXPECT_EQ(dev.numCus(), 3u);
        EXPECT_EQ(dev.numL2Banks(), 4u);
        EXPECT_EQ(dev.gatewayNode(),
                  config.topology.gatewayNode(d));
        for (unsigned cu = 0; cu < dev.numCus(); ++cu)
            EXPECT_EQ(&dev.l1(cu), &sys.l1(d * 3 + cu));
        for (unsigned bank = 0; bank < dev.numL2Banks(); ++bank)
            EXPECT_EQ(&dev.l2Bank(bank), &sys.l2Bank(d * 4 + bank));
    }
}

TEST(DeviceView, SingleDeviceViewIsWholeMachine)
{
    SystemConfig config;
    config.protocol = ProtocolConfig::gd();
    System sys(config);
    System::DeviceView dev = sys.device(0);
    EXPECT_EQ(dev.numCus(), sys.numCus());
    EXPECT_EQ(&dev.l1(0), &sys.l1(0));
}

TEST(DeviceView, InvalidConfigIsRefused)
{
    SystemConfig config;
    config.topology.cusPerDevice = 16; // no gateway room
    EXPECT_DEATH({ System sys(config); }, "gateway");
}

// ---------------------------------------------------------------------
// Whole-machine runs across devices
// ---------------------------------------------------------------------

namespace
{

class MultiDeviceRun : public ::testing::TestWithParam<ProtocolConfig>
{
};

} // namespace

TEST_P(MultiDeviceRun, GlobalSyncWorkloadPassesChecks)
{
    auto workload = makeScaled("FAM_G", 30);
    SystemConfig config = smallMachine(GetParam());
    config.checking.raceCheckEnabled = true;
    System sys(config);
    RunResult result = sys.run(*workload);
    EXPECT_TRUE(result.ok()) << result.workload << " on "
                             << result.config << "\n"
                             << failures(result);
    EXPECT_EQ(result.races.racesDetected, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllConfigs, MultiDeviceRun,
                         ::testing::Values(ProtocolConfig::gd(),
                                           ProtocolConfig::gh(),
                                           ProtocolConfig::dd(),
                                           ProtocolConfig::ddro(),
                                           ProtocolConfig::dh(),
                                           ProtocolConfig::ddse()),
                         ConfigName());

TEST(MultiDeviceFaults, LinkSeamSurvivesFaultInjection)
{
    // Delivery-level fault injection perturbs every message arrival,
    // including inter-device crossings; the protocols must still
    // converge to the correct result.
    auto workload = makeScaled("FAM_G", 30);
    SystemConfig config = smallMachine(ProtocolConfig::dd());
    config.execution.faults.enabled = true;
    config.execution.faults.seed = 7;
    System sys(config);
    RunResult result = sys.run(*workload);
    EXPECT_TRUE(result.ok()) << failures(result);
}

TEST(MultiDeviceDeterminism, IdenticalAcrossThreadCounts)
{
    // Same contract as the single-device PDES identity suite: engine
    // runs (simThreads >= 1) are bitwise identical at every thread
    // count, now with cross-device traffic arbitrating the shared
    // inter-device link at barriers.
    RunResult baseline;
    for (unsigned threads : {1u, 2u, 4u, 8u}) {
        auto workload = makeScaled("FAM_G", 30);
        SystemConfig config = smallMachine(ProtocolConfig::dd());
        config.execution.simThreads = threads;
        System sys(config);
        RunResult result = sys.run(*workload);
        ASSERT_TRUE(result.ok()) << "simThreads=" << threads << "\n"
                                 << failures(result);
        if (threads == 1) {
            baseline = result;
            continue;
        }
        EXPECT_EQ(result.cycles, baseline.cycles)
            << "simThreads=" << threads;
        EXPECT_DOUBLE_EQ(result.energyTotal, baseline.energyTotal);
        EXPECT_DOUBLE_EQ(result.trafficTotal, baseline.trafficTotal);
        for (std::size_t c = 0; c < result.traffic.size(); ++c)
            EXPECT_DOUBLE_EQ(result.traffic[c], baseline.traffic[c]);
    }
}

// ---------------------------------------------------------------------
// Device-scope synchronization litmus
// ---------------------------------------------------------------------

namespace
{

/**
 * Message passing through a *device-scope* flag. The producer always
 * runs on device 0's CU 0; the consumer runs either on another CU of
 * device 0 (well-scoped: device scope covers both) or on device 1
 * (mis-scoped: only global scope crosses the link). The controllers
 * conservatively treat device scope like global scope, so the data
 * always arrives functionally — the mis-scoped variant is precisely
 * the bug class only the race detector can catch, as a scope race.
 */
class DeviceScopeMp : public Workload
{
  public:
    DeviceScopeMp(bool cross_device, Scope scope)
        : _crossDevice(cross_device), _scope(scope)
    {
    }

    std::string name() const override { return "litmus-device-mp"; }

    void
    init(WorkloadEnv &env) override
    {
        _data = env.alloc(kLineBytes);
        _flag = env.alloc(kLineBytes);
        _result = env.alloc(kLineBytes);
        // TB assignment is round-robin over global CUs, so TB index
        // cusPerDevice lands on device 1's first CU.
        _consumerTb = _crossDevice ? env.cusPerDevice() : 1;
    }

    KernelInfo
    kernelInfo(unsigned) const override
    {
        return {_consumerTb + 1};
    }

    SimTask
    tbMain(TbContext &ctx) override
    {
        if (ctx.tbGlobal() == 0) {
            co_await ctx.store(_data, 2026);
            co_await ctx.atomic(ctx.atomicStore(_flag, 1, _scope));
            co_return;
        }
        if (ctx.tbGlobal() == _consumerTb) {
            while (true) {
                std::uint32_t f = co_await ctx.atomic(
                    ctx.atomicLoad(_flag, _scope));
                if (f == 1)
                    break;
            }
            std::uint32_t v = co_await ctx.load(_data);
            co_await ctx.store(_result, v);
        }
        co_return;
    }

    std::vector<std::string>
    check(WorkloadEnv &env) override
    {
        std::vector<std::string> failures;
        if (env.debugRead(_result) != 2026) {
            failures.push_back("consumer read stale data (got " +
                               std::to_string(env.debugRead(_result)) +
                               ")");
        }
        return failures;
    }

  private:
    bool _crossDevice;
    Scope _scope;
    unsigned _consumerTb = 1;
    Addr _data = 0, _flag = 0, _result = 0;
};

RunResult
runDeviceLitmus(Workload &workload, const ProtocolConfig &proto)
{
    SystemConfig config = smallMachine(proto);
    config.checking.raceCheckEnabled = true;
    System sys(config);
    return sys.run(workload);
}

} // namespace

namespace
{
class DeviceScopeHrf : public ::testing::TestWithParam<ProtocolConfig>
{
};
class DeviceScopeDrf : public ::testing::TestWithParam<ProtocolConfig>
{
};
} // namespace

TEST_P(DeviceScopeHrf, WellScopedSameDeviceIsRaceFree)
{
    DeviceScopeMp workload(false, Scope::Device);
    RunResult result = runDeviceLitmus(workload, GetParam());
    EXPECT_TRUE(result.ok()) << failures(result);
    ASSERT_TRUE(result.races.enabled);
    EXPECT_EQ(result.races.racesDetected, 0u);
    EXPECT_GT(result.races.hbEdges, 0u);
}

TEST_P(DeviceScopeHrf, MisscopedCrossDeviceFenceIsAScopeRace)
{
    // Device-scope release on device 0, device-scope acquire on
    // device 1: functionally delivered (conservative controllers),
    // but ordered only under the as-if-global shadow clock.
    DeviceScopeMp workload(true, Scope::Device);
    RunResult result = runDeviceLitmus(workload, GetParam());
    EXPECT_FALSE(result.ok());
    ASSERT_TRUE(result.races.enabled);
    ASSERT_GE(result.races.racesDetected, 1u);
    for (const auto &race : result.races.races)
        EXPECT_EQ(race.kind, analysis::RaceKind::Scope);
}

TEST_P(DeviceScopeHrf, GlobalScopeCrossDeviceIsRaceFree)
{
    DeviceScopeMp workload(true, Scope::Global);
    RunResult result = runDeviceLitmus(workload, GetParam());
    EXPECT_TRUE(result.ok()) << failures(result);
    ASSERT_TRUE(result.races.enabled);
    EXPECT_EQ(result.races.racesDetected, 0u);
}

INSTANTIATE_TEST_SUITE_P(HrfConfigs, DeviceScopeHrf,
                         ::testing::Values(ProtocolConfig::gh(),
                                           ProtocolConfig::dh()),
                         ConfigName());

TEST_P(DeviceScopeDrf, MisscopedFenceIsHarmlessWithoutScopes)
{
    // DRF configs ignore the scope annotation (every sync is global):
    // the paper's argument, demonstrated across the device boundary.
    DeviceScopeMp workload(true, Scope::Device);
    RunResult result = runDeviceLitmus(workload, GetParam());
    EXPECT_TRUE(result.ok()) << failures(result);
    ASSERT_TRUE(result.races.enabled);
    EXPECT_EQ(result.races.racesDetected, 0u);
}

INSTANTIATE_TEST_SUITE_P(DrfConfigs, DeviceScopeDrf,
                         ::testing::Values(ProtocolConfig::gd(),
                                           ProtocolConfig::dd(),
                                           ProtocolConfig::ddro(),
                                           ProtocolConfig::ddse()),
                         ConfigName());

// ---------------------------------------------------------------------
// DD+SE memory-side sync engine
// ---------------------------------------------------------------------

namespace
{

double
sumBankStat(System &sys, const std::string &stat)
{
    double total = 0.0;
    for (unsigned bank = 0; bank < sys.numL2Banks(); ++bank) {
        const stats::Scalar *s = sys.stats().find(
            "l2b" + std::to_string(bank) + "." + stat);
        if (s)
            total += s->value();
    }
    return total;
}

} // namespace

TEST(SyncEngine, AtomicsExecuteAtTheBank)
{
    auto workload = makeScaled("FAM_G", 30);
    SystemConfig config;
    config.protocol = ProtocolConfig::ddse();
    System sys(config);
    RunResult result = sys.run(*workload);
    EXPECT_TRUE(result.ok()) << failures(result);
    // Every global-scope atomic performed at a bank's sync engine,
    // not through L1 sync-word registration.
    EXPECT_GT(sumBankStat(sys, "engine_syncs"), 0.0);
    EXPECT_EQ(sumBankStat(sys, "sync_registrations"), 0.0);
}

TEST(SyncEngine, ConfigColumnIsDistinct)
{
    ProtocolConfig ddse = ProtocolConfig::ddse();
    EXPECT_EQ(ddse.shortName(), "DD+SE");
    EXPECT_TRUE(ddse.syncEngine);
    EXPECT_FALSE(ProtocolConfig::dd().syncEngine);
}

TEST(SyncEngine, ReclaimsDataRegisteredWord)
{
    // A plain store registers the word to CU 0's L1 (DeNovo data
    // registration). A later sync-engine atomic from another CU must
    // pull the word back to the bank, perform there, and leave the
    // word bank-resident.
    SystemConfig config;
    config.protocol = ProtocolConfig::ddse();
    System sys(config);
    const Addr addr = System::kAllocBase;

    doStore(sys, 0, addr, 5);
    doDrain(sys, 0); // drain the store buffer: CU 0 registers the word

    unsigned bank = static_cast<unsigned>(
        (addr / kLineBytes) % sys.numL2Banks());
    auto *registry = as<DenovoL2Bank>(sys.l2Bank(bank));
    ASSERT_NE(registry, nullptr);
    ASSERT_NE(registry->ownerOf(addr), kNoNode);

    std::uint32_t old = doSync(
        sys, 1, makeSync(AtomicFunc::FetchAdd, addr, 3));
    EXPECT_EQ(old, 5u);

    EXPECT_EQ(registry->peekWord(addr), 8u);
    EXPECT_EQ(registry->ownerOf(addr), kNoNode);
    EXPECT_GT(sumBankStat(sys, "engine_syncs"), 0.0);
}

TEST(SyncEngine, QueuedSyncsPerformInArrivalOrder)
{
    // Two engine syncs race a registered word: both must queue behind
    // the reclaim and perform FIFO; the final value sees both.
    SystemConfig config;
    config.protocol = ProtocolConfig::ddse();
    System sys(config);
    const Addr addr = System::kAllocBase;

    doStore(sys, 0, addr, 100);
    doDrain(sys, 0);

    std::uint32_t first = 0, second = 0;
    bool done1 = false, done2 = false;
    sys.l1(1).sync(makeSync(AtomicFunc::FetchAdd, addr, 1),
                   [&](std::uint32_t v) {
                       first = v;
                       done1 = true;
                   });
    sys.l1(2).sync(makeSync(AtomicFunc::FetchAdd, addr, 10),
                   [&](std::uint32_t v) {
                       second = v;
                       done2 = true;
                   });
    drainEvents(sys);
    ASSERT_TRUE(done1 && done2);
    EXPECT_EQ(first, 100u);
    EXPECT_EQ(second, 101u);

    unsigned bank = static_cast<unsigned>(
        (addr / kLineBytes) % sys.numL2Banks());
    EXPECT_EQ(as<DenovoL2Bank>(sys.l2Bank(bank))->peekWord(addr),
              111u);
}

TEST(SyncEngine, WorksAcrossDevices)
{
    // Cross-device kernel: data written on device 0 in kernel 0 is
    // atomically accumulated from both devices in kernel 1 through
    // the home bank's sync engine.
    auto workload = makeScaled("SPM_G", 30);
    SystemConfig config = smallMachine(ProtocolConfig::ddse());
    config.checking.raceCheckEnabled = true;
    System sys(config);
    RunResult result = sys.run(*workload);
    EXPECT_TRUE(result.ok()) << failures(result);
    EXPECT_EQ(result.races.racesDetected, 0u);
    EXPECT_GT(sumBankStat(sys, "engine_syncs"), 0.0);
}
