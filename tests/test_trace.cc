/**
 * @file
 * Tests for the transaction-trace subsystem: the TraceSink ring
 * buffer and transaction latency accounting, the protocol event
 * sequences each coherence configuration emits at its seams, the
 * Chrome trace-event JSON exporter, and — the property the figures
 * depend on — that disabled tracing leaves the simulated RunResult
 * bitwise identical.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <string>

#include "test_util.hh"
#include "trace/trace_sink.hh"
#include "workloads/registry.hh"

using namespace nosync;
using namespace nosync::test;

namespace
{

constexpr Addr kData = 0x10000;

/** Read a whole file into a string. */
std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
}

/**
 * Minimal structural JSON validation: every brace/bracket balances,
 * respecting string literals and escapes. The CI job additionally
 * parses traced output with Python's json module against the
 * checked-in schema; this keeps the core property in-tree.
 */
bool
jsonBalanced(const std::string &text)
{
    std::vector<char> stack;
    bool in_string = false;
    bool escaped = false;
    for (char c : text) {
        if (in_string) {
            if (escaped)
                escaped = false;
            else if (c == '\\')
                escaped = true;
            else if (c == '"')
                in_string = false;
            continue;
        }
        switch (c) {
          case '"': in_string = true; break;
          case '{': stack.push_back('}'); break;
          case '[': stack.push_back(']'); break;
          case '}':
          case ']':
            if (stack.empty() || stack.back() != c)
                return false;
            stack.pop_back();
            break;
          default: break;
        }
    }
    return stack.empty() && !in_string;
}

SystemConfig
tracedConfig(const ProtocolConfig &proto)
{
    SystemConfig config;
    config.protocol = proto;
    config.observability.traceEnabled = true;
    return config;
}

} // namespace

TEST(TraceSink, RecordsEventsOldestFirst)
{
    stats::StatSet stats;
    trace::TraceSink sink(stats);
    sink.record(10, trace::Phase::L1MissIssue, 3, kData, 0, 0xffff);
    sink.record(12, trace::Phase::FlitEnqueue, 3, 0, 0, 2);
    EXPECT_EQ(sink.recorded(), 2u);
    EXPECT_EQ(sink.size(), 2u);
    EXPECT_EQ(sink.dropped(), 0u);
    EXPECT_EQ(sink.event(0).tick, 10u);
    EXPECT_EQ(sink.event(0).phase, trace::Phase::L1MissIssue);
    EXPECT_EQ(sink.event(0).addr, kData);
    EXPECT_EQ(sink.event(0).aux, 0xffffu);
    EXPECT_EQ(sink.event(1).phase, trace::Phase::FlitEnqueue);
    EXPECT_EQ(sink.countPhase(trace::Phase::L1MissIssue), 1u);
    EXPECT_EQ(sink.countPhase(trace::Phase::L1RegAck), 0u);
}

TEST(TraceSink, RingOverwritesOldestPastCapacity)
{
    stats::StatSet stats;
    trace::TraceSink sink(stats, 8);
    for (Tick t = 0; t < 12; ++t)
        sink.record(t, trace::Phase::FlitDeliver, 0, 0);
    EXPECT_EQ(sink.recorded(), 12u);
    EXPECT_EQ(sink.size(), 8u);
    EXPECT_EQ(sink.dropped(), 4u);
    // The retained window is the newest 8 events, oldest first.
    EXPECT_EQ(sink.event(0).tick, 4u);
    EXPECT_EQ(sink.event(7).tick, 11u);
    // Lifetime phase counts are unaffected by ring recycling.
    EXPECT_EQ(sink.countPhase(trace::Phase::FlitDeliver), 12u);
}

TEST(TraceSink, TransactionsFeedLatencyDistributions)
{
    stats::StatSet stats;
    trace::TraceSink sink(stats);
    std::uint64_t a = sink.beginTxn(trace::TxnClass::Load, 100, 2,
                                    kData);
    std::uint64_t b = sink.beginTxn(trace::TxnClass::SyncAcquire, 100,
                                    3, kData + 4);
    EXPECT_NE(a, 0u);
    EXPECT_NE(b, a);
    EXPECT_EQ(sink.openTxns(), 2u);
    sink.endTxn(a, 140);
    sink.endTxn(b, 300);
    EXPECT_EQ(sink.openTxns(), 0u);

    const stats::Distribution &load =
        sink.latency(trace::TxnClass::Load);
    EXPECT_EQ(load.count(), 1u);
    EXPECT_DOUBLE_EQ(load.max(), 40.0);
    const stats::Distribution &acq =
        sink.latency(trace::TxnClass::SyncAcquire);
    EXPECT_EQ(acq.count(), 1u);
    EXPECT_DOUBLE_EQ(acq.max(), 200.0);
    EXPECT_EQ(sink.latency(trace::TxnClass::Store).count(), 0u);

    // The distributions live in the owning StatSet under typed names.
    EXPECT_NE(stats.findDistribution("trace.latency.load"), nullptr);
    ASSERT_EQ(sink.completed().size(), 2u);
    EXPECT_EQ(sink.completed()[0].id, a);
    EXPECT_EQ(sink.completed()[0].node, 2);
}

TEST(TraceSink, ChromeJsonIsBalancedAndTyped)
{
    stats::StatSet stats;
    trace::TraceSink sink(stats);
    std::uint64_t txn = sink.beginTxn(trace::TxnClass::Store, 5, 1,
                                      kData);
    sink.record(6, trace::Phase::L1WriteThrough, 1, kData, 0, 1);
    sink.endTxn(txn, 20);

    std::string path = testing::TempDir() + "trace_unit.json";
    ASSERT_TRUE(sink.writeChromeJson(path));
    std::string text = slurp(path);
    EXPECT_TRUE(jsonBalanced(text)) << text;
    EXPECT_NE(text.find("\"traceEvents\":["), std::string::npos);
    EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(text.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(text.find("\"name\":\"store\""), std::string::npos);
    EXPECT_NE(text.find("\"name\":\"L1WriteThrough\""),
              std::string::npos);
}

TEST(TraceProtocol, DenovoDrainEmitsRegistrationRoundTrip)
{
    // Scripted two-CU DD sequence: a drained store must register
    // ownership at the home L2 — miss issue, registration issue, an
    // ownership change at the registry, and the returning ack.
    System sys(tracedConfig(ProtocolConfig::dd()));
    ASSERT_NE(sys.trace(), nullptr);
    doStore(sys, 0, kData, 7);
    doDrain(sys, 0);
    trace::TraceSink &sink = *sys.trace();
    EXPECT_GE(sink.countPhase(trace::Phase::L1RegIssue), 1u);
    EXPECT_GE(sink.countPhase(trace::Phase::L2OwnerChange), 1u);
    EXPECT_GE(sink.countPhase(trace::Phase::L1RegAck), 1u);
    EXPECT_GE(sink.countPhase(trace::Phase::FlitEnqueue), 1u);
    EXPECT_GE(sink.countPhase(trace::Phase::FlitDeliver), 1u);
    // DeNovo never writes data through to the L2 on a drain.
    EXPECT_EQ(sink.countPhase(trace::Phase::L1WriteThrough), 0u);
    EXPECT_EQ(sink.countPhase(trace::Phase::L2WriteThrough), 0u);

    // A remote read of the registered word is forwarded to the owner.
    EXPECT_EQ(doLoad(sys, 1, kData), 7u);
    EXPECT_GE(sink.countPhase(trace::Phase::L2Forward), 1u);
}

TEST(TraceProtocol, GpuDrainEmitsWritethroughsNotRegistrations)
{
    // The same scripted sequence under GD: stores write through to
    // the L2 and no ownership machinery exists to fire.
    System sys(tracedConfig(ProtocolConfig::gd()));
    ASSERT_NE(sys.trace(), nullptr);
    doStore(sys, 0, kData, 7);
    doDrain(sys, 0);
    trace::TraceSink &sink = *sys.trace();
    EXPECT_GE(sink.countPhase(trace::Phase::L1WriteThrough), 1u);
    EXPECT_GE(sink.countPhase(trace::Phase::L2WriteThrough), 1u);
    EXPECT_EQ(sink.countPhase(trace::Phase::L1RegIssue), 0u);
    EXPECT_EQ(sink.countPhase(trace::Phase::L2OwnerChange), 0u);
    EXPECT_EQ(sink.countPhase(trace::Phase::L2Forward), 0u);

    // A load miss from the other CU is served by the home bank.
    EXPECT_EQ(doLoad(sys, 1, kData), 7u);
    EXPECT_GE(sink.countPhase(trace::Phase::L1MissIssue), 1u);
    EXPECT_GE(sink.countPhase(trace::Phase::L2ReadServe), 1u);
}

TEST(TraceRun, DisabledTracingLeavesRunResultBitwiseIdentical)
{
    auto run = [](bool traced) {
        auto workload = makeScaled("NN", 10);
        SystemConfig config;
        config.protocol = ProtocolConfig::dd();
        config.observability.traceEnabled = traced;
        System system(config);
        return system.run(*workload);
    };
    RunResult off = run(false);
    RunResult on = run(true);

    ASSERT_TRUE(off.ok());
    ASSERT_TRUE(on.ok());
    // Bitwise-identical simulated state: tracing observes, never
    // perturbs. (Host-side timing lives in RunResult::host and the
    // latency summaries only exist on the traced run.)
    EXPECT_EQ(off.cycles, on.cycles);
    EXPECT_EQ(off.energy, on.energy);
    EXPECT_EQ(off.energyTotal, on.energyTotal);
    EXPECT_EQ(off.traffic, on.traffic);
    EXPECT_EQ(off.trafficTotal, on.trafficTotal);
    EXPECT_EQ(off.checkFailures, on.checkFailures);

    EXPECT_TRUE(off.syncLatency.empty());
    EXPECT_FALSE(on.syncLatency.empty());
}

TEST(TraceRun, TracedRunReportsPerClassLatencies)
{
    auto workload = makeScaled("FAM_G", 10);
    SystemConfig config;
    config.protocol = ProtocolConfig::dd();
    config.observability.traceEnabled = true;
    System system(config);
    RunResult result = system.run(*workload);
    ASSERT_TRUE(result.ok());

    bool saw_sync = false;
    for (const auto &lat : result.syncLatency) {
        EXPECT_GT(lat.count, 0u);
        EXPECT_LE(lat.p50, lat.p95);
        EXPECT_LE(lat.p95, lat.max);
        if (lat.cls.rfind("sync_", 0) == 0)
            saw_sync = true;
    }
    EXPECT_TRUE(saw_sync)
        << "a sync-heavy workload must sample sync latencies";

    // No transaction may leak past workload completion.
    EXPECT_EQ(system.trace()->openTxns(), 0u);
}

TEST(TraceRun, FullRunChromeJsonIsBalanced)
{
    auto workload = makeScaled("SS_L", 10);
    SystemConfig config;
    config.protocol = ProtocolConfig::gd();
    config.observability.traceEnabled = true;
    System system(config);
    RunResult result = system.run(*workload);
    ASSERT_TRUE(result.ok());

    std::string path = testing::TempDir() + "trace_full_run.json";
    ASSERT_TRUE(system.trace()->writeChromeJson(path));
    std::string text = slurp(path);
    EXPECT_TRUE(jsonBalanced(text));
    EXPECT_NE(text.find("\"events_recorded\":"), std::string::npos);
    EXPECT_NE(text.find("\"name\":\"KernelLaunch\""),
              std::string::npos);
}
