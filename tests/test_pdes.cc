/**
 * @file
 * PDES engine tests: the conservative-time-window parallel engine
 * (SystemConfig::simThreads >= 1) must produce bitwise-identical
 * simulated output at every thread count — metrics, trace JSON, race
 * reports — including under fault injection, because the merged
 * event order depends only on the fixed per-node domain partition,
 * never on thread packing. Plus direct engine unit tests and the
 * strict --sim-threads flag parse.
 */

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "core/system.hh"
#include "sim/pdes.hh"
#include "test_util.hh"
#include "workloads/registry.hh"

using namespace nosync;
using namespace nosync::test;

namespace
{

SystemConfig
engineConfig(const ProtocolConfig &proto, unsigned threads)
{
    SystemConfig config;
    config.protocol = proto;
    config.execution.simThreads = threads;
    return config;
}

RunResult
runEngine(const std::string &name, const ProtocolConfig &proto,
          unsigned threads,
          const std::function<void(SystemConfig &)> &tweak = {})
{
    auto workload = makeScaled(name, 10);
    SystemConfig config = engineConfig(proto, threads);
    if (tweak)
        tweak(config);
    System system(config);
    return system.run(*workload);
}

/** Every simulated field that the figures and reports derive from. */
void
expectSimIdentical(const RunResult &a, const RunResult &b,
                   const std::string &what)
{
    EXPECT_EQ(a.cycles, b.cycles) << what;
    EXPECT_EQ(a.energyTotal, b.energyTotal) << what;
    EXPECT_EQ(a.trafficTotal, b.trafficTotal) << what;
    EXPECT_EQ(a.energy, b.energy) << what;
    EXPECT_EQ(a.traffic, b.traffic) << what;
    EXPECT_EQ(a.checkFailures, b.checkFailures) << what;
    EXPECT_EQ(a.hang.has_value(), b.hang.has_value()) << what;
    EXPECT_EQ(a.races.racesDetected, b.races.racesDetected) << what;
    ASSERT_EQ(a.syncLatency.size(), b.syncLatency.size()) << what;
    for (std::size_t i = 0; i < a.syncLatency.size(); ++i) {
        EXPECT_EQ(a.syncLatency[i].cls, b.syncLatency[i].cls) << what;
        EXPECT_EQ(a.syncLatency[i].count, b.syncLatency[i].count)
            << what;
        EXPECT_EQ(a.syncLatency[i].p50, b.syncLatency[i].p50) << what;
        EXPECT_EQ(a.syncLatency[i].p95, b.syncLatency[i].p95) << what;
        EXPECT_EQ(a.syncLatency[i].max, b.syncLatency[i].max) << what;
    }
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << "cannot read " << path;
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

class PdesConfigs : public ::testing::TestWithParam<ProtocolConfig>
{
};

} // namespace

// ---------------------------------------------------------------------
// Direct engine unit tests.
// ---------------------------------------------------------------------

TEST(PdesEngine, ShardEventsAllExecuteAndClocksAdvance)
{
    EventQueue coordinator;
    PdesEngine engine(4, 2, 8, coordinator);
    EXPECT_EQ(engine.numDomains(), 4u);
    EXPECT_EQ(engine.window(), 8u);

    // Each shard runs a self-rescheduling chain; chains never cross
    // domains, so any window schedule must execute all of them.
    std::array<unsigned, 4> fired{};
    for (unsigned d = 0; d < 4; ++d) {
        EventQueue &shard = engine.shard(d);
        shard.schedule(3 + d, [&engine, &fired, d] {
            ++fired[d];
            engine.shard(d).schedule(engine.shard(d).now() + 20,
                                     [&fired, d] { ++fired[d]; });
        });
    }

    PdesEngine::Hooks hooks;
    Tick reached = engine.run(1'000, hooks);
    EXPECT_GE(reached, 24u); // last chain tail: 3 + 3 + 20
    for (unsigned d = 0; d < 4; ++d) {
        EXPECT_EQ(fired[d], 2u) << "domain " << d;
        EXPECT_GE(engine.shard(d).now(), 23u + d);
    }
    EXPECT_EQ(engine.executed(), 8u);
}

TEST(PdesEngine, NotificationsRunInCoordinatorContextAtBarriers)
{
    EventQueue coordinator;
    PdesEngine engine(2, 2, 4, coordinator);

    // A domain event posts a notification; it must replay outside any
    // domain (currentDomain() == -1) with the coordinator at or past
    // the posting tick.
    int domain_at_post = -2;
    int domain_at_run = -2;
    Tick note_tick = 0;
    engine.shard(1).schedule(6, [&] {
        domain_at_post = PdesEngine::currentDomain();
        engine.postNotification([&] {
            domain_at_run = PdesEngine::currentDomain();
            note_tick = engine.coordinator().now();
        });
    });

    PdesEngine::Hooks hooks;
    engine.run(1'000, hooks);
    EXPECT_EQ(domain_at_post, 1);
    EXPECT_EQ(domain_at_run, -1);
    EXPECT_GE(note_tick, 6u);
}

TEST(PdesEngine, CrossDomainSendsDrainInDepositOrder)
{
    EventQueue coordinator;
    PdesEngine engine(3, 1, 16, coordinator);

    // Two domains deposit sends in the same window; the drain hook
    // must observe them in domain-major order (stable within a
    // domain), independent of event interleaving.
    for (unsigned d : {2u, 0u}) {
        engine.shard(d).schedule(2, [&engine, d] {
            PdesEngine::MeshSend send;
            send.src = static_cast<int>(d);
            send.dst = static_cast<int>((d + 1) % 3);
            send.flits = 1;
            send.sent = engine.shard(d).now();
            engine.pushSend(std::move(send));
        });
    }

    std::vector<int> drained;
    PdesEngine::Hooks hooks;
    hooks.drainSends = [&](std::vector<PdesEngine::MeshSend> &sends,
                           Tick) {
        for (const auto &send : sends)
            drained.push_back(send.src);
    };
    engine.run(1'000, hooks);
    ASSERT_EQ(drained.size(), 2u);
    EXPECT_EQ(drained[0], 0);
    EXPECT_EQ(drained[1], 2);
}

// ---------------------------------------------------------------------
// Whole-system identity across thread counts.
// ---------------------------------------------------------------------

// The headline property: for each studied configuration, three
// structurally different workloads (local fine-grained sync, global
// barriers, task stealing) produce bitwise-identical simulated
// results at --sim-threads 1, 2, 4 and 8.
TEST_P(PdesConfigs, IdenticalAcrossThreadCounts)
{
    for (const char *name : {"FAM_L", "TB_LG", "UTS"}) {
        RunResult baseline = runEngine(name, GetParam(), 1);
        EXPECT_TRUE(baseline.ok())
            << name << " on " << GetParam().shortName();
        for (unsigned threads : {2u, 4u, 8u}) {
            RunResult parallel = runEngine(name, GetParam(), threads);
            expectSimIdentical(baseline, parallel,
                               std::string(name) + " on " +
                                   GetParam().shortName() + " threads=" +
                                   std::to_string(threads));
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllConfigs, PdesConfigs,
                         ::testing::ValuesIn(test::allConfigs()),
                         test::ConfigName());

// Identity must survive fault injection: the per-node fault lanes
// re-seed deterministically from (seed, node), so chaos runs are as
// schedule-independent as clean ones.
TEST(PdesIdentity, HoldsUnderFaultInjection)
{
    for (std::uint64_t seed : {1u, 2u, 3u}) {
        auto faulted = [seed](SystemConfig &config) {
            config.execution.faults.enabled = true;
            config.execution.faults.seed = seed;
        };
        RunResult baseline =
            runEngine("FAM_G", ProtocolConfig::dd(), 1, faulted);
        EXPECT_TRUE(baseline.ok()) << "fault seed " << seed;
        for (unsigned threads : {2u, 4u}) {
            RunResult parallel = runEngine(
                "FAM_G", ProtocolConfig::dd(), threads, faulted);
            expectSimIdentical(baseline, parallel,
                               "FAM_G faults seed " +
                                   std::to_string(seed) + " threads=" +
                                   std::to_string(threads));
        }
    }
}

// Observability output is part of the contract: the trace ring and
// race report must serialize to byte-identical JSON at any thread
// count (staged per-domain, merged in canonical order at barriers).
TEST(PdesIdentity, TraceAndRaceJsonAreByteIdentical)
{
    std::string dir = ::testing::TempDir();
    auto observe = [](SystemConfig &config) {
        config.observability.traceEnabled = true;
        config.checking.raceCheckEnabled = true;
    };

    std::array<std::string, 2> trace_paths;
    std::array<std::string, 2> race_paths;
    const unsigned threads[2] = {1, 4};
    for (int i = 0; i < 2; ++i) {
        auto workload = makeScaled("SPM_L", 10);
        SystemConfig config =
            engineConfig(ProtocolConfig::dh(), threads[i]);
        observe(config);
        System system(config);
        RunResult result = system.run(*workload);
        EXPECT_TRUE(result.ok()) << "threads=" << threads[i];

        trace_paths[i] =
            dir + "/pdes_trace_" + std::to_string(threads[i]) + ".json";
        race_paths[i] =
            dir + "/pdes_race_" + std::to_string(threads[i]) + ".json";
        ASSERT_TRUE(system.trace()->writeChromeJson(trace_paths[i]));
        ASSERT_TRUE(analysis::writeRaceJson(result.races,
                                            race_paths[i]));
    }

    EXPECT_EQ(slurp(trace_paths[0]), slurp(trace_paths[1]))
        << "trace JSON diverged between --sim-threads=1 and 4";
    EXPECT_EQ(slurp(race_paths[0]), slurp(race_paths[1]))
        << "race JSON diverged between --sim-threads=1 and 4";
    for (int i = 0; i < 2; ++i) {
        std::remove(trace_paths[i].c_str());
        std::remove(race_paths[i].c_str());
    }
}

// ---------------------------------------------------------------------
// Flag parsing.
// ---------------------------------------------------------------------

TEST(PdesFlagDeathTest, MalformedSimThreadsExitsTwo)
{
    auto parse_one = [](const char *arg) {
        const char *argv[] = {"harness", arg};
        bench::Options::parse(2, const_cast<char **>(argv));
    };
    // Same strict-parse contract as --max-cycles: garbage must not
    // silently run the serial path and report engine numbers.
    EXPECT_EXIT(parse_one("--sim-threads="),
                ::testing::ExitedWithCode(2), "--sim-threads expects");
    EXPECT_EXIT(parse_one("--sim-threads=abc"),
                ::testing::ExitedWithCode(2), "--sim-threads expects");
    EXPECT_EXIT(parse_one("--sim-threads=4x"),
                ::testing::ExitedWithCode(2), "--sim-threads expects");
    EXPECT_EXIT(parse_one("--sim-threads=0"),
                ::testing::ExitedWithCode(2), "--sim-threads expects");
    EXPECT_EXIT(parse_one("--sim-threads=99999999999999999999"),
                ::testing::ExitedWithCode(2), "--sim-threads expects");
}

TEST(PdesFlag, WellFormedSimThreadsParses)
{
    const char *argv[] = {"harness", "--sim-threads=4"};
    bench::Options opts =
        bench::Options::parse(2, const_cast<char **>(argv));
    EXPECT_EQ(opts.simThreads, 4u);
}
