/**
 * @file
 * Additional litmus tests: IRIW-style coherence of sync accesses,
 * lock-handoff chains across every CU, dynamic work migration, and
 * DD+RO region-safety (read-only words never mask true updates made
 * before the region was in use).
 */

#include <gtest/gtest.h>

#include "test_util.hh"
#include "workloads/sync_primitives.hh"

using namespace nosync;
using namespace nosync::test;

namespace
{

/**
 * IRIW with sync accesses: two writers write x and y; two readers
 * read (x then y) and (y then x). Under SC-for-sync, the two readers
 * must not disagree on the order of the writes: outcome
 * r1=(1,0) with r2=(1,0) is forbidden (it would order x<y and y<x).
 */
class Iriw : public Workload
{
  public:
    std::string name() const override { return "litmus-iriw"; }

    void
    init(WorkloadEnv &env) override
    {
        _x = env.alloc(kLineBytes);
        _y = env.alloc(kLineBytes);
        _r = env.alloc(kLineBytes);
    }

    KernelInfo kernelInfo(unsigned) const override { return {4}; }

    SimTask
    tbMain(TbContext &ctx) override
    {
        switch (ctx.tbGlobal()) {
          case 0:
            co_await ctx.atomic(
                ctx.atomicStore(_x, 1, Scope::Global));
            break;
          case 1:
            co_await ctx.atomic(
                ctx.atomicStore(_y, 1, Scope::Global));
            break;
          case 2: {
            std::uint32_t a = co_await ctx.atomic(
                ctx.atomicLoad(_x, Scope::Global));
            std::uint32_t b = co_await ctx.atomic(
                ctx.atomicLoad(_y, Scope::Global));
            co_await ctx.store(_r, (a << 1) | b);
            break;
          }
          case 3: {
            std::uint32_t a = co_await ctx.atomic(
                ctx.atomicLoad(_y, Scope::Global));
            std::uint32_t b = co_await ctx.atomic(
                ctx.atomicLoad(_x, Scope::Global));
            co_await ctx.store(_r + 4, (a << 1) | b);
            break;
          }
        }
        co_return;
    }

    std::vector<std::string>
    check(WorkloadEnv &env) override
    {
        std::uint32_t r1 = env.debugRead(_r);
        std::uint32_t r2 = env.debugRead(_r + 4);
        // (saw first, missed second) on both sides = cycle.
        if (r1 == 0b10 && r2 == 0b10)
            return {"IRIW: readers disagreed on the write order"};
        return {};
    }

  private:
    Addr _x = 0, _y = 0, _r = 0;
};

/**
 * Lock handoff chain: a token travels CU to CU under a global spin
 * lock; each hop appends its id to a running hash. Any lost update
 * or stale read breaks the final hash.
 */
class HandoffChain : public Workload
{
  public:
    static constexpr unsigned kHops = 60;

    std::string name() const override { return "litmus-handoff"; }

    void
    init(WorkloadEnv &env) override
    {
        _numCus = env.numCus();
        _lock = env.alloc(kLineBytes);
        _turn = env.alloc(kLineBytes);
        _hash = env.alloc(kLineBytes);
        env.writeInit(_hash, 1);
    }

    KernelInfo kernelInfo(unsigned) const override
    {
        return {_numCus};
    }

    SimTask
    tbMain(TbContext &ctx) override
    {
        MutexAddrs lock{_lock, _lock + kWordBytes};
        for (unsigned hop = 0; hop < kHops; ++hop) {
            if (hop % ctx.numCus() != ctx.tbGlobal())
                continue; // not my turn slot
            // Wait for my turn, then mutate under the lock.
            while (true) {
                std::uint32_t turn = co_await ctx.atomic(
                    ctx.atomicLoad(_turn, Scope::Global));
                if (turn == hop)
                    break;
            }
            MutexTicket t;
            co_await mutexLock(ctx, lock, MutexKind::Spin,
                               Scope::Global, t);
            std::uint32_t h = co_await ctx.load(_hash);
            co_await ctx.store(_hash,
                               h * 31 + ctx.tbGlobal() + 1);
            co_await mutexUnlock(ctx, lock, MutexKind::Spin,
                                 Scope::Global, t);
            co_await ctx.atomic(ctx.atomicStore(_turn, hop + 1,
                                                Scope::Global));
        }
    }

    std::vector<std::string>
    check(WorkloadEnv &env) override
    {
        std::uint32_t expected = 1;
        for (unsigned hop = 0; hop < kHops; ++hop)
            expected = expected * 31 + (hop % _numCus) + 1;
        std::uint32_t got = env.debugRead(_hash);
        if (got != expected) {
            return {"handoff hash " + std::to_string(got) +
                    " != " + std::to_string(expected)};
        }
        return {};
    }

  private:
    unsigned _numCus = 0;
    Addr _lock = 0, _turn = 0, _hash = 0;
};

/**
 * Work migration: items produced on one CU under its local lock are
 * later consumed on another CU via a global queue, mimicking UTS's
 * dynamic sharing with a deterministic final checksum.
 */
class Migration : public Workload
{
  public:
    static constexpr unsigned kItems = 8;

    std::string name() const override { return "litmus-migration"; }

    void
    init(WorkloadEnv &env) override
    {
        _numCus = env.numCus();
        _queue = env.alloc((kItems * _numCus + 4) * kWordBytes);
        _qlock = env.alloc(kLineBytes);
        _qtail = env.alloc(kLineBytes);
        _sum = env.alloc(kLineBytes);
    }

    KernelInfo kernelInfo(unsigned) const override
    {
        return {2 * _numCus};
    }

    SimTask
    tbMain(TbContext &ctx) override
    {
        MutexAddrs qlock{_qlock, _qlock + kWordBytes};
        if (ctx.tbOnCu() == 0) {
            // Producer: push kItems distinct values.
            for (unsigned i = 0; i < kItems; ++i) {
                MutexTicket t;
                co_await mutexLock(ctx, qlock, MutexKind::Spin,
                                   Scope::Global, t);
                std::uint32_t tail = co_await ctx.load(_qtail);
                co_await ctx.store(_queue + tail * kWordBytes,
                                   ctx.cu() * 100 + i + 1);
                co_await ctx.store(_qtail, tail + 1);
                co_await mutexUnlock(ctx, qlock, MutexKind::Spin,
                                     Scope::Global, t);
            }
            co_return;
        }
        // Consumer: pop until the queue stays empty with all
        // producers done (bounded retries keep the test finite).
        std::uint32_t local = 0;
        unsigned dry = 0;
        while (dry < 50) {
            std::uint32_t item = 0;
            MutexTicket t;
            co_await mutexLock(ctx, qlock, MutexKind::Spin,
                               Scope::Global, t);
            std::uint32_t tail = co_await ctx.load(_qtail);
            if (tail > 0) {
                item = co_await ctx.load(_queue +
                                         (tail - 1) * kWordBytes);
                co_await ctx.store(_qtail, tail - 1);
            }
            co_await mutexUnlock(ctx, qlock, MutexKind::Spin,
                                 Scope::Global, t);
            if (item == 0) {
                ++dry;
                co_await ctx.wait(200);
                continue;
            }
            dry = 0;
            local += item;
        }
        if (local != 0) {
            co_await ctx.atomic(ctx.fetchAdd(_sum, local,
                                             Scope::Global));
        }
    }

    std::vector<std::string>
    check(WorkloadEnv &env) override
    {
        std::uint32_t expected = 0;
        for (unsigned cu = 0; cu < _numCus; ++cu) {
            for (unsigned i = 0; i < kItems; ++i)
                expected += cu * 100 + i + 1;
        }
        std::uint32_t got = env.debugRead(_sum);
        // Consumers may exit early leaving items queued; anything
        // consumed must be accounted exactly once.
        std::uint32_t tail = env.debugRead(_qtail);
        std::uint32_t remaining = 0;
        for (std::uint32_t i = 0; i < tail; ++i)
            remaining += env.debugRead(_queue + i * kWordBytes);
        if (got + remaining != expected) {
            return {"migration sum " + std::to_string(got) + " + " +
                    std::to_string(remaining) +
                    " queued != " + std::to_string(expected)};
        }
        return {};
    }

  private:
    unsigned _numCus = 0;
    Addr _queue = 0, _qlock = 0, _qtail = 0, _sum = 0;
};

class LitmusExtra : public ::testing::TestWithParam<ProtocolConfig>
{
  protected:
    RunResult
    runOn(Workload &workload)
    {
        SystemConfig config;
        config.protocol = GetParam();
        config.execution.maxCycles = 100'000'000ull;
        System system(config);
        return system.run(workload);
    }
};

} // namespace

TEST_P(LitmusExtra, IriwScForSync)
{
    Iriw workload;
    RunResult result = runOn(workload);
    EXPECT_TRUE(result.ok()) << result.checkFailures.front();
}

TEST_P(LitmusExtra, LockHandoffChain)
{
    HandoffChain workload;
    RunResult result = runOn(workload);
    EXPECT_TRUE(result.ok()) << result.checkFailures.front();
}

TEST_P(LitmusExtra, WorkMigration)
{
    Migration workload;
    RunResult result = runOn(workload);
    EXPECT_TRUE(result.ok()) << result.checkFailures.front();
}

INSTANTIATE_TEST_SUITE_P(AllConfigs, LitmusExtra,
                         ::testing::ValuesIn(test::allConfigs()),
                         test::ConfigName{});
