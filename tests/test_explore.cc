/**
 * @file
 * Stateless-model-checker tests: the fault injector's perturbation
 * schedule is a pure function of its seed, a recorded decision log
 * replays to the identical run, replay divergence is detected rather
 * than silently absorbed, and the explorer reaches the canonical
 * litmus outcome sets with DPOR pruning agreeing with full
 * enumeration.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/system.hh"
#include "explore/decision_log.hh"
#include "explore/explorer.hh"
#include "explore/exploring_policy.hh"
#include "explore/exploring_scheduler.hh"
#include "explore/litmus.hh"
#include "noc/fault_injector.hh"

using namespace nosync;
using namespace nosync::explore;

namespace
{

/** One perturbation decision, comparable bitwise. */
struct Perturbation
{
    Tick arrival = 0;
    bool duplicated = false;
    Cycles dupDelay = 0;

    bool
    operator==(const Perturbation &other) const
    {
        return arrival == other.arrival &&
               duplicated == other.duplicated &&
               dupDelay == other.dupDelay;
    }
};

/**
 * Drive a FaultInjector through a fixed message pattern and record
 * every decision it makes. The pattern cycles (src, dst, nominal)
 * deterministically so any difference between two traces comes from
 * the injector's own Rng stream.
 */
std::vector<Perturbation>
perturbationSchedule(std::uint64_t seed, int messages)
{
    FaultConfig config;
    config.enabled = true;
    config.seed = seed;
    FaultInjector injector(config);

    std::vector<Perturbation> trace;
    trace.reserve(static_cast<std::size_t>(messages));
    for (int i = 0; i < messages; ++i) {
        NodeId src = static_cast<NodeId>(i % 7);
        NodeId dst = static_cast<NodeId>((i * 3 + 1) % 5);
        Tick nominal = static_cast<Tick>(100 + 13 * i);
        Perturbation p;
        p.arrival = injector.adjust(src, dst, nominal);
        p.duplicated = injector.rollDuplicate();
        if (p.duplicated)
            p.dupDelay = injector.duplicateDelay();
        trace.push_back(p);
    }
    return trace;
}

/** Outcome + decision log of one scripted litmus schedule. */
struct Replay
{
    std::vector<unsigned> consumed;
    DecisionLog log;
    bool diverged = false;
    bool hung = false;
    std::string outcome;
};

Replay
runScripted(const std::string &program, const ProtocolConfig &proto,
            const std::vector<unsigned> &script)
{
    auto workload = makeLitmus(program);
    EXPECT_NE(workload, nullptr) << program;

    SystemConfig config;
    config.protocol = proto;
    config.checking.raceCheckEnabled = true;
    config.execution.maxCycles = 2000000;

    ChoiceScript choices(script);
    DecisionLog log;
    System system(config);
    ExploringScheduler sched(system.eventQueue(), choices, log);
    ExploringPolicy policy(choices, log, 1);
    policy.attach(&system.mesh());
    system.setTbScheduler(&sched);
    system.setDeliveryPolicy(&policy);

    RunResult result = system.run(*workload);

    Replay replay;
    replay.consumed = choices.consumed();
    replay.diverged = choices.diverged();
    replay.log = std::move(log);
    replay.hung = result.hang.has_value();
    if (!replay.hung)
        replay.outcome = workload->outcome(system);
    return replay;
}

std::vector<std::string>
outcomeSet(const CellReport &cell)
{
    std::vector<std::string> set;
    for (const OutcomeCount &entry : cell.outcomes)
        set.push_back(entry.outcome);
    return set;
}

CellReport
exploreOne(const std::string &program, const ProtocolConfig &proto,
        bool dpor)
{
    ExploreBudget budget;
    budget.maxSchedules = 512;
    budget.dpor = dpor;
    SweepRunner runner(1);
    Explorer explorer(budget, runner);
    return explorer.exploreCell(program, proto);
}

} // namespace

// Same seed, same message pattern: the perturbation schedule must be
// bitwise identical run to run — faulted runs replay exactly.
TEST(FaultInjectorDeterminism, SameSeedSameSchedule)
{
    auto a = perturbationSchedule(12345, 2000);
    auto b = perturbationSchedule(12345, 2000);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        ASSERT_TRUE(a[i] == b[i]) << "perturbation " << i
                                  << " differs for the same seed";
}

// A different seed must produce a different schedule (over 2000
// messages the chance of an identical stream is negligible), and the
// injector must actually be perturbing something.
TEST(FaultInjectorDeterminism, DifferentSeedDifferentSchedule)
{
    auto a = perturbationSchedule(12345, 2000);
    auto b = perturbationSchedule(54321, 2000);
    ASSERT_EQ(a.size(), b.size());
    bool differs = false;
    bool perturbed = false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (!(a[i] == b[i]))
            differs = true;
        Tick nominal = static_cast<Tick>(100 + 13 * i);
        if (a[i].arrival != nominal || a[i].duplicated)
            perturbed = true;
    }
    EXPECT_TRUE(differs);
    EXPECT_TRUE(perturbed);
}

// Record/replay round trip: re-running a schedule with its consumed
// choices forced must reproduce the identical decision log and
// outcome, for the default path and for a forced alternative.
TEST(DecisionLogReplay, RoundTripReproducesRun)
{
    for (const std::vector<unsigned> &script :
         {std::vector<unsigned>{}, std::vector<unsigned>{1}}) {
        Replay first = runScripted("mp", ProtocolConfig::gd(), script);
        ASSERT_FALSE(first.hung);
        ASSERT_FALSE(first.diverged);
        ASSERT_FALSE(first.log.points.empty());

        Replay second =
            runScripted("mp", ProtocolConfig::gd(), first.consumed);
        ASSERT_FALSE(second.hung);
        EXPECT_FALSE(second.diverged);
        EXPECT_EQ(first.consumed, second.consumed);
        EXPECT_TRUE(first.log == second.log)
            << "decision log diverged on replay";
        EXPECT_EQ(first.outcome, second.outcome);
    }
}

// The two mp schedule branches reach different outcomes — the
// scheduler's choice points are real, not cosmetic.
TEST(DecisionLogReplay, AlternateBranchChangesOutcome)
{
    Replay def = runScripted("mp", ProtocolConfig::gd(), {});
    Replay alt = runScripted("mp", ProtocolConfig::gd(), {1});
    ASSERT_FALSE(def.hung);
    ASSERT_FALSE(alt.hung);
    EXPECT_EQ(def.outcome, "f=1 d=41");
    EXPECT_EQ(alt.outcome, "f=0");
}

// A script index out of range marks the replay diverged; the driver
// treats that as a hard error instead of exploring a phantom tree.
TEST(DecisionLogReplay, OutOfRangeScriptDiverges)
{
    Replay replay = runScripted("mp", ProtocolConfig::gd(), {17});
    EXPECT_TRUE(replay.diverged);
}

// The explorer must drain mp's frontier and see both outcomes.
TEST(Explorer, MpReachesBothOutcomes)
{
    CellReport cell = exploreOne("mp", ProtocolConfig::gd(), true);
    EXPECT_EQ(cell.verdict, "pass");
    EXPECT_EQ(cell.frontierRemaining, 0u);
    EXPECT_EQ(cell.violationsTotal, 0u);
    EXPECT_EQ(outcomeSet(cell),
              (std::vector<std::string>{"f=0", "f=1 d=41"}));
}

// DPOR prunes only commuting branches: the outcome set must match
// full enumeration exactly while running fewer schedules.
TEST(Explorer, DporMatchesFullEnumeration)
{
    for (const char *program : {"mp", "sb", "lb"}) {
        CellReport pruned =
            exploreOne(program, ProtocolConfig::gd(), true);
        CellReport full =
            exploreOne(program, ProtocolConfig::gd(), false);
        EXPECT_EQ(pruned.verdict, "pass") << program;
        EXPECT_EQ(full.verdict, "pass") << program;
        EXPECT_EQ(outcomeSet(pruned), outcomeSet(full)) << program;
        EXPECT_LE(pruned.schedulesExplored, full.schedulesExplored)
            << program;
        EXPECT_GT(pruned.schedulesPruned, 0u) << program;
    }
}

// The mis-scoped program is the paper's motivating bug: every
// schedule must flag a scope race on the HRF configs and be clean on
// the DRF ones, where the scope annotation cannot weaken anything.
TEST(Explorer, MisscopedRaceExactlyOnHrfConfigs)
{
    CellReport gh = exploreOne("misscoped", ProtocolConfig::gh(), true);
    EXPECT_EQ(gh.verdict, "pass");
    EXPECT_TRUE(gh.expectScopeRace);
    EXPECT_EQ(gh.cleanSchedules, 0u);
    EXPECT_EQ(gh.racySchedules, gh.schedulesExplored);

    CellReport gd = exploreOne("misscoped", ProtocolConfig::gd(), true);
    EXPECT_EQ(gd.verdict, "pass");
    EXPECT_FALSE(gd.expectScopeRace);
    EXPECT_EQ(gd.racySchedules, 0u);
    EXPECT_EQ(gd.cleanSchedules, gd.schedulesExplored);
    EXPECT_EQ(outcomeSet(gd),
              (std::vector<std::string>{"f=1 d=41"}));
}

// The engine-side-sync column behaves exactly like the other DRF
// configs on the suite: same SC outcome sets, misscoped clean (a
// scope annotation cannot weaken unscoped sync), no races anywhere.
TEST(Explorer, DdSeSixthConfigOutcomeSets)
{
    const ProtocolConfig ddse = ProtocolConfig::ddse();

    CellReport mp = exploreOne("mp", ddse, true);
    EXPECT_EQ(mp.verdict, "pass");
    EXPECT_EQ(mp.racySchedules, 0u);
    EXPECT_EQ(outcomeSet(mp),
              (std::vector<std::string>{"f=0", "f=1 d=41"}));

    CellReport sb = exploreOne("sb", ddse, true);
    EXPECT_EQ(sb.verdict, "pass");
    EXPECT_EQ(outcomeSet(sb),
              (std::vector<std::string>{"r0=0 r1=1", "r0=1 r1=0",
                                        "r0=1 r1=1"}));

    CellReport lb = exploreOne("lb", ddse, true);
    EXPECT_EQ(lb.verdict, "pass");
    EXPECT_EQ(outcomeSet(lb),
              (std::vector<std::string>{"r0=0 r1=0", "r0=0 r1=1",
                                        "r0=1 r1=0"}));

    CellReport miss = exploreOne("misscoped", ddse, true);
    EXPECT_EQ(miss.verdict, "pass");
    EXPECT_FALSE(miss.expectScopeRace);
    EXPECT_EQ(miss.racySchedules, 0u);
    EXPECT_EQ(outcomeSet(miss),
              (std::vector<std::string>{"f=1 d=41"}));

    CellReport iriw = exploreOne("iriw", ddse, true);
    EXPECT_EQ(iriw.verdict, "pass");
    EXPECT_EQ(iriw.outcomes.size(), 15u);
    for (const OutcomeCount &outcome : iriw.outcomes)
        EXPECT_NE(outcome.outcome, "a=1 b=0 c=1 d=0");
}

// Device-scope message passing on the single-device litmus machine:
// Device folds into Global, so mp_dev is race-free with the mp
// outcome set on every config — including the scoped HRF ones.
TEST(Explorer, MpDevDeviceScopeFoldsOnSingleDevice)
{
    for (const ProtocolConfig &proto :
         {ProtocolConfig::gd(), ProtocolConfig::gh(),
          ProtocolConfig::dh(), ProtocolConfig::ddse()}) {
        CellReport cell = exploreOne("mp_dev", proto, true);
        EXPECT_EQ(cell.verdict, "pass") << proto.shortName();
        EXPECT_FALSE(cell.expectScopeRace) << proto.shortName();
        EXPECT_EQ(cell.racySchedules, 0u) << proto.shortName();
        EXPECT_EQ(outcomeSet(cell),
                  (std::vector<std::string>{"f=0", "f=1 d=41"}))
            << proto.shortName();
    }
}

// Budget exhaustion degrades to a coverage report with a non-empty
// frontier and the distinct verdict — never a silent pass.
TEST(Explorer, BudgetExhaustionIsLoud)
{
    ExploreBudget budget;
    budget.maxSchedules = 2;
    budget.dpor = false;
    SweepRunner runner(1);
    Explorer explorer(budget, runner);
    CellReport cell =
        explorer.exploreCell("sb", ProtocolConfig::gd());
    EXPECT_EQ(cell.verdict, "budget-exhausted");
    EXPECT_GT(cell.frontierRemaining, 0u);
    EXPECT_EQ(cell.violationsTotal, 0u);
}
