/**
 * @file
 * Per-region protocol specialization (DD+PR) and the graph workload
 * family: RegionMap policy semantics, the streaming write-through
 * path, the stale read-only-mask regression, push-vs-pull output
 * identity, PDES identity for graph workloads, and the schema-enum
 * cross-checks that keep the tools/ JSON schemas in lockstep with
 * the simulator.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "explore/litmus.hh"
#include "test_util.hh"
#include "workloads/graph.hh"
#include "workloads/registry.hh"

using namespace nosync;
using namespace nosync::test;

namespace
{

SystemConfig
protoConfig(const ProtocolConfig &proto)
{
    SystemConfig config;
    config.protocol = proto;
    return config;
}

constexpr Addr kData = 0x10000;
constexpr Addr kLock = 0x20000;

} // namespace

// ---------------------------------------------------------------------
// RegionMap policies
// ---------------------------------------------------------------------

TEST(RegionPolicy, UndeclaredIsOwned)
{
    RegionMap map;
    EXPECT_EQ(map.policyAt(0x1000), RegionPolicy::Owned);
    EXPECT_EQ(map.streamingMask(0x1000), 0u);
    EXPECT_TRUE(map.validate().empty());
}

TEST(RegionPolicy, DeclareStreamingAndReadOnlySeparately)
{
    RegionMap map;
    EXPECT_TRUE(map.declare(0x1000, 0x40, RegionPolicy::ReadOnly));
    EXPECT_TRUE(map.declare(0x2000, 0x40, RegionPolicy::Streaming));
    EXPECT_TRUE(map.isReadOnly(0x1000));
    EXPECT_FALSE(map.isStreaming(0x1000));
    EXPECT_TRUE(map.isStreaming(0x2000));
    EXPECT_EQ(map.readOnlyMask(0x1000), 0xffffu);
    EXPECT_EQ(map.streamingMask(0x2000), 0xffffu);
    EXPECT_EQ(map.streamingMask(0x1000), 0u);
    EXPECT_TRUE(map.validate().empty());
}

TEST(RegionPolicy, CrossPolicyOverlapRejectedAndReported)
{
    RegionMap map;
    EXPECT_TRUE(map.declare(0x1000, 0x100, RegionPolicy::ReadOnly));
    EXPECT_FALSE(map.declare(0x1080, 0x40, RegionPolicy::Streaming));
    ASSERT_EQ(map.validate().size(), 1u);
    EXPECT_NE(map.validate()[0].find("streaming"), std::string::npos);
    EXPECT_NE(map.validate()[0].find("read-only"), std::string::npos);
    // The established range keeps its policy.
    EXPECT_EQ(map.policyAt(0x1080), RegionPolicy::ReadOnly);
    EXPECT_EQ(map.rangeCount(), 1u);
}

TEST(RegionPolicy, CrossPolicyAdjacencyLegalAndNeverMerges)
{
    RegionMap map;
    EXPECT_TRUE(map.declare(0x1000, 0x40, RegionPolicy::ReadOnly));
    EXPECT_TRUE(map.declare(0x1040, 0x40, RegionPolicy::Streaming));
    EXPECT_TRUE(map.validate().empty());
    EXPECT_EQ(map.rangeCount(), 2u);
    EXPECT_EQ(map.policyAt(0x103c), RegionPolicy::ReadOnly);
    EXPECT_EQ(map.policyAt(0x1040), RegionPolicy::Streaming);
}

TEST(RegionPolicy, LineStraddlingTwoPoliciesSplitsTheMasks)
{
    RegionMap map;
    // One 64-byte line: words 0-7 read-only, words 8-15 streaming.
    EXPECT_TRUE(map.declare(0x1000, 0x20, RegionPolicy::ReadOnly));
    EXPECT_TRUE(map.declare(0x1020, 0x20, RegionPolicy::Streaming));
    EXPECT_EQ(map.readOnlyMask(0x1000), 0x00ffu);
    EXPECT_EQ(map.streamingMask(0x1000), 0xff00u);
    EXPECT_TRUE(map.validate().empty());
}

TEST(RegionPolicy, SamePolicyOverlapStillCoalesces)
{
    RegionMap map;
    EXPECT_TRUE(map.declare(0x1000, 0x80, RegionPolicy::Streaming));
    EXPECT_TRUE(map.declare(0x1040, 0x100, RegionPolicy::Streaming));
    EXPECT_EQ(map.rangeCount(), 1u);
    EXPECT_TRUE(map.validate().empty());
    EXPECT_TRUE(map.isStreaming(0x1100));
}

TEST(RegionPolicy, VersionBumpsOnDeclareAndClear)
{
    RegionMap map;
    std::uint32_t v0 = map.version();
    map.declare(0x1000, 0x40, RegionPolicy::ReadOnly);
    std::uint32_t v1 = map.version();
    EXPECT_NE(v0, v1);
    map.clear();
    EXPECT_NE(map.version(), v1);
    EXPECT_TRUE(map.empty());
    EXPECT_TRUE(map.validate().empty());
}

TEST(RegionPolicy, SystemRejectsConflictingWorkloadDeclarations)
{
    // A workload whose init() declares overlapping regions of
    // different policies must be refused before simulation starts.
    class ConflictingWorkload : public Workload
    {
      public:
        std::string name() const override { return "conflict"; }
        void
        init(WorkloadEnv &env) override
        {
            Addr a = env.alloc(0x100);
            env.declareReadOnly(a, 0x100);
            env.declareStreaming(a + 0x40, 0x40);
        }
        KernelInfo kernelInfo(unsigned) const override { return {1}; }
        SimTask tbMain(TbContext &) override { co_return; }
    };
    System sys(protoConfig(ProtocolConfig::ddpr()));
    ConflictingWorkload workload;
    EXPECT_DEATH(sys.run(workload), "region declaration conflict");
}

// ---------------------------------------------------------------------
// DD+PR streaming write-through protocol path
// ---------------------------------------------------------------------

TEST(DdprProtocol, StreamingStoreWritesThroughWithoutRegistration)
{
    System sys(protoConfig(ProtocolConfig::ddpr()));
    sys.regions().declare(kData, kLineBytes, RegionPolicy::Streaming);
    doStore(sys, 0, kData, 5);
    doDrain(sys, 0);
    // The store drained to the home L2 without migrating ownership.
    EXPECT_FALSE(as<DenovoL1Cache>(sys.l1(0))->ownsWord(kData));
    EXPECT_GE(sys.stats().find("l1.0.streaming_writes")->value(), 1.0);
    EXPECT_EQ(sys.debugRead(kData), 5u);
    // A consumer on another CU reads the fresh value from the L2.
    EXPECT_EQ(doLoad(sys, 1, kData), 5u);
}

TEST(DdprProtocol, StreamingWordsStillRegisterUnderPlainDdro)
{
    // Without perRegionPolicy the streaming declaration is inert.
    System sys(protoConfig(ProtocolConfig::ddro()));
    sys.regions().declare(kData, kLineBytes, RegionPolicy::Streaming);
    doStore(sys, 0, kData, 7);
    doDrain(sys, 0);
    EXPECT_TRUE(as<DenovoL1Cache>(sys.l1(0))->ownsWord(kData));
    EXPECT_EQ(doLoad(sys, 1, kData), 7u);
}

TEST(DdprProtocol, StreamingStoreReadableByProducerAfterDrain)
{
    System sys(protoConfig(ProtocolConfig::ddpr()));
    sys.regions().declare(kData, kLineBytes, RegionPolicy::Streaming);
    doStore(sys, 0, kData, 11);
    doDrain(sys, 0);
    EXPECT_EQ(doLoad(sys, 0, kData), 11u);
    doStore(sys, 0, kData, 12); // second phase: overwrite
    doDrain(sys, 0);
    EXPECT_EQ(doLoad(sys, 1, kData), 12u);
    EXPECT_EQ(sys.debugRead(kData), 12u);
}

// ---------------------------------------------------------------------
// Stale read-only mask regression (bugfix)
// ---------------------------------------------------------------------

TEST(DdprProtocol, RedeclaredRegionsInvalidateStaleReadOnlyMasks)
{
    // Fill a line while its words are declared read-only, then
    // re-declare regions (as a kernel boundary would) so the words
    // are writable again. A resident line must not keep honoring the
    // mask it snapshotted at fill: after a writer updates the word
    // and the reader acquires, the reader must see the new value.
    System sys(protoConfig(ProtocolConfig::ddro()));
    sys.declareReadOnly(kData, kLineBytes);
    sys.writeInit(kData, 17);
    EXPECT_EQ(doLoad(sys, 0, kData), 17u);

    // Next kernel: the program no longer declares the region.
    sys.regions().clear();
    doStore(sys, 1, kData, 99);
    doDrain(sys, 1);

    doSync(sys, 0,
           makeSync(AtomicFunc::Load, kLock, 0, 0, Scope::Global,
                    SyncSemantics::Acquire));
    // With the stale snapshot the line would stay Valid and serve 17.
    EXPECT_EQ(as<DenovoL1Cache>(sys.l1(0))->wordState(kData),
              WordState::Invalid);
    EXPECT_EQ(doLoad(sys, 0, kData), 99u);
}

TEST(DdprProtocol, RedeclaredRegionsRefreshKeepsNewReadOnlyWords)
{
    // The refresh must also work in the other direction: words that
    // BECOME read-only after the line was filled survive the next
    // acquire without a refetch.
    System sys(protoConfig(ProtocolConfig::ddro()));
    sys.writeInit(kData, 21);
    EXPECT_EQ(doLoad(sys, 0, kData), 21u);

    sys.declareReadOnly(kData, kLineBytes); // declared after fill
    doSync(sys, 0,
           makeSync(AtomicFunc::Load, kLock, 0, 0, Scope::Global,
                    SyncSemantics::Acquire));
    EXPECT_EQ(as<DenovoL1Cache>(sys.l1(0))->wordState(kData),
              WordState::Valid);
    double misses = sys.stats().find("l1.0.load_misses")->value();
    EXPECT_EQ(doLoad(sys, 0, kData), 21u);
    EXPECT_EQ(sys.stats().find("l1.0.load_misses")->value(), misses);
}

// ---------------------------------------------------------------------
// Bitwise identity when every region shares one policy
// ---------------------------------------------------------------------

namespace
{

RunResult
runScaled(const std::string &name, const ProtocolConfig &proto,
          unsigned sim_threads = 0)
{
    auto workload = makeScaled(name, 10);
    SystemConfig config = protoConfig(proto);
    config.execution.simThreads = sim_threads;
    System sys(config);
    RunResult result = sys.run(*workload);
    EXPECT_TRUE(result.ok()) << name << " on " << result.config;
    return result;
}

void
expectSameMetrics(const RunResult &a, const RunResult &b,
                  const std::string &what)
{
    EXPECT_EQ(a.cycles, b.cycles) << what;
    EXPECT_EQ(a.energyTotal, b.energyTotal) << what;
    EXPECT_EQ(a.trafficTotal, b.trafficTotal) << what;
    EXPECT_EQ(a.energy, b.energy) << what;
    EXPECT_EQ(a.traffic, b.traffic) << what;
}

} // namespace

TEST(DdprIdentity, MatchesDdroWhenOnlyReadOnlyRegionsDeclared)
{
    // ST declares read-only regions and nothing streaming, so the
    // per-region column must reproduce DD+RO bit for bit.
    expectSameMetrics(runScaled("ST", ProtocolConfig::ddro()),
                      runScaled("ST", ProtocolConfig::ddpr()),
                      "ST ddro vs ddpr");
}

TEST(DdprIdentity, MatchesDdroWhenNoRegionsDeclared)
{
    // FAM_G declares no regions at all: every word is Owned and the
    // specialized paths never fire.
    expectSameMetrics(runScaled("FAM_G", ProtocolConfig::ddro()),
                      runScaled("FAM_G", ProtocolConfig::ddpr()),
                      "FAM_G ddro vs ddpr");
}

// ---------------------------------------------------------------------
// Graph workload family
// ---------------------------------------------------------------------

namespace
{

std::vector<std::uint32_t>
runGraphImage(GraphWorkload &workload, const ProtocolConfig &proto)
{
    System sys(protoConfig(proto));
    RunResult result = sys.run(workload);
    EXPECT_TRUE(result.ok())
        << workload.name() << " on " << result.config << ": "
        << (result.checkFailures.empty()
                ? "hang"
                : result.checkFailures.front());
    std::vector<std::uint32_t> image(workload.resultWords());
    for (unsigned v = 0; v < workload.resultWords(); ++v) {
        image[v] = sys.debugRead(workload.resultBase() +
                                 static_cast<Addr>(v) * kWordBytes);
    }
    return image;
}

} // namespace

TEST(GraphFamily, PushAndPullComputeTheSameImage)
{
    GraphParams params;
    params.nodes = 64;
    params.rounds = 3;
    for (GraphShape shape : {GraphShape::PowerLaw, GraphShape::Mesh}) {
        Bfs bfs_push(Traversal::Push, shape, params);
        Bfs bfs_pull(Traversal::Pull, shape, params);
        EXPECT_EQ(runGraphImage(bfs_push, ProtocolConfig::ddpr()),
                  runGraphImage(bfs_pull, ProtocolConfig::ddpr()));

        Pagerank pr_push(Traversal::Push, shape, params);
        Pagerank pr_pull(Traversal::Pull, shape, params);
        EXPECT_EQ(runGraphImage(pr_push, ProtocolConfig::ddpr()),
                  runGraphImage(pr_pull, ProtocolConfig::ddpr()));

        Sssp sssp_push(Traversal::Push, shape, params);
        Sssp sssp_pull(Traversal::Pull, shape, params);
        EXPECT_EQ(runGraphImage(sssp_push, ProtocolConfig::ddpr()),
                  runGraphImage(sssp_pull, ProtocolConfig::ddpr()));
    }
}

TEST(GraphFamily, BuildGraphIsDeterministicAndSymmetric)
{
    GraphCsr a = buildGraph(GraphShape::PowerLaw, 96);
    GraphCsr b = buildGraph(GraphShape::PowerLaw, 96);
    EXPECT_EQ(a.rowBase, b.rowBase);
    EXPECT_EQ(a.cols, b.cols);
    // Undirected: every edge appears in both adjacency lists, and
    // its weight is direction-independent.
    for (unsigned v = 0; v < a.nodes; ++v) {
        for (unsigned e = a.rowBase[v]; e < a.rowBase[v + 1]; ++e) {
            unsigned u = a.cols[e];
            bool back = false;
            for (unsigned f = a.rowBase[u]; f < a.rowBase[u + 1]; ++f)
                back |= a.cols[f] == v;
            EXPECT_TRUE(back) << "edge " << v << "->" << u;
            EXPECT_EQ(edgeWeight(u, v), edgeWeight(v, u));
        }
    }
    GraphCsr mesh = buildGraph(GraphShape::Mesh, 160);
    EXPECT_EQ(mesh.nodes, 144u); // rounded to 12x12
}

TEST(GraphFamily, SimThreadsIdentityOnGraphWorkloads)
{
    for (const char *name : {"BFS_PULL_PL", "SSSP_PUSH_M"}) {
        RunResult baseline =
            runScaled(name, ProtocolConfig::ddpr(), 1);
        for (unsigned threads : {2u, 3u, 4u}) {
            expectSameMetrics(
                baseline,
                runScaled(name, ProtocolConfig::ddpr(), threads),
                std::string(name) + " sim-threads " +
                    std::to_string(threads));
        }
    }
}

// ---------------------------------------------------------------------
// Schema enums stay in lockstep with the simulator's registries
// ---------------------------------------------------------------------

namespace
{

std::string
slurpFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << "cannot read " << path;
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

void
expectEnumContains(const std::string &schema_json,
                   const std::string &schema_name,
                   const std::string &value)
{
    EXPECT_NE(schema_json.find("\"" + value + "\""), std::string::npos)
        << schema_name << " is missing enum value \"" << value << '"';
}

} // namespace

TEST(SchemaPins, RaceSchemaAcceptsEveryConfigColumn)
{
    std::string schema =
        slurpFile(NOSYNC_SOURCE_DIR "/tools/race_schema.json");
    // Every config a bench harness can emit a race report for must
    // validate against the checked-in schema.
    for (const ProtocolConfig &proto :
         {ProtocolConfig::gd(), ProtocolConfig::gh(),
          ProtocolConfig::dd(), ProtocolConfig::ddro(),
          ProtocolConfig::dh(), ProtocolConfig::ddbo(),
          ProtocolConfig::ddse(), ProtocolConfig::ddpr()}) {
        expectEnumContains(schema, "race_schema.json",
                           proto.shortName());
    }
}

TEST(SchemaPins, ExploreAndAxiomSchemasAcceptEveryLitmusCell)
{
    std::string explore =
        slurpFile(NOSYNC_SOURCE_DIR "/tools/explore_schema.json");
    std::string axiom =
        slurpFile(NOSYNC_SOURCE_DIR "/tools/axiom_schema.json");
    // Config columns litmus_explore sweeps.
    for (const ProtocolConfig &proto :
         {ProtocolConfig::gd(), ProtocolConfig::gh(),
          ProtocolConfig::dd(), ProtocolConfig::ddro(),
          ProtocolConfig::dh(), ProtocolConfig::ddse(),
          ProtocolConfig::ddpr()}) {
        expectEnumContains(explore, "explore_schema.json",
                           proto.shortName());
        expectEnumContains(axiom, "axiom_schema.json",
                           proto.shortName());
    }
    // Litmus program names come from the explore registry.
    for (const std::string &program : explore::litmusSuite()) {
        expectEnumContains(explore, "explore_schema.json", program);
        expectEnumContains(axiom, "axiom_schema.json", program);
    }
}

TEST(SchemaPins, RegistryGroupsSumToTheRegistryPin)
{
    std::size_t grouped = 0;
    for (const char *group :
         {"no-sync", "global-sync", "local-sync", "device-sync",
          "graph"}) {
        grouped += workloadsInGroup(group).size();
    }
    EXPECT_EQ(grouped, workloadRegistry().size())
        << "a registry entry uses a group not covered by the harness "
           "group list";
}
