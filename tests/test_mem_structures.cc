/**
 * @file
 * Unit tests for cache arrays, the store buffer, MSHRs, functional
 * memory, and the region map.
 */

#include <gtest/gtest.h>

#include <vector>

#include "coherence/region_map.hh"
#include "mem/cache_array.hh"
#include "mem/functional_mem.hh"
#include "mem/line_table.hh"
#include "mem/mshr.hh"
#include "mem/store_buffer.hh"

using namespace nosync;

// ---------------------------------------------------------------------
// CacheArray
// ---------------------------------------------------------------------

TEST(CacheArray, MissesWhenEmpty)
{
    CacheArray array(1024, 2);
    EXPECT_EQ(array.lookup(0x1000), nullptr);
}

TEST(CacheArray, InstallAndLookup)
{
    CacheArray array(1024, 2);
    CacheLine *victim = array.findVictim(0x1000);
    array.install(*victim, 0x1000);
    CacheLine *hit = array.lookup(0x1010); // same line
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(hit->addr, 0x1000u);
}

TEST(CacheArray, LruVictimSelection)
{
    // 1024 B, 2-way, 64 B lines -> 8 sets. Lines 0x0000 and 0x2000
    // map to set 0; a third line in set 0 must evict the LRU.
    CacheArray array(1024, 2);
    CacheLine *a = array.findVictim(0x0000);
    array.install(*a, 0x0000);
    CacheLine *b = array.findVictim(0x2000);
    array.install(*b, 0x2000);
    // Touch a so b becomes LRU.
    array.touch(*array.lookup(0x0000));
    CacheLine *victim = array.findVictim(0x4000);
    EXPECT_EQ(victim->addr, 0x2000u);
}

TEST(CacheArray, VictimPreferenceRespected)
{
    CacheArray array(1024, 2);
    CacheLine *a = array.findVictim(0x0000);
    array.install(*a, 0x0000);
    a->wstate[3] = WordState::Registered;
    CacheLine *b = array.findVictim(0x2000);
    array.install(*b, 0x2000);
    array.touch(*array.lookup(0x0000)); // make b LRU

    // Prefer frames without registered words: picks a's set-mate b
    // ... which is also the LRU here; flip roles to be meaningful.
    array.touch(*array.lookup(0x2000)); // now a is LRU but registered
    CacheLine *victim = array.findVictimPreferring(
        0x4000, [](const CacheLine &line) {
            return line.maskInState(WordState::Registered) == 0;
        });
    EXPECT_EQ(victim->addr, 0x2000u);
}

TEST(CacheArray, VictimFallsBackWhenNonePreferred)
{
    CacheArray array(1024, 2);
    for (Addr addr : {0x0000, 0x2000}) {
        CacheLine *line = array.findVictim(addr);
        array.install(*line, addr);
        line->wstate[0] = WordState::Registered;
    }
    CacheLine *victim = array.findVictimPreferring(
        0x4000, [](const CacheLine &line) {
            return line.maskInState(WordState::Registered) == 0;
        });
    ASSERT_NE(victim, nullptr);
    EXPECT_TRUE(victim->valid);
}

TEST(CacheArray, MaskInState)
{
    CacheLine line;
    line.clear();
    line.wstate[1] = WordState::Valid;
    line.wstate[5] = WordState::Registered;
    EXPECT_EQ(line.maskInState(WordState::Valid), 0x0002u);
    EXPECT_EQ(line.maskInState(WordState::Registered), 0x0020u);
}

TEST(CacheArrayDeathTest, NonPowerOfTwoSetsPanics)
{
    EXPECT_DEATH(CacheArray(3 * 64, 1), "power of two");
}

// ---------------------------------------------------------------------
// StoreBuffer
// ---------------------------------------------------------------------

TEST(StoreBuffer, InsertAndLookup)
{
    StoreBuffer sb(4);
    EXPECT_FALSE(sb.insert(0x100, 7));
    EXPECT_TRUE(sb.contains(0x100));
    EXPECT_EQ(sb.value(0x100), 7u);
    EXPECT_EQ(sb.size(), 1u);
}

TEST(StoreBuffer, CoalescesSameWord)
{
    StoreBuffer sb(4);
    sb.insert(0x100, 7);
    EXPECT_TRUE(sb.insert(0x102, 9)); // same word, sub-word address
    EXPECT_EQ(sb.size(), 1u);
    EXPECT_EQ(sb.value(0x100), 9u);
}

TEST(StoreBuffer, FullDetection)
{
    StoreBuffer sb(2);
    sb.insert(0x100, 1);
    sb.insert(0x104, 2);
    EXPECT_TRUE(sb.full());
    // Coalescing into an existing word is still allowed.
    EXPECT_TRUE(sb.insert(0x100, 3));
}

TEST(StoreBuffer, DrainGroupsByLine)
{
    StoreBuffer sb(8);
    sb.insert(0x100, 1); // line 0x100, word 0
    sb.insert(0x108, 2); // line 0x100, word 2
    sb.insert(0x140, 3); // line 0x140, word 0
    auto groups = sb.drain();
    ASSERT_EQ(groups.size(), 2u);
    EXPECT_EQ(groups[0].lineAddr, 0x100u);
    EXPECT_EQ(groups[0].mask, 0x0005u);
    EXPECT_EQ(groups[0].data[0], 1u);
    EXPECT_EQ(groups[0].data[2], 2u);
    EXPECT_EQ(groups[1].lineAddr, 0x140u);
    EXPECT_EQ(groups[1].mask, 0x0001u);
    EXPECT_TRUE(sb.empty());
}

TEST(StoreBuffer, EraseRemovesWord)
{
    StoreBuffer sb(4);
    sb.insert(0x100, 1);
    sb.erase(0x100);
    EXPECT_FALSE(sb.contains(0x100));
}

// ---------------------------------------------------------------------
// MshrTable
// ---------------------------------------------------------------------

TEST(Mshr, AllocateFindDeallocate)
{
    struct Payload
    {
        int x = 0;
    };
    MshrTable<Payload> table(4);
    EXPECT_EQ(table.find(0x1000), nullptr);
    Payload &p = table.allocate(0x1010); // line-aligns to 0x1000
    p.x = 5;
    ASSERT_NE(table.find(0x1000), nullptr);
    EXPECT_EQ(table.find(0x1020)->x, 5);
    table.deallocate(0x1000);
    EXPECT_EQ(table.find(0x1000), nullptr);
}

TEST(Mshr, PointersStableAcrossInserts)
{
    struct Payload
    {
        int x = 0;
    };
    MshrTable<Payload> table(64);
    Payload *first = &table.allocate(0x0);
    first->x = 42;
    for (Addr line = 1; line < 50; ++line)
        table.allocate(line * kLineBytes);
    EXPECT_EQ(first->x, 42);
    EXPECT_EQ(table.find(0x0), first);
}

TEST(Mshr, PointersStableUnderInterleavedChurn)
{
    // L1 code keeps WbEntry/LineEntry pointers across protocol
    // callbacks, so payload addresses must survive arbitrary
    // interleavings of allocate and deallocate — including slot
    // recycling and table growth in the backing LineTable.
    struct Payload
    {
        Addr tag = 0;
        std::vector<int> junk; // non-trivial payload
    };
    MshrTable<Payload> table(64);
    std::vector<std::pair<Addr, Payload *>> live;
    Addr next = 0;
    for (int round = 0; round < 20; ++round) {
        for (int i = 0; i < 5; ++i, ++next) {
            Addr line = next * kLineBytes;
            Payload &p = table.allocate(line);
            p.tag = line;
            p.junk.assign(8, static_cast<int>(round));
            live.emplace_back(line, &p);
        }
        // Free every other live entry (oldest-first) to churn the
        // free list and force backward-shift deletions.
        std::vector<std::pair<Addr, Payload *>> kept;
        for (std::size_t i = 0; i < live.size(); ++i) {
            if (i % 2 == 0 && live.size() > 8)
                table.deallocate(live[i].first);
            else
                kept.push_back(live[i]);
        }
        live = std::move(kept);
        for (const auto &[line, ptr] : live) {
            ASSERT_EQ(table.find(line), ptr);
            EXPECT_EQ(ptr->tag, line);
        }
    }
}

TEST(MshrDeathTest, OverflowPanics)
{
    struct Payload
    {
    };
    MshrTable<Payload> table(1);
    table.allocate(0x0);
    EXPECT_DEATH(table.allocate(0x40), "overflow");
}

TEST(MshrDeathTest, DuplicateAllocationPanics)
{
    struct Payload
    {
    };
    MshrTable<Payload> table(4);
    table.allocate(0x0);
    EXPECT_DEATH(table.allocate(0x0), "duplicate");
}

// ---------------------------------------------------------------------
// LineTable
// ---------------------------------------------------------------------

TEST(LineTable, InsertFindErase)
{
    LineTable<int> table(4);
    EXPECT_FALSE(table.contains(0x1000));
    table.insert(0x1000) = 7;
    EXPECT_TRUE(table.contains(0x1010)); // line-aligned probe
    ASSERT_NE(table.find(0x1000), nullptr);
    EXPECT_EQ(*table.find(0x1000), 7);
    EXPECT_TRUE(table.erase(0x1000));
    EXPECT_FALSE(table.erase(0x1000));
    EXPECT_EQ(table.find(0x1000), nullptr);
    EXPECT_EQ(table.size(), 0u);
}

TEST(LineTable, IndexOperatorFindsOrInserts)
{
    LineTable<int> table(4);
    table[0x2000] = 3;
    table[0x2008] += 4; // same line
    EXPECT_EQ(*table.find(0x2000), 7);
    EXPECT_EQ(table.size(), 1u);
}

TEST(LineTable, GrowthKeepsPayloadsStable)
{
    // The bucket index rebuilds on growth but payload slots must not
    // move: controllers hold payload pointers across growth.
    LineTable<Addr> table(2);
    std::vector<std::pair<Addr, Addr *>> live;
    for (Addr line = 0; line < 200; ++line) {
        Addr addr = line * kLineBytes;
        Addr &slot = table.insert(addr);
        slot = addr;
        live.emplace_back(addr, &slot);
    }
    for (const auto &[addr, ptr] : live) {
        ASSERT_EQ(table.find(addr), ptr);
        EXPECT_EQ(*ptr, addr);
    }
}

TEST(LineTable, EraseKeepsCollidingEntriesReachable)
{
    // Backward-shift deletion: removing one entry must not orphan
    // entries displaced past it by linear probing. Dense consecutive
    // lines guarantee probe chains at any table size.
    LineTable<int> table(4);
    for (Addr line = 0; line < 64; ++line)
        table.insert(line * kLineBytes) = static_cast<int>(line);
    for (Addr line = 0; line < 64; line += 2)
        EXPECT_TRUE(table.erase(line * kLineBytes));
    for (Addr line = 1; line < 64; line += 2) {
        ASSERT_NE(table.find(line * kLineBytes), nullptr);
        EXPECT_EQ(*table.find(line * kLineBytes),
                  static_cast<int>(line));
    }
    EXPECT_EQ(table.size(), 32u);
}

TEST(LineTable, ForEachSortedIsAddressOrdered)
{
    LineTable<int> table(4);
    for (Addr line : {7u, 1u, 5u, 3u})
        table.insert(line * kLineBytes) = static_cast<int>(line);
    std::vector<Addr> seen;
    table.forEachSorted(
        [&](Addr addr, const int &) { seen.push_back(addr); });
    EXPECT_EQ(seen, (std::vector<Addr>{0x40, 0xc0, 0x140, 0x1c0}));
}

TEST(LineTableDeathTest, DuplicateInsertPanics)
{
    LineTable<int> table(4);
    table.insert(0x1000);
    EXPECT_DEATH(table.insert(0x1020), "duplicate");
}

// ---------------------------------------------------------------------
// FunctionalMem
// ---------------------------------------------------------------------

TEST(FunctionalMem, UnwrittenReadsZero)
{
    FunctionalMem mem;
    EXPECT_EQ(mem.readWord(0x1234), 0u);
}

TEST(FunctionalMem, WordReadWrite)
{
    FunctionalMem mem;
    mem.writeWord(0x1004, 99);
    EXPECT_EQ(mem.readWord(0x1004), 99u);
    EXPECT_EQ(mem.readWord(0x1000), 0u);
}

TEST(FunctionalMem, MaskedLineWrite)
{
    FunctionalMem mem;
    LineData data{};
    data[0] = 10;
    data[3] = 13;
    mem.writeLineMasked(0x2000, data, 0x0009);
    EXPECT_EQ(mem.readWord(0x2000), 10u);
    EXPECT_EQ(mem.readWord(0x200c), 13u);
    EXPECT_EQ(mem.readWord(0x2004), 0u);
}

// ---------------------------------------------------------------------
// RegionMap
// ---------------------------------------------------------------------

TEST(RegionMap, EmptyMapNothingReadOnly)
{
    RegionMap map;
    EXPECT_FALSE(map.isReadOnly(0x1000));
    EXPECT_EQ(map.readOnlyMask(0x1000), 0u);
}

TEST(RegionMap, RangeMembership)
{
    RegionMap map;
    map.addReadOnly(0x1000, 0x100);
    EXPECT_TRUE(map.isReadOnly(0x1000));
    EXPECT_TRUE(map.isReadOnly(0x10ff));
    EXPECT_FALSE(map.isReadOnly(0x1100));
    EXPECT_FALSE(map.isReadOnly(0xfff));
}

TEST(RegionMap, PartialLineMask)
{
    RegionMap map;
    // Read-only covers only words 2..5 of the line at 0x1000.
    map.addReadOnly(0x1008, 4 * kWordBytes);
    EXPECT_EQ(map.readOnlyMask(0x1000), 0x003cu);
}

TEST(RegionMap, MultipleRanges)
{
    RegionMap map;
    map.addReadOnly(0x1000, 0x40);
    map.addReadOnly(0x3000, 0x40);
    EXPECT_TRUE(map.isReadOnly(0x1010));
    EXPECT_FALSE(map.isReadOnly(0x2000));
    EXPECT_TRUE(map.isReadOnly(0x3030));
}

TEST(RegionMap, ClearRemovesRanges)
{
    RegionMap map;
    map.addReadOnly(0x1000, 0x40);
    map.clear();
    EXPECT_FALSE(map.isReadOnly(0x1000));
    EXPECT_EQ(map.rangeCount(), 0u);
    EXPECT_EQ(map.readOnlyMask(0x1000), 0u);
}

// Regression: a declaration nested inside an earlier one must not
// shadow it. The old base-keyed std::map consulted only the probed
// address's immediate predecessor range, so after the inner
// declaration, addresses in the outer range's tail looked writable
// and DD+RO wrongly self-invalidated them.
TEST(RegionMap, NestedDeclarationDoesNotShadowOuterRange)
{
    RegionMap map;
    map.addReadOnly(0x1000, 0x100); // outer: [0x1000, 0x1100)
    map.addReadOnly(0x1040, 0x20);  // nested: [0x1040, 0x1060)
    EXPECT_TRUE(map.isReadOnly(0x10f0)); // outer tail, past nested
    EXPECT_TRUE(map.isReadOnly(0x1050)); // inside both
    EXPECT_FALSE(map.isReadOnly(0x1100));
    EXPECT_EQ(map.rangeCount(), 1u);
}

// Regression: re-declaring the same base with a smaller size must not
// shrink the range (the map holds the union of declarations). The old
// std::map overwrote the end, silently dropping the tail.
TEST(RegionMap, SameBaseRedeclarationNeverShrinks)
{
    RegionMap map;
    map.addReadOnly(0x1000, 0x100);
    map.addReadOnly(0x1000, 0x40);
    EXPECT_TRUE(map.isReadOnly(0x1080));
    EXPECT_TRUE(map.isReadOnly(0x10ff));
    EXPECT_EQ(map.rangeCount(), 1u);
}

// Regression: partially overlapping declarations merge into one
// covering range; the old map kept both bases and predecessor lookup
// saw only the later, shorter one.
TEST(RegionMap, OverlappingDeclarationsMerge)
{
    RegionMap map;
    map.addReadOnly(0x1000, 0x80);  // [0x1000, 0x1080)
    map.addReadOnly(0x1060, 0x100); // [0x1060, 0x1160)
    EXPECT_TRUE(map.isReadOnly(0x1000));
    EXPECT_TRUE(map.isReadOnly(0x1070));
    EXPECT_TRUE(map.isReadOnly(0x115f));
    EXPECT_FALSE(map.isReadOnly(0x1160));
    EXPECT_EQ(map.rangeCount(), 1u);
}

TEST(RegionMap, AdjacentDeclarationsCoalesce)
{
    RegionMap map;
    map.addReadOnly(0x1000, 0x40);
    map.addReadOnly(0x1040, 0x40); // abuts the first
    map.addReadOnly(0x2000, 0x40); // disjoint
    EXPECT_EQ(map.rangeCount(), 2u);
    EXPECT_TRUE(map.isReadOnly(0x107f));
    EXPECT_FALSE(map.isReadOnly(0x1080));
}

TEST(RegionMap, DeclarationBridgingTwoRangesMergesAll)
{
    RegionMap map;
    map.addReadOnly(0x1000, 0x40);
    map.addReadOnly(0x3000, 0x40);
    EXPECT_EQ(map.rangeCount(), 2u);
    map.addReadOnly(0x1020, 0x2000); // spans the gap and both ranges
    EXPECT_EQ(map.rangeCount(), 1u);
    EXPECT_TRUE(map.isReadOnly(0x2000));
    EXPECT_TRUE(map.isReadOnly(0x303f));
    EXPECT_FALSE(map.isReadOnly(0x3040));
}

TEST(RegionMap, MaskAcrossLineBoundaries)
{
    RegionMap map;
    // [0x1020, 0x1060): upper half of line 0x1000, lower half of
    // line 0x1040.
    map.addReadOnly(0x1020, 0x40);
    EXPECT_EQ(map.readOnlyMask(0x1000), 0xff00u);
    EXPECT_EQ(map.readOnlyMask(0x1040), 0x00ffu);
    EXPECT_EQ(map.readOnlyMask(0x1080), 0u);
}

TEST(RegionMap, MaskSeesMergedCoverage)
{
    RegionMap map;
    // Two declarations covering different words of one line, made
    // non-adjacent so they stay distinct ranges.
    map.addReadOnly(0x1000, 2 * kWordBytes); // words 0..1
    map.addReadOnly(0x1020, 2 * kWordBytes); // words 8..9
    EXPECT_EQ(map.rangeCount(), 2u);
    EXPECT_EQ(map.readOnlyMask(0x1000), 0x0303u);
    // A nested re-declaration must not change the mask.
    map.addReadOnly(0x1000, kWordBytes);
    EXPECT_EQ(map.readOnlyMask(0x1000), 0x0303u);
}
