/**
 * @file
 * Unit tests for cache arrays, the store buffer, MSHRs, functional
 * memory, and the region map.
 */

#include <gtest/gtest.h>

#include "coherence/region_map.hh"
#include "mem/cache_array.hh"
#include "mem/functional_mem.hh"
#include "mem/mshr.hh"
#include "mem/store_buffer.hh"

using namespace nosync;

// ---------------------------------------------------------------------
// CacheArray
// ---------------------------------------------------------------------

TEST(CacheArray, MissesWhenEmpty)
{
    CacheArray array(1024, 2);
    EXPECT_EQ(array.lookup(0x1000), nullptr);
}

TEST(CacheArray, InstallAndLookup)
{
    CacheArray array(1024, 2);
    CacheLine *victim = array.findVictim(0x1000);
    array.install(*victim, 0x1000);
    CacheLine *hit = array.lookup(0x1010); // same line
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(hit->addr, 0x1000u);
}

TEST(CacheArray, LruVictimSelection)
{
    // 1024 B, 2-way, 64 B lines -> 8 sets. Lines 0x0000 and 0x2000
    // map to set 0; a third line in set 0 must evict the LRU.
    CacheArray array(1024, 2);
    CacheLine *a = array.findVictim(0x0000);
    array.install(*a, 0x0000);
    CacheLine *b = array.findVictim(0x2000);
    array.install(*b, 0x2000);
    // Touch a so b becomes LRU.
    array.touch(*array.lookup(0x0000));
    CacheLine *victim = array.findVictim(0x4000);
    EXPECT_EQ(victim->addr, 0x2000u);
}

TEST(CacheArray, VictimPreferenceRespected)
{
    CacheArray array(1024, 2);
    CacheLine *a = array.findVictim(0x0000);
    array.install(*a, 0x0000);
    a->wstate[3] = WordState::Registered;
    CacheLine *b = array.findVictim(0x2000);
    array.install(*b, 0x2000);
    array.touch(*array.lookup(0x0000)); // make b LRU

    // Prefer frames without registered words: picks a's set-mate b
    // ... which is also the LRU here; flip roles to be meaningful.
    array.touch(*array.lookup(0x2000)); // now a is LRU but registered
    CacheLine *victim = array.findVictimPreferring(
        0x4000, [](const CacheLine &line) {
            return line.maskInState(WordState::Registered) == 0;
        });
    EXPECT_EQ(victim->addr, 0x2000u);
}

TEST(CacheArray, VictimFallsBackWhenNonePreferred)
{
    CacheArray array(1024, 2);
    for (Addr addr : {0x0000, 0x2000}) {
        CacheLine *line = array.findVictim(addr);
        array.install(*line, addr);
        line->wstate[0] = WordState::Registered;
    }
    CacheLine *victim = array.findVictimPreferring(
        0x4000, [](const CacheLine &line) {
            return line.maskInState(WordState::Registered) == 0;
        });
    ASSERT_NE(victim, nullptr);
    EXPECT_TRUE(victim->valid);
}

TEST(CacheArray, MaskInState)
{
    CacheLine line;
    line.clear();
    line.wstate[1] = WordState::Valid;
    line.wstate[5] = WordState::Registered;
    EXPECT_EQ(line.maskInState(WordState::Valid), 0x0002u);
    EXPECT_EQ(line.maskInState(WordState::Registered), 0x0020u);
}

TEST(CacheArrayDeathTest, NonPowerOfTwoSetsPanics)
{
    EXPECT_DEATH(CacheArray(3 * 64, 1), "power of two");
}

// ---------------------------------------------------------------------
// StoreBuffer
// ---------------------------------------------------------------------

TEST(StoreBuffer, InsertAndLookup)
{
    StoreBuffer sb(4);
    EXPECT_FALSE(sb.insert(0x100, 7));
    EXPECT_TRUE(sb.contains(0x100));
    EXPECT_EQ(sb.value(0x100), 7u);
    EXPECT_EQ(sb.size(), 1u);
}

TEST(StoreBuffer, CoalescesSameWord)
{
    StoreBuffer sb(4);
    sb.insert(0x100, 7);
    EXPECT_TRUE(sb.insert(0x102, 9)); // same word, sub-word address
    EXPECT_EQ(sb.size(), 1u);
    EXPECT_EQ(sb.value(0x100), 9u);
}

TEST(StoreBuffer, FullDetection)
{
    StoreBuffer sb(2);
    sb.insert(0x100, 1);
    sb.insert(0x104, 2);
    EXPECT_TRUE(sb.full());
    // Coalescing into an existing word is still allowed.
    EXPECT_TRUE(sb.insert(0x100, 3));
}

TEST(StoreBuffer, DrainGroupsByLine)
{
    StoreBuffer sb(8);
    sb.insert(0x100, 1); // line 0x100, word 0
    sb.insert(0x108, 2); // line 0x100, word 2
    sb.insert(0x140, 3); // line 0x140, word 0
    auto groups = sb.drain();
    ASSERT_EQ(groups.size(), 2u);
    EXPECT_EQ(groups[0].lineAddr, 0x100u);
    EXPECT_EQ(groups[0].mask, 0x0005u);
    EXPECT_EQ(groups[0].data[0], 1u);
    EXPECT_EQ(groups[0].data[2], 2u);
    EXPECT_EQ(groups[1].lineAddr, 0x140u);
    EXPECT_EQ(groups[1].mask, 0x0001u);
    EXPECT_TRUE(sb.empty());
}

TEST(StoreBuffer, EraseRemovesWord)
{
    StoreBuffer sb(4);
    sb.insert(0x100, 1);
    sb.erase(0x100);
    EXPECT_FALSE(sb.contains(0x100));
}

// ---------------------------------------------------------------------
// MshrTable
// ---------------------------------------------------------------------

TEST(Mshr, AllocateFindDeallocate)
{
    struct Payload
    {
        int x = 0;
    };
    MshrTable<Payload> table(4);
    EXPECT_EQ(table.find(0x1000), nullptr);
    Payload &p = table.allocate(0x1010); // line-aligns to 0x1000
    p.x = 5;
    ASSERT_NE(table.find(0x1000), nullptr);
    EXPECT_EQ(table.find(0x1020)->x, 5);
    table.deallocate(0x1000);
    EXPECT_EQ(table.find(0x1000), nullptr);
}

TEST(Mshr, PointersStableAcrossInserts)
{
    struct Payload
    {
        int x = 0;
    };
    MshrTable<Payload> table(64);
    Payload *first = &table.allocate(0x0);
    first->x = 42;
    for (Addr line = 1; line < 50; ++line)
        table.allocate(line * kLineBytes);
    EXPECT_EQ(first->x, 42);
    EXPECT_EQ(table.find(0x0), first);
}

TEST(MshrDeathTest, OverflowPanics)
{
    struct Payload
    {
    };
    MshrTable<Payload> table(1);
    table.allocate(0x0);
    EXPECT_DEATH(table.allocate(0x40), "overflow");
}

TEST(MshrDeathTest, DuplicateAllocationPanics)
{
    struct Payload
    {
    };
    MshrTable<Payload> table(4);
    table.allocate(0x0);
    EXPECT_DEATH(table.allocate(0x0), "duplicate");
}

// ---------------------------------------------------------------------
// FunctionalMem
// ---------------------------------------------------------------------

TEST(FunctionalMem, UnwrittenReadsZero)
{
    FunctionalMem mem;
    EXPECT_EQ(mem.readWord(0x1234), 0u);
}

TEST(FunctionalMem, WordReadWrite)
{
    FunctionalMem mem;
    mem.writeWord(0x1004, 99);
    EXPECT_EQ(mem.readWord(0x1004), 99u);
    EXPECT_EQ(mem.readWord(0x1000), 0u);
}

TEST(FunctionalMem, MaskedLineWrite)
{
    FunctionalMem mem;
    LineData data{};
    data[0] = 10;
    data[3] = 13;
    mem.writeLineMasked(0x2000, data, 0x0009);
    EXPECT_EQ(mem.readWord(0x2000), 10u);
    EXPECT_EQ(mem.readWord(0x200c), 13u);
    EXPECT_EQ(mem.readWord(0x2004), 0u);
}

// ---------------------------------------------------------------------
// RegionMap
// ---------------------------------------------------------------------

TEST(RegionMap, EmptyMapNothingReadOnly)
{
    RegionMap map;
    EXPECT_FALSE(map.isReadOnly(0x1000));
    EXPECT_EQ(map.readOnlyMask(0x1000), 0u);
}

TEST(RegionMap, RangeMembership)
{
    RegionMap map;
    map.addReadOnly(0x1000, 0x100);
    EXPECT_TRUE(map.isReadOnly(0x1000));
    EXPECT_TRUE(map.isReadOnly(0x10ff));
    EXPECT_FALSE(map.isReadOnly(0x1100));
    EXPECT_FALSE(map.isReadOnly(0xfff));
}

TEST(RegionMap, PartialLineMask)
{
    RegionMap map;
    // Read-only covers only words 2..5 of the line at 0x1000.
    map.addReadOnly(0x1008, 4 * kWordBytes);
    EXPECT_EQ(map.readOnlyMask(0x1000), 0x003cu);
}

TEST(RegionMap, MultipleRanges)
{
    RegionMap map;
    map.addReadOnly(0x1000, 0x40);
    map.addReadOnly(0x3000, 0x40);
    EXPECT_TRUE(map.isReadOnly(0x1010));
    EXPECT_FALSE(map.isReadOnly(0x2000));
    EXPECT_TRUE(map.isReadOnly(0x3030));
}

TEST(RegionMap, ClearRemovesRanges)
{
    RegionMap map;
    map.addReadOnly(0x1000, 0x40);
    map.clear();
    EXPECT_FALSE(map.isReadOnly(0x1000));
}
