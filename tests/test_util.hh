/**
 * @file
 * Shared helpers for the test suite.
 */

#ifndef TESTS_TEST_UTIL_HH
#define TESTS_TEST_UTIL_HH

#include <string>
#include <vector>

#if defined(__SANITIZE_ADDRESS__)
#define NOSYNC_HAS_LSAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define NOSYNC_HAS_LSAN 1
#endif
#endif
#ifdef NOSYNC_HAS_LSAN
#include <sanitizer/lsan_interface.h>
#endif

#include "core/system.hh"

namespace nosync::test
{

/**
 * LeakSanitizer tolerance for intentionally-hung runs. A hung run
 * abandons its suspended coroutine frames: started SimTasks are
 * detached and self-destroy only at completion, so thread blocks
 * still awaiting a memory op when the watchdog fires leak their
 * frames. Acceptable on that terminal diagnostic path, but tests
 * that hang a run on purpose must scope it out of leak checking.
 */
struct ScopedLeakTolerance
{
#ifdef NOSYNC_HAS_LSAN
    ScopedLeakTolerance() { __lsan_disable(); }
    ~ScopedLeakTolerance() { __lsan_enable(); }
#else
    ScopedLeakTolerance() {}
    ~ScopedLeakTolerance() {}
#endif
};

/** The five studied configurations plus the DD+BO and DD+PR
 *  extensions. */
inline std::vector<ProtocolConfig>
allConfigs()
{
    return {ProtocolConfig::gd(),   ProtocolConfig::gh(),
            ProtocolConfig::dd(),   ProtocolConfig::ddro(),
            ProtocolConfig::dh(),   ProtocolConfig::ddbo(),
            ProtocolConfig::ddpr()};
}

/** Run the event queue until it drains (or a safety limit). */
inline void
drainEvents(System &system, Tick limit = 50'000'000)
{
    system.eventQueue().run(system.eventQueue().now() + limit);
}

/** Synchronously perform a load through a CU's L1. */
inline std::uint32_t
doLoad(System &system, unsigned cu, Addr addr)
{
    std::uint32_t out = 0;
    bool done = false;
    system.l1(cu).load(addr, [&](std::uint32_t v) {
        out = v;
        done = true;
    });
    while (!done && system.eventQueue().step()) {
    }
    EXPECT_TRUE(done) << "load never completed";
    return out;
}

/** Synchronously perform a store through a CU's L1. */
inline void
doStore(System &system, unsigned cu, Addr addr, std::uint32_t value)
{
    bool done = false;
    system.l1(cu).store(addr, value, [&] { done = true; });
    while (!done && system.eventQueue().step()) {
    }
    EXPECT_TRUE(done) << "store never completed";
}

/** Synchronously perform a sync access through a CU's L1. */
inline std::uint32_t
doSync(System &system, unsigned cu, const SyncOp &op)
{
    std::uint32_t out = 0;
    bool done = false;
    system.l1(cu).sync(op, [&](std::uint32_t v) {
        out = v;
        done = true;
    });
    while (!done && system.eventQueue().step()) {
    }
    EXPECT_TRUE(done) << "sync access never completed";
    return out;
}

/** Synchronously drain a CU's buffered writes at global scope. */
inline void
doDrain(System &system, unsigned cu)
{
    bool done = false;
    system.l1(cu).drainWrites(Scope::Global, [&] { done = true; });
    while (!done && system.eventQueue().step()) {
    }
    EXPECT_TRUE(done) << "drain never completed";
}

/** Build a SyncOp tersely. */
inline SyncOp
makeSync(AtomicFunc func, Addr addr, std::uint32_t operand = 0,
         std::uint32_t compare = 0, Scope scope = Scope::Global,
         SyncSemantics sem = SyncSemantics::AcquireRelease)
{
    SyncOp op;
    op.func = func;
    op.addr = addr;
    op.operand = operand;
    op.compare = compare;
    op.scope = scope;
    op.sem = sem;
    return op;
}

/** Pretty parameter names for parameterized suites. */
struct ConfigName
{
    template <typename ParamT>
    std::string
    operator()(const ParamT &info) const
    {
        std::string name = info.param.shortName();
        for (auto &c : name) {
            if (c == '+')
                c = '_';
        }
        return name;
    }
};

} // namespace nosync::test

#endif // TESTS_TEST_UTIL_HH
