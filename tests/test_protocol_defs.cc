/**
 * @file
 * Unit tests for protocol vocabulary: atomic semantics, configuration
 * naming/scoping, fence policy, energy model, and feature tables.
 */

#include <gtest/gtest.h>

#include "coherence/protocol.hh"
#include "consistency/fence_policy.hh"
#include "core/features.hh"
#include "energy/energy_model.hh"

using namespace nosync;

TEST(AtomicFuncs, Load)
{
    SyncOp op;
    op.func = AtomicFunc::Load;
    AtomicResult r = applyAtomic(op, 5);
    EXPECT_EQ(r.returned, 5u);
    EXPECT_EQ(r.newValue, 5u);
    EXPECT_FALSE(r.stored);
}

TEST(AtomicFuncs, Store)
{
    SyncOp op;
    op.func = AtomicFunc::Store;
    op.operand = 9;
    AtomicResult r = applyAtomic(op, 5);
    EXPECT_EQ(r.newValue, 9u);
    EXPECT_TRUE(r.stored);
}

TEST(AtomicFuncs, FetchAddReturnsOld)
{
    SyncOp op;
    op.func = AtomicFunc::FetchAdd;
    op.operand = 3;
    AtomicResult r = applyAtomic(op, 5);
    EXPECT_EQ(r.returned, 5u);
    EXPECT_EQ(r.newValue, 8u);
}

TEST(AtomicFuncs, Exchange)
{
    SyncOp op;
    op.func = AtomicFunc::Exchange;
    op.operand = 1;
    AtomicResult r = applyAtomic(op, 0);
    EXPECT_EQ(r.returned, 0u);
    EXPECT_EQ(r.newValue, 1u);
}

TEST(AtomicFuncs, CompareSwapSuccessAndFailure)
{
    SyncOp op;
    op.func = AtomicFunc::CompareSwap;
    op.compare = 0;
    op.operand = 1;
    AtomicResult ok = applyAtomic(op, 0);
    EXPECT_TRUE(ok.stored);
    EXPECT_EQ(ok.newValue, 1u);
    EXPECT_EQ(ok.returned, 0u);
    AtomicResult fail = applyAtomic(op, 7);
    EXPECT_FALSE(fail.stored);
    EXPECT_EQ(fail.newValue, 7u);
    EXPECT_EQ(fail.returned, 7u);
}

TEST(SyncOpSemantics, AcquireReleaseFlags)
{
    SyncOp op;
    op.sem = SyncSemantics::Acquire;
    EXPECT_TRUE(op.isAcquire());
    EXPECT_FALSE(op.isRelease());
    op.sem = SyncSemantics::Release;
    EXPECT_FALSE(op.isAcquire());
    EXPECT_TRUE(op.isRelease());
    op.sem = SyncSemantics::AcquireRelease;
    EXPECT_TRUE(op.isAcquire());
    EXPECT_TRUE(op.isRelease());
}

TEST(ProtocolConfig, ShortNames)
{
    EXPECT_EQ(ProtocolConfig::gd().shortName(), "GD");
    EXPECT_EQ(ProtocolConfig::gh().shortName(), "GH");
    EXPECT_EQ(ProtocolConfig::dd().shortName(), "DD");
    EXPECT_EQ(ProtocolConfig::ddro().shortName(), "DD+RO");
    EXPECT_EQ(ProtocolConfig::dh().shortName(), "DH");
    EXPECT_EQ(ProtocolConfig::ddse().shortName(), "DD+SE");
    EXPECT_EQ(ProtocolConfig::ddpr().shortName(), "DD+PR");
}

TEST(ProtocolConfig, DdprImpliesReadOnlyRegions)
{
    ProtocolConfig ddpr = ProtocolConfig::ddpr();
    EXPECT_TRUE(ddpr.perRegionPolicy);
    EXPECT_TRUE(ddpr.readOnlyRegions);
    EXPECT_FALSE(ProtocolConfig::ddro().perRegionPolicy);
    EXPECT_FALSE(ProtocolConfig::dd().perRegionPolicy);
}

TEST(ProtocolConfig, DrfIgnoresScopeAnnotations)
{
    EXPECT_EQ(ProtocolConfig::dd().effectiveScope(Scope::Local),
              Scope::Global);
    EXPECT_EQ(ProtocolConfig::gh().effectiveScope(Scope::Local),
              Scope::Local);
    EXPECT_EQ(ProtocolConfig::dh().effectiveScope(Scope::Global),
              Scope::Global);
}

TEST(FencePolicy, GpuDrfGlobalSyncDrainsAndInvalidates)
{
    SyncOp op;
    op.sem = SyncSemantics::AcquireRelease;
    op.scope = Scope::Local; // annotation ignored under DRF
    FenceActions a = fenceActionsFor(op, ProtocolConfig::gd());
    EXPECT_TRUE(a.drainBefore);
    EXPECT_TRUE(a.invalidateAfter);
    EXPECT_FALSE(a.mayExecuteLocally);
}

TEST(FencePolicy, HrfLocalSyncSkipsFences)
{
    SyncOp op;
    op.sem = SyncSemantics::AcquireRelease;
    op.scope = Scope::Local;
    FenceActions a = fenceActionsFor(op, ProtocolConfig::gh());
    EXPECT_FALSE(a.drainBefore);
    EXPECT_FALSE(a.invalidateAfter);
    EXPECT_TRUE(a.mayExecuteLocally);
}

TEST(FencePolicy, DenovoExecutesLocally)
{
    SyncOp op;
    op.sem = SyncSemantics::Acquire;
    op.scope = Scope::Global;
    FenceActions a = fenceActionsFor(op, ProtocolConfig::dd());
    EXPECT_TRUE(a.mayExecuteLocally);
    EXPECT_TRUE(a.invalidateAfter);
    EXPECT_FALSE(a.drainBefore); // pure acquire
}

TEST(EnergyModel, ComponentsAccumulate)
{
    stats::StatSet stats;
    EnergyParams params;
    EnergyModel energy(stats, params);
    energy.l1Access(2);
    energy.l2Access();
    energy.flitCrossings(10);
    EXPECT_DOUBLE_EQ(energy.component(EnergyComponent::L1D),
                     2 * params.l1Access);
    EXPECT_DOUBLE_EQ(energy.component(EnergyComponent::L2),
                     params.l2Access);
    EXPECT_DOUBLE_EQ(energy.component(EnergyComponent::Network),
                     10 * params.flitHop);
    EXPECT_DOUBLE_EQ(energy.total(), 2 * params.l1Access +
                                         params.l2Access +
                                         10 * params.flitHop);
}

TEST(Features, Table2ShapesMatchPaper)
{
    using S = FeatureSet::Support;
    FeatureSet gd = featuresOf(ProtocolConfig::gd());
    EXPECT_EQ(gd.reuseWrittenData, S::No);
    EXPECT_EQ(gd.noInvalidationsAcks, S::Yes);
    EXPECT_EQ(gd.dynamicSharing, S::No);

    FeatureSet gh = featuresOf(ProtocolConfig::gh());
    EXPECT_EQ(gh.reuseWrittenData, S::IfLocalScope);
    EXPECT_EQ(gh.dynamicSharing, S::No);

    FeatureSet dd = featuresOf(ProtocolConfig::dd());
    EXPECT_EQ(dd.reuseWrittenData, S::Yes);
    EXPECT_EQ(dd.reuseValidData, S::No);
    EXPECT_EQ(dd.decoupledGranularity, S::Yes);
    EXPECT_EQ(dd.dynamicSharing, S::Yes);

    FeatureSet ddro = featuresOf(ProtocolConfig::ddro());
    EXPECT_EQ(ddro.reuseValidData, S::IfLocalScope);

    FeatureSet dh = featuresOf(ProtocolConfig::dh());
    EXPECT_EQ(dh.reuseValidData, S::IfLocalScope);
    EXPECT_EQ(dh.reuseSynchronization, S::Yes);
}

TEST(Features, Table1HasThreeProtocolClasses)
{
    auto rows = protocolClassification();
    ASSERT_EQ(rows.size(), 3u);
    EXPECT_EQ(rows[0].category, "Conv HW");
    EXPECT_EQ(rows[1].invalidationInitiator, "reader");
    EXPECT_EQ(rows[2].upToDateTracking, "ownership");
}

TEST(Features, Table5IncludesThisWork)
{
    auto rows = relatedWorkComparison();
    EXPECT_EQ(rows.back().scheme, "DD (this work)");
    EXPECT_EQ(rows.back().features.dynamicSharing,
              FeatureSet::Support::Yes);
}
