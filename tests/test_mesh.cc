/**
 * @file
 * Unit tests for the mesh interconnect: routing distances, flit
 * accounting, link serialization, and point-to-point ordering (a
 * property several protocol races rely on).
 */

#include <gtest/gtest.h>

#include "noc/mesh.hh"
#include "sim/stats.hh"

using namespace nosync;

namespace
{

struct MeshFixture : public ::testing::Test
{
    EventQueue eq;
    stats::StatSet stats;
    Mesh mesh{eq, stats};
};

} // namespace

TEST_F(MeshFixture, HopDistances)
{
    // 4x4 mesh: node ids row-major.
    EXPECT_EQ(mesh.hops(0, 0), 0u);
    EXPECT_EQ(mesh.hops(0, 3), 3u);
    EXPECT_EQ(mesh.hops(0, 12), 3u);
    EXPECT_EQ(mesh.hops(0, 15), 6u);
    EXPECT_EQ(mesh.hops(5, 6), 1u);
    EXPECT_EQ(mesh.hops(5, 10), 2u);
}

TEST_F(MeshFixture, LocalDeliveryHasNoCrossings)
{
    bool delivered = false;
    mesh.send(3, 3, 5, TrafficClass::Read, [&] { delivered = true; });
    eq.run();
    EXPECT_TRUE(delivered);
    EXPECT_DOUBLE_EQ(mesh.totalFlitCrossings(), 0.0);
}

TEST_F(MeshFixture, FlitCrossingsAreFlitsTimesHops)
{
    mesh.send(0, 15, 5, TrafficClass::Read, [] {});
    eq.run();
    EXPECT_DOUBLE_EQ(mesh.flitCrossings(TrafficClass::Read),
                     5.0 * 6.0);
    EXPECT_DOUBLE_EQ(mesh.flitCrossings(TrafficClass::Atomic), 0.0);
}

TEST_F(MeshFixture, ClassesAccountedSeparately)
{
    mesh.send(0, 1, 2, TrafficClass::Atomic, [] {});
    mesh.send(0, 1, 3, TrafficClass::WriteBack, [] {});
    eq.run();
    EXPECT_DOUBLE_EQ(mesh.flitCrossings(TrafficClass::Atomic), 2.0);
    EXPECT_DOUBLE_EQ(mesh.flitCrossings(TrafficClass::WriteBack), 3.0);
    EXPECT_DOUBLE_EQ(mesh.totalFlitCrossings(), 5.0);
}

TEST_F(MeshFixture, UncontendedLatencyMatchesDelivery)
{
    Tick arrival = 0;
    mesh.send(0, 5, 1, TrafficClass::Read,
              [&] { arrival = eq.now(); });
    eq.run();
    EXPECT_EQ(arrival, mesh.uncontendedLatency(0, 5, 1));
}

TEST_F(MeshFixture, ContentionSerializesSharedLinks)
{
    // Two single-flit messages over the same link: the second one
    // queues behind the first.
    Tick first = 0, second = 0;
    mesh.send(0, 1, 1, TrafficClass::Read, [&] { first = eq.now(); });
    mesh.send(0, 1, 1, TrafficClass::Read,
              [&] { second = eq.now(); });
    eq.run();
    EXPECT_GT(second, first);
}

TEST_F(MeshFixture, DisjointPathsDoNotContend)
{
    Tick a = 0, b = 0;
    mesh.send(0, 1, 1, TrafficClass::Read, [&] { a = eq.now(); });
    mesh.send(4, 5, 1, TrafficClass::Read, [&] { b = eq.now(); });
    eq.run();
    EXPECT_EQ(a, b);
}

TEST_F(MeshFixture, PointToPointOrderingHolds)
{
    // The protocols rely on same-src/same-dst FIFO delivery even for
    // mixed message sizes. Inject many pairs where the first message
    // is large and the second small.
    std::vector<int> order;
    for (int i = 0; i < 10; ++i) {
        mesh.send(0, 15, 5, TrafficClass::Read,
                  [&order, i] { order.push_back(2 * i); });
        mesh.send(0, 15, 1, TrafficClass::Atomic,
                  [&order, i] { order.push_back(2 * i + 1); });
    }
    eq.run();
    ASSERT_EQ(order.size(), 20u);
    for (int i = 0; i < 20; ++i)
        EXPECT_EQ(order[i], i);
}

TEST_F(MeshFixture, MessagesCountedPerClass)
{
    mesh.send(0, 1, 1, TrafficClass::Registration, [] {});
    mesh.send(0, 1, 1, TrafficClass::Registration, [] {});
    eq.run();
    const stats::Vector *messages = stats.findVector("noc.messages");
    ASSERT_NE(messages, nullptr);
    int regist = messages->indexOf("Regist");
    ASSERT_GE(regist, 0);
    EXPECT_DOUBLE_EQ(
        messages->value(static_cast<std::size_t>(regist)), 2.0);
}

TEST(MeshTraffic, FlitsForPayload)
{
    EXPECT_EQ(flitsForPayload(0), 1u);
    EXPECT_EQ(flitsForPayload(1), 2u);
    EXPECT_EQ(flitsForPayload(16), 2u);
    EXPECT_EQ(flitsForPayload(64), 5u);
    EXPECT_EQ(flitsForWords(1), 2u);
    EXPECT_EQ(flitsForWords(16), 5u);
    EXPECT_EQ(kLineFlits, 5u);
}
