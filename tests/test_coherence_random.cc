/**
 * @file
 * Property-based coherence tests: randomized well-synchronized
 * programs whose invariants fail if any protocol ever returns a value
 * not permitted by the happens-before relation.
 *
 * Two generators:
 *  - RandomLockedRegions: thread blocks take randomly chosen locks
 *    (global and CU-local) and read-modify-write the protected
 *    region. Within a critical section every word of the region must
 *    carry the same generation count (a stale read or lost update
 *    breaks equality), and the final counts must equal the number of
 *    critical sections executed.
 *  - RandomKernelRotation: each kernel writes random slices and the
 *    next kernel reads them from rotated thread blocks, so kernel
 *    boundary release/acquire ordering is exercised with random
 *    footprints (including partial lines and line-crossing slices).
 */

#include <gtest/gtest.h>

#include <tuple>

#include "test_util.hh"
#include "workloads/sync_primitives.hh"

using namespace nosync;
using namespace nosync::test;

namespace
{

class RandomLockedRegions : public Workload
{
  public:
    RandomLockedRegions(std::uint64_t seed, unsigned iterations)
        : _seed(seed), _iterations(iterations)
    {}

    std::string name() const override { return "random-locks"; }

    void
    init(WorkloadEnv &env) override
    {
        _numCus = env.numCus();
        // Global regions, protected by global locks.
        for (unsigned r = 0; r < kGlobalRegions; ++r) {
            MutexAddrs lock;
            lock.lock = env.alloc(kLineBytes);
            lock.serving = lock.lock + kWordBytes;
            _globalLocks.push_back(lock);
            _globalRegions.push_back(
                env.alloc((kRegionWords + 1) * kWordBytes));
        }
        // One private region per CU, protected by a local lock.
        for (unsigned cu = 0; cu < _numCus; ++cu) {
            MutexAddrs lock;
            lock.lock = env.alloc(kLineBytes);
            lock.serving = lock.lock + kWordBytes;
            _localLocks.push_back(lock);
            _localRegions.push_back(
                env.alloc((kRegionWords + 1) * kWordBytes));
        }
        _violations =
            env.alloc(_numCus * kTbsPerCu * kWordBytes);
        _globalCsCount.assign(kGlobalRegions, 0);
        _localCsCount.assign(_numCus, 0);

        // Precompute every TB's schedule so the expected counts are
        // known up front (the schedule, not the interleaving, is
        // deterministic).
        _schedule.assign(_numCus * kTbsPerCu, {});
        Rng rng(_seed);
        for (unsigned tb = 0; tb < _numCus * kTbsPerCu; ++tb) {
            unsigned cu = tb % _numCus;
            for (unsigned i = 0; i < _iterations; ++i) {
                bool local = rng.chance(0.5);
                unsigned region = local
                                      ? cu
                                      : static_cast<unsigned>(
                                            rng.below(kGlobalRegions));
                _schedule[tb].push_back({local, region});
                if (local)
                    ++_localCsCount[cu];
                else
                    ++_globalCsCount[region];
            }
        }
    }

    KernelInfo kernelInfo(unsigned) const override
    {
        return {_numCus * kTbsPerCu};
    }

    SimTask
    tbMain(TbContext &ctx) override
    {
        std::uint32_t violations = 0;
        for (const auto &[local, region] :
             _schedule[ctx.tbGlobal()]) {
            MutexAddrs lock = local ? _localLocks[region]
                                    : _globalLocks[region];
            Addr base = local ? _localRegions[region]
                              : _globalRegions[region];
            Scope scope = local ? Scope::Local : Scope::Global;

            MutexTicket ticket;
            co_await mutexLock(ctx, lock, MutexKind::Spin, scope,
                               ticket);
            // Mutual-exclusion monitor: tag the region with our id;
            // it must still be ours at the end of the section, and
            // our own write must be immediately readable.
            Addr holder = base + kRegionWords * kWordBytes;
            co_await ctx.store(holder, ctx.tbGlobal() + 1);
            if (co_await ctx.load(holder) != ctx.tbGlobal() + 1)
                violations += 1u << 16; // read-own-write failure
            // Read every word; all must carry the same generation.
            std::uint32_t first = co_await ctx.load(base);
            for (unsigned w = 1; w < kRegionWords; ++w) {
                std::uint32_t v = co_await ctx.load(
                    base + w * kWordBytes);
                if (v != first)
                    ++violations;
            }
            for (unsigned w = 0; w < kRegionWords; ++w) {
                co_await ctx.store(base + w * kWordBytes,
                                   first + 1);
            }
            if (co_await ctx.load(holder) != ctx.tbGlobal() + 1)
                violations += 1u << 24; // exclusion violated
            co_await mutexUnlock(ctx, lock, MutexKind::Spin, scope,
                                 ticket);
        }
        co_await ctx.store(_violations +
                               ctx.tbGlobal() * kWordBytes,
                           violations);
    }

    std::vector<std::string>
    check(WorkloadEnv &env) override
    {
        std::vector<std::string> failures;
        for (unsigned tb = 0; tb < _numCus * kTbsPerCu; ++tb) {
            std::uint32_t v = env.debugRead(
                _violations + tb * kWordBytes);
            if (v != 0) {
                failures.push_back(
                    "TB " + std::to_string(tb) +
                    " violations: torn=" +
                    std::to_string(v & 0xffff) + " own-write=" +
                    std::to_string((v >> 16) & 0xff) +
                    " exclusion=" + std::to_string(v >> 24));
            }
        }
        for (unsigned r = 0; r < kGlobalRegions; ++r) {
            for (unsigned w = 0; w < kRegionWords; ++w) {
                std::uint32_t got = env.debugRead(
                    _globalRegions[r] + w * kWordBytes);
                if (got != _globalCsCount[r]) {
                    failures.push_back(
                        "global region " + std::to_string(r) +
                        " word " + std::to_string(w) + " = " +
                        std::to_string(got) + ", expected " +
                        std::to_string(_globalCsCount[r]));
                }
            }
        }
        for (unsigned cu = 0; cu < _numCus; ++cu) {
            for (unsigned w = 0; w < kRegionWords; ++w) {
                std::uint32_t got = env.debugRead(
                    _localRegions[cu] + w * kWordBytes);
                if (got != _localCsCount[cu]) {
                    failures.push_back(
                        "local region " + std::to_string(cu) +
                        " word " + std::to_string(w) + " = " +
                        std::to_string(got) + ", expected " +
                        std::to_string(_localCsCount[cu]));
                }
            }
        }
        return failures;
    }

  private:
    static constexpr unsigned kGlobalRegions = 3;
    static constexpr unsigned kRegionWords = 24; // crosses lines
    static constexpr unsigned kTbsPerCu = 2;

    struct Step
    {
        bool local;
        unsigned region;
    };

    std::uint64_t _seed;
    unsigned _iterations;
    unsigned _numCus = 0;
    std::vector<MutexAddrs> _globalLocks, _localLocks;
    std::vector<Addr> _globalRegions, _localRegions;
    Addr _violations = 0;
    std::vector<std::uint32_t> _globalCsCount, _localCsCount;
    std::vector<std::vector<Step>> _schedule;
};

class RandomKernelRotation : public Workload
{
  public:
    explicit RandomKernelRotation(std::uint64_t seed) : _seed(seed) {}

    std::string name() const override { return "random-kernels"; }

    void
    init(WorkloadEnv &env) override
    {
        Rng rng(_seed);
        _sliceWords = 8 + static_cast<unsigned>(rng.below(40));
        _rotation = 1 + static_cast<unsigned>(rng.below(kTbs - 1));
        _data = env.alloc(kTbs * _sliceWords * kWordBytes);
        _results = env.alloc(kTbs * kWordBytes);
    }

    unsigned numKernels() const override { return kKernels; }
    KernelInfo kernelInfo(unsigned) const override { return {kTbs}; }

    SimTask
    tbMain(TbContext &ctx) override
    {
        unsigned tb = ctx.tbGlobal();
        unsigned k = ctx.kernel();
        if (k + 1 < kKernels) {
            // Write my slice tagged with the kernel number.
            for (unsigned w = 0; w < _sliceWords; ++w) {
                co_await ctx.store(
                    _data + (tb * _sliceWords + w) * kWordBytes,
                    tag(k, tb, w));
            }
        }
        if (k > 0) {
            // Verify the slice written last kernel by a rotated TB.
            unsigned src = (tb + k * _rotation) % kTbs;
            std::uint32_t bad = 0;
            for (unsigned w = 0; w < _sliceWords; ++w) {
                std::uint32_t got = co_await ctx.load(
                    _data + (src * _sliceWords + w) * kWordBytes);
                if (got != tag(k - 1, src, w))
                    ++bad;
            }
            if (k + 1 == kKernels) {
                co_await ctx.store(_results + tb * kWordBytes, bad);
            } else if (bad) {
                co_await ctx.store(_results + tb * kWordBytes, bad);
            }
        }
    }

    std::vector<std::string>
    check(WorkloadEnv &env) override
    {
        std::vector<std::string> failures;
        for (unsigned tb = 0; tb < kTbs; ++tb) {
            std::uint32_t bad =
                env.debugRead(_results + tb * kWordBytes);
            if (bad != 0) {
                failures.push_back(
                    "TB " + std::to_string(tb) + " saw " +
                    std::to_string(bad) +
                    " stale words across kernel boundaries");
            }
        }
        return failures;
    }

  private:
    static constexpr unsigned kTbs = 30;
    static constexpr unsigned kKernels = 4;

    static std::uint32_t
    tag(unsigned kernel, unsigned tb, unsigned w)
    {
        return (kernel << 20) ^ (tb << 10) ^ w ^ 0xa5a5;
    }

    std::uint64_t _seed;
    unsigned _sliceWords = 0;
    unsigned _rotation = 1;
    Addr _data = 0, _results = 0;
};

using PropParam = std::tuple<ProtocolConfig, std::uint64_t>;

class CoherenceProperty : public ::testing::TestWithParam<PropParam>
{
};

struct PropName
{
    std::string
    operator()(const ::testing::TestParamInfo<PropParam> &info) const
    {
        std::string name = std::get<0>(info.param).shortName() +
                           "_seed" +
                           std::to_string(std::get<1>(info.param));
        for (auto &c : name) {
            if (c == '+')
                c = '_';
        }
        return name;
    }
};

} // namespace

TEST_P(CoherenceProperty, LockedRegionsStayCoherent)
{
    const auto &[proto, seed] = GetParam();
    RandomLockedRegions workload(seed, 6);
    SystemConfig config;
    config.protocol = proto;
    config.execution.seed = seed;
    System system(config);
    RunResult result = system.run(workload);
    ASSERT_TRUE(result.ok()) << result.checkFailures.front();
}

TEST_P(CoherenceProperty, KernelRotationSeesFreshData)
{
    const auto &[proto, seed] = GetParam();
    RandomKernelRotation workload(seed);
    SystemConfig config;
    config.protocol = proto;
    config.execution.seed = seed;
    System system(config);
    RunResult result = system.run(workload);
    ASSERT_TRUE(result.ok()) << result.checkFailures.front();
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CoherenceProperty,
    ::testing::Combine(::testing::ValuesIn(test::allConfigs()),
                       ::testing::Values(1u, 2u, 3u, 4u)),
    PropName{});
