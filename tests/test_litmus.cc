/**
 * @file
 * Litmus tests run through the full stack (GpuDevice + workloads) on
 * every studied configuration: message passing, kernel-boundary
 * visibility, store buffering at releases, and HRF scope transitivity.
 */

#include <gtest/gtest.h>

#include "test_util.hh"
#include "workloads/sync_primitives.hh"

using namespace nosync;
using namespace nosync::test;

namespace
{

/** Message passing: TB0 writes data then releases a flag; TB1
 *  acquires the flag then must see the data. */
class MessagePassing : public Workload
{
  public:
    std::string name() const override { return "litmus-mp"; }

    void
    init(WorkloadEnv &env) override
    {
        _data = env.alloc(kLineBytes);
        _flag = env.alloc(kLineBytes);
        _result = env.alloc(kLineBytes);
    }

    KernelInfo kernelInfo(unsigned) const override
    {
        // Two TBs on different CUs (assignment is round-robin).
        return {2};
    }

    SimTask
    tbMain(TbContext &ctx) override
    {
        if (ctx.tbGlobal() == 0) {
            co_await ctx.store(_data, 41);
            co_await ctx.store(_data + 4, 42);
            co_await ctx.atomic(
                ctx.atomicStore(_flag, 1, Scope::Global));
            co_return;
        }
        while (true) {
            std::uint32_t f = co_await ctx.atomic(
                ctx.atomicLoad(_flag, Scope::Global));
            if (f == 1)
                break;
        }
        std::uint32_t a = co_await ctx.load(_data);
        std::uint32_t b = co_await ctx.load(_data + 4);
        co_await ctx.store(_result, a);
        co_await ctx.store(_result + 4, b);
    }

    std::vector<std::string>
    check(WorkloadEnv &env) override
    {
        std::vector<std::string> failures;
        if (env.debugRead(_result) != 41 ||
            env.debugRead(_result + 4) != 42) {
            failures.push_back("consumer read stale data after "
                               "acquire");
        }
        return failures;
    }

  private:
    Addr _data = 0, _flag = 0, _result = 0;
};

/** Kernel-boundary visibility: kernel 0 TBs write, kernel 1 TBs read
 *  rotated slices; the implicit kernel release/acquire must order
 *  them. */
class KernelBoundary : public Workload
{
  public:
    std::string name() const override { return "litmus-kernel"; }

    void
    init(WorkloadEnv &env) override
    {
        _data = env.alloc(kTbs * kWordsEach * kWordBytes);
        _result = env.alloc(kTbs * kWordBytes);
    }

    unsigned numKernels() const override { return 2; }
    KernelInfo kernelInfo(unsigned) const override { return {kTbs}; }

    SimTask
    tbMain(TbContext &ctx) override
    {
        unsigned tb = ctx.tbGlobal();
        if (ctx.kernel() == 0) {
            for (unsigned w = 0; w < kWordsEach; ++w) {
                co_await ctx.store(
                    _data + (tb * kWordsEach + w) * kWordBytes,
                    tb * 1000 + w);
            }
            co_return;
        }
        // Kernel 1: read the slice written by the "next" TB.
        unsigned src = (tb + 1) % kTbs;
        std::uint32_t sum = 0;
        for (unsigned w = 0; w < kWordsEach; ++w) {
            sum += co_await ctx.load(
                _data + (src * kWordsEach + w) * kWordBytes);
        }
        co_await ctx.store(_result + tb * kWordBytes, sum);
    }

    std::vector<std::string>
    check(WorkloadEnv &env) override
    {
        std::vector<std::string> failures;
        for (unsigned tb = 0; tb < kTbs; ++tb) {
            unsigned src = (tb + 1) % kTbs;
            std::uint32_t expected = 0;
            for (unsigned w = 0; w < kWordsEach; ++w)
                expected += src * 1000 + w;
            std::uint32_t got =
                env.debugRead(_result + tb * kWordBytes);
            if (got != expected) {
                failures.push_back(
                    "TB " + std::to_string(tb) +
                    " read stale data across a kernel boundary");
            }
        }
        return failures;
    }

  private:
    static constexpr unsigned kTbs = 30;
    static constexpr unsigned kWordsEach = 24; // spans lines

    Addr _data = 0, _result = 0;
};

/**
 * HRF-Indirect transitivity: TB0 writes data and releases locally;
 * TB1 (same CU) acquires locally, then releases globally; TB2 (other
 * CU) acquires globally and must see TB0's write.
 */
class ScopeTransitivity : public Workload
{
  public:
    std::string name() const override { return "litmus-transitive"; }

    void
    init(WorkloadEnv &env) override
    {
        _data = env.alloc(kLineBytes);
        _localFlag = env.alloc(kLineBytes);
        _globalFlag = env.alloc(kLineBytes);
        _result = env.alloc(kLineBytes);
        _numCus = env.numCus();
    }

    KernelInfo kernelInfo(unsigned) const override
    {
        // TB0 and TB1 land on CU 0; TB2 lands on CU 1.
        return {_numCus + 2};
    }

    SimTask
    tbMain(TbContext &ctx) override
    {
        if (ctx.tbGlobal() == 0) {
            // Producer on CU 0.
            co_await ctx.store(_data, 2026);
            co_await ctx.atomic(
                ctx.atomicStore(_localFlag, 1, Scope::Local));
            co_return;
        }
        if (ctx.tbGlobal() == _numCus) {
            // Relay on CU 0 (second TB there).
            while (true) {
                std::uint32_t f = co_await ctx.atomic(
                    ctx.atomicLoad(_localFlag, Scope::Local));
                if (f == 1)
                    break;
            }
            co_await ctx.atomic(
                ctx.atomicStore(_globalFlag, 1, Scope::Global));
            co_return;
        }
        if (ctx.tbGlobal() == 1) {
            // Observer on CU 1.
            while (true) {
                std::uint32_t f = co_await ctx.atomic(
                    ctx.atomicLoad(_globalFlag, Scope::Global));
                if (f == 1)
                    break;
            }
            std::uint32_t v = co_await ctx.load(_data);
            co_await ctx.store(_result, v);
        }
        co_return;
    }

    std::vector<std::string>
    check(WorkloadEnv &env) override
    {
        std::vector<std::string> failures;
        if (env.debugRead(_result) != 2026) {
            failures.push_back(
                "transitive release chain leaked stale data (got " +
                std::to_string(env.debugRead(_result)) + ")");
        }
        return failures;
    }

  private:
    Addr _data = 0, _localFlag = 0, _globalFlag = 0, _result = 0;
    unsigned _numCus = 0;
};

/** Store buffering: both TBs store then acquire-read the other's
 *  word through sync accesses; at least one must see the other's
 *  store (no "both read 0" outcome once releases are used). */
class StoreBufferingSc : public Workload
{
  public:
    std::string name() const override { return "litmus-sb"; }

    void
    init(WorkloadEnv &env) override
    {
        _x = env.alloc(kLineBytes);
        _y = env.alloc(kLineBytes);
        _rx = env.alloc(kLineBytes);
        _ry = env.alloc(kLineBytes);
    }

    KernelInfo kernelInfo(unsigned) const override { return {2}; }

    SimTask
    tbMain(TbContext &ctx) override
    {
        if (ctx.tbGlobal() == 0) {
            co_await ctx.atomic(ctx.atomicStore(_x, 1, Scope::Global));
            std::uint32_t v = co_await ctx.atomic(
                ctx.atomicLoad(_y, Scope::Global));
            co_await ctx.store(_rx, v + 100);
        } else {
            co_await ctx.atomic(ctx.atomicStore(_y, 1, Scope::Global));
            std::uint32_t v = co_await ctx.atomic(
                ctx.atomicLoad(_x, Scope::Global));
            co_await ctx.store(_ry, v + 100);
        }
    }

    std::vector<std::string>
    check(WorkloadEnv &env) override
    {
        std::vector<std::string> failures;
        std::uint32_t rx = env.debugRead(_rx);
        std::uint32_t ry = env.debugRead(_ry);
        // Sync accesses are SC: both reading 0 is forbidden.
        if (rx == 100 && ry == 100) {
            failures.push_back(
                "store buffering violated SC for sync accesses");
        }
        return failures;
    }

  private:
    Addr _x = 0, _y = 0, _rx = 0, _ry = 0;
};

class LitmusTest : public ::testing::TestWithParam<ProtocolConfig>
{
  protected:
    RunResult
    runOn(Workload &workload)
    {
        SystemConfig config;
        config.protocol = GetParam();
        System system(config);
        return system.run(workload);
    }
};

} // namespace

TEST_P(LitmusTest, MessagePassing)
{
    MessagePassing workload;
    RunResult result = runOn(workload);
    EXPECT_TRUE(result.ok()) << result.checkFailures.front();
}

TEST_P(LitmusTest, KernelBoundaryVisibility)
{
    KernelBoundary workload;
    RunResult result = runOn(workload);
    EXPECT_TRUE(result.ok()) << result.checkFailures.front();
}

TEST_P(LitmusTest, ScopeTransitivity)
{
    ScopeTransitivity workload;
    RunResult result = runOn(workload);
    EXPECT_TRUE(result.ok()) << result.checkFailures.front();
}

TEST_P(LitmusTest, StoreBufferingScForSync)
{
    StoreBufferingSc workload;
    RunResult result = runOn(workload);
    EXPECT_TRUE(result.ok()) << result.checkFailures.front();
}

INSTANTIATE_TEST_SUITE_P(AllConfigs, LitmusTest,
                         ::testing::ValuesIn(test::allConfigs()),
                         test::ConfigName{});
