/**
 * @file
 * Tests for the reporting helpers and the application models' host
 * mirrors (every app's simulated output must equal its host-side
 * expected computation at multiple sizes, and the work-partitioning
 * schemes must cover their domains exactly).
 */

#include <gtest/gtest.h>

#include "core/report.hh"
#include "test_util.hh"
#include "workloads/apps.hh"
#include "workloads/registry.hh"

using namespace nosync;
using namespace nosync::test;

// ---------------------------------------------------------------------
// Report helpers
// ---------------------------------------------------------------------

namespace
{

RunResult
fakeRun(const std::string &config, Tick cycles, double energy,
        double traffic)
{
    RunResult run;
    run.config = config;
    run.cycles = cycles;
    run.energyTotal = energy;
    run.trafficTotal = traffic;
    return run;
}

} // namespace

TEST(Report, MetricSelection)
{
    RunResult run = fakeRun("GD", 100, 2.5, 7.0);
    EXPECT_DOUBLE_EQ(metricOf(run, 0), 100.0);
    EXPECT_DOUBLE_EQ(metricOf(run, 1), 2.5);
    EXPECT_DOUBLE_EQ(metricOf(run, 2), 7.0);
}

TEST(Report, AverageNormalized)
{
    std::vector<WorkloadResults> results(2);
    results[0].workload = "a";
    results[0].runs = {fakeRun("GD", 100, 1, 1),
                       fakeRun("DD", 50, 1, 1)};
    results[1].workload = "b";
    results[1].runs = {fakeRun("GD", 200, 1, 1),
                       fakeRun("DD", 300, 1, 1)};
    // DD vs GD: 0.5 and 1.5 -> mean 1.0
    EXPECT_DOUBLE_EQ(averageNormalized(results, 0, 1, 0), 1.0);
    // GD vs itself: 1.0
    EXPECT_DOUBLE_EQ(averageNormalized(results, 0, 0, 0), 1.0);
}

TEST(Report, RenderFigureContainsRowsAndAverage)
{
    std::vector<WorkloadResults> results(1);
    results[0].workload = "bench";
    results[0].runs = {fakeRun("GD", 100, 1, 1),
                       fakeRun("DD", 80, 1, 1)};
    std::string table = renderFigure(results, 0, 0, "test table");
    EXPECT_NE(table.find("test table"), std::string::npos);
    EXPECT_NE(table.find("bench"), std::string::npos);
    EXPECT_NE(table.find("GD"), std::string::npos);
    EXPECT_NE(table.find("80.00%"), std::string::npos);
    EXPECT_NE(table.find("AVG"), std::string::npos);
}

// ---------------------------------------------------------------------
// App model invariants
// ---------------------------------------------------------------------

namespace
{

void
expectAppPasses(Workload &workload,
                ProtocolConfig proto = ProtocolConfig::dd())
{
    SystemConfig config;
    config.protocol = proto;
    System system(config);
    RunResult result = system.run(workload);
    ASSERT_TRUE(result.ok()) << workload.name() << ": "
                             << result.checkFailures.front();
}

} // namespace

TEST(AppModels, BackpropMatchesHostAtOddSizes)
{
    Backprop bp(96, 40); // not multiples of the CU count
    expectAppPasses(bp);
}

TEST(AppModels, PathfinderMatchesHostAtOddWidth)
{
    Pathfinder pf(1000, 5); // width not divisible by 16 TBs
    expectAppPasses(pf);
}

TEST(AppModels, LudRotatedSlicesCoverEveryRow)
{
    // The per-step block-cyclic rotation must still cover every
    // trailing row exactly once; the functional check would fail on
    // any gap or overlap.
    Lud lud(64, 17);
    expectAppPasses(lud);
}

TEST(AppModels, NwWavefrontCoversEveryBlock)
{
    Nw nw(64, 8);
    expectAppPasses(nw);
}

TEST(AppModels, SgemmTiledMatchesHost)
{
    Sgemm sgemm(64, 16);
    expectAppPasses(sgemm);
}

TEST(AppModels, StencilDoubleBufferParity)
{
    // Odd iteration count lands the result in the other buffer.
    Stencil st(32, 3);
    expectAppPasses(st);
}

TEST(AppModels, HotspotUsesPowerMap)
{
    Hotspot hs(32, 3);
    expectAppPasses(hs);
}

TEST(AppModels, SradTwoPhaseIterations)
{
    Srad srad(32, 3);
    expectAppPasses(srad);
}

TEST(AppModels, NnHandlesUnevenSlices)
{
    Nn nn(1000, 7);
    expectAppPasses(nn);
}

TEST(AppModels, LavaSmallBoxGrid)
{
    LavaMd lava(2, 6);
    expectAppPasses(lava);
}

TEST(AppModels, LavaOverflowsStoreBufferOnGpu)
{
    // The defining LavaMD behaviour: per-CU force footprint exceeds
    // the store buffer, forcing overflow drains under GPU coherence.
    LavaMd lava(4, 20);
    SystemConfig config;
    config.protocol = ProtocolConfig::gd();
    System system(config);
    RunResult result = system.run(lava);
    ASSERT_TRUE(result.ok());
    double drains = 0;
    for (unsigned cu = 0; cu < system.numCus(); ++cu) {
        drains += system.stats()
                      .find("l1." + std::to_string(cu) +
                            ".sb_overflow_drains")
                      ->value();
    }
    EXPECT_GT(drains, 0.0);
}

TEST(AppModels, ReadOnlyRegionsDeclaredByApps)
{
    // Apps with read-only inputs must declare them (DD+RO depends on
    // it): run each on DD+RO and verify region-preserved words.
    for (const char *name : {"NN", "NW", "SGEMM", "LAVA"}) {
        auto workload = makeScaled(name, 10);
        SystemConfig config;
        config.protocol = ProtocolConfig::ddro();
        System system(config);
        RunResult result = system.run(*workload);
        ASSERT_TRUE(result.ok()) << name;
        EXPECT_FALSE(system.regions().empty()) << name;
    }
}
