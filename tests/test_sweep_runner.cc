/**
 * @file
 * Tests for the parallel sweep runner: full index coverage, job-index
 * result ordering, and — the property every figure depends on — that
 * a parallel sweep of real simulations is bitwise identical to the
 * serial run.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <fstream>
#include <sstream>
#include <vector>

#include "core/system.hh"
#include "runner/bench_json.hh"
#include "runner/json_writer.hh"
#include "runner/sweep_runner.hh"
#include "workloads/registry.hh"

using namespace nosync;

TEST(SweepRunner, CoversEveryIndexExactlyOnce)
{
    SweepRunner runner(8);
    constexpr std::size_t kJobs = 100;
    std::vector<std::atomic<int>> hits(kJobs);
    runner.forEach(kJobs, [&](std::size_t i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < kJobs; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(SweepRunner, MapReturnsResultsInJobIndexOrder)
{
    SweepRunner runner(8);
    auto out = runner.map(64, [](std::size_t i) { return 3 * i; });
    ASSERT_EQ(out.size(), 64u);
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], 3 * i);
}

TEST(SweepRunner, SerialRunnerExecutesInline)
{
    SweepRunner runner(1);
    std::vector<std::size_t> order;
    runner.forEach(5, [&](std::size_t i) { order.push_back(i); });
    EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(SweepRunner, CancelStopsClaimingNewJobs)
{
    SweepRunner runner(1);
    int ran = 0;
    runner.forEach(100, [&](std::size_t i) {
        ++ran;
        if (i == 4)
            runner.cancel();
    });
    EXPECT_EQ(ran, 5);
    EXPECT_TRUE(runner.cancelled());
}

TEST(SweepRunner, ResolveJobsMapsZeroToHardware)
{
    EXPECT_GE(SweepRunner::resolveJobs(0), 1u);
    EXPECT_EQ(SweepRunner::resolveJobs(3), 3u);
}

namespace
{

RunResult
runCell(const char *workload_name, const ProtocolConfig &proto)
{
    auto workload = makeScaled(workload_name, 10);
    SystemConfig config;
    config.protocol = proto;
    System system(config);
    return system.run(*workload);
}

/**
 * All simulated (deterministic) fields. Host-side timing lives in
 * RunResult::host and is excluded by construction — nothing here
 * reaches into that struct.
 */
void
expectSameSimResult(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.workload, b.workload);
    EXPECT_EQ(a.config, b.config);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.energy, b.energy);
    EXPECT_EQ(a.energyTotal, b.energyTotal);
    EXPECT_EQ(a.traffic, b.traffic);
    EXPECT_EQ(a.trafficTotal, b.trafficTotal);
    EXPECT_EQ(a.checkFailures, b.checkFailures);
}

} // namespace

TEST(SweepRunner, ParallelSimulationSweepMatchesSerialBitwise)
{
    // The exact property the figures depend on: an 8-thread sweep of
    // real simulations must reproduce the serial results bit for bit,
    // in the same aggregation order.
    struct Cell
    {
        const char *workload;
        ProtocolConfig proto;
    };
    std::vector<Cell> cells;
    for (const char *name : {"NN", "FAM_G", "SS_L"}) {
        for (const auto &proto :
             {ProtocolConfig::gd(), ProtocolConfig::dd()})
            cells.push_back(Cell{name, proto});
    }

    SweepRunner serial(1);
    auto golden = serial.map(cells.size(), [&](std::size_t i) {
        return runCell(cells[i].workload, cells[i].proto);
    });

    SweepRunner parallel(8);
    auto out = parallel.map(cells.size(), [&](std::size_t i) {
        return runCell(cells[i].workload, cells[i].proto);
    });

    ASSERT_EQ(out.size(), golden.size());
    for (std::size_t i = 0; i < out.size(); ++i) {
        SCOPED_TRACE(golden[i].workload + " on " + golden[i].config);
        expectSameSimResult(out[i], golden[i]);
    }
}

TEST(JsonWriter, EscapesAndNests)
{
    std::ostringstream os;
    JsonWriter json(os);
    json.beginObject();
    json.key("name").value(std::string("a\"b\\c\n"));
    json.key("n").value(std::uint64_t{42});
    json.key("list").beginArray();
    json.value(1.5);
    json.value(true);
    json.endArray();
    json.endObject();
    EXPECT_EQ(os.str(),
              "{\"name\":\"a\\\"b\\\\c\\n\",\"n\":42,"
              "\"list\":[1.5,true]}");
}

TEST(SweepRecord, WritesParseableRecord)
{
    SweepRecord record;
    record.harness = "test";
    record.jobs = 2;
    record.wallMillis = 12.5;
    RunResult r;
    r.workload = "NN";
    r.config = "DD";
    r.cycles = 1000;
    r.energyTotal = 5.0;
    r.trafficTotal = 7.0;
    r.host.millis = 2.0;
    r.host.eventsExecuted = 400;
    record.add(r, 10, 0xc0ffee);

    std::string path = testing::TempDir() + "sweep_record.json";
    ASSERT_TRUE(record.writeJson(path));

    std::ifstream in(path);
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    EXPECT_NE(text.find("\"harness\":\"test\""), std::string::npos);
    EXPECT_NE(text.find("\"jobs\":2"), std::string::npos);
    EXPECT_NE(text.find("\"workload\":\"NN\""), std::string::npos);
    EXPECT_NE(text.find("\"fault_seed\":12648430"),
              std::string::npos);
    EXPECT_NE(text.find("\"cycles\":1000"), std::string::npos);
    EXPECT_NE(text.find("\"events\":400"), std::string::npos);
}
