/**
 * @file
 * Tests for the System public API: construction per configuration,
 * allocation, coherent debug reads, result reporting, and the UTS
 * workload's tree generation.
 */

#include <gtest/gtest.h>

#include "test_util.hh"
#include "workloads/registry.hh"
#include "workloads/uts.hh"

using namespace nosync;
using namespace nosync::test;

TEST(System, BuildsEveryConfiguration)
{
    for (const auto &proto : test::allConfigs()) {
        SystemConfig config;
        config.protocol = proto;
        System system(config);
        EXPECT_EQ(system.numCus(), 15u);
        EXPECT_EQ(system.mesh().numNodes(), 16u);
        if (proto.protocol == CoherenceProtocol::Denovo) {
            EXPECT_NE(as<DenovoL1Cache>(system.l1(0)), nullptr);
            EXPECT_EQ(as<GpuL1Cache>(system.l1(0)), nullptr);
        } else {
            EXPECT_NE(as<GpuL1Cache>(system.l1(0)), nullptr);
            EXPECT_EQ(as<DenovoL1Cache>(system.l1(0)), nullptr);
        }
    }
}

TEST(System, AllocIsLineAlignedAndDisjoint)
{
    SystemConfig config;
    System system(config);
    Addr a = system.alloc(10);
    Addr b = system.alloc(100);
    EXPECT_EQ(a % kLineBytes, 0u);
    EXPECT_EQ(b % kLineBytes, 0u);
    EXPECT_GE(b, a + kLineBytes);
}

TEST(System, DebugReadFallsBackToMemory)
{
    SystemConfig config;
    System system(config);
    system.writeInit(0x5000, 909);
    EXPECT_EQ(system.debugRead(0x5000), 909u);
}

TEST(System, HrfFlagTracksConsistency)
{
    SystemConfig config;
    config.protocol = ProtocolConfig::gh();
    System gh(config);
    EXPECT_TRUE(gh.hrf());
    config.protocol = ProtocolConfig::dd();
    System dd(config);
    EXPECT_FALSE(dd.hrf());
}

TEST(System, RunFillsReportFields)
{
    auto workload = makeScaled("NN", 100);
    SystemConfig config;
    System system(config);
    RunResult result = system.run(*workload);
    EXPECT_TRUE(result.ok());
    EXPECT_EQ(result.workload, "NN");
    EXPECT_EQ(result.config, "DD");
    EXPECT_GT(result.cycles, 0u);
    EXPECT_GT(result.energyTotal, 0.0);
    EXPECT_GT(result.trafficTotal, 0.0);
    double component_sum = 0.0;
    for (double c : result.energy)
        component_sum += c;
    EXPECT_DOUBLE_EQ(component_sum, result.energyTotal);
}

TEST(System, WatchdogReportsFailure)
{
    ScopedLeakTolerance tolerate_abandoned_coroutines;
    // A spin mutex can't finish in 100 cycles.
    auto workload = makeScaled("SPM_G", 10);
    SystemConfig config;
    config.execution.maxCycles = 100;
    System system(config);
    RunResult result = system.run(*workload);
    EXPECT_FALSE(result.ok());
}

TEST(SystemDeathTest, SecondRunIsFatal)
{
    auto w1 = makeScaled("NN", 100);
    auto w2 = makeScaled("NN", 100);
    SystemConfig config;
    System system(config);
    system.run(*w1);
    EXPECT_EXIT(system.run(*w2),
                ::testing::ExitedWithCode(1), "fresh System");
}

TEST(Uts, TreeCoversAllNodes)
{
    // Generation must assign every node id exactly once regardless
    // of seed (it retries dead branches deterministically).
    for (std::uint64_t seed : {1ull, 2ull, 99ull}) {
        UtsParams params;
        params.numNodes = 512;
        params.shapeSeed = seed;
        Uts uts(params);
        SystemConfig config;
        System system(config);
        RunResult result = system.run(uts);
        ASSERT_TRUE(result.ok())
            << "seed " << seed << ": "
            << result.checkFailures.front();
    }
}

TEST(Uts, NodeValueIsStable)
{
    EXPECT_EQ(Uts::nodeValue(0), Uts::nodeValue(0));
    EXPECT_NE(Uts::nodeValue(1), Uts::nodeValue(2));
}

TEST(GpuDevice, MultiKernelRunsAllKernels)
{
    auto workload = makeScaled("PF", 100); // 10 kernels
    SystemConfig config;
    System system(config);
    RunResult result = system.run(*workload);
    EXPECT_TRUE(result.ok());
    EXPECT_DOUBLE_EQ(system.stats().find("gpu.kernels_launched")->value(), 10.0);
}

TEST(GpuDevice, CountsThreadBlocks)
{
    auto workload = makeScaled("NN", 100);
    SystemConfig config;
    System system(config);
    system.run(*workload);
    EXPECT_DOUBLE_EQ(system.stats().find("gpu.tbs_executed")->value(), 30.0);
}
