/**
 * @file
 * Tests for the GPU execution layer: coroutine awaiters (load,
 * loadMany, storeMany, atomic, wait, scratch), sub-task composition,
 * kernel sequencing, and TB-to-CU assignment.
 */

#include <gtest/gtest.h>

#include "test_util.hh"
#include "workloads/registry.hh"

using namespace nosync;
using namespace nosync::test;

namespace
{

/** Workload harness running a user-supplied coroutine body. */
class LambdaWorkload : public Workload
{
  public:
    using Body = std::function<SimTask(TbContext &, LambdaWorkload &)>;

    LambdaWorkload(unsigned tbs, Body body)
        : _tbs(tbs), _body(std::move(body))
    {}

    std::string name() const override { return "lambda"; }

    void
    init(WorkloadEnv &env) override
    {
        scratchBase = env.alloc(4096);
        env.writeInit(scratchBase, 17);
        env.writeInit(scratchBase + 4, 23);
        env.writeInit(scratchBase + 8, 31);
    }

    KernelInfo kernelInfo(unsigned) const override { return {_tbs}; }

    SimTask
    tbMain(TbContext &ctx) override
    {
        return _body(ctx, *this);
    }

    Addr scratchBase = 0;
    std::atomic<unsigned> observations{0};
    std::vector<std::uint32_t> seen =
        std::vector<std::uint32_t>(64, 0);

  private:
    unsigned _tbs;
    Body _body;
};

RunResult
runLambda(LambdaWorkload &workload,
          ProtocolConfig proto = ProtocolConfig::dd())
{
    SystemConfig config;
    config.protocol = proto;
    System system(config);
    return system.run(workload);
}

} // namespace

TEST(GpuExec, LoadManyReturnsValuesInOrder)
{
    LambdaWorkload wl(1, [](TbContext &ctx, LambdaWorkload &self)
                          -> SimTask {
        std::vector<Addr> addrs{self.scratchBase,
                                self.scratchBase + 4,
                                self.scratchBase + 8};
        auto values = co_await ctx.loadMany(std::move(addrs));
        self.seen[0] = values[0];
        self.seen[1] = values[1];
        self.seen[2] = values[2];
        ++self.observations;
    });
    ASSERT_TRUE(runLambda(wl).ok());
    EXPECT_EQ(wl.observations, 1u);
    EXPECT_EQ(wl.seen[0], 17u);
    EXPECT_EQ(wl.seen[1], 23u);
    EXPECT_EQ(wl.seen[2], 31u);
}

TEST(GpuExec, EmptyLoadManyCompletesImmediately)
{
    LambdaWorkload wl(1, [](TbContext &ctx, LambdaWorkload &self)
                          -> SimTask {
        auto values = co_await ctx.loadMany(std::vector<Addr>{});
        self.seen[0] = static_cast<std::uint32_t>(values.size());
        ++self.observations;
        co_await ctx.wait(1);
    });
    ASSERT_TRUE(runLambda(wl).ok());
    EXPECT_EQ(wl.observations, 1u);
    EXPECT_EQ(wl.seen[0], 0u);
}

TEST(GpuExec, StoreManyWritesAllWords)
{
    LambdaWorkload wl(1, [](TbContext &ctx, LambdaWorkload &self)
                          -> SimTask {
        std::vector<std::pair<Addr, std::uint32_t>> stores;
        for (unsigned i = 0; i < 20; ++i) {
            stores.emplace_back(self.scratchBase + 64 + i * 4,
                                1000 + i);
        }
        co_await ctx.storeMany(std::move(stores));
        // Read back through the same L1.
        std::vector<Addr> check_addrs{self.scratchBase + 64,
                                      self.scratchBase + 64 + 19 * 4};
        auto values = co_await ctx.loadMany(std::move(check_addrs));
        self.seen[0] = values[0];
        self.seen[1] = values[1];
    });
    ASSERT_TRUE(runLambda(wl).ok());
    EXPECT_EQ(wl.seen[0], 1000u);
    EXPECT_EQ(wl.seen[1], 1019u);
}

TEST(GpuExec, WaitAdvancesTime)
{
    LambdaWorkload wl(1, [](TbContext &ctx, LambdaWorkload &self)
                          -> SimTask {
        Tick before = ctx.now();
        co_await ctx.wait(123);
        self.seen[0] = static_cast<std::uint32_t>(ctx.now() - before);
    });
    ASSERT_TRUE(runLambda(wl).ok());
    EXPECT_EQ(wl.seen[0], 123u);
}

TEST(GpuExec, ScratchChargesEnergy)
{
    LambdaWorkload wl(1, [](TbContext &ctx, LambdaWorkload &)
                          -> SimTask { co_await ctx.scratch(64); });
    SystemConfig config;
    System system(config);
    ASSERT_TRUE(system.run(wl).ok());
    EXPECT_GT(system.energy().component(EnergyComponent::Scratch),
              0.0);
}

TEST(GpuExec, SubTaskComposition)
{
    // A coroutine awaiting a helper coroutine, like the mutex
    // helpers do.
    struct Helper
    {
        static SimTask
        addOne(TbContext &ctx, Addr addr)
        {
            std::uint32_t v = co_await ctx.load(addr);
            co_await ctx.store(addr, v + 1);
        }
    };
    LambdaWorkload wl(1, [](TbContext &ctx, LambdaWorkload &self)
                          -> SimTask {
        for (int i = 0; i < 5; ++i)
            co_await Helper::addOne(ctx, self.scratchBase);
        self.seen[0] = co_await ctx.load(self.scratchBase);
    });
    ASSERT_TRUE(runLambda(wl).ok());
    EXPECT_EQ(wl.seen[0], 22u); // 17 + 5
}

TEST(GpuExec, TbAssignmentIsRoundRobin)
{
    // TB i runs on CU i % numCus with tbOnCu = i / numCus.
    LambdaWorkload wl(32, [](TbContext &ctx, LambdaWorkload &self)
                          -> SimTask {
        unsigned expected_cu = ctx.tbGlobal() % ctx.numCus();
        unsigned expected_slot = ctx.tbGlobal() / ctx.numCus();
        if (ctx.cu() == expected_cu && ctx.tbOnCu() == expected_slot)
            ++self.observations;
        co_await ctx.wait(1);
    });
    ASSERT_TRUE(runLambda(wl).ok());
    EXPECT_EQ(wl.observations, 32u);
}

TEST(GpuExec, PerTbRngIsDeterministicAcrossConfigs)
{
    auto collect = [](ProtocolConfig proto) {
        std::vector<std::uint32_t> out(8);
        LambdaWorkload wl(
            8, [&out](TbContext &ctx, LambdaWorkload &) -> SimTask {
                out[ctx.tbGlobal()] =
                    static_cast<std::uint32_t>(ctx.rng().next());
                co_await ctx.wait(1);
            });
        SystemConfig config;
        config.protocol = proto;
        System system(config);
        EXPECT_TRUE(system.run(wl).ok());
        return out;
    };
    EXPECT_EQ(collect(ProtocolConfig::gd()),
              collect(ProtocolConfig::dd()));
}

TEST(GpuExec, DeterministicAcrossIdenticalRuns)
{
    auto run_once = [] {
        auto workload = makeScaled("SPM_G", 10);
        SystemConfig config;
        config.protocol = ProtocolConfig::dd();
        System system(config);
        return system.run(*workload).cycles;
    };
    Tick a = run_once();
    Tick b = run_once();
    EXPECT_EQ(a, b);
}

TEST(GpuExec, KernelLaunchLatencyDelaysStart)
{
    LambdaWorkload wl(1, [](TbContext &ctx, LambdaWorkload &self)
                          -> SimTask {
        self.seen[0] = static_cast<std::uint32_t>(ctx.now());
        co_await ctx.wait(1);
    });
    SystemConfig config;
    config.execution.kernelLaunchLatency = 777;
    System system(config);
    ASSERT_TRUE(system.run(wl).ok());
    EXPECT_GE(wl.seen[0], 777u);
}
