/**
 * @file
 * Fault-injection harness tests: synchronization primitives complete
 * under injected network faults, faulted runs are deterministic and
 * functionally equivalent to fault-free golden runs, same-pair FIFO
 * survives injection, hangs produce structured reports, and the
 * ProtocolChecker actually catches corrupted protocol state.
 */

#include <gtest/gtest.h>

#include "core/protocol_checker.hh"
#include "core/report.hh"
#include "core/system.hh"
#include "noc/fault_injector.hh"
#include "test_util.hh"
#include "workloads/registry.hh"

using namespace nosync;
using namespace nosync::test;

namespace
{

SystemConfig
faultedConfig(const ProtocolConfig &proto, std::uint64_t fault_seed)
{
    SystemConfig config;
    config.protocol = proto;
    config.checking.checkPeriod = 1000;
    if (fault_seed != 0) {
        config.execution.faults.enabled = true;
        config.execution.faults.seed = fault_seed;
    }
    return config;
}

RunResult
runWorkload(const std::string &name, const ProtocolConfig &proto,
            std::uint64_t fault_seed)
{
    auto workload = makeScaled(name, 10);
    System system(faultedConfig(proto, fault_seed));
    return system.run(*workload);
}

class ChaosRun : public ::testing::TestWithParam<ProtocolConfig>
{
};

} // namespace

// Mutex, semaphore, and barrier workloads must complete and pass all
// invariant sweeps under several fault seeds.
TEST_P(ChaosRun, SyncPrimitivesCompleteUnderFaults)
{
    for (const char *name : {"FAM_G", "SPM_G", "TB_LG"}) {
        for (std::uint64_t seed : {11u, 22u, 33u, 44u, 55u}) {
            RunResult result = runWorkload(name, GetParam(), seed);
            EXPECT_TRUE(result.ok())
                << name << " on " << GetParam().shortName()
                << " fault-seed " << seed << ": "
                << (result.checkFailures.empty()
                        ? "?"
                        : result.checkFailures.front());
            EXPECT_FALSE(result.hang.has_value());
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Configs, ChaosRun,
                         ::testing::Values(ProtocolConfig::dd(),
                                           ProtocolConfig::gd()),
                         ConfigName{});

// A faulted run's final memory image must match a fault-free golden
// execution of the same workload.
TEST(ChaosGolden, FaultedRunMatchesGoldenMemory)
{
    for (const ProtocolConfig &proto :
         {ProtocolConfig::dd(), ProtocolConfig::gd()}) {
        auto golden_wl = makeScaled("FAM_G", 10);
        System golden(faultedConfig(proto, 0));
        ASSERT_TRUE(golden.run(*golden_wl).ok());

        auto faulted_wl = makeScaled("FAM_G", 10);
        System faulted(faultedConfig(proto, 1234));
        ASSERT_TRUE(faulted.run(*faulted_wl).ok());
        ASSERT_NE(faulted.faults(), nullptr);
        EXPECT_GT(faulted.faults()->jittered(), 0u);

        auto diffs = ProtocolChecker::compareMemory(faulted, golden);
        EXPECT_TRUE(diffs.empty())
            << proto.shortName() << ": " << diffs.front();
    }
}

// The same (workload, config, fault seed) triple must replay to the
// exact same cycle count, energy, and traffic.
TEST(ChaosGolden, IdenticalSeedsReproduceExactly)
{
    RunResult a = runWorkload("FAM_G", ProtocolConfig::dd(), 777);
    RunResult b = runWorkload("FAM_G", ProtocolConfig::dd(), 777);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_DOUBLE_EQ(a.energyTotal, b.energyTotal);
    EXPECT_DOUBLE_EQ(a.trafficTotal, b.trafficTotal);

    RunResult c = runWorkload("FAM_G", ProtocolConfig::dd(), 778);
    ASSERT_TRUE(c.ok());
    EXPECT_NE(a.cycles, c.cycles) << "different fault seeds should "
                                     "perturb timing differently";
}

// Fault injection must preserve per-(src, dst) FIFO delivery: the
// protocols rely on it, so the injector only reorders across pairs.
TEST(ChaosMesh, SamePairFifoSurvivesInjection)
{
    EventQueue eq;
    stats::StatSet stats;
    Mesh mesh(eq, stats);

    FaultConfig fc;
    fc.enabled = true;
    fc.seed = 99;
    fc.jitterProb = 0.8;
    fc.reorderProb = 0.4;
    FaultInjector faults(fc);
    mesh.setFaultInjector(&faults);

    std::vector<unsigned> order;
    for (unsigned i = 0; i < 200; ++i) {
        mesh.send(0, 15, 2, TrafficClass::Read,
                  [&order, i] { order.push_back(i); });
    }
    eq.run();

    ASSERT_EQ(order.size(), 200u);
    for (unsigned i = 0; i < 200; ++i)
        EXPECT_EQ(order[i], i) << "same-pair delivery reordered";
    EXPECT_GT(faults.jittered() + faults.delayed(), 0u);
}

// A run that trips the cycle watchdog must yield a structured hang
// report with the reproduction seed, and still account its partial
// traffic and energy.
TEST(ChaosHang, WatchdogProducesStructuredReport)
{
    ScopedLeakTolerance tolerate_abandoned_coroutines;
    auto workload = makeScaled("FAM_G", 10);
    SystemConfig config = faultedConfig(ProtocolConfig::dd(), 42);
    config.execution.maxCycles = 5000;
    System system(config);
    RunResult result = system.run(*workload);

    ASSERT_FALSE(result.ok());
    ASSERT_TRUE(result.hang.has_value());
    EXPECT_NE(result.hang->reason.find("watchdog"), std::string::npos);
    EXPECT_TRUE(result.hang->faultsEnabled);
    EXPECT_EQ(result.hang->faultSeed, 42u);
    EXPECT_FALSE(result.hang->tbWaits.empty())
        << "incomplete thread blocks should report wait states";

    std::string rendered = renderHangReport(*result.hang);
    EXPECT_NE(rendered.find("HANG REPORT"), std::string::npos);
    EXPECT_NE(rendered.find("fault-seed=42"), std::string::npos);
    EXPECT_NE(rendered.find("thread blocks"), std::string::npos);

    // Satellite: the hung run still reports partial metrics.
    EXPECT_GT(result.trafficTotal, 0.0);
    EXPECT_GT(result.energyTotal, 0.0);
}

// ---------------------------------------------------------------------
// ProtocolChecker regression: intentionally corrupted protocol state
// must be caught.
// ---------------------------------------------------------------------

TEST(ChaosChecker, CleanSystemSweepsClean)
{
    System system(faultedConfig(ProtocolConfig::dd(), 0));
    ProtocolChecker checker(system);
    EXPECT_TRUE(checker.sweepRacy().empty());
    EXPECT_TRUE(checker.sweepQuiesced().empty());
}

TEST(ChaosChecker, CatchesDoubleRegistration)
{
    System system(faultedConfig(ProtocolConfig::dd(), 0));
    Addr addr = 0x10000;
    as<DenovoL1Cache>(system.l1(0))->debugCorruptWordState(addr,
                                              WordState::Registered);
    as<DenovoL1Cache>(system.l1(1))->debugCorruptWordState(addr,
                                              WordState::Registered);

    auto violations = ProtocolChecker(system).sweepRacy();
    ASSERT_FALSE(violations.empty())
        << "two L1s owning one word must be flagged";
    bool found = false;
    for (const auto &v : violations)
        found |= v.find("registered in 2 L1s") != std::string::npos;
    EXPECT_TRUE(found) << violations.front();
}

TEST(ChaosChecker, CatchesBogusRegistryOwner)
{
    System system(faultedConfig(ProtocolConfig::dd(), 0));
    Addr addr = 0x10000; // line 0x10000 homes at bank 0
    as<DenovoL2Bank>(system.l2Bank(0))->debugSetOwner(addr, 120);

    auto violations = ProtocolChecker(system).sweepRacy();
    ASSERT_FALSE(violations.empty())
        << "registry entry pointing at a dead L1 must be flagged";
    bool found = false;
    for (const auto &v : violations)
        found |= v.find("invalid node") != std::string::npos;
    EXPECT_TRUE(found) << violations.front();
}

TEST(ChaosChecker, CatchesRegistryL1Disagreement)
{
    System system(faultedConfig(ProtocolConfig::dd(), 0));
    Addr addr = 0x10000;
    // Registry claims cu 0 owns the word, but cu 0's L1 does not.
    as<DenovoL2Bank>(system.l2Bank(0))->debugSetOwner(addr, 0);

    ProtocolChecker checker(system);
    // Legal mid-run (the L2 records the new owner before the L1's
    // registration completes), so the racy sweep must stay quiet...
    EXPECT_TRUE(checker.sweepRacy().empty());
    // ...but at quiesce the books must balance.
    auto violations = checker.sweepQuiesced();
    ASSERT_FALSE(violations.empty());
    bool found = false;
    for (const auto &v : violations)
        found |= v.find("does not hold it registered") !=
                 std::string::npos;
    EXPECT_TRUE(found) << violations.front();
}

TEST(ChaosChecker, CatchesLeakedStateAtQuiesce)
{
    System system(faultedConfig(ProtocolConfig::dd(), 0));
    // A registered word in an L1 that the registry knows nothing
    // about is both an agreement violation and, symmetrically, the
    // L1-side "leak" shape the quiesce sweep exists for.
    Addr addr = 0x10040;
    as<DenovoL1Cache>(system.l1(2))->debugCorruptWordState(addr,
                                              WordState::Registered);

    auto violations = ProtocolChecker(system).sweepQuiesced();
    ASSERT_FALSE(violations.empty());
    bool found = false;
    for (const auto &v : violations)
        found |= v.find("registry names") != std::string::npos;
    EXPECT_TRUE(found) << violations.front();
}

// An end-to-end mutation check: corrupt state *after* a real run and
// verify the quiesce sweep that System::run would perform reports it.
TEST(ChaosChecker, CorruptionAfterRealRunIsCaught)
{
    auto workload = makeScaled("FAM_G", 10);
    System system(faultedConfig(ProtocolConfig::dd(), 0));
    ASSERT_TRUE(system.run(*workload).ok());

    as<DenovoL1Cache>(system.l1(0))->debugCorruptWordState(0x10000,
                                              WordState::Registered);
    as<DenovoL1Cache>(system.l1(3))->debugCorruptWordState(0x10000,
                                              WordState::Registered);
    EXPECT_FALSE(ProtocolChecker(system).sweepRacy().empty());
}
