/**
 * @file
 * Axiomatic-checker tests: the static evaluator reproduces the
 * canonical litmus outcome sets and race verdicts per axiom set, the
 * publication axiom makes mis-scoped and cross-device releases
 * invisible exactly where the machine would hide them, and — the
 * closing of the loop — every litmus×config cell's axiomatic outcome
 * set and race verdict agrees with the DPOR explorer and the dynamic
 * race detector, with tampered operational reports caught by name.
 */

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "axiom/checker.hh"
#include "axiom/model.hh"
#include "axiom/program.hh"
#include "explore/explorer.hh"
#include "explore/litmus.hh"

using namespace nosync;
using namespace nosync::axiom;

namespace
{

std::vector<std::string>
outcomeSet(const AxiomCellReport &cell)
{
    std::vector<std::string> set;
    for (const AxiomOutcome &outcome : cell.outcomes)
        set.push_back(outcome.outcome);
    return set;
}

AxiomCellReport
checkNamed(const std::string &program, const ProtocolConfig &proto)
{
    std::unique_ptr<explore::LitmusWorkload> workload =
        explore::makeLitmus(program);
    EXPECT_NE(workload, nullptr) << program;
    return checkCell(*workload, proto);
}

explore::CellReport
exploreOne(const std::string &program, const ProtocolConfig &proto)
{
    explore::ExploreBudget budget;
    budget.maxSchedules = 512;
    SweepRunner runner(1);
    explore::Explorer explorer(budget, runner);
    return explorer.exploreCell(program, proto);
}

/**
 * The mis-scoped message-passing shape over an explicit machine
 * geometry: producer on CU 0, consumer on CU 1, release at
 * @p release_scope, consumer delayed past the producer.
 */
Program
misscopedShape(Scope release_scope, unsigned cus_per_device,
               unsigned devices)
{
    Program prog;
    prog.name = "misscoped_shape";
    prog.numVars = 2;
    prog.numRegs = 2;
    prog.varNames = {"data", "flag"};
    prog.cusPerDevice = cus_per_device;
    prog.devices = devices;

    Thread producer;
    producer.ops = {store(0, 41), atomicStore(1, 1, release_scope)};
    Thread consumer;
    consumer.ops = {delay(), atomicLoad(1, Scope::Global, 0),
                    load(0, 1)};
    prog.threads = {producer, consumer};
    return prog;
}

OutcomeFormatter
fdFormatter()
{
    return [](const std::vector<std::uint32_t> &regs) {
        std::ostringstream os;
        os << "f=" << regs[0] << " d=" << regs[1];
        return os.str();
    };
}

} // namespace

// Each protocol column maps to its declarative axiom set.
TEST(AxiomModel, ModelPerConfig)
{
    EXPECT_EQ(modelFor(ProtocolConfig::gd()).name, "sc-drf");
    EXPECT_EQ(modelFor(ProtocolConfig::dd()).name, "sc-drf");
    EXPECT_EQ(modelFor(ProtocolConfig::ddro()).name, "sc-drf");
    EXPECT_EQ(modelFor(ProtocolConfig::ddse()).name, "sc-drf-engine");
    EXPECT_EQ(modelFor(ProtocolConfig::gh()).name, "hrf-scoped");
    EXPECT_EQ(modelFor(ProtocolConfig::dh()).name, "hrf-scoped");

    EXPECT_TRUE(modelFor(ProtocolConfig::gh()).scoped);
    EXPECT_FALSE(modelFor(ProtocolConfig::gd()).scoped);
    EXPECT_TRUE(modelFor(ProtocolConfig::ddse()).engineSideSync);

    // DRF folds every annotation; HRF keeps them.
    AxiomModel drf = modelFor(ProtocolConfig::dd());
    AxiomModel hrf = modelFor(ProtocolConfig::dh());
    EXPECT_EQ(effectiveScope(drf, Scope::Local), Scope::Global);
    EXPECT_EQ(effectiveScope(hrf, Scope::Local), Scope::Local);
}

// Message passing: the acquire orders the guarded data read after the
// publication under every axiom set, so only the two canonical
// outcomes exist — and the guard makes exactly 3 admissible orders.
TEST(AxiomChecker, MpOutcomes)
{
    for (const ProtocolConfig &proto :
         {ProtocolConfig::gd(), ProtocolConfig::gh(),
          ProtocolConfig::ddse()}) {
        AxiomCellReport cell = checkNamed("mp", proto);
        EXPECT_EQ(cell.verdict, "race-free") << proto.shortName();
        EXPECT_TRUE(cell.oracleOk) << proto.shortName();
        EXPECT_EQ(cell.interleavings, 3u) << proto.shortName();
        EXPECT_EQ(outcomeSet(cell),
                  (std::vector<std::string>{"f=0", "f=1 d=41"}))
            << proto.shortName();
    }
}

// Store buffering under per-word-total-order axioms is SC: the
// both-read-zero outcome needs a cycle and must not appear.
TEST(AxiomChecker, SbExcludesNonScOutcome)
{
    AxiomCellReport cell = checkNamed("sb", ProtocolConfig::gd());
    EXPECT_EQ(cell.interleavings, 6u);
    EXPECT_EQ(outcomeSet(cell),
              (std::vector<std::string>{"r0=0 r1=1", "r0=1 r1=0",
                                        "r0=1 r1=1"}));
    EXPECT_TRUE(cell.oracleOk);
}

// Load buffering: both-read-one needs a causality cycle.
TEST(AxiomChecker, LbExcludesCausalityCycle)
{
    AxiomCellReport cell = checkNamed("lb", ProtocolConfig::dh());
    EXPECT_EQ(outcomeSet(cell),
              (std::vector<std::string>{"r0=0 r1=0", "r0=0 r1=1",
                                        "r0=1 r1=0"}));
    EXPECT_TRUE(cell.oracleOk);
}

// IRIW: the readers must agree on the write order.
TEST(AxiomChecker, IriwReadersAgreeOnWriteOrder)
{
    AxiomCellReport cell = checkNamed("iriw", ProtocolConfig::gd());
    EXPECT_TRUE(cell.oracleOk);
    EXPECT_EQ(cell.outcomes.size(), 15u);
    for (const AxiomOutcome &outcome : cell.outcomes)
        EXPECT_NE(outcome.outcome, "a=1 b=0 c=1 d=0");
}

// The mis-scoped program: the Delay phase barrier admits exactly one
// order; what varies across axiom sets is visibility. Under DRF the
// folded-global release publishes everything (clean, fresh values);
// under HRF the Local release publishes nothing beyond the CU — the
// consumer reads stale zeros and the pair is a scope race, because
// only the as-if-global shadow orders it.
TEST(AxiomChecker, MisscopedVerdictPerAxiomSet)
{
    for (const ProtocolConfig &proto :
         {ProtocolConfig::gd(), ProtocolConfig::dd(),
          ProtocolConfig::ddro(), ProtocolConfig::ddse()}) {
        AxiomCellReport cell = checkNamed("misscoped", proto);
        EXPECT_EQ(cell.verdict, "race-free") << proto.shortName();
        EXPECT_EQ(cell.interleavings, 1u) << proto.shortName();
        EXPECT_EQ(outcomeSet(cell),
                  (std::vector<std::string>{"f=1 d=41"}))
            << proto.shortName();
    }
    for (const ProtocolConfig &proto :
         {ProtocolConfig::gh(), ProtocolConfig::dh()}) {
        AxiomCellReport cell = checkNamed("misscoped", proto);
        EXPECT_EQ(cell.verdict, "scope-race") << proto.shortName();
        EXPECT_TRUE(cell.allRacy()) << proto.shortName();
        EXPECT_TRUE(cell.scopeOnly()) << proto.shortName();
        EXPECT_EQ(outcomeSet(cell),
                  (std::vector<std::string>{"f=0 d=0"}))
            << proto.shortName();
        ASSERT_EQ(cell.races.size(), 1u) << proto.shortName();
        EXPECT_EQ(cell.races[0],
                  "scope race on data: t0 write vs t1 load");
    }
}

// Device scope on the litmus machine's single device folds into
// global: mp_dev is exactly as well-synchronized as mp.
TEST(AxiomChecker, DeviceScopeFoldsOnSingleDevice)
{
    for (const ProtocolConfig &proto :
         {ProtocolConfig::gd(), ProtocolConfig::gh(),
          ProtocolConfig::dh()}) {
        AxiomCellReport cell = checkNamed("mp_dev", proto);
        EXPECT_EQ(cell.verdict, "race-free") << proto.shortName();
        EXPECT_EQ(outcomeSet(cell),
                  (std::vector<std::string>{"f=0", "f=1 d=41"}))
            << proto.shortName();
    }
}

// The genuinely multi-device case, checked purely statically: with
// the consumer on another device, a Device-scope release publishes at
// the device tier only — under the scoped axioms the publication
// never crosses the link (stale zeros, scope race), while the
// unscoped DRF axioms make the same annotation machine-wide (clean).
TEST(AxiomChecker, DeviceScopeStopsAtTheLinkUnderHrf)
{
    Program prog = misscopedShape(Scope::Device, 1, 2);

    AxiomModel hrf = modelFor(ProtocolConfig::gh(), 2);
    AxiomCellReport scoped =
        checkProgram(prog, hrf, fdFormatter(), nullptr);
    EXPECT_EQ(scoped.verdict, "scope-race");
    EXPECT_EQ(outcomeSet(scoped),
              (std::vector<std::string>{"f=0 d=0"}));

    AxiomModel drf = modelFor(ProtocolConfig::gd(), 2);
    AxiomCellReport unscoped =
        checkProgram(prog, drf, fdFormatter(), nullptr);
    EXPECT_EQ(unscoped.verdict, "race-free");
    EXPECT_EQ(outcomeSet(unscoped),
              (std::vector<std::string>{"f=1 d=41"}));

    // Same-device consumer: the device tier is enough even scoped.
    Program same_device = misscopedShape(Scope::Device, 2, 2);
    AxiomCellReport local =
        checkProgram(same_device, hrf, fdFormatter(), nullptr);
    EXPECT_EQ(local.verdict, "race-free");
    EXPECT_EQ(outcomeSet(local),
              (std::vector<std::string>{"f=1 d=41"}));
}

// Atomic RMWs serialize at the word's single order: two increments
// always sum, each observing the other or zero, never lost.
TEST(AxiomChecker, RmwIncrementsNeverLost)
{
    Program prog;
    prog.name = "inc_inc";
    prog.numVars = 1;
    prog.numRegs = 2;
    prog.varNames = {"counter"};
    Thread t0, t1;
    t0.ops = {atomicRmw(0, 1, Scope::Global, 0)};
    t1.ops = {atomicRmw(0, 1, Scope::Global, 1)};
    prog.threads = {t0, t1};

    AxiomCellReport cell = checkProgram(
        prog, modelFor(ProtocolConfig::gd()),
        [](const std::vector<std::uint32_t> &regs) {
            std::ostringstream os;
            os << "r0=" << regs[0] << " r1=" << regs[1];
            return os.str();
        },
        nullptr);
    EXPECT_EQ(cell.verdict, "race-free");
    EXPECT_EQ(outcomeSet(cell),
              (std::vector<std::string>{"r0=0 r1=1", "r0=1 r1=0"}));
}

// THE closing of the loop: on every litmus×config cell the axiomatic
// outcome set equals the DPOR explorer's operational outcome set, and
// the static race verdict matches the dynamic detector's.
TEST(AxiomCrossCheck, AllCellsAgreeWithExplorerAndDetector)
{
    const std::vector<ProtocolConfig> configs = {
        ProtocolConfig::gd(),   ProtocolConfig::gh(),
        ProtocolConfig::dd(),   ProtocolConfig::ddro(),
        ProtocolConfig::dh(),   ProtocolConfig::ddse()};
    for (const std::string &program : explore::litmusSuite()) {
        for (const ProtocolConfig &proto : configs) {
            AxiomCellReport axiom_cell = checkNamed(program, proto);
            explore::CellReport explored = exploreOne(program, proto);
            ASSERT_EQ(explored.verdict, "pass")
                << program << " on " << proto.shortName();
            CrossCheckResult check =
                crossCheck(axiom_cell, explored);
            EXPECT_TRUE(check.checked);
            EXPECT_TRUE(check.ok)
                << program << " on " << proto.shortName() << ":\n  "
                << (check.diffs.empty() ? std::string("(no diffs)")
                                        : check.diffs[0]);
        }
    }
}

// Tampered operational results must be caught with a diff naming the
// program, config, and divergence — the checker is a tripwire, not a
// rubber stamp.
TEST(AxiomCrossCheck, TamperedCellsAreNamedInDiffs)
{
    AxiomCellReport axiom_cell =
        checkNamed("mp", ProtocolConfig::gd());
    explore::CellReport explored =
        exploreOne("mp", ProtocolConfig::gd());

    explore::CellReport phantom = explored;
    phantom.outcomes.push_back({"f=1 d=0", 1, false});
    CrossCheckResult check = crossCheck(axiom_cell, phantom);
    EXPECT_FALSE(check.ok);
    ASSERT_FALSE(check.diffs.empty());
    EXPECT_NE(check.diffs[0].find("mp on GD"), std::string::npos);
    EXPECT_NE(check.diffs[0].find("f=1 d=0"), std::string::npos);

    explore::CellReport racy = explored;
    racy.racySchedules = racy.schedulesExplored;
    racy.cleanSchedules = 0;
    check = crossCheck(axiom_cell, racy);
    EXPECT_FALSE(check.ok);

    explore::CellReport exhausted = explored;
    exhausted.verdict = "budget-exhausted";
    check = crossCheck(axiom_cell, exhausted);
    EXPECT_FALSE(check.ok);

    explore::CellReport other = explored;
    other.config = "GH";
    check = crossCheck(axiom_cell, other);
    EXPECT_FALSE(check.checked);
}

// The report emission carries the identity fields the validator and
// schema pin down (deep validation lives in tools/validate_axiom.py).
TEST(AxiomReportJson, CarriesSchemaIdentity)
{
    AxiomReport report;
    report.cells.push_back(checkNamed("mp", ProtocolConfig::gd()));
    std::ostringstream os;
    writeAxiomJson(report, os);
    const std::string json = os.str();
    EXPECT_NE(json.find("\"schema_version\":1"), std::string::npos);
    EXPECT_NE(json.find("\"harness\":\"litmus_axiom\""),
              std::string::npos);
    EXPECT_NE(json.find("\"model\":\"sc-drf\""), std::string::npos);
    EXPECT_EQ(report.exitCode(), 0);
}
