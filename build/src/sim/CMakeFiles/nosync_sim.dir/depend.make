# Empty dependencies file for nosync_sim.
# This may be replaced when dependencies are built.
