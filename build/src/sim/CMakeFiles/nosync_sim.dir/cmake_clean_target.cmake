file(REMOVE_RECURSE
  "libnosync_sim.a"
)
