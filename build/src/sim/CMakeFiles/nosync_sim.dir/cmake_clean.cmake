file(REMOVE_RECURSE
  "CMakeFiles/nosync_sim.dir/event_queue.cc.o"
  "CMakeFiles/nosync_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/nosync_sim.dir/logging.cc.o"
  "CMakeFiles/nosync_sim.dir/logging.cc.o.d"
  "CMakeFiles/nosync_sim.dir/stats.cc.o"
  "CMakeFiles/nosync_sim.dir/stats.cc.o.d"
  "libnosync_sim.a"
  "libnosync_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nosync_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
