
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/apps_linalg.cc" "src/workloads/CMakeFiles/nosync_workloads.dir/apps_linalg.cc.o" "gcc" "src/workloads/CMakeFiles/nosync_workloads.dir/apps_linalg.cc.o.d"
  "/root/repo/src/workloads/apps_misc.cc" "src/workloads/CMakeFiles/nosync_workloads.dir/apps_misc.cc.o" "gcc" "src/workloads/CMakeFiles/nosync_workloads.dir/apps_misc.cc.o.d"
  "/root/repo/src/workloads/apps_stencil.cc" "src/workloads/CMakeFiles/nosync_workloads.dir/apps_stencil.cc.o" "gcc" "src/workloads/CMakeFiles/nosync_workloads.dir/apps_stencil.cc.o.d"
  "/root/repo/src/workloads/microbench.cc" "src/workloads/CMakeFiles/nosync_workloads.dir/microbench.cc.o" "gcc" "src/workloads/CMakeFiles/nosync_workloads.dir/microbench.cc.o.d"
  "/root/repo/src/workloads/registry.cc" "src/workloads/CMakeFiles/nosync_workloads.dir/registry.cc.o" "gcc" "src/workloads/CMakeFiles/nosync_workloads.dir/registry.cc.o.d"
  "/root/repo/src/workloads/uts.cc" "src/workloads/CMakeFiles/nosync_workloads.dir/uts.cc.o" "gcc" "src/workloads/CMakeFiles/nosync_workloads.dir/uts.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gpu/CMakeFiles/nosync_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/coherence/CMakeFiles/nosync_coherence.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/nosync_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/nosync_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
