# Empty dependencies file for nosync_workloads.
# This may be replaced when dependencies are built.
