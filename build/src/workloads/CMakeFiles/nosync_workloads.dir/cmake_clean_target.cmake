file(REMOVE_RECURSE
  "libnosync_workloads.a"
)
