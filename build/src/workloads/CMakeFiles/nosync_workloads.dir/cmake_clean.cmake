file(REMOVE_RECURSE
  "CMakeFiles/nosync_workloads.dir/apps_linalg.cc.o"
  "CMakeFiles/nosync_workloads.dir/apps_linalg.cc.o.d"
  "CMakeFiles/nosync_workloads.dir/apps_misc.cc.o"
  "CMakeFiles/nosync_workloads.dir/apps_misc.cc.o.d"
  "CMakeFiles/nosync_workloads.dir/apps_stencil.cc.o"
  "CMakeFiles/nosync_workloads.dir/apps_stencil.cc.o.d"
  "CMakeFiles/nosync_workloads.dir/microbench.cc.o"
  "CMakeFiles/nosync_workloads.dir/microbench.cc.o.d"
  "CMakeFiles/nosync_workloads.dir/registry.cc.o"
  "CMakeFiles/nosync_workloads.dir/registry.cc.o.d"
  "CMakeFiles/nosync_workloads.dir/uts.cc.o"
  "CMakeFiles/nosync_workloads.dir/uts.cc.o.d"
  "libnosync_workloads.a"
  "libnosync_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nosync_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
