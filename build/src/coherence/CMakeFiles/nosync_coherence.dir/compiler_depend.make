# Empty compiler generated dependencies file for nosync_coherence.
# This may be replaced when dependencies are built.
