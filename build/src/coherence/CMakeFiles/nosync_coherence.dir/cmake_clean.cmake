file(REMOVE_RECURSE
  "CMakeFiles/nosync_coherence.dir/denovo_l1.cc.o"
  "CMakeFiles/nosync_coherence.dir/denovo_l1.cc.o.d"
  "CMakeFiles/nosync_coherence.dir/denovo_l2.cc.o"
  "CMakeFiles/nosync_coherence.dir/denovo_l2.cc.o.d"
  "CMakeFiles/nosync_coherence.dir/gpu_l1.cc.o"
  "CMakeFiles/nosync_coherence.dir/gpu_l1.cc.o.d"
  "CMakeFiles/nosync_coherence.dir/gpu_l2.cc.o"
  "CMakeFiles/nosync_coherence.dir/gpu_l2.cc.o.d"
  "libnosync_coherence.a"
  "libnosync_coherence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nosync_coherence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
