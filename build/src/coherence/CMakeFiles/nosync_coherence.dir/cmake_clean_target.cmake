file(REMOVE_RECURSE
  "libnosync_coherence.a"
)
