
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/coherence/denovo_l1.cc" "src/coherence/CMakeFiles/nosync_coherence.dir/denovo_l1.cc.o" "gcc" "src/coherence/CMakeFiles/nosync_coherence.dir/denovo_l1.cc.o.d"
  "/root/repo/src/coherence/denovo_l2.cc" "src/coherence/CMakeFiles/nosync_coherence.dir/denovo_l2.cc.o" "gcc" "src/coherence/CMakeFiles/nosync_coherence.dir/denovo_l2.cc.o.d"
  "/root/repo/src/coherence/gpu_l1.cc" "src/coherence/CMakeFiles/nosync_coherence.dir/gpu_l1.cc.o" "gcc" "src/coherence/CMakeFiles/nosync_coherence.dir/gpu_l1.cc.o.d"
  "/root/repo/src/coherence/gpu_l2.cc" "src/coherence/CMakeFiles/nosync_coherence.dir/gpu_l2.cc.o" "gcc" "src/coherence/CMakeFiles/nosync_coherence.dir/gpu_l2.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/nosync_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/nosync_noc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
