file(REMOVE_RECURSE
  "CMakeFiles/nosync_gpu.dir/gpu_device.cc.o"
  "CMakeFiles/nosync_gpu.dir/gpu_device.cc.o.d"
  "libnosync_gpu.a"
  "libnosync_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nosync_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
