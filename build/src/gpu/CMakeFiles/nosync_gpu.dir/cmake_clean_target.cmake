file(REMOVE_RECURSE
  "libnosync_gpu.a"
)
