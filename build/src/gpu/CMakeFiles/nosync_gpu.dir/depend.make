# Empty dependencies file for nosync_gpu.
# This may be replaced when dependencies are built.
