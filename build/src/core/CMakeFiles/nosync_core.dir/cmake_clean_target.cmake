file(REMOVE_RECURSE
  "libnosync_core.a"
)
