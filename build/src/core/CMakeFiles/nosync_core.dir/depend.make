# Empty dependencies file for nosync_core.
# This may be replaced when dependencies are built.
