file(REMOVE_RECURSE
  "CMakeFiles/nosync_core.dir/report.cc.o"
  "CMakeFiles/nosync_core.dir/report.cc.o.d"
  "CMakeFiles/nosync_core.dir/system.cc.o"
  "CMakeFiles/nosync_core.dir/system.cc.o.d"
  "libnosync_core.a"
  "libnosync_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nosync_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
