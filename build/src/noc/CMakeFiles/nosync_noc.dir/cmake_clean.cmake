file(REMOVE_RECURSE
  "CMakeFiles/nosync_noc.dir/mesh.cc.o"
  "CMakeFiles/nosync_noc.dir/mesh.cc.o.d"
  "libnosync_noc.a"
  "libnosync_noc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nosync_noc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
