# Empty dependencies file for nosync_noc.
# This may be replaced when dependencies are built.
