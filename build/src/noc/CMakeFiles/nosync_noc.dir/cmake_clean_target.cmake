file(REMOVE_RECURSE
  "libnosync_noc.a"
)
