
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_coherence_random.cc" "tests/CMakeFiles/nosync_tests.dir/test_coherence_random.cc.o" "gcc" "tests/CMakeFiles/nosync_tests.dir/test_coherence_random.cc.o.d"
  "/root/repo/tests/test_denovo_protocol.cc" "tests/CMakeFiles/nosync_tests.dir/test_denovo_protocol.cc.o" "gcc" "tests/CMakeFiles/nosync_tests.dir/test_denovo_protocol.cc.o.d"
  "/root/repo/tests/test_event_queue.cc" "tests/CMakeFiles/nosync_tests.dir/test_event_queue.cc.o" "gcc" "tests/CMakeFiles/nosync_tests.dir/test_event_queue.cc.o.d"
  "/root/repo/tests/test_gpu_exec.cc" "tests/CMakeFiles/nosync_tests.dir/test_gpu_exec.cc.o" "gcc" "tests/CMakeFiles/nosync_tests.dir/test_gpu_exec.cc.o.d"
  "/root/repo/tests/test_gpu_protocol.cc" "tests/CMakeFiles/nosync_tests.dir/test_gpu_protocol.cc.o" "gcc" "tests/CMakeFiles/nosync_tests.dir/test_gpu_protocol.cc.o.d"
  "/root/repo/tests/test_litmus.cc" "tests/CMakeFiles/nosync_tests.dir/test_litmus.cc.o" "gcc" "tests/CMakeFiles/nosync_tests.dir/test_litmus.cc.o.d"
  "/root/repo/tests/test_litmus_extra.cc" "tests/CMakeFiles/nosync_tests.dir/test_litmus_extra.cc.o" "gcc" "tests/CMakeFiles/nosync_tests.dir/test_litmus_extra.cc.o.d"
  "/root/repo/tests/test_mem_structures.cc" "tests/CMakeFiles/nosync_tests.dir/test_mem_structures.cc.o" "gcc" "tests/CMakeFiles/nosync_tests.dir/test_mem_structures.cc.o.d"
  "/root/repo/tests/test_mesh.cc" "tests/CMakeFiles/nosync_tests.dir/test_mesh.cc.o" "gcc" "tests/CMakeFiles/nosync_tests.dir/test_mesh.cc.o.d"
  "/root/repo/tests/test_protocol_defs.cc" "tests/CMakeFiles/nosync_tests.dir/test_protocol_defs.cc.o" "gcc" "tests/CMakeFiles/nosync_tests.dir/test_protocol_defs.cc.o.d"
  "/root/repo/tests/test_protocol_races.cc" "tests/CMakeFiles/nosync_tests.dir/test_protocol_races.cc.o" "gcc" "tests/CMakeFiles/nosync_tests.dir/test_protocol_races.cc.o.d"
  "/root/repo/tests/test_report_and_apps.cc" "tests/CMakeFiles/nosync_tests.dir/test_report_and_apps.cc.o" "gcc" "tests/CMakeFiles/nosync_tests.dir/test_report_and_apps.cc.o.d"
  "/root/repo/tests/test_sync_primitives.cc" "tests/CMakeFiles/nosync_tests.dir/test_sync_primitives.cc.o" "gcc" "tests/CMakeFiles/nosync_tests.dir/test_sync_primitives.cc.o.d"
  "/root/repo/tests/test_system.cc" "tests/CMakeFiles/nosync_tests.dir/test_system.cc.o" "gcc" "tests/CMakeFiles/nosync_tests.dir/test_system.cc.o.d"
  "/root/repo/tests/test_types_and_stats.cc" "tests/CMakeFiles/nosync_tests.dir/test_types_and_stats.cc.o" "gcc" "tests/CMakeFiles/nosync_tests.dir/test_types_and_stats.cc.o.d"
  "/root/repo/tests/test_workloads.cc" "tests/CMakeFiles/nosync_tests.dir/test_workloads.cc.o" "gcc" "tests/CMakeFiles/nosync_tests.dir/test_workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/nosync_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/nosync_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/nosync_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/coherence/CMakeFiles/nosync_coherence.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/nosync_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/nosync_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
