# Empty compiler generated dependencies file for nosync_tests.
# This may be replaced when dependencies are built.
