# Empty compiler generated dependencies file for fig2_apps.
# This may be replaced when dependencies are built.
