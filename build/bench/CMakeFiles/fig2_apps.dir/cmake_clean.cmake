file(REMOVE_RECURSE
  "CMakeFiles/fig2_apps.dir/fig2_apps.cc.o"
  "CMakeFiles/fig2_apps.dir/fig2_apps.cc.o.d"
  "fig2_apps"
  "fig2_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
