# Empty dependencies file for fig4_local_sync.
# This may be replaced when dependencies are built.
