file(REMOVE_RECURSE
  "CMakeFiles/ablation_noc_latency.dir/ablation_noc_latency.cc.o"
  "CMakeFiles/ablation_noc_latency.dir/ablation_noc_latency.cc.o.d"
  "ablation_noc_latency"
  "ablation_noc_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_noc_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
