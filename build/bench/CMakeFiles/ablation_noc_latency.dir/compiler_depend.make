# Empty compiler generated dependencies file for ablation_noc_latency.
# This may be replaced when dependencies are built.
