# Empty compiler generated dependencies file for ablation_store_buffer.
# This may be replaced when dependencies are built.
