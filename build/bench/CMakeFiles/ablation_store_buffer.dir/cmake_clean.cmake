file(REMOVE_RECURSE
  "CMakeFiles/ablation_store_buffer.dir/ablation_store_buffer.cc.o"
  "CMakeFiles/ablation_store_buffer.dir/ablation_store_buffer.cc.o.d"
  "ablation_store_buffer"
  "ablation_store_buffer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_store_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
