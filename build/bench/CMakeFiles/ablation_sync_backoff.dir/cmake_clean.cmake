file(REMOVE_RECURSE
  "CMakeFiles/ablation_sync_backoff.dir/ablation_sync_backoff.cc.o"
  "CMakeFiles/ablation_sync_backoff.dir/ablation_sync_backoff.cc.o.d"
  "ablation_sync_backoff"
  "ablation_sync_backoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sync_backoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
