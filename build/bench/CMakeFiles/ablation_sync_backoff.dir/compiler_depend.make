# Empty compiler generated dependencies file for ablation_sync_backoff.
# This may be replaced when dependencies are built.
