file(REMOVE_RECURSE
  "CMakeFiles/fig3_global_sync.dir/fig3_global_sync.cc.o"
  "CMakeFiles/fig3_global_sync.dir/fig3_global_sync.cc.o.d"
  "fig3_global_sync"
  "fig3_global_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_global_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
