# Empty dependencies file for fig3_global_sync.
# This may be replaced when dependencies are built.
