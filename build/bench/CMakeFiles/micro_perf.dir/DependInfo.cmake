
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/micro_perf.cc" "bench/CMakeFiles/micro_perf.dir/micro_perf.cc.o" "gcc" "bench/CMakeFiles/micro_perf.dir/micro_perf.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/nosync_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/nosync_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/nosync_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/coherence/CMakeFiles/nosync_coherence.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/nosync_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/nosync_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
