/**
 * @file
 * Linear-algebra style applications: Backprop, LUD, NW, SGEMM.
 */

#include <sstream>

#include "sim/logging.hh"
#include "workloads/apps.hh"

namespace nosync
{

namespace
{

std::uint32_t
seedValue(std::uint32_t i, std::uint32_t salt)
{
    return ((i * 2654435761u) ^ (salt * 40503u)) & 0xff;
}

std::vector<std::string>
compareArray(WorkloadEnv &env, const std::string &who, Addr base,
             const std::vector<std::uint32_t> &expect)
{
    std::vector<std::string> failures;
    for (std::size_t i = 0; i < expect.size(); ++i) {
        std::uint32_t got =
            env.debugRead(base + static_cast<Addr>(i) * kWordBytes);
        if (got != expect[i]) {
            std::ostringstream os;
            os << who << ": element " << i << " = " << got
               << ", expected " << expect[i];
            failures.push_back(os.str());
            if (failures.size() > 8)
                break;
        }
    }
    return failures;
}

} // namespace

// ---------------------------------------------------------------------
// Backprop
// ---------------------------------------------------------------------

Backprop::Backprop(unsigned in_units, unsigned hid_units)
    : _in(in_units), _hid(hid_units)
{
}

void
Backprop::init(WorkloadEnv &env)
{
    _input = env.alloc(static_cast<Addr>(_in) * kWordBytes);
    _weights =
        env.alloc(static_cast<Addr>(_hid) * _in * kWordBytes);
    _hidden = env.alloc(static_cast<Addr>(_hid) * kWordBytes);

    std::vector<std::uint32_t> input(_in), weights(_hid * _in);
    for (unsigned i = 0; i < _in; ++i) {
        input[i] = seedValue(i, 23);
        env.writeInit(_input + static_cast<Addr>(i) * kWordBytes,
                      input[i]);
    }
    for (unsigned i = 0; i < _hid * _in; ++i) {
        weights[i] = seedValue(i, 29);
        env.writeInit(_weights + static_cast<Addr>(i) * kWordBytes,
                      weights[i]);
    }
    env.declareReadOnly(_input, static_cast<Addr>(_in) * kWordBytes);

    _expectHidden.assign(_hid, 0);
    for (unsigned h = 0; h < _hid; ++h) {
        std::uint32_t sum = 0;
        for (unsigned i = 0; i < _in; ++i)
            sum += input[i] * weights[h * _in + i];
        _expectHidden[h] = sum;
    }
    _expectWeights = weights;
    for (unsigned h = 0; h < _hid; ++h) {
        for (unsigned i = 0; i < _in; ++i)
            _expectWeights[h * _in + i] += _expectHidden[h];
    }
}

KernelInfo
Backprop::kernelInfo(unsigned) const
{
    return {_hid};
}

SimTask
Backprop::tbMain(TbContext &ctx)
{
    unsigned h = ctx.tbGlobal();
    Addr row = _weights + static_cast<Addr>(h) * _in * kWordBytes;
    if (ctx.kernel() == 0) {
        // Forward: hidden[h] = sum(input .* weights[h]).
        std::uint32_t sum = 0;
        for (unsigned i = 0; i < _in; ++i) {
            std::uint32_t x = co_await ctx.load(
                _input + static_cast<Addr>(i) * kWordBytes);
            std::uint32_t w = co_await ctx.load(
                row + static_cast<Addr>(i) * kWordBytes);
            sum += x * w;
        }
        co_await ctx.store(_hidden + static_cast<Addr>(h) *
                                         kWordBytes,
                           sum);
        co_return;
    }

    // Backward: weights[h] += hidden[h] (written by kernel 0).
    std::uint32_t delta = co_await ctx.load(
        _hidden + static_cast<Addr>(h) * kWordBytes);
    for (unsigned i = 0; i < _in; ++i) {
        Addr addr = row + static_cast<Addr>(i) * kWordBytes;
        std::uint32_t w = co_await ctx.load(addr);
        co_await ctx.store(addr, w + delta);
    }
}

std::vector<std::string>
Backprop::check(WorkloadEnv &env)
{
    auto failures = compareArray(env, "BP.hidden", _hidden,
                                 _expectHidden);
    auto wf = compareArray(env, "BP.weights", _weights,
                           _expectWeights);
    failures.insert(failures.end(), wf.begin(), wf.end());
    return failures;
}

// ---------------------------------------------------------------------
// LUD
// ---------------------------------------------------------------------

Lud::Lud(unsigned n, unsigned steps) : _n(n), _steps(steps)
{
    panic_if(_steps >= _n, "LUD needs steps < n");
}

void
Lud::init(WorkloadEnv &env)
{
    _matrix = env.alloc(static_cast<Addr>(_n) * _n * kWordBytes);
    std::vector<std::uint32_t> m(_n * _n);
    for (unsigned i = 0; i < _n * _n; ++i) {
        m[i] = seedValue(i, 31);
        env.writeInit(_matrix + static_cast<Addr>(i) * kWordBytes,
                      m[i]);
    }

    for (unsigned k = 0; k < _steps; ++k) {
        for (unsigned i = k + 1; i < _n; ++i) {
            for (unsigned j = k; j < _n; ++j)
                m[i * _n + j] += m[k * _n + j];
        }
    }
    _expect = m;
}

KernelInfo
Lud::kernelInfo(unsigned) const
{
    return {15};
}

SimTask
Lud::tbMain(TbContext &ctx)
{
    unsigned k = ctx.kernel();
    // Slice the trailing rows k+1 .. n-1 across the 15 TBs with a
    // per-step rotation (block-cyclic scheduling, as in Rodinia):
    // the same rows land on different CUs in consecutive steps.
    unsigned rows = _n - (k + 1);
    unsigned per = (rows + 14) / 15;
    unsigned slot = (ctx.tbGlobal() + k) % 15;
    unsigned lo = k + 1 + slot * per;
    unsigned hi = std::min(_n, lo + per);

    for (unsigned i = lo; i < hi; ++i) {
        for (unsigned j = k; j < _n; ++j) {
            std::uint32_t pivot = co_await ctx.load(
                _matrix +
                (static_cast<Addr>(k) * _n + j) * kWordBytes);
            Addr addr = _matrix +
                        (static_cast<Addr>(i) * _n + j) * kWordBytes;
            std::uint32_t v = co_await ctx.load(addr);
            co_await ctx.store(addr, v + pivot);
        }
    }
}

std::vector<std::string>
Lud::check(WorkloadEnv &env)
{
    return compareArray(env, "LUD", _matrix, _expect);
}

// ---------------------------------------------------------------------
// NW
// ---------------------------------------------------------------------

Nw::Nw(unsigned n, unsigned block)
    : _n(n), _block(block), _blocksPerSide(n / block)
{
    panic_if(_n % _block != 0, "NW matrix must tile evenly");
}

void
Nw::init(WorkloadEnv &env)
{
    _score = env.alloc(static_cast<Addr>(_n) * _n * kWordBytes);
    _ref = env.alloc(static_cast<Addr>(_n) * _n * kWordBytes);

    std::vector<std::uint32_t> ref(_n * _n);
    for (unsigned i = 0; i < _n * _n; ++i) {
        ref[i] = seedValue(i, 37);
        env.writeInit(_ref + static_cast<Addr>(i) * kWordBytes,
                      ref[i]);
    }
    env.declareReadOnly(_ref, static_cast<Addr>(_n) * _n * kWordBytes);

    std::vector<std::uint32_t> m(_n * _n, 0);
    for (unsigned i = 0; i < _n; ++i) {
        for (unsigned j = 0; j < _n; ++j) {
            std::uint32_t up = i > 0 ? m[(i - 1) * _n + j] : 0;
            std::uint32_t left = j > 0 ? m[i * _n + j - 1] : 0;
            m[i * _n + j] = std::max(up, left) + ref[i * _n + j];
        }
    }
    _expect = m;
}

unsigned
Nw::numKernels() const
{
    return 2 * _blocksPerSide - 1;
}

KernelInfo
Nw::kernelInfo(unsigned k) const
{
    unsigned len = std::min({k + 1, _blocksPerSide,
                             2 * _blocksPerSide - 1 - k});
    return {len};
}

SimTask
Nw::tbMain(TbContext &ctx)
{
    unsigned d = ctx.kernel();
    unsigned first_bi = d < _blocksPerSide
                            ? 0
                            : d - (_blocksPerSide - 1);
    unsigned bi = first_bi + ctx.tbGlobal();
    unsigned bj = d - bi;

    for (unsigned ii = 0; ii < _block; ++ii) {
        for (unsigned jj = 0; jj < _block; ++jj) {
            unsigned i = bi * _block + ii;
            unsigned j = bj * _block + jj;
            std::uint32_t up = 0, left = 0;
            if (i > 0) {
                up = co_await ctx.load(
                    _score +
                    (static_cast<Addr>(i - 1) * _n + j) * kWordBytes);
            }
            if (j > 0) {
                left = co_await ctx.load(
                    _score +
                    (static_cast<Addr>(i) * _n + j - 1) * kWordBytes);
            }
            std::uint32_t r = co_await ctx.load(
                _ref + (static_cast<Addr>(i) * _n + j) * kWordBytes);
            co_await ctx.store(_score + (static_cast<Addr>(i) * _n +
                                         j) * kWordBytes,
                               std::max(up, left) + r);
        }
    }
}

std::vector<std::string>
Nw::check(WorkloadEnv &env)
{
    return compareArray(env, "NW", _score, _expect);
}

// ---------------------------------------------------------------------
// SGEMM
// ---------------------------------------------------------------------

Sgemm::Sgemm(unsigned n, unsigned tile) : _n(n), _tile(tile)
{
    panic_if(_n % _tile != 0, "SGEMM matrix must tile evenly");
}

void
Sgemm::init(WorkloadEnv &env)
{
    Addr bytes = static_cast<Addr>(_n) * _n * kWordBytes;
    _a = env.alloc(bytes);
    _b = env.alloc(bytes);
    _c = env.alloc(bytes);

    std::vector<std::uint32_t> a(_n * _n), b(_n * _n);
    for (unsigned i = 0; i < _n * _n; ++i) {
        a[i] = seedValue(i, 41);
        b[i] = seedValue(i, 43);
        env.writeInit(_a + static_cast<Addr>(i) * kWordBytes, a[i]);
        env.writeInit(_b + static_cast<Addr>(i) * kWordBytes, b[i]);
    }
    env.declareReadOnly(_a, bytes);
    env.declareReadOnly(_b, bytes);

    _expect.assign(_n * _n, 0);
    for (unsigned i = 0; i < _n; ++i) {
        for (unsigned k = 0; k < _n; ++k) {
            std::uint32_t av = a[i * _n + k];
            for (unsigned j = 0; j < _n; ++j)
                _expect[i * _n + j] += av * b[k * _n + j];
        }
    }
}

KernelInfo
Sgemm::kernelInfo(unsigned) const
{
    unsigned tiles = _n / _tile;
    return {tiles * tiles};
}

SimTask
Sgemm::tbMain(TbContext &ctx)
{
    unsigned tiles = _n / _tile;
    unsigned bi = ctx.tbGlobal() / tiles;
    unsigned bj = ctx.tbGlobal() % tiles;

    std::vector<std::uint32_t> acc(_tile * _tile, 0);
    for (unsigned kt = 0; kt < tiles; ++kt) {
        // Stage both tiles through the scratchpad, as the CUDA
        // kernel does, then accumulate.
        std::vector<std::uint32_t> at(_tile * _tile), bt(_tile * _tile);
        for (unsigned ii = 0; ii < _tile; ++ii) {
            for (unsigned kk = 0; kk < _tile; ++kk) {
                unsigned i = bi * _tile + ii;
                unsigned k = kt * _tile + kk;
                at[ii * _tile + kk] = co_await ctx.load(
                    _a + (static_cast<Addr>(i) * _n + k) *
                             kWordBytes);
            }
        }
        for (unsigned kk = 0; kk < _tile; ++kk) {
            for (unsigned jj = 0; jj < _tile; ++jj) {
                unsigned k = kt * _tile + kk;
                unsigned j = bj * _tile + jj;
                bt[kk * _tile + jj] = co_await ctx.load(
                    _b + (static_cast<Addr>(k) * _n + j) *
                             kWordBytes);
            }
        }
        co_await ctx.scratch(2 * _tile * _tile);

        for (unsigned ii = 0; ii < _tile; ++ii) {
            for (unsigned kk = 0; kk < _tile; ++kk) {
                std::uint32_t av = at[ii * _tile + kk];
                for (unsigned jj = 0; jj < _tile; ++jj) {
                    acc[ii * _tile + jj] +=
                        av * bt[kk * _tile + jj];
                }
            }
        }
        // Compute latency of the tile-level multiply.
        co_await ctx.wait(_tile * _tile / 2);
        co_await ctx.scratch(2 * _tile * _tile);
    }

    for (unsigned ii = 0; ii < _tile; ++ii) {
        for (unsigned jj = 0; jj < _tile; ++jj) {
            unsigned i = bi * _tile + ii;
            unsigned j = bj * _tile + jj;
            co_await ctx.store(_c + (static_cast<Addr>(i) * _n + j) *
                                        kWordBytes,
                               acc[ii * _tile + jj]);
        }
    }
}

std::vector<std::string>
Sgemm::check(WorkloadEnv &env)
{
    return compareArray(env, "SGEMM", _c, _expect);
}

} // namespace nosync
