/**
 * @file
 * Graph-analytics workloads: BFS, PageRank, SSSP with push/pull
 * variants over synthetic power-law and 2-D mesh graphs.
 */

#include "workloads/graph.hh"

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>

#include "sim/logging.hh"

namespace nosync
{

namespace
{

constexpr std::uint32_t kBfsInf = 0xffffffffu;
constexpr std::uint32_t kSsspInf = 0x3fffffffu;

/** Deterministic hash for edge generation. */
std::uint32_t
mix(std::uint32_t a, std::uint32_t b)
{
    std::uint32_t h = a * 2654435761u + b * 40503u + 0x9e3779b9u;
    h ^= h >> 15;
    h *= 0x85ebca6bu;
    h ^= h >> 13;
    return h;
}

std::vector<std::string>
compareArray(WorkloadEnv &env, const std::string &who, Addr base,
             const std::vector<std::uint32_t> &expect)
{
    std::vector<std::string> failures;
    for (std::size_t i = 0; i < expect.size(); ++i) {
        std::uint32_t got =
            env.debugRead(base + static_cast<Addr>(i) * kWordBytes);
        if (got != expect[i]) {
            std::ostringstream os;
            os << who << ": element " << i << " = " << got
               << ", expected " << expect[i];
            failures.push_back(os.str());
            if (failures.size() > 8)
                break;
        }
    }
    return failures;
}

/** Fixed-point PageRank update (values scaled by 256). */
std::uint32_t
rankOf(std::uint32_t sum)
{
    return 38u + ((218u * sum) >> 8);
}

} // namespace

GraphCsr
buildGraph(GraphShape shape, unsigned nodes)
{
    GraphCsr csr;
    std::vector<std::set<unsigned>> adj;
    if (shape == GraphShape::Mesh) {
        unsigned side = std::max(
            2u, static_cast<unsigned>(std::sqrt(double(nodes))));
        csr.nodes = side * side;
        adj.resize(csr.nodes);
        for (unsigned y = 0; y < side; ++y) {
            for (unsigned x = 0; x < side; ++x) {
                unsigned v = y * side + x;
                if (x + 1 < side) {
                    adj[v].insert(v + 1);
                    adj[v + 1].insert(v);
                }
                if (y + 1 < side) {
                    adj[v].insert(v + side);
                    adj[v + side].insert(v);
                }
            }
        }
    } else {
        // Hub-heavy undirected graph: a backbone edge to i/2 keeps
        // the graph connected, and every vertex throws a few hashed
        // edges into the low-index quarter, so low-index vertices
        // accumulate power-law-style degrees.
        csr.nodes = std::max(4u, nodes);
        adj.resize(csr.nodes);
        unsigned hubs = std::max(1u, csr.nodes / 4);
        for (unsigned i = 1; i < csr.nodes; ++i) {
            adj[i].insert(i / 2);
            adj[i / 2].insert(i);
            for (unsigned k = 0; k < 3; ++k) {
                unsigned j = mix(i, k) % hubs;
                if (j != i) {
                    adj[i].insert(j);
                    adj[j].insert(i);
                }
            }
        }
    }
    csr.rowBase.resize(csr.nodes + 1, 0);
    for (unsigned v = 0; v < csr.nodes; ++v) {
        csr.rowBase[v + 1] =
            csr.rowBase[v] + static_cast<unsigned>(adj[v].size());
        for (unsigned u : adj[v])
            csr.cols.push_back(u);
    }
    return csr;
}

std::uint32_t
edgeWeight(unsigned u, unsigned v)
{
    unsigned lo = std::min(u, v);
    unsigned hi = std::max(u, v);
    return 1u + ((lo * 31u + hi * 17u) % 7u);
}

// ---------------------------------------------------------------------
// Common machinery
// ---------------------------------------------------------------------

GraphWorkload::GraphWorkload(const char *kernel_name, Traversal dir,
                             GraphShape shape,
                             const GraphParams &params)
    : _dir(dir), _shape(shape), _params(params),
      _csr(buildGraph(shape, params.nodes))
{
    _params.nodes = _csr.nodes; // mesh rounds to a square
    panic_if(_params.tbs == 0, "graph workload needs >= 1 TB");
    panic_if(_params.rounds == 0, "graph workload needs >= 1 round");
    _name = std::string(kernel_name) +
            (dir == Traversal::Push ? "_PUSH" : "_PULL") +
            (shape == GraphShape::PowerLaw ? "_PL" : "_M");
}

void
GraphWorkload::initGraph(WorkloadEnv &env)
{
    Addr row_bytes =
        static_cast<Addr>(_csr.rowBase.size()) * kWordBytes;
    Addr col_bytes = static_cast<Addr>(_csr.cols.size()) * kWordBytes;
    _rowBase = env.alloc(row_bytes);
    _cols = env.alloc(col_bytes);
    for (std::size_t i = 0; i < _csr.rowBase.size(); ++i) {
        env.writeInit(_rowBase + static_cast<Addr>(i) * kWordBytes,
                      _csr.rowBase[i]);
    }
    for (std::size_t e = 0; e < _csr.cols.size(); ++e) {
        env.writeInit(_cols + static_cast<Addr>(e) * kWordBytes,
                      _csr.cols[e]);
    }
    env.declareReadOnly(_rowBase, row_bytes);
    env.declareReadOnly(_cols, col_bytes);
}

std::pair<unsigned, unsigned>
GraphWorkload::slice(unsigned tb) const
{
    unsigned per = (_params.nodes + _params.tbs - 1) / _params.tbs;
    unsigned lo = std::min(tb * per, _params.nodes);
    unsigned hi = std::min(lo + per, _params.nodes);
    return {lo, hi};
}

Addr
GraphWorkload::rowBaseAddr(unsigned v) const
{
    return _rowBase + static_cast<Addr>(v) * kWordBytes;
}

Addr
GraphWorkload::colAddr(unsigned e) const
{
    return _cols + static_cast<Addr>(e) * kWordBytes;
}

// ---------------------------------------------------------------------
// BFS
// ---------------------------------------------------------------------

Bfs::Bfs(Traversal dir, GraphShape shape, GraphParams params)
    : GraphWorkload("BFS", dir, shape, params)
{
}

void
Bfs::init(WorkloadEnv &env)
{
    initGraph(env);
    unsigned n = _params.nodes;
    Addr bytes = static_cast<Addr>(n) * kWordBytes;
    _dist = env.alloc(bytes);
    _front[0] = env.alloc(bytes);
    _front[1] = env.alloc(bytes);
    for (unsigned v = 0; v < n; ++v) {
        env.writeInit(_dist + static_cast<Addr>(v) * kWordBytes,
                      v == 0 ? 0 : kBfsInf);
        env.writeInit(_front[0] + static_cast<Addr>(v) * kWordBytes,
                      v == 0 ? 1 : 0);
        env.writeInit(_front[1] + static_cast<Addr>(v) * kWordBytes,
                      0);
    }
    if (_dir == Traversal::Pull) {
        // Frontier bitmaps are written once per level by their owner
        // and read by every neighbor next level: the textbook
        // streaming region. (Push writes them with atomics, which
        // must register, so only pull declares them.)
        env.declareStreaming(_front[0], bytes);
        env.declareStreaming(_front[1], bytes);
    }

    // Host-side level-synchronous BFS for exactly `rounds` levels.
    _expect.assign(n, kBfsInf);
    _expect[0] = 0;
    std::vector<std::uint8_t> cur(n, 0), nxt(n, 0);
    cur[0] = 1;
    for (unsigned r = 0; r < _params.rounds; ++r) {
        std::fill(nxt.begin(), nxt.end(), 0);
        for (unsigned v = 0; v < n; ++v) {
            if (_expect[v] != kBfsInf)
                continue;
            for (unsigned e = _csr.rowBase[v];
                 e < _csr.rowBase[v + 1]; ++e) {
                if (cur[_csr.cols[e]]) {
                    _expect[v] = r + 1;
                    nxt[v] = 1;
                    break;
                }
            }
        }
        cur.swap(nxt);
    }
}

SimTask
Bfs::tbMain(TbContext &ctx)
{
    return _dir == Traversal::Pull ? pullMain(ctx) : pushMain(ctx);
}

SimTask
Bfs::pullMain(TbContext &ctx)
{
    unsigned k = ctx.kernel();
    Addr cur = _front[k % 2];
    Addr nxt = _front[(k + 1) % 2];
    auto [lo, hi] = slice(ctx.tbGlobal());
    for (unsigned v = lo; v < hi; ++v) {
        Addr voff = static_cast<Addr>(v) * kWordBytes;
        std::uint32_t d = co_await ctx.load(_dist + voff);
        std::uint32_t found = 0;
        if (d == kBfsInf) {
            std::uint32_t e0 = co_await ctx.load(rowBaseAddr(v));
            std::uint32_t e1 = co_await ctx.load(rowBaseAddr(v + 1));
            for (std::uint32_t e = e0; e < e1; ++e) {
                std::uint32_t u = co_await ctx.load(colAddr(e));
                std::uint32_t f = co_await ctx.load(
                    cur + static_cast<Addr>(u) * kWordBytes);
                if (f != 0) {
                    found = 1;
                    co_await ctx.store(_dist + voff, k + 1);
                    break;
                }
            }
        }
        co_await ctx.store(nxt + voff, found);
    }
}

SimTask
Bfs::pushMain(TbContext &ctx)
{
    unsigned k = ctx.kernel();
    Addr cur = _front[k % 2];
    Addr nxt = _front[(k + 1) % 2];
    auto [lo, hi] = slice(ctx.tbGlobal());
    for (unsigned u = lo; u < hi; ++u) {
        Addr uoff = static_cast<Addr>(u) * kWordBytes;
        std::uint32_t f = co_await ctx.load(cur + uoff);
        if (f == 0)
            continue;
        // Owner-only reset so the bitmap is clean when it becomes
        // the scatter target again two levels from now.
        co_await ctx.store(cur + uoff, 0);
        std::uint32_t e0 = co_await ctx.load(rowBaseAddr(u));
        std::uint32_t e1 = co_await ctx.load(rowBaseAddr(u + 1));
        for (std::uint32_t e = e0; e < e1; ++e) {
            std::uint32_t v = co_await ctx.load(colAddr(e));
            Addr voff = static_cast<Addr>(v) * kWordBytes;
            std::uint32_t old = co_await ctx.atomic(ctx.compareSwap(
                _dist + voff, kBfsInf, k + 1, Scope::Global));
            if (old == kBfsInf) {
                co_await ctx.atomic(ctx.atomicStore(nxt + voff, 1,
                                                    Scope::Global));
            }
        }
    }
}

std::vector<std::string>
Bfs::check(WorkloadEnv &env)
{
    return compareArray(env, name(), _dist, _expect);
}

// ---------------------------------------------------------------------
// PageRank
// ---------------------------------------------------------------------

Pagerank::Pagerank(Traversal dir, GraphShape shape, GraphParams params)
    : GraphWorkload("PR", dir, shape, params)
{
}

void
Pagerank::init(WorkloadEnv &env)
{
    initGraph(env);
    unsigned n = _params.nodes;
    Addr bytes = static_cast<Addr>(n) * kWordBytes;
    _rank = env.alloc(bytes);
    _contrib[0] = env.alloc(bytes);
    for (unsigned v = 0; v < n; ++v) {
        env.writeInit(_rank + static_cast<Addr>(v) * kWordBytes, 256);
        env.writeInit(_contrib[0] + static_cast<Addr>(v) * kWordBytes,
                      256u / _csr.degree(v));
    }
    if (_dir == Traversal::Pull) {
        _contrib[1] = env.alloc(bytes);
        for (unsigned v = 0; v < n; ++v) {
            env.writeInit(_contrib[1] +
                              static_cast<Addr>(v) * kWordBytes,
                          0);
        }
        // Contributions are produced once per iteration and gathered
        // by every neighbor next iteration: streaming.
        env.declareStreaming(_contrib[0], bytes);
        env.declareStreaming(_contrib[1], bytes);
    } else {
        _accum = env.alloc(bytes);
        for (unsigned v = 0; v < n; ++v) {
            env.writeInit(_accum + static_cast<Addr>(v) * kWordBytes,
                          0);
        }
    }

    // Host-side fixed-point iteration (u32 wrap-around arithmetic is
    // order-independent, so push's fetch-adds match the gather sum).
    std::vector<std::uint32_t> contrib(n), next_contrib(n);
    _expect.assign(n, 256);
    for (unsigned v = 0; v < n; ++v)
        contrib[v] = 256u / _csr.degree(v);
    for (unsigned r = 0; r < _params.rounds; ++r) {
        for (unsigned v = 0; v < n; ++v) {
            std::uint32_t sum = 0;
            for (unsigned e = _csr.rowBase[v];
                 e < _csr.rowBase[v + 1]; ++e) {
                sum += contrib[_csr.cols[e]];
            }
            _expect[v] = rankOf(sum);
            next_contrib[v] = _expect[v] / _csr.degree(v);
        }
        contrib.swap(next_contrib);
    }
}

SimTask
Pagerank::tbMain(TbContext &ctx)
{
    return _dir == Traversal::Pull ? pullMain(ctx) : pushMain(ctx);
}

SimTask
Pagerank::pullMain(TbContext &ctx)
{
    unsigned k = ctx.kernel();
    Addr cur = _contrib[k % 2];
    Addr nxt = _contrib[(k + 1) % 2];
    auto [lo, hi] = slice(ctx.tbGlobal());
    for (unsigned v = lo; v < hi; ++v) {
        Addr voff = static_cast<Addr>(v) * kWordBytes;
        std::uint32_t e0 = co_await ctx.load(rowBaseAddr(v));
        std::uint32_t e1 = co_await ctx.load(rowBaseAddr(v + 1));
        std::uint32_t sum = 0;
        for (std::uint32_t e = e0; e < e1; ++e) {
            std::uint32_t u = co_await ctx.load(colAddr(e));
            sum += co_await ctx.load(
                cur + static_cast<Addr>(u) * kWordBytes);
        }
        std::uint32_t r = rankOf(sum);
        co_await ctx.store(_rank + voff, r);
        co_await ctx.store(nxt + voff, r / (e1 - e0));
    }
}

SimTask
Pagerank::pushMain(TbContext &ctx)
{
    unsigned k = ctx.kernel();
    auto [lo, hi] = slice(ctx.tbGlobal());
    if (k % 2 == 0) {
        // Scatter: add this vertex's contribution to each neighbor.
        for (unsigned u = lo; u < hi; ++u) {
            std::uint32_t c = co_await ctx.load(
                _contrib[0] + static_cast<Addr>(u) * kWordBytes);
            std::uint32_t e0 = co_await ctx.load(rowBaseAddr(u));
            std::uint32_t e1 = co_await ctx.load(rowBaseAddr(u + 1));
            for (std::uint32_t e = e0; e < e1; ++e) {
                std::uint32_t v = co_await ctx.load(colAddr(e));
                co_await ctx.atomic(ctx.fetchAdd(
                    _accum + static_cast<Addr>(v) * kWordBytes, c,
                    Scope::Global));
            }
        }
    } else {
        // Apply: fold the accumulated sum, emit the next
        // contribution, and reset the accumulator for the next
        // scatter (owner-only plain accesses; the scatter's atomics
        // are on the other side of a kernel boundary).
        for (unsigned v = lo; v < hi; ++v) {
            Addr voff = static_cast<Addr>(v) * kWordBytes;
            std::uint32_t sum = co_await ctx.load(_accum + voff);
            std::uint32_t e0 = co_await ctx.load(rowBaseAddr(v));
            std::uint32_t e1 = co_await ctx.load(rowBaseAddr(v + 1));
            std::uint32_t r = rankOf(sum);
            co_await ctx.store(_rank + voff, r);
            co_await ctx.store(_contrib[0] + voff, r / (e1 - e0));
            co_await ctx.store(_accum + voff, 0);
        }
    }
}

std::vector<std::string>
Pagerank::check(WorkloadEnv &env)
{
    return compareArray(env, name(), _rank, _expect);
}

// ---------------------------------------------------------------------
// SSSP
// ---------------------------------------------------------------------

Sssp::Sssp(Traversal dir, GraphShape shape, GraphParams params)
    : GraphWorkload("SSSP", dir, shape, params)
{
}

void
Sssp::init(WorkloadEnv &env)
{
    initGraph(env);
    unsigned n = _params.nodes;
    Addr bytes = static_cast<Addr>(n) * kWordBytes;
    _dist[0] = env.alloc(bytes);
    _dist[1] = env.alloc(bytes);
    for (unsigned v = 0; v < n; ++v) {
        std::uint32_t d = v == 0 ? 0 : kSsspInf;
        env.writeInit(_dist[0] + static_cast<Addr>(v) * kWordBytes,
                      d);
        env.writeInit(_dist[1] + static_cast<Addr>(v) * kWordBytes,
                      d);
    }
    if (_dir == Traversal::Pull) {
        // Distances double-buffer round to round: each buffer is
        // written once per round and gathered by every neighbor the
        // round after. (Push CAS-relaxes them, so only pull streams.)
        env.declareStreaming(_dist[0], bytes);
        env.declareStreaming(_dist[1], bytes);
    }

    // Host-side synchronous Bellman-Ford for `rounds` rounds.
    std::vector<std::uint32_t> cur(n), nxt(n);
    for (unsigned v = 0; v < n; ++v)
        cur[v] = v == 0 ? 0 : kSsspInf;
    for (unsigned r = 0; r < _params.rounds; ++r) {
        for (unsigned v = 0; v < n; ++v) {
            std::uint32_t best = cur[v];
            for (unsigned e = _csr.rowBase[v];
                 e < _csr.rowBase[v + 1]; ++e) {
                unsigned u = _csr.cols[e];
                if (cur[u] < kSsspInf) {
                    best = std::min(best,
                                    cur[u] + edgeWeight(u, v));
                }
            }
            nxt[v] = best;
        }
        cur.swap(nxt);
    }
    _expect = cur;
}

SimTask
Sssp::tbMain(TbContext &ctx)
{
    return _dir == Traversal::Pull ? pullMain(ctx) : pushMain(ctx);
}

SimTask
Sssp::pullMain(TbContext &ctx)
{
    unsigned k = ctx.kernel();
    Addr cur = _dist[k % 2];
    Addr nxt = _dist[(k + 1) % 2];
    auto [lo, hi] = slice(ctx.tbGlobal());
    for (unsigned v = lo; v < hi; ++v) {
        Addr voff = static_cast<Addr>(v) * kWordBytes;
        std::uint32_t best = co_await ctx.load(cur + voff);
        std::uint32_t e0 = co_await ctx.load(rowBaseAddr(v));
        std::uint32_t e1 = co_await ctx.load(rowBaseAddr(v + 1));
        for (std::uint32_t e = e0; e < e1; ++e) {
            std::uint32_t u = co_await ctx.load(colAddr(e));
            std::uint32_t du = co_await ctx.load(
                cur + static_cast<Addr>(u) * kWordBytes);
            if (du < kSsspInf)
                best = std::min(best, du + edgeWeight(u, v));
        }
        co_await ctx.store(nxt + voff, best);
    }
}

SimTask
Sssp::pushMain(TbContext &ctx)
{
    unsigned k = ctx.kernel();
    unsigned round = k / 2;
    Addr cur = _dist[round % 2];
    Addr nxt = _dist[(round + 1) % 2];
    auto [lo, hi] = slice(ctx.tbGlobal());
    if (k % 2 == 0) {
        // Copy kernel: seed the relax target with the current
        // distances (owner-only plain stores).
        for (unsigned v = lo; v < hi; ++v) {
            Addr voff = static_cast<Addr>(v) * kWordBytes;
            std::uint32_t d = co_await ctx.load(cur + voff);
            co_await ctx.store(nxt + voff, d);
        }
    } else {
        // Relax kernel: CAS-min each out-edge. Min is commutative,
        // so the result is schedule-independent.
        for (unsigned u = lo; u < hi; ++u) {
            std::uint32_t du = co_await ctx.load(
                cur + static_cast<Addr>(u) * kWordBytes);
            if (du >= kSsspInf)
                continue;
            std::uint32_t e0 = co_await ctx.load(rowBaseAddr(u));
            std::uint32_t e1 = co_await ctx.load(rowBaseAddr(u + 1));
            for (std::uint32_t e = e0; e < e1; ++e) {
                std::uint32_t v = co_await ctx.load(colAddr(e));
                Addr voff = static_cast<Addr>(v) * kWordBytes;
                std::uint32_t nd = du + edgeWeight(u, v);
                std::uint32_t seen = co_await ctx.atomic(
                    ctx.atomicLoad(nxt + voff, Scope::Global));
                while (nd < seen) {
                    std::uint32_t old = co_await ctx.atomic(
                        ctx.compareSwap(nxt + voff, seen, nd,
                                        Scope::Global));
                    if (old == seen)
                        break;
                    seen = old;
                }
            }
        }
    }
}

std::vector<std::string>
Sssp::check(WorkloadEnv &env)
{
    return compareArray(env, name(),
                        _dist[_params.rounds % 2], _expect);
}

} // namespace nosync
