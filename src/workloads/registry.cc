#include "workloads/registry.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "workloads/apps.hh"
#include "workloads/graph.hh"
#include "workloads/microbench.hh"
#include "workloads/uts.hh"

namespace nosync
{

namespace
{

MicrobenchParams
scaledMicro(unsigned scale_percent)
{
    MicrobenchParams params;
    params.iterations =
        std::max(10u, params.iterations * scale_percent / 100);
    params.threads =
        std::max(8u, params.threads * scale_percent / 100);
    return params;
}

UtsParams
scaledUts(unsigned scale_percent)
{
    UtsParams params;
    params.numNodes =
        std::max(512u, params.numNodes * scale_percent / 100);
    return params;
}

/** Reduced-scale graph variant, or nullptr if @p name is not one. */
std::unique_ptr<Workload>
scaledGraph(const std::string &name)
{
    GraphParams params;
    params.nodes = 64;
    params.rounds = 3;
    Traversal dir = name.find("_PUSH") != std::string::npos
                        ? Traversal::Push
                        : Traversal::Pull;
    GraphShape shape =
        name.size() > 3 && name.compare(name.size() - 3, 3, "_PL") == 0
            ? GraphShape::PowerLaw
            : GraphShape::Mesh;
    if (name.rfind("BFS_", 0) == 0)
        return std::make_unique<Bfs>(dir, shape, params);
    if (name.rfind("PR_", 0) == 0)
        return std::make_unique<Pagerank>(dir, shape, params);
    if (name.rfind("SSSP_", 0) == 0)
        return std::make_unique<Sssp>(dir, shape, params);
    return nullptr;
}

} // namespace

const std::vector<WorkloadDesc> &
workloadRegistry()
{
    static const std::vector<WorkloadDesc> registry = {
        // Applications without intra-kernel synchronization.
        {"BP", "no-sync", "512-in x 128-hid layer",
         [] { return std::make_unique<Backprop>(512, 128); }},
        {"PF", "no-sync", "10 x 100K grid",
         [] { return std::make_unique<Pathfinder>(100000, 10); }},
        {"LUD", "no-sync", "128x128 matrix, 32 steps",
         [] { return std::make_unique<Lud>(128, 32); }},
        {"NW", "no-sync", "256x256 matrix, 16x16 blocks",
         [] { return std::make_unique<Nw>(256, 16); }},
        {"SGEMM", "no-sync", "256x256, 16x16 tiles",
         [] { return std::make_unique<Sgemm>(256, 16); }},
        {"ST", "no-sync", "512x512 grid, 4 iters",
         [] { return std::make_unique<Stencil>(512, 4); }},
        {"HS", "no-sync", "512x512 grid, 2 iters",
         [] { return std::make_unique<Hotspot>(512, 2); }},
        {"NN", "no-sync", "64K records",
         [] { return std::make_unique<Nn>(65536, 30); }},
        {"SRAD", "no-sync", "256x256 image, 2 iters",
         [] { return std::make_unique<Srad>(256, 2); }},
        {"LAVA", "no-sync", "4x4x4 boxes, 20 particles",
         [] { return std::make_unique<LavaMd>(); }},

        // Globally scoped fine-grained synchronization.
        {"FAM_G", "global-sync", "3 TB/CU, 100 iters, 10 Ld&St",
         [] {
             return std::make_unique<MutexBench>(MutexKind::FetchAdd,
                                                 Scope::Global);
         }},
        {"SLM_G", "global-sync", "3 TB/CU, 100 iters, 10 Ld&St",
         [] {
             return std::make_unique<MutexBench>(MutexKind::Sleep,
                                                 Scope::Global);
         }},
        {"SPM_G", "global-sync", "3 TB/CU, 100 iters, 10 Ld&St",
         [] {
             return std::make_unique<MutexBench>(MutexKind::Spin,
                                                 Scope::Global);
         }},
        {"SPMBO_G", "global-sync", "3 TB/CU, 100 iters, 10 Ld&St",
         [] {
             return std::make_unique<MutexBench>(
                 MutexKind::SpinBackoff, Scope::Global);
         }},

        // Device-scoped synchronization (multi-device machines): one
        // mutex per device, synced at device scope. On one device
        // these degenerate to the _G variants.
        {"FAM_D", "device-sync", "3 TB/CU, 100 iters, 10 Ld&St",
         [] {
             return std::make_unique<MutexBench>(MutexKind::FetchAdd,
                                                 Scope::Device);
         }},
        {"SPM_D", "device-sync", "3 TB/CU, 100 iters, 10 Ld&St",
         [] {
             return std::make_unique<MutexBench>(MutexKind::Spin,
                                                 Scope::Device);
         }},

        // Locally scoped / hybrid synchronization.
        {"FAM_L", "local-sync", "3 TB/CU, 100 iters, 10 Ld&St",
         [] {
             return std::make_unique<MutexBench>(MutexKind::FetchAdd,
                                                 Scope::Local);
         }},
        {"SLM_L", "local-sync", "3 TB/CU, 100 iters, 10 Ld&St",
         [] {
             return std::make_unique<MutexBench>(MutexKind::Sleep,
                                                 Scope::Local);
         }},
        {"SPM_L", "local-sync", "3 TB/CU, 100 iters, 10 Ld&St",
         [] {
             return std::make_unique<MutexBench>(MutexKind::Spin,
                                                 Scope::Local);
         }},
        {"SPMBO_L", "local-sync", "3 TB/CU, 100 iters, 10 Ld&St",
         [] {
             return std::make_unique<MutexBench>(
                 MutexKind::SpinBackoff, Scope::Local);
         }},
        {"SS_L", "local-sync", "1 writer + 2 readers/CU, 100 iters",
         [] { return std::make_unique<SemaphoreBench>(false); }},
        {"SSBO_L", "local-sync", "1 writer + 2 readers/CU, 100 iters",
         [] { return std::make_unique<SemaphoreBench>(true); }},
        {"TB_LG", "local-sync", "3 TB/CU, 100 iters, 10-word chunks",
         [] { return std::make_unique<TreeBarrierBench>(false); }},
        {"TBEX_LG", "local-sync", "3 TB/CU, 100 iters, 10-word chunks",
         [] { return std::make_unique<TreeBarrierBench>(true); }},
        {"UTS", "local-sync", "16K nodes",
         [] { return std::make_unique<Uts>(); }},

        // Graph analytics: {BFS, PageRank, SSSP} x {push, pull} x
        // {power-law (_PL), 2-D mesh (_M)}. Pull variants declare
        // their double buffers streaming (exercised by DD+PR); push
        // variants scatter through globally scoped atomics.
        {"BFS_PUSH_PL", "graph", "160-vertex power-law, 5 levels",
         [] {
             return std::make_unique<Bfs>(Traversal::Push,
                                          GraphShape::PowerLaw);
         }},
        {"BFS_PULL_PL", "graph", "160-vertex power-law, 5 levels",
         [] {
             return std::make_unique<Bfs>(Traversal::Pull,
                                          GraphShape::PowerLaw);
         }},
        {"BFS_PUSH_M", "graph", "12x12 mesh, 5 levels",
         [] {
             return std::make_unique<Bfs>(Traversal::Push,
                                          GraphShape::Mesh);
         }},
        {"BFS_PULL_M", "graph", "12x12 mesh, 5 levels",
         [] {
             return std::make_unique<Bfs>(Traversal::Pull,
                                          GraphShape::Mesh);
         }},
        {"PR_PUSH_PL", "graph", "160-vertex power-law, 5 iters",
         [] {
             return std::make_unique<Pagerank>(Traversal::Push,
                                               GraphShape::PowerLaw);
         }},
        {"PR_PULL_PL", "graph", "160-vertex power-law, 5 iters",
         [] {
             return std::make_unique<Pagerank>(Traversal::Pull,
                                               GraphShape::PowerLaw);
         }},
        {"PR_PUSH_M", "graph", "12x12 mesh, 5 iters",
         [] {
             return std::make_unique<Pagerank>(Traversal::Push,
                                               GraphShape::Mesh);
         }},
        {"PR_PULL_M", "graph", "12x12 mesh, 5 iters",
         [] {
             return std::make_unique<Pagerank>(Traversal::Pull,
                                               GraphShape::Mesh);
         }},
        {"SSSP_PUSH_PL", "graph", "160-vertex power-law, 5 rounds",
         [] {
             return std::make_unique<Sssp>(Traversal::Push,
                                           GraphShape::PowerLaw);
         }},
        {"SSSP_PULL_PL", "graph", "160-vertex power-law, 5 rounds",
         [] {
             return std::make_unique<Sssp>(Traversal::Pull,
                                           GraphShape::PowerLaw);
         }},
        {"SSSP_PUSH_M", "graph", "12x12 mesh, 5 rounds",
         [] {
             return std::make_unique<Sssp>(Traversal::Push,
                                           GraphShape::Mesh);
         }},
        {"SSSP_PULL_M", "graph", "12x12 mesh, 5 rounds",
         [] {
             return std::make_unique<Sssp>(Traversal::Pull,
                                           GraphShape::Mesh);
         }},
    };
    return registry;
}

std::vector<const WorkloadDesc *>
workloadsInGroup(const std::string &group)
{
    std::vector<const WorkloadDesc *> out;
    for (const auto &desc : workloadRegistry()) {
        if (desc.group == group)
            out.push_back(&desc);
    }
    return out;
}

const WorkloadDesc *
findWorkload(const std::string &name)
{
    for (const auto &desc : workloadRegistry()) {
        if (desc.name == name)
            return &desc;
    }
    return nullptr;
}

std::unique_ptr<Workload>
makeScaled(const std::string &name, unsigned scale_percent)
{
    if (scale_percent >= 100) {
        const WorkloadDesc *desc = findWorkload(name);
        fatal_if(!desc, "unknown workload ", name);
        return desc->make();
    }

    MicrobenchParams micro = scaledMicro(scale_percent);
    if (name == "FAM_G")
        return std::make_unique<MutexBench>(MutexKind::FetchAdd,
                                            Scope::Global, micro);
    if (name == "SLM_G")
        return std::make_unique<MutexBench>(MutexKind::Sleep,
                                            Scope::Global, micro);
    if (name == "SPM_G")
        return std::make_unique<MutexBench>(MutexKind::Spin,
                                            Scope::Global, micro);
    if (name == "SPMBO_G")
        return std::make_unique<MutexBench>(MutexKind::SpinBackoff,
                                            Scope::Global, micro);
    if (name == "FAM_D")
        return std::make_unique<MutexBench>(MutexKind::FetchAdd,
                                            Scope::Device, micro);
    if (name == "SPM_D")
        return std::make_unique<MutexBench>(MutexKind::Spin,
                                            Scope::Device, micro);
    if (name == "FAM_L")
        return std::make_unique<MutexBench>(MutexKind::FetchAdd,
                                            Scope::Local, micro);
    if (name == "SLM_L")
        return std::make_unique<MutexBench>(MutexKind::Sleep,
                                            Scope::Local, micro);
    if (name == "SPM_L")
        return std::make_unique<MutexBench>(MutexKind::Spin,
                                            Scope::Local, micro);
    if (name == "SPMBO_L")
        return std::make_unique<MutexBench>(MutexKind::SpinBackoff,
                                            Scope::Local, micro);
    if (name == "SS_L")
        return std::make_unique<SemaphoreBench>(false, micro);
    if (name == "SSBO_L")
        return std::make_unique<SemaphoreBench>(true, micro);
    if (name == "TB_LG")
        return std::make_unique<TreeBarrierBench>(false, micro);
    if (name == "TBEX_LG")
        return std::make_unique<TreeBarrierBench>(true, micro);
    if (name == "UTS")
        return std::make_unique<Uts>(scaledUts(scale_percent));

    // Applications: reduced-scale variants keep the same structure.
    if (name == "BP")
        return std::make_unique<Backprop>(128, 64);
    if (name == "PF")
        return std::make_unique<Pathfinder>(2048, 8);
    if (name == "LUD")
        return std::make_unique<Lud>(48, 12);
    if (name == "NW")
        return std::make_unique<Nw>(96, 8);
    if (name == "SGEMM")
        return std::make_unique<Sgemm>(96, 16);
    if (name == "ST")
        return std::make_unique<Stencil>(64, 4);
    if (name == "HS")
        return std::make_unique<Hotspot>(64, 2);
    if (name == "NN")
        return std::make_unique<Nn>(8192, 30);
    if (name == "SRAD")
        return std::make_unique<Srad>(64, 2);
    if (name == "LAVA")
        return std::make_unique<LavaMd>(3, 16);
    if (auto graph = scaledGraph(name))
        return graph;
    const WorkloadDesc *desc = findWorkload(name);
    fatal_if(!desc, "unknown workload ", name);
    return desc->make();
}

} // namespace nosync
