/**
 * @file
 * Workload registry: name -> factory for every Table 4 benchmark,
 * grouped the way the paper's figures group them.
 */

#ifndef WORKLOADS_REGISTRY_HH
#define WORKLOADS_REGISTRY_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "gpu/workload.hh"

namespace nosync
{

/** Registry entry: a benchmark and its Table 4 metadata. */
struct WorkloadDesc
{
    std::string name;
    /// "no-sync" | "global-sync" | "device-sync" | "local-sync" |
    /// "graph"
    std::string group;
    std::string input; ///< Table 4 input description (scaled)
    std::function<std::unique_ptr<Workload>()> make;
};

/** All benchmarks at paper scale. */
const std::vector<WorkloadDesc> &workloadRegistry();

/** Benchmarks of one group, in the paper's figure order. */
std::vector<const WorkloadDesc *> workloadsInGroup(
    const std::string &group);

/** Look up one benchmark by name; nullptr when unknown. */
const WorkloadDesc *findWorkload(const std::string &name);

/**
 * A smaller-scale variant of a benchmark for fast runs (tests, CI):
 * identical structure, reduced iterations / nodes.
 */
std::unique_ptr<Workload> makeScaled(const std::string &name,
                                     unsigned scale_percent);

} // namespace nosync

#endif // WORKLOADS_REGISTRY_HH
