/**
 * @file
 * Stencil-style applications: Pathfinder, Stencil, Hotspot, SRAD.
 */

#include <sstream>

#include "sim/logging.hh"
#include "workloads/apps.hh"

namespace nosync
{

namespace
{

/** Deterministic pseudo-random init value for element @p i. */
std::uint32_t
seedValue(std::uint32_t i, std::uint32_t salt)
{
    return ((i * 2654435761u) ^ (salt * 40503u)) & 0xff;
}

/** Row range handled by TB @p tb out of @p tbs for @p rows rows. */
std::pair<unsigned, unsigned>
rowSlice(unsigned tb, unsigned tbs, unsigned rows)
{
    unsigned per = (rows + tbs - 1) / tbs;
    unsigned lo = tb * per;
    unsigned hi = std::min(rows, lo + per);
    return {std::min(lo, rows), hi};
}

std::vector<std::string>
compareArray(WorkloadEnv &env, const std::string &who, Addr base,
             const std::vector<std::uint32_t> &expect)
{
    std::vector<std::string> failures;
    for (std::size_t i = 0; i < expect.size(); ++i) {
        std::uint32_t got =
            env.debugRead(base + static_cast<Addr>(i) * kWordBytes);
        if (got != expect[i]) {
            std::ostringstream os;
            os << who << ": element " << i << " = " << got
               << ", expected " << expect[i];
            failures.push_back(os.str());
            if (failures.size() > 8)
                break;
        }
    }
    return failures;
}

} // namespace

// ---------------------------------------------------------------------
// Pathfinder
// ---------------------------------------------------------------------

Pathfinder::Pathfinder(unsigned cols, unsigned rows)
    : _cols(cols), _rows(rows)
{
    panic_if(rows < 2, "pathfinder needs at least two rows");
}

void
Pathfinder::init(WorkloadEnv &env)
{
    _wall = env.alloc(static_cast<Addr>(_rows) * _cols * kWordBytes);
    _buf[0] = env.alloc(static_cast<Addr>(_cols) * kWordBytes);
    _buf[1] = env.alloc(static_cast<Addr>(_cols) * kWordBytes);
    for (unsigned r = 0; r < _rows; ++r) {
        for (unsigned c = 0; c < _cols; ++c) {
            env.writeInit(_wall +
                              (static_cast<Addr>(r) * _cols + c) *
                                  kWordBytes,
                          seedValue(r * _cols + c, 7));
        }
    }
    env.declareReadOnly(_wall,
                        static_cast<Addr>(_rows) * _cols * kWordBytes);

    // Host-side expected DP.
    std::vector<std::uint32_t> prev(_cols), cur(_cols);
    for (unsigned c = 0; c < _cols; ++c)
        prev[c] = seedValue(c, 7);
    for (unsigned r = 1; r < _rows; ++r) {
        for (unsigned c = 0; c < _cols; ++c) {
            std::uint32_t best = prev[c];
            if (c > 0)
                best = std::min(best, prev[c - 1]);
            if (c + 1 < _cols)
                best = std::min(best, prev[c + 1]);
            cur[c] = best + seedValue(r * _cols + c, 7);
        }
        prev = cur;
    }
    _expect = prev;
}

KernelInfo
Pathfinder::kernelInfo(unsigned) const
{
    return {16};
}

SimTask
Pathfinder::tbMain(TbContext &ctx)
{
    unsigned r = ctx.kernel();
    auto [lo, hi] = rowSlice(ctx.tbGlobal(), 16, _cols);
    if (r == 0) {
        // First kernel seeds the DP row from the wall.
        for (unsigned c = lo; c < hi; ++c) {
            std::uint32_t w = co_await ctx.load(
                _wall + static_cast<Addr>(c) * kWordBytes);
            co_await ctx.store(_buf[0] +
                                   static_cast<Addr>(c) * kWordBytes,
                               w);
        }
        co_return;
    }

    Addr prev = _buf[(r - 1) % 2];
    Addr cur = _buf[r % 2];
    for (unsigned c = lo; c < hi; ++c) {
        std::uint32_t best = co_await ctx.load(
            prev + static_cast<Addr>(c) * kWordBytes);
        if (c > 0) {
            best = std::min(best,
                            co_await ctx.load(
                                prev + static_cast<Addr>(c - 1) *
                                           kWordBytes));
        }
        if (c + 1 < _cols) {
            best = std::min(best,
                            co_await ctx.load(
                                prev + static_cast<Addr>(c + 1) *
                                           kWordBytes));
        }
        std::uint32_t w = co_await ctx.load(
            _wall + (static_cast<Addr>(r) * _cols + c) * kWordBytes);
        co_await ctx.store(cur + static_cast<Addr>(c) * kWordBytes,
                           best + w);
    }
}

std::vector<std::string>
Pathfinder::check(WorkloadEnv &env)
{
    return compareArray(env, "PF", _buf[(_rows - 1) % 2], _expect);
}

// ---------------------------------------------------------------------
// Stencil
// ---------------------------------------------------------------------

Stencil::Stencil(unsigned dim, unsigned iters)
    : _dim(dim), _iters(iters)
{
}

void
Stencil::init(WorkloadEnv &env)
{
    Addr bytes = static_cast<Addr>(_dim) * _dim * kWordBytes;
    _buf[0] = env.alloc(bytes);
    _buf[1] = env.alloc(bytes);

    std::vector<std::uint32_t> grid(_dim * _dim);
    for (unsigned i = 0; i < _dim * _dim; ++i) {
        grid[i] = seedValue(i, 11);
        env.writeInit(_buf[0] + static_cast<Addr>(i) * kWordBytes,
                      grid[i]);
    }

    std::vector<std::uint32_t> next(grid.size());
    for (unsigned it = 0; it < _iters; ++it) {
        for (unsigned y = 0; y < _dim; ++y) {
            for (unsigned x = 0; x < _dim; ++x) {
                auto at = [&](unsigned yy, unsigned xx) {
                    return grid[yy * _dim + xx];
                };
                std::uint32_t sum = at(y, x);
                sum += at(y > 0 ? y - 1 : y, x);
                sum += at(y + 1 < _dim ? y + 1 : y, x);
                sum += at(y, x > 0 ? x - 1 : x);
                sum += at(y, x + 1 < _dim ? x + 1 : x);
                next[y * _dim + x] = sum / 5;
            }
        }
        grid.swap(next);
    }
    _expect = grid;
}

KernelInfo
Stencil::kernelInfo(unsigned) const
{
    return {16};
}

SimTask
Stencil::tbMain(TbContext &ctx)
{
    unsigned it = ctx.kernel();
    Addr src = _buf[it % 2];
    Addr dst = _buf[(it + 1) % 2];
    auto [lo, hi] = rowSlice(ctx.tbGlobal(), 16, _dim);

    for (unsigned y = lo; y < hi; ++y) {
        for (unsigned x = 0; x < _dim; ++x) {
            auto addr = [&](unsigned yy, unsigned xx) {
                return src + (static_cast<Addr>(yy) * _dim + xx) *
                                 kWordBytes;
            };
            std::uint32_t sum = co_await ctx.load(addr(y, x));
            sum += co_await ctx.load(addr(y > 0 ? y - 1 : y, x));
            sum += co_await ctx.load(
                addr(y + 1 < _dim ? y + 1 : y, x));
            sum += co_await ctx.load(addr(y, x > 0 ? x - 1 : x));
            sum += co_await ctx.load(
                addr(y, x + 1 < _dim ? x + 1 : x));
            co_await ctx.store(dst + (static_cast<Addr>(y) * _dim +
                                      x) * kWordBytes,
                               sum / 5);
        }
    }
}

std::vector<std::string>
Stencil::check(WorkloadEnv &env)
{
    return compareArray(env, "ST", _buf[_iters % 2], _expect);
}

// ---------------------------------------------------------------------
// Hotspot
// ---------------------------------------------------------------------

Hotspot::Hotspot(unsigned dim, unsigned iters)
    : _dim(dim), _iters(iters)
{
}

void
Hotspot::init(WorkloadEnv &env)
{
    Addr bytes = static_cast<Addr>(_dim) * _dim * kWordBytes;
    _power = env.alloc(bytes);
    _buf[0] = env.alloc(bytes);
    _buf[1] = env.alloc(bytes);

    std::vector<std::uint32_t> temp(_dim * _dim), power(_dim * _dim);
    for (unsigned i = 0; i < _dim * _dim; ++i) {
        temp[i] = 300 + seedValue(i, 13);
        power[i] = seedValue(i, 17);
        env.writeInit(_buf[0] + static_cast<Addr>(i) * kWordBytes,
                      temp[i]);
        env.writeInit(_power + static_cast<Addr>(i) * kWordBytes,
                      power[i]);
    }
    env.declareReadOnly(_power, bytes);

    std::vector<std::uint32_t> next(temp.size());
    for (unsigned it = 0; it < _iters; ++it) {
        for (unsigned y = 0; y < _dim; ++y) {
            for (unsigned x = 0; x < _dim; ++x) {
                auto at = [&](unsigned yy, unsigned xx) {
                    return temp[yy * _dim + xx];
                };
                std::uint32_t self = at(y, x);
                std::uint32_t sum = at(y > 0 ? y - 1 : y, x) +
                                    at(y + 1 < _dim ? y + 1 : y, x) +
                                    at(y, x > 0 ? x - 1 : x) +
                                    at(y, x + 1 < _dim ? x + 1 : x);
                next[y * _dim + x] =
                    self + ((power[y * _dim + x] + sum - 4 * self) >>
                            3);
            }
        }
        temp.swap(next);
    }
    _expect = temp;
}

KernelInfo
Hotspot::kernelInfo(unsigned) const
{
    return {16};
}

SimTask
Hotspot::tbMain(TbContext &ctx)
{
    unsigned it = ctx.kernel();
    Addr src = _buf[it % 2];
    Addr dst = _buf[(it + 1) % 2];
    auto [lo, hi] = rowSlice(ctx.tbGlobal(), 16, _dim);

    for (unsigned y = lo; y < hi; ++y) {
        for (unsigned x = 0; x < _dim; ++x) {
            auto addr = [&](unsigned yy, unsigned xx) {
                return src + (static_cast<Addr>(yy) * _dim + xx) *
                                 kWordBytes;
            };
            std::uint32_t self = co_await ctx.load(addr(y, x));
            std::uint32_t sum =
                co_await ctx.load(addr(y > 0 ? y - 1 : y, x));
            sum += co_await ctx.load(
                addr(y + 1 < _dim ? y + 1 : y, x));
            sum += co_await ctx.load(addr(y, x > 0 ? x - 1 : x));
            sum += co_await ctx.load(
                addr(y, x + 1 < _dim ? x + 1 : x));
            std::uint32_t p = co_await ctx.load(
                _power +
                (static_cast<Addr>(y) * _dim + x) * kWordBytes);
            co_await ctx.store(dst + (static_cast<Addr>(y) * _dim +
                                      x) * kWordBytes,
                               self + ((p + sum - 4 * self) >> 3));
        }
    }
}

std::vector<std::string>
Hotspot::check(WorkloadEnv &env)
{
    return compareArray(env, "HS", _buf[_iters % 2], _expect);
}

// ---------------------------------------------------------------------
// SRAD
// ---------------------------------------------------------------------

Srad::Srad(unsigned dim, unsigned iters) : _dim(dim), _iters(iters) {}

void
Srad::init(WorkloadEnv &env)
{
    Addr bytes = static_cast<Addr>(_dim) * _dim * kWordBytes;
    _img = env.alloc(bytes);
    _coef = env.alloc(bytes);

    std::vector<std::uint32_t> img(_dim * _dim);
    for (unsigned i = 0; i < _dim * _dim; ++i) {
        img[i] = seedValue(i, 19) + 16;
        env.writeInit(_img + static_cast<Addr>(i) * kWordBytes,
                      img[i]);
    }

    std::vector<std::uint32_t> coef(img.size());
    for (unsigned it = 0; it < _iters; ++it) {
        for (unsigned y = 0; y < _dim; ++y) {
            for (unsigned x = 0; x < _dim; ++x) {
                auto at = [&](unsigned yy, unsigned xx) {
                    return img[yy * _dim + xx];
                };
                std::uint32_t grad =
                    at(y > 0 ? y - 1 : y, x) +
                    at(y, x > 0 ? x - 1 : x) - 2 * at(y, x);
                coef[y * _dim + x] = (grad * grad) & 0xffff;
            }
        }
        for (unsigned y = 0; y < _dim; ++y) {
            for (unsigned x = 0; x < _dim; ++x) {
                auto cat = [&](unsigned yy, unsigned xx) {
                    return coef[yy * _dim + xx];
                };
                img[y * _dim + x] +=
                    (cat(y, x) + cat(y + 1 < _dim ? y + 1 : y, x) +
                     cat(y, x + 1 < _dim ? x + 1 : x)) >>
                    4;
            }
        }
    }
    _expect = img;
}

KernelInfo
Srad::kernelInfo(unsigned) const
{
    return {16};
}

SimTask
Srad::tbMain(TbContext &ctx)
{
    bool coef_phase = (ctx.kernel() % 2) == 0;
    auto [lo, hi] = rowSlice(ctx.tbGlobal(), 16, _dim);

    for (unsigned y = lo; y < hi; ++y) {
        for (unsigned x = 0; x < _dim; ++x) {
            Addr idx = (static_cast<Addr>(y) * _dim + x) * kWordBytes;
            if (coef_phase) {
                auto addr = [&](unsigned yy, unsigned xx) {
                    return _img + (static_cast<Addr>(yy) * _dim +
                                   xx) * kWordBytes;
                };
                std::uint32_t self = co_await ctx.load(addr(y, x));
                std::uint32_t up =
                    co_await ctx.load(addr(y > 0 ? y - 1 : y, x));
                std::uint32_t left =
                    co_await ctx.load(addr(y, x > 0 ? x - 1 : x));
                std::uint32_t grad = up + left - 2 * self;
                co_await ctx.store(_coef + idx,
                                   (grad * grad) & 0xffff);
            } else {
                auto caddr = [&](unsigned yy, unsigned xx) {
                    return _coef + (static_cast<Addr>(yy) * _dim +
                                    xx) * kWordBytes;
                };
                std::uint32_t c = co_await ctx.load(caddr(y, x));
                c += co_await ctx.load(
                    caddr(y + 1 < _dim ? y + 1 : y, x));
                c += co_await ctx.load(
                    caddr(y, x + 1 < _dim ? x + 1 : x));
                std::uint32_t v = co_await ctx.load(_img + idx);
                co_await ctx.store(_img + idx, v + (c >> 4));
            }
        }
    }
}

std::vector<std::string>
Srad::check(WorkloadEnv &env)
{
    return compareArray(env, "SRAD", _img, _expect);
}

} // namespace nosync
