/**
 * @file
 * Graph-analytics workload family: BFS, PageRank, and SSSP over
 * synthetic power-law and 2-D mesh graphs, each with a push and a
 * pull traversal variant.
 *
 * The family exists to stress per-region protocol specialization
 * (DD+PR): every variant partitions its data structures into
 *
 *  - the CSR graph structure, declared read-only (DD+RO semantics),
 *  - per-vertex state owned and reused by one thread block (ranks,
 *    distances) — DeNovo registration wins here, and
 *  - frontier-style double buffers written once per round and read
 *    by every neighbor next round — declared streaming, so DD+PR
 *    writes them through to the home L2 bank instead of migrating
 *    ownership to a writer that will never reuse it.
 *
 * Pull variants are owner-computes and entirely free of atomics;
 * push variants scatter through globally scoped atomics (CAS /
 * fetch-add), whose commutative updates keep the output
 * schedule-independent. Push and pull compute the same function, so
 * their outputs are comparable bit for bit.
 */

#ifndef WORKLOADS_GRAPH_HH
#define WORKLOADS_GRAPH_HH

#include <vector>

#include "gpu/workload.hh"

namespace nosync
{

/** Synthetic input topology. */
enum class GraphShape
{
    PowerLaw, ///< hub-heavy undirected graph (skewed degrees)
    Mesh,     ///< 2-D grid, 4-neighbor connectivity
};

/** Traversal direction. */
enum class Traversal
{
    Push, ///< frontier scatters to neighbors via atomics
    Pull, ///< every vertex gathers from neighbors, owner-computes
};

/** Sizing knobs shared by the family. */
struct GraphParams
{
    unsigned nodes = 160;  ///< vertex count (mesh: rounded to square)
    unsigned rounds = 5;   ///< BFS/SSSP rounds, PageRank iterations
    unsigned tbs = 8;      ///< thread blocks per kernel
};

/** Deterministic host-side CSR of the undirected synthetic graph. */
struct GraphCsr
{
    unsigned nodes = 0;
    std::vector<unsigned> rowBase; ///< nodes + 1 entries
    std::vector<unsigned> cols;    ///< neighbor lists, sorted
    unsigned degree(unsigned v) const
    {
        return rowBase[v + 1] - rowBase[v];
    }
};

/** Build the synthetic graph for @p shape over ~@p nodes vertices. */
GraphCsr buildGraph(GraphShape shape, unsigned nodes);

/** Symmetric integer weight of undirected edge {u, v}. */
std::uint32_t edgeWeight(unsigned u, unsigned v);

/** Common machinery: naming, CSR upload, vertex slicing. */
class GraphWorkload : public Workload
{
  public:
    GraphWorkload(const char *kernel_name, Traversal dir,
                  GraphShape shape, const GraphParams &params);
    std::string name() const override { return _name; }
    KernelInfo kernelInfo(unsigned) const override
    {
        return {_params.tbs};
    }

    /** Vertices in the final (possibly rounded) graph. */
    unsigned resultWords() const { return _params.nodes; }

    /**
     * Base address of the per-vertex output array after the last
     * kernel (valid after init()). Push and pull variants of one
     * algorithm compute the same function, so tests compare these
     * images bit for bit across traversal directions.
     */
    virtual Addr resultBase() const = 0;

  protected:
    /** Allocate + upload the CSR arrays and declare them read-only. */
    void initGraph(WorkloadEnv &env);

    /** Vertex range [lo, hi) handled by @p tb. */
    std::pair<unsigned, unsigned> slice(unsigned tb) const;

    Addr rowBaseAddr(unsigned v) const;
    Addr colAddr(unsigned e) const;

    Traversal _dir;
    GraphShape _shape;
    GraphParams _params;
    GraphCsr _csr;
    std::string _name;
    Addr _rowBase = 0, _cols = 0;
};

/** Level-synchronous BFS from vertex 0 (dense frontier bitmaps). */
class Bfs : public GraphWorkload
{
  public:
    Bfs(Traversal dir, GraphShape shape, GraphParams params = {});
    void init(WorkloadEnv &env) override;
    unsigned numKernels() const override { return _params.rounds; }
    SimTask tbMain(TbContext &ctx) override;
    std::vector<std::string> check(WorkloadEnv &env) override;
    Addr resultBase() const override { return _dist; }

  private:
    SimTask pullMain(TbContext &ctx);
    SimTask pushMain(TbContext &ctx);

    Addr _dist = 0, _front[2] = {0, 0};
    std::vector<std::uint32_t> _expect;
};

/** Fixed-point PageRank (values scaled by 256). */
class Pagerank : public GraphWorkload
{
  public:
    Pagerank(Traversal dir, GraphShape shape, GraphParams params = {});
    void init(WorkloadEnv &env) override;
    unsigned numKernels() const override
    {
        return _dir == Traversal::Push ? 2 * _params.rounds
                                       : _params.rounds;
    }
    SimTask tbMain(TbContext &ctx) override;
    std::vector<std::string> check(WorkloadEnv &env) override;
    Addr resultBase() const override { return _rank; }

  private:
    SimTask pullMain(TbContext &ctx);
    SimTask pushMain(TbContext &ctx);

    Addr _rank = 0, _contrib[2] = {0, 0}, _accum = 0;
    std::vector<std::uint32_t> _expect;
};

/** Round-synchronous SSSP (Bellman-Ford relaxations) from vertex 0. */
class Sssp : public GraphWorkload
{
  public:
    Sssp(Traversal dir, GraphShape shape, GraphParams params = {});
    void init(WorkloadEnv &env) override;
    unsigned numKernels() const override
    {
        return _dir == Traversal::Push ? 2 * _params.rounds
                                       : _params.rounds;
    }
    SimTask tbMain(TbContext &ctx) override;
    std::vector<std::string> check(WorkloadEnv &env) override;
    Addr resultBase() const override
    {
        return _dist[_params.rounds % 2];
    }

  private:
    SimTask pullMain(TbContext &ctx);
    SimTask pushMain(TbContext &ctx);

    Addr _dist[2] = {0, 0};
    std::vector<std::uint32_t> _expect;
};

} // namespace nosync

#endif // WORKLOADS_GRAPH_HH
