/**
 * @file
 * Applications without intra-kernel synchronization (Table 4, top).
 *
 * Access-pattern models of the ten Rodinia/Parboil applications the
 * paper evaluates. Each reproduces the memory behaviour that drives
 * the paper's Figure 2 results — streaming reads, stencil halos,
 * wavefronts, scratchpad-tiled GEMM, and LavaMD's repeated
 * force-accumulation writes that overflow the store buffer — using
 * integer arithmetic so every output word is functionally checkable.
 * Input sizes are scaled down from Table 4 to simulation-friendly
 * sizes; DESIGN.md records the mapping.
 */

#ifndef WORKLOADS_APPS_HH
#define WORKLOADS_APPS_HH

#include <vector>

#include "gpu/workload.hh"

namespace nosync
{

/** Backprop (BP): two-layer forward pass + weight update. */
class Backprop : public Workload
{
  public:
    explicit Backprop(unsigned in_units = 128, unsigned hid_units = 64);
    std::string name() const override { return "BP"; }
    void init(WorkloadEnv &env) override;
    unsigned numKernels() const override { return 2; }
    KernelInfo kernelInfo(unsigned k) const override;
    SimTask tbMain(TbContext &ctx) override;
    std::vector<std::string> check(WorkloadEnv &env) override;

  private:
    unsigned _in, _hid;
    Addr _input = 0, _weights = 0, _hidden = 0;
    std::vector<std::uint32_t> _expectHidden, _expectWeights;
};

/** Pathfinder (PF): row-by-row grid DP, one kernel per row. */
class Pathfinder : public Workload
{
  public:
    explicit Pathfinder(unsigned cols = 2048, unsigned rows = 8);
    std::string name() const override { return "PF"; }
    void init(WorkloadEnv &env) override;
    unsigned numKernels() const override { return _rows; }
    KernelInfo kernelInfo(unsigned k) const override;
    SimTask tbMain(TbContext &ctx) override;
    std::vector<std::string> check(WorkloadEnv &env) override;

  private:
    unsigned _cols, _rows;
    Addr _wall = 0, _buf[2] = {0, 0};
    std::vector<std::uint32_t> _expect;
};

/** LU decomposition (LUD): trailing-submatrix updates per step. */
class Lud : public Workload
{
  public:
    explicit Lud(unsigned n = 48, unsigned steps = 12);
    std::string name() const override { return "LUD"; }
    void init(WorkloadEnv &env) override;
    unsigned numKernels() const override { return _steps; }
    KernelInfo kernelInfo(unsigned k) const override;
    SimTask tbMain(TbContext &ctx) override;
    std::vector<std::string> check(WorkloadEnv &env) override;

  private:
    unsigned _n, _steps;
    Addr _matrix = 0;
    std::vector<std::uint32_t> _expect;
};

/** Needleman-Wunsch (NW): wavefront DP over diagonal blocks. */
class Nw : public Workload
{
  public:
    explicit Nw(unsigned n = 96, unsigned block = 8);
    std::string name() const override { return "NW"; }
    void init(WorkloadEnv &env) override;
    unsigned numKernels() const override;
    KernelInfo kernelInfo(unsigned k) const override;
    SimTask tbMain(TbContext &ctx) override;
    std::vector<std::string> check(WorkloadEnv &env) override;

  private:
    unsigned _n, _block, _blocksPerSide;
    Addr _score = 0, _ref = 0;
    std::vector<std::uint32_t> _expect;
};

/** SGEMM: scratchpad-tiled integer matrix multiply. */
class Sgemm : public Workload
{
  public:
    explicit Sgemm(unsigned n = 96, unsigned tile = 16);
    std::string name() const override { return "SGEMM"; }
    void init(WorkloadEnv &env) override;
    KernelInfo kernelInfo(unsigned k) const override;
    SimTask tbMain(TbContext &ctx) override;
    std::vector<std::string> check(WorkloadEnv &env) override;

  private:
    unsigned _n, _tile;
    Addr _a = 0, _b = 0, _c = 0;
    std::vector<std::uint32_t> _expect;
};

/** Stencil (ST): iterated 5-point stencil, double buffered. */
class Stencil : public Workload
{
  public:
    explicit Stencil(unsigned dim = 64, unsigned iters = 4);
    std::string name() const override { return "ST"; }
    void init(WorkloadEnv &env) override;
    unsigned numKernels() const override { return _iters; }
    KernelInfo kernelInfo(unsigned k) const override;
    SimTask tbMain(TbContext &ctx) override;
    std::vector<std::string> check(WorkloadEnv &env) override;

  private:
    unsigned _dim, _iters;
    Addr _buf[2] = {0, 0};
    std::vector<std::uint32_t> _expect;
};

/** Hotspot (HS): stencil with a read-only power map. */
class Hotspot : public Workload
{
  public:
    explicit Hotspot(unsigned dim = 64, unsigned iters = 2);
    std::string name() const override { return "HS"; }
    void init(WorkloadEnv &env) override;
    unsigned numKernels() const override { return _iters; }
    KernelInfo kernelInfo(unsigned k) const override;
    SimTask tbMain(TbContext &ctx) override;
    std::vector<std::string> check(WorkloadEnv &env) override;

  private:
    unsigned _dim, _iters;
    Addr _power = 0, _buf[2] = {0, 0};
    std::vector<std::uint32_t> _expect;
};

/** Nearest neighbor (NN): streaming scan over read-only records. */
class Nn : public Workload
{
  public:
    explicit Nn(unsigned records = 8192, unsigned tbs = 30);
    std::string name() const override { return "NN"; }
    void init(WorkloadEnv &env) override;
    KernelInfo kernelInfo(unsigned k) const override;
    SimTask tbMain(TbContext &ctx) override;
    std::vector<std::string> check(WorkloadEnv &env) override;

  private:
    unsigned _records, _tbs;
    Addr _data = 0, _results = 0;
    std::vector<std::uint32_t> _expect;
};

/** SRAD v2: two-kernel diffusion iteration. */
class Srad : public Workload
{
  public:
    explicit Srad(unsigned dim = 64, unsigned iters = 2);
    std::string name() const override { return "SRAD"; }
    void init(WorkloadEnv &env) override;
    unsigned numKernels() const override { return 2 * _iters; }
    KernelInfo kernelInfo(unsigned k) const override;
    SimTask tbMain(TbContext &ctx) override;
    std::vector<std::string> check(WorkloadEnv &env) override;

  private:
    unsigned _dim, _iters;
    Addr _img = 0, _coef = 0;
    std::vector<std::uint32_t> _expect;
};

/** LavaMD (LAVA): per-box force accumulation with heavy rewrites. */
class LavaMd : public Workload
{
  public:
    explicit LavaMd(unsigned boxes_per_dim = 4,
                    unsigned particles = 20);
    std::string name() const override { return "LAVA"; }
    void init(WorkloadEnv &env) override;
    KernelInfo kernelInfo(unsigned k) const override;
    SimTask tbMain(TbContext &ctx) override;
    std::vector<std::string> check(WorkloadEnv &env) override;

  private:
    unsigned boxId(unsigned x, unsigned y, unsigned z) const;

    unsigned _dim, _particles, _numBoxes;
    Addr _pos = 0, _force = 0;
    std::vector<std::uint32_t> _expect;
};

} // namespace nosync

#endif // WORKLOADS_APPS_HH
