/**
 * @file
 * Streaming and n-body style applications: NN and LavaMD.
 */

#include <sstream>

#include "sim/logging.hh"
#include "workloads/apps.hh"

namespace nosync
{

namespace
{

std::uint32_t
seedValue(std::uint32_t i, std::uint32_t salt)
{
    return ((i * 2654435761u) ^ (salt * 40503u)) & 0xff;
}

} // namespace

// ---------------------------------------------------------------------
// NN
// ---------------------------------------------------------------------

Nn::Nn(unsigned records, unsigned tbs) : _records(records), _tbs(tbs)
{
}

void
Nn::init(WorkloadEnv &env)
{
    _data = env.alloc(static_cast<Addr>(_records) * kWordBytes);
    _results = env.alloc(static_cast<Addr>(_tbs) * kWordBytes);

    std::vector<std::uint32_t> data(_records);
    for (unsigned i = 0; i < _records; ++i) {
        data[i] = seedValue(i, 47);
        env.writeInit(_data + static_cast<Addr>(i) * kWordBytes,
                      data[i]);
    }
    env.declareReadOnly(_data,
                        static_cast<Addr>(_records) * kWordBytes);

    // Expected per-TB minimum "distance" to the query value 128.
    _expect.assign(_tbs, 0xffffffffu);
    unsigned per = (_records + _tbs - 1) / _tbs;
    for (unsigned tb = 0; tb < _tbs; ++tb) {
        unsigned lo = tb * per;
        unsigned hi = std::min(_records, lo + per);
        for (unsigned i = lo; i < hi; ++i) {
            std::uint32_t d = data[i] > 128 ? data[i] - 128
                                            : 128 - data[i];
            _expect[tb] = std::min(_expect[tb], (d << 16) | (i & 0xffff));
        }
    }
}

KernelInfo
Nn::kernelInfo(unsigned) const
{
    return {_tbs};
}

SimTask
Nn::tbMain(TbContext &ctx)
{
    unsigned per = (_records + _tbs - 1) / _tbs;
    unsigned lo = ctx.tbGlobal() * per;
    unsigned hi = std::min(_records, lo + per);

    std::uint32_t best = 0xffffffffu;
    for (unsigned i = lo; i < hi; ++i) {
        std::uint32_t v = co_await ctx.load(
            _data + static_cast<Addr>(i) * kWordBytes);
        std::uint32_t d = v > 128 ? v - 128 : 128 - v;
        best = std::min(best, (d << 16) | (i & 0xffff));
    }
    co_await ctx.store(_results + static_cast<Addr>(ctx.tbGlobal()) *
                                      kWordBytes,
                       best);
}

std::vector<std::string>
Nn::check(WorkloadEnv &env)
{
    std::vector<std::string> failures;
    for (unsigned tb = 0; tb < _tbs; ++tb) {
        std::uint32_t got = env.debugRead(
            _results + static_cast<Addr>(tb) * kWordBytes);
        if (got != _expect[tb]) {
            std::ostringstream os;
            os << "NN: TB " << tb << " result " << got
               << ", expected " << _expect[tb];
            failures.push_back(os.str());
        }
    }
    return failures;
}

// ---------------------------------------------------------------------
// LavaMD
// ---------------------------------------------------------------------

LavaMd::LavaMd(unsigned boxes_per_dim, unsigned particles)
    : _dim(boxes_per_dim), _particles(particles),
      _numBoxes(boxes_per_dim * boxes_per_dim * boxes_per_dim)
{
}

unsigned
LavaMd::boxId(unsigned x, unsigned y, unsigned z) const
{
    return (z * _dim + y) * _dim + x;
}

void
LavaMd::init(WorkloadEnv &env)
{
    // Per particle: one position word (read-only) and one force word
    // rewritten once per neighbor box - the access pattern that
    // overflows the store buffer and that DeNovo's ownership turns
    // into L1 hits (Section 6.2.1 of the paper).
    unsigned total = _numBoxes * _particles;
    // Four words per particle so each CU's force footprint exceeds
    // the 256-entry store buffer.
    unsigned words = total * 4;
    _pos = env.alloc(static_cast<Addr>(words) * kWordBytes);
    _force = env.alloc(static_cast<Addr>(words) * kWordBytes);

    std::vector<std::uint32_t> pos(words);
    for (unsigned i = 0; i < words; ++i) {
        pos[i] = seedValue(i, 53);
        env.writeInit(_pos + static_cast<Addr>(i) * kWordBytes,
                      pos[i]);
    }
    env.declareReadOnly(_pos, static_cast<Addr>(words) * kWordBytes);

    // Host-side expected forces.
    _expect.assign(words, 0);
    for (unsigned z = 0; z < _dim; ++z) {
        for (unsigned y = 0; y < _dim; ++y) {
            for (unsigned x = 0; x < _dim; ++x) {
                unsigned box = boxId(x, y, z);
                for (int dz = -1; dz <= 1; ++dz) {
                    for (int dy = -1; dy <= 1; ++dy) {
                        for (int dx = -1; dx <= 1; ++dx) {
                            unsigned nb = boxId(
                                (x + _dim + dx) % _dim,
                                (y + _dim + dy) % _dim,
                                (z + _dim + dz) % _dim);
                            for (unsigned p = 0;
                                 p < _particles * 4; ++p) {
                                unsigned self =
                                    box * _particles * 4 + p;
                                unsigned other =
                                    nb * _particles * 4 + p;
                                _expect[self] +=
                                    pos[self] * pos[other] + 1;
                            }
                        }
                    }
                }
            }
        }
    }
}

KernelInfo
LavaMd::kernelInfo(unsigned) const
{
    return {_numBoxes};
}

SimTask
LavaMd::tbMain(TbContext &ctx)
{
    unsigned box = ctx.tbGlobal();
    unsigned x = box % _dim;
    unsigned y = (box / _dim) % _dim;
    unsigned z = box / (_dim * _dim);
    unsigned words = _particles * 4;
    Addr self_pos = _pos + static_cast<Addr>(box) * words * kWordBytes;
    Addr self_force =
        _force + static_cast<Addr>(box) * words * kWordBytes;

    for (int dz = -1; dz <= 1; ++dz) {
        for (int dy = -1; dy <= 1; ++dy) {
            for (int dx = -1; dx <= 1; ++dx) {
                unsigned nb = boxId((x + _dim + dx) % _dim,
                                    (y + _dim + dy) % _dim,
                                    (z + _dim + dz) % _dim);
                Addr nb_pos = _pos + static_cast<Addr>(nb) * words *
                                         kWordBytes;
                for (unsigned p = 0; p < words; ++p) {
                    std::uint32_t mine = co_await ctx.load(
                        self_pos + static_cast<Addr>(p) *
                                       kWordBytes);
                    std::uint32_t theirs = co_await ctx.load(
                        nb_pos + static_cast<Addr>(p) * kWordBytes);
                    Addr faddr = self_force +
                                 static_cast<Addr>(p) * kWordBytes;
                    std::uint32_t f = co_await ctx.load(faddr);
                    co_await ctx.store(faddr,
                                       f + mine * theirs + 1);
                }
            }
        }
    }
}

std::vector<std::string>
LavaMd::check(WorkloadEnv &env)
{
    std::vector<std::string> failures;
    unsigned words = _numBoxes * _particles * 4;
    for (unsigned i = 0; i < words; ++i) {
        std::uint32_t got = env.debugRead(
            _force + static_cast<Addr>(i) * kWordBytes);
        if (got != _expect[i]) {
            std::ostringstream os;
            os << "LAVA: force word " << i << " = " << got
               << ", expected " << _expect[i];
            failures.push_back(os.str());
            if (failures.size() > 8)
                break;
        }
    }
    return failures;
}

} // namespace nosync
