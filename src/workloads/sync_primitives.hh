/**
 * @file
 * GPU synchronization primitives (after Stuart & Owens [6]).
 *
 * Mutexes (fetch-add ticket, sleep, spin, spin+backoff), a spinning
 * reader-writer semaphore, and sense-reversing barriers, written as
 * coroutines over TbContext. Every primitive takes a Scope: under HRF
 * configurations the scope annotation is honored; under DRF it is
 * ignored and everything synchronizes globally.
 */

#ifndef WORKLOADS_SYNC_PRIMITIVES_HH
#define WORKLOADS_SYNC_PRIMITIVES_HH

#include "gpu/sim_task.hh"
#include "gpu/tb_context.hh"

namespace nosync
{

/** Mutex algorithm flavours from the microbenchmark suite. */
enum class MutexKind
{
    FetchAdd,    ///< FAM: ticket lock built on fetch-and-add
    Sleep,       ///< SLM: test-and-set with a fixed sleep on failure
    Spin,        ///< SPM: bare test-and-set spin
    SpinBackoff, ///< SPMBO: test-and-set with exponential backoff
};

/** Memory footprint of a mutex (two words for the ticket lock). */
struct MutexAddrs
{
    Addr lock;    ///< lock word / ticket counter
    Addr serving; ///< now-serving counter (FetchAdd only)
};

/** State a holder carries between lock and unlock. */
struct MutexTicket
{
    std::uint32_t ticket = 0;
};

/** Fixed sleep duration for the sleep mutex (cycles). */
constexpr Cycles kSleepMutexDelay = 200;

/** Backoff parameters for the *BO variants. */
constexpr Cycles kBackoffBase = 32;
constexpr Cycles kBackoffMax = 2048;

/** Acquire @p mutex; fills @p ticket for the matching unlock. */
inline SimTask
mutexLock(TbContext &ctx, const MutexAddrs &mutex, MutexKind kind,
          Scope scope, MutexTicket &ticket)
{
    switch (kind) {
      case MutexKind::FetchAdd: {
        // Ticket lock: one fetch-add to take a ticket (release-free
        // read-modify-write used purely to order, so acquire
        // semantics), then spin on the now-serving word.
        ticket.ticket = co_await ctx.atomic(
            ctx.fetchAdd(mutex.lock, 1, scope,
                         SyncSemantics::AcquireRelease));
        while (true) {
            std::uint32_t serving = co_await ctx.atomic(
                ctx.atomicLoad(mutex.serving, scope));
            if (serving == ticket.ticket)
                break;
        }
        co_return;
      }
      case MutexKind::Sleep: {
        while (true) {
            std::uint32_t old = co_await ctx.atomic(
                ctx.exchange(mutex.lock, 1, scope));
            if (old == 0)
                co_return;
            co_await ctx.wait(kSleepMutexDelay);
        }
      }
      case MutexKind::Spin: {
        while (true) {
            std::uint32_t old = co_await ctx.atomic(
                ctx.exchange(mutex.lock, 1, scope));
            if (old == 0)
                co_return;
        }
      }
      case MutexKind::SpinBackoff: {
        Cycles backoff = kBackoffBase;
        while (true) {
            std::uint32_t old = co_await ctx.atomic(
                ctx.exchange(mutex.lock, 1, scope));
            if (old == 0)
                co_return;
            // Exponential backoff with +-25% jitter.
            Cycles jitter = backoff / 4;
            co_await ctx.wait(backoff - jitter +
                              ctx.rng().below(2 * jitter + 1));
            backoff = std::min<Cycles>(backoff * 2, kBackoffMax);
        }
      }
    }
}

/** Release @p mutex taken with @p ticket. */
inline SimTask
mutexUnlock(TbContext &ctx, const MutexAddrs &mutex, MutexKind kind,
            Scope scope, const MutexTicket &ticket)
{
    if (kind == MutexKind::FetchAdd) {
        co_await ctx.atomic(ctx.atomicStore(
            mutex.serving, ticket.ticket + 1, scope));
    } else {
        co_await ctx.atomic(ctx.atomicStore(mutex.lock, 0, scope));
    }
}

/** Spinning reader-writer semaphore (reader slots = capacity). */
struct SemaphoreAddrs
{
    Addr count; ///< available units; capacity when free
};

/** Acquire one reader unit. */
inline SimTask
semaphoreReaderWait(TbContext &ctx, const SemaphoreAddrs &sem,
                    Scope scope, bool backoff)
{
    Cycles delay = kBackoffBase;
    while (true) {
        std::uint32_t avail = co_await ctx.atomic(
            ctx.atomicLoad(sem.count, scope));
        if (avail > 0) {
            std::uint32_t got = co_await ctx.atomic(ctx.compareSwap(
                sem.count, avail, avail - 1, scope));
            if (got == avail)
                co_return;
        }
        if (backoff) {
            co_await ctx.wait(delay);
            delay = std::min<Cycles>(delay * 2, kBackoffMax);
        }
    }
}

/** Release one reader unit. */
inline SimTask
semaphorePost(TbContext &ctx, const SemaphoreAddrs &sem, Scope scope)
{
    co_await ctx.atomic(ctx.fetchAdd(sem.count, 1, scope,
                                     SyncSemantics::AcquireRelease));
}

/** Writer acquires the entire semaphore (all @p capacity units). */
inline SimTask
semaphoreWriterWait(TbContext &ctx, const SemaphoreAddrs &sem,
                    std::uint32_t capacity, Scope scope, bool backoff)
{
    Cycles delay = kBackoffBase;
    while (true) {
        std::uint32_t got = co_await ctx.atomic(
            ctx.compareSwap(sem.count, capacity, 0, scope));
        if (got == capacity)
            co_return;
        if (backoff) {
            co_await ctx.wait(delay);
            delay = std::min<Cycles>(delay * 2, kBackoffMax);
        }
    }
}

/** Writer releases the entire semaphore. */
inline SimTask
semaphoreWriterPost(TbContext &ctx, const SemaphoreAddrs &sem,
                    std::uint32_t capacity, Scope scope)
{
    co_await ctx.atomic(ctx.atomicStore(sem.count, capacity, scope));
}

/** Sense-reversing centralized barrier. */
struct BarrierAddrs
{
    Addr count; ///< arrivals this epoch
    Addr sense; ///< epoch parity
};

/**
 * Join a sense-reversing barrier of @p participants members.
 * @p epoch is the caller's local sense (odd epochs release on odd
 * sense values); callers increment their epoch after each join.
 */
inline SimTask
barrierJoin(TbContext &ctx, const BarrierAddrs &barrier,
            std::uint32_t participants, std::uint32_t epoch,
            Scope scope)
{
    std::uint32_t arrived = co_await ctx.atomic(ctx.fetchAdd(
        barrier.count, 1, scope, SyncSemantics::AcquireRelease));
    if (arrived + 1 == participants) {
        // Last arrival: reset the counter, flip the sense.
        co_await ctx.atomic(ctx.atomicStore(barrier.count, 0, scope));
        co_await ctx.atomic(
            ctx.atomicStore(barrier.sense, epoch + 1, scope));
        co_return;
    }
    while (true) {
        std::uint32_t sense = co_await ctx.atomic(
            ctx.atomicLoad(barrier.sense, scope));
        if (sense > epoch)
            co_return;
    }
}

} // namespace nosync

#endif // WORKLOADS_SYNC_PRIMITIVES_HH
