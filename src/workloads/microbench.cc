#include "workloads/microbench.hh"

#include <sstream>

#include "sim/logging.hh"

namespace nosync
{

namespace
{

/** Addresses of one warp-coalesced access round. */
std::vector<Addr>
roundAddrs(Addr base, unsigned round, unsigned threads)
{
    std::vector<Addr> addrs;
    addrs.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) {
        addrs.push_back(base +
                        (static_cast<Addr>(round) * threads + t) *
                            kWordBytes);
    }
    return addrs;
}

} // namespace

// ---------------------------------------------------------------------
// MutexBench
// ---------------------------------------------------------------------

MutexBench::MutexBench(MutexKind kind, Scope scope,
                       MicrobenchParams params)
    : _kind(kind), _scope(scope), _params(params)
{
}

std::string
MutexBench::name() const
{
    std::string base;
    switch (_kind) {
      case MutexKind::FetchAdd:
        base = "FAM";
        break;
      case MutexKind::Sleep:
        base = "SLM";
        break;
      case MutexKind::Spin:
        base = "SPM";
        break;
      case MutexKind::SpinBackoff:
        base = "SPMBO";
        break;
    }
    switch (_scope) {
      case Scope::Local:
        return base + "_L";
      case Scope::Device:
        return base + "_D";
      case Scope::Global:
        break;
    }
    return base + "_G";
}

unsigned
MutexBench::numGroups() const
{
    switch (_scope) {
      case Scope::Local:
        return _numCus;
      case Scope::Device:
        return _numDevices;
      case Scope::Global:
        break;
    }
    return 1;
}

void
MutexBench::init(WorkloadEnv &env)
{
    _numCus = env.numCus();
    _numDevices = env.numDevices();
    _cusPerDevice = env.cusPerDevice();
    unsigned groups = numGroups();
    _mutexes.clear();
    _data.clear();
    _roInput.clear();
    for (unsigned g = 0; g < groups; ++g) {
        MutexAddrs mutex;
        mutex.lock = env.alloc(kLineBytes);
        mutex.serving = mutex.lock + kWordBytes;
        _mutexes.push_back(mutex);
        Addr bytes = static_cast<Addr>(_params.footprintWords()) *
                     kWordBytes;
        _data.push_back(env.alloc(bytes));
        // Read-only input consumed inside the critical section: the
        // increment amount per word. DD re-fetches these after every
        // acquire; DD+RO keeps them cached.
        Addr ro = env.alloc(bytes);
        _roInput.push_back(ro);
        for (unsigned w = 0; w < _params.footprintWords(); ++w)
            env.writeInit(ro + Addr(w) * kWordBytes, 1);
        env.declareReadOnly(ro, bytes);
    }
}

KernelInfo
MutexBench::kernelInfo(unsigned) const
{
    return {_numCus * _params.tbsPerCu};
}

SimTask
MutexBench::tbMain(TbContext &ctx)
{
    unsigned group = 0;
    if (_scope == Scope::Local)
        group = ctx.cu();
    else if (_scope == Scope::Device)
        group = ctx.cu() / _cusPerDevice;
    Scope scope = _scope;
    MutexAddrs mutex = _mutexes[group];
    Addr data = _data[group];

    Addr ro = _roInput[group];

    for (unsigned iter = 0; iter < _params.iterations; ++iter) {
        MutexTicket ticket;
        co_await mutexLock(ctx, mutex, _kind, scope, ticket);
        // Critical section (10 Ld & 10 St per thread): every thread
        // loads its read-only increment, then read-modify-writes its
        // shared data word; one coalesced warp access per round.
        for (unsigned round = 0; round < _params.workWords; ++round) {
            auto ro_vals = co_await ctx.loadMany(
                roundAddrs(ro, round, _params.threads));
            auto addrs = roundAddrs(data, round, _params.threads);
            auto values = co_await ctx.loadMany(addrs);
            std::vector<std::pair<Addr, std::uint32_t>> stores;
            stores.reserve(addrs.size());
            for (std::size_t i = 0; i < addrs.size(); ++i) {
                stores.emplace_back(addrs[i],
                                    values[i] + ro_vals[i]);
            }
            co_await ctx.storeMany(std::move(stores));
        }
        co_await mutexUnlock(ctx, mutex, _kind, scope, ticket);
    }
}

std::vector<std::string>
MutexBench::check(WorkloadEnv &env)
{
    std::vector<std::string> failures;
    unsigned groups = numGroups();
    unsigned tbs_per_group =
        (_numCus / groups) * _params.tbsPerCu;
    std::uint32_t expected = tbs_per_group * _params.iterations;
    for (unsigned g = 0; g < groups; ++g) {
        for (unsigned w = 0; w < _params.footprintWords(); ++w) {
            std::uint32_t got =
                env.debugRead(_data[g] + Addr(w) * kWordBytes);
            if (got != expected) {
                std::ostringstream os;
                os << name() << ": group " << g << " word " << w
                   << " = " << got << ", expected " << expected
                   << " (mutual exclusion or visibility violated)";
                failures.push_back(os.str());
                if (failures.size() > 8)
                    return failures;
            }
        }
    }
    return failures;
}

// ---------------------------------------------------------------------
// SemaphoreBench
// ---------------------------------------------------------------------

SemaphoreBench::SemaphoreBench(bool backoff, MicrobenchParams params)
    : _backoff(backoff), _params(params)
{
    panic_if(_params.tbsPerCu != kReaders + 1,
             "semaphore benchmark needs 1 writer + 2 readers per CU");
}

std::string
SemaphoreBench::name() const
{
    return _backoff ? "SSBO_L" : "SS_L";
}

void
SemaphoreBench::init(WorkloadEnv &env)
{
    _numCus = env.numCus();
    _sems.clear();
    _data.clear();
    unsigned half_words = _params.footprintWords();
    for (unsigned cu = 0; cu < _numCus; ++cu) {
        SemaphoreAddrs sem;
        sem.count = env.alloc(kLineBytes);
        env.writeInit(sem.count, kReaders);
        _sems.push_back(sem);

        Addr data = env.alloc(static_cast<Addr>(2) * half_words *
                              kWordBytes);
        _data.push_back(data);
        // First word of each half is a marker the writer never
        // touches.
        env.writeInit(data, 100);
        env.writeInit(data + Addr(half_words) * kWordBytes, 101);
    }
    _violations = env.alloc(
        static_cast<Addr>(_numCus * _params.tbsPerCu) * kWordBytes);
}

KernelInfo
SemaphoreBench::kernelInfo(unsigned) const
{
    return {_numCus * _params.tbsPerCu};
}

SimTask
SemaphoreBench::tbMain(TbContext &ctx)
{
    Scope scope = Scope::Local;
    SemaphoreAddrs sem = _sems[ctx.cu()];
    Addr data = _data[ctx.cu()];
    unsigned half_words = _params.footprintWords();

    if (ctx.tbOnCu() == 0) {
        // Writer: take the whole semaphore, write iteration tag to
        // every word of both halves except the markers (20 St/thr).
        for (unsigned iter = 0; iter < _params.iterations; ++iter) {
            co_await semaphoreWriterWait(ctx, sem, kReaders, scope,
                                         _backoff);
            for (unsigned half = 0; half < 2; ++half) {
                Addr base = data + Addr(half) * half_words *
                                       kWordBytes;
                for (unsigned round = 0; round < _params.workWords;
                     ++round) {
                    std::vector<std::pair<Addr, std::uint32_t>> st;
                    st.reserve(_params.threads);
                    for (unsigned t = 0; t < _params.threads; ++t) {
                        unsigned w = round * _params.threads + t;
                        if (w == 0)
                            continue; // marker word
                        st.emplace_back(base + Addr(w) * kWordBytes,
                                        iter + 1);
                    }
                    co_await ctx.storeMany(std::move(st));
                }
            }
            co_await semaphoreWriterPost(ctx, sem, kReaders, scope);
        }
        co_return;
    }

    // Reader: take one unit, read this reader's half (10 Ld/thr) and
    // verify the writer was excluded (all words carry one tag).
    unsigned half = ctx.tbOnCu() - 1;
    Addr base = data + Addr(half) * half_words * kWordBytes;
    std::uint32_t violations = 0;
    for (unsigned iter = 0; iter < _params.iterations; ++iter) {
        co_await semaphoreReaderWait(ctx, sem, scope, _backoff);
        bool first = true;
        std::uint32_t tag = 0;
        for (unsigned round = 0; round < _params.workWords; ++round) {
            auto addrs = roundAddrs(base, round, _params.threads);
            auto values = co_await ctx.loadMany(addrs);
            for (std::size_t i = 0; i < values.size(); ++i) {
                unsigned w = round * _params.threads +
                             static_cast<unsigned>(i);
                if (w == 0)
                    continue; // marker
                if (first) {
                    tag = values[i];
                    first = false;
                } else if (values[i] != tag) {
                    ++violations;
                }
            }
        }
        co_await semaphorePost(ctx, sem, scope);
    }
    co_await ctx.store(_violations +
                           Addr(ctx.tbGlobal()) * kWordBytes,
                       violations);
}

std::vector<std::string>
SemaphoreBench::check(WorkloadEnv &env)
{
    std::vector<std::string> failures;
    unsigned half_words = _params.footprintWords();
    for (unsigned cu = 0; cu < _numCus; ++cu) {
        for (unsigned half = 0; half < 2; ++half) {
            Addr base = _data[cu] + Addr(half) * half_words *
                                        kWordBytes;
            std::uint32_t marker = env.debugRead(base);
            if (marker != 100 + half) {
                std::ostringstream os;
                os << name() << ": CU " << cu << " half " << half
                   << " marker clobbered (" << marker << ")";
                failures.push_back(os.str());
            }
            for (unsigned w = 1; w < half_words; ++w) {
                std::uint32_t got =
                    env.debugRead(base + Addr(w) * kWordBytes);
                if (got != _params.iterations) {
                    std::ostringstream os;
                    os << name() << ": CU " << cu << " half " << half
                       << " word " << w << " = " << got
                       << ", expected " << _params.iterations;
                    failures.push_back(os.str());
                    if (failures.size() > 8)
                        return failures;
                }
            }
        }
    }
    // Reader-observed atomicity violations.
    for (unsigned tb = 0; tb < _numCus * _params.tbsPerCu; ++tb) {
        unsigned cu = tb % _numCus;
        unsigned on_cu = tb / _numCus;
        if (on_cu == 0)
            continue; // writers do not report
        std::uint32_t got = env.debugRead(
            _violations + Addr(tb) * kWordBytes);
        if (got != 0) {
            std::ostringstream os;
            os << name() << ": reader TB " << tb << " (CU " << cu
               << ") observed " << got
               << " mixed-tag words (reader-writer exclusion "
                  "violated)";
            failures.push_back(os.str());
        }
    }
    return failures;
}

// ---------------------------------------------------------------------
// TreeBarrierBench
// ---------------------------------------------------------------------

TreeBarrierBench::TreeBarrierBench(bool local_exchange,
                                   MicrobenchParams params)
    : _localExchange(local_exchange), _params(params)
{
}

std::string
TreeBarrierBench::name() const
{
    return _localExchange ? "TBEX_LG" : "TB_LG";
}

void
TreeBarrierBench::init(WorkloadEnv &env)
{
    _numCus = env.numCus();
    _numTbs = _numCus * _params.tbsPerCu;
    _localBarriers.clear();
    for (unsigned cu = 0; cu < _numCus; ++cu) {
        BarrierAddrs barrier;
        barrier.count = env.alloc(kLineBytes);
        barrier.sense = barrier.count + kWordBytes;
        _localBarriers.push_back(barrier);
    }
    _globalBarrier.count = env.alloc(kLineBytes);
    _globalBarrier.sense = _globalBarrier.count + kWordBytes;

    _chunks = env.alloc(static_cast<Addr>(_numTbs) *
                        _params.footprintWords() * kWordBytes);
    _results = env.alloc(static_cast<Addr>(_numTbs) * kWordBytes);
}

Addr
TreeBarrierBench::chunkAddr(unsigned tb_global, unsigned word) const
{
    return _chunks + (static_cast<Addr>(tb_global) *
                          _params.footprintWords() +
                      word) * kWordBytes;
}

KernelInfo
TreeBarrierBench::kernelInfo(unsigned) const
{
    return {_numTbs};
}

SimTask
TreeBarrierBench::tbMain(TbContext &ctx)
{
    BarrierAddrs local = _localBarriers[ctx.cu()];
    std::uint32_t local_epoch = 0;
    std::uint32_t global_epoch = 0;
    std::uint32_t checksum = 0;
    unsigned local_participants = _params.tbsPerCu;
    Addr own_chunk = chunkAddr(ctx.tbGlobal(), 0);

    for (unsigned iter = 0; iter < _params.iterations; ++iter) {
        // Compute phase: increment every word of this TB's chunk.
        for (unsigned round = 0; round < _params.workWords; ++round) {
            auto addrs = roundAddrs(own_chunk, round,
                                    _params.threads);
            auto values = co_await ctx.loadMany(addrs);
            std::vector<std::pair<Addr, std::uint32_t>> stores;
            stores.reserve(addrs.size());
            for (std::size_t i = 0; i < addrs.size(); ++i)
                stores.emplace_back(addrs[i], values[i] + 1);
            co_await ctx.storeMany(std::move(stores));
        }

        co_await barrierJoin(ctx, local, local_participants,
                             local_epoch++, Scope::Local);

        if (_localExchange) {
            // Local exchange: read a same-CU sibling's chunk before
            // the global phase (visible through the local barrier).
            unsigned sibling_on_cu =
                (ctx.tbOnCu() + 1) % _params.tbsPerCu;
            unsigned sibling =
                sibling_on_cu * ctx.numCus() + ctx.cu();
            for (unsigned round = 0; round < _params.workWords;
                 ++round) {
                auto addrs = roundAddrs(chunkAddr(sibling, 0), round,
                                        _params.threads);
                for (std::uint32_t v :
                     co_await ctx.loadMany(addrs)) {
                    checksum += v;
                }
            }
            co_await barrierJoin(ctx, local, local_participants,
                                 local_epoch++, Scope::Local);
        }

        // One representative per CU joins the global barrier.
        if (ctx.tbOnCu() == 0) {
            co_await barrierJoin(ctx, _globalBarrier, ctx.numCus(),
                                 global_epoch++, Scope::Global);
        }
        co_await barrierJoin(ctx, local, local_participants,
                             local_epoch++, Scope::Local);

        // Cross-CU exchange: read a chunk written on another CU.
        // HRF-Indirect transitivity (local -> global -> local) makes
        // iteration iter's writes visible, so each word reads
        // exactly iter+1.
        unsigned partner_cu = (ctx.cu() + 1 + (iter % (_numCus - 1))) %
                              _numCus;
        unsigned partner = ctx.tbOnCu() * ctx.numCus() + partner_cu;
        for (unsigned round = 0; round < _params.workWords; ++round) {
            auto addrs = roundAddrs(chunkAddr(partner, 0), round,
                                    _params.threads);
            for (std::uint32_t v : co_await ctx.loadMany(addrs))
                checksum += v;
        }

        // Keep everyone in step before the next compute phase
        // overwrites the chunks being read.
        co_await barrierJoin(ctx, local, local_participants,
                             local_epoch++, Scope::Local);
        if (ctx.tbOnCu() == 0) {
            co_await barrierJoin(ctx, _globalBarrier, ctx.numCus(),
                                 global_epoch++, Scope::Global);
        }
        co_await barrierJoin(ctx, local, local_participants,
                             local_epoch++, Scope::Local);
    }

    co_await ctx.store(_results + Addr(ctx.tbGlobal()) * kWordBytes,
                       checksum);
}

std::vector<std::string>
TreeBarrierBench::check(WorkloadEnv &env)
{
    std::vector<std::string> failures;

    for (unsigned tb = 0; tb < _numTbs; ++tb) {
        for (unsigned w = 0; w < _params.footprintWords(); ++w) {
            std::uint32_t got = env.debugRead(chunkAddr(tb, w));
            if (got != _params.iterations) {
                std::ostringstream os;
                os << name() << ": chunk " << tb << " word " << w
                   << " = " << got << ", expected "
                   << _params.iterations;
                failures.push_back(os.str());
                if (failures.size() > 8)
                    return failures;
            }
        }
    }

    std::uint32_t per_iter_reads = _localExchange ? 2 : 1;
    std::uint64_t expected = 0;
    for (unsigned iter = 0; iter < _params.iterations; ++iter) {
        expected += static_cast<std::uint64_t>(iter + 1) *
                    _params.footprintWords() * per_iter_reads;
    }
    for (unsigned tb = 0; tb < _numTbs; ++tb) {
        std::uint32_t got =
            env.debugRead(_results + Addr(tb) * kWordBytes);
        if (got != static_cast<std::uint32_t>(expected)) {
            std::ostringstream os;
            os << name() << ": TB " << tb << " exchange checksum "
               << got << ", expected " << expected
               << " (stale data crossed a barrier)";
            failures.push_back(os.str());
        }
    }
    return failures;
}

} // namespace nosync
