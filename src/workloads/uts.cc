#include "workloads/uts.hh"

#include <sstream>

#include "sim/logging.hh"
#include "sim/rng.hh"

namespace nosync
{

Uts::Uts(UtsParams params) : _params(params) {}

void
Uts::init(WorkloadEnv &env)
{
    _numCus = env.numCus();
    unsigned n = _params.numNodes;

    // Generate the unbalanced tree shape: nodes in id order, children
    // consecutive. Roughly half the nodes are leaves; interior nodes
    // have 1-7 children, so subtree sizes vary wildly (the imbalance
    // the benchmark is named for).
    std::uint32_t next_id = 0;
    for (std::uint64_t attempt = 0; next_id != n; ++attempt) {
        // The branching process is supercritical but can still die
        // out early; retry with the next seed until the whole id
        // space is covered (deterministic given shapeSeed).
        panic_if(attempt > 64, "UTS tree generation failed to cover ",
                 n, " nodes");
        Rng rng(_params.shapeSeed + attempt);
        _childStart.assign(n, 0);
        _childCount.assign(n, 0);
        next_id = 1;
        for (std::uint32_t i = 0; i < n && next_id <= n; ++i) {
            std::uint32_t c = 0;
            if (next_id < n) {
                if (i == 0) {
                    c = std::min<std::uint32_t>(16, n - next_id);
                } else if (!rng.chance(0.55)) {
                    c = static_cast<std::uint32_t>(1 + rng.below(7));
                    c = std::min<std::uint32_t>(c, n - next_id);
                }
            }
            _childStart[i] = next_id;
            _childCount[i] = c;
            next_id += c;
        }
    }

    // Mirror into simulated memory; topology arrays are read-only
    // during the kernel (consumed by DD+RO).
    _childStartArr = env.alloc(static_cast<Addr>(n) * kWordBytes);
    _childCountArr = env.alloc(static_cast<Addr>(n) * kWordBytes);
    _payload = env.alloc(static_cast<Addr>(n) * kWordBytes);
    for (std::uint32_t i = 0; i < n; ++i) {
        env.writeInit(_childStartArr + Addr(i) * kWordBytes,
                      _childStart[i]);
        env.writeInit(_childCountArr + Addr(i) * kWordBytes,
                      _childCount[i]);
    }
    env.declareReadOnly(_childStartArr, static_cast<Addr>(n) *
                        kWordBytes);
    env.declareReadOnly(_childCountArr, static_cast<Addr>(n) *
                        kWordBytes);

    _processedCtr = env.alloc(kLineBytes);

    // Global queue pre-seeded with the root.
    _globalTop = env.alloc(kLineBytes);
    _globalLock.lock = _globalTop + kWordBytes;
    _globalLock.serving = _globalTop + 2 * kWordBytes;
    _globalSlots = env.alloc(static_cast<Addr>(n) * kWordBytes);
    env.writeInit(_globalSlots, 0);
    env.writeInit(_globalTop, 1);

    _localTop.clear();
    _localSlots.clear();
    _localLocks.clear();
    for (unsigned cu = 0; cu < _numCus; ++cu) {
        Addr ctrl = env.alloc(kLineBytes);
        _localTop.push_back(ctrl);
        MutexAddrs lock;
        lock.lock = ctrl + kWordBytes;
        lock.serving = ctrl + 2 * kWordBytes;
        _localLocks.push_back(lock);
        _localSlots.push_back(env.alloc(
            static_cast<Addr>(_params.localStackCap) * kWordBytes));
    }
}

KernelInfo
Uts::kernelInfo(unsigned) const
{
    return {_numCus * _params.tbsPerCu};
}

SimTask
Uts::popStack(TbContext &ctx, Addr top, Addr slots, Scope scope,
              MutexAddrs lock, std::uint32_t &out)
{
    MutexTicket ticket;
    co_await mutexLock(ctx, lock, MutexKind::Spin, scope, ticket);
    std::uint32_t depth = co_await ctx.load(top);
    if (depth == 0) {
        out = 0xffffffffu;
    } else {
        out = co_await ctx.load(slots +
                                Addr(depth - 1) * kWordBytes);
        co_await ctx.store(top, depth - 1);
    }
    co_await mutexUnlock(ctx, lock, MutexKind::Spin, scope, ticket);
}

SimTask
Uts::tbMain(TbContext &ctx)
{
    unsigned cu = ctx.cu();
    Scope local = Scope::Local;
    Scope global = Scope::Global;
    unsigned n = _params.numNodes;
    Cycles idle_backoff = kBackoffBase;

    while (true) {
        std::uint32_t node = 0xffffffffu;

        // 1. Try the CU-local stack.
        co_await popStack(ctx, _localTop[cu], _localSlots[cu], local,
                          _localLocks[cu], node);

        // 2. Fall back to the global queue.
        if (node == 0xffffffffu) {
            co_await popStack(ctx, _globalTop, _globalSlots, global,
                              _globalLock, node);
        }

        // 3. Nothing anywhere: either done or waiting for producers.
        if (node == 0xffffffffu) {
            std::uint32_t processed = co_await ctx.atomic(
                ctx.atomicLoad(_processedCtr, global));
            if (processed >= n)
                co_return;
            co_await ctx.wait(idle_backoff);
            idle_backoff = std::min<Cycles>(idle_backoff * 2,
                                            kBackoffMax);
            continue;
        }
        idle_backoff = kBackoffBase;

        // Process the node: read its topology (read-only data),
        // write its payload.
        std::uint32_t cstart = co_await ctx.load(
            _childStartArr + Addr(node) * kWordBytes);
        std::uint32_t ccount = co_await ctx.load(
            _childCountArr + Addr(node) * kWordBytes);
        co_await ctx.store(_payload + Addr(node) * kWordBytes,
                           nodeValue(node));

        // Push children onto the local stack, spilling half to the
        // global queue when the local stack fills up.
        if (ccount > 0) {
            MutexTicket ticket;
            std::vector<std::uint32_t> spill;
            co_await mutexLock(ctx, _localLocks[cu],
                               MutexKind::Spin, local, ticket);
            std::uint32_t depth = co_await ctx.load(_localTop[cu]);
            for (std::uint32_t c = 0; c < ccount; ++c) {
                std::uint32_t child = cstart + c;
                if (depth >= _params.localStackCap) {
                    spill.push_back(child);
                    continue;
                }
                co_await ctx.store(_localSlots[cu] +
                                       Addr(depth) * kWordBytes,
                                   child);
                ++depth;
            }
            if (spill.empty() &&
                depth > _params.localStackCap / 2 &&
                depth >= 2 * ccount) {
                // Proactive balancing: hand a few nodes to the
                // global queue so idle CUs find work.
                for (unsigned k = 0; k < 2 && depth > 0; ++k) {
                    --depth;
                    spill.push_back(co_await ctx.load(
                        _localSlots[cu] + Addr(depth) * kWordBytes));
                }
            }
            co_await ctx.store(_localTop[cu], depth);
            co_await mutexUnlock(ctx, _localLocks[cu],
                                 MutexKind::Spin, local, ticket);

            if (!spill.empty()) {
                MutexTicket gticket;
                co_await mutexLock(ctx, _globalLock, MutexKind::Spin,
                                   global, gticket);
                std::uint32_t gtop =
                    co_await ctx.load(_globalTop);
                for (std::uint32_t child : spill) {
                    co_await ctx.store(_globalSlots +
                                           Addr(gtop) * kWordBytes,
                                       child);
                    ++gtop;
                }
                co_await ctx.store(_globalTop, gtop);
                co_await mutexUnlock(ctx, _globalLock,
                                     MutexKind::Spin, global,
                                     gticket);
            }
        }

        co_await ctx.atomic(ctx.fetchAdd(_processedCtr, 1, global));
    }
}

std::vector<std::string>
Uts::check(WorkloadEnv &env)
{
    std::vector<std::string> failures;
    std::uint32_t processed = env.debugRead(_processedCtr);
    if (processed != _params.numNodes) {
        std::ostringstream os;
        os << "UTS: processed " << processed << " of "
           << _params.numNodes << " nodes";
        failures.push_back(os.str());
    }
    for (std::uint32_t i = 0; i < _params.numNodes; ++i) {
        std::uint32_t got =
            env.debugRead(_payload + Addr(i) * kWordBytes);
        if (got != nodeValue(i)) {
            std::ostringstream os;
            os << "UTS: node " << i << " payload " << got
               << " != " << nodeValue(i)
               << " (lost or double-processed work)";
            failures.push_back(os.str());
            if (failures.size() > 10)
                break;
        }
    }
    return failures;
}

} // namespace nosync
