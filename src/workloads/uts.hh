/**
 * @file
 * Unbalanced Tree Search (UTS) benchmark [8].
 *
 * Thread blocks traverse an unbalanced tree using per-CU work stacks
 * (locally scoped locks under HRF) and a global task queue for load
 * balancing: CUs push half of their local work to the global queue on
 * overflow and pull from it when their local stack runs dry. This is
 * the paper's dynamic-sharing workload: scopes must be conservatively
 * global wherever work can migrate, while DeNovo's ownership handles
 * migration naturally.
 */

#ifndef WORKLOADS_UTS_HH
#define WORKLOADS_UTS_HH

#include <vector>

#include "gpu/workload.hh"
#include "workloads/sync_primitives.hh"

namespace nosync
{

/** UTS scale parameters. */
struct UtsParams
{
    unsigned numNodes = 16384; ///< paper: 16K nodes
    unsigned tbsPerCu = 3;
    unsigned localStackCap = 1024; ///< entries per CU stack
    std::uint64_t shapeSeed = 0x7575u;
};

/** The UTS workload. */
class Uts : public Workload
{
  public:
    explicit Uts(UtsParams params = {});

    std::string name() const override { return "UTS"; }
    void init(WorkloadEnv &env) override;
    KernelInfo kernelInfo(unsigned k) const override;
    SimTask tbMain(TbContext &ctx) override;
    std::vector<std::string> check(WorkloadEnv &env) override;

    /** Work stealing: which CU processes which node is timing-bound. */
    bool deterministicOutput() const override { return false; }

    /** Deterministic expected payload of a processed node. */
    static std::uint32_t
    nodeValue(std::uint32_t node)
    {
        return (node * 2654435761u) ^ 0xbeefu;
    }

  private:
    /** Pop one node from a stack; 0xffffffff when empty. */
    SimTask popStack(TbContext &ctx, Addr top, Addr slots, Scope scope,
                     MutexAddrs lock, std::uint32_t &out);

    UtsParams _params;
    unsigned _numCus = 0;

    // Host-side tree shape (mirrored into simulated memory).
    std::vector<std::uint32_t> _childStart;
    std::vector<std::uint32_t> _childCount;

    // Simulated memory layout.
    Addr _childStartArr = 0; ///< RO region
    Addr _childCountArr = 0; ///< RO region
    Addr _payload = 0;
    Addr _processedCtr = 0;
    Addr _globalTop = 0;
    Addr _globalSlots = 0;
    MutexAddrs _globalLock{};
    std::vector<Addr> _localTop;
    std::vector<Addr> _localSlots;
    std::vector<MutexAddrs> _localLocks;
};

} // namespace nosync

#endif // WORKLOADS_UTS_HH
