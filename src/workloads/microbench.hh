/**
 * @file
 * Synchronization microbenchmarks (Table 4, bottom).
 *
 * Mutex benchmarks (FAM/SLM/SPM/SPMBO, _G and _L), reader-writer
 * spin semaphores (SS_L/SSBO_L), and tree barriers with data exchange
 * (TB_LG/TBEX_LG). All run 3 TBs per CU and execute the critical
 * section / barrier many times; every benchmark carries a functional
 * check that fails if the protocol under test ever leaked a stale
 * value or broke mutual exclusion.
 */

#ifndef WORKLOADS_MICROBENCH_HH
#define WORKLOADS_MICROBENCH_HH

#include <vector>

#include "gpu/workload.hh"
#include "workloads/sync_primitives.hh"

namespace nosync
{

/** Shared scale parameters (paper defaults; tests shrink them). */
struct MicrobenchParams
{
    unsigned tbsPerCu = 3;
    unsigned iterations = 100;
    /** Data accesses per thread per critical section (Table 4). */
    unsigned workWords = 10;
    /** Threads per thread block; accesses are warp-coalesced. */
    unsigned threads = 64;

    /** Words touched by one thread block per critical section. */
    unsigned
    footprintWords() const
    {
        return workWords * threads;
    }
};

/**
 * Mutex microbenchmark.
 *
 * Global variant: one mutex, one shared data array incremented by
 * every thread block. Local variant: one mutex and one data array per
 * CU (unique data per CU), synchronized with local scope.
 */
class MutexBench : public Workload
{
  public:
    /** One mutex per scope instance: per CU (Local), per device
     *  (Device), or one machine-wide (Global); sync ops carry the
     *  matching scope, so every variant is well-scoped. */
    MutexBench(MutexKind kind, Scope scope,
               MicrobenchParams params = {});

    std::string name() const override;
    void init(WorkloadEnv &env) override;
    KernelInfo kernelInfo(unsigned k) const override;
    SimTask tbMain(TbContext &ctx) override;
    std::vector<std::string> check(WorkloadEnv &env) override;

  private:
    unsigned numGroups() const;

    MutexKind _kind;
    Scope _scope;
    MicrobenchParams _params;
    unsigned _numCus = 0;
    unsigned _numDevices = 1;
    unsigned _cusPerDevice = 0;
    std::vector<MutexAddrs> _mutexes; ///< one (local) or one total
    std::vector<Addr> _data;          ///< per-CU (local) or single
    std::vector<Addr> _roInput;       ///< read-only region per group
};

/**
 * Reader-writer spin semaphore benchmark (SS_L / SSBO_L).
 *
 * Per CU: one writer thread block and two readers. Readers take one
 * semaphore unit and read their half of the CU's data; the writer
 * takes the whole semaphore and shifts the data right (all elements
 * written except the first of each reader's half).
 */
class SemaphoreBench : public Workload
{
  public:
    explicit SemaphoreBench(bool backoff, MicrobenchParams params = {});

    std::string name() const override;
    void init(WorkloadEnv &env) override;
    KernelInfo kernelInfo(unsigned k) const override;
    SimTask tbMain(TbContext &ctx) override;
    std::vector<std::string> check(WorkloadEnv &env) override;

  private:
    static constexpr std::uint32_t kReaders = 2;

    bool _backoff;
    MicrobenchParams _params;
    unsigned _numCus = 0;
    std::vector<SemaphoreAddrs> _sems; ///< per CU
    std::vector<Addr> _data;           ///< per CU, 2 halves
    Addr _violations = 0;              ///< per-TB race counters
};

/**
 * Tree barrier benchmark (TB_LG / TBEX_LG).
 *
 * Each iteration: thread blocks increment their own chunk, join a
 * local (per-CU) barrier, one representative per CU joins the global
 * barrier, and after release every thread block reads a chunk written
 * on another CU (data exchange). The TBEX variant additionally
 * exchanges chunks locally before the global barrier. The cross-CU
 * reads double as a visibility check: every value read is exactly
 * determined by the barrier structure.
 */
class TreeBarrierBench : public Workload
{
  public:
    explicit TreeBarrierBench(bool local_exchange,
                              MicrobenchParams params = {});

    std::string name() const override;
    void init(WorkloadEnv &env) override;
    KernelInfo kernelInfo(unsigned k) const override;
    SimTask tbMain(TbContext &ctx) override;
    std::vector<std::string> check(WorkloadEnv &env) override;

  private:
    Addr chunkAddr(unsigned tb_global, unsigned word) const;

    bool _localExchange;
    MicrobenchParams _params;
    unsigned _numCus = 0;
    unsigned _numTbs = 0;
    std::vector<BarrierAddrs> _localBarriers; ///< per CU
    BarrierAddrs _globalBarrier{};
    Addr _chunks = 0;  ///< numTbs x workWords
    Addr _results = 0; ///< per-TB exchange checksums
};

} // namespace nosync

#endif // WORKLOADS_MICROBENCH_HH
