/**
 * @file
 * Axiomatic memory-model checker: herd-style candidate-execution
 * evaluation of the litmus suite, without running a simulated cycle.
 *
 * For one (program, configuration) cell the checker enumerates every
 * candidate execution of the static IR (axiom/program.hh) admitted by
 * the configuration's axiom set (axiom/model.hh):
 *
 *  - *Candidate structure.* The simulator's model-checking seam runs
 *    one thread-block operation to quiescence at a time, so a
 *    candidate execution is a total order `to` over the executed
 *    operations that respects program order, register guards, and
 *    the Delay phase barrier. The coherence order `co` of each
 *    variable is `to` restricted to its writes.
 *  - *Scope-visibility axiom.* A write is visible to its own CU
 *    immediately; beyond that only as published. A release at
 *    effective scope s publishes itself and every program-order-
 *    earlier write of its thread at tier s (CU / device / machine).
 *    Under DRF models every annotation folds to Global; on a
 *    single-device machine the Device tier folds into Global.
 *  - *Reads-from enumeration.* Each read's rf candidates are the
 *    visible writes of its variable (plus the initial value); the
 *    coherence axiom — no visible write may sit co-between rf(r) and
 *    r (fr ∪ co ∪ to acyclicity, specialized to a total `to`) —
 *    prunes stale candidates, and the checker fans out over whatever
 *    survives.
 *  - *Race axioms.* Each execution is replayed through scoped
 *    FastTrack clocks (per-CU / per-device / global publication
 *    tiers plus the as-if-all-sync-were-global shadow, mirroring
 *    analysis::RaceDetector): an unordered conflicting pair is a
 *    data race, or a scope race when only the shadow orders it.
 *
 * The cell report carries the axiomatic outcome set and the static
 * race verdict; crossCheck() proves them equal to the DPOR explorer's
 * operational outcome set and the dynamic detector's per-schedule
 * verdicts, naming program, config, and every divergent outcome.
 */

#ifndef AXIOM_CHECKER_HH
#define AXIOM_CHECKER_HH

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "axiom/model.hh"
#include "axiom/program.hh"
#include "coherence/protocol.hh"

namespace nosync
{
namespace explore
{
class LitmusWorkload;
struct CellReport;
} // namespace explore

namespace axiom
{

/** One axiomatically allowed final-state outcome. */
struct AxiomOutcome
{
    std::string outcome;
    bool allowed = false; ///< per the litmus program's oracle
};

/** Static verdict of one (program, config) cell. */
struct AxiomCellReport
{
    std::string program;
    std::string config;
    std::string model; ///< axiom-set name (AxiomModel::name)

    std::uint64_t interleavings = 0; ///< admissible total orders
    std::uint64_t executions = 0;    ///< consistent candidates
    std::uint64_t rfPruned = 0;      ///< rf candidates axiom-killed
    std::uint64_t racyExecutions = 0;

    /** Sorted by outcome string (deterministic). */
    std::vector<AxiomOutcome> outcomes;

    /** Sorted unique racing-pair descriptions. */
    std::vector<std::string> races;
    std::uint64_t dataRacePairs = 0;
    std::uint64_t scopeRacePairs = 0;

    /** "race-free" | "scope-race" | "data-race". */
    std::string verdict;

    /** Every axiomatic outcome is allowed by the litmus oracle. */
    bool oracleOk = true;

    bool raceFree() const { return racyExecutions == 0; }

    bool
    allRacy() const
    {
        return executions != 0 && racyExecutions == executions;
    }

    /** All racing pairs (if any) are scope races. */
    bool
    scopeOnly() const
    {
        return dataRacePairs == 0;
    }
};

/** Renders a final register state as an outcome string. */
using OutcomeFormatter =
    std::function<std::string(const std::vector<std::uint32_t> &)>;

/** Oracle: is this outcome string allowed? */
using OutcomeOracle = std::function<bool(const std::string &)>;

/**
 * Core evaluator: statically check a raw @p prog under @p model.
 * The formatter renders each execution's final registers; a null
 * oracle marks every outcome allowed (exploratory mode). Exposed so
 * tests can check geometries (multi-device) and shapes (rmw) the
 * litmus machine never runs.
 */
AxiomCellReport checkProgram(const Program &prog,
                             const AxiomModel &model,
                             const OutcomeFormatter &format,
                             const OutcomeOracle &allowed);

/**
 * Statically check @p workload under @p proto on a @p devices -device
 * machine. Pure function of the IR and the axiom set.
 */
AxiomCellReport checkCell(const explore::LitmusWorkload &workload,
                          const ProtocolConfig &proto,
                          unsigned devices = 1);

/** Result of cross-validating one cell against the explorer. */
struct CrossCheckResult
{
    std::string program;
    std::string config;
    bool checked = false; ///< a matching operational cell existed
    bool ok = false;
    /** Each diff names program, config, and the divergence. */
    std::vector<std::string> diffs;
};

/**
 * Prove the static and operational views of one cell agree: equal
 * outcome sets, matching race/scope-race verdicts (the explorer's
 * per-schedule dynamic-detector counts), and a passing operational
 * verdict (a budget-exhausted exploration proves nothing).
 */
CrossCheckResult crossCheck(const AxiomCellReport &axiom,
                            const explore::CellReport &cell);

/** Full report of one axiomatic (or cross-checked) invocation. */
struct AxiomReport
{
    std::vector<AxiomCellReport> cells;
    /** Parallel to cells when cross-checking; empty otherwise. */
    std::vector<CrossCheckResult> crossChecks;

    std::uint64_t countVerdict(const char *verdict) const;

    /** Every cell oracle-clean, every cross-check (if any) passing. */
    bool allOk() const;

    /** 0 all ok, 1 any oracle or cross-check failure. */
    int exitCode() const;
};

/** Emit the schema_version-ed axiomatic report
 *  (tools/validate_axiom.py checks the emission). */
void writeAxiomJson(const AxiomReport &report, std::ostream &os);

/** writeAxiomJson to @p path; false (with perror) on I/O failure. */
bool writeAxiomJsonFile(const AxiomReport &report,
                        const std::string &path);

/** Render a human-readable per-cell summary table. */
void renderAxiomReport(const AxiomReport &report, std::ostream &os);

} // namespace axiom
} // namespace nosync

#endif // AXIOM_CHECKER_HH
