/**
 * @file
 * Per-configuration axiom sets for the axiomatic checker.
 *
 * Each of the six studied protocol columns maps to one declarative
 * AxiomModel — a handful of booleans the candidate-execution
 * evaluator interprets, named so a disagreement report can say which
 * axiom set a verdict came from:
 *
 *  - "sc-drf" (GD, DD, DD+RO): scope annotations are ignored — every
 *    synchronization is globally effective, so release publication
 *    and release->acquire ordering are machine-wide. One unscoped
 *    model covers all three DRF columns; the protocol differences
 *    (writethrough vs ownership, read-only regions) are performance,
 *    not consistency, which is exactly the paper's claim.
 *  - "sc-drf-engine" (DD+SE): the same DRF axioms; atomics perform
 *    at the home L2 bank instead of a registered L1, which moves
 *    *where* the per-word total sync order is formed but changes
 *    neither visibility nor ordering. The distinct name keeps
 *    reports honest about which column was checked.
 *  - "hrf-scoped" (GH, DH): HRF-Indirect. Scope annotations are
 *    effective: a release at scope s publishes itself and all
 *    program-order-earlier writes of its thread at tier s only
 *    (CU / device / machine), and release->acquire edges exist only
 *    where the publication tier covers the acquirer. Both HRF
 *    columns share the model — on GH an unpublished write sits in a
 *    writethrough L1 the flat directory never asks, on DH it sits
 *    unregistered behind a local fence; either way the axioms say
 *    "not visible beyond the CU".
 *
 * The checker additionally evaluates every model against the
 * FastTrack-style scoped happens-before axioms (CU/device/global
 * publication tiers plus the as-if-all-sync-were-global DRF shadow)
 * to produce the static race / scope-race verdict that is
 * cross-validated against the dynamic detector.
 */

#ifndef AXIOM_MODEL_HH
#define AXIOM_MODEL_HH

#include <string>

#include "coherence/protocol.hh"

namespace nosync
{
namespace axiom
{

/** One declarative consistency model (see file comment). */
struct AxiomModel
{
    /** Model name carried into reports ("sc-drf", "hrf-scoped", ...). */
    std::string name;

    /**
     * Scope annotations are effective (HRF). False folds every
     * annotation to Global before any other axiom applies — the
     * scope-free DRF contract.
     */
    bool scoped = false;

    /**
     * Sync operations perform at the memory-side engine (DD+SE).
     * Purely descriptive under the current axioms: the per-word
     * total order exists either way; carried so reports and docs can
     * say which ordering point a column was checked under.
     */
    bool engineSideSync = false;

    /**
     * Number of devices in the machine being modeled. On a single
     * device the Device tier folds into Global, mirroring
     * analysis::RaceDetector's reach rules bit for bit.
     */
    unsigned devices = 1;
};

/** The axiom set for @p proto on a @p devices -device machine. */
inline AxiomModel
modelFor(const ProtocolConfig &proto, unsigned devices = 1)
{
    AxiomModel model;
    model.devices = devices;
    if (proto.consistency == ConsistencyModel::Hrf) {
        model.name = "hrf-scoped";
        model.scoped = true;
    } else if (proto.syncEngine) {
        model.name = "sc-drf-engine";
        model.engineSideSync = true;
    } else {
        model.name = "sc-drf";
    }
    return model;
}

/** Effective scope of an annotation under @p model (DRF folds all). */
inline Scope
effectiveScope(const AxiomModel &model, Scope annotated)
{
    return model.scoped ? annotated : Scope::Global;
}

} // namespace axiom
} // namespace nosync

#endif // AXIOM_MODEL_HH
