#include "axiom/checker.hh"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <limits>
#include <map>
#include <set>
#include <sstream>

#include "explore/explorer.hh"
#include "explore/litmus.hh"
#include "runner/json_writer.hh"

namespace nosync
{
namespace axiom
{
namespace
{

/** Publication reach of a write, ordered by inclusion. */
enum class Tier : std::uint8_t
{
    Cu = 0,      ///< own CU only (plain store / Local release)
    Device = 1,  ///< own device
    Machine = 2, ///< whole machine
};

/** Tier a release at @p annotated scope publishes at under @p model.
 *  On a single-device machine the Device tier folds into Machine,
 *  mirroring analysis::RaceDetector's reach rules. */
Tier
tierOf(const AxiomModel &model, Scope annotated)
{
    switch (effectiveScope(model, annotated)) {
      case Scope::Local:
        return Tier::Cu;
      case Scope::Device:
        return model.devices > 1 ? Tier::Device : Tier::Machine;
      case Scope::Global:
      default:
        return Tier::Machine;
    }
}

/** One executed operation of a candidate execution, in total order. */
struct Event
{
    unsigned thread = 0;
    const Op *op = nullptr;
    std::uint32_t value = 0; ///< value written (writes) / read (reads)
    Tier tier = Tier::Cu;    ///< writes: current publication tier
};

/** DFS node state; programs are a handful of ops, so copying the
 *  whole state per branch is cheaper than undo logs. */
struct ExecState
{
    std::vector<unsigned> pc; ///< per-thread next-op index
    std::vector<std::uint32_t> regs;
    std::vector<Event> trace;
    std::uint64_t rfPruned = 0;
};

constexpr unsigned kDone = std::numeric_limits<unsigned>::max();

/**
 * Index of thread @p t's next op that would execute: skips Delay ops
 * (pure phase barriers) and guard-false ops. Guards only reference
 * registers written program-order-earlier by the same thread, so
 * every skip decision is final by the time the scan reaches it.
 */
unsigned
nextExecutable(const Program &prog, const ExecState &state,
               unsigned t)
{
    const std::vector<Op> &ops = prog.threads[t].ops;
    for (unsigned i = state.pc[t]; i < ops.size(); ++i) {
        const Op &op = ops[i];
        if (op.kind == Op::Kind::Delay)
            continue;
        if (op.guardReg != kNoReg &&
            state.regs[op.guardReg] != op.guardValue)
            continue;
        return i;
    }
    return kDone;
}

/** Scope-visibility axiom: is write event @p w visible to a read by
 *  thread @p t? Own thread and own CU see everything immediately;
 *  beyond that only what a release published far enough. */
bool
visibleTo(const Program &prog, const Event &w, unsigned t)
{
    if (w.thread == t || prog.cuOf(w.thread) == prog.cuOf(t))
        return true;
    if (w.tier == Tier::Machine)
        return true;
    return w.tier == Tier::Device &&
           prog.deviceOf(w.thread) == prog.deviceOf(t);
}

/**
 * Resolve a read's rf edge: candidates are the visible writes of the
 * variable plus the initial value; the coherence/maximality axiom (no
 * visible write may sit co-between rf(r) and r) kills all but the
 * co-maximal candidate, which with a total `to` makes rf a function.
 * Killed candidates are counted in rfPruned for report honesty.
 */
std::uint32_t
resolveRead(const Program &prog, ExecState &state, unsigned t,
            unsigned var)
{
    const Event *max_visible = nullptr;
    std::uint64_t visible = 0;
    for (const Event &e : state.trace) {
        if (!e.op->isWrite() || e.op->var != var)
            continue;
        if (!visibleTo(prog, e, t))
            continue;
        ++visible;
        max_visible = &e;
    }
    // Initial value plus every non-maximal visible write is pruned.
    state.rfPruned += visible;
    return max_visible != nullptr ? max_visible->value : 0;
}

/** Execute op @p idx of thread @p t, appending to the trace. */
void
execute(const Program &prog, const AxiomModel &model,
        ExecState &state, unsigned t, unsigned idx)
{
    const Op &op = prog.threads[t].ops[idx];
    state.pc[t] = idx + 1;

    Event event;
    event.thread = t;
    event.op = &op;

    switch (op.kind) {
      case Op::Kind::Load:
      case Op::Kind::AtomicLoad:
        event.value = resolveRead(prog, state, t, op.var);
        if (op.dest != kNoReg)
            state.regs[op.dest] = event.value;
        break;
      case Op::Kind::Store:
        event.value = op.value;
        event.tier = Tier::Cu;
        break;
      case Op::Kind::AtomicStore:
        event.value = op.value;
        break;
      case Op::Kind::AtomicRmw: {
        std::uint32_t read = resolveRead(prog, state, t, op.var);
        if (op.dest != kNoReg)
            state.regs[op.dest] = read;
        event.value = read + op.value;
        break;
      }
      case Op::Kind::Delay:
        return; // never reaches the trace; nextExecutable skips it
    }

    if (op.isRelease()) {
        // Publication axiom: the release publishes itself and every
        // program-order-earlier write of its thread at its tier.
        Tier tier = tierOf(model, op.scope);
        event.tier = tier;
        for (Event &e : state.trace)
            if (e.thread == t && e.op->isWrite() && e.tier < tier)
                e.tier = tier;
    }
    state.trace.push_back(event);
}

using VectorClock = std::vector<std::uint64_t>;

void
join(VectorClock &into, const VectorClock &from)
{
    if (into.size() < from.size())
        into.resize(from.size(), 0);
    for (std::size_t i = 0; i < from.size(); ++i)
        into[i] = std::max(into[i], from[i]);
}

/** Per-sync-word published clocks, one per publication tier, plus
 *  the as-if-all-sync-were-global DRF shadow (HRF models only). */
struct SyncVar
{
    std::map<unsigned, VectorClock> perCu;
    std::map<unsigned, VectorClock> perDevice;
    VectorClock global;
    VectorClock drf;
};

/** A recorded access for race pair checking. */
struct Access
{
    unsigned thread = 0;
    std::uint64_t timeReal = 0;
    std::uint64_t timeShadow = 0;
    bool isWrite = false;
    bool isSync = false;
};

const char *
accessName(const Op &op)
{
    switch (op.kind) {
      case Op::Kind::Load:
        return "load";
      case Op::Kind::Store:
        return "store";
      case Op::Kind::AtomicLoad:
        return "atomic-load";
      case Op::Kind::AtomicStore:
        return "atomic-store";
      case Op::Kind::AtomicRmw:
        return "atomic-rmw";
      case Op::Kind::Delay:
      default:
        return "delay";
    }
}

/** Racing pairs of one execution, by kind. */
struct RaceTally
{
    std::set<std::string> data;
    std::set<std::string> scope;
};

/**
 * Replay one candidate execution through the scoped FastTrack clock
 * axioms, mirroring analysis::RaceDetector: acquires join the word's
 * per-CU clock always and the per-device / global clocks per the
 * reach rules (reach_device = multi-device && scope != Local;
 * reach_global = scope == Global || (single-device && Device));
 * releases publish symmetrically. Under HRF a parallel shadow
 * machine treats every sync as global; a conflicting pair unordered
 * by the real clocks is a scope race when the shadow orders it, a
 * data race otherwise.
 */
RaceTally
analyzeRaces(const Program &prog, const AxiomModel &model,
             const std::vector<Event> &trace)
{
    unsigned n = static_cast<unsigned>(prog.threads.size());
    bool multi_device = model.devices > 1;
    bool hrf = model.scoped;

    std::vector<VectorClock> real(n, VectorClock(n, 0));
    std::vector<VectorClock> shadow(n, VectorClock(n, 0));
    for (unsigned t = 0; t < n; ++t)
        real[t][t] = shadow[t][t] = 1;

    std::map<unsigned, SyncVar> sync;
    std::map<unsigned, std::vector<Access>> accesses;
    RaceTally tally;

    for (const Event &event : trace) {
        unsigned t = event.thread;
        const Op &op = *event.op;
        unsigned cu = prog.cuOf(t);
        unsigned dev = prog.deviceOf(t);

        bool reach_device = false, reach_global = false;
        if (op.isSync()) {
            Scope es = effectiveScope(model, op.scope);
            reach_device = multi_device && es != Scope::Local;
            reach_global = es == Scope::Global ||
                           (!multi_device && es == Scope::Device);
        }

        if (op.isAcquire()) {
            SyncVar &var = sync[op.var];
            join(real[t], var.perCu[cu]);
            if (reach_device)
                join(real[t], var.perDevice[dev]);
            if (reach_global)
                join(real[t], var.global);
            if (hrf)
                join(shadow[t], var.drf);
        }

        for (const Access &prev : accesses[op.var]) {
            if (prev.thread == t)
                continue;
            if (!prev.isWrite && !op.isWrite())
                continue;
            if (prev.isSync && op.isSync())
                continue;
            bool ordered = real[t][prev.thread] >= prev.timeReal;
            if (ordered)
                continue;
            bool shadow_ordered =
                hrf && shadow[t][prev.thread] >= prev.timeShadow;
            std::ostringstream desc;
            desc << prog.varName(op.var) << ": t" << prev.thread
                 << " " << (prev.isWrite ? "write" : "read")
                 << " vs t" << t << " " << accessName(op);
            if (shadow_ordered)
                tally.scope.insert(desc.str());
            else
                tally.data.insert(desc.str());
        }
        accesses[op.var].push_back({t, real[t][t], shadow[t][t],
                                    op.isWrite(), op.isSync()});

        if (op.isRelease()) {
            SyncVar &var = sync[op.var];
            join(var.perCu[cu], real[t]);
            if (reach_device)
                join(var.perDevice[dev], real[t]);
            if (reach_global)
                join(var.global, real[t]);
            if (hrf)
                join(var.drf, shadow[t]);
        }
        real[t][t] += 1;
        shadow[t][t] += 1;
    }
    return tally;
}

/** Accumulator threaded through the DFS. */
struct Accumulator
{
    std::uint64_t interleavings = 0;
    std::uint64_t executions = 0;
    std::uint64_t rfPruned = 0;
    std::uint64_t racyExecutions = 0;
    std::uint64_t dataRacePairs = 0;
    std::uint64_t scopeRacePairs = 0;
    std::map<std::string, bool> outcomes; ///< outcome -> allowed
    std::set<std::string> races;
};

void
recordTerminal(const Program &prog, const AxiomModel &model,
               const ExecState &state, const OutcomeFormatter &format,
               const OutcomeOracle &allowed, Accumulator &acc)
{
    acc.interleavings += 1;
    acc.executions += 1;
    acc.rfPruned += state.rfPruned;

    std::string outcome = format(state.regs);
    auto it = acc.outcomes.find(outcome);
    if (it == acc.outcomes.end())
        acc.outcomes[outcome] = !allowed || allowed(outcome);

    RaceTally tally = analyzeRaces(prog, model, state.trace);
    if (!tally.data.empty() || !tally.scope.empty())
        acc.racyExecutions += 1;
    acc.dataRacePairs += tally.data.size();
    acc.scopeRacePairs += tally.scope.size();
    for (const std::string &desc : tally.data)
        acc.races.insert("data race on " + desc);
    for (const std::string &desc : tally.scope)
        acc.races.insert("scope race on " + desc);
}

/**
 * Enumerate admissible total orders: at each step any thread whose
 * next executable op is in the minimal pending phase may go. The
 * phase axiom models the litmus Delay as a barrier — every phase-p
 * op of any thread orders before every phase-(p+1) op — which is how
 * the mis-scoped consumer's dominating wait() appears statically.
 */
void
dfs(const Program &prog, const AxiomModel &model,
    const std::vector<std::vector<unsigned>> &phase, ExecState state,
    const OutcomeFormatter &format, const OutcomeOracle &allowed,
    Accumulator &acc)
{
    unsigned n = static_cast<unsigned>(prog.threads.size());
    std::vector<unsigned> next(n, kDone);
    unsigned min_phase = kDone;
    for (unsigned t = 0; t < n; ++t) {
        next[t] = nextExecutable(prog, state, t);
        if (next[t] != kDone)
            min_phase = std::min(min_phase, phase[t][next[t]]);
    }
    if (min_phase == kDone) {
        recordTerminal(prog, model, state, format, allowed, acc);
        return;
    }
    for (unsigned t = 0; t < n; ++t) {
        if (next[t] == kDone || phase[t][next[t]] != min_phase)
            continue;
        ExecState branch = state;
        execute(prog, model, branch, t, next[t]);
        dfs(prog, model, phase, std::move(branch), format, allowed,
            acc);
    }
}

} // namespace

AxiomCellReport
checkProgram(const Program &prog, const AxiomModel &model,
             const OutcomeFormatter &format,
             const OutcomeOracle &allowed)
{
    // Phase of an op = number of Delay barriers program-order-before
    // it in its thread.
    std::vector<std::vector<unsigned>> phase(prog.threads.size());
    for (std::size_t t = 0; t < prog.threads.size(); ++t) {
        unsigned p = 0;
        for (const Op &op : prog.threads[t].ops) {
            phase[t].push_back(p);
            if (op.kind == Op::Kind::Delay)
                ++p;
        }
    }

    ExecState state;
    state.pc.assign(prog.threads.size(), 0);
    state.regs.assign(prog.numRegs, 0);

    Accumulator acc;
    dfs(prog, model, phase, std::move(state), format, allowed, acc);

    AxiomCellReport report;
    report.program = prog.name;
    report.model = model.name;
    report.interleavings = acc.interleavings;
    report.executions = acc.executions;
    report.rfPruned = acc.rfPruned;
    report.racyExecutions = acc.racyExecutions;
    report.dataRacePairs = acc.dataRacePairs;
    report.scopeRacePairs = acc.scopeRacePairs;
    for (const auto &[outcome, ok] : acc.outcomes) {
        report.outcomes.push_back({outcome, ok});
        if (!ok)
            report.oracleOk = false;
    }
    report.races.assign(acc.races.begin(), acc.races.end());
    if (acc.dataRacePairs != 0)
        report.verdict = "data-race";
    else if (acc.scopeRacePairs != 0)
        report.verdict = "scope-race";
    else
        report.verdict = "race-free";
    return report;
}

AxiomCellReport
checkCell(const explore::LitmusWorkload &workload,
          const ProtocolConfig &proto, unsigned devices)
{
    Program prog = workload.axiomProgram();
    AxiomModel model = modelFor(proto, devices);
    AxiomCellReport report = checkProgram(
        prog, model,
        [&](const std::vector<std::uint32_t> &regs) {
            return workload.formatOutcome(regs);
        },
        [&](const std::string &outcome) {
            return workload.allowed(outcome, proto);
        });
    report.config = proto.shortName();
    return report;
}

CrossCheckResult
crossCheck(const AxiomCellReport &axiom,
           const explore::CellReport &cell)
{
    CrossCheckResult result;
    result.program = axiom.program;
    result.config = axiom.config;
    result.checked =
        axiom.program == cell.program && axiom.config == cell.config;
    if (!result.checked) {
        result.diffs.push_back(
            axiom.program + " on " + axiom.config +
            ": no matching operational cell (got " + cell.program +
            " on " + cell.config + ")");
        return result;
    }
    std::string where = axiom.program + " on " + axiom.config;

    if (cell.verdict != "pass") {
        result.diffs.push_back(
            where + ": operational verdict '" + cell.verdict +
            "' — outcome set not trustworthy for comparison");
    }

    std::set<std::string> axiomatic, operational;
    for (const AxiomOutcome &outcome : axiom.outcomes)
        axiomatic.insert(outcome.outcome);
    for (const explore::OutcomeCount &outcome : cell.outcomes)
        operational.insert(outcome.outcome);
    for (const std::string &outcome : operational) {
        if (!axiomatic.count(outcome))
            result.diffs.push_back(
                where + ": operational outcome '" + outcome +
                "' is not axiomatically allowed");
    }
    for (const std::string &outcome : axiomatic) {
        if (!operational.count(outcome))
            result.diffs.push_back(
                where + ": axiomatic outcome '" + outcome +
                "' was never observed operationally");
    }

    bool op_race_free = cell.racySchedules == 0;
    bool op_all_racy =
        cell.schedulesExplored != 0 && cell.cleanSchedules == 0;
    if (axiom.raceFree() != op_race_free) {
        std::ostringstream os;
        os << where << ": static verdict '" << axiom.verdict
           << "' but dynamic detector flagged " << cell.racySchedules
           << " of " << cell.schedulesExplored << " schedule(s)";
        result.diffs.push_back(os.str());
    }
    if (axiom.allRacy() != op_all_racy) {
        std::ostringstream os;
        os << where << ": static races on " << axiom.racyExecutions
           << " of " << axiom.executions
           << " execution(s) but dynamic detector left "
           << cell.cleanSchedules << " schedule(s) clean";
        result.diffs.push_back(os.str());
    }
    bool axiom_scope_race =
        axiom.verdict == "scope-race" && axiom.allRacy();
    if (axiom_scope_race != cell.expectScopeRace) {
        result.diffs.push_back(
            where + ": static verdict '" + axiom.verdict +
            "' disagrees with the program's scope-race expectation (" +
            (cell.expectScopeRace ? "expected" : "not expected") +
            ")");
    }
    if (!axiom.oracleOk) {
        result.diffs.push_back(
            where +
            ": an axiomatic outcome violates the litmus oracle");
    }

    result.ok = result.diffs.empty();
    return result;
}

std::uint64_t
AxiomReport::countVerdict(const char *verdict) const
{
    std::uint64_t n = 0;
    for (const AxiomCellReport &cell : cells)
        if (cell.verdict == verdict)
            ++n;
    return n;
}

bool
AxiomReport::allOk() const
{
    for (const AxiomCellReport &cell : cells)
        if (!cell.oracleOk)
            return false;
    for (const CrossCheckResult &check : crossChecks)
        if (!check.checked || !check.ok)
            return false;
    return true;
}

int
AxiomReport::exitCode() const
{
    return allOk() ? 0 : 1;
}

void
writeAxiomJson(const AxiomReport &report, std::ostream &os)
{
    JsonWriter json(os);
    json.beginObject();
    json.key("schema_version").value(std::uint64_t{1});
    json.key("harness").value("litmus_axiom");

    json.key("summary").beginObject();
    json.key("cells").value(
        static_cast<std::uint64_t>(report.cells.size()));
    json.key("race_free").value(report.countVerdict("race-free"));
    json.key("scope_race").value(report.countVerdict("scope-race"));
    json.key("data_race").value(report.countVerdict("data-race"));
    std::uint64_t checked = 0, check_failed = 0;
    for (const CrossCheckResult &check : report.crossChecks) {
        checked += check.checked ? 1 : 0;
        check_failed += check.ok ? 0 : 1;
    }
    json.key("cross_checked").value(checked);
    json.key("cross_check_failed").value(check_failed);
    json.key("all_ok").value(report.allOk());
    json.endObject();

    json.key("cells").beginArray();
    for (std::size_t i = 0; i < report.cells.size(); ++i) {
        const AxiomCellReport &cell = report.cells[i];
        json.beginObject();
        json.key("program").value(cell.program);
        json.key("config").value(cell.config);
        json.key("model").value(cell.model);
        json.key("verdict").value(cell.verdict);
        json.key("oracle_ok").value(cell.oracleOk);
        json.key("interleavings").value(cell.interleavings);
        json.key("executions").value(cell.executions);
        json.key("rf_pruned").value(cell.rfPruned);
        json.key("racy_executions").value(cell.racyExecutions);
        json.key("data_race_pairs").value(cell.dataRacePairs);
        json.key("scope_race_pairs").value(cell.scopeRacePairs);
        json.key("outcomes").beginArray();
        for (const AxiomOutcome &outcome : cell.outcomes) {
            json.beginObject();
            json.key("outcome").value(outcome.outcome);
            json.key("allowed").value(outcome.allowed);
            json.endObject();
        }
        json.endArray();
        json.key("races").beginArray();
        for (const std::string &race : cell.races)
            json.value(race);
        json.endArray();
        json.key("cross_check").beginObject();
        if (i < report.crossChecks.size()) {
            const CrossCheckResult &check = report.crossChecks[i];
            json.key("checked").value(check.checked);
            json.key("ok").value(check.ok);
            json.key("diffs").beginArray();
            for (const std::string &diff : check.diffs)
                json.value(diff);
            json.endArray();
        } else {
            json.key("checked").value(false);
            json.key("ok").value(false);
            json.key("diffs").beginArray().endArray();
        }
        json.endObject();
        json.endObject();
    }
    json.endArray();

    json.endObject();
    os << "\n";
}

bool
writeAxiomJsonFile(const AxiomReport &report, const std::string &path)
{
    std::ofstream os(path);
    if (!os) {
        std::perror(path.c_str());
        return false;
    }
    writeAxiomJson(report, os);
    return os.good();
}

void
renderAxiomReport(const AxiomReport &report, std::ostream &os)
{
    os << std::left << std::setw(11) << "program" << std::setw(7)
       << "config" << std::setw(15) << "model" << std::setw(12)
       << "verdict" << std::right << std::setw(11) << "execs"
       << std::setw(10) << "racy" << std::setw(10) << "outcomes"
       << "\n";
    for (std::size_t i = 0; i < report.cells.size(); ++i) {
        const AxiomCellReport &cell = report.cells[i];
        os << std::left << std::setw(11) << cell.program
           << std::setw(7) << cell.config << std::setw(15)
           << cell.model << std::setw(12) << cell.verdict
           << std::right << std::setw(11) << cell.executions
           << std::setw(10) << cell.racyExecutions << std::setw(10)
           << cell.outcomes.size() << "\n";
        for (const AxiomOutcome &outcome : cell.outcomes) {
            os << "    " << (outcome.allowed ? "ok " : "BAD") << " "
               << outcome.outcome << "\n";
        }
        for (const std::string &race : cell.races)
            os << "    RACE: " << race << "\n";
        if (i < report.crossChecks.size()) {
            for (const std::string &diff :
                 report.crossChecks[i].diffs)
                os << "    DIFF: " << diff << "\n";
        }
    }
}

} // namespace axiom
} // namespace nosync
