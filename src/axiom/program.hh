/**
 * @file
 * Static litmus-program IR for the axiomatic memory-model checker.
 *
 * A Program is the declarative twin of an explore::LitmusWorkload:
 * the same memory operations the coroutine body issues, written down
 * as per-thread operation lists over symbolic variables so they can
 * be analyzed without running a single simulated cycle. Reads land in
 * numbered registers; conditional behavior (message passing reads the
 * data word only when the flag acquire observed the publication) is a
 * guard naming the register and required value; the mis-scoped
 * program's long wait() is a Delay phase barrier. Every sync
 * operation carries its scope annotation — Local, Device, or Global —
 * which is what the per-configuration axiom sets interpret.
 *
 * Threads map onto the machine the way the simulator places litmus
 * thread blocks: thread i runs on CU i (round-robin assignment with
 * more CUs than threads), and CU c belongs to device c / cusPerDevice.
 * The default single-device geometry matches the explorer's machine;
 * multi-device geometries let the checker's device-scope axioms be
 * exercised purely statically.
 */

#ifndef AXIOM_PROGRAM_HH
#define AXIOM_PROGRAM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "coherence/protocol.hh"

namespace nosync
{
namespace axiom
{

/** Register index marking "no destination / no guard". */
constexpr int kNoReg = -1;

/** One static memory (or phase-barrier) operation. */
struct Op
{
    enum class Kind : std::uint8_t
    {
        Load,        ///< plain data read
        Store,       ///< plain data write
        AtomicLoad,  ///< sync read (acquire)
        AtomicStore, ///< sync write (release)
        AtomicRmw,   ///< sync fetch-add (acquire-release)
        Delay,       ///< phase barrier (the litmus long wait())
    };

    Kind kind = Kind::Load;
    unsigned var = 0;          ///< symbolic variable index
    std::uint32_t value = 0;   ///< stores: value written; rmw: addend
    Scope scope = Scope::Global; ///< sync ops: scope annotation
    int dest = kNoReg;         ///< reads/rmw: register receiving value
    int guardReg = kNoReg;     ///< execute only if regs[guardReg]...
    std::uint32_t guardValue = 0; ///< ...equals this value

    bool
    isWrite() const
    {
        return kind == Kind::Store || kind == Kind::AtomicStore ||
               kind == Kind::AtomicRmw;
    }

    bool
    isRead() const
    {
        return kind == Kind::Load || kind == Kind::AtomicLoad ||
               kind == Kind::AtomicRmw;
    }

    bool
    isSync() const
    {
        return kind == Kind::AtomicLoad ||
               kind == Kind::AtomicStore || kind == Kind::AtomicRmw;
    }

    bool
    isAcquire() const
    {
        return kind == Kind::AtomicLoad || kind == Kind::AtomicRmw;
    }

    bool
    isRelease() const
    {
        return kind == Kind::AtomicStore || kind == Kind::AtomicRmw;
    }
};

/** Convenience constructors keeping the program tables readable. */
inline Op
load(unsigned var, int dest)
{
    Op op;
    op.kind = Op::Kind::Load;
    op.var = var;
    op.dest = dest;
    return op;
}

inline Op
store(unsigned var, std::uint32_t value)
{
    Op op;
    op.kind = Op::Kind::Store;
    op.var = var;
    op.value = value;
    return op;
}

inline Op
atomicLoad(unsigned var, Scope scope, int dest)
{
    Op op;
    op.kind = Op::Kind::AtomicLoad;
    op.var = var;
    op.scope = scope;
    op.dest = dest;
    return op;
}

inline Op
atomicStore(unsigned var, std::uint32_t value, Scope scope)
{
    Op op;
    op.kind = Op::Kind::AtomicStore;
    op.var = var;
    op.value = value;
    op.scope = scope;
    return op;
}

inline Op
atomicRmw(unsigned var, std::uint32_t addend, Scope scope, int dest)
{
    Op op;
    op.kind = Op::Kind::AtomicRmw;
    op.var = var;
    op.value = addend;
    op.scope = scope;
    op.dest = dest;
    return op;
}

inline Op
delay()
{
    Op op;
    op.kind = Op::Kind::Delay;
    return op;
}

/** Guard @p op on a previously read register value. */
inline Op
onlyIf(Op op, int guard_reg, std::uint32_t guard_value)
{
    op.guardReg = guard_reg;
    op.guardValue = guard_value;
    return op;
}

/** One thread: its program-order operation list. */
struct Thread
{
    std::vector<Op> ops;
};

/** A complete static litmus program. */
struct Program
{
    std::string name;
    unsigned numVars = 0;
    unsigned numRegs = 0;
    std::vector<Thread> threads;
    std::vector<std::string> varNames; ///< for race descriptions

    /**
     * Machine geometry the threads are placed on. 0 cusPerDevice
     * means "each thread on its own CU of one device" — the
     * explorer's default machine as the litmus suite sees it.
     */
    unsigned cusPerDevice = 0;
    unsigned devices = 1;

    /** CU thread @p t runs on (round-robin, one TB per CU). */
    unsigned
    cuOf(unsigned t) const
    {
        return t;
    }

    /** Device thread @p t runs on. */
    unsigned
    deviceOf(unsigned t) const
    {
        if (cusPerDevice == 0 || devices <= 1)
            return 0;
        return (cuOf(t) / cusPerDevice) % devices;
    }

    const std::string &
    varName(unsigned var) const
    {
        static const std::string unknown = "?";
        return var < varNames.size() ? varNames[var] : unknown;
    }
};

} // namespace axiom
} // namespace nosync

#endif // AXIOM_PROGRAM_HH
