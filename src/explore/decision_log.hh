/**
 * @file
 * Replayable decision log for the stateless model checker.
 *
 * An exploration run is driven by two cooperating hooks — the
 * ExploringScheduler (which ready thread block issues next) and the
 * ExploringPolicy (when a mesh message is delivered). Both consult a
 * shared ChoiceScript at every choice point with more than one
 * option, and both append a ChoicePoint to a shared DecisionLog.
 *
 * The script is simply the sequence of branch indices consumed at
 * fanout>1 points, in encounter order. Because the simulator is
 * deterministic, replaying a script reproduces the identical run; a
 * schedule-tree node is therefore identified by its consumed-choice
 * prefix, and forcing one alternative branch is appending one index.
 * Past the end of the script every choice defaults to branch 0.
 */

#ifndef EXPLORE_DECISION_LOG_HH
#define EXPLORE_DECISION_LOG_HH

#include <cstdint>
#include <vector>

#include "sim/tb_scheduler.hh"
#include "sim/types.hh"

namespace nosync
{
namespace explore
{

/** One recorded choice point (TB issue or message delivery). */
struct ChoicePoint
{
    enum class Kind : std::uint8_t
    {
        TbIssue,  ///< which ready thread block advances
        Delivery, ///< when a mesh message arrives
    };

    Kind kind = Kind::TbIssue;
    Tick tick = 0;            ///< simulated tick of the decision
    unsigned numOptions = 1;  ///< branching factor
    unsigned chosen = 0;      ///< branch taken
    bool consumedScript = false; ///< fanout>1: used a script slot

    /** TbIssue: the ready candidates, sorted by (kernel, tb). */
    std::vector<TbOp> candidates;

    /** Delivery: the perturbed message. */
    NodeId src = kNoNode;
    NodeId dst = kNoNode;
    Tick nominal = 0;       ///< unperturbed arrival
    Tick arrival = 0;       ///< chosen (FIFO-clamped) arrival

    bool
    operator==(const ChoicePoint &other) const
    {
        if (kind != other.kind || tick != other.tick ||
            numOptions != other.numOptions ||
            chosen != other.chosen ||
            consumedScript != other.consumedScript ||
            src != other.src || dst != other.dst ||
            nominal != other.nominal || arrival != other.arrival ||
            candidates.size() != other.candidates.size()) {
            return false;
        }
        for (std::size_t i = 0; i < candidates.size(); ++i) {
            const TbOp &a = candidates[i];
            const TbOp &b = other.candidates[i];
            if (a.kernel != b.kernel || a.tbGlobal != b.tbGlobal ||
                a.cu != b.cu || a.addr != b.addr || a.kind != b.kind)
                return false;
        }
        return true;
    }
};

/** The full decision trace of one schedule (record/replay unit). */
struct DecisionLog
{
    std::vector<ChoicePoint> points;

    bool
    operator==(const DecisionLog &other) const
    {
        return points == other.points;
    }
};

/**
 * Branch indices to force, consumed in encounter order at fanout>1
 * choice points. Records what was actually consumed so the driver
 * can name the schedule-tree node this run landed on.
 */
class ChoiceScript
{
  public:
    ChoiceScript() = default;
    explicit ChoiceScript(std::vector<unsigned> forced)
        : _forced(std::move(forced))
    {}

    /**
     * Consume the next choice at a point with @p numOptions > 1
     * branches. Beyond the scripted prefix the default is branch 0.
     * A forced index out of range marks the replay diverged (the
     * tree the script was recorded against no longer matches) and
     * clamps — the driver must treat a diverged run as a hard error.
     */
    unsigned
    take(unsigned numOptions)
    {
        unsigned choice = 0;
        if (_next < _forced.size()) {
            choice = _forced[_next];
            if (choice >= numOptions) {
                _diverged = true;
                choice = numOptions - 1;
            }
        }
        ++_next;
        _consumed.push_back(choice);
        return choice;
    }

    /** Choices consumed so far (the run's schedule-tree path). */
    const std::vector<unsigned> &consumed() const { return _consumed; }

    /** Whether any forced index failed to match the live tree. */
    bool diverged() const { return _diverged; }

  private:
    std::vector<unsigned> _forced;
    std::vector<unsigned> _consumed;
    std::size_t _next = 0;
    bool _diverged = false;
};

} // namespace explore
} // namespace nosync

#endif // EXPLORE_DECISION_LOG_HH
