/**
 * @file
 * Litmus programs for the stateless model checker.
 *
 * Each program is a small, spin-free Workload whose interesting
 * behavior is a handful of memory operations racing through the
 * simulated protocol stack. Spin-freedom matters: a spinning consumer
 * makes the schedule space unbounded (every extra poll is a new
 * interleaving), so the classic shapes are recast with conditional
 * reads — e.g. message passing reads the data word only when the flag
 * acquire actually observed the publication.
 *
 * A LitmusWorkload extends Workload with the verdict interface the
 * explorer checks on every terminal state: the observed outcome
 * string, the set of outcomes the configuration's consistency model
 * allows, and whether the program must flag a scope race (the
 * mis-scoped message-passing program does, exactly on the HRF
 * configurations).
 *
 * Each program additionally exposes its declarative twin — an
 * axiom::Program of the same memory operations with the same scope
 * annotations — so the axiomatic checker (src/axiom/) can compute the
 * allowed outcome set and race verdict without running the simulator,
 * and formatOutcome() renders the checker's final register state in
 * the exact string format outcome() produces, which is what makes the
 * two outcome sets directly comparable.
 */

#ifndef EXPLORE_LITMUS_HH
#define EXPLORE_LITMUS_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "axiom/program.hh"
#include "gpu/workload.hh"

namespace nosync
{
namespace explore
{

/** A litmus program: a workload plus its allowed-outcome oracle. */
class LitmusWorkload : public Workload
{
  public:
    /** Observed outcome of a completed run, e.g. "f=1 d=41". */
    virtual std::string outcome(WorkloadEnv &env) = 0;

    /** Whether @p outcome is permitted under @p proto. */
    virtual bool allowed(const std::string &outcome,
                         const ProtocolConfig &proto) const = 0;

    /**
     * Whether every schedule must flag a scope race under @p proto.
     * True only for deliberately mis-scoped programs on HRF configs.
     */
    virtual bool
    expectScopeRace(const ProtocolConfig &proto) const
    {
        (void)proto;
        return false;
    }

    /**
     * The program as a static operation list for the axiomatic
     * checker: same memory operations, same scope annotations, with
     * reads landing in numbered registers.
     */
    virtual axiom::Program axiomProgram() const = 0;

    /**
     * Render a final register state of axiomProgram() in the exact
     * format outcome() produces, so axiomatic and operational
     * outcome sets compare as plain string sets.
     */
    virtual std::string
    formatOutcome(const std::vector<std::uint32_t> &regs) const = 0;
};

/** Names of the litmus suite, in canonical order. */
const std::vector<std::string> &litmusSuite();

/** Build the named program; nullptr if @p name is unknown. */
std::unique_ptr<LitmusWorkload> makeLitmus(const std::string &name);

} // namespace explore
} // namespace nosync

#endif // EXPLORE_LITMUS_HH
