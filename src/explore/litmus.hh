/**
 * @file
 * Litmus programs for the stateless model checker.
 *
 * Each program is a small, spin-free Workload whose interesting
 * behavior is a handful of memory operations racing through the
 * simulated protocol stack. Spin-freedom matters: a spinning consumer
 * makes the schedule space unbounded (every extra poll is a new
 * interleaving), so the classic shapes are recast with conditional
 * reads — e.g. message passing reads the data word only when the flag
 * acquire actually observed the publication.
 *
 * A LitmusWorkload extends Workload with the verdict interface the
 * explorer checks on every terminal state: the observed outcome
 * string, the set of outcomes the configuration's consistency model
 * allows, and whether the program must flag a scope race (the
 * mis-scoped message-passing program does, exactly on the HRF
 * configurations).
 */

#ifndef EXPLORE_LITMUS_HH
#define EXPLORE_LITMUS_HH

#include <memory>
#include <string>
#include <vector>

#include "gpu/workload.hh"

namespace nosync
{
namespace explore
{

/** A litmus program: a workload plus its allowed-outcome oracle. */
class LitmusWorkload : public Workload
{
  public:
    /** Observed outcome of a completed run, e.g. "f=1 d=41". */
    virtual std::string outcome(WorkloadEnv &env) = 0;

    /** Whether @p outcome is permitted under @p proto. */
    virtual bool allowed(const std::string &outcome,
                         const ProtocolConfig &proto) const = 0;

    /**
     * Whether every schedule must flag a scope race under @p proto.
     * True only for deliberately mis-scoped programs on HRF configs.
     */
    virtual bool
    expectScopeRace(const ProtocolConfig &proto) const
    {
        (void)proto;
        return false;
    }
};

/** Names of the litmus suite, in canonical order. */
const std::vector<std::string> &litmusSuite();

/** Build the named program; nullptr if @p name is unknown. */
std::unique_ptr<LitmusWorkload> makeLitmus(const std::string &name);

} // namespace explore
} // namespace nosync

#endif // EXPLORE_LITMUS_HH
