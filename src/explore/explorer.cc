#include "explore/explorer.hh"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <map>
#include <set>
#include <sstream>
#include <unordered_map>

#include "core/system.hh"
#include "explore/decision_log.hh"
#include "explore/exploring_policy.hh"
#include "explore/exploring_scheduler.hh"
#include "explore/litmus.hh"
#include "runner/json_writer.hh"

namespace nosync
{
namespace explore
{
namespace
{

/** Everything the driver needs back from one simulated schedule. */
struct ScheduleRun
{
    std::vector<unsigned> consumed;
    DecisionLog log;
    bool diverged = false;

    bool hung = false;
    std::string hangCode;

    std::string outcome;
    bool outcomeAllowed = false;

    std::uint64_t raceFailures = 0;
    bool scopeOnly = false; ///< every unsuppressed race is RaceKind::Scope
    bool truncated = false;

    /** Non-race check failures (protocol invariant sweeps). */
    std::vector<std::string> otherFailures;
};

std::string
scriptStr(const std::vector<unsigned> &script)
{
    std::ostringstream os;
    os << "[";
    for (std::size_t i = 0; i < script.size(); ++i)
        os << (i ? " " : "") << script[i];
    os << "]";
    return os.str();
}

/** Replay @p script through a fresh System. */
ScheduleRun
runSchedule(const std::string &program, const ProtocolConfig &proto,
            const ExploreBudget &budget,
            const std::vector<unsigned> &script)
{
    auto workload = makeLitmus(program);

    SystemConfig config;
    config.protocol = proto;
    config.checking.raceCheckEnabled = true;
    config.execution.maxCycles = budget.maxCyclesPerSchedule;

    ChoiceScript choices(script);
    DecisionLog log;
    System system(config);
    ExploringScheduler sched(system.eventQueue(), choices, log);
    ExploringPolicy policy(choices, log, budget.deliverDepth);
    policy.attach(&system.mesh());
    system.setTbScheduler(&sched);
    system.setDeliveryPolicy(&policy);

    RunResult result = system.run(*workload);

    ScheduleRun run;
    run.consumed = choices.consumed();
    run.diverged = choices.diverged();
    run.log = std::move(log);

    if (result.hang.has_value()) {
        run.hung = true;
        run.hangCode = result.hang->reasonCode;
        return run;
    }

    run.outcome = workload->outcome(system);
    run.outcomeAllowed = workload->allowed(run.outcome, proto);

    run.raceFailures = result.races.failureCount();
    run.truncated = result.races.truncated;
    bool scope_only = !result.races.truncated;
    for (const analysis::RaceRecord &race : result.races.races) {
        if (!race.suppressed &&
            race.kind != analysis::RaceKind::Scope)
            scope_only = false;
    }
    run.scopeOnly = scope_only;

    // checkFailures is workload/protocol failures followed by the
    // race descriptions; races are accounted separately above, so
    // peel the trailing race lines off to isolate the rest.
    std::uint64_t described = 0;
    for (const analysis::RaceRecord &race : result.races.races)
        if (!race.suppressed)
            ++described;
    std::size_t race_lines = static_cast<std::size_t>(described) +
                             (run.raceFailures > described ? 1 : 0);
    if (result.checkFailures.size() > race_lines) {
        run.otherFailures.assign(result.checkFailures.begin(),
                                 result.checkFailures.end() -
                                     static_cast<std::ptrdiff_t>(
                                         race_lines));
    }
    return run;
}

/** Schedule-tree node: one fanout>1 choice point. */
struct Node
{
    ChoicePoint::Kind kind = ChoicePoint::Kind::TbIssue;
    unsigned numOptions = 0;
    std::set<unsigned> backtrack; ///< branches that must run
    std::set<unsigned> done;      ///< branches already run
};

using NodeMap = std::map<std::vector<unsigned>, Node>;

/** Dense per-(kernel, tb) thread id for the clock vectors. */
using TbKey = std::pair<unsigned, unsigned>;

bool
conflict(const TbOp &a, const TbOp &b)
{
    return a.addr == b.addr && (a.write() || b.write()) &&
           (a.kernel != b.kernel || a.tbGlobal != b.tbGlobal);
}

/**
 * Fold one run's TB-issue step sequence through the clock-vector
 * DPOR analysis and add the resulting backtrack points to @p nodes.
 *
 * The happens-before model mirrors the race detector's: program
 * order per thread block, plus release->acquire edges through each
 * sync word in the order the operations issued. Conservative in two
 * ways — a sync edge is assumed whenever an acquire-side op follows
 * a release-side op on the same word (more HB means fewer backtrack
 * points from *stale* conflicts, but every adjacent conflicting pair
 * still gets its flip because adjacent pairs are never HB-ordered),
 * and a conflicting thread block absent from the candidate list
 * falls back to backtracking every branch.
 */
void
addDporBacktracks(const ScheduleRun &run, NodeMap &nodes)
{
    struct Step
    {
        TbOp op;
        std::size_t pointIndex; ///< into run.log.points
        std::size_t scriptPos;  ///< consumed prefix length at point
        unsigned tid = 0;
        std::vector<std::uint32_t> clock;
    };

    std::vector<Step> steps;
    std::size_t script_pos = 0;
    for (std::size_t p = 0; p < run.log.points.size(); ++p) {
        const ChoicePoint &point = run.log.points[p];
        if (point.kind == ChoicePoint::Kind::TbIssue) {
            steps.push_back({point.candidates[point.chosen], p,
                             script_pos, 0, {}});
        }
        if (point.consumedScript)
            ++script_pos;
    }

    std::map<TbKey, unsigned> tids;
    for (Step &step : steps) {
        TbKey key{step.op.kernel, step.op.tbGlobal};
        auto [it, fresh] =
            tids.emplace(key, static_cast<unsigned>(tids.size()));
        (void)fresh;
        step.tid = it->second;
    }
    std::size_t num_tids = tids.size();

    auto join = [](std::vector<std::uint32_t> &into,
                   const std::vector<std::uint32_t> &from) {
        for (std::size_t i = 0; i < from.size(); ++i)
            into[i] = std::max(into[i], from[i]);
    };

    std::vector<std::vector<std::uint32_t>> clocks(
        num_tids, std::vector<std::uint32_t>(num_tids, 0));
    std::unordered_map<Addr, std::vector<std::uint32_t>> last_release;

    for (Step &step : steps) {
        std::vector<std::uint32_t> &mine = clocks[step.tid];
        ++mine[step.tid];
        // The concurrency test below must see this thread's clock
        // *before* this op's own acquire-join: the direct
        // release->acquire edge into this op is exactly the
        // dependency DPOR exists to flip, so it must not count as
        // the ops already being ordered (Flanagan-Godefroid use
        // C(p), the clock of the process prior to its transition).
        step.clock = mine;
        if (step.op.kind == TbOpKind::AtomicLoad ||
            step.op.kind == TbOpKind::AtomicRmw) {
            auto it = last_release.find(step.op.addr);
            if (it != last_release.end())
                join(mine, it->second);
        }
        if (step.op.kind == TbOpKind::AtomicStore ||
            step.op.kind == TbOpKind::AtomicRmw) {
            last_release[step.op.addr] = mine;
        }
    }

    for (std::size_t j = 1; j < steps.size(); ++j) {
        for (std::size_t i = 0; i < j; ++i) {
            const Step &earlier = steps[i];
            const Step &later = steps[j];
            if (!conflict(earlier.op, later.op))
                continue;
            // HB-ordered pairs commute with everything between them;
            // only concurrent conflicts need their order flipped.
            if (later.clock[earlier.tid] >= earlier.clock[earlier.tid])
                continue;

            const ChoicePoint &point =
                run.log.points[earlier.pointIndex];
            if (point.numOptions <= 1)
                continue; // the later TB was not ready: no choice

            std::vector<unsigned> key(
                run.consumed.begin(),
                run.consumed.begin() +
                    static_cast<std::ptrdiff_t>(earlier.scriptPos));
            Node &node = nodes[key];

            bool found = false;
            for (unsigned c = 0; c < point.candidates.size(); ++c) {
                const TbOp &cand = point.candidates[c];
                if (cand.kernel == later.op.kernel &&
                    cand.tbGlobal == later.op.tbGlobal) {
                    node.backtrack.insert(c);
                    found = true;
                    break;
                }
            }
            if (!found) {
                // The conflicting TB was not yet ready here; the
                // sound fallback is to try every branch.
                for (unsigned c = 0; c < point.numOptions; ++c)
                    node.backtrack.insert(c);
            }
        }
    }
}

/** Per-outcome accumulator (map keeps outcomes sorted). */
struct OutcomeAcc
{
    std::uint64_t count = 0;
    bool allowed = false;
};

void
addViolation(CellReport &cell, const std::string &what)
{
    ++cell.violationsTotal;
    if (cell.violations.size() < CellReport::kMaxViolations)
        cell.violations.push_back(what);
}

/** Fold one finished schedule into the tree and the cell verdict. */
void
mergeRun(CellReport &cell, NodeMap &nodes,
         std::map<std::string, OutcomeAcc> &outcomes, bool dpor,
         const std::vector<unsigned> &script, const ScheduleRun &run)
{
    std::string sched = "schedule " + scriptStr(script);

    if (run.diverged) {
        addViolation(cell, sched + ": replay diverged (forced "
                                   "choice out of range)");
        return;
    }

    cell.choicePoints += run.log.points.size();
    cell.maxDepth =
        std::max<std::uint64_t>(cell.maxDepth, run.consumed.size());

    // Register every fanout>1 point this run passed through.
    std::size_t script_pos = 0;
    for (const ChoicePoint &point : run.log.points) {
        if (!point.consumedScript)
            continue;
        std::vector<unsigned> key(
            run.consumed.begin(),
            run.consumed.begin() +
                static_cast<std::ptrdiff_t>(script_pos));
        ++script_pos;

        Node &node = nodes[key];
        node.kind = point.kind;
        node.numOptions = point.numOptions;
        node.done.insert(point.chosen);
        node.backtrack.insert(point.chosen);
        if (point.kind == ChoicePoint::Kind::Delivery || !dpor) {
            // Delivery points are delay-bounded and few: enumerate
            // them fully. --no-dpor does the same for TB issue.
            for (unsigned c = 0; c < point.numOptions; ++c)
                node.backtrack.insert(c);
        }
    }

    if (run.hung) {
        addViolation(cell, sched + ": hang (" + run.hangCode + ")");
        return;
    }

    if (dpor)
        addDporBacktracks(run, nodes);

    OutcomeAcc &acc = outcomes[run.outcome];
    ++acc.count;
    acc.allowed = run.outcomeAllowed;
    if (!run.outcomeAllowed) {
        addViolation(cell, sched + ": forbidden outcome '" +
                               run.outcome + "'");
    }

    if (run.raceFailures == 0)
        ++cell.cleanSchedules;
    else
        ++cell.racySchedules;

    if (cell.expectScopeRace) {
        if (run.raceFailures == 0) {
            addViolation(cell,
                         sched + ": expected a scope race but the "
                                 "run was race-free");
        } else if (!run.scopeOnly) {
            addViolation(cell,
                         sched + ": expected only scope races but "
                                 "found data race(s)");
        }
    } else if (run.raceFailures != 0) {
        addViolation(cell, sched + ": " +
                               std::to_string(run.raceFailures) +
                               " unexpected race(s)");
    }
    if (run.truncated) {
        addViolation(cell, sched + ": race report truncated "
                                   "(raise --race-cap)");
    }

    for (const std::string &failure : run.otherFailures)
        addViolation(cell, sched + ": " + failure);
}

} // namespace

Explorer::Explorer(const ExploreBudget &budget, SweepRunner &runner)
    : _budget(budget), _runner(runner),
      _start(std::chrono::steady_clock::now())
{}

bool
Explorer::wallExpired() const
{
    if (_budget.maxWallSeconds <= 0.0)
        return false;
    std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - _start;
    return elapsed.count() >= _budget.maxWallSeconds;
}

CellReport
Explorer::exploreCell(const std::string &program,
                      const ProtocolConfig &proto)
{
    CellReport cell;
    cell.program = program;
    cell.config = proto.shortName();

    auto probe = makeLitmus(program);
    if (!probe) {
        cell.verdict = "fail";
        addViolation(cell, "unknown litmus program '" + program +
                               "'");
        return cell;
    }
    cell.expectScopeRace = probe->expectScopeRace(proto);

    NodeMap nodes;
    std::map<std::string, OutcomeAcc> outcomes;
    std::set<std::vector<unsigned>> seen;
    std::vector<std::vector<unsigned>> batch;
    bool exhausted = false;

    batch.push_back({});
    seen.insert({});

    while (!batch.empty()) {
        if (wallExpired()) {
            exhausted = true;
            break;
        }

        std::vector<ScheduleRun> results = _runner.map(
            batch.size(), [&](std::size_t i) {
                return runSchedule(program, proto, _budget,
                                   batch[i]);
            });
        for (std::size_t i = 0; i < results.size(); ++i) {
            mergeRun(cell, nodes, outcomes, _budget.dpor, batch[i],
                     results[i]);
        }
        cell.schedulesExplored += results.size();

        // Next wave: every registered-but-unexplored backtrack.
        // NodeMap order is deterministic, so the wave composition —
        // and with it the whole report — is independent of --jobs.
        batch.clear();
        for (const auto &[key, node] : nodes) {
            for (unsigned c : node.backtrack) {
                if (node.done.count(c))
                    continue;
                std::vector<unsigned> script = key;
                script.push_back(c);
                if (!seen.insert(script).second)
                    continue;
                if (cell.schedulesExplored + batch.size() >=
                    _budget.maxSchedules) {
                    exhausted = true;
                    break;
                }
                batch.push_back(std::move(script));
            }
            if (exhausted)
                break;
        }
        if (exhausted)
            break;
    }

    for (const auto &[key, node] : nodes) {
        (void)key;
        std::uint64_t required = node.backtrack.size();
        for (unsigned c : node.backtrack)
            if (!node.done.count(c))
                ++cell.frontierRemaining;
        cell.schedulesPruned += node.numOptions - required;
    }

    for (const auto &[outcome, acc] : outcomes)
        cell.outcomes.push_back({outcome, acc.count, acc.allowed});

    if (cell.violationsTotal != 0)
        cell.verdict = "fail";
    else if (exhausted || cell.frontierRemaining != 0)
        cell.verdict = "budget-exhausted";
    else
        cell.verdict = "pass";
    return cell;
}

std::uint64_t
ExploreReport::countVerdict(const char *verdict) const
{
    std::uint64_t n = 0;
    for (const CellReport &cell : cells)
        if (cell.verdict == verdict)
            ++n;
    return n;
}

bool
ExploreReport::allPass() const
{
    return countVerdict("pass") == cells.size();
}

int
ExploreReport::exitCode() const
{
    if (countVerdict("fail") != 0)
        return 1;
    if (countVerdict("budget-exhausted") != 0)
        return 3;
    return 0;
}

void
writeExploreJson(const ExploreReport &report, std::ostream &os)
{
    JsonWriter json(os);
    json.beginObject();
    json.key("schema_version").value(std::uint64_t{1});
    json.key("harness").value("litmus_explore");

    json.key("budget").beginObject();
    json.key("max_schedules").value(report.budget.maxSchedules);
    json.key("max_cycles_per_schedule")
        .value(static_cast<std::uint64_t>(
            report.budget.maxCyclesPerSchedule));
    json.key("deliver_depth").value(report.budget.deliverDepth);
    json.key("dpor").value(report.budget.dpor);
    json.endObject();

    json.key("summary").beginObject();
    json.key("cells").value(
        static_cast<std::uint64_t>(report.cells.size()));
    json.key("passed").value(report.countVerdict("pass"));
    json.key("failed").value(report.countVerdict("fail"));
    json.key("budget_exhausted")
        .value(report.countVerdict("budget-exhausted"));
    std::uint64_t total = 0;
    for (const CellReport &cell : report.cells)
        total += cell.schedulesExplored;
    json.key("schedules_explored").value(total);
    json.key("all_pass").value(report.allPass());
    json.endObject();

    json.key("cells").beginArray();
    for (const CellReport &cell : report.cells) {
        json.beginObject();
        json.key("program").value(cell.program);
        json.key("config").value(cell.config);
        json.key("verdict").value(cell.verdict);
        json.key("expect_scope_race").value(cell.expectScopeRace);
        json.key("schedules_explored").value(cell.schedulesExplored);
        json.key("schedules_pruned").value(cell.schedulesPruned);
        json.key("frontier_remaining").value(cell.frontierRemaining);
        json.key("choice_points").value(cell.choicePoints);
        json.key("max_depth").value(cell.maxDepth);
        json.key("clean_schedules").value(cell.cleanSchedules);
        json.key("racy_schedules").value(cell.racySchedules);
        json.key("outcomes").beginArray();
        for (const OutcomeCount &outcome : cell.outcomes) {
            json.beginObject();
            json.key("outcome").value(outcome.outcome);
            json.key("count").value(outcome.count);
            json.key("allowed").value(outcome.allowed);
            json.endObject();
        }
        json.endArray();
        json.key("violations").beginArray();
        for (const std::string &violation : cell.violations)
            json.value(violation);
        json.endArray();
        json.key("violations_total").value(cell.violationsTotal);
        json.endObject();
    }
    json.endArray();

    json.endObject();
    os << "\n";
}

bool
writeExploreJsonFile(const ExploreReport &report,
                     const std::string &path)
{
    std::ofstream os(path);
    if (!os) {
        std::perror(path.c_str());
        return false;
    }
    writeExploreJson(report, os);
    return os.good();
}

void
renderExploreReport(const ExploreReport &report, std::ostream &os)
{
    os << std::left << std::setw(11) << "program" << std::setw(7)
       << "config" << std::setw(18) << "verdict" << std::right
       << std::setw(10) << "explored" << std::setw(9) << "pruned"
       << std::setw(10) << "frontier" << std::setw(10) << "outcomes"
       << "\n";
    for (const CellReport &cell : report.cells) {
        os << std::left << std::setw(11) << cell.program
           << std::setw(7) << cell.config << std::setw(18)
           << cell.verdict << std::right << std::setw(10)
           << cell.schedulesExplored << std::setw(9)
           << cell.schedulesPruned << std::setw(10)
           << cell.frontierRemaining << std::setw(10)
           << cell.outcomes.size() << "\n";
        for (const OutcomeCount &outcome : cell.outcomes) {
            os << "    " << (outcome.allowed ? "ok " : "BAD")
               << " x" << outcome.count << "  " << outcome.outcome
               << "\n";
        }
        for (const std::string &violation : cell.violations)
            os << "    VIOLATION: " << violation << "\n";
        if (cell.violationsTotal > cell.violations.size()) {
            os << "    ... and "
               << cell.violationsTotal - cell.violations.size()
               << " more violation(s)\n";
        }
    }
}

} // namespace explore
} // namespace nosync
