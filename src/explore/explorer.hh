/**
 * @file
 * Stateless model checking driver: exhaustive schedule exploration of
 * the litmus suite with DPOR-style pruning.
 *
 * The explorer maintains a schedule tree per (program, config) cell.
 * A tree node is a fanout>1 choice point, identified by the
 * consumed-choice prefix that reaches it; running a schedule means
 * replaying a script (decision_log.hh) through a fresh System with
 * the ExploringScheduler and ExploringPolicy attached. After each run
 * the decision log is folded back into the tree:
 *
 *  - every visited node records its branching factor and the branch
 *    taken (the done set);
 *  - delivery nodes enumerate all branches (the delay-bounded space
 *    is small by construction);
 *  - TB-issue nodes get backtrack points from the classic
 *    Flanagan–Godefroid clock-vector analysis: for each pair of
 *    conflicting, concurrent operations the decision point of the
 *    earlier one must also try the branch that runs the later one's
 *    thread block first. Branches never added to a backtrack set are
 *    pruned — counted, not run.
 *
 * Unexplored (backtrack minus done) branches form the frontier; waves
 * of frontier schedules fan out through a SweepRunner and merge in
 * job-index order, so reports are bitwise identical for any --jobs=N.
 *
 * Budgets degrade gracefully, never silently: a cell that exhausts
 * its schedule or wall budget reports verdict "budget-exhausted" with
 * the explored/pruned/remaining-frontier coverage counts, and the
 * harness exits with a distinct code (3).
 */

#ifndef EXPLORE_EXPLORER_HH
#define EXPLORE_EXPLORER_HH

#include <chrono>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "coherence/protocol.hh"
#include "runner/sweep_runner.hh"
#include "sim/types.hh"

namespace nosync
{
namespace explore
{

/** Exploration limits; every limit degrades to a coverage report. */
struct ExploreBudget
{
    /** Schedules to run per (program, config) cell. */
    std::uint64_t maxSchedules = 4096;

    /** Cycle watchdog per schedule (a wedged schedule is a verdict,
     * not a timeout). */
    Tick maxCyclesPerSchedule = 2000000;

    /** Delivery delays allowed per schedule (delay bounding). */
    unsigned deliverDepth = 1;

    /** DPOR pruning; false enumerates every branch (reference mode,
     * for auditing what pruning skipped). */
    bool dpor = true;

    /**
     * Wall-clock budget for the whole harness invocation, seconds;
     * 0 = unlimited. When it fires mid-cell the verdict degrades to
     * budget-exhausted, so a wall-limited report is NOT comparable
     * across machines — leave it 0 for the --jobs determinism check.
     */
    double maxWallSeconds = 0.0;
};

/** One terminal-state outcome and how often it was reached. */
struct OutcomeCount
{
    std::string outcome;
    std::uint64_t count = 0;
    bool allowed = false;
};

/** Exploration result of one (program, config) cell. */
struct CellReport
{
    std::string program;
    std::string config;
    std::string verdict; ///< "pass" | "fail" | "budget-exhausted"
    bool expectScopeRace = false;

    std::uint64_t schedulesExplored = 0;
    std::uint64_t schedulesPruned = 0;   ///< branches DPOR skipped
    std::uint64_t frontierRemaining = 0; ///< unexplored backtracks
    std::uint64_t choicePoints = 0;      ///< decisions, all runs
    std::uint64_t maxDepth = 0;          ///< deepest fanout>1 path

    std::uint64_t cleanSchedules = 0; ///< race-free terminal states
    std::uint64_t racySchedules = 0;  ///< terminal states with races

    /** Sorted by outcome string (deterministic). */
    std::vector<OutcomeCount> outcomes;

    /** First kMaxViolations violation descriptions. */
    std::vector<std::string> violations;
    std::uint64_t violationsTotal = 0;

    static constexpr std::size_t kMaxViolations = 32;
};

/** Full report of one harness invocation. */
struct ExploreReport
{
    ExploreBudget budget;
    std::vector<CellReport> cells;

    std::uint64_t countVerdict(const char *verdict) const;
    bool allPass() const;

    /** 0 all pass, 1 any fail, 3 any budget-exhausted. */
    int exitCode() const;
};

/** Runs cells; shares one wall budget across all of them. */
class Explorer
{
  public:
    Explorer(const ExploreBudget &budget, SweepRunner &runner);

    /** Exhaustively explore one (program, config) cell. */
    CellReport exploreCell(const std::string &program,
                           const ProtocolConfig &proto);

    const ExploreBudget &budget() const { return _budget; }

  private:
    bool wallExpired() const;

    ExploreBudget _budget;
    SweepRunner &_runner;
    std::chrono::steady_clock::time_point _start;
};

/**
 * Emit the schema_version-ed exploration report. Contains no
 * wall-clock, host, or job-count fields: reports from --jobs=N and
 * serial runs of the same exploration are byte-identical.
 */
void writeExploreJson(const ExploreReport &report, std::ostream &os);

/** writeExploreJson to @p path; false (with perror) on I/O failure. */
bool writeExploreJsonFile(const ExploreReport &report,
                          const std::string &path);

/** Render a human-readable per-cell summary table. */
void renderExploreReport(const ExploreReport &report,
                         std::ostream &os);

} // namespace explore
} // namespace nosync

#endif // EXPLORE_EXPLORER_HH
