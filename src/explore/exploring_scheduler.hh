/**
 * @file
 * TbScheduler that serializes thread-block issue under script control.
 *
 * Every ready operation is held instead of issuing inline; held
 * operations are released one at a time, at *decision points*, so the
 * issue order is a free choice the explorer enumerates. A decision
 * point is reached when the simulator goes idle: the event queue is
 * empty, or its earliest event is further than kIdleHorizon ticks
 * away (a thread block sleeping in a long wait() must not let the
 * ready operations of other blocks starve behind it — on hardware,
 * one CU napping does not stall another CU's issue). Until then a
 * per-tick watchdog event keeps watch, which also keeps the event
 * queue non-empty while operations are held, so a run with held
 * operations can never be misreported as a deadlock.
 *
 * At each decision the held operations are sorted by the total key
 * (kernel, tbGlobal) — a suspended coroutine holds at most one
 * operation, so the key is unique — the ChoiceScript picks the
 * candidate when there is more than one, the choice point is
 * recorded, and exactly that operation issues. The released
 * operation's protocol activity then runs to the next idle point
 * before the following decision, giving the classic stateless-model-
 * checking semantics: one thread-block step at a time, every
 * interleaving of steps reachable by script.
 */

#ifndef EXPLORE_EXPLORING_SCHEDULER_HH
#define EXPLORE_EXPLORING_SCHEDULER_HH

#include <algorithm>
#include <functional>
#include <utility>
#include <vector>

#include "explore/decision_log.hh"
#include "sim/event_queue.hh"
#include "sim/tb_scheduler.hh"

namespace nosync
{
namespace explore
{

/** Script-driven serialization of thread-block issue order. */
class ExploringScheduler : public TbScheduler
{
  public:
    /**
     * Queue gaps larger than this count as idle: protocol activity
     * schedules events a few (at most a few hundred) ticks out,
     * while the litmus programs' deliberate delays are tens of
     * thousands — a gap past this horizon means every in-flight
     * operation has drained and only sleeping thread blocks remain.
     */
    static constexpr Cycles kIdleHorizon = 1000;

    ExploringScheduler(EventQueue &eq, ChoiceScript &script,
                       DecisionLog &log)
        : _eq(eq), _script(script), _log(log)
    {}

    void
    issue(const TbOp &op, std::function<void()> go) override
    {
        _pending.push_back({op, std::move(go)});
        armWatchdog(_eq.now());
    }

    /** Total issue decisions taken (fanout 1 included). */
    std::uint64_t decisions() const { return _decisions; }

  private:
    struct Held
    {
        TbOp op;
        std::function<void()> go;
    };

    void
    armWatchdog(Tick when)
    {
        if (_armed)
            return;
        _armed = true;
        // Stats is the lowest same-tick priority: every operation
        // that becomes ready this tick lands in _pending, and all
        // protocol events run, before idleness is judged.
        _eq.schedule(when, [this] { tick(); }, EventPriority::Stats);
    }

    bool
    idle() const
    {
        return _eq.empty() ||
               _eq.nextEventTick() > _eq.now() + kIdleHorizon;
    }

    void
    tick()
    {
        _armed = false;
        if (_pending.empty())
            return;
        if (idle())
            decide();
        if (!_pending.empty())
            armWatchdog(_eq.now() + 1);
    }

    void
    decide()
    {
        std::sort(_pending.begin(), _pending.end(),
                  [](const Held &a, const Held &b) {
                      if (a.op.kernel != b.op.kernel)
                          return a.op.kernel < b.op.kernel;
                      return a.op.tbGlobal < b.op.tbGlobal;
                  });

        unsigned n = static_cast<unsigned>(_pending.size());
        unsigned choice = 0;
        bool consumed = false;
        if (n > 1) {
            choice = _script.take(n);
            consumed = true;
        }

        ChoicePoint point;
        point.kind = ChoicePoint::Kind::TbIssue;
        point.tick = _eq.now();
        point.numOptions = n;
        point.chosen = choice;
        point.consumedScript = consumed;
        point.candidates.reserve(n);
        for (const Held &held : _pending)
            point.candidates.push_back(held.op);
        _log.points.push_back(std::move(point));
        ++_decisions;

        Held chosen = std::move(_pending[choice]);
        _pending.erase(_pending.begin() +
                       static_cast<std::ptrdiff_t>(choice));
        chosen.go();
    }

    EventQueue &_eq;
    ChoiceScript &_script;
    DecisionLog &_log;
    std::vector<Held> _pending;
    bool _armed = false;
    std::uint64_t _decisions = 0;
};

} // namespace explore
} // namespace nosync

#endif // EXPLORE_EXPLORING_SCHEDULER_HH
