#include "explore/litmus.hh"

#include <sstream>

namespace nosync
{
namespace explore
{
namespace
{

/**
 * Common scaffolding: every program allocates each shared variable on
 * its own cache line and parks per-TB observations in private result
 * words (single writer, read back post-run via debugRead — no
 * conflicting accesses, so the results themselves never race).
 */
std::string
kv(const char *k, std::uint32_t v)
{
    std::ostringstream os;
    os << k << "=" << v;
    return os.str();
}

/**
 * Message-passing programs (mp, mp_dev, misscoped) share one static
 * shape: var 0 is the data word, var 1 the flag; register 0 receives
 * the flag value, register 1 the data value. Only the release scope,
 * the consumer's guard, and the consumer delay differ.
 */
axiom::Program
mpShape(const char *name, Scope release_scope, bool guarded,
        bool consumer_delay)
{
    axiom::Program prog;
    prog.name = name;
    prog.numVars = 2;
    prog.numRegs = 2;
    prog.varNames = {"data", "flag"};

    axiom::Thread producer;
    producer.ops = {axiom::store(0, 41),
                    axiom::atomicStore(1, 1, release_scope)};

    axiom::Thread consumer;
    if (consumer_delay)
        consumer.ops.push_back(axiom::delay());
    consumer.ops.push_back(axiom::atomicLoad(1, Scope::Global, 0));
    axiom::Op data_read = axiom::load(0, 1);
    if (guarded)
        data_read = axiom::onlyIf(data_read, 0, 1);
    consumer.ops.push_back(data_read);

    prog.threads = {producer, consumer};
    return prog;
}

/** Two-variable shape shared by sb and lb: regs r0 (TB0), r1 (TB1). */
axiom::Program
xyShape(const char *name, bool load_first)
{
    axiom::Program prog;
    prog.name = name;
    prog.numVars = 2;
    prog.numRegs = 2;
    prog.varNames = {"x", "y"};
    for (unsigned t = 0; t < 2; ++t) {
        unsigned mine = t == 0 ? 0u : 1u;
        unsigned other = 1u - mine;
        axiom::Thread thread;
        axiom::Op st = axiom::atomicStore(mine, 1, Scope::Global);
        axiom::Op ld = axiom::atomicLoad(other, Scope::Global,
                                         static_cast<int>(t));
        if (load_first)
            thread.ops = {ld, st};
        else
            thread.ops = {st, ld};
        prog.threads.push_back(thread);
    }
    return prog;
}

/**
 * Message passing (MP): producer stores data then releases a flag;
 * consumer acquires the flag and reads the data only if the flag was
 * observed set. Under every studied configuration the acquire orders
 * the data read after the store, so "f=1 d=0" is forbidden; "f=0"
 * (the acquire lost the race to the release) is always allowed.
 */
class MpLitmus : public LitmusWorkload
{
  public:
    std::string name() const override { return "mp"; }

    void
    init(WorkloadEnv &env) override
    {
        _data = env.alloc(kLineBytes);
        _flag = env.alloc(kLineBytes);
        _rf = env.alloc(kLineBytes);
        _rd = env.alloc(kLineBytes);
    }

    KernelInfo kernelInfo(unsigned) const override { return {2}; }

    SimTask
    tbMain(TbContext &ctx) override
    {
        if (ctx.tbGlobal() == 0) {
            co_await ctx.store(_data, 41);
            co_await ctx.atomic(
                ctx.atomicStore(_flag, 1, Scope::Global));
            co_return;
        }
        std::uint32_t f = co_await ctx.atomic(
            ctx.atomicLoad(_flag, Scope::Global));
        std::uint32_t d = 0;
        if (f == 1)
            d = co_await ctx.load(_data);
        co_await ctx.store(_rf, f);
        co_await ctx.store(_rd, d);
    }

    std::string
    outcome(WorkloadEnv &env) override
    {
        std::uint32_t f = env.debugRead(_rf);
        if (f == 0)
            return "f=0";
        return kv("f", f) + " " + kv("d", env.debugRead(_rd));
    }

    bool
    allowed(const std::string &outcome,
            const ProtocolConfig &) const override
    {
        return outcome == "f=0" || outcome == "f=1 d=41";
    }

    axiom::Program
    axiomProgram() const override
    {
        return mpShape("mp", Scope::Global, true, false);
    }

    std::string
    formatOutcome(
        const std::vector<std::uint32_t> &regs) const override
    {
        if (regs[0] == 0)
            return "f=0";
        return kv("f", regs[0]) + " " + kv("d", regs[1]);
    }

  private:
    Addr _data = 0, _flag = 0, _rf = 0, _rd = 0;
};

/**
 * Device-scoped message passing (mp_dev): the mp shape with the
 * release annotated Scope::Device. The litmus machine has one device,
 * so the Device tier folds into Global under every configuration —
 * the program is as well-synchronized as mp and allows the same
 * outcomes — but it drives the Device branch of both the dynamic
 * detector's reach rules and the checker's publication axiom. (The
 * genuinely multi-device Device-scope behavior is exercised purely
 * statically in tests/test_axiom.cc, where a 2-device geometry makes
 * the same release invisible across the link.)
 */
class MpDevLitmus : public LitmusWorkload
{
  public:
    std::string name() const override { return "mp_dev"; }

    void
    init(WorkloadEnv &env) override
    {
        _data = env.alloc(kLineBytes);
        _flag = env.alloc(kLineBytes);
        _rf = env.alloc(kLineBytes);
        _rd = env.alloc(kLineBytes);
    }

    KernelInfo kernelInfo(unsigned) const override { return {2}; }

    SimTask
    tbMain(TbContext &ctx) override
    {
        if (ctx.tbGlobal() == 0) {
            co_await ctx.store(_data, 41);
            co_await ctx.atomic(
                ctx.atomicStore(_flag, 1, Scope::Device));
            co_return;
        }
        std::uint32_t f = co_await ctx.atomic(
            ctx.atomicLoad(_flag, Scope::Device));
        std::uint32_t d = 0;
        if (f == 1)
            d = co_await ctx.load(_data);
        co_await ctx.store(_rf, f);
        co_await ctx.store(_rd, d);
    }

    std::string
    outcome(WorkloadEnv &env) override
    {
        std::uint32_t f = env.debugRead(_rf);
        if (f == 0)
            return "f=0";
        return kv("f", f) + " " + kv("d", env.debugRead(_rd));
    }

    bool
    allowed(const std::string &outcome,
            const ProtocolConfig &) const override
    {
        return outcome == "f=0" || outcome == "f=1 d=41";
    }

    axiom::Program
    axiomProgram() const override
    {
        axiom::Program prog =
            mpShape("mp_dev", Scope::Device, true, false);
        prog.threads[1].ops[0].scope = Scope::Device;
        return prog;
    }

    std::string
    formatOutcome(
        const std::vector<std::uint32_t> &regs) const override
    {
        if (regs[0] == 0)
            return "f=0";
        return kv("f", regs[0]) + " " + kv("d", regs[1]);
    }

  private:
    Addr _data = 0, _flag = 0, _rf = 0, _rd = 0;
};

/**
 * Store buffering (SB): each TB stores its own variable then loads
 * the other's. Atomics perform in program order at each word's
 * coherence point, which makes them sequentially consistent in this
 * simulator — both loads observing the initial value is forbidden.
 */
class SbLitmus : public LitmusWorkload
{
  public:
    std::string name() const override { return "sb"; }

    void
    init(WorkloadEnv &env) override
    {
        _x = env.alloc(kLineBytes);
        _y = env.alloc(kLineBytes);
        _r0 = env.alloc(kLineBytes);
        _r1 = env.alloc(kLineBytes);
    }

    KernelInfo kernelInfo(unsigned) const override { return {2}; }

    SimTask
    tbMain(TbContext &ctx) override
    {
        bool first = ctx.tbGlobal() == 0;
        Addr mine = first ? _x : _y;
        Addr other = first ? _y : _x;
        co_await ctx.atomic(ctx.atomicStore(mine, 1, Scope::Global));
        std::uint32_t v = co_await ctx.atomic(
            ctx.atomicLoad(other, Scope::Global));
        co_await ctx.store(first ? _r0 : _r1, v);
    }

    std::string
    outcome(WorkloadEnv &env) override
    {
        return kv("r0", env.debugRead(_r0)) + " " +
               kv("r1", env.debugRead(_r1));
    }

    bool
    allowed(const std::string &outcome,
            const ProtocolConfig &) const override
    {
        return outcome != "r0=0 r1=0";
    }

    axiom::Program
    axiomProgram() const override
    {
        return xyShape("sb", false);
    }

    std::string
    formatOutcome(
        const std::vector<std::uint32_t> &regs) const override
    {
        return kv("r0", regs[0]) + " " + kv("r1", regs[1]);
    }

  private:
    Addr _x = 0, _y = 0, _r0 = 0, _r1 = 0;
};

/**
 * Load buffering (LB): each TB loads the other's variable then
 * stores its own. Both loads observing the other's (program-order
 * later) store would need a causality cycle — forbidden everywhere.
 */
class LbLitmus : public LitmusWorkload
{
  public:
    std::string name() const override { return "lb"; }

    void
    init(WorkloadEnv &env) override
    {
        _x = env.alloc(kLineBytes);
        _y = env.alloc(kLineBytes);
        _r0 = env.alloc(kLineBytes);
        _r1 = env.alloc(kLineBytes);
    }

    KernelInfo kernelInfo(unsigned) const override { return {2}; }

    SimTask
    tbMain(TbContext &ctx) override
    {
        bool first = ctx.tbGlobal() == 0;
        Addr mine = first ? _x : _y;
        Addr other = first ? _y : _x;
        std::uint32_t v = co_await ctx.atomic(
            ctx.atomicLoad(other, Scope::Global));
        co_await ctx.atomic(ctx.atomicStore(mine, 1, Scope::Global));
        co_await ctx.store(first ? _r0 : _r1, v);
    }

    std::string
    outcome(WorkloadEnv &env) override
    {
        return kv("r0", env.debugRead(_r0)) + " " +
               kv("r1", env.debugRead(_r1));
    }

    bool
    allowed(const std::string &outcome,
            const ProtocolConfig &) const override
    {
        return outcome != "r0=1 r1=1";
    }

    axiom::Program
    axiomProgram() const override
    {
        return xyShape("lb", true);
    }

    std::string
    formatOutcome(
        const std::vector<std::uint32_t> &regs) const override
    {
        return kv("r0", regs[0]) + " " + kv("r1", regs[1]);
    }

  private:
    Addr _x = 0, _y = 0, _r0 = 0, _r1 = 0;
};

/**
 * Independent reads of independent writes (IRIW): two writers, two
 * readers reading the two variables in opposite orders. The readers
 * disagreeing on the write order is forbidden — per-word coherence
 * points give the atomic stores a single global order.
 */
class IriwLitmus : public LitmusWorkload
{
  public:
    std::string name() const override { return "iriw"; }

    void
    init(WorkloadEnv &env) override
    {
        _x = env.alloc(kLineBytes);
        _y = env.alloc(kLineBytes);
        for (Addr &r : _r)
            r = env.alloc(kLineBytes);
    }

    KernelInfo kernelInfo(unsigned) const override { return {4}; }

    SimTask
    tbMain(TbContext &ctx) override
    {
        switch (ctx.tbGlobal()) {
          case 0:
            co_await ctx.atomic(
                ctx.atomicStore(_x, 1, Scope::Global));
            co_return;
          case 1:
            co_await ctx.atomic(
                ctx.atomicStore(_y, 1, Scope::Global));
            co_return;
          case 2: {
            std::uint32_t a = co_await ctx.atomic(
                ctx.atomicLoad(_x, Scope::Global));
            std::uint32_t b = co_await ctx.atomic(
                ctx.atomicLoad(_y, Scope::Global));
            co_await ctx.store(_r[0], a);
            co_await ctx.store(_r[1], b);
            co_return;
          }
          default: {
            std::uint32_t c = co_await ctx.atomic(
                ctx.atomicLoad(_y, Scope::Global));
            std::uint32_t d = co_await ctx.atomic(
                ctx.atomicLoad(_x, Scope::Global));
            co_await ctx.store(_r[2], c);
            co_await ctx.store(_r[3], d);
          }
        }
    }

    std::string
    outcome(WorkloadEnv &env) override
    {
        return kv("a", env.debugRead(_r[0])) + " " +
               kv("b", env.debugRead(_r[1])) + " " +
               kv("c", env.debugRead(_r[2])) + " " +
               kv("d", env.debugRead(_r[3]));
    }

    bool
    allowed(const std::string &outcome,
            const ProtocolConfig &) const override
    {
        return outcome != "a=1 b=0 c=1 d=0";
    }

    axiom::Program
    axiomProgram() const override
    {
        axiom::Program prog;
        prog.name = "iriw";
        prog.numVars = 2;
        prog.numRegs = 4;
        prog.varNames = {"x", "y"};
        axiom::Thread wx, wy, rxy, ryx;
        wx.ops = {axiom::atomicStore(0, 1, Scope::Global)};
        wy.ops = {axiom::atomicStore(1, 1, Scope::Global)};
        rxy.ops = {axiom::atomicLoad(0, Scope::Global, 0),
                   axiom::atomicLoad(1, Scope::Global, 1)};
        ryx.ops = {axiom::atomicLoad(1, Scope::Global, 2),
                   axiom::atomicLoad(0, Scope::Global, 3)};
        prog.threads = {wx, wy, rxy, ryx};
        return prog;
    }

    std::string
    formatOutcome(
        const std::vector<std::uint32_t> &regs) const override
    {
        return kv("a", regs[0]) + " " + kv("b", regs[1]) + " " +
               kv("c", regs[2]) + " " + kv("d", regs[3]);
    }

  private:
    Addr _x = 0, _y = 0;
    Addr _r[4] = {0, 0, 0, 0};
};

/**
 * The examples/misscoped_race.cpp shape: the producer releases the
 * flag with *local* scope but the consumer acquires globally from
 * another CU. On HRF configurations (GH/DH) the local release stops
 * at the producer's L1 — every schedule must flag a scope race, and
 * any outcome is permitted (the program is racy by construction; on
 * GH even the flag value itself may never reach the L2). On DRF
 * configurations the same annotations are sound: every sync is
 * globally effective, the long consumer delay puts the publication
 * far in the past, and the only allowed outcome is the clean one.
 */
class MisscopedLitmus : public LitmusWorkload
{
  public:
    std::string name() const override { return "misscoped"; }

    void
    init(WorkloadEnv &env) override
    {
        _data = env.alloc(kLineBytes);
        _flag = env.alloc(kLineBytes);
        _rf = env.alloc(kLineBytes);
        _rd = env.alloc(kLineBytes);
    }

    KernelInfo kernelInfo(unsigned) const override { return {2}; }

    SimTask
    tbMain(TbContext &ctx) override
    {
        if (ctx.tbGlobal() == 0) {
            co_await ctx.store(_data, 41);
            // BUG: Scope::Local, but the consumer is on another CU.
            co_await ctx.atomic(
                ctx.atomicStore(_flag, 1, Scope::Local));
            co_return;
        }
        // The delay dominates every bounded perturbation the
        // explorer can apply, so the temporal order is fixed — what
        // varies across configurations is whether the local release
        // made the publication *visible* and *ordered*.
        co_await ctx.wait(50000);
        std::uint32_t f = co_await ctx.atomic(
            ctx.atomicLoad(_flag, Scope::Global));
        std::uint32_t d = co_await ctx.load(_data);
        co_await ctx.store(_rf, f);
        co_await ctx.store(_rd, d);
    }

    std::string
    outcome(WorkloadEnv &env) override
    {
        return kv("f", env.debugRead(_rf)) + " " +
               kv("d", env.debugRead(_rd));
    }

    bool
    allowed(const std::string &outcome,
            const ProtocolConfig &proto) const override
    {
        if (proto.consistency == ConsistencyModel::Hrf) {
            // Racy program: any combination of stale/fresh values.
            return outcome == "f=0 d=0" || outcome == "f=0 d=41" ||
                   outcome == "f=1 d=0" || outcome == "f=1 d=41";
        }
        return outcome == "f=1 d=41";
    }

    bool
    expectScopeRace(const ProtocolConfig &proto) const override
    {
        return proto.consistency == ConsistencyModel::Hrf;
    }

    axiom::Program
    axiomProgram() const override
    {
        // Unguarded data read behind a Delay phase barrier: the
        // consumer always reads both words after the producer is
        // done, so what varies across models is visibility alone.
        return mpShape("misscoped", Scope::Local, false, true);
    }

    std::string
    formatOutcome(
        const std::vector<std::uint32_t> &regs) const override
    {
        return kv("f", regs[0]) + " " + kv("d", regs[1]);
    }

  private:
    Addr _data = 0, _flag = 0, _rf = 0, _rd = 0;
};

} // namespace

const std::vector<std::string> &
litmusSuite()
{
    static const std::vector<std::string> suite = {
        "mp", "mp_dev", "sb", "lb", "iriw", "misscoped"};
    return suite;
}

std::unique_ptr<LitmusWorkload>
makeLitmus(const std::string &name)
{
    if (name == "mp")
        return std::make_unique<MpLitmus>();
    if (name == "mp_dev")
        return std::make_unique<MpDevLitmus>();
    if (name == "sb")
        return std::make_unique<SbLitmus>();
    if (name == "lb")
        return std::make_unique<LbLitmus>();
    if (name == "iriw")
        return std::make_unique<IriwLitmus>();
    if (name == "misscoped")
        return std::make_unique<MisscopedLitmus>();
    return nullptr;
}

} // namespace explore
} // namespace nosync
