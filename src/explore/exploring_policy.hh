/**
 * @file
 * DeliveryPolicy that enumerates message delivery orders.
 *
 * The second choice axis of the model checker: at each mesh send, the
 * policy decides whether the message arrives at its nominal tick or
 * is delayed past a competing in-flight message. Branching is
 * contention-gated — a delivery point has fanout 2 only when another
 * in-flight message from a *different* source is bound for the same
 * destination with an arrival at or after this message's nominal
 * arrival (delaying past it flips the arrival order at the
 * destination; delaying with no competitor is equivalent to the
 * nominal schedule plus idle time and would only blow up the tree).
 *
 * Exploration is delay-bounded: at most `deliverDepth` delays per
 * run, the standard bounded technique for making delivery-order
 * spaces finite while still covering the reorderings that change
 * protocol behavior. Like the FaultInjector, the policy clamps every
 * chosen arrival to the same-(src,dst) FIFO floor so the mesh's
 * pairwise ordering invariant — which the coherence protocols rely
 * on — is preserved on every explored schedule.
 */

#ifndef EXPLORE_EXPLORING_POLICY_HH
#define EXPLORE_EXPLORING_POLICY_HH

#include <algorithm>
#include <cstdint>
#include <unordered_map>

#include "explore/decision_log.hh"
#include "noc/delivery_policy.hh"
#include "noc/mesh.hh"

namespace nosync
{
namespace explore
{

/** Script-driven, delay-bounded delivery-order enumeration. */
class ExploringPolicy : public DeliveryPolicy
{
  public:
    ExploringPolicy(ChoiceScript &script, DecisionLog &log,
                    unsigned deliverDepth)
        : _script(script), _log(log), _deliverDepth(deliverDepth)
    {}

    /** The mesh whose in-flight registry gates branching. */
    void attach(const Mesh *mesh) { _mesh = mesh; }

    Tick
    adjust(NodeId src, NodeId dst, Tick nominal) override
    {
        // A competitor is an undelivered message to the same
        // destination from another source that arrives at or after
        // this message's nominal tick; delaying just past the latest
        // competitor realizes the flipped arrival order.
        Tick latest = 0;
        bool competitor = false;
        if (_delaysUsed < _deliverDepth && _mesh != nullptr) {
            for (const InFlightMsg &m : _mesh->inFlightSnapshot()) {
                if (m.dst == dst && m.src != src &&
                    m.arrives >= nominal) {
                    competitor = true;
                    latest = std::max(latest, m.arrives);
                }
            }
        }

        unsigned n = competitor ? 2 : 1;
        unsigned choice = 0;
        bool consumed = false;
        if (n > 1) {
            choice = _script.take(n);
            consumed = true;
        }

        Tick arrival = nominal;
        if (choice == 1) {
            arrival = latest + 1;
            ++_delaysUsed;
        }

        // Same-pair FIFO floor (cf. FaultInjector::adjust): never
        // deliver before an earlier message on the same (src, dst)
        // pair.
        Tick &floor = _lastArrival[pairKey(src, dst)];
        arrival = std::max(arrival, floor);
        floor = arrival;

        ChoicePoint point;
        point.kind = ChoicePoint::Kind::Delivery;
        point.numOptions = n;
        point.chosen = choice;
        point.consumedScript = consumed;
        point.src = src;
        point.dst = dst;
        point.nominal = nominal;
        point.arrival = arrival;
        _log.points.push_back(std::move(point));

        return arrival;
    }

    /** Exploration never duplicates messages. */
    bool rollDuplicate() override { return false; }
    Cycles duplicateDelay() override { return 1; }

    /** Delay choices taken so far this run. */
    unsigned delaysUsed() const { return _delaysUsed; }

  private:
    static std::uint32_t
    pairKey(NodeId src, NodeId dst)
    {
        return (static_cast<std::uint32_t>(
                    static_cast<std::uint8_t>(src))
                << 8) |
               static_cast<std::uint8_t>(dst);
    }

    ChoiceScript &_script;
    DecisionLog &_log;
    const Mesh *_mesh = nullptr;
    unsigned _deliverDepth = 0;
    unsigned _delaysUsed = 0;
    std::unordered_map<std::uint32_t, Tick> _lastArrival;
};

} // namespace explore
} // namespace nosync

#endif // EXPLORE_EXPLORING_POLICY_HH
