/**
 * @file
 * Happens-before race detector for DRF/HRF workloads.
 *
 * A vector-clock engine that consumes the functional access stream at
 * the TbContext / L1 seams through the same single null-pointer-gated
 * hook pattern as trace::TraceSink: when race checking is disabled the
 * detector is never constructed and the entire instrumentation cost is
 * one null check per seam, so disabled runs stay bitwise identical.
 *
 * Threads are simulated thread blocks (one clock slot per TB instance
 * per kernel). Happens-before edges come from the paper's sync points:
 *
 *  - atomics: a release publishes the issuing TB's clock on the sync
 *    word; a later acquire on the same word (in coherence order — the
 *    hooks sit where the atomic functionally performs, so detector
 *    order IS coherence order) joins what was published;
 *  - TB barriers and mutexes (sync_primitives.hh) reduce to chains of
 *    such atomics and need no special handling;
 *  - kernel launch/drain: the implicit device-wide release/acquire of
 *    fence_policy.hh §2 — every TB of kernel k happens-before every
 *    TB of kernel k+1.
 *
 * Scope handling mirrors ProtocolConfig::effectiveScope. Under DRF
 * configurations (GD/DD/DD+RO) every sync is global and a conflicting
 * unordered pair is a plain DRF violation. Under HRF configurations
 * (GH/DH) a local-scope release only reaches acquires on the same CU
 * (the shared L1 is the visibility domain); the detector additionally
 * maintains a shadow "as-if-all-sync-were-global" clock, and a pair
 * that is ordered under the shadow but not under the scoped clocks is
 * reported as a *scope race* — conflicting cross-CU accesses ordered
 * only by local-scope synchronization, the exact bug class HRF
 * invites and the paper argues against.
 *
 * Multi-device machines insert a *device* scope between CU-local and
 * global: a device-scope release reaches acquires anywhere on the
 * same device but not across the inter-device link. The detector
 * keeps per-device published clocks (only when constructed with
 * devices > 1, so single-device runs stay bitwise identical) and the
 * same shadow-clock divergence reports cross-device pairs ordered
 * only by device-scope sync as scope races.
 */

#ifndef ANALYSIS_RACE_DETECTOR_HH
#define ANALYSIS_RACE_DETECTOR_HH

#include <cstdint>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "coherence/protocol.hh"
#include "sim/types.hh"

namespace nosync
{
namespace analysis
{

/** Slot value marking a SyncOp issued outside race checking. */
constexpr std::uint32_t kNoRaceSlot = 0xffffffffu;

/** What kind of access participated in a race. */
enum class AccessKind : std::uint8_t
{
    Load,        ///< data load (incl. coalesced loadMany)
    Store,       ///< data store (incl. coalesced storeMany)
    AtomicLoad,  ///< synchronization read
    AtomicStore, ///< synchronization write
    AtomicRmw,   ///< synchronization read-modify-write
};

/** Short human name of an access kind. */
const char *accessKindName(AccessKind kind);

/** Classification of an unordered conflicting pair. */
enum class RaceKind : std::uint8_t
{
    Data,  ///< no happens-before path at all (DRF violation)
    Scope, ///< ordered only by local-scope sync (HRF scope race)
};

/** Provenance of one side of a racing pair. */
struct RaceAccess
{
    unsigned kernel = 0;   ///< kernel launch index
    unsigned tb = 0;       ///< global thread-block index in the kernel
    unsigned cu = 0;       ///< compute unit the TB ran on
    Tick tick = 0;         ///< simulated tick the access was issued
    AccessKind kind = AccessKind::Load;

    bool sync() const { return kind != AccessKind::Load &&
                               kind != AccessKind::Store; }
};

/** One detected race: two conflicting, unordered accesses. */
struct RaceRecord
{
    RaceKind kind = RaceKind::Data;
    Addr addr = 0;       ///< conflicting word
    RaceAccess first;    ///< earlier access (coherence order)
    RaceAccess second;   ///< access that completed the race
    bool suppressed = false;
    std::string suppressReason;
};

/** Known-benign address range excluded from failure accounting. */
struct RaceSuppression
{
    Addr base = 0;
    Addr bytes = 0;
    std::string reason;
};

/** Everything a finished race-checked run reports. */
struct RaceReport
{
    bool enabled = false;
    std::string workload;
    std::string config;

    std::uint64_t dataAccesses = 0;  ///< data reads + writes checked
    std::uint64_t syncPerforms = 0;  ///< atomics observed performing
    std::uint64_t hbEdges = 0;       ///< release->acquire joins
    std::uint64_t wordsTracked = 0;  ///< distinct shadow words
    std::uint64_t racesDetected = 0; ///< unique racing pairs
    std::uint64_t racesSuppressed = 0;
    std::uint64_t recordsDropped = 0; ///< unique races past the cap

    /**
     * The record cap hit: some racing pairs are counted but carry no
     * detail record. A truncated report must not satisfy a
     * --require-clean gate even if every *carried* record is
     * suppressed — the dropped ones were never classified.
     */
    bool truncated = false;

    /** Detailed records, sorted by (second.tick, addr). */
    std::vector<RaceRecord> races;

    /** Races that count as failures (detected minus suppressed). */
    std::uint64_t
    failureCount() const
    {
        return racesDetected - racesSuppressed;
    }
};

/** One-line description of a race (checkFailures / table output). */
std::string describeRace(const RaceRecord &race);

/** Full allocator-style provenance report, HangReport-rendered. */
std::string renderRaceReport(const RaceReport &report);

/** Write @p report as machine-readable JSON (tools/validate_races.py
 *  schema-checks the emission). Returns false if @p path can't open. */
bool writeRaceJson(const RaceReport &report, const std::string &path);

/**
 * The happens-before engine. One instance per race-checked System;
 * every hook site holds a nullable pointer to it.
 */
class RaceDetector
{
  public:
    /** Default detailed-record cap before counting-only mode. */
    static constexpr std::size_t kMaxRecords = 128;

    /**
     * @p devices / @p cusPerDevice describe the machine topology for
     * device-scope handling; the defaults (single device) keep the
     * detector's state layout — and therefore its reports — bitwise
     * identical to pre-multi-device builds.
     */
    explicit RaceDetector(const ProtocolConfig &config,
                          unsigned devices = 1,
                          unsigned cusPerDevice = 0);

    /**
     * Override the detailed-record cap (--race-cap=N in the
     * harnesses). Races past the cap are still *counted* (and flip
     * RaceReport::truncated); only their detail records are dropped.
     */
    void
    setRecordCap(std::size_t cap)
    {
        _maxRecords = cap ? cap : kMaxRecords;
    }

    std::size_t recordCap() const { return _maxRecords; }

    // Thread-block lifecycle (GpuDevice) ------------------------------

    /**
     * A thread block of kernel @p kernel starts on @p cu. Returns the
     * TB's clock slot; the TbContext carries it on every access.
     */
    unsigned tbStarted(unsigned kernel, unsigned tb_global,
                       unsigned cu);

    /**
     * A kernel drained: the implicit global release/acquire pair at
     * the kernel boundary. Joins every listed slot's clock into the
     * device base clock inherited by the next kernel's TBs.
     */
    void tbFinished(unsigned slot);

    // PDES engine mode ------------------------------------------------

    /**
     * Give every domain a private staging lane: access-stream hooks
     * called during the engine's parallel phase append to their
     * domain's lane instead of mutating the vector-clock state;
     * drainStaged() replays the lanes at each window barrier in
     * canonical (tick, domain, deposit) order, which is the engine's
     * coherence order. TB lifecycle hooks (tbStarted/tbFinished) run
     * in coordinator context and stay direct.
     */
    void enableDomainStaging(unsigned domains);

    /** Replay and clear all staging lanes (window barrier). */
    void drainStaged();

    // Functional access stream (TbContext) ----------------------------

    /** Data load issued by @p slot at @p addr. */
    void dataRead(unsigned slot, Addr addr, Tick tick);

    /** Data store issued by @p slot at @p addr. */
    void dataWrite(unsigned slot, Addr addr, Tick tick);

    // Synchronization stream (L1/L2 perform sites) --------------------

    /**
     * An atomic functionally performed (applyAtomic ran). Called from
     * the coherence controllers at the point the operation takes its
     * place in coherence order; op.tb carries the issuing slot (ops
     * issued outside race checking carry kNoRaceSlot and are
     * ignored).
     */
    void syncPerformed(const SyncOp &op, Tick tick);

    // Reporting -------------------------------------------------------

    /** Install the workload's known-benign ranges (post-init). */
    void setSuppressions(std::vector<RaceSuppression> suppressions);

    /**
     * Sort records by (second.tick, addr), apply suppressions, and
     * build the final report. Deterministic for a given run, so
     * serial and --jobs=N sweeps render identical reports.
     */
    RaceReport finalize(const std::string &workload,
                        const std::string &config);

  private:
    /** Vector clock over TB slots (grows as kernels launch TBs). */
    using Clock = std::vector<std::uint32_t>;

    /** Compact record of one prior access to a shadow word. */
    struct Access
    {
        std::uint32_t slot = kNoRaceSlot;
        std::uint32_t clock = 0;    ///< C_slot[slot] at access time
        std::uint32_t drfClock = 0; ///< shadow all-global clock value
        Tick tick = 0;
        AccessKind kind = AccessKind::Load;
    };

    /** Per-word shadow state (FastTrack-style write + reader set). */
    struct ShadowWord
    {
        Access write;
        std::vector<Access> readers;
    };

    /** Per-TB clock state. */
    struct TbState
    {
        unsigned kernel = 0;
        unsigned tbGlobal = 0;
        unsigned cu = 0;
        unsigned device = 0; ///< device the CU belongs to
        Clock real; ///< scope-aware happens-before
        Clock drf;  ///< as-if-all-sync-were-global shadow (HRF only)
    };

    /** Per-sync-word published clocks. */
    struct SyncVar
    {
        Clock global;                ///< global-scope releases
        std::vector<Clock> perCu;    ///< any-scope releases, by CU
        /** Device-and-wider releases, by device (multi-device only). */
        std::vector<Clock> perDevice;
        Clock drf;                   ///< shadow: every release
    };

    /** One staged access-stream call (engine parallel phase). */
    struct StagedOp
    {
        static constexpr std::uint8_t kRead = 0;
        static constexpr std::uint8_t kWrite = 1;
        static constexpr std::uint8_t kSync = 2;

        std::uint8_t kind = kRead;
        std::uint32_t slot = 0;
        Addr addr = 0;
        Tick tick = 0;
        SyncOp op{}; ///< kSync only
    };

    /** Per-domain staging lane (engine mode). */
    struct alignas(64) StageLane
    {
        std::vector<StagedOp> ops;
    };

    /** Stage the call if inside a domain; false = apply directly. */
    bool stage(StagedOp op);

    void applyDataRead(unsigned slot, Addr addr, Tick tick);
    void applyDataWrite(unsigned slot, Addr addr, Tick tick);
    void applySyncPerformed(const SyncOp &op, Tick tick);

    static void join(Clock &into, const Clock &from);
    static std::uint32_t at(const Clock &clock, std::uint32_t slot);

    bool orderedReal(const Access &prev, const TbState &now) const;
    bool orderedDrf(const Access &prev, const TbState &now) const;

    Access makeAccess(const TbState &state, unsigned slot, Tick tick,
                      AccessKind kind) const;
    void report(Addr addr, const Access &prev, unsigned slot,
                Tick tick, AccessKind kind);
    void checkAndRecordRead(unsigned slot, Addr addr, Tick tick,
                            AccessKind kind);
    void checkAndRecordWrite(unsigned slot, Addr addr, Tick tick,
                             AccessKind kind);

    ProtocolConfig _config;
    bool _hrf;
    unsigned _cusPerDevice;
    /** Track per-device clocks at all (false on single-device). */
    bool _multiDevice;

    std::vector<TbState> _tbs;
    Clock _base;    ///< device clock: joined at kernel boundaries
    Clock _baseDrf;

    std::unordered_map<Addr, ShadowWord> _shadow;
    std::unordered_map<Addr, SyncVar> _syncVars;

    std::vector<StageLane> _stages;
    std::vector<StagedOp> _stageBuf;

    std::vector<RaceRecord> _races;
    std::set<std::tuple<Addr, std::uint32_t, std::uint32_t>> _seen;
    std::vector<RaceSuppression> _suppressions;

    std::size_t _maxRecords = kMaxRecords;
    std::uint64_t _dataAccesses = 0;
    std::uint64_t _syncPerforms = 0;
    std::uint64_t _hbEdges = 0;
    std::uint64_t _racesDetected = 0;
    std::uint64_t _recordsDropped = 0;
};

} // namespace analysis
} // namespace nosync

#endif // ANALYSIS_RACE_DETECTOR_HH
