#include "analysis/race_detector.hh"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "runner/json_writer.hh"
#include "sim/logging.hh"
#include "sim/pdes.hh"

namespace nosync
{
namespace analysis
{

const char *
accessKindName(AccessKind kind)
{
    switch (kind) {
      case AccessKind::Load: return "load";
      case AccessKind::Store: return "store";
      case AccessKind::AtomicLoad: return "atomic-load";
      case AccessKind::AtomicStore: return "atomic-store";
      case AccessKind::AtomicRmw: return "atomic-rmw";
    }
    return "?";
}

namespace
{

AccessKind
syncAccessKind(const SyncOp &op)
{
    switch (op.func) {
      case AtomicFunc::Load:
        return AccessKind::AtomicLoad;
      case AtomicFunc::Store:
        return AccessKind::AtomicStore;
      case AtomicFunc::FetchAdd:
      case AtomicFunc::Exchange:
      case AtomicFunc::CompareSwap:
        break;
    }
    return AccessKind::AtomicRmw;
}

bool
isWriteKind(AccessKind kind)
{
    return kind == AccessKind::Store ||
           kind == AccessKind::AtomicStore ||
           kind == AccessKind::AtomicRmw;
}

bool
isSyncKind(AccessKind kind)
{
    return kind != AccessKind::Load && kind != AccessKind::Store;
}

std::string
hexAddr(Addr addr)
{
    std::ostringstream os;
    os << "0x" << std::hex << addr;
    return os.str();
}

void
describeAccess(std::ostream &os, const RaceAccess &access)
{
    os << accessKindName(access.kind) << " by kernel "
       << access.kernel << " tb " << access.tb << " (cu " << access.cu
       << ") at tick " << access.tick;
}

} // namespace

// ---------------------------------------------------------------------
// Clock primitives
// ---------------------------------------------------------------------

RaceDetector::RaceDetector(const ProtocolConfig &config,
                           unsigned devices, unsigned cusPerDevice)
    : _config(config),
      _hrf(config.consistency == ConsistencyModel::Hrf),
      _cusPerDevice(cusPerDevice ? cusPerDevice : 1),
      _multiDevice(devices > 1)
{
}

void
RaceDetector::join(Clock &into, const Clock &from)
{
    if (from.size() > into.size())
        into.resize(from.size(), 0);
    for (std::size_t i = 0; i < from.size(); ++i)
        into[i] = std::max(into[i], from[i]);
}

std::uint32_t
RaceDetector::at(const Clock &clock, std::uint32_t slot)
{
    return slot < clock.size() ? clock[slot] : 0;
}

bool
RaceDetector::orderedReal(const Access &prev, const TbState &now) const
{
    return prev.clock <= at(now.real, prev.slot);
}

bool
RaceDetector::orderedDrf(const Access &prev, const TbState &now) const
{
    if (!_hrf)
        return orderedReal(prev, now);
    return prev.drfClock <= at(now.drf, prev.slot);
}

// ---------------------------------------------------------------------
// Thread-block lifecycle
// ---------------------------------------------------------------------

unsigned
RaceDetector::tbStarted(unsigned kernel, unsigned tb_global,
                        unsigned cu)
{
    unsigned slot = static_cast<unsigned>(_tbs.size());
    TbState state;
    state.kernel = kernel;
    state.tbGlobal = tb_global;
    state.cu = cu;
    state.device = cu / _cusPerDevice;
    // Inherit the device clock (everything before this kernel's
    // launch happens-before the TB), then open the TB's own epoch.
    state.real = _base;
    if (slot >= state.real.size())
        state.real.resize(slot + 1, 0);
    state.real[slot] = 1;
    if (_hrf) {
        state.drf = _baseDrf;
        if (slot >= state.drf.size())
            state.drf.resize(slot + 1, 0);
        state.drf[slot] = 1;
    }
    _tbs.push_back(std::move(state));
    return slot;
}

void
RaceDetector::tbFinished(unsigned slot)
{
    panic_if(slot >= _tbs.size(), "race slot out of range");
    join(_base, _tbs[slot].real);
    if (_hrf)
        join(_baseDrf, _tbs[slot].drf);
}

// ---------------------------------------------------------------------
// Race checks
// ---------------------------------------------------------------------

RaceDetector::Access
RaceDetector::makeAccess(const TbState &state, unsigned slot,
                         Tick tick, AccessKind kind) const
{
    Access access;
    access.slot = slot;
    access.clock = at(state.real, slot);
    access.drfClock = _hrf ? at(state.drf, slot) : access.clock;
    access.tick = tick;
    access.kind = kind;
    return access;
}

void
RaceDetector::report(Addr addr, const Access &prev, unsigned slot,
                     Tick tick, AccessKind kind)
{
    if (!_seen.emplace(addr, prev.slot, slot).second)
        return;
    ++_racesDetected;

    const TbState &first = _tbs[prev.slot];
    const TbState &second = _tbs[slot];

    RaceRecord record;
    record.addr = addr;
    record.kind = (_hrf && orderedDrf(prev, second)) ? RaceKind::Scope
                                                     : RaceKind::Data;
    record.first = {first.kernel, first.tbGlobal, first.cu, prev.tick,
                    prev.kind};
    record.second = {second.kernel, second.tbGlobal, second.cu, tick,
                     kind};
    for (const RaceSuppression &range : _suppressions) {
        if (addr >= range.base && addr < range.base + range.bytes) {
            record.suppressed = true;
            record.suppressReason = range.reason;
            break;
        }
    }
    if (_races.size() < _maxRecords)
        _races.push_back(std::move(record));
    else
        ++_recordsDropped;
}

void
RaceDetector::checkAndRecordRead(unsigned slot, Addr addr, Tick tick,
                                 AccessKind kind)
{
    ShadowWord &word = _shadow[addr];
    const TbState &state = _tbs[slot];

    const Access &write = word.write;
    if (write.slot != kNoRaceSlot && write.slot != slot &&
        !(isSyncKind(write.kind) && isSyncKind(kind)) &&
        !orderedReal(write, state)) {
        report(addr, write, slot, tick, kind);
    }

    Access access = makeAccess(state, slot, tick, kind);
    for (Access &reader : word.readers) {
        if (reader.slot == slot) {
            reader = access;
            return;
        }
    }
    word.readers.push_back(access);
}

void
RaceDetector::checkAndRecordWrite(unsigned slot, Addr addr, Tick tick,
                                  AccessKind kind)
{
    ShadowWord &word = _shadow[addr];
    const TbState &state = _tbs[slot];

    const Access &write = word.write;
    if (write.slot != kNoRaceSlot && write.slot != slot &&
        !(isSyncKind(write.kind) && isSyncKind(kind)) &&
        !orderedReal(write, state)) {
        report(addr, write, slot, tick, kind);
    }
    for (const Access &reader : word.readers) {
        if (reader.slot != slot &&
            !(isSyncKind(reader.kind) && isSyncKind(kind)) &&
            !orderedReal(reader, state)) {
            report(addr, reader, slot, tick, kind);
        }
    }

    word.write = makeAccess(state, slot, tick, kind);
    word.readers.clear();
}

bool
RaceDetector::stage(StagedOp op)
{
    if (_stages.empty())
        return false;
    const int d = PdesEngine::currentDomain();
    if (d < 0)
        return false;
    _stages[static_cast<unsigned>(d)].ops.push_back(std::move(op));
    return true;
}

void
RaceDetector::enableDomainStaging(unsigned domains)
{
    _stages = std::vector<StageLane>(domains);
}

void
RaceDetector::drainStaged()
{
    _stageBuf.clear();
    for (StageLane &lane : _stages) {
        for (StagedOp &op : lane.ops)
            _stageBuf.push_back(std::move(op));
        lane.ops.clear();
    }
    if (_stageBuf.empty())
        return;
    // Stable sort over the domain-major concatenation: same-tick ties
    // resolve by (domain, deposit order), independent of how domains
    // were packed onto workers.
    std::stable_sort(_stageBuf.begin(), _stageBuf.end(),
                     [](const StagedOp &a, const StagedOp &b) {
                         return a.tick < b.tick;
                     });
    for (const StagedOp &op : _stageBuf) {
        switch (op.kind) {
          case StagedOp::kRead:
            applyDataRead(op.slot, op.addr, op.tick);
            break;
          case StagedOp::kWrite:
            applyDataWrite(op.slot, op.addr, op.tick);
            break;
          default:
            applySyncPerformed(op.op, op.tick);
            break;
        }
    }
}

void
RaceDetector::dataRead(unsigned slot, Addr addr, Tick tick)
{
    if (stage(StagedOp{StagedOp::kRead, slot, addr, tick, SyncOp{}}))
        return;
    applyDataRead(slot, addr, tick);
}

void
RaceDetector::applyDataRead(unsigned slot, Addr addr, Tick tick)
{
    ++_dataAccesses;
    checkAndRecordRead(slot, addr, tick, AccessKind::Load);
}

void
RaceDetector::dataWrite(unsigned slot, Addr addr, Tick tick)
{
    if (stage(StagedOp{StagedOp::kWrite, slot, addr, tick, SyncOp{}}))
        return;
    applyDataWrite(slot, addr, tick);
}

void
RaceDetector::applyDataWrite(unsigned slot, Addr addr, Tick tick)
{
    ++_dataAccesses;
    checkAndRecordWrite(slot, addr, tick, AccessKind::Store);
}

// ---------------------------------------------------------------------
// Synchronization edges
// ---------------------------------------------------------------------

void
RaceDetector::syncPerformed(const SyncOp &op, Tick tick)
{
    if (stage(StagedOp{StagedOp::kSync, op.tb, op.addr, tick, op}))
        return;
    applySyncPerformed(op, tick);
}

void
RaceDetector::applySyncPerformed(const SyncOp &op, Tick tick)
{
    if (op.tb == kNoRaceSlot)
        return; // issued outside race checking (unit-test driving)
    panic_if(op.tb >= _tbs.size(), "sync op from unknown race slot");
    ++_syncPerforms;

    unsigned slot = op.tb;
    TbState &state = _tbs[slot];
    Scope scope = _config.effectiveScope(op.scope);

    SyncVar &var = _syncVars[op.addr];
    if (state.cu >= var.perCu.size())
        var.perCu.resize(state.cu + 1);
    if (_multiDevice && state.device >= var.perDevice.size())
        var.perDevice.resize(state.device + 1);

    // Scope hierarchy: on a single device, Device collapses into
    // Global (one device IS the whole machine); on multi-device
    // machines a Device-scope sync reaches its own device's per-device
    // publication but not the global one.
    bool reach_device = _multiDevice && scope != Scope::Local;
    bool reach_global = scope == Scope::Global ||
                        (!_multiDevice && scope == Scope::Device);

    // Acquire side first: the atomic observes every release that
    // performed before it in coherence order (these hooks sit at the
    // applyAtomic sites, so detector order is coherence order). A
    // local-scope acquire only reaches releases made visible through
    // this CU's L1; a device acquire additionally joins its device's
    // publication; a global acquire joins the global publication.
    if (op.isAcquire()) {
        if (!var.perCu[state.cu].empty()) {
            join(state.real, var.perCu[state.cu]);
            ++_hbEdges;
        }
        if (reach_device && !var.perDevice[state.device].empty()) {
            join(state.real, var.perDevice[state.device]);
            ++_hbEdges;
        }
        if (reach_global && !var.global.empty()) {
            join(state.real, var.global);
            ++_hbEdges;
        }
        if (_hrf && !var.drf.empty())
            join(state.drf, var.drf);
    }

    // The atomic is itself an access: a plain load/store racing a
    // sync access to the same word is a (mixed) data race; sync-sync
    // pairs are what synchronization is for and never race.
    AccessKind kind = syncAccessKind(op);
    if (isWriteKind(kind))
        checkAndRecordWrite(slot, op.addr, tick, kind);
    else
        checkAndRecordRead(slot, op.addr, tick, kind);

    // Release side: publish this TB's knowledge on the sync word. Any
    // release is visible to its own CU (shared L1); device-and-wider
    // releases reach the rest of the device; only global-scope
    // releases cross the inter-device link. The shadow clock treats
    // every release as global — divergence between the two is exactly
    // a scope race.
    if (op.isRelease()) {
        join(var.perCu[state.cu], state.real);
        if (reach_device)
            join(var.perDevice[state.device], state.real);
        if (reach_global)
            join(var.global, state.real);
        if (_hrf)
            join(var.drf, state.drf);
        // Open a fresh epoch: accesses after the release are not
        // covered by what was just published.
        state.real[slot] += 1;
        if (_hrf)
            state.drf[slot] += 1;
    }
}

// ---------------------------------------------------------------------
// Reporting
// ---------------------------------------------------------------------

void
RaceDetector::setSuppressions(
    std::vector<RaceSuppression> suppressions)
{
    _suppressions = std::move(suppressions);
}

RaceReport
RaceDetector::finalize(const std::string &workload,
                       const std::string &config)
{
    std::stable_sort(_races.begin(), _races.end(),
                     [](const RaceRecord &a, const RaceRecord &b) {
                         if (a.second.tick != b.second.tick)
                             return a.second.tick < b.second.tick;
                         return a.addr < b.addr;
                     });

    RaceReport report;
    report.enabled = true;
    report.workload = workload;
    report.config = config;
    report.dataAccesses = _dataAccesses;
    report.syncPerforms = _syncPerforms;
    report.hbEdges = _hbEdges;
    report.wordsTracked = _shadow.size();
    report.racesDetected = _racesDetected;
    report.recordsDropped = _recordsDropped;
    report.truncated = _recordsDropped != 0;
    report.races = std::move(_races);
    _races.clear();
    for (const RaceRecord &race : report.races) {
        if (race.suppressed)
            ++report.racesSuppressed;
    }
    return report;
}

std::string
describeRace(const RaceRecord &race)
{
    std::ostringstream os;
    os << (race.kind == RaceKind::Scope ? "scope race" : "data race")
       << " on " << hexAddr(race.addr) << ": ";
    describeAccess(os, race.first);
    os << " vs ";
    describeAccess(os, race.second);
    if (race.kind == RaceKind::Scope)
        os << " (ordered only by local-scope sync)";
    if (race.suppressed)
        os << " [suppressed: " << race.suppressReason << "]";
    return os.str();
}

std::string
renderRaceReport(const RaceReport &report)
{
    std::ostringstream os;
    os << "=== RACE REPORT: " << report.workload << " on "
       << report.config << " ===\n";
    os << "  " << report.racesDetected << " racing pair(s) ("
       << report.racesSuppressed << " suppressed) over "
       << report.dataAccesses << " data accesses, "
       << report.syncPerforms << " atomics, " << report.hbEdges
       << " HB edges, " << report.wordsTracked
       << " words tracked\n";
    std::size_t index = 0;
    for (const RaceRecord &race : report.races) {
        os << "  race " << ++index << ": "
           << (race.kind == RaceKind::Scope ? "scope race"
                                            : "data race")
           << " on " << hexAddr(race.addr);
        if (race.suppressed)
            os << " [suppressed: " << race.suppressReason << "]";
        os << "\n    first:  ";
        describeAccess(os, race.first);
        os << "\n    second: ";
        describeAccess(os, race.second);
        os << "\n";
    }
    if (report.recordsDropped != 0) {
        os << "  ... and " << report.recordsDropped
           << " more racing pair(s) past the record cap\n";
    }
    return os.str();
}

bool
writeRaceJson(const RaceReport &report, const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        return false;

    JsonWriter json(out);
    json.beginObject();
    json.key("schema_version").value(std::uint64_t{1});
    json.key("workload").value(report.workload);
    json.key("config").value(report.config);

    json.key("summary").beginObject();
    json.key("data_accesses").value(report.dataAccesses);
    json.key("sync_performs").value(report.syncPerforms);
    json.key("hb_edges").value(report.hbEdges);
    json.key("words_tracked").value(report.wordsTracked);
    json.key("races_detected").value(report.racesDetected);
    json.key("races_suppressed").value(report.racesSuppressed);
    json.key("records_dropped").value(report.recordsDropped);
    json.key("truncated").value(report.truncated);
    json.endObject();

    json.key("races").beginArray();
    for (const RaceRecord &race : report.races) {
        json.beginObject();
        json.key("kind").value(
            race.kind == RaceKind::Scope ? "scope" : "data");
        json.key("addr").value(hexAddr(race.addr));
        json.key("suppressed").value(race.suppressed);
        if (race.suppressed)
            json.key("suppress_reason").value(race.suppressReason);
        const RaceAccess *sides[2] = {&race.first, &race.second};
        const char *names[2] = {"first", "second"};
        for (int i = 0; i < 2; ++i) {
            json.key(names[i]).beginObject();
            json.key("kernel").value(sides[i]->kernel);
            json.key("tb").value(sides[i]->tb);
            json.key("cu").value(sides[i]->cu);
            json.key("tick").value(
                static_cast<std::uint64_t>(sides[i]->tick));
            json.key("access").value(accessKindName(sides[i]->kind));
            json.key("sync").value(sides[i]->sync());
            json.endObject();
        }
        json.endObject();
    }
    json.endArray();
    json.endObject();
    out << "\n";
    return static_cast<bool>(out);
}

} // namespace analysis
} // namespace nosync
