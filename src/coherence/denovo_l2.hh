/**
 * @file
 * DeNovo L2 bank: the registry.
 *
 * The shared L2's data banks double as the ownership registry: for
 * every word the bank either holds the up-to-date data (word state
 * Valid) or records which L1 owns it (word state Registered plus an
 * owner id stored in the data bank). There are no sharer lists and no
 * transient states; racy registrations are serialized in arrival order
 * and forwarded to the registered L1, forming DeNovoSync0's
 * distributed queue.
 */

#ifndef COHERENCE_DENOVO_L2_HH
#define COHERENCE_DENOVO_L2_HH

#include <deque>
#include <functional>
#include <vector>

#include "coherence/cache_timings.hh"
#include "coherence/l1_controller.hh"
#include "coherence/l2_controller.hh"
#include "coherence/protocol.hh"
#include "coherence/snapshot.hh"
#include "mem/cache_array.hh"
#include "mem/functional_mem.hh"
#include "mem/line_table.hh"
#include "mem/mshr.hh"
#include "noc/mesh.hh"

namespace nosync
{

class DenovoL1Cache;

/** Reply to a data read: words served from L2, and words the
 *  requestor itself still owns (e.g. a writeback raced the read). */
using ReadReply =
    std::function<void(WordMask l2_mask, const LineData &data,
                       WordMask self_mask)>;

/** Reply to a registration: words granted directly from the L2 (with
 *  current values, needed by sync registrations). Words not covered
 *  arrive later as ownership transfers from previous owners. */
using RegReply =
    std::function<void(WordMask direct_mask, const LineData &data)>;

/** One bank of the DeNovo registry. */
class DenovoL2Bank : public L2Controller
{
  public:
    DenovoL2Bank(const std::string &name, EventQueue &eq,
                 stats::StatSet &stats, EnergyModel &energy, Mesh &mesh,
                 NodeId node, FunctionalMem &memory,
                 const CacheGeometry &geom, const CacheTimings &timings,
                 trace::TraceSink *trace = nullptr);

    /** Wire the L1 caches (for protocol forwards). */
    void setL1s(std::vector<DenovoL1Cache *> l1s)
    {
        _l1s = std::move(l1s);
        _fwdScratch.assign(_l1s.size(), 0);
    }

    /**
     * Data read: replies with L2-valid words; forwards to owner L1s
     * for requested words registered elsewhere. @p req_epoch is the
     * requestor's opaque freshness token, passed through to owners.
     */
    void handleReadReq(Addr line_addr, WordMask mask, NodeId requestor,
                       std::uint64_t req_epoch, ReadReply reply);

    /**
     * Registration (ownership) request for the masked words; @p
     * is_sync distinguishes synchronization registrations (which need
     * the current value and count as atomic traffic).
     */
    void handleRegReq(Addr line_addr, WordMask mask, bool is_sync,
                      NodeId requestor, RegReply reply);

    /** Writeback of registered words on L1 eviction. */
    void handleWriteBack(Addr line_addr, WordMask mask,
                         const LineData &data, NodeId requestor,
                         DoneCallback ack);

    /**
     * DD+PR streaming-region write-through: the L1 never owned the
     * words, so the bank stores the data in place without any owner
     * change. A word meanwhile registered to an L1 (a program that
     * mixes sync or owned stores into a streaming region, i.e. racy
     * or mis-declared) keeps the registered copy authoritative and
     * the write-through is dropped as stale.
     */
    void handleStreamingWrite(Addr line_addr, WordMask mask,
                              const LineData &data, NodeId requestor,
                              DoneCallback ack);

    /** Ownership + data returned by an L1 during an L2 recall (or a
     *  sync-engine reclaim, which reuses the recall response path). */
    void handleRecallData(Addr line_addr, WordMask mask,
                          const LineData &data);

    /**
     * DD+SE memory-side sync engine: perform @p op at this bank and
     * reply with the returned value. If the sync word is registered
     * to an L1 (e.g. it was written as plain data by an earlier
     * kernel), the bank first reclaims it; queued sync ops on the
     * same word perform in arrival order once the word returns.
     */
    void handleSyncOp(const SyncOp &op, NodeId requestor,
                      ValueCallback reply);

    /** Test hooks. */
    std::uint32_t peekWord(Addr addr) override;
    NodeId ownerOf(Addr addr);

    // Diagnostics -----------------------------------------------------
    /** Structured view of outstanding transaction state. */
    ControllerSnapshot snapshot() const override;

    /**
     * Bank-local invariant sweep: every registry entry must point at
     * a live L1; @p quiesced additionally requires empty fetch MSHRs,
     * stall queues, and recalls. @return violations; empty if clean.
     */
    std::vector<std::string>
    checkInvariants(bool quiesced) const override;

    /** Invoke @p fn(word_addr, owner) for every registered word. */
    void forEachRegisteredWord(
        const std::function<void(Addr, NodeId)> &fn) const;

    /**
     * Test hook for checker regression tests: force a registry entry
     * (word state Registered, owner id), bypassing the protocol.
     * Installs a frame if the line is absent. NEVER call outside
     * tests.
     */
    void debugSetOwner(Addr addr, NodeId owner);

  private:
    void withLine(Addr line_addr, std::function<void(CacheLine &)> fn);
    void startFetch(Addr line_addr);
    void finishFetch(Addr line_addr);

    /** Begin recalling every registered word of @p victim. */
    void startRecall(CacheLine &victim);
    void finishRecall(Addr line_addr);

    /** Whether @p line_addr is currently being recalled. */
    bool recalling(Addr line_addr) const
    {
        return _recalls.contains(line_addr);
    }

    Mesh &_mesh;
    EnergyModel &_energy;
    FunctionalMem &_memory;
    CacheArray _array;
    CacheTimings _timings;
    std::vector<DenovoL1Cache *> _l1s;

    /**
     * Per-owner forwarding masks, indexed by NodeId. A flat array
     * rebuilt per request: requests group at most kWordsPerLine
     * owners, so zero-filling and scanning a few dozen entries beats
     * the node allocations of the std::map it replaces. Iterated in
     * ascending NodeId order, matching the old map order exactly.
     */
    std::vector<WordMask> _fwdScratch;

    /** Next tick the pipelined bank accepts an access. */
    Tick _bankFree = 0;

    struct FetchEntry
    {
        std::vector<std::function<void(CacheLine &)>> waiters;
        bool dramDone = false;
    };
    MshrTable<FetchEntry> _fetches;

    /**
     * Requests stalled on a full fetch MSHR, processed strictly in
     * arrival order: the protocol's writeback/registration races rely
     * on per-source FIFO processing, so the bank must not reorder.
     */
    std::deque<std::pair<Addr, std::function<void(CacheLine &)>>>
        _stalled;

    void withLineReady(Addr line_addr,
                       std::function<void(CacheLine &)> fn,
                       bool queued = false);
    void processStalled();

    struct RecallState
    {
        WordMask outstanding = 0;
        /** Requests that arrived for the victim line mid-recall. */
        std::vector<std::function<void()>> deferred;
        /** Fetches whose install waits on this recall. */
        std::vector<Addr> blockedFetches;
    };
    LineTable<RecallState> _recalls;

    /** Sync ops waiting for their word to be reclaimed (DD+SE). */
    struct PendingSync
    {
        SyncOp op;
        NodeId requestor = kNoNode;
        ValueCallback reply;
    };
    struct PendingSyncState
    {
        /** Words with a reclaim transfer request in flight. */
        WordMask requested = 0;
        std::deque<PendingSync> ops;
    };
    LineTable<PendingSyncState> _pendingSyncs;

    /** Perform @p op at the bank on a line holding its word. */
    void performEngineSync(CacheLine &line, const SyncOp &op,
                           NodeId requestor, ValueCallback reply);

    /** Reclaim @p bit of @p line (registered elsewhere) for a sync. */
    void issueSyncReclaim(CacheLine &line, Addr line_addr,
                          WordMask bit);

    /** Run queued sync ops whose words returned to the bank. */
    void servePendingSyncs(CacheLine &line, Addr line_addr);

    stats::Handle<stats::Scalar> _reads;
    stats::Handle<stats::Scalar> _registrations;
    stats::Handle<stats::Scalar> _syncRegistrations;
    stats::Handle<stats::Scalar> _forwards;
    stats::Handle<stats::Scalar> _writebacks;
    stats::Handle<stats::Scalar> _streamingWritesStat;
    stats::Handle<stats::Scalar> _staleWritebacks;
    stats::Handle<stats::Scalar> _recallsStat;
    stats::Handle<stats::Scalar> _dramFetches;
    stats::Handle<stats::Scalar> _dramWritebacks;
    /** Sync ops executed at this bank's sync engine (DD+SE). */
    stats::Handle<stats::Scalar> _engineSyncs;
};

} // namespace nosync

#endif // COHERENCE_DENOVO_L2_HH
