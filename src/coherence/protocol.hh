/**
 * @file
 * Protocol-level vocabulary shared by every coherence configuration:
 * protocol/consistency enums, synchronization scopes and semantics,
 * atomic operation descriptors, and the five studied configurations.
 */

#ifndef COHERENCE_PROTOCOL_HH
#define COHERENCE_PROTOCOL_HH

#include <cstdint>
#include <string>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace nosync
{

/** Coherence protocol family (Table 1's SW vs Hybrid rows). */
enum class CoherenceProtocol
{
    Gpu,    ///< conventional GPU: valid bits, writethrough, no ownership
    Denovo, ///< DeNovo: reader-initiated inval + ownership registration
};

/** Memory consistency model. */
enum class ConsistencyModel
{
    Drf, ///< data-race-free (no scopes)
    Hrf, ///< heterogeneous-race-free (HRF-Indirect, scoped sync)
};

/**
 * Synchronization scope annotation, ordered from narrowest to widest.
 * Under DRF the annotation is ignored and every synchronization
 * behaves as Global.
 */
enum class Scope
{
    Local,  ///< CU-local: thread blocks sharing one L1
    Device, ///< device-local: all CUs of the issuing device
    Global, ///< machine-wide: every device's CUs and CPUs
};

/** Ordering semantics of a synchronization access. */
enum class SyncSemantics
{
    Acquire,        ///< synchronization read
    Release,        ///< synchronization write
    AcquireRelease, ///< read-modify-write
};

/** Atomic function performed by a synchronization access. */
enum class AtomicFunc
{
    Load,        ///< sync load; returns current value
    Store,       ///< sync store; returns stored value
    FetchAdd,    ///< returns old value; word += operand
    Exchange,    ///< returns old value; word = operand
    CompareSwap, ///< returns old value; if old == compare, word = operand
};

/** A synchronization (atomic) access descriptor. */
struct SyncOp
{
    AtomicFunc func = AtomicFunc::Load;
    Addr addr = 0;
    std::uint32_t operand = 0;
    std::uint32_t compare = 0;
    Scope scope = Scope::Global;
    SyncSemantics sem = SyncSemantics::AcquireRelease;

    /**
     * Race-detector clock slot of the issuing thread block
     * (analysis::kNoRaceSlot when race checking is off or the op was
     * issued outside a TB, e.g. by a unit test driving a controller
     * directly). Carried on the descriptor so the coherence-side
     * perform sites can attribute the atomic without a lookup.
     */
    std::uint32_t tb = 0xffffffffu;

    bool
    isAcquire() const
    {
        return sem != SyncSemantics::Release;
    }

    bool
    isRelease() const
    {
        return sem != SyncSemantics::Acquire;
    }

    /** Whether the atomic can modify memory. */
    bool
    writes() const
    {
        return func != AtomicFunc::Load;
    }
};

/** Result of applying an atomic function. */
struct AtomicResult
{
    std::uint32_t newValue;  ///< value the word holds afterwards
    std::uint32_t returned;  ///< value returned to the program
    bool stored;             ///< whether the word actually changed
};

/** Functionally apply @p op to a word currently holding @p old_val. */
inline AtomicResult
applyAtomic(const SyncOp &op, std::uint32_t old_val)
{
    switch (op.func) {
      case AtomicFunc::Load:
        return {old_val, old_val, false};
      case AtomicFunc::Store:
        return {op.operand, op.operand, true};
      case AtomicFunc::FetchAdd:
        return {old_val + op.operand, old_val, true};
      case AtomicFunc::Exchange:
        return {op.operand, old_val, true};
      case AtomicFunc::CompareSwap:
        if (old_val == op.compare)
            return {op.operand, old_val, true};
        return {old_val, old_val, false};
    }
    panic("unreachable atomic func");
}

/** One of the five studied system configurations (Section 5.3). */
struct ProtocolConfig
{
    CoherenceProtocol protocol = CoherenceProtocol::Gpu;
    ConsistencyModel consistency = ConsistencyModel::Drf;
    /** DD+RO: selectively keep read-only-region words at acquires. */
    bool readOnlyRegions = false;

    /**
     * DD+PR: per-region protocol specialization. Regions the program
     * declares streaming bypass ownership registration — stores write
     * through to the home L2 bank, GPU-style — while everything else
     * keeps DeNovo registration and read-only regions keep the DD+RO
     * acquire exemption. One kernel thus runs owned data under DD and
     * frontier-style data under writethrough simultaneously. Implies
     * readOnlyRegions (the read-only policy is one of the selectable
     * per-region policies).
     */
    bool perRegionPolicy = false;

    /**
     * DeNovoSync read backoff (the paper mentions but does not
     * evaluate it, Section 3): a spinning synchronization read that
     * keeps observing an unchanged value delays its re-registration
     * exponentially, throttling read-read ownership ping-pong.
     */
    bool syncReadBackoff = false;

    /**
     * SynCron-style memory-side sync engine (DD+SE): non-CU-local
     * synchronization executes at the home L2 bank instead of
     * migrating ownership of the sync word to the issuing L1. The
     * data protocol is unchanged — only the sync path moves to the
     * memory side. Meaningful for the DeNovo protocol; GPU coherence
     * already performs remote atomics at the bank.
     */
    bool syncEngine = false;

    /** Effective scope of a sync access under this configuration. */
    Scope
    effectiveScope(Scope annotated) const
    {
        return consistency == ConsistencyModel::Hrf ? annotated
                                                    : Scope::Global;
    }

    /** Short name used throughout the paper (GD, GH, DD, DD+RO, DH)
     *  plus the sync-engine column (DD+SE). */
    std::string
    shortName() const
    {
        if (protocol == CoherenceProtocol::Gpu) {
            return consistency == ConsistencyModel::Hrf ? "GH" : "GD";
        }
        std::string name;
        if (consistency == ConsistencyModel::Hrf)
            name = "DH";
        else if (perRegionPolicy)
            name = "DD+PR";
        else
            name = readOnlyRegions ? "DD+RO" : "DD";
        if (syncEngine)
            name += "+SE";
        if (syncReadBackoff)
            name += "+BO";
        return name;
    }

    static ProtocolConfig
    gd()
    {
        return {CoherenceProtocol::Gpu, ConsistencyModel::Drf, false};
    }

    static ProtocolConfig
    gh()
    {
        return {CoherenceProtocol::Gpu, ConsistencyModel::Hrf, false};
    }

    static ProtocolConfig
    dd()
    {
        return {CoherenceProtocol::Denovo, ConsistencyModel::Drf,
                false};
    }

    static ProtocolConfig
    ddro()
    {
        return {CoherenceProtocol::Denovo, ConsistencyModel::Drf,
                true};
    }

    static ProtocolConfig
    dh()
    {
        return {CoherenceProtocol::Denovo, ConsistencyModel::Hrf,
                false};
    }

    /** DD with the DeNovoSync read-backoff extension. */
    static ProtocolConfig
    ddbo()
    {
        ProtocolConfig config = dd();
        config.syncReadBackoff = true;
        return config;
    }

    /** DD with the SynCron-style memory-side sync engine. */
    static ProtocolConfig
    ddse()
    {
        ProtocolConfig config = dd();
        config.syncEngine = true;
        return config;
    }

    /** DD with per-region protocol specialization (DD+PR). */
    static ProtocolConfig
    ddpr()
    {
        ProtocolConfig config = ddro();
        config.perRegionPolicy = true;
        return config;
    }
};

} // namespace nosync

#endif // COHERENCE_PROTOCOL_HH
