#include "coherence/gpu_l2.hh"

#include "analysis/race_detector.hh"
#include "trace/trace_sink.hh"

namespace nosync
{

GpuL2Bank::GpuL2Bank(const std::string &name, EventQueue &eq,
                     stats::StatSet &stats, EnergyModel &energy,
                     Mesh &mesh, NodeId node, FunctionalMem &memory,
                     const CacheGeometry &geom,
                     const CacheTimings &timings,
                     trace::TraceSink *trace)
    : L2Controller(name, eq, node, trace), _mesh(mesh),
      _energy(energy), _memory(memory),
      _array(geom.l2BankBytes, geom.l2Assoc), _timings(timings),
      _fetches(geom.l2MshrEntries),
      _reads(stats.registerScalar(name + ".reads",
                                  "read requests served")),
      _writethroughs(stats.registerScalar(
          name + ".writethroughs", "writethrough messages merged")),
      _atomics(stats.registerScalar(name + ".atomics",
                                    "atomics executed at this bank")),
      _dramFetches(stats.registerScalar(name + ".dram_fetches",
                                        "line fetches from memory")),
      _dramWritebacks(
          stats.registerScalar(name + ".dram_writebacks",
                               "dirty line writebacks to memory"))
{
}

CacheLine &
GpuL2Bank::installLine(Addr line_addr)
{
    CacheLine *victim = _array.findVictim(line_addr);
    if (victim->valid && victim->dirty) {
        // Dirty words go back to the functional backing store. DRAM
        // bandwidth is not a bottleneck in any studied workload, so
        // the writeback is not placed on the eviction's critical path.
        _memory.writeLineMasked(victim->addr, victim->data,
                                victim->dirty);
        ++_dramWritebacks;
    }
    _array.install(*victim, line_addr);
    victim->data = _memory.readLine(line_addr);
    return *victim;
}

void
GpuL2Bank::withLine(Addr line_addr, std::function<void(CacheLine &)> fn)
{
    line_addr = lineAlign(line_addr);
    _energy.l2Access();
    withLineReady(line_addr, std::move(fn));
}

void
GpuL2Bank::withLineReady(Addr line_addr,
                         std::function<void(CacheLine &)> fn,
                         bool queued)
{
    // Pipelined bank: one new access per l2CycleTime cycles.
    Tick start = std::max(curTick(), _bankFree);
    _bankFree = start + _timings.l2CycleTime;
    Cycles queue_delay = start - curTick();

    if (CacheLine *line = _array.lookup(line_addr)) {
        _array.touch(*line);
        // Re-resolve at fire time: a concurrent fetch may evict and
        // repurpose this frame during the access latency window.
        scheduleIn(queue_delay + _timings.l2Access,
                   [this, line_addr, fn = std::move(fn)]() mutable {
                       if (CacheLine *line = _array.lookup(line_addr)) {
                           fn(*line);
                           return;
                       }
                       withLineReady(line_addr, std::move(fn));
                   });
        return;
    }

    if (FetchEntry *entry = _fetches.find(line_addr)) {
        entry->waiters.push_back(std::move(fn));
        return;
    }

    if ((!queued && !_stalled.empty()) || _fetches.full()) {
        if (queued) {
            // Re-stall at the head to preserve arrival order.
            _stalled.emplace_front(line_addr, std::move(fn));
            return;
        }
        // All fetch MSHRs busy: stall in strict arrival order (the
        // protocols rely on per-source FIFO processing).
        _stalled.emplace_back(line_addr, std::move(fn));
        return;
    }

    FetchEntry &entry = _fetches.allocate(line_addr);
    entry.waiters.push_back(std::move(fn));
    ++_dramFetches;
    scheduleIn(_timings.l2Access + _timings.dramLatency,
               [this, line_addr] {
                   CacheLine &line = installLine(line_addr);
                   FetchEntry *entry = _fetches.find(line_addr);
                   panic_if(!entry, "L2 fetch entry vanished");
                   auto waiters = std::move(entry->waiters);
                   _fetches.deallocate(line_addr);
                   for (auto &waiter : waiters)
                       waiter(line);
                   processStalled();
               });
}

void
GpuL2Bank::processStalled()
{
    while (!_stalled.empty() && !_fetches.full()) {
        auto [line_addr, fn] = std::move(_stalled.front());
        _stalled.pop_front();
        withLineReady(line_addr, std::move(fn), true);
    }
}

void
GpuL2Bank::handleReadReq(Addr line_addr, NodeId requestor,
                         std::function<void(const LineData &)> reply)
{
    ++_reads;
    withLine(line_addr, [this, line_addr, requestor,
                         reply = std::move(reply)](CacheLine &line) {
        if (_trace) {
            _trace->record(curTick(), trace::Phase::L2ReadServe, _node,
                           line_addr, 0,
                           static_cast<std::uint16_t>(requestor));
        }
        LineData data = line.data;
        _mesh.send(_node, requestor, kLineFlits, TrafficClass::Read,
                   [reply, data] { reply(data); });
    });
}

void
GpuL2Bank::handleWriteThrough(Addr line_addr, WordMask mask,
                              const LineData &data, NodeId requestor,
                              DoneCallback ack)
{
    ++_writethroughs;
    withLine(line_addr,
             [this, line_addr, mask, data, requestor,
              ack = std::move(ack)](CacheLine &line) {
                 if (_trace) {
                     _trace->record(curTick(),
                                    trace::Phase::L2WriteThrough,
                                    _node, line_addr, 0, mask);
                 }
                 for (unsigned w = 0; w < kWordsPerLine; ++w) {
                     if (mask & (1u << w))
                         line.data[w] = data[w];
                 }
                 line.dirty |= mask;
                 _mesh.send(_node, requestor, kControlFlits,
                            TrafficClass::WriteBack, std::move(ack));
             });
}

void
GpuL2Bank::handleAtomic(const SyncOp &op, NodeId requestor,
                        ValueCallback reply)
{
    ++_atomics;
    _energy.atomicAlu();
    withLine(op.addr, [this, op, requestor,
                       reply = std::move(reply)](CacheLine &line) {
        if (_trace) {
            _trace->record(curTick(), trace::Phase::L2Atomic, _node,
                           op.addr, 0,
                           static_cast<std::uint16_t>(requestor));
        }
        unsigned w = wordInLine(op.addr);
        if (_races)
            _races->syncPerformed(op, curTick());
        AtomicResult res = applyAtomic(op, line.data[w]);
        if (res.stored) {
            line.data[w] = res.newValue;
            line.dirty |= static_cast<WordMask>(1u << w);
        }
        unsigned flits = flitsForWords(1);
        _mesh.send(_node, requestor, flits, TrafficClass::Atomic,
                   [reply, v = res.returned] { reply(v); });
    });
}

std::uint32_t
GpuL2Bank::peekWord(Addr addr)
{
    if (CacheLine *line = _array.lookup(lineAlign(addr)))
        return line->data[wordInLine(addr)];
    return _memory.readWord(addr);
}

ControllerSnapshot
GpuL2Bank::snapshot() const
{
    ControllerSnapshot snap;
    snap.name = name();
    snap.gauge("fetches", _fetches.size());
    snap.gauge("stalled", _stalled.size());
    _fetches.forEach([&](Addr line_addr, const FetchEntry &entry) {
        std::ostringstream os;
        os << "fetch line 0x" << std::hex << line_addr << std::dec
           << " waiters=" << entry.waiters.size();
        snap.detail.push_back(os.str());
    });
    return snap;
}

std::vector<std::string>
GpuL2Bank::checkInvariants(bool quiesced) const
{
    std::vector<std::string> out;
    _fetches.forEach([&](Addr line_addr, const FetchEntry &entry) {
        if (entry.waiters.empty()) {
            std::ostringstream os;
            os << name() << ": DRAM fetch of line 0x" << std::hex
               << line_addr << " with no waiters";
            out.push_back(os.str());
        }
    });
    if (quiesced) {
        ControllerSnapshot snap = snapshot();
        if (!snap.quiescent()) {
            out.push_back(name() + ": state leaked at quiesce: " +
                          snap.summary());
        }
    }
    return out;
}

} // namespace nosync
