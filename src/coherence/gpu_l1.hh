/**
 * @file
 * L1 controller for conventional GPU coherence (GD and GH configs).
 *
 * Reader-initiated invalidation, no ownership: data stores coalesce in
 * the store buffer and write through to the shared L2; acquires flash
 * self-invalidate the L1; globally scoped atomics execute at the L2.
 * Under HRF, locally scoped synchronization executes at the L1 on
 * per-word-dirty data and skips invalidations and drains, which is the
 * entire performance advantage of the GH configuration.
 */

#ifndef COHERENCE_GPU_L1_HH
#define COHERENCE_GPU_L1_HH

#include <deque>
#include <unordered_map>
#include <utility>
#include <vector>

#include "coherence/cache_timings.hh"
#include "coherence/gpu_l2.hh"
#include "coherence/l1_controller.hh"
#include "coherence/snapshot.hh"
#include "mem/cache_array.hh"
#include "mem/mshr.hh"
#include "mem/store_buffer.hh"

namespace nosync
{

/** GPU-coherence L1 data cache controller. */
class GpuL1Cache : public L1Controller
{
  public:
    GpuL1Cache(const std::string &name, EventQueue &eq,
               stats::StatSet &stats, EnergyModel &energy, Mesh &mesh,
               NodeId node, const ProtocolConfig &config,
               std::vector<GpuL2Bank *> banks,
               const CacheGeometry &geom, const CacheTimings &timings,
               trace::TraceSink *trace = nullptr);

    void load(Addr addr, ValueCallback cb) override;
    void store(Addr addr, std::uint32_t value, DoneCallback cb)
        override;
    void sync(const SyncOp &op, ValueCallback cb) override;
    void kernelBegin() override;
    void kernelEnd(DoneCallback cb) override;
    void drainWrites(Scope scope, DoneCallback cb) override;

    /** Test hook: whether the word is valid in the L1 array. */
    bool wordValid(Addr addr) const;
    /** Test hook: number of buffered stores. */
    std::size_t storeBufferSize() const { return _sb.size(); }

    // Diagnostics -----------------------------------------------------
    /** Structured view of outstanding transaction state. */
    ControllerSnapshot snapshot() const override;

    /**
     * Controller-local invariant sweep. @p quiesced additionally
     * requires every outstanding-state structure to be empty (leak
     * detection after the workload completed and the event queue
     * drained). @return violation descriptions; empty when clean.
     */
    std::vector<std::string>
    checkInvariants(bool quiesced) const override;

  private:
    /** A load waiting on a fill, with its acquire epoch at issue. */
    struct ReadTarget
    {
        Addr addr;
        ValueCallback cb;
        std::uint64_t epoch;
    };

    /**
     * Per-line outstanding read transaction.
     *
     * Fills carry the acquire epoch at which their request was sent;
     * a fill satisfies exactly the targets issued at or before that
     * epoch (older data may not be given to loads that followed a
     * newer acquire), and installs only if no acquire intervened.
     * This keeps flash invalidation precise per thread block instead
     * of starving every in-flight load on the CU.
     */
    struct ReadEntry
    {
        bool requestOutstanding = false;
        std::vector<ReadTarget> targets;
        /** HRF local atomics waiting for the line to arrive. */
        std::vector<std::pair<SyncOp, ValueCallback>> atomicTargets;
    };

    GpuL2Bank &homeBank(Addr addr);

    /** Issue the line fetch for an already-allocated MSHR entry. */
    void issueRead(Addr line_addr);
    void onFill(Addr line_addr, const LineData &data,
                std::uint64_t sent_epoch);

    /** Install a fetched line, evicting (and flushing) a victim. */
    CacheLine &installFill(Addr line_addr, const LineData &data);

    /** Flash self-invalidation (global acquire / kernel begin). */
    void flashInvalidate();

    /**
     * Lazily apply any flash invalidations this line missed: a line
     * whose epoch lags the controller's is swept, keeping only words
     * the protocol preserves (HRF: locally dirty words).
     */
    void refreshLine(CacheLine &line);

    /** Execute an atomic at this L1 (HRF local scope). */
    void performLocalAtomic(const SyncOp &op, ValueCallback cb);
    void applyLocalAtomic(CacheLine &line, const SyncOp &op,
                          ValueCallback cb);

    /** Execute an atomic at the home L2 bank (global scope). */
    void performRemoteAtomic(const SyncOp &op, ValueCallback cb);

    /** Post-drain / post-perform acquire step. */
    void finishSync(const SyncOp &op, Scope scope, std::uint32_t value,
                    ValueCallback cb);

    /** Send one writethrough group and track its ack. */
    void sendWriteThrough(Addr line_addr, WordMask mask,
                          const LineData &data);

    /** Collect L1-dirty words not covered by the store buffer. */
    std::vector<StoreBuffer::DrainGroup> collectDirtyWords();

    /** Start a full drain; cb fires when every ack returned. */
    void startDrain(DoneCallback cb);
    void maybeFinishDrains();

    /** Accept a store into the SB, draining on overflow. */
    void acceptStore(Addr addr, std::uint32_t value, DoneCallback cb);
    void serviceStallQueue();

    Mesh &_mesh;
    std::vector<GpuL2Bank *> _banks;
    CacheArray _array;
    StoreBuffer _sb;
    CacheTimings _timings;
    MshrTable<ReadEntry> _mshr;

    /** Outstanding writethrough acks (drains + evictions). */
    unsigned _pendingWtAcks = 0;
    std::vector<DoneCallback> _drainWaiters;

    /**
     * Values of writethroughs still in flight, keyed by word
     * address. A drained store leaves the SB before its data reaches
     * the L2; loads must keep seeing it (read-own-write), and fills
     * must not install the L2's stale copy over it.
     */
    struct PendingWt
    {
        std::uint32_t value;
        unsigned count;
    };
    std::unordered_map<Addr, PendingWt> _pendingWt;

    /** Whether a word's freshest copy is a local buffer (SB/WT). */
    bool bufferedValue(Addr addr, std::uint32_t &value) const;

    /** Stores stalled on a full store buffer. */
    struct StalledStore
    {
        Addr addr;
        std::uint32_t value;
        DoneCallback cb;
    };
    std::deque<StalledStore> _stalledStores;
    bool _overflowDrainActive = false;

    /** Current acquire epoch (lazy flash invalidation). */
    std::uint64_t _curEpoch = 0;
};

} // namespace nosync

#endif // COHERENCE_GPU_L1_HH
