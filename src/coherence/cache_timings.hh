/**
 * @file
 * Shared timing parameters for the cache hierarchy (Table 3).
 */

#ifndef COHERENCE_CACHE_TIMINGS_HH
#define COHERENCE_CACHE_TIMINGS_HH

#include "sim/types.hh"

namespace nosync
{

/** Latency knobs for L1/L2/DRAM (values are GPU cycles). */
struct CacheTimings
{
    /** L1 hit latency. */
    Cycles l1Hit = 1;
    /** L2 bank access (tag + data) latency. */
    Cycles l2Access = 29;
    /** DRAM access latency beyond the L2. */
    Cycles dramLatency = 160;
    /** Tag-side latency for protocol bookkeeping at L1. */
    Cycles l1Tag = 1;

    /**
     * L2 bank initiation interval: the bank is pipelined, accepting
     * a new access every l2CycleTime cycles. Contended atomics (e.g.
     * a spinning herd hitting one lock's home bank) queue here.
     */
    Cycles l2CycleTime = 4;

    /**
     * Latency of an atomic performed at the L1 (read-modify-write
     * through the atomic unit's pipeline). Also paces spin loops:
     * a thread block cannot retry a lock faster than this.
     */
    Cycles l1Atomic = 12;
};

/** Capacity knobs (Table 3). */
struct CacheGeometry
{
    std::size_t l1Bytes = 32 * 1024;
    unsigned l1Assoc = 8;
    /** Per-bank L2 capacity (4 MB total / 16 banks). */
    std::size_t l2BankBytes = 256 * 1024;
    unsigned l2Assoc = 16;
    std::size_t storeBufferEntries = 256;
    std::size_t l1MshrEntries = 64;
    std::size_t l2MshrEntries = 64;
};

} // namespace nosync

#endif // COHERENCE_CACHE_TIMINGS_HH
