#include "coherence/denovo_l1.hh"

#include <cstdlib>
#include <sstream>
#include <vector>

#include "analysis/race_detector.hh"
#include "trace/trace_sink.hh"

namespace nosync
{

/** DeNovoSync read-backoff bounds (cycles). */
constexpr Cycles kSyncBackoffBase = 32;
constexpr Cycles kSyncBackoffMax = 1024;

namespace
{

/** Debug tracing for addresses listed in NOSYNC_TRACE (hex, comma
 *  separated). Development aid; zero cost when unset. */
bool
traced(nosync::Addr addr)
{
    static const std::vector<nosync::Addr> addrs = [] {
        std::vector<nosync::Addr> out;
        if (const char *env = std::getenv("NOSYNC_TRACE")) {
            std::stringstream ss(env);
            std::string tok;
            while (std::getline(ss, tok, ','))
                out.push_back(std::stoull(tok, nullptr, 16));
        }
        return out;
    }();
    for (nosync::Addr a : addrs) {
        if (nosync::lineAlign(a) == nosync::lineAlign(addr))
            return true;
    }
    return false;
}

#define TRACEW(addr, ...)                                             \
    do {                                                              \
        if (traced(addr)) {                                           \
            std::ostringstream os_;                                   \
            os_ << curTick() << " " << name() << " ";                 \
            ((os_ << __VA_ARGS__));                                   \
            std::fprintf(stderr, "%s\n", os_.str().c_str());          \
        }                                                             \
    } while (0)

} // namespace

DenovoL1Cache::DenovoL1Cache(const std::string &name, EventQueue &eq,
                             stats::StatSet &stats, EnergyModel &energy,
                             Mesh &mesh, NodeId node,
                             const ProtocolConfig &config,
                             std::vector<DenovoL2Bank *> banks,
                             const RegionMap &regions,
                             const CacheGeometry &geom,
                             const CacheTimings &timings,
                             trace::TraceSink *trace)
    : L1Controller(name, eq, stats, energy, node, config, trace),
      _mesh(mesh), _banks(std::move(banks)), _regions(regions),
      _array(geom.l1Bytes, geom.l1Assoc),
      _sb(geom.storeBufferEntries), _timings(timings),
      _mshr(geom.l1MshrEntries),
      _remoteReadsServed(
          stats.registerScalar(name + ".remote_reads_served",
                               "reads served from this L1 for "
                               "remote CUs")),
      _ownershipTransfers(
          stats.registerScalar(name + ".ownership_transfers",
                               "words whose ownership this L1 "
                               "gave up")),
      _registrationsIssued(
          stats.registerScalar(name + ".registrations_issued",
                               "registration requests sent")),
      _syncCoalesced(
          stats.registerScalar(name + ".sync_coalesced",
                               "sync accesses coalesced into a "
                               "pending registration")),
      _streamingWrites(
          stats.registerScalar(name + ".streaming_writes",
                               "streaming-region write-throughs "
                               "sent (DD+PR)"))
{
    panic_if(_config.protocol != CoherenceProtocol::Denovo,
             "DenovoL1Cache built with a non-DeNovo protocol config");
}

DenovoL2Bank &
DenovoL1Cache::homeBank(Addr addr)
{
    std::size_t bank = (lineAlign(addr) / kLineBytes) % _banks.size();
    return *_banks[bank];
}

DenovoL1Cache::LineEntry &
DenovoL1Cache::entryFor(Addr line_addr)
{
    line_addr = lineAlign(line_addr);
    if (LineEntry *entry = _mshr.find(line_addr))
        return *entry;
    return _mshr.allocate(line_addr);
}

void
DenovoL1Cache::maybeFreeEntry(Addr line_addr)
{
    line_addr = lineAlign(line_addr);
    LineEntry *entry = _mshr.find(line_addr);
    if (entry && entry->idle())
        _mshr.deallocate(line_addr);
}

// ---------------------------------------------------------------------
// Frames and evictions
// ---------------------------------------------------------------------

CacheLine &
DenovoL1Cache::ensureFrame(Addr line_addr)
{
    line_addr = lineAlign(line_addr);
    if (CacheLine *line = _array.lookup(line_addr)) {
        refreshLine(*line);
        if (line->valid) {
            _array.touch(*line);
            return *line;
        }
        // The sweep emptied the frame: reinstall it below.
    }
    TRACEW(line_addr, "ensureFrame fresh install for 0x"
                          << std::hex << line_addr << std::dec);
    // Avoid evicting lines with in-flight protocol activity: their
    // MSHR state (sync chains, queued remote requests) refers to the
    // frame. With 8 ways and a handful of concurrently busy lines per
    // CU this always succeeds in practice; a violation would indicate
    // a protocol bug, so it panics rather than corrupting state.
    CacheLine *victim = _array.findVictimPreferring(
        line_addr, [this](const CacheLine &line) {
            return _mshr.find(line.addr) == nullptr;
        });
    if (victim->valid) {
        LineEntry *busy = _mshr.find(victim->addr);
        panic_if(busy && !(busy->syncQueue.empty() &&
                           busy->syncRunning == 0 &&
                           busy->remoteQueue.empty()),
                 "evicting a line with active synchronization state");
        evictFrame(*victim);
    }
    panic_if(victim->maskInState(WordState::Registered) != 0 &&
                 !victim->valid,
             "installing over an invalid frame that still holds "
             "registered words");
    _array.install(*victim, line_addr);
    victim->epoch = _curEpoch;
    if (_config.readOnlyRegions) {
        victim->readOnly = _regions.readOnlyMask(line_addr);
        victim->regionVersion = _regions.version();
    }
    return *victim;
}

void
DenovoL1Cache::evictFrame(CacheLine &victim)
{
    ++_stats.evictions;
    TRACEW(victim.addr, "evictFrame line=0x"
                            << std::hex << victim.addr << std::dec
                            << " regmask=0x" << std::hex
                            << victim.maskInState(
                                   WordState::Registered)
                            << std::dec);
    WordMask reg_mask = victim.maskInState(WordState::Registered);
    if (reg_mask == 0)
        return; // Valid words are dropped silently.

    // Registered words are the only up-to-date copy: write both data
    // and ownership back to the registry. The data stays snoopable in
    // the writeback buffer until the registry acknowledges, so
    // forwarded requests racing the writeback can still be served.
    for (unsigned w = 0; w < kWordsPerLine; ++w) {
        if (reg_mask & (1u << w)) {
            TRACEW(victim.addr + w * kWordBytes,
                   "evict wb word " << w << " val="
                                    << victim.data[w]);
        }
    }
    WbEntry &wb = _wbBuffer[victim.addr];
    wb.mask |= reg_mask;
    for (unsigned w = 0; w < kWordsPerLine; ++w) {
        if (reg_mask & (1u << w)) {
            wb.data[w] = victim.data[w];
            ++wb.refs[w];
        }
    }

    DenovoL2Bank &bank = homeBank(victim.addr);
    unsigned flits = flitsForWords(popcount(reg_mask));
    Addr line_addr = victim.addr;
    LineData data = victim.data;
    if (_trace) {
        _trace->record(curTick(), trace::Phase::L1WritebackIssue,
                       _node, line_addr, 0, reg_mask);
    }
    _mesh.send(_node, bank.node(), flits, TrafficClass::WriteBack,
               [this, &bank, line_addr, reg_mask, data] {
                   bank.handleWriteBack(
                       line_addr, reg_mask, data, _node,
                       [this, line_addr, reg_mask] {
                           WbEntry *wb = _wbBuffer.find(line_addr);
                           panic_if(!wb,
                                    "writeback ack without buffer "
                                    "entry");
                           for (unsigned w = 0; w < kWordsPerLine;
                                ++w) {
                               if (!(reg_mask & (1u << w)))
                                   continue;
                               if (--wb->refs[w] == 0) {
                                   wb->mask &= ~static_cast<WordMask>(
                                       1u << w);
                               }
                           }
                           if (wb->mask == 0)
                               _wbBuffer.erase(line_addr);
                           releaseHeldRegistrations(line_addr);
                       });
               });
}

void
DenovoL1Cache::releaseHeldRegistrations(Addr line_addr)
{
    LineEntry *entry = _mshr.find(line_addr);
    if (!entry || entry->regWaitingWb == 0)
        return;
    const WbEntry *wb = _wbBuffer.find(line_addr);
    WordMask still_buffered = wb ? wb->mask : 0;
    WordMask ready = entry->regWaitingWb &
                     static_cast<WordMask>(~still_buffered);
    if (ready == 0)
        return;
    entry->regWaitingWb &= ~ready;
    WordMask sync_mask = ready & entry->syncRegPending;
    WordMask data_mask = ready & entry->dataRegPending &
                         static_cast<WordMask>(~sync_mask);
    if (sync_mask != 0)
        issueRegistration(line_addr, sync_mask, true);
    if (data_mask != 0)
        issueRegistration(line_addr, data_mask, false);
}

// ---------------------------------------------------------------------
// Local value lookup
// ---------------------------------------------------------------------

bool
DenovoL1Cache::peekLocal(Addr addr, std::uint32_t &value)
{
    if (_sb.contains(addr)) {
        value = _sb.value(addr);
        return true;
    }
    unsigned w = wordInLine(addr);
    // A drained-but-unacknowledged store is newer than any cached
    // copy: it left the SB for the MSHR at the last release.
    if (const LineEntry *entry = _mshr.find(addr)) {
        if (entry->dataRegPending & (1u << w)) {
            value = entry->pendingStoreData[w];
            return true;
        }
    }
    if (CacheLine *line = _array.lookup(addr)) {
        refreshLine(*line);
        if (line->valid && line->wstate[w] != WordState::Invalid) {
            value = line->data[w];
            return true;
        }
    }
    const WbEntry *wb = _wbBuffer.find(addr);
    if (wb && (wb->mask & (1u << w))) {
        value = wb->data[w];
        return true;
    }
    return false;
}

// ---------------------------------------------------------------------
// Loads
// ---------------------------------------------------------------------

void
DenovoL1Cache::load(Addr addr, ValueCallback cb)
{
    std::uint32_t value;
    if (peekLocal(addr, value)) {
        TRACEW(addr, "load hit " << std::hex << addr << std::dec
                     << " = " << value);
        ++_stats.loadHits;
        _energy.l1Access();
        if (CacheLine *line = _array.lookup(addr))
            _array.touch(*line);
        scheduleIn(_timings.l1Hit,
                   [cb = std::move(cb), value] { cb(value); });
        return;
    }

    ++_stats.loadMisses;
    _energy.l1TagAccess();
    Addr line_addr = lineAlign(addr);
    WordMask bit = wordMaskOf(addr);
    LineEntry &entry = entryFor(line_addr);
    entry.readTargets.push_back({addr, std::move(cb), _curEpoch});

    // A pending registration of this word will install it; no network
    // read needed.
    if (bit & (entry.dataRegPending | entry.syncRegPending |
               entry.syncRunning)) {
        return;
    }
    if (!(bit & (entry.readPending | entry.readUnsent))) {
        // Coalesce same-cycle misses to one request per line.
        entry.readUnsent |= bit;
        if (!entry.readFlushScheduled) {
            entry.readFlushScheduled = true;
            scheduleIn(0, [this, line_addr] {
                flushUnsentReads(line_addr);
            });
        }
    }
}

void
DenovoL1Cache::flushUnsentReads(Addr line_addr)
{
    LineEntry *entry = _mshr.find(line_addr);
    if (!entry)
        return;
    entry->readFlushScheduled = false;
    WordMask mask = entry->readUnsent;
    entry->readUnsent = 0;
    if (mask == 0) {
        maybeFreeEntry(line_addr);
        return;
    }

    // Tags and data communication are at line granularity (sector
    // cache): widen the request to every word of the line this L1
    // does not already hold, so a serial scan over a remotely owned
    // line costs one forward, not one per word.
    mask = kFullLineMask;
    if (CacheLine *frame = _array.lookup(line_addr)) {
        refreshLine(*frame);
        if (frame->valid) {
            mask &= static_cast<WordMask>(
                ~(frame->maskInState(WordState::Valid) |
                  frame->maskInState(WordState::Registered)));
        }
    }

    // Words satisfied or owned meanwhile no longer need fetching.
    mask &= ~(entry->dataRegPending | entry->syncRegPending |
              entry->syncRunning | entry->readPending);
    if (mask == 0) {
        maybeFreeEntry(line_addr);
        return;
    }
    entry->readPending |= mask;
    issueRead(line_addr, mask);
}

void
DenovoL1Cache::issueRead(Addr line_addr, WordMask mask)
{
    if (_trace) {
        _trace->record(curTick(), trace::Phase::L1MissIssue, _node,
                       line_addr, 0, mask);
    }
    DenovoL2Bank &bank = homeBank(line_addr);
    std::uint64_t sent_epoch = _curEpoch;
    _mesh.send(_node, bank.node(), kControlFlits, TrafficClass::Read,
               [this, &bank, line_addr, mask, sent_epoch] {
                   bank.handleReadReq(
                       line_addr, mask, _node, sent_epoch,
                       [this, line_addr,
                        sent_epoch](WordMask l2_mask,
                                    const LineData &data,
                                    WordMask self_mask) {
                           onReadReply(line_addr, l2_mask, data,
                                       self_mask, sent_epoch);
                       });
               });
}

void
DenovoL1Cache::installReadData(Addr line_addr, WordMask mask,
                               const LineData &values,
                               std::uint64_t sent_epoch)
{
    if (mask == 0)
        return;
    if (sent_epoch != _curEpoch) {
        // An acquire intervened: only read-only-region words (exempt
        // from self-invalidation under DD+RO) may still install.
        if (!_config.readOnlyRegions)
            return;
        mask &= _regions.readOnlyMask(line_addr);
        if (mask == 0)
            return;
    }
    if (LineEntry *entry = _mshr.find(line_addr)) {
        // Never install over a word whose fresh value is still
        // pending locally (awaiting registration or a sync grant):
        // the reply carries the registry's stale copy.
        mask &= ~(entry->dataRegPending | entry->syncRegPending |
                  entry->syncRunning);
        if (mask == 0)
            return;
    }
    for (unsigned w = 0; w < kWordsPerLine; ++w) {
        // Likewise for words buffered in the SB: the local store is
        // newer than anything the registry can return.
        if ((mask & (1u << w)) &&
            _sb.contains(line_addr + w * kWordBytes)) {
            mask &= static_cast<WordMask>(~(1u << w));
        }
    }
    if (mask == 0)
        return;
    CacheLine &frame = ensureFrame(line_addr);
    for (unsigned w = 0; w < kWordsPerLine; ++w) {
        WordMask bit = static_cast<WordMask>(1u << w);
        if (!(mask & bit))
            continue;
        // Never downgrade a word this L1 registered meanwhile.
        if (frame.wstate[w] == WordState::Invalid) {
            TRACEW(line_addr + w * kWordBytes,
                   "install word " << w << " val=" << values[w]
                                   << " frame=" << (void *)&frame
                                   << " epoch=" << frame.epoch);
            frame.wstate[w] = WordState::Valid;
            frame.data[w] = values[w];
        }
    }
    _energy.l1Access();
}

void
DenovoL1Cache::onReadReply(Addr line_addr, WordMask l2_mask,
                           const LineData &data, WordMask self_mask,
                           std::uint64_t sent_epoch)
{
    LineEntry *entry = _mshr.find(line_addr);
    if (!entry)
        return; // transaction fully resolved by other means

    WordMask arrived = l2_mask | self_mask;
    entry->readPending &= ~arrived;

    installReadData(line_addr, l2_mask, data, sent_epoch);
    settleReads(line_addr, l2_mask, data, sent_epoch);
}

void
DenovoL1Cache::handleFwdData(Addr line_addr, WordMask mask,
                             const LineData &values,
                             std::uint64_t sent_epoch)
{
    LineEntry *entry = _mshr.find(line_addr);
    if (!entry)
        return;
    entry->readPending &= ~mask;

    installReadData(line_addr, mask, values, sent_epoch);
    settleReads(line_addr, mask, values, sent_epoch);
}

void
DenovoL1Cache::serveReadTargets(Addr line_addr)
{
    LineEntry *entry = _mshr.find(line_addr);
    if (!entry)
        return;
    // Collect first, invoke after: a resumed coroutine may issue new
    // loads that push into this very vector.
    std::vector<std::pair<std::uint32_t, ValueCallback>> ready;
    auto &targets = entry->readTargets;
    for (auto it = targets.begin(); it != targets.end();) {
        std::uint32_t value;
        if (peekLocal(it->addr, value)) {
            ready.emplace_back(value, std::move(it->cb));
            it = targets.erase(it);
        } else {
            ++it;
        }
    }
    for (auto &[value, cb] : ready)
        cb(value);
}

void
DenovoL1Cache::settleReads(Addr line_addr, WordMask reply_mask,
                           const LineData &reply_data,
                           std::uint64_t sent_epoch)
{
    LineEntry *entry = _mshr.find(line_addr);
    if (!entry)
        return;

    // Serve targets: locally readable words first, then words the
    // arriving reply can legally satisfy (the reply is as fresh as
    // its request's acquire epoch).
    std::vector<std::pair<std::uint32_t, ValueCallback>> ready;
    auto &targets = entry->readTargets;
    for (auto it = targets.begin(); it != targets.end();) {
        std::uint32_t value;
        unsigned w = wordInLine(it->addr);
        if (peekLocal(it->addr, value)) {
            ready.emplace_back(value, std::move(it->cb));
            it = targets.erase(it);
        } else if ((reply_mask & (1u << w)) &&
                   it->epoch <= sent_epoch) {
            ready.emplace_back(reply_data[w], std::move(it->cb));
            it = targets.erase(it);
        } else {
            ++it;
        }
    }
    for (auto &[value, cb] : ready)
        cb(value);

    // Re-find: the callbacks may have erased or mutated the entry.
    entry = _mshr.find(line_addr);
    if (!entry)
        return;

    // Targets issued after a newer acquire (or whose words were
    // self-invalidated) re-fetch.
    WordMask needed = 0;
    for (const auto &target : entry->readTargets)
        needed |= wordMaskOf(target.addr);
    needed &= ~(entry->dataRegPending | entry->syncRegPending |
                entry->syncRunning | entry->readPending |
                entry->readUnsent);
    if (needed != 0) {
        entry->readUnsent |= needed;
        if (!entry->readFlushScheduled) {
            entry->readFlushScheduled = true;
            scheduleIn(0, [this, line_addr] {
                flushUnsentReads(line_addr);
            });
        }
    }
    maybeFreeEntry(line_addr);
}

// ---------------------------------------------------------------------
// Stores
// ---------------------------------------------------------------------

void
DenovoL1Cache::store(Addr addr, std::uint32_t value, DoneCallback cb)
{
    // Owned words complete in the L1 without touching the store
    // buffer: the key DeNovo write-reuse benefit.
    unsigned w = wordInLine(addr);
    if (CacheLine *line = _array.lookup(addr)) {
        if (line->wstate[w] == WordState::Registered) {
            TRACEW(addr, "store reg-hit " << std::hex << addr
                         << std::dec << " = " << value);
            ++_stats.storeHits;
            _energy.l1Access();
            line->data[w] = value;
            // An SB entry from before the word was registered is
            // now stale: the frame is the authoritative copy.
            _sb.erase(addr);
            _array.touch(*line);
            scheduleIn(_timings.l1Hit, std::move(cb));
            return;
        }
    }

    if (!_stalledStores.empty() ||
        (_sb.full() && !_sb.contains(addr))) {
        _stalledStores.push_back({addr, value, std::move(cb)});
        if (!_overflowDrainActive) {
            _overflowDrainActive = true;
            ++_stats.sbOverflowDrains;
            startDrain([this] {
                _overflowDrainActive = false;
                serviceStallQueue();
            });
        }
        return;
    }
    acceptStore(addr, value, std::move(cb));
}

void
DenovoL1Cache::acceptStore(Addr addr, std::uint32_t value,
                           DoneCallback cb)
{
    TRACEW(addr, "store sb " << std::hex << addr << std::dec
                 << " = " << value);
    _energy.l1Access();
    ++_stats.storeBuffered;
    if (_sb.insert(addr, value))
        ++_stats.storeCoalesced;
    if (CacheLine *line = _array.lookup(addr)) {
        refreshLine(*line);
        unsigned w = wordInLine(addr);
        if (line->valid && line->wstate[w] == WordState::Valid)
            line->data[w] = value;
    }
    scheduleIn(_timings.l1Hit, std::move(cb));
}

void
DenovoL1Cache::serviceStallQueue()
{
    while (!_stalledStores.empty()) {
        StalledStore &front = _stalledStores.front();

        // The word may have become registered while stalled: such
        // stores complete in place without a buffer slot.
        unsigned w = wordInLine(front.addr);
        CacheLine *line = _array.lookup(front.addr);
        if (line && line->wstate[w] == WordState::Registered) {
            ++_stats.storeHits;
            _energy.l1Access();
            line->data[w] = front.value;
            _sb.erase(front.addr);
            _array.touch(*line);
            scheduleIn(_timings.l1Hit, std::move(front.cb));
            _stalledStores.pop_front();
            continue;
        }

        if (_sb.full() && !_sb.contains(front.addr)) {
            // Still no room: drain again and retry later.
            if (!_overflowDrainActive) {
                _overflowDrainActive = true;
                ++_stats.sbOverflowDrains;
                startDrain([this] {
                    _overflowDrainActive = false;
                    scheduleIn(0, [this] { serviceStallQueue(); });
                });
            }
            return;
        }

        StalledStore st = std::move(front);
        _stalledStores.pop_front();
        acceptStore(st.addr, st.value, std::move(st.cb));
    }
}

// ---------------------------------------------------------------------
// Drains (release-side: obtain ownership for buffered writes)
// ---------------------------------------------------------------------

void
DenovoL1Cache::issueRegistration(Addr line_addr, WordMask mask,
                                 bool is_sync)
{
    ++_registrationsIssued;
    if (_trace) {
        _trace->record(curTick(), trace::Phase::L1RegIssue, _node,
                       line_addr, 0, mask);
    }
    DenovoL2Bank &bank = homeBank(line_addr);
    TrafficClass cls = is_sync ? TrafficClass::Atomic
                               : TrafficClass::Registration;
    _mesh.send(_node, bank.node(), kControlFlits, cls,
               [this, &bank, line_addr, mask, is_sync] {
                   bank.handleRegReq(
                       line_addr, mask, is_sync, _node,
                       [this, line_addr, is_sync](
                           WordMask direct, const LineData &values) {
                           onRegAck(line_addr, direct, values,
                                    is_sync);
                       });
               });
}

void
DenovoL1Cache::onRegAck(Addr line_addr, WordMask direct_mask,
                        const LineData &values, bool is_sync)
{
    if (_trace) {
        _trace->record(curTick(), trace::Phase::L1RegAck, _node,
                       line_addr, 0, direct_mask);
    }
    if (direct_mask != 0)
        grantWords(line_addr, direct_mask, values, is_sync);
}

void
DenovoL1Cache::handleTransferResp(Addr line_addr, WordMask mask,
                                  const LineData &values, bool is_sync)
{
    grantWords(line_addr, mask, values, is_sync);
}

void
DenovoL1Cache::grantWords(Addr line_addr, WordMask mask,
                          const LineData &values, bool values_valid)
{
    line_addr = lineAlign(line_addr);
    LineEntry *entry = _mshr.find(line_addr);
    panic_if(!entry, "ownership grant without a pending transaction");

    CacheLine &frame = ensureFrame(line_addr);
    for (unsigned w = 0; w < kWordsPerLine; ++w) {
        WordMask bit = static_cast<WordMask>(1u << w);
        if (!(mask & bit))
            continue;
        frame.wstate[w] = WordState::Registered;
        TRACEW(line_addr + w * kWordBytes,
               "grant word " << w << " dataPend="
                             << ((entry->dataRegPending >> w) & 1)
                             << " val=" << values[w] << " frame="
                             << (void *)&frame);
        if (entry->dataRegPending & bit) {
            frame.data[w] = entry->pendingStoreData[w];
            entry->dataRegPending &= ~bit;
            panic_if(_pendingWrites == 0,
                     "pending-write underflow on grant");
            --_pendingWrites;
        } else if (values_valid) {
            frame.data[w] = values[w];
        }
        entry->syncRegPending &= ~bit;
    }
    _array.touch(frame);
    _energy.l1Access();

    // DeNovoSync0 batch rule: every local sync op already queued when
    // ownership arrives is serviced before any queued remote request,
    // so re-stamp pending remotes to the end of the current batch
    // (preserving their relative order). Ops arriving later queue
    // behind the remote and trigger re-registration - that bounded
    // batching is what keeps the distributed queue fair.
    for (auto &remote : entry->remoteQueue) {
        if (remote.mask & mask)
            remote.seq = entry->nextSeq++;
    }

    for (unsigned w = 0; w < kWordsPerLine; ++w) {
        if (mask & (1u << w))
            processSyncQueue(line_addr, w);
    }
    settleReads(line_addr, 0, LineData{}, 0);
    maybeFinishDrains();
    maybeFreeEntry(line_addr);
}

void
DenovoL1Cache::startDrain(DoneCallback cb)
{
    auto groups = _sb.drain();
    for (const auto &group : groups) {
        CacheLine *frame = _array.lookup(group.lineAddr);
        WordMask reg_mask = 0;
        for (unsigned w = 0; w < kWordsPerLine; ++w) {
            WordMask bit = static_cast<WordMask>(1u << w);
            if (!(group.mask & bit))
                continue;
            if (frame && frame->wstate[w] == WordState::Registered) {
                // Already owned (e.g. registered by a sync grant
                // since the store buffered): just write it.
                frame->data[w] = group.data[w];
                continue;
            }
            reg_mask |= bit;
        }

        // DD+PR: streaming-region words bypass registration and
        // write through to the home bank GPU-style. They still ride
        // the dataRegPending/_pendingWrites accounting so release
        // drains wait for the write-through ack and local loads see
        // the pending value, but no ownership is requested and the
        // ack installs nothing — the next consumer reads the fresh
        // copy from L2 in one hop instead of chasing a remote owner.
        WordMask stream_mask = 0;
        if (_config.perRegionPolicy && reg_mask != 0) {
            stream_mask =
                reg_mask & _regions.streamingMask(group.lineAddr);
            reg_mask &= ~stream_mask;
        }
        if (stream_mask != 0) {
            LineEntry &stream_entry = entryFor(group.lineAddr);
            WordMask newly =
                stream_mask & ~stream_entry.dataRegPending;
            for (unsigned w = 0; w < kWordsPerLine; ++w) {
                if (stream_mask & (1u << w)) {
                    stream_entry.pendingStoreData[w] =
                        group.data[w];
                    TRACEW(group.lineAddr + w * kWordBytes,
                           "drain stream word " << w << " val="
                                                << group.data[w]);
                }
            }
            _pendingWrites += popcount(newly);
            stream_entry.dataRegPending |= stream_mask;
            // A word with sync activity in flight completes through
            // the sync grant instead (grantWords consumes the
            // pending-store bit exactly as for registrations).
            WordMask to_send = stream_mask &
                               ~stream_entry.syncRegPending &
                               ~stream_entry.syncRunning;
            if (to_send != 0) {
                issueStreamingWrite(group.lineAddr, to_send,
                                    stream_entry.pendingStoreData);
            }
        }
        if (reg_mask == 0)
            continue;

        LineEntry &entry = entryFor(group.lineAddr);
        for (unsigned w = 0; w < kWordsPerLine; ++w) {
            if (reg_mask & (1u << w)) {
                TRACEW(group.lineAddr + w * kWordBytes,
                       "drain word " << w << " val="
                                     << group.data[w]);
            }
        }
        WordMask newly_pending = reg_mask & ~entry.dataRegPending;
        for (unsigned w = 0; w < kWordsPerLine; ++w) {
            if (reg_mask & (1u << w))
                entry.pendingStoreData[w] = group.data[w];
        }
        _pendingWrites += popcount(newly_pending);
        entry.dataRegPending |= reg_mask;
        WordMask to_request =
            newly_pending & ~entry.syncRegPending & ~entry.syncRunning;
        // A word whose writeback is still in flight must not
        // re-register until the ack returns, or the registry could
        // process the requests out of order and accept the stale
        // writeback over the new registration.
        if (const WbEntry *wb = _wbBuffer.find(group.lineAddr)) {
            WordMask held = to_request & wb->mask;
            if (held != 0) {
                entry.regWaitingWb |= held;
                to_request &= ~held;
            }
        }
        if (to_request != 0)
            issueRegistration(group.lineAddr, to_request, false);
    }
    _drainWaiters.push_back(std::move(cb));
    maybeFinishDrains();
}

void
DenovoL1Cache::issueStreamingWrite(Addr line_addr, WordMask mask,
                                   const LineData &data)
{
    ++_streamingWrites;
    if (_trace) {
        _trace->record(curTick(), trace::Phase::L1WritebackIssue,
                       _node, line_addr, 0, mask);
    }
    DenovoL2Bank &bank = homeBank(line_addr);
    unsigned flits = flitsForWords(popcount(mask));
    _mesh.send(_node, bank.node(), flits, TrafficClass::WriteBack,
               [this, &bank, line_addr, mask, data] {
                   bank.handleStreamingWrite(
                       line_addr, mask, data, _node,
                       [this, line_addr, mask] {
                           onStreamAck(line_addr, mask);
                       });
               });
}

void
DenovoL1Cache::onStreamAck(Addr line_addr, WordMask mask)
{
    LineEntry *entry = _mshr.find(line_addr);
    if (!entry)
        return;
    // Only words still pending complete here: a word granted
    // meanwhile (sync registration racing the write-through) was
    // already consumed by grantWords.
    WordMask done = mask & entry->dataRegPending;
    if (done == 0)
        return;
    entry->dataRegPending &= ~done;
    unsigned words = popcount(done);
    panic_if(_pendingWrites < words,
             "pending-write underflow on streaming ack");
    _pendingWrites -= words;
    // Read targets parked on the pending words re-fetch from L2 now
    // that the fresh value lives there (nothing installed locally).
    settleReads(line_addr, 0, LineData{}, 0);
    maybeFinishDrains();
    maybeFreeEntry(line_addr);
}

void
DenovoL1Cache::maybeFinishDrains()
{
    if (_pendingWrites != 0 || _drainWaiters.empty())
        return;
    auto waiters = std::move(_drainWaiters);
    _drainWaiters.clear();
    for (auto &waiter : waiters)
        waiter();
}

void
DenovoL1Cache::drainWrites(Scope scope, DoneCallback cb)
{
    if (_config.effectiveScope(scope) == Scope::Local) {
        // DeNovo-H: locally scoped releases delay obtaining ownership.
        scheduleIn(0, std::move(cb));
        return;
    }
    ++_stats.releaseDrains;
    startDrain(std::move(cb));
}

// ---------------------------------------------------------------------
// Synchronization accesses (DeNovoSync0)
// ---------------------------------------------------------------------

bool
DenovoL1Cache::wordBusy(Addr line_addr, unsigned word)
{
    const LineEntry *entry = _mshr.find(line_addr);
    if (!entry)
        return false;
    WordMask bit = static_cast<WordMask>(1u << word);
    if (bit &
        (entry->syncRegPending | entry->dataRegPending |
         entry->syncRunning)) {
        return true;
    }
    for (const auto &waiter : entry->syncQueue) {
        if (waiter.word == word)
            return true;
    }
    for (const auto &remote : entry->remoteQueue) {
        if (remote.mask & bit)
            return true;
    }
    return false;
}

void
DenovoL1Cache::sync(const SyncOp &op, ValueCallback cb)
{
    Scope scope = _config.effectiveScope(op.scope);
    auto perform = [this, op, scope, cb = std::move(cb)]() mutable {
        auto finish = [this, op, scope,
                       cb = std::move(cb)](std::uint32_t value) {
            finishSync(op, scope, value, std::move(cb));
        };
        if (_config.syncEngine && scope != Scope::Local)
            performEngineSync(op, scope, std::move(finish));
        else
            performSync(op, scope, std::move(finish));
    };

    // Device- and machine-scoped releases both make prior writes
    // visible beyond this CU's L1, so both drain.
    if (op.isRelease() && scope != Scope::Local) {
        ++_stats.releaseDrains;
        startDrain(std::move(perform));
    } else {
        perform();
    }
}

void
DenovoL1Cache::finishSync(const SyncOp &op, Scope scope,
                          std::uint32_t value, ValueCallback cb)
{
    if (op.isAcquire() && scope != Scope::Local)
        invalidateValid();
    cb(value);
}

void
DenovoL1Cache::performEngineSync(const SyncOp &op, Scope scope,
                                 ValueCallback cb)
{
    // SynCron-style memory-side execution: the sync op travels to the
    // home bank and performs there; the sync word's ownership never
    // migrates to this L1, so contended sync variables stop
    // ping-ponging through the registry's distributed queue.
    (void)scope;
    ++_stats.syncMisses;
    _energy.atomicAlu();
    DenovoL2Bank &bank = homeBank(op.addr);
    unsigned flits = flitsForWords(1);
    _mesh.send(_node, bank.node(), flits, TrafficClass::Atomic,
               [this, &bank, op, cb = std::move(cb)]() mutable {
                   bank.handleSyncOp(op, _node, std::move(cb));
               });
}

void
DenovoL1Cache::performSync(const SyncOp &op, Scope scope,
                           ValueCallback cb)
{
    if (scope == Scope::Local) {
        performLocalHrfSync(op, std::move(cb));
        return;
    }

    Addr line_addr = lineAlign(op.addr);
    unsigned w = wordInLine(op.addr);

    CacheLine *frame = _array.lookup(op.addr);
    bool registered = frame &&
                      frame->wstate[w] == WordState::Registered;
    if (registered && !wordBusy(line_addr, w)) {
        // Registration hit: the atomic performs at the L1 with no
        // network traffic at all.
        ++_stats.syncHits;
        _energy.l1Access();
        _energy.atomicAlu();
        std::uint32_t old_val = _sb.contains(op.addr)
                                    ? _sb.value(op.addr)
                                    : frame->data[w];
        _sb.erase(op.addr);
        if (_races)
            _races->syncPerformed(op, curTick());
        AtomicResult res = applyAtomic(op, old_val);
        frame->data[w] = res.newValue;
        _array.touch(*frame);
        noteSyncRead(op, res.returned);
        scheduleIn(_timings.l1Atomic,
                   [cb = std::move(cb), v = res.returned] { cb(v); });
        return;
    }

    LineEntry &entry = entryFor(line_addr);
    entry.syncQueue.push_back({w, op, std::move(cb),
                               entry.nextSeq++});
    WordMask bit = static_cast<WordMask>(1u << w);

    if (bit & (entry.syncRegPending | entry.dataRegPending |
               entry.syncRunning)) {
        // Coalesce with the in-flight registration or running batch
        // from this CU.
        ++_syncCoalesced;
        return;
    }

    if (registered) {
        // Word owned but a queue exists (e.g. a pending remote
        // transfer): join in arrival order.
        ++_syncCoalesced;
        processSyncQueue(line_addr, w);
        return;
    }

    ++_stats.syncMisses;
    entry.syncRegPending |= bit;
    const WbEntry *wb = _wbBuffer.find(line_addr);
    if (wb && (wb->mask & bit)) {
        // Writeback in flight: register once it is acknowledged.
        entry.regWaitingWb |= bit;
        return;
    }
    if (Cycles delay = syncBackoffDelay(op)) {
        // DeNovoSync read backoff: throttle re-registration of a
        // read that keeps observing an unchanged value.
        scheduleIn(delay, [this, line_addr, bit] {
            LineEntry *entry = _mshr.find(line_addr);
            if (!entry || !(entry->syncRegPending & bit) ||
                (entry->regWaitingWb & bit)) {
                return;
            }
            issueRegistration(line_addr, bit, true);
        });
        return;
    }
    issueRegistration(line_addr, bit, true);
}

void
DenovoL1Cache::noteSyncRead(const SyncOp &op, std::uint32_t value)
{
    if (!_config.syncReadBackoff || op.func != AtomicFunc::Load)
        return;
    ReadBackoff &state = _readBackoff[wordAlign(op.addr)];
    if (state.seen && state.lastValue == value) {
        // Unchanged: contention without progress - back off harder.
        state.delay = state.delay == 0
                          ? kSyncBackoffBase
                          : std::min<Cycles>(state.delay * 2,
                                             kSyncBackoffMax);
    } else {
        state.delay = 0;
    }
    state.lastValue = value;
    state.seen = true;
}

Cycles
DenovoL1Cache::syncBackoffDelay(const SyncOp &op)
{
    if (!_config.syncReadBackoff || op.func != AtomicFunc::Load)
        return 0;
    auto it = _readBackoff.find(wordAlign(op.addr));
    return it == _readBackoff.end() ? 0 : it->second.delay;
}

bool
DenovoL1Cache::holdsWord(Addr line_addr, unsigned word)
{
    CacheLine *frame = _array.lookup(line_addr);
    if (frame && frame->wstate[word] == WordState::Registered)
        return true;
    const WbEntry *wb = _wbBuffer.find(line_addr);
    return wb && (wb->mask & (1u << word));
}

void
DenovoL1Cache::processSyncQueue(Addr line_addr, unsigned word)
{
    LineEntry *entry = _mshr.find(line_addr);
    if (!entry)
        return;
    WordMask bit = static_cast<WordMask>(1u << word);
    if (entry->syncRunning & bit)
        return;

    // Pick the earliest pending item (local op or remote request)
    // for this word. Arrival order is what makes the distributed
    // queue fair: local ops coalesced before a remote transfer run
    // first; local ops arriving after it wait for re-registration.
    auto local_it = entry->syncQueue.end();
    for (auto it = entry->syncQueue.begin();
         it != entry->syncQueue.end(); ++it) {
        if (it->word == word &&
            (local_it == entry->syncQueue.end() ||
             it->seq < local_it->seq)) {
            local_it = it;
        }
    }
    auto remote_it = entry->remoteQueue.end();
    for (auto it = entry->remoteQueue.begin();
         it != entry->remoteQueue.end(); ++it) {
        if ((it->mask & bit) &&
            (remote_it == entry->remoteQueue.end() ||
             it->seq < remote_it->seq)) {
            remote_it = it;
        }
    }

    bool have_local = local_it != entry->syncQueue.end();
    bool have_remote = remote_it != entry->remoteQueue.end();
    if (!have_local && !have_remote) {
        maybeFreeEntry(line_addr);
        return;
    }

    if (have_remote &&
        (!have_local || remote_it->seq < local_it->seq)) {
        if (!holdsWord(line_addr, word)) {
            // Our own (re-)registration is in flight; the grant
            // re-enters this function.
            return;
        }
        if (remote_it->kind == QueuedRemote::Kind::ReadFwd) {
            NodeId target = remote_it->target;
            std::uint64_t req_epoch = remote_it->reqEpoch;
            remote_it->mask &= ~bit;
            if (remote_it->mask == 0)
                entry->remoteQueue.erase(remote_it);
            respondReadFwd(line_addr, bit, target, req_epoch);
            processSyncQueue(line_addr, word);
            return;
        }
        // Ownership transfer: give the word up, then re-register if
        // local sync ops arrived after the remote request did.
        NodeId target = remote_it->target;
        bool is_sync = remote_it->isSync;
        bool to_l2 = remote_it->toL2;
        remote_it->mask &= ~bit;
        if (remote_it->mask == 0)
            entry->remoteQueue.erase(remote_it);
        respondTransfer(line_addr, bit, target, is_sync, to_l2);

        if (have_local && !(entry->syncRegPending & bit) &&
            !(entry->dataRegPending & bit)) {
            ++_stats.syncMisses;
            entry->syncRegPending |= bit;
            const WbEntry *wb = _wbBuffer.find(line_addr);
            if (wb && (wb->mask & bit))
                entry->regWaitingWb |= bit;
            else
                issueRegistration(line_addr, bit, true);
        }
        maybeFreeEntry(line_addr);
        return;
    }

    // Local sync op is next; it needs ownership to execute.
    if (!holdsWord(line_addr, word))
        return; // a registration is pending; its grant re-enters
    CacheLine *frame = _array.lookup(line_addr);
    panic_if(!frame || frame->wstate[word] != WordState::Registered,
             "local sync op scheduled on a word held only in the "
             "writeback buffer");

    SyncWaiter waiter = std::move(*local_it);
    entry->syncQueue.erase(local_it);
    entry->syncRunning |= bit;

    scheduleIn(_timings.l1Atomic, [this, line_addr, word, bit,
                                   waiter = std::move(waiter)]() mutable {
        CacheLine *frame = _array.lookup(line_addr);
        panic_if(!frame ||
                     frame->wstate[word] != WordState::Registered,
                 "queued sync op executing without ownership");
        _energy.l1Access();
        _energy.atomicAlu();
        if (_races)
            _races->syncPerformed(waiter.op, curTick());
        AtomicResult res = applyAtomic(waiter.op, frame->data[word]);
        frame->data[word] = res.newValue;
        _array.touch(*frame);
        noteSyncRead(waiter.op, res.returned);

        LineEntry *entry = _mshr.find(line_addr);
        panic_if(!entry, "sync chain lost its MSHR entry");
        entry->syncRunning &= ~bit;
        waiter.cb(res.returned);
        processSyncQueue(line_addr, word);
    });
}

void
DenovoL1Cache::performLocalHrfSync(const SyncOp &op, ValueCallback cb)
{
    std::uint32_t old_val;
    if (!peekLocal(op.addr, old_val)) {
        // Fetch the line first, then perform locally.
        ++_stats.syncMisses;
        load(op.addr, [this, op, cb = std::move(cb)](std::uint32_t) {
            performLocalHrfSync(op, std::move(cb));
        });
        return;
    }

    if (_sb.full() && !_sb.contains(op.addr)) {
        // Need a buffer slot for the lazily-owned result.
        ++_stats.sbOverflowDrains;
        startDrain([this, op, cb = std::move(cb)]() mutable {
            performLocalHrfSync(op, std::move(cb));
        });
        return;
    }

    ++_stats.syncHits;
    _energy.l1Access();
    _energy.atomicAlu();
    if (_races)
        _races->syncPerformed(op, curTick());
    AtomicResult res = applyAtomic(op, old_val);

    unsigned w = wordInLine(op.addr);
    CacheLine *frame = _array.lookup(op.addr);
    if (frame && frame->wstate[w] == WordState::Registered) {
        // Already owned: update in place, no lazy buffering needed.
        frame->data[w] = res.newValue;
        _sb.erase(op.addr);
    } else {
        // Delay obtaining ownership: the result lives in the store
        // buffer until the next global release registers it.
        _sb.insert(op.addr, res.newValue);
        if (frame && frame->wstate[w] == WordState::Valid)
            frame->data[w] = res.newValue;
    }
    scheduleIn(_timings.l1Atomic,
               [cb = std::move(cb), v = res.returned] { cb(v); });
}

// ---------------------------------------------------------------------
// Remote requests (forwarded by the registry)
// ---------------------------------------------------------------------

void
DenovoL1Cache::respondReadFwd(Addr line_addr, WordMask mask,
                              NodeId requestor,
                              std::uint64_t req_epoch)
{
    ++_remoteReadsServed;
    _energy.l1Access();
    LineData values{};
    CacheLine *frame = _array.lookup(line_addr);
    const WbEntry *wb = _wbBuffer.find(line_addr);
    for (unsigned w = 0; w < kWordsPerLine; ++w) {
        WordMask bit = static_cast<WordMask>(1u << w);
        if (!(mask & bit))
            continue;
        if (frame && frame->wstate[w] != WordState::Invalid)
            values[w] = frame->data[w];
        else if (wb && (wb->mask & bit))
            values[w] = wb->data[w];
        else
            panic("read forward for a word this L1 cannot serve");
    }
    DenovoL1Cache *peer = _peers[static_cast<std::size_t>(requestor)];
    unsigned flits = flitsForWords(popcount(mask));
    _mesh.send(_node, requestor, flits, TrafficClass::Read,
               [peer, line_addr, mask, values, req_epoch] {
                   peer->handleFwdData(line_addr, mask, values,
                                       req_epoch);
               });
}

void
DenovoL1Cache::respondTransfer(Addr line_addr, WordMask mask,
                               NodeId target, bool is_sync, bool to_l2)
{
    _ownershipTransfers += popcount(mask);
    LineData values{};
    CacheLine *frame = _array.lookup(line_addr);
    const WbEntry *wb = _wbBuffer.find(line_addr);
    for (unsigned w = 0; w < kWordsPerLine; ++w) {
        WordMask bit = static_cast<WordMask>(1u << w);
        if (!(mask & bit))
            continue;
        if (frame && frame->wstate[w] == WordState::Registered) {
            TRACEW(line_addr + w * kWordBytes,
                   "xfer-out word " << w << " val=" << frame->data[w]
                                    << " to " << target);
            values[w] = frame->data[w];
            frame->wstate[w] = WordState::Invalid;
        } else if (wb && (wb->mask & bit)) {
            values[w] = wb->data[w];
        } else {
            panic("ownership transfer for a word this L1 does not "
                  "hold");
        }
    }

    if (to_l2) {
        DenovoL2Bank &bank = homeBank(line_addr);
        unsigned flits = flitsForWords(popcount(mask));
        _mesh.send(_node, bank.node(), flits, TrafficClass::WriteBack,
                   [&bank, line_addr, mask, values] {
                       bank.handleRecallData(line_addr, mask, values);
                   });
        return;
    }

    DenovoL1Cache *peer = _peers[static_cast<std::size_t>(target)];
    TrafficClass cls = is_sync ? TrafficClass::Atomic
                               : TrafficClass::Registration;
    unsigned flits = is_sync ? flitsForWords(popcount(mask))
                             : kControlFlits;
    _mesh.send(_node, target, flits, cls,
               [peer, line_addr, mask, values, is_sync] {
                   peer->handleTransferResp(line_addr, mask, values,
                                            is_sync);
               });
}

void
DenovoL1Cache::handleReadFwd(Addr line_addr, WordMask mask,
                             NodeId requestor,
                             std::uint64_t req_epoch)
{
    line_addr = lineAlign(line_addr);

    // Serve every immediately servable word with a single response
    // message (line-granularity transfer); queue only words tied up
    // in local synchronization activity.
    WordMask immediate = 0;
    WordMask queued = 0;
    for (unsigned w = 0; w < kWordsPerLine; ++w) {
        WordMask bit = static_cast<WordMask>(1u << w);
        if (!(mask & bit))
            continue;
        if (holdsWord(line_addr, w) && !wordBusy(line_addr, w))
            immediate |= bit;
        else
            queued |= bit;
    }
    if (immediate != 0)
        respondReadFwd(line_addr, immediate, requestor, req_epoch);
    if (queued == 0)
        return;

    LineEntry &entry = entryFor(line_addr);
    for (unsigned w = 0; w < kWordsPerLine; ++w) {
        WordMask bit = static_cast<WordMask>(1u << w);
        if (!(queued & bit))
            continue;
        panic_if(!holdsWord(line_addr, w) &&
                     !(bit & (entry.syncRegPending |
                              entry.dataRegPending)),
                 "read forward for a word this L1 neither holds nor "
                 "awaits");
    }
    entry.remoteQueue.push_back({QueuedRemote::Kind::ReadFwd, queued,
                                 requestor, false, false,
                                 entry.nextSeq++, req_epoch});
    for (unsigned w = 0; w < kWordsPerLine; ++w) {
        if (queued & (1u << w))
            processSyncQueue(line_addr, w);
    }
}

void
DenovoL1Cache::handleTransferReq(Addr line_addr, WordMask mask,
                                 NodeId new_owner, bool is_sync,
                                 bool to_l2)
{
    line_addr = lineAlign(line_addr);

    // Hand over every immediately servable word in one response
    // message; only words tied up in local activity take the queued
    // per-word path.
    WordMask immediate = 0;
    WordMask queued = 0;
    for (unsigned w = 0; w < kWordsPerLine; ++w) {
        WordMask bit = static_cast<WordMask>(1u << w);
        if (!(mask & bit))
            continue;
        if (holdsWord(line_addr, w) && !wordBusy(line_addr, w))
            immediate |= bit;
        else
            queued |= bit;
    }
    if (immediate != 0)
        respondTransfer(line_addr, immediate, new_owner, is_sync,
                        to_l2);
    if (queued == 0)
        return;

    LineEntry &entry = entryFor(line_addr);
    for (unsigned w = 0; w < kWordsPerLine; ++w) {
        WordMask bit = static_cast<WordMask>(1u << w);
        if (!(queued & bit))
            continue;
        panic_if(!holdsWord(line_addr, w) &&
                     !(bit & (entry.syncRegPending |
                              entry.dataRegPending)),
                 "ownership transfer for a word this L1 neither "
                 "holds nor awaits: at ", name(), " line=0x", std::hex, line_addr,
                 std::dec, " word=", w, " newOwner=", new_owner,
                 " toL2=", to_l2, " syncPend=", entry.syncRegPending,
                 " dataPend=", entry.dataRegPending);
    }
    entry.remoteQueue.push_back({QueuedRemote::Kind::Transfer, queued,
                                 new_owner, is_sync, to_l2,
                                 entry.nextSeq++, 0});
    for (unsigned w = 0; w < kWordsPerLine; ++w) {
        if (queued & (1u << w))
            processSyncQueue(line_addr, w);
    }
}

// ---------------------------------------------------------------------
// Acquire-side invalidation
// ---------------------------------------------------------------------

void
DenovoL1Cache::invalidateValid()
{
    // Selective self-invalidation is a gang operation in hardware;
    // the simulator bumps the acquire epoch in O(1) and sweeps each
    // line lazily on its next touch (refreshLine). Registered words
    // are exempt by construction; read-only words by configuration.
    ++_stats.acquireInvalidations;
    _energy.l1TagAccess();
    ++_curEpoch;
}

void
DenovoL1Cache::refreshLine(CacheLine &line)
{
    if (line.epoch == _curEpoch)
        return;
    bool keep_ro = _config.readOnlyRegions;
    // A declareReadOnly (or per-region policy declaration) issued
    // since this line filled invalidates its mask snapshot: refresh
    // from the live map before deciding which words the sweep keeps,
    // or a word no longer read-only would wrongly survive the acquire
    // and serve stale data.
    if (keep_ro && line.regionVersion != _regions.version()) {
        line.readOnly = _regions.readOnlyMask(line.addr);
        line.regionVersion = _regions.version();
    }
    bool any_left = false;
    for (unsigned w = 0; w < kWordsPerLine; ++w) {
        WordMask bit = static_cast<WordMask>(1u << w);
        switch (line.wstate[w]) {
          case WordState::Registered:
            ++_stats.wordsPreserved;
            any_left = true;
            break;
          case WordState::Valid:
            if (keep_ro && (line.readOnly & bit)) {
                ++_stats.wordsPreserved;
                any_left = true;
            } else {
                TRACEW(line.addr + w * kWordBytes,
                       "refresh invalidate word " << w);
                line.wstate[w] = WordState::Invalid;
                ++_stats.wordsInvalidated;
            }
            break;
          case WordState::Invalid:
            break;
        }
    }
    line.epoch = _curEpoch;
    if (!any_left)
        line.valid = false;
}

// ---------------------------------------------------------------------
// Kernel boundaries
// ---------------------------------------------------------------------

void
DenovoL1Cache::kernelBegin()
{
    invalidateValid();
}

void
DenovoL1Cache::kernelEnd(DoneCallback cb)
{
    ++_stats.releaseDrains;
    startDrain(std::move(cb));
}

// ---------------------------------------------------------------------
// Test hooks
// ---------------------------------------------------------------------

std::string
DenovoL1Cache::dumpState()
{
    std::ostringstream os;
    os << name() << ": sb=" << _sb.size()
       << " pendingWrites=" << _pendingWrites
       << " drainWaiters=" << _drainWaiters.size()
       << " wb=" << _wbBuffer.size()
       << " stalledStores=" << _stalledStores.size() << "\n";
    _mshr.forEach([&](Addr line_addr, LineEntry &entry) {
        os << "  line 0x" << std::hex << line_addr << std::dec
           << " readPend=0x" << std::hex << entry.readPending
           << " dataReg=0x" << entry.dataRegPending << " syncReg=0x"
           << entry.syncRegPending << " syncRun=0x"
           << entry.syncRunning << std::dec << " targets="
           << entry.readTargets.size() << " syncQ="
           << entry.syncQueue.size() << " remoteQ="
           << entry.remoteQueue.size() << "\n";
        for (const auto &remote : entry.remoteQueue) {
            os << "    remote "
               << (remote.kind == QueuedRemote::Kind::Transfer
                       ? "xfer"
                       : "read")
               << " mask=0x" << std::hex << remote.mask << std::dec
               << " target=" << remote.target << "\n";
        }
    });
    return os.str();
}

ControllerSnapshot
DenovoL1Cache::snapshot() const
{
    ControllerSnapshot snap;
    snap.name = name();
    snap.gauge("mshr", _mshr.size());
    snap.gauge("sb", _sb.size());
    snap.gauge("pending_writes", _pendingWrites);
    snap.gauge("wb_lines", _wbBuffer.size());
    snap.gauge("stalled_stores", _stalledStores.size());
    snap.gauge("drain_waiters", _drainWaiters.size());
    _mshr.forEach([&](Addr line_addr, const LineEntry &entry) {
        std::ostringstream os;
        os << "line 0x" << std::hex << line_addr
           << " readPend=0x" << entry.readPending << " dataReg=0x"
           << entry.dataRegPending << " syncReg=0x"
           << entry.syncRegPending << " syncRun=0x"
           << entry.syncRunning << " waitWb=0x" << entry.regWaitingWb
           << std::dec << " targets=" << entry.readTargets.size()
           << " syncQ=" << entry.syncQueue.size()
           << " remoteQ=" << entry.remoteQueue.size();
        snap.detail.push_back(os.str());
    });
    _wbBuffer.forEachSorted([&](Addr line_addr, const WbEntry &wb) {
        std::ostringstream os;
        os << "writeback line 0x" << std::hex << line_addr
           << " mask=0x" << wb.mask << std::dec;
        snap.detail.push_back(os.str());
    });
    return snap;
}

std::vector<std::string>
DenovoL1Cache::checkInvariants(bool quiesced) const
{
    std::vector<std::string> out;
    auto fail = [&](const std::string &msg) {
        out.push_back(name() + ": " + msg);
    };

    unsigned data_reg_words = 0;
    _mshr.forEach([&](Addr line_addr, const LineEntry &entry) {
        data_reg_words += popcount(entry.dataRegPending);
        WordMask pending = static_cast<WordMask>(
            entry.dataRegPending | entry.syncRegPending);
        if (entry.regWaitingWb & ~pending) {
            std::ostringstream os;
            os << "line 0x" << std::hex << line_addr
               << ": regWaitingWb=0x" << entry.regWaitingWb
               << " not covered by pending registrations 0x"
               << pending;
            fail(os.str());
        }
    });
    if (data_reg_words != _pendingWrites) {
        std::ostringstream os;
        os << "pending-write count " << _pendingWrites
           << " disagrees with MSHR dataRegPending total "
           << data_reg_words;
        fail(os.str());
    }

    _wbBuffer.forEachSorted([&](Addr line_addr, const WbEntry &wb) {
        if (wb.mask == 0)
            fail("empty writeback-buffer entry not reclaimed");
        for (unsigned w = 0; w < kWordsPerLine; ++w) {
            bool masked = (wb.mask >> w) & 1;
            bool referenced = wb.refs[w] > 0;
            if (masked != referenced) {
                std::ostringstream os;
                os << "writeback line 0x" << std::hex << line_addr
                   << std::dec << " word " << w << ": mask bit "
                   << masked << " vs refcount " << unsigned(wb.refs[w]);
                fail(os.str());
            }
        }
    });

    if (quiesced) {
        ControllerSnapshot snap = snapshot();
        if (!snap.quiescent())
            fail("state leaked at quiesce: " + snap.summary());
    }
    return out;
}

void
DenovoL1Cache::forEachRegisteredWord(
    const std::function<void(Addr)> &fn) const
{
    _array.forEachValid([&](const CacheLine &line) {
        for (unsigned w = 0; w < kWordsPerLine; ++w) {
            if (line.wstate[w] == WordState::Registered)
                fn(line.addr + w * kWordBytes);
        }
    });
}

void
DenovoL1Cache::debugCorruptWordState(Addr addr, WordState st)
{
    CacheLine *line = _array.lookup(addr);
    if (!line) {
        line = _array.findVictim(addr);
        _array.install(*line, lineAlign(addr));
    }
    line->epoch = _curEpoch; // exempt from the lazy acquire sweep
    line->wstate[wordInLine(addr)] = st;
}

WordState
DenovoL1Cache::wordState(Addr addr) const
{
    const CacheLine *line = _array.lookup(addr);
    if (!line)
        return WordState::Invalid;
    unsigned w = wordInLine(addr);
    WordState st = line->wstate[w];
    if (st == WordState::Valid && line->epoch != _curEpoch) {
        // Interpret lazy invalidation without mutating; mirror
        // refreshLine's mask refresh when the snapshot is stale.
        WordMask ro = line->regionVersion == _regions.version()
                          ? line->readOnly
                          : _regions.readOnlyMask(line->addr);
        bool kept = _config.readOnlyRegions && (ro & (1u << w));
        return kept ? WordState::Valid : WordState::Invalid;
    }
    return st;
}

} // namespace nosync
