/**
 * @file
 * Structured controller state snapshots for diagnostics.
 *
 * Every cache controller (both L1 flavours, both L2 flavours) can
 * render its outstanding transaction state into a ControllerSnapshot:
 * a set of named gauges (all of which read zero when the controller
 * is quiescent) plus free-form per-entry detail lines. HangReport
 * aggregates these across the system; the ProtocolChecker uses the
 * gauges for leak detection at quiesce.
 */

#ifndef COHERENCE_SNAPSHOT_HH
#define COHERENCE_SNAPSHOT_HH

#include <cstddef>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace nosync
{

/** Point-in-time view of one controller's outstanding state. */
struct ControllerSnapshot
{
    std::string name;

    /**
     * Named occupancy counters (MSHR entries, buffered stores,
     * unacknowledged writebacks, ...). A well-behaved controller has
     * every gauge at zero once the system quiesces.
     */
    std::vector<std::pair<std::string, std::size_t>> gauges;

    /** Human-readable per-entry lines (one per in-flight line). */
    std::vector<std::string> detail;

    void
    gauge(const std::string &label, std::size_t value)
    {
        gauges.emplace_back(label, value);
    }

    /** Whether every gauge reads zero. */
    bool
    quiescent() const
    {
        for (const auto &g : gauges) {
            if (g.second != 0)
                return false;
        }
        return true;
    }

    /** One-line rendering: "name: g1=v1 g2=v2 ...". */
    std::string
    summary() const
    {
        std::ostringstream os;
        os << name << ":";
        for (const auto &g : gauges)
            os << " " << g.first << "=" << g.second;
        return os.str();
    }
};

} // namespace nosync

#endif // COHERENCE_SNAPSHOT_HH
