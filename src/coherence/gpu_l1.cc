#include "coherence/gpu_l1.hh"

#include "analysis/race_detector.hh"
#include "trace/trace_sink.hh"

namespace nosync
{

GpuL1Cache::GpuL1Cache(const std::string &name, EventQueue &eq,
                       stats::StatSet &stats, EnergyModel &energy,
                       Mesh &mesh, NodeId node,
                       const ProtocolConfig &config,
                       std::vector<GpuL2Bank *> banks,
                       const CacheGeometry &geom,
                       const CacheTimings &timings,
                       trace::TraceSink *trace)
    : L1Controller(name, eq, stats, energy, node, config, trace),
      _mesh(mesh), _banks(std::move(banks)),
      _array(geom.l1Bytes, geom.l1Assoc),
      _sb(geom.storeBufferEntries), _timings(timings),
      _mshr(geom.l1MshrEntries)
{
    panic_if(_config.protocol != CoherenceProtocol::Gpu,
             "GpuL1Cache built with a non-GPU protocol config");
}

bool
GpuL1Cache::bufferedValue(Addr addr, std::uint32_t &value) const
{
    if (_sb.contains(addr)) {
        value = _sb.value(addr);
        return true;
    }
    auto it = _pendingWt.find(wordAlign(addr));
    if (it != _pendingWt.end()) {
        value = it->second.value;
        return true;
    }
    return false;
}

GpuL2Bank &
GpuL1Cache::homeBank(Addr addr)
{
    std::size_t bank = (lineAlign(addr) / kLineBytes) % _banks.size();
    return *_banks[bank];
}

// ---------------------------------------------------------------------
// Loads
// ---------------------------------------------------------------------

void
GpuL1Cache::load(Addr addr, ValueCallback cb)
{
    // Store-buffer forwarding: the SB holds the CU's freshest
    // values.
    if (_sb.contains(addr)) {
        ++_stats.loadHits;
        _energy.l1Access();
        scheduleIn(_timings.l1Hit, [cb = std::move(cb),
                                    v = _sb.value(addr)] { cb(v); });
        return;
    }

    unsigned w = wordInLine(addr);
    if (CacheLine *line = _array.lookup(addr)) {
        refreshLine(*line);
        if (line->valid && line->wstate[w] == WordState::Valid) {
            ++_stats.loadHits;
            _energy.l1Access();
            _array.touch(*line);
            scheduleIn(_timings.l1Hit, [cb = std::move(cb),
                                        v = line->data[w]] { cb(v); });
            return;
        }
    }

    // In-flight writethrough: the word left the SB (and possibly the
    // cache, on eviction) but has not merged at the L2 yet. Fills
    // never install over such words, so any valid frame copy checked
    // above is at least as fresh.
    auto pending = _pendingWt.find(wordAlign(addr));
    if (pending != _pendingWt.end()) {
        ++_stats.loadHits;
        _energy.l1Access();
        scheduleIn(_timings.l1Hit,
                   [cb = std::move(cb),
                    v = pending->second.value] { cb(v); });
        return;
    }

    ++_stats.loadMisses;
    _energy.l1TagAccess();
    Addr line_addr = lineAlign(addr);
    ReadEntry *entry = _mshr.find(line_addr);
    if (!entry)
        entry = &_mshr.allocate(line_addr);
    entry->targets.push_back({addr, std::move(cb), _curEpoch});
    if (!entry->requestOutstanding) {
        entry->requestOutstanding = true;
        issueRead(line_addr);
    }
}

void
GpuL1Cache::issueRead(Addr line_addr)
{
    if (_trace) {
        _trace->record(curTick(), trace::Phase::L1MissIssue, _node,
                       line_addr);
    }
    GpuL2Bank &bank = homeBank(line_addr);
    std::uint64_t sent_epoch = _curEpoch;
    // Read requests are idempotent: a duplicated delivery only
    // produces a second fill, which onFill drops as spurious. The
    // flag lets the fault injector exercise exactly that path.
    _mesh.send(_node, bank.node(), kControlFlits, TrafficClass::Read,
               [this, line_addr, sent_epoch, &bank] {
                   bank.handleReadReq(
                       line_addr, _node,
                       [this, line_addr,
                        sent_epoch](const LineData &data) {
                           onFill(line_addr, data, sent_epoch);
                       });
               },
               /*idempotent=*/true);
}

CacheLine &
GpuL1Cache::installFill(Addr line_addr, const LineData &data)
{
    // The line may still be resident (HRF keeps locally dirty words
    // across acquires): merge the fill into the existing frame, never
    // overwriting this CU's own newer dirty words.
    if (CacheLine *line = _array.lookup(line_addr)) {
        refreshLine(*line);
        if (line->valid) {
            for (unsigned w = 0; w < kWordsPerLine; ++w) {
                WordMask bit = static_cast<WordMask>(1u << w);
                if (line->dirty & bit)
                    continue;
                // Buffered stores and in-flight writethroughs are
                // newer than the fill: leave those words invalid so
                // later loads refetch (FIFO makes the refetch fresh).
                Addr waddr = line_addr + w * kWordBytes;
                std::uint32_t fresh;
                if (bufferedValue(waddr, fresh)) {
                    line->wstate[w] = WordState::Invalid;
                    continue;
                }
                line->data[w] = data[w];
                line->wstate[w] = WordState::Valid;
            }
            line->epoch = _curEpoch;
            _array.touch(*line);
            _energy.l1Access();
            return *line;
        }
    }

    CacheLine *victim = _array.findVictim(line_addr);
    if (victim->valid) {
        ++_stats.evictions;
        // Under HRF, locally performed atomics leave dirty words that
        // exist only in this L1; they must be written through before
        // the frame is reused. Words also buffered in the SB are
        // skipped: the SB drain will write them through.
        WordMask to_flush = 0;
        for (unsigned w = 0; w < kWordsPerLine; ++w) {
            WordMask bit = static_cast<WordMask>(1u << w);
            if ((victim->dirty & bit) &&
                !_sb.contains(victim->addr + w * kWordBytes)) {
                to_flush |= bit;
            }
        }
        if (to_flush != 0)
            sendWriteThrough(victim->addr, to_flush, victim->data);
    }
    _array.install(*victim, line_addr);
    victim->data = data;
    victim->wstate.fill(WordState::Valid);
    victim->epoch = _curEpoch;
    for (unsigned w = 0; w < kWordsPerLine; ++w) {
        // Buffered stores and in-flight writethroughs are newer than
        // the fill: leave those words invalid.
        Addr waddr = line_addr + w * kWordBytes;
        std::uint32_t fresh;
        if (bufferedValue(waddr, fresh))
            victim->wstate[w] = WordState::Invalid;
    }
    _energy.l1Access();
    return *victim;
}

void
GpuL1Cache::onFill(Addr line_addr, const LineData &data,
                   std::uint64_t sent_epoch)
{
    ReadEntry *entry = _mshr.find(line_addr);
    if (!entry) {
        // Spurious fill: a duplicated read request (fault injection)
        // produced a second reply after the first retired the entry.
        return;
    }
    entry->requestOutstanding = false;

    if (sent_epoch == _curEpoch) {
        // No acquire intervened: install and satisfy everyone.
        CacheLine &line = installFill(line_addr, data);
        // Snapshot before running callbacks: a resumed coroutine may
        // evict or rewrite the frame.
        LineData snapshot = line.data;
        auto targets = std::move(entry->targets);
        auto atomics = std::move(entry->atomicTargets);
        _mshr.deallocate(line_addr);
        for (auto &target : targets)
            target.cb(snapshot[wordInLine(target.addr)]);
        for (auto &[op, cb] : atomics)
            performLocalAtomic(op, std::move(cb));
        return;
    }

    // An acquire intervened: the data may only satisfy loads issued
    // at or before the request's epoch; newer loads re-fetch so they
    // cannot observe values older than their acquire. Collect first:
    // the callbacks may push new loads into this entry.
    std::vector<ReadTarget> ready;
    auto &targets = entry->targets;
    for (auto it = targets.begin(); it != targets.end();) {
        if (it->epoch <= sent_epoch) {
            ready.push_back(std::move(*it));
            it = targets.erase(it);
        } else {
            ++it;
        }
    }
    for (auto &target : ready)
        target.cb(data[wordInLine(target.addr)]);

    entry = _mshr.find(line_addr);
    if (!entry)
        return;
    if (entry->targets.empty() && entry->atomicTargets.empty()) {
        _mshr.deallocate(line_addr);
        return;
    }
    if (!entry->requestOutstanding) {
        entry->requestOutstanding = true;
        issueRead(line_addr);
    }
}

// ---------------------------------------------------------------------
// Stores
// ---------------------------------------------------------------------

void
GpuL1Cache::store(Addr addr, std::uint32_t value, DoneCallback cb)
{
    if (_config.consistency == ConsistencyModel::Hrf) {
        // GPU-H keeps a dirty bit per word in the L1 (the paper's 3%
        // overhead): stores write-allocate into the cache and retire
        // immediately; a global release scans and flushes dirty
        // words, so the store buffer never backs up.
        ++_stats.storeHits;
        _energy.l1Access();
        CacheLine *line = _array.lookup(addr);
        if (line) {
            refreshLine(*line);
            if (!line->valid)
                line = nullptr;
        }
        if (!line) {
            // Allocate without fetching: only this word becomes
            // valid (partial-block write).
            CacheLine *victim = _array.findVictim(addr);
            if (victim->valid) {
                ++_stats.evictions;
                WordMask to_flush = 0;
                for (unsigned w = 0; w < kWordsPerLine; ++w) {
                    WordMask bit = static_cast<WordMask>(1u << w);
                    if ((victim->dirty & bit) &&
                        !_sb.contains(victim->addr +
                                      w * kWordBytes)) {
                        to_flush |= bit;
                    }
                }
                if (to_flush != 0) {
                    sendWriteThrough(victim->addr, to_flush,
                                     victim->data);
                }
            }
            _array.install(*victim, lineAlign(addr));
            victim->epoch = _curEpoch;
            line = victim;
        }
        unsigned w = wordInLine(addr);
        line->data[w] = value;
        line->wstate[w] = WordState::Valid;
        line->dirty |= static_cast<WordMask>(1u << w);
        _array.touch(*line);
        scheduleIn(_timings.l1Hit, std::move(cb));
        return;
    }

    if (!_stalledStores.empty() || (_sb.full() && !_sb.contains(addr))) {
        _stalledStores.push_back({addr, value, std::move(cb)});
        if (!_overflowDrainActive) {
            _overflowDrainActive = true;
            ++_stats.sbOverflowDrains;
            startDrain([this] {
                _overflowDrainActive = false;
                serviceStallQueue();
            });
        }
        return;
    }
    acceptStore(addr, value, std::move(cb));
}

void
GpuL1Cache::acceptStore(Addr addr, std::uint32_t value, DoneCallback cb)
{
    _energy.l1Access();
    ++_stats.storeBuffered;
    if (_sb.insert(addr, value))
        ++_stats.storeCoalesced;

    // Keep the local copy coherent for same-CU readers.
    if (CacheLine *line = _array.lookup(addr)) {
        refreshLine(*line);
        if (line->valid) {
            unsigned w = wordInLine(addr);
            line->data[w] = value;
            line->wstate[w] = WordState::Valid;
            _array.touch(*line);
        }
    }
    scheduleIn(_timings.l1Hit, std::move(cb));
}

void
GpuL1Cache::serviceStallQueue()
{
    while (!_stalledStores.empty() && !_sb.full()) {
        StalledStore st = std::move(_stalledStores.front());
        _stalledStores.pop_front();
        acceptStore(st.addr, st.value, std::move(st.cb));
    }
}

// ---------------------------------------------------------------------
// Drains (release-side visibility)
// ---------------------------------------------------------------------

void
GpuL1Cache::sendWriteThrough(Addr line_addr, WordMask mask,
                             const LineData &data)
{
    if (_trace) {
        _trace->record(curTick(), trace::Phase::L1WriteThrough, _node,
                       line_addr, 0, mask);
    }
    ++_pendingWtAcks;
    // Keep the in-flight values forwardable until the L2 merged them.
    for (unsigned w = 0; w < kWordsPerLine; ++w) {
        if (!(mask & (1u << w)))
            continue;
        auto [it, inserted] = _pendingWt.try_emplace(
            line_addr + w * kWordBytes, PendingWt{data[w], 0});
        it->second.value = data[w];
        ++it->second.count;
    }
    GpuL2Bank &bank = homeBank(line_addr);
    unsigned flits = flitsForWords(popcount(mask));
    _mesh.send(_node, bank.node(), flits, TrafficClass::WriteBack,
               [this, &bank, line_addr, mask, data] {
                   bank.handleWriteThrough(
                       line_addr, mask, data, _node,
                       [this, line_addr, mask] {
                           for (unsigned w = 0; w < kWordsPerLine;
                                ++w) {
                               if (!(mask & (1u << w)))
                                   continue;
                               auto it = _pendingWt.find(
                                   line_addr + w * kWordBytes);
                               panic_if(it == _pendingWt.end(),
                                        "writethrough ack without "
                                        "pending entry");
                               if (--it->second.count == 0)
                                   _pendingWt.erase(it);
                           }
                           --_pendingWtAcks;
                           maybeFinishDrains();
                       });
               });
}

std::vector<StoreBuffer::DrainGroup>
GpuL1Cache::collectDirtyWords()
{
    std::vector<StoreBuffer::DrainGroup> groups;
    _array.forEachValid([&](CacheLine &line) {
        if (line.dirty == 0)
            return;
        StoreBuffer::DrainGroup group{line.addr, 0, LineData{}};
        for (unsigned w = 0; w < kWordsPerLine; ++w) {
            WordMask bit = static_cast<WordMask>(1u << w);
            if (!(line.dirty & bit))
                continue;
            // Words still buffered in the SB are drained from there.
            if (_sb.contains(line.addr + w * kWordBytes))
                continue;
            group.mask |= bit;
            group.data[w] = line.data[w];
        }
        line.dirty = 0;
        if (group.mask != 0)
            groups.push_back(group);
    });
    return groups;
}

void
GpuL1Cache::startDrain(DoneCallback cb)
{
    // Collect L1-dirty words first: words still buffered in the SB
    // are skipped there (the SB drain below writes them through) and
    // the dirty bits clear either way, so nothing flushes twice.
    auto groups = collectDirtyWords();
    auto sb_groups = _sb.drain();
    groups.insert(groups.end(), sb_groups.begin(), sb_groups.end());
    for (const auto &group : groups)
        sendWriteThrough(group.lineAddr, group.mask, group.data);
    _drainWaiters.push_back(std::move(cb));
    maybeFinishDrains();
}

void
GpuL1Cache::maybeFinishDrains()
{
    if (_pendingWtAcks != 0 || _drainWaiters.empty())
        return;
    auto waiters = std::move(_drainWaiters);
    _drainWaiters.clear();
    for (auto &waiter : waiters)
        waiter();
}

void
GpuL1Cache::drainWrites(Scope scope, DoneCallback cb)
{
    if (_config.effectiveScope(scope) == Scope::Local) {
        // Locally scoped release: nothing to make globally visible.
        scheduleIn(0, std::move(cb));
        return;
    }
    ++_stats.releaseDrains;
    startDrain(std::move(cb));
}

// ---------------------------------------------------------------------
// Invalidations (acquire-side)
// ---------------------------------------------------------------------

void
GpuL1Cache::flashInvalidate()
{
    // Flash invalidation is a gang-clear in hardware; the simulator
    // implements it lazily by bumping the acquire epoch and sweeping
    // each line on its next touch (refreshLine).
    ++_stats.acquireInvalidations;
    _energy.l1TagAccess();
    ++_curEpoch;
}

void
GpuL1Cache::refreshLine(CacheLine &line)
{
    if (line.epoch == _curEpoch)
        return;
    for (unsigned w = 0; w < kWordsPerLine; ++w) {
        WordMask bit = static_cast<WordMask>(1u << w);
        if (line.wstate[w] != WordState::Valid)
            continue;
        // HRF keeps this CU's own partial writes: racing writes from
        // other scopes would be heterogeneous races anyway.
        if (_config.consistency == ConsistencyModel::Hrf &&
            (line.dirty & bit)) {
            ++_stats.wordsPreserved;
            continue;
        }
        line.wstate[w] = WordState::Invalid;
        ++_stats.wordsInvalidated;
    }
    line.epoch = _curEpoch;
    if (line.maskInState(WordState::Valid) == 0 && line.dirty == 0)
        line.valid = false;
}

// ---------------------------------------------------------------------
// Synchronization accesses
// ---------------------------------------------------------------------

void
GpuL1Cache::sync(const SyncOp &op, ValueCallback cb)
{
    Scope scope = _config.effectiveScope(op.scope);
    auto perform = [this, op, scope, cb = std::move(cb)]() mutable {
        auto finish = [this, op, scope,
                       cb = std::move(cb)](std::uint32_t value) {
            finishSync(op, scope, value, std::move(cb));
        };
        if (scope == Scope::Local)
            performLocalAtomic(op, std::move(finish));
        else
            performRemoteAtomic(op, std::move(finish));
    };

    // Device- and machine-scoped releases both make prior writes
    // visible beyond this CU's L1, so both drain.
    if (op.isRelease() && scope != Scope::Local) {
        ++_stats.releaseDrains;
        startDrain(std::move(perform));
    } else {
        perform();
    }
}

void
GpuL1Cache::finishSync(const SyncOp &op, Scope scope,
                       std::uint32_t value, ValueCallback cb)
{
    if (op.isAcquire() && scope != Scope::Local)
        flashInvalidate();
    cb(value);
}

void
GpuL1Cache::performRemoteAtomic(const SyncOp &op, ValueCallback cb)
{
    ++_stats.syncMisses;
    _energy.atomicAlu();
    GpuL2Bank &bank = homeBank(op.addr);
    unsigned flits = flitsForWords(1);
    _mesh.send(_node, bank.node(), flits, TrafficClass::Atomic,
               [this, &bank, op, cb = std::move(cb)] {
                   bank.handleAtomic(op, _node, std::move(cb));
               });
}

void
GpuL1Cache::performLocalAtomic(const SyncOp &op, ValueCallback cb)
{
    CacheLine *line = _array.lookup(op.addr);
    if (line)
        refreshLine(*line);
    unsigned w = wordInLine(op.addr);
    bool present = line && line->valid &&
                   (line->wstate[w] != WordState::Invalid ||
                    (line->dirty & (1u << w)));
    if (present) {
        ++_stats.syncHits;
        applyLocalAtomic(*line, op, std::move(cb));
        return;
    }

    // Fetch the line, then perform at L1.
    ++_stats.syncMisses;
    Addr line_addr = lineAlign(op.addr);
    ReadEntry *entry = _mshr.find(line_addr);
    if (!entry)
        entry = &_mshr.allocate(line_addr);
    entry->atomicTargets.emplace_back(op, std::move(cb));
    if (!entry->requestOutstanding) {
        entry->requestOutstanding = true;
        issueRead(line_addr);
    }
}

void
GpuL1Cache::applyLocalAtomic(CacheLine &line, const SyncOp &op,
                             ValueCallback cb)
{
    _energy.l1Access();
    _energy.atomicAlu();
    unsigned w = wordInLine(op.addr);
    // Freshness order: SB, then the frame copy, then any in-flight
    // writethrough (only relevant when the frame lacks the word).
    std::uint32_t old_val;
    if (_sb.contains(op.addr)) {
        old_val = _sb.value(op.addr);
    } else if (line.wstate[w] != WordState::Invalid ||
               (line.dirty & (1u << w))) {
        old_val = line.data[w];
    } else if (!bufferedValue(op.addr, old_val)) {
        old_val = line.data[w];
    }
    if (_races)
        _races->syncPerformed(op, curTick());
    AtomicResult res = applyAtomic(op, old_val);
    line.data[w] = res.newValue;
    line.wstate[w] = WordState::Valid;
    line.dirty |= static_cast<WordMask>(1u << w);
    _sb.erase(op.addr);
    _array.touch(line);
    scheduleIn(_timings.l1Atomic,
               [cb = std::move(cb), v = res.returned] { cb(v); });
}

// ---------------------------------------------------------------------
// Kernel boundaries
// ---------------------------------------------------------------------

void
GpuL1Cache::kernelBegin()
{
    flashInvalidate();
}

void
GpuL1Cache::kernelEnd(DoneCallback cb)
{
    ++_stats.releaseDrains;
    startDrain(std::move(cb));
}

// ---------------------------------------------------------------------
// Test hooks
// ---------------------------------------------------------------------

bool
GpuL1Cache::wordValid(Addr addr) const
{
    const CacheLine *line = _array.lookup(addr);
    if (!line)
        return false;
    unsigned w = wordInLine(addr);
    if (line->wstate[w] != WordState::Valid)
        return false;
    // Interpret lazy flash invalidation without mutating.
    if (line->epoch == _curEpoch)
        return true;
    return _config.consistency == ConsistencyModel::Hrf &&
           (line->dirty & (1u << w));
}

// ---------------------------------------------------------------------
// Diagnostics
// ---------------------------------------------------------------------

ControllerSnapshot
GpuL1Cache::snapshot() const
{
    ControllerSnapshot snap;
    snap.name = name();
    snap.gauge("mshr", _mshr.size());
    snap.gauge("sb", _sb.size());
    snap.gauge("wt_acks", _pendingWtAcks);
    snap.gauge("wt_words", _pendingWt.size());
    snap.gauge("stalled_stores", _stalledStores.size());
    snap.gauge("drain_waiters", _drainWaiters.size());
    _mshr.forEach([&](Addr line_addr, const ReadEntry &entry) {
        std::ostringstream os;
        os << "line 0x" << std::hex << line_addr << std::dec
           << " outstanding=" << entry.requestOutstanding
           << " targets=" << entry.targets.size()
           << " atomics=" << entry.atomicTargets.size();
        snap.detail.push_back(os.str());
    });
    return snap;
}

std::vector<std::string>
GpuL1Cache::checkInvariants(bool quiesced) const
{
    std::vector<std::string> out;
    auto fail = [&](const std::string &msg) {
        out.push_back(name() + ": " + msg);
    };

    _mshr.forEach([&](Addr line_addr, const ReadEntry &entry) {
        if (!entry.requestOutstanding && entry.targets.empty() &&
            entry.atomicTargets.empty()) {
            std::ostringstream os;
            os << "leaked MSHR entry for line 0x" << std::hex
               << line_addr << " (no request, no waiters)";
            fail(os.str());
        }
    });
    for (const auto &kv : _pendingWt) {
        if (kv.second.count == 0) {
            std::ostringstream os;
            os << "pending-writethrough entry for word 0x" << std::hex
               << kv.first << " with zero refcount";
            fail(os.str());
        }
    }

    if (quiesced) {
        ControllerSnapshot snap = snapshot();
        if (!snap.quiescent())
            fail("state leaked at quiesce: " + snap.summary());
    }
    return out;
}

} // namespace nosync
