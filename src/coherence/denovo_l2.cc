#include "coherence/denovo_l2.hh"

#include <algorithm>

#include "analysis/race_detector.hh"
#include "coherence/denovo_l1.hh"
#include "trace/trace_sink.hh"

namespace nosync
{

DenovoL2Bank::DenovoL2Bank(const std::string &name, EventQueue &eq,
                           stats::StatSet &stats, EnergyModel &energy,
                           Mesh &mesh, NodeId node, FunctionalMem &memory,
                           const CacheGeometry &geom,
                           const CacheTimings &timings,
                           trace::TraceSink *trace)
    : L2Controller(name, eq, node, trace), _mesh(mesh),
      _energy(energy), _memory(memory),
      _array(geom.l2BankBytes, geom.l2Assoc), _timings(timings),
      _fetches(geom.l2MshrEntries),
      _reads(stats.registerScalar(name + ".reads",
                                  "read requests served")),
      _registrations(
          stats.registerScalar(name + ".registrations",
                               "data registrations processed")),
      _syncRegistrations(
          stats.registerScalar(name + ".sync_registrations",
                               "sync registrations processed")),
      _forwards(
          stats.registerScalar(name + ".forwards",
                               "requests forwarded to owner L1s")),
      _writebacks(stats.registerScalar(
          name + ".writebacks", "registered-word writebacks accepted")),
      _streamingWritesStat(
          stats.registerScalar(name + ".streaming_writes",
                               "streaming-region write-through "
                               "words accepted (DD+PR)")),
      _staleWritebacks(
          stats.registerScalar(name + ".stale_writebacks",
                               "writebacks ignored (ownership "
                               "already moved)")),
      _recallsStat(stats.registerScalar(name + ".recalls",
                                        "L2 evictions requiring "
                                        "ownership recall")),
      _dramFetches(stats.registerScalar(name + ".dram_fetches",
                                        "line fetches from memory")),
      _dramWritebacks(stats.registerScalar(
          name + ".dram_writebacks", "line writebacks to memory")),
      _engineSyncs(stats.registerScalar(
          name + ".engine_syncs",
          "sync ops executed at the bank's sync engine (DD+SE)"))
{
}

// ---------------------------------------------------------------------
// Line residency
// ---------------------------------------------------------------------

void
DenovoL2Bank::withLine(Addr line_addr, std::function<void(CacheLine &)> fn)
{
    line_addr = lineAlign(line_addr);
    _energy.l2Access();

    if (recalling(line_addr)) {
        // The line is being evicted; replay the request once the
        // recall completes (the line will then re-fetch from memory).
        _recalls[line_addr].deferred.push_back(
            [this, line_addr, fn = std::move(fn)]() mutable {
                withLine(line_addr, std::move(fn));
            });
        return;
    }
    withLineReady(line_addr, std::move(fn));
}

void
DenovoL2Bank::withLineReady(Addr line_addr,
                            std::function<void(CacheLine &)> fn,
                            bool queued)
{
    // Pipelined bank: one new access per l2CycleTime cycles.
    Tick start = std::max(curTick(), _bankFree);
    _bankFree = start + _timings.l2CycleTime;
    Cycles queue_delay = start - curTick();

    if (CacheLine *line = _array.lookup(line_addr)) {
        _array.touch(*line);
        // Re-resolve at fire time: a concurrent fetch may evict and
        // repurpose this frame, or a recall may start, during the
        // access latency window.
        scheduleIn(queue_delay + _timings.l2Access,
                   [this, line_addr, fn = std::move(fn)]() mutable {
                       if (recalling(line_addr)) {
                           _recalls[line_addr].deferred.push_back(
                               [this, line_addr,
                                fn = std::move(fn)]() mutable {
                                   withLine(line_addr, std::move(fn));
                               });
                           return;
                       }
                       if (CacheLine *line = _array.lookup(line_addr)) {
                           fn(*line);
                           return;
                       }
                       withLineReady(line_addr, std::move(fn));
                   });
        return;
    }

    if (FetchEntry *entry = _fetches.find(line_addr)) {
        entry->waiters.push_back(std::move(fn));
        return;
    }

    if ((!queued && !_stalled.empty()) || _fetches.full()) {
        if (queued) {
            // Re-stall at the head to preserve arrival order.
            _stalled.emplace_front(line_addr, std::move(fn));
            return;
        }
        // All fetch MSHRs busy: stall in strict arrival order (the
        // protocol relies on per-source FIFO processing).
        _stalled.emplace_back(line_addr, std::move(fn));
        return;
    }

    FetchEntry &entry = _fetches.allocate(line_addr);
    entry.waiters.push_back(std::move(fn));
    startFetch(line_addr);
}

void
DenovoL2Bank::processStalled()
{
    while (!_stalled.empty() && !_fetches.full()) {
        auto [line_addr, fn] = std::move(_stalled.front());
        _stalled.pop_front();
        withLineReady(line_addr, std::move(fn), true);
    }
}

void
DenovoL2Bank::startFetch(Addr line_addr)
{
    ++_dramFetches;
    scheduleIn(_timings.l2Access + _timings.dramLatency,
               [this, line_addr] {
                   FetchEntry *entry = _fetches.find(line_addr);
                   panic_if(!entry, "L2 fetch entry vanished");
                   entry->dramDone = true;
                   finishFetch(line_addr);
               });
}

void
DenovoL2Bank::finishFetch(Addr line_addr)
{
    FetchEntry *entry = _fetches.find(line_addr);
    if (!entry || !entry->dramDone)
        return;

    // Prefer victims without registered words; recall otherwise.
    CacheLine *victim = _array.findVictimPreferring(
        line_addr, [](const CacheLine &line) {
            return line.maskInState(WordState::Registered) == 0;
        });
    if (victim->valid &&
        victim->maskInState(WordState::Registered) != 0) {
        RecallState &state = _recalls[victim->addr];
        state.blockedFetches.push_back(line_addr);
        if (state.outstanding == 0)
            startRecall(*victim);
        return;
    }

    if (victim->valid && victim->dirty) {
        _memory.writeLineMasked(victim->addr, victim->data,
                                victim->dirty);
        ++_dramWritebacks;
    }
    _array.install(*victim, line_addr);
    victim->data = _memory.readLine(line_addr);
    victim->wstate.fill(WordState::Valid);
    victim->owner.fill(static_cast<std::int16_t>(kNoNode));

    auto waiters = std::move(entry->waiters);
    _fetches.deallocate(line_addr);
    for (auto &waiter : waiters)
        waiter(*victim);
    processStalled();
}

void
DenovoL2Bank::startRecall(CacheLine &victim)
{
    ++_recallsStat;
    RecallState &state = _recalls[victim.addr];
    PendingSyncState *pending = _pendingSyncs.find(victim.addr);

    // Group registered words by owner and pull them back.
    std::fill(_fwdScratch.begin(), _fwdScratch.end(), WordMask{0});
    for (unsigned w = 0; w < kWordsPerLine; ++w) {
        if (victim.wstate[w] == WordState::Registered) {
            WordMask bit = static_cast<WordMask>(1u << w);
            state.outstanding |= bit;
            // A sync-engine reclaim already in flight doubles as the
            // recall transfer for its word; don't pull twice.
            if (pending && (pending->requested & bit))
                continue;
            _fwdScratch[static_cast<std::size_t>(victim.owner[w])] |=
                bit;
        }
    }
    Addr line_addr = victim.addr;
    for (NodeId owner = 0;
         owner < static_cast<NodeId>(_fwdScratch.size()); ++owner) {
        WordMask mask = _fwdScratch[static_cast<std::size_t>(owner)];
        if (mask == 0)
            continue;
        ++_forwards;
        DenovoL1Cache *l1 = _l1s[static_cast<std::size_t>(owner)];
        _mesh.send(_node, owner, kControlFlits, TrafficClass::WriteBack,
                   [l1, line_addr, mask, node = _node] {
                       l1->handleTransferReq(line_addr, mask, node,
                                             false, true);
                   });
    }
}

void
DenovoL2Bank::handleRecallData(Addr line_addr, WordMask mask,
                               const LineData &data)
{
    line_addr = lineAlign(line_addr);
    _energy.l2Access();
    CacheLine *line = _array.lookup(line_addr);
    panic_if(!line, "recall data for absent line");
    for (unsigned w = 0; w < kWordsPerLine; ++w) {
        if (!(mask & (1u << w)))
            continue;
        line->data[w] = data[w];
        line->wstate[w] = WordState::Valid;
        line->owner[w] = static_cast<std::int16_t>(kNoNode);
        line->dirty |= static_cast<WordMask>(1u << w);
    }

    RecallState *state = _recalls.find(line_addr);
    if (!state) {
        // Not an eviction recall: the words were reclaimed by the
        // sync engine (handleSyncOp on a registered word). The line
        // stays resident; perform the sync ops that were waiting.
        PendingSyncState *pending = _pendingSyncs.find(line_addr);
        panic_if(!pending, "recall data without recall or "
                           "pending-sync state");
        pending->requested &= ~mask;
        servePendingSyncs(*line, line_addr);
        return;
    }
    // An eviction recall owns the response now, even for words a
    // sync-engine reclaim pulled: the queued sync ops replay after
    // the recall completes (finishRecall), against the refetched
    // line.
    if (PendingSyncState *pending = _pendingSyncs.find(line_addr))
        pending->requested &= ~mask;
    state->outstanding &= ~mask;
    if (state->outstanding == 0)
        finishRecall(line_addr);
}

void
DenovoL2Bank::finishRecall(Addr line_addr)
{
    CacheLine *line = _array.lookup(line_addr);
    panic_if(!line, "finishing recall of absent line");
    _memory.writeLineMasked(line_addr, line->data,
                            line->maskInState(WordState::Valid));
    ++_dramWritebacks;
    line->clear();

    RecallState *live = _recalls.find(line_addr);
    panic_if(!live, "finishing recall without recall state");
    RecallState state = std::move(*live);
    _recalls.erase(line_addr);
    for (auto &fn : state.deferred)
        scheduleIn(0, std::move(fn));
    for (Addr blocked : state.blockedFetches)
        finishFetch(blocked);

    if (PendingSyncState *pending = _pendingSyncs.find(line_addr)) {
        // The recall wrote every reclaimed word back to memory;
        // replay the queued sync ops against the refetched line.
        auto ops = std::move(pending->ops);
        _pendingSyncs.erase(line_addr);
        for (auto &p : ops) {
            scheduleIn(0, [this, p = std::move(p)]() mutable {
                handleSyncOp(p.op, p.requestor, std::move(p.reply));
            });
        }
    }
}

// ---------------------------------------------------------------------
// Reads
// ---------------------------------------------------------------------

void
DenovoL2Bank::handleReadReq(Addr line_addr, WordMask mask,
                            NodeId requestor, std::uint64_t req_epoch,
                            ReadReply reply)
{
    ++_reads;
    withLine(line_addr, [this, line_addr, mask, requestor, req_epoch,
                         reply = std::move(reply)](CacheLine &line) {
        WordMask self_mask = 0;
        bool any_fwd = false;
        std::fill(_fwdScratch.begin(), _fwdScratch.end(),
                  WordMask{0});
        for (unsigned w = 0; w < kWordsPerLine; ++w) {
            WordMask bit = static_cast<WordMask>(1u << w);
            if (!(mask & bit))
                continue;
            if (line.wstate[w] != WordState::Registered)
                continue;
            if (line.owner[w] == requestor) {
                self_mask |= bit;
            } else {
                _fwdScratch[static_cast<std::size_t>(
                    line.owner[w])] |= bit;
                any_fwd = true;
            }
        }

        // The reply carries every word the L2 can serve (sector-style
        // line transfer of useful words only).
        WordMask l2_mask = line.maskInState(WordState::Valid);
        if (_trace) {
            _trace->record(curTick(), trace::Phase::L2ReadServe, _node,
                           lineAlign(line_addr), 0, l2_mask);
        }
        unsigned flits = flitsForWords(popcount(l2_mask));
        _mesh.send(_node, requestor, flits, TrafficClass::Read,
                   [reply, l2_mask, data = line.data, self_mask] {
                       reply(l2_mask, data, self_mask);
                   });

        for (NodeId owner = 0;
             any_fwd &&
             owner < static_cast<NodeId>(_fwdScratch.size());
             ++owner) {
            WordMask fwd_mask =
                _fwdScratch[static_cast<std::size_t>(owner)];
            if (fwd_mask == 0)
                continue;
            ++_forwards;
            if (_trace) {
                _trace->record(curTick(), trace::Phase::L2Forward,
                               _node, lineAlign(line_addr), 0,
                               static_cast<std::uint16_t>(owner));
            }
            DenovoL1Cache *l1 = _l1s[static_cast<std::size_t>(owner)];
            _mesh.send(_node, owner, kControlFlits, TrafficClass::Read,
                       [l1, line_addr, fwd_mask, requestor,
                        req_epoch] {
                           l1->handleReadFwd(lineAlign(line_addr),
                                             fwd_mask, requestor,
                                             req_epoch);
                       });
        }
    });
}

// ---------------------------------------------------------------------
// Registrations
// ---------------------------------------------------------------------

void
DenovoL2Bank::handleRegReq(Addr line_addr, WordMask mask, bool is_sync,
                           NodeId requestor, RegReply reply)
{
    if (is_sync)
        ++_syncRegistrations;
    else
        ++_registrations;

    withLine(line_addr, [this, line_addr, mask, is_sync, requestor,
                         reply = std::move(reply)](CacheLine &line) {
        WordMask direct = 0;
        WordMask moved = 0;
        bool any_fwd = false;
        std::fill(_fwdScratch.begin(), _fwdScratch.end(),
                  WordMask{0});
        for (unsigned w = 0; w < kWordsPerLine; ++w) {
            WordMask bit = static_cast<WordMask>(1u << w);
            if (!(mask & bit))
                continue;
            if (line.wstate[w] == WordState::Registered) {
                if (line.owner[w] == requestor) {
                    direct |= bit;
                } else {
                    // Serialize racy registrations in arrival order:
                    // record the new owner now and forward to the old
                    // one, forming the distributed queue.
                    _fwdScratch[static_cast<std::size_t>(
                        line.owner[w])] |= bit;
                    any_fwd = true;
                    moved |= bit;
                    line.owner[w] =
                        static_cast<std::int16_t>(requestor);
                }
            } else {
                direct |= bit;
                moved |= bit;
                line.wstate[w] = WordState::Registered;
                line.owner[w] = static_cast<std::int16_t>(requestor);
            }
        }

        if (_trace && moved) {
            // One event per request: the words whose registered
            // owner just became the requestor (direct grants plus
            // queue-forwarded words).
            _trace->record(curTick(), trace::Phase::L2OwnerChange,
                           _node, lineAlign(line_addr), 0, moved);
        }

        TrafficClass cls = is_sync ? TrafficClass::Atomic
                                   : TrafficClass::Registration;
        unsigned flits = is_sync ? flitsForWords(popcount(direct))
                                 : kControlFlits;
        _mesh.send(_node, requestor, flits, cls,
                   [reply, direct, data = line.data] {
                       reply(direct, data);
                   });

        for (NodeId owner = 0;
             any_fwd &&
             owner < static_cast<NodeId>(_fwdScratch.size());
             ++owner) {
            WordMask fwd_mask =
                _fwdScratch[static_cast<std::size_t>(owner)];
            if (fwd_mask == 0)
                continue;
            ++_forwards;
            if (_trace) {
                _trace->record(curTick(), trace::Phase::L2Forward,
                               _node, lineAlign(line_addr), 0,
                               static_cast<std::uint16_t>(owner));
            }
            DenovoL1Cache *l1 = _l1s[static_cast<std::size_t>(owner)];
            _mesh.send(_node, owner, kControlFlits, cls,
                       [l1, line_addr, fwd_mask, requestor, is_sync] {
                           l1->handleTransferReq(lineAlign(line_addr),
                                                 fwd_mask, requestor,
                                                 is_sync, false);
                       });
        }
    });
}

// ---------------------------------------------------------------------
// Writebacks
// ---------------------------------------------------------------------

void
DenovoL2Bank::handleWriteBack(Addr line_addr, WordMask mask,
                              const LineData &data, NodeId requestor,
                              DoneCallback ack)
{
    withLine(line_addr, [this, mask, data, requestor,
                         ack = std::move(ack)](CacheLine &line) {
        WordMask accepted = 0;
        for (unsigned w = 0; w < kWordsPerLine; ++w) {
            WordMask bit = static_cast<WordMask>(1u << w);
            if (!(mask & bit))
                continue;
            if (line.wstate[w] == WordState::Registered &&
                line.owner[w] == requestor) {
                line.data[w] = data[w];
                line.wstate[w] = WordState::Valid;
                line.owner[w] = static_cast<std::int16_t>(kNoNode);
                line.dirty |= bit;
                accepted |= bit;
                ++_writebacks;
            } else {
                // Ownership already moved on; the data is stale.
                ++_staleWritebacks;
            }
        }
        if (_trace && accepted) {
            // Accepted words return to L2 ownership (owner = none).
            _trace->record(curTick(), trace::Phase::L2OwnerChange,
                           _node, lineAlign(line.addr), 0, accepted);
        }
        _mesh.send(_node, requestor, kControlFlits,
                   TrafficClass::WriteBack, std::move(ack));
    });
}

void
DenovoL2Bank::handleStreamingWrite(Addr line_addr, WordMask mask,
                                   const LineData &data,
                                   NodeId requestor, DoneCallback ack)
{
    withLine(line_addr, [this, mask, data, requestor,
                         ack = std::move(ack)](CacheLine &line) {
        WordMask accepted = 0;
        for (unsigned w = 0; w < kWordsPerLine; ++w) {
            WordMask bit = static_cast<WordMask>(1u << w);
            if (!(mask & bit))
                continue;
            if (line.wstate[w] == WordState::Registered) {
                // An L1 owns the word (the program registered it by
                // sync or mis-declared the region): the owned copy
                // is authoritative, the write-through is stale.
                ++_staleWritebacks;
                continue;
            }
            line.data[w] = data[w];
            line.wstate[w] = WordState::Valid;
            line.dirty |= bit;
            accepted |= bit;
            ++_streamingWritesStat;
        }
        if (_trace && accepted) {
            _trace->record(curTick(), trace::Phase::L2OwnerChange,
                           _node, lineAlign(line.addr), 0, accepted);
        }
        _mesh.send(_node, requestor, kControlFlits,
                   TrafficClass::WriteBack, std::move(ack));
    });
}

// ---------------------------------------------------------------------
// Memory-side sync engine (DD+SE)
// ---------------------------------------------------------------------

void
DenovoL2Bank::handleSyncOp(const SyncOp &op, NodeId requestor,
                           ValueCallback reply)
{
    ++_engineSyncs;
    withLine(op.addr, [this, op, requestor,
                       reply = std::move(reply)](CacheLine &line) mutable {
        Addr line_addr = lineAlign(op.addr);
        unsigned w = wordInLine(op.addr);
        bool registered = line.wstate[w] == WordState::Registered;

        // Syncs on the same word must perform in arrival order: if
        // older ops are already queued for this word, join the queue
        // even when the word itself has returned.
        bool word_waiting = false;
        if (PendingSyncState *pending = _pendingSyncs.find(line_addr)) {
            for (const PendingSync &p : pending->ops) {
                if (wordInLine(p.op.addr) == w) {
                    word_waiting = true;
                    break;
                }
            }
        }
        if (!registered && !word_waiting) {
            performEngineSync(line, op, requestor, std::move(reply));
            return;
        }

        // The word lives in an L1 (it was registered by plain data
        // writes, e.g. initialization in an earlier kernel): pull it
        // back and queue the op behind the reclaim.
        PendingSyncState &state = _pendingSyncs[line_addr];
        state.ops.push_back({op, requestor, std::move(reply)});
        if (registered)
            issueSyncReclaim(line, line_addr,
                             static_cast<WordMask>(1u << w));
    });
}

void
DenovoL2Bank::performEngineSync(CacheLine &line, const SyncOp &op,
                                NodeId requestor, ValueCallback reply)
{
    _energy.atomicAlu();
    if (_trace) {
        _trace->record(curTick(), trace::Phase::L2Atomic, _node,
                       op.addr, 0,
                       static_cast<std::uint16_t>(requestor));
    }
    if (_races)
        _races->syncPerformed(op, curTick());
    unsigned w = wordInLine(op.addr);
    AtomicResult res = applyAtomic(op, line.data[w]);
    if (res.stored) {
        line.data[w] = res.newValue;
        line.dirty |= static_cast<WordMask>(1u << w);
    }
    _mesh.send(_node, requestor, flitsForWords(1), TrafficClass::Atomic,
               [reply = std::move(reply), v = res.returned] {
                   reply(v);
               });
}

void
DenovoL2Bank::issueSyncReclaim(CacheLine &line, Addr line_addr,
                               WordMask bit)
{
    PendingSyncState &state = _pendingSyncs[line_addr];
    if (state.requested & bit)
        return; // reclaim already in flight
    state.requested |= bit;
    ++_forwards;

    unsigned w = 0;
    while (!(bit & (1u << w)))
        ++w;
    NodeId owner = line.owner[w];
    DenovoL1Cache *l1 = _l1s[static_cast<std::size_t>(owner)];
    _mesh.send(_node, owner, kControlFlits, TrafficClass::Atomic,
               [l1, line_addr, bit, node = _node] {
                   l1->handleTransferReq(line_addr, bit, node, false,
                                         true);
               });
}

void
DenovoL2Bank::servePendingSyncs(CacheLine &line, Addr line_addr)
{
    PendingSyncState *state = _pendingSyncs.find(line_addr);
    if (!state)
        return;
    std::deque<PendingSync> keep;
    while (!state->ops.empty()) {
        PendingSync entry = std::move(state->ops.front());
        state->ops.pop_front();
        unsigned w = wordInLine(entry.op.addr);
        if (line.wstate[w] == WordState::Registered) {
            // A racing data registration took the word again before
            // this op could perform: reclaim once more.
            issueSyncReclaim(line, line_addr,
                             static_cast<WordMask>(1u << w));
            keep.push_back(std::move(entry));
            continue;
        }
        performEngineSync(line, entry.op, entry.requestor,
                          std::move(entry.reply));
    }
    if (keep.empty() && state->requested == 0)
        _pendingSyncs.erase(line_addr);
    else
        state->ops = std::move(keep);
}

// ---------------------------------------------------------------------
// Test hooks
// ---------------------------------------------------------------------

std::uint32_t
DenovoL2Bank::peekWord(Addr addr)
{
    if (CacheLine *line = _array.lookup(lineAlign(addr)))
        return line->data[wordInLine(addr)];
    return _memory.readWord(addr);
}

NodeId
DenovoL2Bank::ownerOf(Addr addr)
{
    CacheLine *line = _array.lookup(lineAlign(addr));
    if (!line)
        return kNoNode;
    unsigned w = wordInLine(addr);
    if (line->wstate[w] != WordState::Registered)
        return kNoNode;
    return line->owner[w];
}

// ---------------------------------------------------------------------
// Diagnostics
// ---------------------------------------------------------------------

ControllerSnapshot
DenovoL2Bank::snapshot() const
{
    ControllerSnapshot snap;
    snap.name = name();
    snap.gauge("fetches", _fetches.size());
    snap.gauge("stalled", _stalled.size());
    snap.gauge("recalls", _recalls.size());
    snap.gauge("pending_syncs", _pendingSyncs.size());
    _fetches.forEach([&](Addr line_addr, const FetchEntry &entry) {
        std::ostringstream os;
        os << "fetch line 0x" << std::hex << line_addr << std::dec
           << " waiters=" << entry.waiters.size()
           << " dramDone=" << entry.dramDone;
        snap.detail.push_back(os.str());
    });
    _recalls.forEachSorted([&](Addr line_addr,
                               const RecallState &state) {
        std::ostringstream os;
        os << "recall line 0x" << std::hex << line_addr
           << " outstanding=0x" << state.outstanding << std::dec
           << " deferred=" << state.deferred.size()
           << " blockedFetches=" << state.blockedFetches.size();
        snap.detail.push_back(os.str());
    });
    return snap;
}

std::vector<std::string>
DenovoL2Bank::checkInvariants(bool quiesced) const
{
    std::vector<std::string> out;
    _array.forEachValid([&](const CacheLine &line) {
        for (unsigned w = 0; w < kWordsPerLine; ++w) {
            if (line.wstate[w] != WordState::Registered)
                continue;
            NodeId owner = line.owner[w];
            if (owner < 0 ||
                static_cast<std::size_t>(owner) >= _l1s.size() ||
                _l1s[static_cast<std::size_t>(owner)] == nullptr) {
                std::ostringstream os;
                os << name() << ": word 0x" << std::hex
                   << (line.addr + w * kWordBytes) << std::dec
                   << " registered to invalid node " << owner;
                out.push_back(os.str());
            }
        }
    });
    if (quiesced) {
        ControllerSnapshot snap = snapshot();
        if (!snap.quiescent()) {
            out.push_back(name() + ": state leaked at quiesce: " +
                          snap.summary());
        }
    }
    return out;
}

void
DenovoL2Bank::forEachRegisteredWord(
    const std::function<void(Addr, NodeId)> &fn) const
{
    _array.forEachValid([&](const CacheLine &line) {
        for (unsigned w = 0; w < kWordsPerLine; ++w) {
            if (line.wstate[w] == WordState::Registered)
                fn(line.addr + w * kWordBytes, line.owner[w]);
        }
    });
}

void
DenovoL2Bank::debugSetOwner(Addr addr, NodeId owner)
{
    CacheLine *line = _array.lookup(lineAlign(addr));
    if (!line) {
        line = _array.findVictim(lineAlign(addr));
        _array.install(*line, lineAlign(addr));
    }
    unsigned w = wordInLine(addr);
    line->wstate[w] = WordState::Registered;
    line->owner[w] = static_cast<std::int16_t>(owner);
}

} // namespace nosync
