/**
 * @file
 * Abstract L1 cache controller interface.
 *
 * A compute unit drives its L1 through this interface. The controller
 * owns the full consistency-model sequencing for synchronization
 * accesses: a release-flavored sync first makes prior writes visible
 * per the protocol (drain writethroughs / obtain ownership), and an
 * acquire-flavored sync self-invalidates per the protocol and scope
 * when it completes. Callers guarantee (and the thread-block contexts
 * do) that a thread issues a sync access only after all of its own
 * previous accesses completed, which together with the controller-side
 * sequencing implements the program-order requirement of Section 2.
 */

#ifndef COHERENCE_L1_CONTROLLER_HH
#define COHERENCE_L1_CONTROLLER_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "coherence/protocol.hh"
#include "coherence/snapshot.hh"
#include "energy/energy_model.hh"
#include "sim/sim_object.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace nosync
{

namespace trace
{
class TraceSink;
}

namespace analysis
{
class RaceDetector;
}

/** Callback returning a loaded / atomic-returned value. */
using ValueCallback = std::function<void(std::uint32_t)>;

/** Completion callback. */
using DoneCallback = std::function<void()>;

/** Statistics common to every L1 controller flavour. */
struct L1Stats
{
    L1Stats(stats::StatSet &set, const std::string &prefix)
        : loadHits(set.registerScalar(prefix + ".load_hits",
                                      "data loads hitting in L1/SB")),
          loadMisses(set.registerScalar(prefix + ".load_misses",
                                        "data loads missing in L1")),
          storeHits(
              set.registerScalar(prefix + ".store_hits",
                                 "data stores completing in L1")),
          storeBuffered(
              set.registerScalar(prefix + ".store_buffered",
                                 "data stores entering the SB")),
          storeCoalesced(
              set.registerScalar(prefix + ".store_coalesced",
                                 "stores coalescing into SB "
                                 "entries")),
          sbOverflowDrains(
              set.registerScalar(prefix + ".sb_overflow_drains",
                                 "store-buffer drains forced by "
                                 "overflow")),
          syncHits(set.registerScalar(
              prefix + ".sync_hits",
              "sync accesses performed at L1 without "
              "network traffic")),
          syncMisses(set.registerScalar(prefix + ".sync_misses",
                                        "sync accesses requiring the "
                                        "network")),
          acquireInvalidations(
              set.registerScalar(prefix + ".acquire_invalidations",
                                 "flash/self invalidation "
                                 "operations")),
          wordsInvalidated(
              set.registerScalar(prefix + ".words_invalidated",
                                 "words discarded by "
                                 "self-invalidation")),
          wordsPreserved(
              set.registerScalar(prefix + ".words_preserved",
                                 "words preserved across "
                                 "acquires")),
          releaseDrains(
              set.registerScalar(prefix + ".release_drains",
                                 "release-triggered SB drains")),
          evictions(set.registerScalar(prefix + ".evictions",
                                       "L1 line evictions"))
    {}

    stats::Handle<stats::Scalar> loadHits;
    stats::Handle<stats::Scalar> loadMisses;
    stats::Handle<stats::Scalar> storeHits;
    stats::Handle<stats::Scalar> storeBuffered;
    stats::Handle<stats::Scalar> storeCoalesced;
    stats::Handle<stats::Scalar> sbOverflowDrains;
    stats::Handle<stats::Scalar> syncHits;
    stats::Handle<stats::Scalar> syncMisses;
    stats::Handle<stats::Scalar> acquireInvalidations;
    stats::Handle<stats::Scalar> wordsInvalidated;
    stats::Handle<stats::Scalar> wordsPreserved;
    stats::Handle<stats::Scalar> releaseDrains;
    stats::Handle<stats::Scalar> evictions;
};

/** Interface a compute unit uses to access memory through its L1. */
class L1Controller : public SimObject
{
  public:
    L1Controller(const std::string &name, EventQueue &eq,
                 stats::StatSet &stats, EnergyModel &energy,
                 NodeId node, const ProtocolConfig &config,
                 trace::TraceSink *trace = nullptr)
        : SimObject(name, eq), _node(node), _config(config),
          _energy(energy), _stats(stats, name), _trace(trace)
    {}

    NodeId node() const { return _node; }
    const ProtocolConfig &config() const { return _config; }
    const L1Stats &l1Stats() const { return _stats; }

    /** Structured occupancy snapshot for hang diagnostics. */
    virtual ControllerSnapshot snapshot() const = 0;

    /** Protocol invariant sweep; returns violation descriptions. */
    virtual std::vector<std::string>
    checkInvariants(bool quiesced) const = 0;

    /** Issue a data load; @p cb fires with the value when it returns. */
    virtual void load(Addr addr, ValueCallback cb) = 0;

    /**
     * Issue a data store; @p cb fires when the store retires from the
     * issuing thread's perspective (it may still be buffered). The
     * controller stalls the callback while the store buffer drains if
     * it is full.
     */
    virtual void store(Addr addr, std::uint32_t value,
                       DoneCallback cb) = 0;

    /**
     * Issue a synchronization access. Release sequencing (prior-write
     * visibility) happens before the atomic performs; acquire
     * sequencing (self-invalidation) happens when it completes; then
     * @p cb fires with the atomic's return value.
     */
    virtual void sync(const SyncOp &op, ValueCallback cb) = 0;

    /**
     * Kernel-boundary begin: the implicit global acquire at kernel
     * launch (self-invalidate per protocol).
     */
    virtual void kernelBegin() = 0;

    /**
     * Kernel-boundary end: the implicit global release at kernel
     * completion; @p cb fires once all prior writes are visible per
     * the protocol.
     */
    virtual void kernelEnd(DoneCallback cb) = 0;

    /** Drain any buffered writes at the given scope (fence helper). */
    virtual void drainWrites(Scope scope, DoneCallback cb) = 0;

    /**
     * Attach the happens-before race detector (nullptr = disabled).
     * The controller notifies it whenever an atomic functionally
     * performs at this L1, i.e. at the point the operation takes its
     * place in coherence order.
     */
    void setRaceDetector(analysis::RaceDetector *races)
    {
        _races = races;
    }

  protected:
    NodeId _node;
    ProtocolConfig _config;
    EnergyModel &_energy;
    L1Stats _stats;
    /** Observability sink; nullptr when tracing is disabled. */
    trace::TraceSink *_trace = nullptr;
    /** Race detector; nullptr when race checking is disabled. */
    analysis::RaceDetector *_races = nullptr;
};

} // namespace nosync

#endif // COHERENCE_L1_CONTROLLER_HH
