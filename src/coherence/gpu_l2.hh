/**
 * @file
 * Shared L2 bank for the conventional GPU coherence protocol.
 *
 * The L2 is the coherence point: it is kept up to date by store-buffer
 * writethroughs and it executes all globally scoped atomics. It needs
 * only a valid bit per line (plus a dirty mask toward DRAM); there are
 * no sharer lists, directories, or protocol forwards.
 */

#ifndef COHERENCE_GPU_L2_HH
#define COHERENCE_GPU_L2_HH

#include <deque>
#include <functional>
#include <vector>

#include "coherence/cache_timings.hh"
#include "coherence/l1_controller.hh"
#include "coherence/l2_controller.hh"
#include "coherence/protocol.hh"
#include "coherence/snapshot.hh"
#include "mem/cache_array.hh"
#include "mem/functional_mem.hh"
#include "mem/mshr.hh"
#include "noc/mesh.hh"

namespace nosync
{

/** One bank of the shared GPU L2. */
class GpuL2Bank : public L2Controller
{
  public:
    GpuL2Bank(const std::string &name, EventQueue &eq,
              stats::StatSet &stats, EnergyModel &energy, Mesh &mesh,
              NodeId node, FunctionalMem &memory,
              const CacheGeometry &geom, const CacheTimings &timings,
              trace::TraceSink *trace = nullptr);

    /** Data read request: replies with the full line. */
    void handleReadReq(Addr line_addr, NodeId requestor,
                       std::function<void(const LineData &)> reply);

    /**
     * Writethrough of the masked words; acks to the requestor once
     * merged (the release-side completion point for GPU coherence).
     */
    void handleWriteThrough(Addr line_addr, WordMask mask,
                            const LineData &data, NodeId requestor,
                            DoneCallback ack);

    /** Atomic executed at the L2 (globally scoped synchronization). */
    void handleAtomic(const SyncOp &op, NodeId requestor,
                      ValueCallback reply);

    /** Direct functional peek used by tests. */
    std::uint32_t peekWord(Addr addr) override;

    // Diagnostics -----------------------------------------------------
    /** Structured view of outstanding transaction state. */
    ControllerSnapshot snapshot() const override;

    /** Bank-local invariant sweep (see GpuL1Cache::checkInvariants). */
    std::vector<std::string>
    checkInvariants(bool quiesced) const override;

  private:
    /** Run @p fn on the (possibly DRAM-fetched) line after timing. */
    void withLine(Addr line_addr, std::function<void(CacheLine &)> fn);

    /** Install a line fetched from memory, evicting as needed. */
    CacheLine &installLine(Addr line_addr);

    Mesh &_mesh;
    EnergyModel &_energy;
    FunctionalMem &_memory;
    CacheArray _array;
    CacheTimings _timings;

    /** Next tick the pipelined bank accepts an access. */
    Tick _bankFree = 0;

    /** Outstanding DRAM fetches, merged per line. */
    struct FetchEntry
    {
        std::vector<std::function<void(CacheLine &)>> waiters;
    };
    MshrTable<FetchEntry> _fetches;

    /**
     * Requests stalled on a full fetch MSHR, processed strictly in
     * arrival order: the protocols rely on per-source FIFO delivery,
     * so the bank must not reorder stalled requests.
     */
    std::deque<std::pair<Addr, std::function<void(CacheLine &)>>>
        _stalled;

    void withLineReady(Addr line_addr,
                       std::function<void(CacheLine &)> fn,
                       bool queued = false);
    void processStalled();

    stats::Handle<stats::Scalar> _reads;
    stats::Handle<stats::Scalar> _writethroughs;
    stats::Handle<stats::Scalar> _atomics;
    stats::Handle<stats::Scalar> _dramFetches;
    stats::Handle<stats::Scalar> _dramWritebacks;
};

} // namespace nosync

#endif // COHERENCE_GPU_L2_HH
