/**
 * @file
 * Abstract L2 bank controller interface.
 *
 * Both bank flavours (GPU writethrough, DeNovo ownership) share the
 * surface the rest of the system needs: a mesh node, a debug word
 * probe, and the hang-diagnostic snapshot / invariant sweep. System
 * exposes banks uniformly through this interface; flavour-specific
 * protocol entry points (handleRegReq, handleWriteThrough, ...) stay
 * on the concrete classes, reached via as<T>() where a caller
 * genuinely needs them.
 */

#ifndef COHERENCE_L2_CONTROLLER_HH
#define COHERENCE_L2_CONTROLLER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "coherence/snapshot.hh"
#include "sim/sim_object.hh"
#include "sim/types.hh"

namespace nosync
{

namespace trace
{
class TraceSink;
}

namespace analysis
{
class RaceDetector;
}

/** Interface common to both L2 bank flavours. */
class L2Controller : public SimObject
{
  public:
    L2Controller(const std::string &name, EventQueue &eq, NodeId node,
                 trace::TraceSink *trace = nullptr)
        : SimObject(name, eq), _node(node), _trace(trace)
    {}

    NodeId node() const { return _node; }

    /** Debug probe: current value of @p addr at this bank. */
    virtual std::uint32_t peekWord(Addr addr) = 0;

    /** Structured occupancy snapshot for hang diagnostics. */
    virtual ControllerSnapshot snapshot() const = 0;

    /** Protocol invariant sweep; returns violation descriptions. */
    virtual std::vector<std::string>
    checkInvariants(bool quiesced) const = 0;

    /** Attach the happens-before race detector (nullptr = disabled). */
    void setRaceDetector(analysis::RaceDetector *races)
    {
        _races = races;
    }

  protected:
    NodeId _node;
    /** Observability sink; nullptr when tracing is disabled. */
    trace::TraceSink *_trace = nullptr;
    /** Race detector; nullptr when race checking is disabled. */
    analysis::RaceDetector *_races = nullptr;
};

} // namespace nosync

#endif // COHERENCE_L2_CONTROLLER_HH
