/**
 * @file
 * DeNovo L1 cache controller (DD, DD+RO, and DH configurations).
 *
 * Word-granularity Invalid/Valid/Registered states with no transient
 * states: an in-flight transaction is simply a word whose MSHR entry
 * records what is pending. Writes and synchronization accesses obtain
 * ownership (registration); acquires self-invalidate only Valid words,
 * so owned data and synchronization variables are reused across
 * synchronization boundaries — the paper's central mechanism.
 *
 * Synchronization follows DeNovoSync0: sync reads and writes both
 * register; racy registrations serialize at the registry and form a
 * distributed queue via forwards, with same-CU requests coalescing in
 * the MSHR and serviced before any queued remote request.
 */

#ifndef COHERENCE_DENOVO_L1_HH
#define COHERENCE_DENOVO_L1_HH

#include <deque>
#include <unordered_map>
#include <utility>
#include <vector>

#include "mem/line_table.hh"

#include "coherence/cache_timings.hh"
#include "coherence/denovo_l2.hh"
#include "coherence/l1_controller.hh"
#include "coherence/region_map.hh"
#include "coherence/snapshot.hh"
#include "mem/cache_array.hh"
#include "mem/mshr.hh"
#include "mem/store_buffer.hh"

namespace nosync
{

/** DeNovo L1 data cache controller. */
class DenovoL1Cache : public L1Controller
{
  public:
    DenovoL1Cache(const std::string &name, EventQueue &eq,
                  stats::StatSet &stats, EnergyModel &energy,
                  Mesh &mesh, NodeId node, const ProtocolConfig &config,
                  std::vector<DenovoL2Bank *> banks,
                  const RegionMap &regions, const CacheGeometry &geom,
                  const CacheTimings &timings,
                  trace::TraceSink *trace = nullptr);

    /** Wire the peer L1s (for direct owner-to-requestor transfers). */
    void setPeers(std::vector<DenovoL1Cache *> peers)
    {
        _peers = std::move(peers);
    }

    // CU-facing interface --------------------------------------------
    void load(Addr addr, ValueCallback cb) override;
    void store(Addr addr, std::uint32_t value, DoneCallback cb)
        override;
    void sync(const SyncOp &op, ValueCallback cb) override;
    void kernelBegin() override;
    void kernelEnd(DoneCallback cb) override;
    void drainWrites(Scope scope, DoneCallback cb) override;

    // Network-facing handlers (invoked at arrival via mesh closures) -
    /**
     * Registry forwarded a data read: we own the words. @p req_epoch
     * is the requestor's opaque freshness token, echoed back with the
     * data.
     */
    void handleReadFwd(Addr line_addr, WordMask mask, NodeId requestor,
                       std::uint64_t req_epoch);

    /** Registry transferred our ownership to @p new_owner. */
    void handleTransferReq(Addr line_addr, WordMask mask,
                           NodeId new_owner, bool is_sync, bool to_l2);

    /** Ownership (and value, for sync) arriving from an old owner. */
    void handleTransferResp(Addr line_addr, WordMask mask,
                            const LineData &values, bool is_sync);

    /** Word data forwarded from a remote owner for our read. */
    void handleFwdData(Addr line_addr, WordMask mask,
                       const LineData &values,
                       std::uint64_t sent_epoch);

    // Test hooks ------------------------------------------------------
    WordState wordState(Addr addr) const;
    /** Functional view of a word this L1 holds; false if absent. */
    bool peekWord(Addr addr, std::uint32_t &value)
    {
        return peekLocal(addr, value);
    }
    /** Whether this L1 currently owns (has registered) the word. */
    bool
    ownsWord(Addr addr) const
    {
        return wordState(addr) == WordState::Registered;
    }

    /** Diagnostic dump of in-flight transaction state. */
    std::string dumpState();
    std::size_t storeBufferSize() const { return _sb.size(); }
    std::size_t mshrEntries() const { return _mshr.size(); }

    // Diagnostics -----------------------------------------------------
    /** Structured view of outstanding transaction state. */
    ControllerSnapshot snapshot() const override;

    /**
     * Controller-local invariant sweep. @p quiesced additionally
     * requires every outstanding-state structure to be empty (leak
     * detection). @return violation descriptions; empty when clean.
     */
    std::vector<std::string>
    checkInvariants(bool quiesced) const override;

    /** Invoke @p fn with the word address of every Registered word. */
    void forEachRegisteredWord(
        const std::function<void(Addr)> &fn) const;

    /**
     * Test hook for checker regression tests: force a word's
     * coherence state, bypassing the protocol entirely. Installs a
     * frame if the line is absent. NEVER call outside tests.
     */
    void debugCorruptWordState(Addr addr, WordState st);

  private:
    /** Remote request queued behind this CU's pending activity. */
    struct QueuedRemote
    {
        enum class Kind
        {
            ReadFwd,
            Transfer,
        };
        Kind kind;
        WordMask mask;
        NodeId target;
        bool isSync = false;
        bool toL2 = false;
        /** Arrival order relative to local sync ops (fairness). */
        std::uint64_t seq = 0;
        /** Requestor's freshness token (ReadFwd only). */
        std::uint64_t reqEpoch = 0;
    };

    /** Sync access waiting for ownership of its word. */
    struct SyncWaiter
    {
        unsigned word;
        SyncOp op;
        ValueCallback cb;
        /** Arrival order relative to queued remote requests. */
        std::uint64_t seq = 0;
    };

    /** A load waiting on a fill, with its acquire epoch at issue. */
    struct ReadTarget
    {
        Addr addr;
        ValueCallback cb;
        std::uint64_t epoch;
    };

    /** Per-line transaction state (the MSHR payload). */
    struct LineEntry
    {
        WordMask readPending = 0;
        /** Miss words accumulated this cycle, coalesced into one
         *  request per line (a coalesced warp access is one message,
         *  not one per word). */
        WordMask readUnsent = 0;
        bool readFlushScheduled = false;
        /**
         * Loads awaiting data. A reply satisfies targets whose epoch
         * is at most the request's send epoch; newer targets (issued
         * after a later acquire) trigger a fresh fetch, which keeps
         * self-invalidation precise per thread block.
         */
        std::vector<ReadTarget> readTargets;

        /** Words awaiting data-write registration; values below. */
        WordMask dataRegPending = 0;
        LineData pendingStoreData{};

        /** Words awaiting sync registration. */
        WordMask syncRegPending = 0;

        /**
         * Pending registrations held back because a writeback of the
         * same word is still unacknowledged: issuing them early could
         * be reordered with the writeback at the registry and let a
         * stale writeback clobber the new registration. Subset of
         * dataRegPending | syncRegPending.
         */
        WordMask regWaitingWb = 0;
        std::deque<SyncWaiter> syncQueue;
        /** Words whose sync queue is being executed right now. */
        WordMask syncRunning = 0;

        std::vector<QueuedRemote> remoteQueue;

        /** Monotonic arrival counter feeding the seq fields. */
        std::uint64_t nextSeq = 0;

        bool
        idle() const
        {
            return readPending == 0 && readUnsent == 0 &&
                   readTargets.empty() && dataRegPending == 0 &&
                   syncRegPending == 0 && syncQueue.empty() &&
                   syncRunning == 0 && remoteQueue.empty();
        }
    };

    /** Evicted-but-unacknowledged registered words (snoopable). */
    struct WbEntry
    {
        WordMask mask = 0;
        LineData data{};
        /** In-flight writebacks per word; a word stays snoopable
         *  until every writeback covering it was acknowledged. */
        std::array<std::uint8_t, kWordsPerLine> refs{};
    };

    DenovoL2Bank &homeBank(Addr addr);

    /** Look up / allocate the MSHR entry for a line. */
    LineEntry &entryFor(Addr line_addr);
    void maybeFreeEntry(Addr line_addr);

    /** Find a frame for @p line_addr, evicting if necessary. */
    CacheLine &ensureFrame(Addr line_addr);
    void evictFrame(CacheLine &victim);

    void issueRead(Addr line_addr, WordMask mask);
    /** Send the cycle's accumulated miss words as one request. */
    void flushUnsentReads(Addr line_addr);
    void issueRegistration(Addr line_addr, WordMask mask,
                           bool is_sync);

    /**
     * DD+PR: write streaming-region words through to the home bank
     * without obtaining ownership (the GPU-style store path applied
     * selectively to regions the program declared streaming).
     */
    void issueStreamingWrite(Addr line_addr, WordMask mask,
                             const LineData &data);
    void onStreamAck(Addr line_addr, WordMask mask);

    /** Issue registrations that were waiting for a writeback ack. */
    void releaseHeldRegistrations(Addr line_addr);

    void onReadReply(Addr line_addr, WordMask l2_mask,
                     const LineData &data, WordMask self_mask,
                     std::uint64_t sent_epoch);
    void onRegAck(Addr line_addr, WordMask direct_mask,
                  const LineData &values, bool is_sync);

    /** Ownership of @p mask arrived (ack or transfer). */
    void grantWords(Addr line_addr, WordMask mask,
                    const LineData &values, bool values_valid);

    /**
     * Mark arriving read data Valid (never downgrading Registered).
     * Words whose request predates the current acquire epoch are
     * only installed when they lie in the read-only region (DD+RO):
     * read-only data cannot be stale, so self-invalidation exempts
     * it; everything else must observe post-acquire values.
     */
    void installReadData(Addr line_addr, WordMask mask,
                         const LineData &values,
                         std::uint64_t sent_epoch);

    /** Serve read targets now satisfiable from local state. */
    void serveReadTargets(Addr line_addr);

    /**
     * Serve locally satisfiable read targets, then serve targets old
     * enough for the arriving reply data (@p reply_mask words at
     * @p sent_epoch), and re-fetch whatever remains unsatisfied.
     */
    void settleReads(Addr line_addr, WordMask reply_mask,
                     const LineData &reply_data,
                     std::uint64_t sent_epoch);

    /** Try reading a word from SB / array / wb-buffer / MSHR state. */
    bool peekLocal(Addr addr, std::uint32_t &value);

    /**
     * Service the per-word queue of local sync ops and remote
     * requests in arrival order (DeNovoSync0: coalesced local ops
     * already queued are serviced before a queued remote transfer;
     * locals arriving after the transfer re-register afterwards).
     */
    void processSyncQueue(Addr line_addr, unsigned word);

    /** Whether this L1 can currently supply the word's value. */
    bool holdsWord(Addr line_addr, unsigned word);

    /** Respond to a remote read/transfer for currently-served words. */
    void respondReadFwd(Addr line_addr, WordMask mask,
                        NodeId requestor, std::uint64_t req_epoch);
    void respondTransfer(Addr line_addr, WordMask mask, NodeId target,
                         bool is_sync, bool to_l2);

    /** Whether a word has pending local activity (sync coalescing). */
    bool wordBusy(Addr line_addr, unsigned word);

    /** Acquire-side self-invalidation of Valid words (O(1), lazy). */
    void invalidateValid();

    /**
     * Lazily apply acquire invalidations this line missed: sweep
     * Valid words (keeping read-only-region words under DD+RO;
     * Registered words are never invalidated).
     */
    void refreshLine(CacheLine &line);

    void performSync(const SyncOp &op, Scope scope, ValueCallback cb);
    void performLocalHrfSync(const SyncOp &op, ValueCallback cb);

    /**
     * DD+SE: perform the atomic at the home bank's sync engine
     * instead of registering ownership of the sync word here.
     */
    void performEngineSync(const SyncOp &op, Scope scope,
                           ValueCallback cb);
    void finishSync(const SyncOp &op, Scope scope, std::uint32_t value,
                    ValueCallback cb);

    void startDrain(DoneCallback cb);
    void maybeFinishDrains();

    void acceptStore(Addr addr, std::uint32_t value, DoneCallback cb);
    void serviceStallQueue();

    Mesh &_mesh;
    std::vector<DenovoL2Bank *> _banks;
    std::vector<DenovoL1Cache *> _peers;
    const RegionMap &_regions;
    CacheArray _array;
    StoreBuffer _sb;
    CacheTimings _timings;
    MshrTable<LineEntry> _mshr;

    /** Line-keyed, slab-stable: probed by every load's peekLocal. */
    LineTable<WbEntry> _wbBuffer;

    /** Words awaiting data-write registration across all lines. */
    unsigned _pendingWrites = 0;
    std::vector<DoneCallback> _drainWaiters;

    struct StalledStore
    {
        Addr addr;
        std::uint32_t value;
        DoneCallback cb;
    };
    std::deque<StalledStore> _stalledStores;
    bool _overflowDrainActive = false;

    /** Current acquire epoch (lazy self-invalidation). */
    std::uint64_t _curEpoch = 0;

    /**
     * DeNovoSync read-backoff state (syncReadBackoff configs): per
     * spun-on word, the last observed value and the current delay.
     */
    struct ReadBackoff
    {
        std::uint32_t lastValue = 0;
        bool seen = false;
        Cycles delay = 0;
    };
    std::unordered_map<Addr, ReadBackoff> _readBackoff;

    /** Update backoff state after a sync read observed @p value. */
    void noteSyncRead(const SyncOp &op, std::uint32_t value);

    /** Current registration delay for a sync access (0 if none). */
    Cycles syncBackoffDelay(const SyncOp &op);

    stats::Handle<stats::Scalar> _remoteReadsServed;
    stats::Handle<stats::Scalar> _ownershipTransfers;
    stats::Handle<stats::Scalar> _registrationsIssued;
    stats::Handle<stats::Scalar> _syncCoalesced;
    stats::Handle<stats::Scalar> _streamingWrites;
};

} // namespace nosync

#endif // COHERENCE_DENOVO_L1_HH
