/**
 * @file
 * Software region information (DD+RO and DD+PR).
 *
 * Region properties are hardware-oblivious, program-level facts the
 * application declares about address ranges:
 *
 *  - ReadOnly (DD+RO): never written during the current kernel, so
 *    reads survive acquire self-invalidations. The paper conveys the
 *    information through an opcode bit; here the map plays that role.
 *  - Streaming (DD+PR): written at most once per synchronization
 *    phase and read by many consumers next phase (frontiers, message
 *    buffers). Registering such words only migrates ownership to a
 *    writer that will never reuse it, so stores bypass registration
 *    and write through to the home L2 bank instead, GPU-style.
 *  - Owned: the default for every undeclared address — plain DeNovo
 *    ownership registration.
 *
 * The map stores every declared range as a sorted, non-overlapping
 * flat vector, coalescing overlapping and adjacent declarations of
 * the **same** policy at insertion time. That representation is both
 * correct and fast:
 *
 *  - Correct: an earlier `std::map<base, end>` keyed by base consulted
 *    only the immediate predecessor range of a probed address, so a
 *    nested or overlapping declaration *shadowed* an earlier covering
 *    range, and re-declaring the same base with a smaller size
 *    silently shrank the range. DD+RO would then self-invalidate words
 *    the program had legitimately declared read-only — wrong sharing
 *    behavior, not just a slowdown. With coalesced disjoint ranges the
 *    predecessor check is exact for any declaration pattern.
 *
 *  - Fast: `isReadOnly` runs on the fill path (one probe per installed
 *    word under DD+RO). A branchless binary search over a flat vector
 *    beats pointer-chasing a red-black tree, and the mask queries walk
 *    the (few) ranges overlapping one line instead of probing per word.
 *
 * Conflicting declarations — two overlapping ranges with different
 * policies — are a program error: the later declaration is rejected
 * (the established range keeps its policy, so the map stays sorted
 * and disjoint) and the conflict is recorded for `validate()`, which
 * the system checks before running. Adjacency across policies is
 * legal and never merges.
 */

#ifndef COHERENCE_REGION_MAP_HH
#define COHERENCE_REGION_MAP_HH

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace nosync
{

/** Program-declared per-region protocol policy (DD+PR). */
enum class RegionPolicy : std::uint8_t
{
    Owned = 0,  ///< default: DeNovo ownership registration
    ReadOnly,   ///< DD+RO: exempt from acquire self-invalidation
    Streaming,  ///< DD+PR: stores bypass registration, write through
};

/** Printable policy name (diagnostics and conflict reports). */
inline const char *
regionPolicyName(RegionPolicy policy)
{
    switch (policy) {
      case RegionPolicy::Owned:
        return "owned";
      case RegionPolicy::ReadOnly:
        return "read-only";
      case RegionPolicy::Streaming:
        return "streaming";
    }
    return "?";
}

/** Map from declared byte ranges to their region policy. */
class RegionMap
{
  public:
    /**
     * Declare [base, base+bytes) as @p policy. Same-policy overlaps
     * and adjacency coalesce (union semantics, as before); an overlap
     * with a different established policy is recorded as a conflict
     * and the new declaration is dropped. @return true iff accepted.
     */
    bool
    declare(Addr base, Addr bytes, RegionPolicy policy)
    {
        if (bytes == 0)
            return true;
        Addr end = base + bytes;
        ++_version;

        // Window of every range overlapping or adjacent to
        // [base, end). Declarations are init-time rare, so the linear
        // splice is fine.
        std::size_t lo = 0;
        while (lo < _ranges.size() && _ranges[lo].end < base)
            ++lo;
        std::size_t hi = lo;
        while (hi < _ranges.size() && _ranges[hi].base <= end)
            ++hi;

        // Strict overlap with a different policy is a program error:
        // reject, keep the established range authoritative, and leave
        // the report for validate(). (Merely adjacent different-policy
        // ranges are legal; they sit at the window's edges.)
        for (std::size_t i = lo; i < hi; ++i) {
            const Range &r = _ranges[i];
            if (r.policy != policy && r.base < end && r.end > base) {
                std::ostringstream os;
                os << regionPolicyName(policy) << " region [0x"
                   << std::hex << base << ", 0x" << end
                   << ") overlaps " << regionPolicyName(r.policy)
                   << " region [0x" << r.base << ", 0x" << r.end
                   << ")" << std::dec;
                _conflicts.push_back(os.str());
                return false;
            }
        }

        // Trim different-policy (adjacent-only) neighbors out of the
        // merge window so they never coalesce across policies.
        if (lo < hi && _ranges[lo].policy != policy)
            ++lo;
        if (lo < hi && _ranges[hi - 1].policy != policy)
            --hi;

        if (lo < hi) {
            base = std::min(base, _ranges[lo].base);
            end = std::max(end, _ranges[hi - 1].end);
            _ranges.erase(_ranges.begin() +
                              static_cast<std::ptrdiff_t>(lo),
                          _ranges.begin() +
                              static_cast<std::ptrdiff_t>(hi));
        }
        _ranges.insert(_ranges.begin() +
                           static_cast<std::ptrdiff_t>(lo),
                       Range{base, end, policy});
        return true;
    }

    /** Declare [base, base+bytes) read-only (the DD+RO entry point). */
    void
    addReadOnly(Addr base, Addr bytes)
    {
        declare(base, bytes, RegionPolicy::ReadOnly);
    }

    /** Drop every declared range (e.g. between kernels). */
    void
    clear()
    {
        _ranges.clear();
        _conflicts.clear();
        ++_version;
    }

    /**
     * Conflicting declarations accumulated so far (overlaps across
     * policies). Empty means every declaration was consistent; the
     * system fails a run whose workload left conflicts here.
     */
    const std::vector<std::string> &validate() const
    {
        return _conflicts;
    }

    /** Policy of the word at @p addr (Owned when undeclared). */
    RegionPolicy
    policyAt(Addr addr) const
    {
        std::size_t i = firstAbove(addr);
        if (i != 0 && addr < _ranges[i - 1].end)
            return _ranges[i - 1].policy;
        return RegionPolicy::Owned;
    }

    /** Whether the word at @p addr lies in a read-only range. */
    bool
    isReadOnly(Addr addr) const
    {
        return policyAt(addr) == RegionPolicy::ReadOnly;
    }

    /** Whether the word at @p addr lies in a streaming range. */
    bool
    isStreaming(Addr addr) const
    {
        return policyAt(addr) == RegionPolicy::Streaming;
    }

    /** Mask of read-only words within the line at @p line_addr. */
    WordMask
    readOnlyMask(Addr line_addr) const
    {
        return maskFor(line_addr, RegionPolicy::ReadOnly);
    }

    /** Mask of streaming words within the line at @p line_addr. */
    WordMask
    streamingMask(Addr line_addr) const
    {
        return maskFor(line_addr, RegionPolicy::Streaming);
    }

    bool empty() const { return _ranges.empty(); }

    /** Coalesced range count (tests: observes adjacency merging). */
    std::size_t rangeCount() const { return _ranges.size(); }

    /**
     * Monotonic declaration counter: bumped by every declare/clear.
     * Cache lines snapshot region masks at fill; a line stamped with
     * an older version re-snapshots before the mask is trusted, so
     * re-declaring regions between kernels can never leave resident
     * lines honoring stale masks.
     */
    std::uint32_t version() const { return _version; }

  private:
    /** A coalesced [base, end) byte range with its policy. */
    struct Range
    {
        Addr base;
        Addr end;
        RegionPolicy policy;
    };

    /** Mask of words of @p policy within the line at @p line_addr. */
    WordMask
    maskFor(Addr line_addr, RegionPolicy policy) const
    {
        if (_ranges.empty())
            return 0;
        line_addr = lineAlign(line_addr);
        Addr line_end = line_addr + kLineBytes;

        // One probe for the line, then walk the ranges overlapping
        // it; a word matches iff its base address is covered.
        std::size_t i = firstAbove(line_addr);
        if (i > 0 && _ranges[i - 1].end > line_addr)
            --i;
        WordMask mask = 0;
        for (; i < _ranges.size() && _ranges[i].base < line_end; ++i) {
            if (_ranges[i].policy != policy)
                continue;
            Addr lo = std::max(_ranges[i].base, line_addr);
            Addr hi = std::min(_ranges[i].end, line_end);
            unsigned first = static_cast<unsigned>(
                (lo - line_addr + kWordBytes - 1) / kWordBytes);
            unsigned last = static_cast<unsigned>(
                (hi - line_addr + kWordBytes - 1) / kWordBytes);
            if (first >= last)
                continue;
            mask |= static_cast<WordMask>(
                ((1u << last) - 1u) & ~((1u << first) - 1u));
        }
        return mask;
    }

    /** Index of the first range with base > addr (branchless probe). */
    std::size_t
    firstAbove(Addr addr) const
    {
        const Range *ranges = _ranges.data();
        std::size_t lo = 0;
        std::size_t n = _ranges.size();
        while (n > 0) {
            std::size_t half = n >> 1;
            // Compiles to a conditional move: no data-dependent
            // branch for the predictor to miss on.
            bool right = ranges[lo + half].base <= addr;
            lo = right ? lo + half + 1 : lo;
            n = right ? n - half - 1 : half;
        }
        return lo;
    }

    /** Sorted, non-overlapping; same-policy neighbors coalesced. */
    std::vector<Range> _ranges;

    /** Rejected cross-policy overlap declarations. */
    std::vector<std::string> _conflicts;

    std::uint32_t _version = 0;
};

} // namespace nosync

#endif // COHERENCE_REGION_MAP_HH
