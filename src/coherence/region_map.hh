/**
 * @file
 * Software region information (DD+RO).
 *
 * The read-only region is a hardware-oblivious, program-level property:
 * the application declares address ranges that are never written during
 * the current kernel. DD+RO consults this map on fills so read-only
 * words survive acquire self-invalidations. The paper conveys the
 * information through an opcode bit; here the map plays that role.
 */

#ifndef COHERENCE_REGION_MAP_HH
#define COHERENCE_REGION_MAP_HH

#include <map>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace nosync
{

/** Set of byte ranges marked read-only by the program. */
class RegionMap
{
  public:
    /** Declare [base, base+bytes) read-only. */
    void
    addReadOnly(Addr base, Addr bytes)
    {
        if (bytes == 0)
            return;
        _ranges[base] = base + bytes;
    }

    /** Drop every declared range (e.g. between kernels). */
    void clear() { _ranges.clear(); }

    /** Whether the word at @p addr lies in a read-only range. */
    bool
    isReadOnly(Addr addr) const
    {
        auto it = _ranges.upper_bound(addr);
        if (it == _ranges.begin())
            return false;
        --it;
        return addr < it->second;
    }

    /** Mask of read-only words within the line at @p line_addr. */
    WordMask
    readOnlyMask(Addr line_addr) const
    {
        if (_ranges.empty())
            return 0;
        WordMask mask = 0;
        line_addr = lineAlign(line_addr);
        for (unsigned w = 0; w < kWordsPerLine; ++w) {
            if (isReadOnly(line_addr + w * kWordBytes))
                mask |= static_cast<WordMask>(1u << w);
        }
        return mask;
    }

    bool empty() const { return _ranges.empty(); }

  private:
    /** base -> one-past-end, non-overlapping by construction of use. */
    std::map<Addr, Addr> _ranges;
};

} // namespace nosync

#endif // COHERENCE_REGION_MAP_HH
