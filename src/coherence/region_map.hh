/**
 * @file
 * Software region information (DD+RO).
 *
 * The read-only region is a hardware-oblivious, program-level property:
 * the application declares address ranges that are never written during
 * the current kernel. DD+RO consults this map on fills so read-only
 * words survive acquire self-invalidations. The paper conveys the
 * information through an opcode bit; here the map plays that role.
 *
 * The map stores the **union** of every declared range as a sorted,
 * non-overlapping flat vector, coalescing overlapping and adjacent
 * declarations at insertion time. That representation is both correct
 * and fast:
 *
 *  - Correct: an earlier `std::map<base, end>` keyed by base consulted
 *    only the immediate predecessor range of a probed address, so a
 *    nested or overlapping declaration *shadowed* an earlier covering
 *    range, and re-declaring the same base with a smaller size
 *    silently shrank the range. DD+RO would then self-invalidate words
 *    the program had legitimately declared read-only — wrong sharing
 *    behavior, not just a slowdown. With coalesced disjoint ranges the
 *    predecessor check is exact for any declaration pattern.
 *
 *  - Fast: `isReadOnly` runs on the fill path (one probe per installed
 *    word under DD+RO). A branchless binary search over a flat vector
 *    beats pointer-chasing a red-black tree, and `readOnlyMask` walks
 *    the (few) ranges overlapping one line instead of probing per word.
 */

#ifndef COHERENCE_REGION_MAP_HH
#define COHERENCE_REGION_MAP_HH

#include <algorithm>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace nosync
{

/** Set of byte ranges marked read-only by the program. */
class RegionMap
{
  public:
    /** Declare [base, base+bytes) read-only. */
    void
    addReadOnly(Addr base, Addr bytes)
    {
        if (bytes == 0)
            return;
        Addr end = base + bytes;

        // Coalesce with every range overlapping or adjacent to
        // [base, end): the map holds the union of all declarations,
        // so repeated, nested, or overlapping declarations can only
        // widen coverage, never shrink or shadow it. Declarations are
        // init-time rare, so the linear splice is fine.
        std::size_t lo = 0;
        while (lo < _ranges.size() && _ranges[lo].end < base)
            ++lo;
        std::size_t hi = lo;
        while (hi < _ranges.size() && _ranges[hi].base <= end)
            ++hi;
        if (lo < hi) {
            base = std::min(base, _ranges[lo].base);
            end = std::max(end, _ranges[hi - 1].end);
            _ranges.erase(_ranges.begin() +
                              static_cast<std::ptrdiff_t>(lo),
                          _ranges.begin() +
                              static_cast<std::ptrdiff_t>(hi));
        }
        _ranges.insert(_ranges.begin() +
                           static_cast<std::ptrdiff_t>(lo),
                       Range{base, end});
    }

    /** Drop every declared range (e.g. between kernels). */
    void clear() { _ranges.clear(); }

    /** Whether the word at @p addr lies in a read-only range. */
    bool
    isReadOnly(Addr addr) const
    {
        std::size_t i = firstAbove(addr);
        return i != 0 && addr < _ranges[i - 1].end;
    }

    /** Mask of read-only words within the line at @p line_addr. */
    WordMask
    readOnlyMask(Addr line_addr) const
    {
        if (_ranges.empty())
            return 0;
        line_addr = lineAlign(line_addr);
        Addr line_end = line_addr + kLineBytes;

        // One probe for the line, then walk the ranges overlapping
        // it; a word is read-only iff its base address is covered.
        std::size_t i = firstAbove(line_addr);
        if (i > 0 && _ranges[i - 1].end > line_addr)
            --i;
        WordMask mask = 0;
        for (; i < _ranges.size() && _ranges[i].base < line_end; ++i) {
            Addr lo = std::max(_ranges[i].base, line_addr);
            Addr hi = std::min(_ranges[i].end, line_end);
            unsigned first = static_cast<unsigned>(
                (lo - line_addr + kWordBytes - 1) / kWordBytes);
            unsigned last = static_cast<unsigned>(
                (hi - line_addr + kWordBytes - 1) / kWordBytes);
            if (first >= last)
                continue;
            mask |= static_cast<WordMask>(
                ((1u << last) - 1u) & ~((1u << first) - 1u));
        }
        return mask;
    }

    bool empty() const { return _ranges.empty(); }

    /** Coalesced range count (tests: observes adjacency merging). */
    std::size_t rangeCount() const { return _ranges.size(); }

  private:
    /** A coalesced [base, end) byte range. */
    struct Range
    {
        Addr base;
        Addr end;
    };

    /** Index of the first range with base > addr (branchless probe). */
    std::size_t
    firstAbove(Addr addr) const
    {
        const Range *ranges = _ranges.data();
        std::size_t lo = 0;
        std::size_t n = _ranges.size();
        while (n > 0) {
            std::size_t half = n >> 1;
            // Compiles to a conditional move: no data-dependent
            // branch for the predictor to miss on.
            bool right = ranges[lo + half].base <= addr;
            lo = right ? lo + half + 1 : lo;
            n = right ? n - half - 1 : half;
        }
        return lo;
    }

    /** Sorted, non-overlapping, non-adjacent by construction. */
    std::vector<Range> _ranges;
};

} // namespace nosync

#endif // COHERENCE_REGION_MAP_HH
