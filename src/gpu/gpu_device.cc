#include "gpu/gpu_device.hh"

#include "trace/trace_sink.hh"

namespace nosync
{

GpuDevice::GpuDevice(EventQueue &eq, stats::StatSet &stats,
                     EnergyModel &energy,
                     std::vector<L1Controller *> cu_l1s,
                     Workload &workload, std::uint64_t seed,
                     Cycles kernel_launch_latency,
                     trace::TraceSink *trace,
                     analysis::RaceDetector *races,
                     TbScheduler *sched, PdesEngine *engine,
                     std::vector<NodeId> cu_nodes)
    : SimObject("gpu", eq), _l1s(std::move(cu_l1s)),
      _cuNodes(std::move(cu_nodes)), _energy(energy),
      _workload(workload), _seed(seed),
      _launchLatency(kernel_launch_latency),
      _kernelsLaunched(stats.registerScalar("gpu.kernels_launched",
                                            "kernels launched")),
      _tbsExecuted(stats.registerScalar("gpu.tbs_executed",
                                        "thread blocks executed")),
      _trace(trace), _races(races), _sched(sched), _engine(engine)
{
    panic_if(_l1s.empty(), "GPU device with no compute units");
}

void
GpuDevice::run(DoneCallback on_complete)
{
    _onComplete = std::move(on_complete);
    _kernel = 0;
    scheduleIn(_launchLatency, [this] { launchKernel(); });
}

void
GpuDevice::launchKernel()
{
    panic_if(_kernel >= _workload.numKernels(),
             "launching past the last kernel");
    ++_kernelsLaunched;
    KernelInfo info = _workload.kernelInfo(_kernel);
    panic_if(info.numTbs == 0, "kernel with zero thread blocks");
    if (_trace) {
        _trace->record(curTick(), trace::Phase::KernelLaunch, 0, 0, 0,
                       static_cast<std::uint16_t>(_kernel));
    }

    // Implicit global acquire at kernel launch on every CU.
    for (L1Controller *l1 : _l1s)
        l1->kernelBegin();

    _kernelStart = curTick();
    _tbsLeft = info.numTbs;
    _cuTbsLeft.assign(_l1s.size(), 0);
    _contexts.clear();
    startTbs();
}

void
GpuDevice::startTbs()
{
    KernelInfo info = _workload.kernelInfo(_kernel);
    unsigned num_cus = static_cast<unsigned>(_l1s.size());

    for (unsigned tb = 0; tb < info.numTbs; ++tb) {
        unsigned cu = tb % num_cus;
        unsigned tb_on_cu = tb / num_cus;
        ++_cuTbsLeft[cu];

        // Deterministic per-TB seed so every configuration sees the
        // same workload shape (modulo timing feedback).
        std::uint64_t tb_seed =
            _seed ^ (0x51ed270b1ull * (_kernel + 1)) ^
            (0x9e3779b97f4a7c15ull * (tb + 1));
        unsigned race_slot = analysis::kNoRaceSlot;
        if (_races)
            race_slot = _races->tbStarted(_kernel, tb, cu);
        // With the engine, a TB's coroutine lives on its CU's shard
        // (the mesh node hosting the CU's L1): every wait it
        // schedules lands in that domain.
        EventQueue &tb_eq =
            _engine ? _engine->shard(shardOf(cu)) : eventQueue();
        _contexts.push_back(std::make_unique<TbContext>(
            tb_eq, *_l1s[cu], _energy, Rng(tb_seed), _kernel,
            tb, cu, tb_on_cu, num_cus,
            (info.numTbs + num_cus - 1) / num_cus, _trace, _races,
            race_slot, _sched));
    }

    // Start after all contexts exist (coroutines may finish
    // synchronously and mutate shared counters).
    for (auto &ctx : _contexts) {
        unsigned cu = ctx->cu();
        SimTask task = _workload.tbMain(*ctx);
        // TB completion fans out to device-wide state; with the
        // engine it is deposited as a barrier notification so it
        // runs in canonical order in coordinator context.
        task.start([this, cu, c = ctx.get()] {
            if (_engine) {
                _engine->postNotification([this, cu, c] {
                    c->markDone();
                    onTbDone(cu);
                });
            } else {
                c->markDone();
                onTbDone(cu);
            }
        });
    }
}

std::vector<std::string>
GpuDevice::waitStates() const
{
    std::vector<std::string> out;
    for (const auto &ctx : _contexts) {
        if (!ctx->done())
            out.push_back(ctx->waitSummary());
    }
    return out;
}

void
GpuDevice::onTbDone(unsigned cu)
{
    ++_tbsExecuted;
    panic_if(_cuTbsLeft[cu] == 0, "TB completion underflow on CU ", cu);
    if (--_cuTbsLeft[cu] == 0) {
        // This CU went idle: account its active-cycle energy for the
        // kernel (GPU core+ component).
        _energy.coreActiveCycles(
            static_cast<double>(curTick() - _kernelStart));
    }

    panic_if(_tbsLeft == 0, "kernel TB count underflow");
    if (--_tbsLeft != 0)
        return;

    // Implicit global release: every CU drains before the kernel is
    // considered complete.
    _drainsLeft = 0;
    for (std::size_t cu_idx = 0; cu_idx < _l1s.size(); ++cu_idx)
        ++_drainsLeft;
    for (L1Controller *l1 : _l1s) {
        // A drain ack can fire from inside the draining CU's domain
        // (the last writethrough ack arriving at its L1); the count
        // it decrements is device-wide, so with the engine the ack is
        // deferred to the barrier like TB completions.
        l1->kernelEnd([this] {
            if (_engine)
                _engine->postNotification([this] { onDrainAck(); });
            else
                onDrainAck();
        });
    }
}

void
GpuDevice::onDrainAck()
{
    panic_if(_drainsLeft == 0, "kernel drain underflow");
    if (--_drainsLeft == 0)
        onKernelDrained();
}

void
GpuDevice::onKernelDrained()
{
    if (_trace) {
        _trace->record(curTick(), trace::Phase::KernelDrain, 0, 0, 0,
                       static_cast<std::uint16_t>(_kernel));
    }
    if (_races) {
        // Kernel drain: the implicit device-wide release/acquire
        // pair. Every TB's clock joins the device base clock the
        // next kernel's TBs inherit.
        for (const auto &ctx : _contexts)
            _races->tbFinished(ctx->raceSlot());
    }
    _contexts.clear();
    ++_kernel;
    if (_kernel < _workload.numKernels()) {
        scheduleIn(_launchLatency, [this] { launchKernel(); });
        return;
    }
    auto done = std::move(_onComplete);
    if (done)
        done();
}

} // namespace nosync
