/**
 * @file
 * Execution context of one simulated thread block.
 *
 * A TbContext identifies the thread block (kernel, global index, CU,
 * index on its CU) and exposes awaitable memory operations that drive
 * the CU's L1 controller. One context models one thread block's
 * coalesced memory instruction stream; latency is hidden across the
 * thread blocks resident on a CU, as on real hardware.
 */

#ifndef GPU_TB_CONTEXT_HH
#define GPU_TB_CONTEXT_HH

#include <coroutine>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/race_detector.hh"
#include "coherence/l1_controller.hh"
#include "energy/energy_model.hh"
#include "gpu/sim_task.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "sim/tb_scheduler.hh"
#include "trace/trace_sink.hh"

namespace nosync
{

/** Thread-block identification and awaitable memory interface. */
class TbContext
{
  public:
    TbContext(EventQueue &eq, L1Controller &l1, EnergyModel &energy,
              Rng rng, unsigned kernel, unsigned tb_global,
              unsigned cu, unsigned tb_on_cu, unsigned num_cus,
              unsigned tbs_per_cu, trace::TraceSink *trace = nullptr,
              analysis::RaceDetector *races = nullptr,
              unsigned race_slot = analysis::kNoRaceSlot,
              TbScheduler *sched = nullptr)
        : _eq(eq), _l1(l1), _energy(energy), _rng(rng),
          _kernel(kernel), _tbGlobal(tb_global), _cu(cu),
          _tbOnCu(tb_on_cu), _numCus(num_cus), _tbsPerCu(tbs_per_cu),
          _trace(trace), _races(races), _raceSlot(race_slot),
          _sched(sched)
    {}

    unsigned kernel() const { return _kernel; }
    unsigned tbGlobal() const { return _tbGlobal; }
    unsigned cu() const { return _cu; }
    unsigned tbOnCu() const { return _tbOnCu; }
    unsigned numCus() const { return _numCus; }
    unsigned tbsPerCu() const { return _tbsPerCu; }
    Rng &rng() { return _rng; }
    L1Controller &l1() { return _l1; }
    Tick now() const { return _eq.now(); }

    // Transaction tracing ---------------------------------------------

    /**
     * Open a traced transaction for an access this TB issues now.
     * Returns 0 when tracing is disabled; endTxn(0) is a no-op, so
     * awaitables call the pair unconditionally.
     */
    std::uint64_t
    beginTxn(trace::TxnClass cls, Addr addr)
    {
        if (!_trace)
            return 0;
        return _trace->beginTxn(cls, _eq.now(),
                                static_cast<NodeId>(_cu), addr);
    }

    /** Close a traced transaction opened by beginTxn(). */
    void
    endTxn(std::uint64_t txn)
    {
        if (txn != 0)
            _trace->endTxn(txn, _eq.now());
    }

    /** Record a sync-point instant at this TB's CU (tracing on). */
    void
    recordSync(trace::Phase phase, const SyncOp &op)
    {
        // aux encodes the scope; values for the original two scopes
        // predate Scope::Device, so Device takes the next free code.
        std::uint16_t aux = 0;
        if (op.scope == Scope::Global)
            aux = 1;
        else if (op.scope == Scope::Device)
            aux = 2;
        _trace->record(_eq.now(), phase, _l1.node(), op.addr, 0, aux);
    }

    /** Latency class of a synchronization access. */
    static trace::TxnClass
    syncClass(const SyncOp &op)
    {
        bool device = op.scope == Scope::Device;
        switch (op.sem) {
          case SyncSemantics::Acquire:
            return device ? trace::TxnClass::SyncAcquireDevice
                          : trace::TxnClass::SyncAcquire;
          case SyncSemantics::Release:
            return device ? trace::TxnClass::SyncReleaseDevice
                          : trace::TxnClass::SyncRelease;
          case SyncSemantics::AcquireRelease:
            break;
        }
        return device ? trace::TxnClass::SyncAcqRelDevice
                      : trace::TxnClass::SyncAcqRel;
    }

    // Race checking ---------------------------------------------------

    /** Clock slot assigned by the race detector (kNoRaceSlot = off). */
    unsigned raceSlot() const { return _raceSlot; }

    /** Record a data load issued now (race checking on). */
    void
    noteDataRead(Addr addr)
    {
        if (_races)
            _races->dataRead(_raceSlot, addr, _eq.now());
    }

    /** Record a data store issued now (race checking on). */
    void
    noteDataWrite(Addr addr)
    {
        if (_races)
            _races->dataWrite(_raceSlot, addr, _eq.now());
    }

    // Wait-state tracking (hang diagnostics) --------------------------

    /** Record what this TB's coroutine is suspended on. */
    void
    beginWait(std::string what)
    {
        _waitWhat = std::move(what);
        _waitSince = _eq.now();
        _waiting = true;
    }

    /** Clear the wait record just before the coroutine resumes. */
    void endWait() { _waiting = false; }

    /** Mark the coroutine as run to completion. */
    void markDone() { _done = true; }

    bool done() const { return _done; }
    bool waiting() const { return _waiting; }

    /** One-line description of the suspension, for HangReport. */
    std::string
    waitSummary() const
    {
        std::ostringstream os;
        os << "kernel " << _kernel << " tb " << _tbGlobal << " (cu "
           << _cu << "): ";
        if (_done)
            os << "completed";
        else if (!_waiting)
            os << "runnable (between awaits)";
        else
            os << "awaiting " << _waitWhat << " since tick "
               << _waitSince;
        return os.str();
    }

    // Scheduling hook -------------------------------------------------

    /**
     * Route an operation's issue thunk through the attached scheduler
     * (model checking), or run it inline when none is attached — the
     * normal path, which stays branch-only so unscheduled runs are
     * bitwise identical. The thunk performs the race/trace hooks and
     * the L1 call, so under a scheduler those fire at the tick the
     * operation actually issues.
     */
    template <typename Fn>
    void
    issueOp(Addr addr, TbOpKind kind, Fn &&fn)
    {
        if (_sched == nullptr) {
            fn();
            return;
        }
        TbOp op;
        op.kernel = _kernel;
        op.tbGlobal = _tbGlobal;
        op.cu = _cu;
        op.addr = addr;
        op.kind = kind;
        _sched->issue(op, std::function<void()>(std::forward<Fn>(fn)));
    }

    /** TbOpKind of a synchronization access (scheduler footprint). */
    static TbOpKind
    syncOpKind(const SyncOp &op)
    {
        switch (op.func) {
          case AtomicFunc::Load:
            return TbOpKind::AtomicLoad;
          case AtomicFunc::Store:
            return TbOpKind::AtomicStore;
          case AtomicFunc::FetchAdd:
          case AtomicFunc::Exchange:
          case AtomicFunc::CompareSwap:
            break;
        }
        return TbOpKind::AtomicRmw;
    }

    /** Awaitable data load. */
    auto
    load(Addr addr)
    {
        struct Awaiter
        {
            TbContext *ctx;
            Addr addr;
            std::uint32_t value = 0;
            std::uint64_t txn = 0;

            bool await_ready() { return false; }

            void
            await_suspend(std::coroutine_handle<> h)
            {
                ctx->beginWait("load " + describeAddr(addr));
                ctx->issueOp(addr, TbOpKind::Load, [this, h] {
                    ctx->noteDataRead(addr);
                    txn = ctx->beginTxn(trace::TxnClass::Load, addr);
                    ctx->_l1.load(addr, [this, h](std::uint32_t v) {
                        value = v;
                        ctx->endTxn(txn);
                        ctx->endWait();
                        h.resume();
                    });
                });
            }

            std::uint32_t await_resume() { return value; }
        };
        return Awaiter{this, addr};
    }

    /** Awaitable batch of independent loads (a coalesced warp). */
    auto
    loadMany(std::vector<Addr> addrs)
    {
        struct Awaiter
        {
            TbContext *ctx;
            std::vector<Addr> addrs;
            std::vector<std::uint32_t> values;
            unsigned remaining = 0;
            std::uint64_t txn = 0;

            bool await_ready() { return addrs.empty(); }

            void
            await_suspend(std::coroutine_handle<> h)
            {
                ctx->beginWait(
                    "loadMany of " + std::to_string(addrs.size()) +
                    " words at " + describeAddr(addrs.front()));
                // The whole coalesced batch issues as one scheduled
                // quantum: a warp's loads are not interleavable.
                ctx->issueOp(addrs.front(), TbOpKind::Load, [this, h] {
                    for (Addr addr : addrs)
                        ctx->noteDataRead(addr);
                    // One transaction spans the whole coalesced
                    // batch: its latency is the slowest constituent
                    // load.
                    txn = ctx->beginTxn(trace::TxnClass::Load,
                                        addrs.front());
                    values.assign(addrs.size(), 0);
                    remaining = static_cast<unsigned>(addrs.size());
                    for (std::size_t i = 0; i < addrs.size(); ++i) {
                        ctx->_l1.load(addrs[i],
                                      [this, i, h](std::uint32_t v) {
                                          values[i] = v;
                                          if (--remaining == 0) {
                                              ctx->endTxn(txn);
                                              ctx->endWait();
                                              h.resume();
                                          }
                                      });
                    }
                });
            }

            std::vector<std::uint32_t>
            await_resume()
            {
                return std::move(values);
            }
        };
        return Awaiter{this, std::move(addrs), {}, 0};
    }

    /** Awaitable batch of independent stores (a coalesced warp). */
    auto
    storeMany(std::vector<std::pair<Addr, std::uint32_t>> stores)
    {
        struct Awaiter
        {
            TbContext *ctx;
            std::vector<std::pair<Addr, std::uint32_t>> stores;
            unsigned remaining = 0;
            std::uint64_t txn = 0;

            bool await_ready() { return stores.empty(); }

            void
            await_suspend(std::coroutine_handle<> h)
            {
                ctx->beginWait(
                    "storeMany of " + std::to_string(stores.size()) +
                    " words at " + describeAddr(stores.front().first));
                ctx->issueOp(stores.front().first, TbOpKind::Store,
                             [this, h] {
                    for (const auto &st : stores)
                        ctx->noteDataWrite(st.first);
                    txn = ctx->beginTxn(trace::TxnClass::Store,
                                        stores.front().first);
                    remaining = static_cast<unsigned>(stores.size());
                    for (const auto &[addr, value] : stores) {
                        ctx->_l1.store(addr, value, [this, h] {
                            if (--remaining == 0) {
                                ctx->endTxn(txn);
                                ctx->endWait();
                                h.resume();
                            }
                        });
                    }
                });
            }

            void await_resume() {}
        };
        return Awaiter{this, std::move(stores), 0};
    }

    /** Awaitable data store (completes when accepted/retired). */
    auto
    store(Addr addr, std::uint32_t value)
    {
        struct Awaiter
        {
            TbContext *ctx;
            Addr addr;
            std::uint32_t value;
            std::uint64_t txn = 0;

            bool await_ready() { return false; }

            void
            await_suspend(std::coroutine_handle<> h)
            {
                ctx->beginWait("store " + describeAddr(addr));
                ctx->issueOp(addr, TbOpKind::Store, [this, h] {
                    ctx->noteDataWrite(addr);
                    txn = ctx->beginTxn(trace::TxnClass::Store, addr);
                    ctx->_l1.store(addr, value, [this, h] {
                        ctx->endTxn(txn);
                        ctx->endWait();
                        h.resume();
                    });
                });
            }

            void await_resume() {}
        };
        return Awaiter{this, addr, value};
    }

    /** Awaitable synchronization (atomic) access. */
    auto
    atomic(SyncOp op)
    {
        // Stamp the issuing TB's clock slot so the coherence-side
        // perform sites can attribute the atomic to this TB.
        op.tb = _raceSlot;
        struct Awaiter
        {
            TbContext *ctx;
            SyncOp op;
            std::uint32_t value = 0;
            std::uint64_t txn = 0;

            bool await_ready() { return false; }

            void
            await_suspend(std::coroutine_handle<> h)
            {
                ctx->beginWait(describeSync(op));
                ctx->issueOp(op.addr, syncOpKind(op), [this, h] {
                    if (ctx->_trace) {
                        txn = ctx->beginTxn(syncClass(op), op.addr);
                        if (op.isAcquire())
                            ctx->recordSync(
                                trace::Phase::TbSyncAcquire, op);
                        if (op.isRelease())
                            ctx->recordSync(
                                trace::Phase::TbSyncRelease, op);
                    }
                    ctx->_l1.sync(op, [this, h](std::uint32_t v) {
                        value = v;
                        ctx->endTxn(txn);
                        ctx->endWait();
                        h.resume();
                    });
                });
            }

            std::uint32_t await_resume() { return value; }
        };
        return Awaiter{this, op};
    }

    /** Awaitable delay (compute work or synchronization backoff). */
    auto
    wait(Cycles cycles)
    {
        struct Awaiter
        {
            TbContext *ctx;
            Cycles cycles;

            bool await_ready() { return cycles == 0; }

            void
            await_suspend(std::coroutine_handle<> h)
            {
                ctx->beginWait("delay of " + std::to_string(cycles) +
                               " cycles");
                ctx->_eq.scheduleIn(cycles,
                                    [c = ctx, h] {
                                        c->endWait();
                                        h.resume();
                                    },
                                    EventPriority::CuIssue);
            }

            void await_resume() {}
        };
        return Awaiter{this, cycles};
    }

    /** Scratchpad accesses: @p words word accesses, 1 cycle. */
    auto
    scratch(unsigned words)
    {
        _energy.scratchAccess(words);
        return wait(1);
    }

    // Convenience sync-op builders ------------------------------------

    SyncOp
    atomicLoad(Addr addr, Scope scope) const
    {
        SyncOp op;
        op.func = AtomicFunc::Load;
        op.addr = addr;
        op.scope = scope;
        op.sem = SyncSemantics::Acquire;
        return op;
    }

    SyncOp
    atomicStore(Addr addr, std::uint32_t value, Scope scope) const
    {
        SyncOp op;
        op.func = AtomicFunc::Store;
        op.addr = addr;
        op.operand = value;
        op.scope = scope;
        op.sem = SyncSemantics::Release;
        return op;
    }

    SyncOp
    fetchAdd(Addr addr, std::uint32_t amount, Scope scope,
             SyncSemantics sem = SyncSemantics::AcquireRelease) const
    {
        SyncOp op;
        op.func = AtomicFunc::FetchAdd;
        op.addr = addr;
        op.operand = amount;
        op.scope = scope;
        op.sem = sem;
        return op;
    }

    SyncOp
    compareSwap(Addr addr, std::uint32_t expected,
                std::uint32_t desired, Scope scope,
                SyncSemantics sem = SyncSemantics::AcquireRelease)
        const
    {
        SyncOp op;
        op.func = AtomicFunc::CompareSwap;
        op.addr = addr;
        op.compare = expected;
        op.operand = desired;
        op.scope = scope;
        op.sem = sem;
        return op;
    }

    SyncOp
    exchange(Addr addr, std::uint32_t desired, Scope scope,
             SyncSemantics sem = SyncSemantics::AcquireRelease) const
    {
        SyncOp op;
        op.func = AtomicFunc::Exchange;
        op.addr = addr;
        op.operand = desired;
        op.scope = scope;
        op.sem = sem;
        return op;
    }

  private:
    static std::string
    describeAddr(Addr addr)
    {
        std::ostringstream os;
        os << "0x" << std::hex << addr;
        return os.str();
    }

    static std::string
    describeSync(const SyncOp &op)
    {
        const char *func = "?";
        switch (op.func) {
          case AtomicFunc::Load: func = "atomic-load"; break;
          case AtomicFunc::Store: func = "atomic-store"; break;
          case AtomicFunc::FetchAdd: func = "fetch-add"; break;
          case AtomicFunc::Exchange: func = "exchange"; break;
          case AtomicFunc::CompareSwap: func = "compare-swap"; break;
        }
        const char *scope = "global";
        if (op.scope == Scope::Local)
            scope = "local";
        else if (op.scope == Scope::Device)
            scope = "device";
        std::ostringstream os;
        os << func << " " << describeAddr(op.addr) << " (" << scope
           << " scope)";
        return os.str();
    }

    EventQueue &_eq;
    L1Controller &_l1;
    EnergyModel &_energy;
    Rng _rng;
    unsigned _kernel;
    unsigned _tbGlobal;
    unsigned _cu;
    unsigned _tbOnCu;
    unsigned _numCus;
    unsigned _tbsPerCu;
    /** Observability sink; nullptr when tracing is disabled. */
    trace::TraceSink *_trace = nullptr;
    /** Race detector; nullptr when race checking is disabled. */
    analysis::RaceDetector *_races = nullptr;
    /** This TB's clock slot in the detector. */
    unsigned _raceSlot = analysis::kNoRaceSlot;
    /** Exploration scheduler; nullptr outside model checking. */
    TbScheduler *_sched = nullptr;

    // Wait-state tracking for hang diagnostics.
    std::string _waitWhat;
    Tick _waitSince = 0;
    bool _waiting = false;
    bool _done = false;
};

} // namespace nosync

#endif // GPU_TB_CONTEXT_HH
