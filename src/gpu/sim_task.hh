/**
 * @file
 * Coroutine task type for simulated thread-block programs.
 *
 * Workload code is written as straight-line C++20 coroutines that
 * co_await memory operations; the awaiters translate into the
 * callback-based controller interfaces and resume the coroutine from
 * event-queue callbacks. A SimTask can also be co_awaited from
 * another SimTask, so workloads can factor helpers (e.g. lock
 * acquire/release) into sub-coroutines.
 */

#ifndef GPU_SIM_TASK_HH
#define GPU_SIM_TASK_HH

#include <coroutine>
#include <exception>
#include <functional>
#include <utility>

namespace nosync
{

/** A lazily-started, self-destroying coroutine task. */
class SimTask
{
  public:
    struct promise_type
    {
        /** Continuation when awaited by a parent task. */
        std::coroutine_handle<> continuation;
        /** Completion callback when started as a root task. */
        std::function<void()> onDone;

        SimTask
        get_return_object()
        {
            return SimTask{
                std::coroutine_handle<promise_type>::from_promise(
                    *this)};
        }

        std::suspend_always initial_suspend() noexcept { return {}; }

        struct FinalAwaiter
        {
            bool await_ready() noexcept { return false; }

            std::coroutine_handle<>
            await_suspend(
                std::coroutine_handle<promise_type> h) noexcept
            {
                auto continuation = h.promise().continuation;
                auto done = std::move(h.promise().onDone);
                h.destroy();
                if (done) {
                    done();
                    return std::noop_coroutine();
                }
                if (continuation)
                    return continuation;
                return std::noop_coroutine();
            }

            void await_resume() noexcept {}
        };

        FinalAwaiter final_suspend() noexcept { return {}; }
        void return_void() {}
        void unhandled_exception() { std::terminate(); }
    };

    SimTask() = default;

    explicit SimTask(std::coroutine_handle<promise_type> h) : _h(h) {}

    SimTask(SimTask &&other) noexcept
        : _h(std::exchange(other._h, nullptr))
    {}

    SimTask &
    operator=(SimTask &&other) noexcept
    {
        if (this != &other) {
            if (_h)
                _h.destroy();
            _h = std::exchange(other._h, nullptr);
        }
        return *this;
    }

    SimTask(const SimTask &) = delete;
    SimTask &operator=(const SimTask &) = delete;

    ~SimTask()
    {
        // Only never-started tasks still own their frame here;
        // started tasks destroy themselves at final suspend.
        if (_h)
            _h.destroy();
    }

    /** Start as a root task; @p on_done fires at completion. */
    void
    start(std::function<void()> on_done)
    {
        auto h = std::exchange(_h, nullptr);
        h.promise().onDone = std::move(on_done);
        h.resume();
    }

    /** Awaiting a SimTask runs it to completion, then resumes. */
    auto
    operator co_await() &&
    {
        struct Awaiter
        {
            std::coroutine_handle<promise_type> h;

            bool await_ready() noexcept { return false; }

            std::coroutine_handle<>
            await_suspend(std::coroutine_handle<> parent) noexcept
            {
                h.promise().continuation = parent;
                return h;
            }

            void await_resume() noexcept {}
        };
        return Awaiter{std::exchange(_h, nullptr)};
    }

  private:
    std::coroutine_handle<promise_type> _h;
};

} // namespace nosync

#endif // GPU_SIM_TASK_HH
