/**
 * @file
 * Workload abstraction: a benchmark is a memory layout, a sequence of
 * kernels, a per-thread-block coroutine, and a functional check.
 */

#ifndef GPU_WORKLOAD_HH
#define GPU_WORKLOAD_HH

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/race_detector.hh"
#include "gpu/sim_task.hh"
#include "gpu/tb_context.hh"
#include "sim/types.hh"

namespace nosync
{

/**
 * Facilities a workload uses to set up and validate memory, provided
 * by the System. Initialization writes are functional (they model
 * CPU-side input preparation before the first kernel); debug reads
 * are coherent across the whole simulated hierarchy.
 */
class WorkloadEnv
{
  public:
    virtual ~WorkloadEnv() = default;

    /** Allocate @p bytes of line-aligned global memory. */
    virtual Addr alloc(Addr bytes) = 0;

    /** Functional pre-simulation write (CPU input preparation). */
    virtual void writeInit(Addr addr, std::uint32_t value) = 0;

    /** Coherent post-simulation read (checks / CPU output read). */
    virtual std::uint32_t debugRead(Addr addr) = 0;

    /** Declare a read-only region (consumed by DD+RO). */
    virtual void declareReadOnly(Addr base, Addr bytes) = 0;

    /**
     * Declare a streaming region — written at most once per
     * synchronization phase, read by many consumers next phase.
     * Consumed by DD+PR (stores bypass ownership registration and
     * write through); a no-op everywhere else, so workloads declare
     * unconditionally and the configuration decides.
     */
    virtual void declareStreaming(Addr, Addr) {}

    /** Total GPU compute units in the machine, across all devices. */
    virtual unsigned numCus() const = 0;

    /** Devices in the machine; global CU @p cu lives on device
     *  cu / cusPerDevice(). Single-device machines return 1. */
    virtual unsigned numDevices() const { return 1; }

    /** CUs per device (numCus() on single-device machines). */
    virtual unsigned cusPerDevice() const { return numCus(); }

    /** The configuration's consistency model supports scopes. */
    virtual bool hrf() const = 0;
};

/** Static description of one kernel launch. */
struct KernelInfo
{
    /** Thread blocks in the grid. */
    unsigned numTbs;
};

/** Base class for every benchmark in Table 4. */
class Workload
{
  public:
    virtual ~Workload() = default;

    /** Benchmark name as used in the paper (e.g. "SPM_L"). */
    virtual std::string name() const = 0;

    /** Allocate and initialize memory; called once before kernel 0. */
    virtual void init(WorkloadEnv &env) = 0;

    /** Number of sequential kernel launches. */
    virtual unsigned numKernels() const { return 1; }

    /** Grid shape of kernel @p k. */
    virtual KernelInfo kernelInfo(unsigned k) const = 0;

    /** The thread-block program (a coroutine). */
    virtual SimTask tbMain(TbContext &ctx) = 0;

    /**
     * Functional validation after the run.
     * @return human-readable failure descriptions; empty on success.
     */
    virtual std::vector<std::string> check(WorkloadEnv &env)
    {
        (void)env;
        return {};
    }

    /**
     * Whether the final memory image is independent of event timing.
     * Timing-dependent workloads (e.g. work stealing, where the
     * traversal order decides which queue slots hold which nodes) are
     * excluded from the fault harness's golden-run memory comparison.
     */
    virtual bool deterministicOutput() const { return true; }

    /**
     * Address ranges the race detector should not count as failures,
     * each with a written justification (rendered in the report).
     * Called after init(), so ranges may reference allocations.
     */
    virtual std::vector<analysis::RaceSuppression>
    raceSuppressions() const
    {
        return {};
    }
};

} // namespace nosync

#endif // GPU_WORKLOAD_HH
