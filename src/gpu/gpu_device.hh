/**
 * @file
 * GPU device model: kernel launch, thread-block scheduling across
 * compute units, and kernel-boundary coherence actions.
 *
 * A kernel launch performs the implicit global acquire at every
 * participating CU (kernelBegin); kernel completion performs the
 * implicit global release (kernelEnd) and the next kernel launches
 * only after every CU's release completed — the standard GPU
 * coarse-grained synchronization the paper's Section 1 describes.
 */

#ifndef GPU_GPU_DEVICE_HH
#define GPU_GPU_DEVICE_HH

#include <memory>
#include <vector>

#include "coherence/l1_controller.hh"
#include "energy/energy_model.hh"
#include "gpu/tb_context.hh"
#include "gpu/workload.hh"
#include "sim/pdes.hh"
#include "sim/sim_object.hh"
#include "sim/stats.hh"

namespace nosync
{

/** Orchestrates a workload's kernels over the CUs. */
class GpuDevice : public SimObject
{
  public:
    /**
     * @p cu_nodes maps each global CU index to the mesh node hosting
     * its L1 (and hence its PDES shard). Empty means the classic
     * identity mapping (CU i lives on node i), which holds for every
     * one-device machine.
     */
    GpuDevice(EventQueue &eq, stats::StatSet &stats,
              EnergyModel &energy,
              std::vector<L1Controller *> cu_l1s, Workload &workload,
              std::uint64_t seed, Cycles kernel_launch_latency = 300,
              trace::TraceSink *trace = nullptr,
              analysis::RaceDetector *races = nullptr,
              TbScheduler *sched = nullptr,
              PdesEngine *engine = nullptr,
              std::vector<NodeId> cu_nodes = {});

    /** Run every kernel; @p on_complete fires after the last drain. */
    void run(DoneCallback on_complete);

    /**
     * Per-thread-block coroutine wait states of the current kernel,
     * one line per still-running TB (for hang diagnostics). Empty
     * between kernels.
     */
    std::vector<std::string> waitStates() const;

  private:
    void launchKernel();
    void startTbs();
    void onTbDone(unsigned cu);
    void onDrainAck();
    void onKernelDrained();

    /** Shard hosting CU @p cu's coroutine in engine mode. */
    unsigned
    shardOf(unsigned cu) const
    {
        return _cuNodes.empty()
                   ? cu
                   : static_cast<unsigned>(_cuNodes[cu]);
    }

    std::vector<L1Controller *> _l1s;
    std::vector<NodeId> _cuNodes;
    EnergyModel &_energy;
    Workload &_workload;
    std::uint64_t _seed;
    Cycles _launchLatency;

    unsigned _kernel = 0;
    unsigned _tbsLeft = 0;
    unsigned _drainsLeft = 0;
    Tick _kernelStart = 0;
    std::vector<unsigned> _cuTbsLeft;
    std::vector<std::unique_ptr<TbContext>> _contexts;
    DoneCallback _onComplete;

    stats::Handle<stats::Scalar> _kernelsLaunched;
    stats::Handle<stats::Scalar> _tbsExecuted;
    /** Observability sink; nullptr when tracing is disabled. */
    trace::TraceSink *_trace = nullptr;
    /** Race detector; nullptr when race checking is disabled. */
    analysis::RaceDetector *_races = nullptr;
    /** Exploration scheduler; nullptr outside model checking. */
    TbScheduler *_sched = nullptr;
    /**
     * PDES engine; nullptr in serial runs. With an engine, each TB's
     * coroutine runs on its CU's shard, and per-TB/per-CU completion
     * callbacks — which mutate device-wide counters and fan out to
     * every L1 — are deferred to the engine's window barriers as
     * coordinator notifications instead of running inside a domain.
     */
    PdesEngine *_engine = nullptr;
};

} // namespace nosync

#endif // GPU_GPU_DEVICE_HH
