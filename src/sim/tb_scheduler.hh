/**
 * @file
 * Thread-block scheduling seam for systematic exploration.
 *
 * A TbContext normally issues each memory operation to its L1 the
 * moment the coroutine reaches it. When a TbScheduler is attached
 * (explore/exploring_scheduler.hh), the issue thunk is handed to the
 * scheduler instead, which decides *which ready thread block advances
 * at each quantum* — the second of the two choice axes the stateless
 * model checker enumerates (the other being message delivery order,
 * noc/delivery_policy.hh).
 *
 * The null case is the common case: every hook site holds a nullable
 * pointer and runs the thunk inline when it is null, so unexplored
 * runs are bitwise identical to builds without the seam — the same
 * pattern as trace::TraceSink and analysis::RaceDetector.
 */

#ifndef SIM_TB_SCHEDULER_HH
#define SIM_TB_SCHEDULER_HH

#include <cstdint>
#include <functional>

#include "sim/types.hh"

namespace nosync
{

/** What a held thread-block operation is (scheduler bookkeeping). */
enum class TbOpKind : std::uint8_t
{
    Load,        ///< data load (incl. a coalesced loadMany batch)
    Store,       ///< data store (incl. a coalesced storeMany batch)
    AtomicLoad,  ///< synchronization read
    AtomicStore, ///< synchronization write
    AtomicRmw,   ///< synchronization read-modify-write
};

/** Short human name of a TbOpKind. */
inline const char *
tbOpKindName(TbOpKind kind)
{
    switch (kind) {
      case TbOpKind::Load: return "load";
      case TbOpKind::Store: return "store";
      case TbOpKind::AtomicLoad: return "atomic-load";
      case TbOpKind::AtomicStore: return "atomic-store";
      case TbOpKind::AtomicRmw: return "atomic-rmw";
    }
    return "?";
}

/** Identity and footprint of one ready-to-issue operation. */
struct TbOp
{
    unsigned kernel = 0;   ///< kernel launch index
    unsigned tbGlobal = 0; ///< global thread-block index in the kernel
    unsigned cu = 0;       ///< compute unit the TB runs on
    Addr addr = 0;         ///< first word the operation touches
    TbOpKind kind = TbOpKind::Load;

    bool
    write() const
    {
        return kind == TbOpKind::Store ||
               kind == TbOpKind::AtomicStore ||
               kind == TbOpKind::AtomicRmw;
    }
};

/** Decides when a ready thread block's next operation issues. */
class TbScheduler
{
  public:
    virtual ~TbScheduler() = default;

    /**
     * A thread block reached its next memory operation. @p go issues
     * it to the L1 (and fires the trace/race hooks); the scheduler
     * owns the thunk and must run it exactly once, at the tick it
     * decides the TB advances. Holding every ready operation and
     * releasing one per decision serializes the issue order, which is
     * exactly what schedule enumeration needs.
     */
    virtual void issue(const TbOp &op, std::function<void()> go) = 0;
};

} // namespace nosync

#endif // SIM_TB_SCHEDULER_HH
