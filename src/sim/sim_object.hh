/**
 * @file
 * Base class for named simulated components.
 */

#ifndef SIM_SIM_OBJECT_HH
#define SIM_SIM_OBJECT_HH

#include <string>
#include <utility>

#include "event_queue.hh"
#include "types.hh"

namespace nosync
{

/**
 * A named component attached to an event queue.
 *
 * Provides convenience scheduling wrappers so components express
 * latencies as relative delays.
 */
class SimObject
{
  public:
    SimObject(std::string name, EventQueue &eq)
        : _name(std::move(name)), _eq(eq)
    {}

    virtual ~SimObject() = default;

    SimObject(const SimObject &) = delete;
    SimObject &operator=(const SimObject &) = delete;

    const std::string &name() const { return _name; }
    Tick curTick() const { return _eq.now(); }
    EventQueue &eventQueue() { return _eq; }

  protected:
    /** Schedule a member callback @p delay cycles from now. */
    void
    scheduleIn(Cycles delay, EventFn fn,
               EventPriority prio = EventPriority::Default)
    {
        _eq.scheduleIn(delay, std::move(fn), prio);
    }

  private:
    std::string _name;
    EventQueue &_eq;
};

} // namespace nosync

#endif // SIM_SIM_OBJECT_HH
