/**
 * @file
 * Base class for named simulated components.
 */

#ifndef SIM_SIM_OBJECT_HH
#define SIM_SIM_OBJECT_HH

#include <string>
#include <utility>

#include "event_queue.hh"
#include "types.hh"

namespace nosync
{

/**
 * A named component attached to an event queue.
 *
 * Provides convenience scheduling wrappers so components express
 * latencies as relative delays.
 */
class SimObject
{
  public:
    SimObject(std::string name, EventQueue &eq)
        : _name(std::move(name)), _eq(eq)
    {}

    virtual ~SimObject() = default;

    SimObject(const SimObject &) = delete;
    SimObject &operator=(const SimObject &) = delete;

    const std::string &name() const { return _name; }
    Tick curTick() const { return _eq.now(); }
    EventQueue &eventQueue() { return _eq; }

  protected:
    /** Schedule a member callback @p delay cycles from now. */
    void
    scheduleIn(Cycles delay, EventFn fn,
               EventPriority prio = EventPriority::Default)
    {
        _eq.scheduleIn(delay, std::move(fn), prio);
    }

  private:
    std::string _name;
    EventQueue &_eq;
};

/**
 * Downcast a component reached through an interface reference to its
 * concrete type; nullptr when the component is a different flavour.
 * The explicit spelling (`as<DenovoL1Cache>(sys.l1(0))`) marks every
 * place that depends on a specific protocol configuration.
 */
template <typename T>
T *
as(SimObject &obj)
{
    return dynamic_cast<T *>(&obj);
}

template <typename T>
const T *
as(const SimObject &obj)
{
    return dynamic_cast<const T *>(&obj);
}

} // namespace nosync

#endif // SIM_SIM_OBJECT_HH
