/**
 * @file
 * Small deterministic pseudo-random number generator.
 *
 * Workload generators (e.g. UTS tree shapes, backoff jitter) must be
 * reproducible across runs and configurations, so they each own a
 * seeded Rng rather than sharing global state.
 */

#ifndef SIM_RNG_HH
#define SIM_RNG_HH

#include <cstdint>

namespace nosync
{

/** xorshift128+ generator; fast, decent quality, fully deterministic. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        // SplitMix64 seeding to avoid weak low-entropy states.
        auto split_mix = [&seed]() {
            seed += 0x9e3779b97f4a7c15ull;
            std::uint64_t z = seed;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            return z ^ (z >> 31);
        };
        _s0 = split_mix();
        _s1 = split_mix();
        if (_s0 == 0 && _s1 == 0)
            _s1 = 1;
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t x = _s0;
        const std::uint64_t y = _s1;
        _s0 = y;
        x ^= x << 23;
        _s1 = x ^ y ^ (x >> 17) ^ (y >> 26);
        return _s1 + y;
    }

    /** Uniform integer in [0, bound). @pre bound > 0 */
    std::uint64_t
    below(std::uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform integer in [lo, hi]. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    real()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial with probability @p p. */
    bool chance(double p) { return real() < p; }

  private:
    std::uint64_t _s0;
    std::uint64_t _s1;
};

} // namespace nosync

#endif // SIM_RNG_HH
