/**
 * @file
 * Fundamental simulator-wide types and memory-geometry constants.
 */

#ifndef SIM_TYPES_HH
#define SIM_TYPES_HH

#include <cstdint>

namespace nosync
{

/** Simulated time, in GPU core cycles (700 MHz in the baseline). */
using Tick = std::uint64_t;

/** A duration expressed in GPU core cycles. */
using Cycles = std::uint64_t;

/** Byte address in the unified CPU-GPU address space. */
using Addr = std::uint64_t;

/** Identifier of a mesh node (CU, CPU core, or L2 bank slice). */
using NodeId = int;

/** Invalid / "no node" sentinel. */
constexpr NodeId kNoNode = -1;

/** Cache line geometry: 64-byte lines of 16 4-byte words. */
constexpr unsigned kLineBytes = 64;
constexpr unsigned kWordBytes = 4;
constexpr unsigned kWordsPerLine = kLineBytes / kWordBytes;

/** Bit mask with one bit per word in a line. */
using WordMask = std::uint16_t;
static_assert(kWordsPerLine <= 16, "WordMask must cover a full line");

/** All words of a line selected. */
constexpr WordMask kFullLineMask = 0xffff;

/** Align an address down to its line base. */
constexpr Addr
lineAlign(Addr addr)
{
    return addr & ~static_cast<Addr>(kLineBytes - 1);
}

/** Align an address down to its word base. */
constexpr Addr
wordAlign(Addr addr)
{
    return addr & ~static_cast<Addr>(kWordBytes - 1);
}

/** Index of the word containing @p addr within its line. */
constexpr unsigned
wordInLine(Addr addr)
{
    return static_cast<unsigned>((addr & (kLineBytes - 1)) / kWordBytes);
}

/** Single-word mask for the word containing @p addr. */
constexpr WordMask
wordMaskOf(Addr addr)
{
    return static_cast<WordMask>(1u << wordInLine(addr));
}

/** Number of set bits in a word mask. */
constexpr unsigned
popcount(WordMask mask)
{
    unsigned n = 0;
    for (WordMask m = mask; m != 0; m &= (m - 1))
        ++n;
    return n;
}

} // namespace nosync

#endif // SIM_TYPES_HH
