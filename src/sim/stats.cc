#include "stats.hh"

#include <sstream>

#include "logging.hh"

namespace nosync
{
namespace stats
{

double
Distribution::percentile(double p) const
{
    if (!_count)
        return 0.0;
    double target = p * static_cast<double>(_count);
    std::uint64_t cum = 0;
    for (std::size_t b = 0; b < kBuckets; ++b) {
        if (!_buckets[b])
            continue;
        double before = static_cast<double>(cum);
        cum += _buckets[b];
        if (static_cast<double>(cum) < target)
            continue;
        double lo = b == 0 ? 0.0 : static_cast<double>(1ull << (b - 1));
        double hi = static_cast<double>(1ull << b);
        double frac = (target - before) /
                      static_cast<double>(_buckets[b]);
        double est = lo + frac * (hi - lo);
        return std::min(std::max(est, _min), _max);
    }
    return _max;
}

Handle<Scalar>
StatSet::registerScalar(const std::string &name,
                        const std::string &desc)
{
    return Handle<Scalar>(scalar(name, desc));
}

Handle<Vector>
StatSet::registerVector(const std::string &name,
                        const std::string &desc,
                        const std::vector<std::string> &subnames)
{
    return Handle<Vector>(vector(name, desc, subnames));
}

Handle<Distribution>
StatSet::registerDistribution(const std::string &name,
                              const std::string &desc)
{
    auto it = _dists.find(name);
    if (it != _dists.end())
        return Handle<Distribution>(*it->second);
    auto stat = std::make_unique<Distribution>(name, desc);
    Distribution &ref = *stat;
    _dists.emplace(name, std::move(stat));
    return Handle<Distribution>(ref);
}

Scalar &
StatSet::scalar(const std::string &name, const std::string &desc)
{
    auto it = _scalars.find(name);
    if (it != _scalars.end())
        return *it->second;
    auto stat = std::make_unique<Scalar>(name, desc);
    Scalar &ref = *stat;
    _scalars.emplace(name, std::move(stat));
    return ref;
}

Vector &
StatSet::vector(const std::string &name, const std::string &desc,
                const std::vector<std::string> &subnames)
{
    auto it = _vectors.find(name);
    if (it != _vectors.end()) {
        panic_if(it->second->size() != subnames.size(),
                 "vector stat ", name, " re-registered with different "
                 "shape");
        return *it->second;
    }
    auto stat = std::make_unique<Vector>(name, desc, subnames);
    Vector &ref = *stat;
    _vectors.emplace(name, std::move(stat));
    return ref;
}

const Scalar *
StatSet::find(const std::string &name) const
{
    auto it = _scalars.find(name);
    return it == _scalars.end() ? nullptr : it->second.get();
}

const Vector *
StatSet::findVector(const std::string &name) const
{
    auto it = _vectors.find(name);
    return it == _vectors.end() ? nullptr : it->second.get();
}

const Distribution *
StatSet::findDistribution(const std::string &name) const
{
    auto it = _dists.find(name);
    return it == _dists.end() ? nullptr : it->second.get();
}

double
StatSet::get(const std::string &name) const
{
    const Scalar *s = find(name);
    return s ? s->value() : 0.0;
}

double
StatSet::getVec(const std::string &name, const std::string &subname)
    const
{
    const Vector *vec = findVector(name);
    if (!vec)
        return 0.0;
    int i = vec->indexOf(subname);
    return i < 0 ? 0.0 : vec->value(static_cast<std::size_t>(i));
}

void
StatSet::resetAll()
{
    for (auto &kv : _scalars)
        kv.second->reset();
    for (auto &kv : _vectors)
        kv.second->reset();
    for (auto &kv : _dists)
        kv.second->reset();
}

std::string
StatSet::dump() const
{
    std::ostringstream os;
    for (const auto &kv : _scalars) {
        os << kv.first << " " << kv.second->value() << " # "
           << kv.second->desc() << "\n";
    }
    for (const auto &kv : _vectors) {
        const Vector &vec = *kv.second;
        for (std::size_t i = 0; i < vec.size(); ++i) {
            os << kv.first << "::" << vec.subname(i) << " "
               << vec.value(i) << "\n";
        }
        os << kv.first << "::total " << vec.total() << " # "
           << vec.desc() << "\n";
    }
    for (const auto &kv : _dists) {
        const Distribution &d = *kv.second;
        os << kv.first << " count=" << d.count()
           << " mean=" << d.mean() << " p50=" << d.percentile(0.5)
           << " p95=" << d.percentile(0.95) << " max=" << d.max()
           << " # " << d.desc() << "\n";
    }
    return os.str();
}

} // namespace stats
} // namespace nosync
