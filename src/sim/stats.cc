#include "stats.hh"

#include <sstream>

#include "logging.hh"

namespace nosync
{
namespace stats
{

Scalar &
StatSet::scalar(const std::string &name, const std::string &desc)
{
    auto it = _scalars.find(name);
    if (it != _scalars.end())
        return *it->second;
    auto stat = std::make_unique<Scalar>(name, desc);
    Scalar &ref = *stat;
    _scalars.emplace(name, std::move(stat));
    return ref;
}

Vector &
StatSet::vector(const std::string &name, const std::string &desc,
                const std::vector<std::string> &subnames)
{
    auto it = _vectors.find(name);
    if (it != _vectors.end()) {
        panic_if(it->second->size() != subnames.size(),
                 "vector stat ", name, " re-registered with different "
                 "shape");
        return *it->second;
    }
    auto stat = std::make_unique<Vector>(name, desc, subnames);
    Vector &ref = *stat;
    _vectors.emplace(name, std::move(stat));
    return ref;
}

double
StatSet::get(const std::string &name) const
{
    auto it = _scalars.find(name);
    return it == _scalars.end() ? 0.0 : it->second->value();
}

double
StatSet::getVec(const std::string &name, const std::string &subname)
    const
{
    auto it = _vectors.find(name);
    if (it == _vectors.end())
        return 0.0;
    const Vector &vec = *it->second;
    for (std::size_t i = 0; i < vec.size(); ++i) {
        if (vec.subname(i) == subname)
            return vec.value(i);
    }
    return 0.0;
}

void
StatSet::resetAll()
{
    for (auto &kv : _scalars)
        kv.second->reset();
    for (auto &kv : _vectors)
        kv.second->reset();
}

std::string
StatSet::dump() const
{
    std::ostringstream os;
    for (const auto &kv : _scalars) {
        os << kv.first << " " << kv.second->value() << " # "
           << kv.second->desc() << "\n";
    }
    for (const auto &kv : _vectors) {
        const Vector &vec = *kv.second;
        for (std::size_t i = 0; i < vec.size(); ++i) {
            os << kv.first << "::" << vec.subname(i) << " "
               << vec.value(i) << "\n";
        }
        os << kv.first << "::total " << vec.total() << " # "
           << vec.desc() << "\n";
    }
    return os.str();
}

} // namespace stats
} // namespace nosync
