/**
 * @file
 * Conservative time-window parallel discrete-event engine (PDES).
 *
 * One simulated run is partitioned into per-mesh-node domains, each
 * owning its own slab-recycled EventQueue shard, plus one coordinator
 * queue (the System's `_eq`) hosting the GPU device and anything else
 * that spans domains. Shards advance independently inside a time
 * window of `lookahead` cycles — the minimum latency of any
 * cross-domain interaction (Mesh::hopLatency + 1 flit of
 * serialization), so nothing a domain does inside a window can affect
 * another domain before the window ends. At each window barrier the
 * engine, single-threaded, drains the per-domain deposit lanes in a
 * fixed domain-major order:
 *
 *   1. every shard clock is advanced to the window end;
 *   2. staged observability (trace/race logs) is merged canonically;
 *   3. coordinator events run (kernel launches, device bookkeeping);
 *   4. cross-domain mesh sends are arbitrated in (send tick, source
 *      node, per-node sequence) order against the global link state;
 *   5. cross-domain notifications (TB completions, drain callbacks)
 *      fire in the same canonical order.
 *
 * Because every merge key depends only on the fixed domain partition
 * (one domain per mesh node) and never on how domains are packed onto
 * worker threads, the merged event order — and therefore every
 * simulated output — is bitwise identical at any --sim-threads=N,
 * including N=1, which runs the same loop inline without spawning
 * threads or touching an atomic.
 *
 * Threads synchronize on a C++20 atomic wait/notify window barrier:
 * workers spin briefly in the futex fast path when cores are
 * available and park otherwise, so oversubscribed hosts degrade
 * gracefully instead of livelocking.
 */

#ifndef SIM_PDES_HH
#define SIM_PDES_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "event_queue.hh"
#include "small_fn.hh"
#include "types.hh"

namespace nosync
{

/** Callback deposited for the coordinator to run at a barrier. */
using NotifyFn = SmallFn<56>;

/** Sharded window-synchronized event engine for one System. */
class PdesEngine
{
  public:
    /**
     * @param num_domains one domain per mesh node
     * @param threads     worker threads to pack domains onto (>= 1);
     *                    1 runs every shard inline on the caller
     * @param lookahead   window width in ticks; must not exceed the
     *                    minimum cross-domain latency
     * @param coordinator queue for cross-domain components (the
     *                    System's own event queue)
     */
    PdesEngine(unsigned num_domains, unsigned threads,
               Cycles lookahead, EventQueue &coordinator);
    ~PdesEngine();

    PdesEngine(const PdesEngine &) = delete;
    PdesEngine &operator=(const PdesEngine &) = delete;

    unsigned numDomains() const
    {
        return static_cast<unsigned>(_shards.size());
    }
    unsigned threads() const { return _numThreads; }
    Cycles window() const { return _window; }

    /** Event-queue shard owned by domain @p d. */
    EventQueue &
    shard(unsigned d)
    {
        return *_shards[d];
    }

    /** The coordinator queue (cross-domain components). */
    EventQueue &coordinator() { return _coordinator; }

    /**
     * Domain whose shard the calling thread is currently executing;
     * -1 in serial context (barrier phase, construction, teardown).
     * Observability sinks key their staging lanes off this.
     */
    static int currentDomain();

    /** RAII domain marker (engine internals and microbenchmarks). */
    class DomainScope
    {
      public:
        explicit DomainScope(int domain);
        ~DomainScope();
        DomainScope(const DomainScope &) = delete;
        DomainScope &operator=(const DomainScope &) = delete;

      private:
        int _prev;
    };

    // Cross-domain deposit lanes -------------------------------------

    /**
     * A Mesh::send crossing domains, deferred to the window barrier.
     * `cls` is the TrafficClass, kept as a raw integer so the sim
     * layer stays below noc/.
     */
    struct MeshSend
    {
        NodeId src = kNoNode;
        NodeId dst = kNoNode;
        unsigned flits = 0;
        unsigned cls = 0;
        Tick sent = 0;
        bool idempotent = false;
        SmallFn<112> deliver;
    };

    /**
     * Deposit a cross-domain send. Must be called from the sending
     * node's domain (during the parallel phase) — the lane is owned
     * by that domain's worker, so no synchronization is needed.
     */
    void pushSend(MeshSend send);

    /**
     * Deposit a coordinator callback (TB completion, kernel-drain
     * notification). Runs at the next window barrier, ordered by
     * (deposit tick, domain, per-domain sequence). Callable from any
     * domain and from serial context.
     */
    void postNotification(NotifyFn fn);

    // Window loop ------------------------------------------------------

    /** Barrier-phase callbacks supplied by the System. */
    struct Hooks
    {
        /** Merge staged observability (trace/race) lanes. */
        std::function<void(Tick window_end)> preBarrier;
        /**
         * Arbitrate the window's cross-domain sends, pre-sorted by
         * (send tick, source node, sequence). The vector is consumed.
         */
        std::function<void(std::vector<MeshSend> &sends,
                           Tick window_end)>
            drainSends;
        /**
         * End-of-barrier check (invariant sweeps, completion).
         * Return true to stop the engine with state intact.
         */
        std::function<bool(Tick window_end)> atBarrier;
    };

    /**
     * Run windows until every shard and the coordinator drain, the
     * next window would start at or past @p max_cycles, or
     * hooks.atBarrier requests a stop. Returns the tick reached (the
     * last window end, or the out-of-budget window start).
     */
    Tick run(Tick max_cycles, const Hooks &hooks);

    /** Total events executed across all shards + the coordinator. */
    std::uint64_t executed() const;

    /** Earliest pending tick across shards + coordinator;
     *  ~Tick{0} when everything is empty. */
    Tick minNextTick() const;

    // Microbenchmark seams (bench/micro_perf.cc) -----------------------

    /** One parallel window phase + worker barrier, no drains. */
    void benchWindow(Tick window_end) { runParallelPhase(window_end); }

    /** Collect deposited sends in canonical order (consumes lanes). */
    std::vector<MeshSend> &collectSends();

  private:
    /** Per-domain deposit lane; written only by the owning worker
     *  during the parallel phase, read by the barrier thread. */
    struct alignas(64) DomainLane
    {
        std::vector<MeshSend> sends;
        struct Note
        {
            Tick tick;
            NotifyFn fn;
        };
        std::vector<Note> notes;
    };

    void runShard(unsigned d, Tick window_end);
    void runParallelPhase(Tick window_end);
    void drainNotifications(Tick window_end);
    void workerLoop(unsigned worker);

    std::vector<std::unique_ptr<EventQueue>> _shards;
    EventQueue &_coordinator;
    Cycles _window;
    unsigned _numThreads;

    /** Lane per domain plus one trailing lane for serial context. */
    std::vector<DomainLane> _lanes;

    /** Domain range [lo, hi) owned by each worker. */
    std::vector<unsigned> _workerLo;
    std::vector<unsigned> _workerHi;
    std::vector<std::thread> _workers;

    // Window barrier (C++20 futex-backed atomic wait).
    std::atomic<std::uint64_t> _epoch{0};
    std::atomic<unsigned> _arrived{0};
    std::atomic<bool> _stop{false};
    Tick _windowEnd = 0; ///< published by the epoch release

    std::vector<MeshSend> _sendBuf;
    std::vector<DomainLane::Note> _noteBuf;
};

} // namespace nosync

#endif // SIM_PDES_HH
