/**
 * @file
 * Lightweight statistics package.
 *
 * Components create named Scalar / Vector statistics inside a StatSet
 * registry. The registry can dump a sorted human-readable report and
 * supports programmatic lookup, which the benchmark harnesses use to
 * regenerate the paper's figures.
 */

#ifndef SIM_STATS_HH
#define SIM_STATS_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace nosync
{
namespace stats
{

/** A single named accumulating value. */
class Scalar
{
  public:
    Scalar(std::string name, std::string desc)
        : _name(std::move(name)), _desc(std::move(desc))
    {}

    const std::string &name() const { return _name; }
    const std::string &desc() const { return _desc; }
    double value() const { return _value; }

    Scalar &
    operator+=(double v)
    {
        _value += v;
        return *this;
    }

    Scalar &
    operator++()
    {
        _value += 1.0;
        return *this;
    }

    void set(double v) { _value = v; }
    void reset() { _value = 0.0; }

  private:
    std::string _name;
    std::string _desc;
    double _value = 0.0;
};

/** A named vector of accumulating values with per-entry subnames. */
class Vector
{
  public:
    Vector(std::string name, std::string desc,
           std::vector<std::string> subnames)
        : _name(std::move(name)), _desc(std::move(desc)),
          _subnames(std::move(subnames)), _values(_subnames.size(), 0.0)
    {}

    const std::string &name() const { return _name; }
    const std::string &desc() const { return _desc; }
    std::size_t size() const { return _values.size(); }
    const std::string &subname(std::size_t i) const
    {
        return _subnames[i];
    }

    double value(std::size_t i) const { return _values[i]; }

    double
    total() const
    {
        double sum = 0.0;
        for (double v : _values)
            sum += v;
        return sum;
    }

    void add(std::size_t i, double v = 1.0) { _values[i] += v; }
    void reset() { _values.assign(_values.size(), 0.0); }

  private:
    std::string _name;
    std::string _desc;
    std::vector<std::string> _subnames;
    std::vector<double> _values;
};

/**
 * Registry of statistics, typically one per simulated System.
 *
 * Statistics are owned by the set and handed out as references so that
 * components can update them without lookup cost on the hot path.
 */
class StatSet
{
  public:
    /** Create (or retrieve an identically named) scalar statistic. */
    Scalar &scalar(const std::string &name, const std::string &desc);

    /** Create (or retrieve) a vector statistic. */
    Vector &vector(const std::string &name, const std::string &desc,
                   const std::vector<std::string> &subnames);

    /** Look up a scalar's value; returns 0 when absent. */
    double get(const std::string &name) const;

    /** Look up one entry of a vector by "name::subname" convention. */
    double getVec(const std::string &name,
                  const std::string &subname) const;

    /** Reset every statistic to zero. */
    void resetAll();

    /** Render the full sorted report. */
    std::string dump() const;

  private:
    std::map<std::string, std::unique_ptr<Scalar>> _scalars;
    std::map<std::string, std::unique_ptr<Vector>> _vectors;
};

} // namespace stats
} // namespace nosync

#endif // SIM_STATS_HH
